// Package bdcc_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section IV):
//
//   - BenchmarkFig2ExecutionTime — per-query cold execution time under
//     Plain / PK / BDCC (Figure 2); reports modeled device ms and bytes.
//   - BenchmarkFig3Memory — per-query peak memory (Figure 3); reports peak
//     bytes of operator state.
//   - BenchmarkTableDimensions — Algorithm 2 design derivation (the
//     "dimensions" and "dimension uses" tables); reports dimensions found.
//   - BenchmarkOtherOrderings — automatic Z-order vs hand-tuned major-minor
//     clustering over the full query set (the paper's 284 s vs 291 s).
//   - BenchmarkAlg1SelfTuning — the bulk-load path of Algorithm 1 on
//     LINEITEM (sort, histograms, granularity choice, relocation).
//
// The scale factor defaults to 0.02 and can be raised with BDCC_BENCH_SF.
package bdcc_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/plan"
	"bdcc/internal/tpch"
)

var (
	benchOnce sync.Once
	benchB    *tpch.Benchmark
	benchErr  error
)

func benchSF() float64 {
	if s := os.Getenv("BDCC_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.02
}

// benchWorkers returns the parallel worker count of the workers=N
// sub-benchmarks: BDCC_BENCH_WORKERS, defaulting to all cores but at least
// 4 so the partitioned code paths are exercised even on small machines
// (where the wall-clock gain is bounded by the actual core count).
func benchWorkers() int {
	if s := os.Getenv("BDCC_BENCH_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if w := engine.DefaultWorkers(); w > 4 {
		return w
	}
	return 4
}

func fixture(b *testing.B) *tpch.Benchmark {
	b.Helper()
	benchOnce.Do(func() {
		benchB, benchErr = tpch.NewBenchmark(benchSF())
	})
	if benchErr != nil {
		b.Fatalf("NewBenchmark: %v", benchErr)
	}
	return benchB
}

// BenchmarkFig2ExecutionTime regenerates Figure 2: cold per-query execution
// under the three schemes. The benchmark time is the wall (CPU) time; the
// modeled device milliseconds and megabytes are attached as metrics, since
// the paper's cold runs are I/O-bound and ours are CPU-bound at laptop
// scale (see EXPERIMENTS.md).
func BenchmarkFig2ExecutionTime(b *testing.B) {
	bench := fixture(b)
	for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
		db := bench.DBs[scheme]
		for _, q := range tpch.Queries {
			b.Run(scheme.String()+"/"+q.Name, func(b *testing.B) {
				var devMS, mb float64
				for i := 0; i < b.N; i++ {
					_, st, _, err := tpch.RunQuery(db, q)
					if err != nil {
						b.Fatal(err)
					}
					devMS = float64(st.IO.Time.Microseconds()) / 1000
					mb = float64(st.IO.Bytes) / (1 << 20)
				}
				b.ReportMetric(devMS, "device-ms")
				b.ReportMetric(mb, "MB-read")
			})
		}
	}
}

// BenchmarkFig3Memory regenerates Figure 3: peak operator memory per query
// and scheme, attached as a metric in MB.
func BenchmarkFig3Memory(b *testing.B) {
	bench := fixture(b)
	for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
		db := bench.DBs[scheme]
		for _, q := range tpch.Queries {
			b.Run(scheme.String()+"/"+q.Name, func(b *testing.B) {
				var peakMB float64
				for i := 0; i < b.N; i++ {
					_, st, _, err := tpch.RunQuery(db, q)
					if err != nil {
						b.Fatal(err)
					}
					peakMB = float64(st.PeakMem) / (1 << 20)
				}
				b.ReportMetric(peakMB, "peak-MB")
			})
		}
	}
}

// BenchmarkTableDimensions regenerates the Section IV schema-design tables:
// Algorithm 2 deriving the dimension set and per-table uses from DDL hints.
func BenchmarkTableDimensions(b *testing.B) {
	schema := tpch.Schema()
	var dims int
	for i := 0; i < b.N; i++ {
		design, err := (&core.Advisor{Schema: schema}).Design()
		if err != nil {
			b.Fatal(err)
		}
		dims = len(design.Dimensions)
	}
	b.ReportMetric(float64(dims), "dimensions")
}

// BenchmarkOtherOrderings regenerates the "Other Orderings" self-comparison:
// the full query set under automatic Z-order vs hand-tuned major-minor
// interleaving (same dimensions, same bit counts).
func BenchmarkOtherOrderings(b *testing.B) {
	if testing.Short() {
		b.Skip("builds two BDCC databases")
	}
	for i := 0; i < b.N; i++ {
		oc, err := tpch.RunOrderingComparison(benchSF())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(oc.ZOrder.Seconds()*1000, "zorder-ms")
		b.ReportMetric(oc.MajorMinor.Seconds()*1000, "majorminor-ms")
	}
}

// BenchmarkAlg1SelfTuning measures the bulk-load path of Algorithm 1 —
// computing _bdcc_ at maximal granularity, sorting, collecting the
// per-granularity group histograms, choosing b and relocating small groups —
// for the full TPC-H design.
func BenchmarkAlg1SelfTuning(b *testing.B) {
	bench := fixture(b)
	schema := bench.Schema
	design, err := (&core.Advisor{Schema: schema}).Design()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := &core.Builder{Schema: schema, Tables: bench.Data.Tables}
		if _, err := builder.Build(design); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoinBuildProbe measures the raw hash-join hot path —
// building a table over ORDERS and probing it with every LINEITEM row —
// isolated from planning and I/O modeling, serial vs morsel-parallel (the
// two runs return byte-identical results). Throughput is reported as
// probe-side Mrows/s.
func BenchmarkHashJoinBuildProbe(b *testing.B) {
	bench := fixture(b)
	li := bench.Data.Tables["lineitem"]
	ord := bench.Data.Tables["orders"]
	for _, workers := range []int{1, benchWorkers()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: workers}
				j := &engine.HashJoin{
					Left:     &engine.TableScan{Table: li, Cols: []string{"l_orderkey", "l_quantity"}},
					Right:    &engine.TableScan{Table: ord, Cols: []string{"o_orderkey", "o_custkey"}},
					LeftKeys: []string{"l_orderkey"}, RightKeys: []string{"o_orderkey"},
					Type: engine.InnerJoin, Sched: ctx.Scheduler(),
				}
				res, err := engine.Run(ctx, j)
				if err != nil {
					b.Fatal(err)
				}
				rows = res.Rows()
			}
			if rows != li.Rows() {
				b.Fatalf("join produced %d rows, want %d", rows, li.Rows())
			}
			b.ReportMetric(float64(li.Rows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkHashAgg measures the raw hash-aggregation hot path: grouping
// LINEITEM by l_orderkey (high cardinality) with COUNT and SUM, isolated
// from planning and I/O modeling, serial vs partition-parallel. Throughput
// is input Mrows/s.
func BenchmarkHashAgg(b *testing.B) {
	bench := fixture(b)
	li := bench.Data.Tables["lineitem"]
	ord := bench.Data.Tables["orders"]
	for _, workers := range []int{1, benchWorkers()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: workers}
				a := &engine.HashAggregate{
					Child:   &engine.TableScan{Table: li, Cols: []string{"l_orderkey", "l_quantity"}},
					GroupBy: []string{"l_orderkey"},
					Aggs: []engine.AggSpec{
						{Name: "c", Func: engine.AggCount},
						{Name: "s", Func: engine.AggSum, Arg: expr.C("l_quantity")},
					},
					Sched: ctx.Scheduler(),
				}
				res, err := engine.Run(ctx, a)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows() != ord.Rows() {
					b.Fatalf("agg produced %d groups, want %d", res.Rows(), ord.Rows())
				}
			}
			b.ReportMetric(float64(li.Rows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkSandwichAblation contrasts the sandwiched and unsandwiched
// execution of TPC-H Q13 under BDCC — the design choice DESIGN.md calls out
// for the paper's memory claims. The unsandwiched run is approximated by
// the Plain scheme's hash join (identical operator repertoire minus
// grouping).
func BenchmarkSandwichAblation(b *testing.B) {
	bench := fixture(b)
	for _, scheme := range []plan.Scheme{plan.BDCC, plan.Plain} {
		b.Run("q13-"+scheme.String(), func(b *testing.B) {
			var peakMB float64
			for i := 0; i < b.N; i++ {
				_, st, _, err := tpch.RunQuery(bench.DBs[scheme], tpch.Query(13))
				if err != nil {
					b.Fatal(err)
				}
				peakMB = float64(st.PeakMem) / (1 << 20)
			}
			b.ReportMetric(peakMB, "peak-MB")
		})
	}
}
