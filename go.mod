module bdcc

go 1.24
