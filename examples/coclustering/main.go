// Co-clustering walkthrough of the paper's Figure 1: three dimensions — D1
// (geography), D2 (time), D3 (range-binned values) — and three fact tables
// A (D1, D2), C (D1, D3) and B, foreign-key connected to both A and C and
// therefore co-clustered on all their dimensions. The example prints the
// derived dimension uses, the bit-interleaved count-table keys, and the
// scatter-scan orders each table supports ("for table A this scan can
// retrieve data in the orders (D1), (D2), (D1,D2), (D2,D1)").
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/storage"
)

const ddl = `
CREATE TABLE d1 (d1key INT, continent VARCHAR(16), PRIMARY KEY (d1key));
CREATE TABLE d2 (d2key INT, year INT, PRIMARY KEY (d2key));
CREATE TABLE d3 (d3key INT, val INT, PRIMARY KEY (d3key));
CREATE TABLE a (akey INT, a_d1 INT, a_d2 INT, PRIMARY KEY (akey),
    CONSTRAINT fk_a_d1 FOREIGN KEY (a_d1) REFERENCES d1,
    CONSTRAINT fk_a_d2 FOREIGN KEY (a_d2) REFERENCES d2);
CREATE TABLE c (ckey INT, c_d1 INT, c_d3 INT, PRIMARY KEY (ckey),
    CONSTRAINT fk_c_d1 FOREIGN KEY (c_d1) REFERENCES d1,
    CONSTRAINT fk_c_d3 FOREIGN KEY (c_d3) REFERENCES d3);
CREATE TABLE b (bkey INT, b_a INT, b_c INT, PRIMARY KEY (bkey),
    CONSTRAINT fk_b_a FOREIGN KEY (b_a) REFERENCES a,
    CONSTRAINT fk_b_c FOREIGN KEY (b_c) REFERENCES c);
CREATE INDEX cont_idx ON d1 (continent);
CREATE INDEX year_idx ON d2 (year);
CREATE INDEX val_idx ON d3 (val);
CREATE INDEX a1_idx ON a (a_d1);
CREATE INDEX a2_idx ON a (a_d2);
CREATE INDEX c1_idx ON c (c_d1);
CREATE INDEX c3_idx ON c (c_d3);
CREATE INDEX ba_idx ON b (b_a);
CREATE INDEX bc_idx ON b (b_c);
`

func main() {
	schema, err := catalog.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	tables := map[string]*storage.Table{
		"d1": storage.MustNewTable("d1", 4096,
			storage.NewInt64Column("d1key", []int64{0, 1, 2, 3}),
			storage.NewStringColumn("continent", []string{"Africa", "America", "Asia", "Europe"})),
		"d2": storage.MustNewTable("d2", 4096,
			storage.NewInt64Column("d2key", []int64{0, 1, 2, 3}),
			storage.NewInt64Column("year", []int64{1997, 1998, 1999, 2000})),
		"d3": storage.MustNewTable("d3", 4096,
			storage.NewInt64Column("d3key", seq(16)),
			storage.NewInt64Column("val", seqScaled(16, 3))),
	}
	nA, nB, nC := 64, 4096, 48
	tables["a"] = storage.MustNewTable("a", 4096,
		storage.NewInt64Column("akey", seq(nA)),
		storage.NewInt64Column("a_d1", randIn(rng, nA, 4)),
		storage.NewInt64Column("a_d2", randIn(rng, nA, 4)))
	tables["c"] = storage.MustNewTable("c", 4096,
		storage.NewInt64Column("ckey", seq(nC)),
		storage.NewInt64Column("c_d1", randIn(rng, nC, 4)),
		storage.NewInt64Column("c_d3", randIn(rng, nC, 16)))
	tables["b"] = storage.MustNewTable("b", 4096,
		storage.NewInt64Column("bkey", seq(nB)),
		storage.NewInt64Column("b_a", randIn(rng, nB, int64(nA))),
		storage.NewInt64Column("b_c", randIn(rng, nB, int64(nC))))

	design, err := (&core.Advisor{Schema: schema}).Design()
	if err != nil {
		log.Fatal(err)
	}
	db, err := (&core.Builder{Schema: schema, Tables: tables}).Build(design)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 co-clustered schema:")
	for _, name := range []string{"a", "b", "c"} {
		bt := db.Tables[name]
		fmt.Printf("\nBDCC table %s — %d bits, %d groups:\n", name, bt.Bits, len(bt.Count))
		for _, u := range bt.Uses {
			fmt.Printf("  %-8s via %-24s mask %s\n", u.Dim.Name, u.PathString(), core.MaskString(u.Mask))
		}
	}

	// B is co-clustered with A on (D1 via A, D2) and with C on (D1 via C,
	// D3); and A and C, though not foreign-key connected, still share D1 —
	// "useful in situations when we are looking for tuples in A and C from
	// matching nations".
	b := db.Tables["b"]
	fmt.Println("\nScatter-scan orders of B (major dimension first):")
	for i, u := range b.Uses {
		groups, err := b.ScatterPlan([]int{i}, []int{core.Ones(u.Mask)}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  major %-8s via %-24s → %d groups\n", u.Dim.Name, u.PathString(), len(groups))
	}

	// Selection propagation: Asia on D1 restricts all three fact tables.
	asia := db.Dimensions["d_cont"].BinOf(core.StrKey("Asia"))
	for _, name := range []string{"a", "b", "c"} {
		bt := db.Tables[name]
		u := bt.UseFor("d_cont")
		entries := bt.SelectBins(u, asia, asia)
		fmt.Printf("Asia restriction on %s: %d of %d rows\n",
			name, core.TotalRows(entries), bt.Rows())
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func seqScaled(n int, k int64) []int64 {
	out := seq(n)
	for i := range out {
		out[i] *= k
	}
	return out
}

func randIn(rng *rand.Rand, n int, domain int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(domain)
	}
	return out
}
