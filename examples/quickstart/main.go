// Quickstart: define a small schema with CREATE INDEX hints, let the BDCC
// advisor (Algorithm 2) derive a co-clustered design, materialize it
// (Algorithm 1), and watch a selection on a dimension attribute turn into a
// count-table group restriction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/plan"
	"bdcc/internal/storage"
)

const ddl = `
CREATE TABLE store (st_id INT, st_region VARCHAR(16), PRIMARY KEY (st_id));
CREATE TABLE sales (
    sa_id INT, sa_store INT, sa_amount DECIMAL(9,2),
    PRIMARY KEY (sa_id),
    CONSTRAINT fk_sa_st FOREIGN KEY (sa_store) REFERENCES store);
-- Hints: region is a dimension; sales inherit it over the foreign key.
CREATE INDEX region_idx ON store (st_region);
CREATE INDEX sast_idx ON sales (sa_store);
`

func main() {
	schema, err := catalog.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a little data: 8 stores over 4 regions, 100k sales.
	regions := []string{"EAST", "NORTH", "SOUTH", "WEST"}
	rng := rand.New(rand.NewSource(1))
	stID := make([]int64, 8)
	stRegion := make([]string, 8)
	for i := range stID {
		stID[i] = int64(i)
		stRegion[i] = regions[i%4]
	}
	n := 100_000
	saID := make([]int64, n)
	saStore := make([]int64, n)
	saAmount := make([]float64, n)
	for i := 0; i < n; i++ {
		saID[i] = int64(i)
		saStore[i] = rng.Int63n(8)
		saAmount[i] = float64(rng.Intn(10000)) / 100
	}
	tables := map[string]*storage.Table{
		"store": storage.MustNewTable("store", 4096,
			storage.NewInt64Column("st_id", stID),
			storage.NewStringColumn("st_region", stRegion)),
		"sales": storage.MustNewTable("sales", 4096,
			storage.NewInt64Column("sa_id", saID),
			storage.NewInt64Column("sa_store", saStore),
			storage.NewFloat64Column("sa_amount", saAmount)),
	}

	// Algorithm 2 + Algorithm 1: derive and materialize the design.
	db, err := plan.NewBDCCDB(schema, tables, iosim.PaperSSD(), core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for name, bt := range db.Clustered.Tables {
		fmt.Printf("table %-6s clustered on %d bits, %d count-table groups\n",
			name, bt.Bits, len(bt.Count))
	}

	// SELECT sum(sa_amount) FROM sales JOIN store ON sa_store = st_id
	// WHERE st_region = 'WEST' — the region selection propagates into the
	// sales scan as a bin restriction.
	q := &plan.Agg{
		Child: &plan.Join{
			Left: &plan.Scan{Table: "sales", Cols: []string{"sa_store", "sa_amount"}},
			Right: &plan.Scan{Table: "store", Cols: []string{"st_id", "st_region"},
				Filter: expr.Eq(expr.C("st_region"), expr.Str("WEST"))},
			LeftKeys: []string{"sa_store"}, RightKeys: []string{"st_id"},
			Type: engine.InnerJoin,
		},
		GroupBy: []string{"st_region"},
		Aggs:    []engine.AggSpec{{Name: "total", Func: engine.AggSum, Arg: expr.C("sa_amount")}},
	}
	ctx := engine.NewContext(db.Device)
	planner := plan.NewPlanner(db, ctx)
	res, err := planner.Run(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWEST total: %v\n", res.Row(0))
	fmt.Println("\nplanner decisions:")
	for _, l := range planner.Log {
		fmt.Println(" ", l)
	}
	fmt.Printf("\ndevice: %v\n", ctx.Acct.Stats())
}
