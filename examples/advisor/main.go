// Advisor: feed your own DDL (with CREATE INDEX statements as BDCC hints)
// to Algorithm 2 and inspect the derived co-clustered design — no data
// needed. The schema below is a small snowflake: date and product
// dimensions with a product hierarchy (category determines products, like
// region determines nations in TPC-H).
package main

import (
	"fmt"
	"log"
	"strings"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
)

const ddl = `
CREATE TABLE category (cat_id INT, cat_name VARCHAR(32), PRIMARY KEY (cat_id));
CREATE TABLE product (
    pr_id INT, pr_cat INT, pr_name VARCHAR(64), PRIMARY KEY (pr_id),
    CONSTRAINT fk_pr_cat FOREIGN KEY (pr_cat) REFERENCES category);
CREATE TABLE dates (dt_id INT, dt_day DATE, PRIMARY KEY (dt_id));
CREATE TABLE fact_sales (
    fs_id INT, fs_product INT, fs_date INT, fs_qty INT, PRIMARY KEY (fs_id),
    CONSTRAINT fk_fs_pr FOREIGN KEY (fs_product) REFERENCES product,
    CONSTRAINT fk_fs_dt FOREIGN KEY (fs_date) REFERENCES dates);
CREATE TABLE fact_returns (
    fr_id INT, fr_product INT, fr_date INT, PRIMARY KEY (fr_id),
    CONSTRAINT fk_fr_pr FOREIGN KEY (fr_product) REFERENCES product,
    CONSTRAINT fk_fr_dt FOREIGN KEY (fr_date) REFERENCES dates);

-- Hints. The compound (pr_cat, pr_id) key makes a category selection a
-- consecutive product-bin range, like (n_regionkey, n_nationkey) in the
-- paper's TPC-H setup.
CREATE INDEX prod_idx ON product (pr_cat, pr_id);
CREATE INDEX day_idx  ON dates (dt_day);
CREATE INDEX fs_pr_idx ON fact_sales (fs_product);
CREATE INDEX fs_dt_idx ON fact_sales (fs_date);
CREATE INDEX fr_pr_idx ON fact_returns (fr_product);
CREATE INDEX fr_dt_idx ON fact_returns (fr_date);
`

func main() {
	schema, err := catalog.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	design, err := (&core.Advisor{Schema: schema, CapBits: 10}).Design()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Derived dimensions:")
	for _, d := range design.Dimensions {
		fmt.Printf("  %-10s over %s(%s), at most %d bits\n",
			d.Name, d.Table, strings.Join(d.Key, ","), d.MaxBits)
	}
	fmt.Println("\nCo-clustered tables:")
	for _, td := range design.Tables {
		fmt.Printf("  %s\n", td.Table)
		for _, u := range td.Uses {
			fmt.Printf("    %-10s via %s\n", u.Dim, u.PathString())
		}
	}
	fmt.Println("\nBoth fact tables share d_prod and d_day: selections on either")
	fmt.Println("dimension propagate to both, and their joins to the dimension")
	fmt.Println("tables (and to each other via common dimensions) can be sandwiched.")
}
