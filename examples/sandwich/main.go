// Sandwich operators: the memory behaviour of a co-clustered join. Both
// ORDERS and CUSTOMER are clustered on the customer-nation dimension, so the
// join can be "sandwiched": the build side is materialized one nation group
// at a time. The example contrasts peak memory and results of the sandwiched
// and the ordinary hash join on the same generated TPC-H data — the effect
// behind the paper's Figure 3 and its Q13 discussion.
package main

import (
	"fmt"
	"log"

	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/tpch"
)

func main() {
	ds := tpch.Generate(0.05)
	schema := tpch.Schema()
	design, err := (&core.Advisor{Schema: schema}).Design()
	if err != nil {
		log.Fatal(err)
	}
	db, err := (&core.Builder{Schema: schema, Tables: ds.Tables}).Build(design)
	if err != nil {
		log.Fatal(err)
	}
	orders := db.Tables["orders"]
	customer := db.Tables["customer"]

	// Locate the shared dimension uses: ORDERS reaches D_NATION over
	// fk_o_c.fk_c_n, CUSTOMER over fk_c_n.
	uO, uC := -1, -1
	for i, u := range orders.Uses {
		if u.Dim.Name == "d_nation" {
			uO = i
		}
	}
	for i, u := range customer.Uses {
		if u.Dim.Name == "d_nation" {
			uC = i
		}
	}
	gO := core.Ones(orders.Uses[uO].Mask)
	gC := core.Ones(customer.Uses[uC].Mask)
	g := gO
	if gC < g {
		g = gC
	}

	run := func(name string, sandwich bool) {
		ctx := engine.NewContext(iosim.PaperSSD())
		var op engine.Operator
		if sandwich {
			po, err := orders.ScatterPlan([]int{uO}, []int{gO}, nil)
			if err != nil {
				log.Fatal(err)
			}
			pc, err := customer.ScatterPlan([]int{uC}, []int{gC}, nil)
			if err != nil {
				log.Fatal(err)
			}
			op = &engine.SandwichHashJoin{
				Left:     &engine.GroupedScan{BDCC: orders, Cols: []string{"o_orderkey", "o_custkey"}, Groups: po},
				Right:    &engine.GroupedScan{BDCC: customer, Cols: []string{"c_custkey", "c_name"}, Groups: pc},
				LeftKeys: []string{"o_custkey"}, RightKeys: []string{"c_custkey"},
				Type:       engine.InnerJoin,
				ProbeShift: uint(gO - g), BuildShift: uint(gC - g),
			}
		} else {
			// Scan the original tables: BDCCTable.Data additionally holds
			// the relocation area, which only count-table extents (as used
			// by scatter scans and the planner) may address.
			op = &engine.HashJoin{
				Left:     &engine.TableScan{Table: ds.Tables["orders"], Cols: []string{"o_orderkey", "o_custkey"}},
				Right:    &engine.TableScan{Table: ds.Tables["customer"], Cols: []string{"c_custkey", "c_name"}},
				LeftKeys: []string{"o_custkey"}, RightKeys: []string{"c_custkey"},
				Type: engine.InnerJoin,
			}
		}
		res, err := engine.Run(ctx, op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s rows=%d peak memory=%8.1f KB\n",
			name, res.Rows(), float64(ctx.Mem.Peak())/1024)
	}
	fmt.Printf("ORDERS ⋈ CUSTOMER on o_custkey (aligned on d_nation, %d group bits)\n", g)
	run("hash join", false)
	run("sandwich join", true)
}
