// Shared-nothing partitioning: the scale-out deployment where scan device
// work itself divides across the workers (docs/PARTITIONING.md). The
// example derives the deterministic placement of LINEITEM's z-order cells
// onto two workers, runs Q3 serially and then partitioned over two
// simulated backends — base-table partitions shipped at setup, scatter
// scans reading worker-local storage — verifies the results are identical
// byte for byte, and prints the meters behind the headline: each worker's
// local scan volume at roughly half the single-box run's.
package main

import (
	"fmt"
	"log"

	"bdcc/internal/plan"
	"bdcc/internal/shard"
	"bdcc/internal/tpch"
)

func main() {
	const workers = 2
	b, err := tpch.NewBenchmark(0.02, plan.BDCC)
	if err != nil {
		log.Fatal(err)
	}
	db := b.DBs[plan.BDCC]

	// The placement is a pure function of (count table, worker count):
	// contiguous blocks of z-order cells in key order, balanced by
	// cumulative rows. Every party — planner, workers, failover re-scan —
	// derives the same division independently; nothing is negotiated.
	lineitem := db.Clustered.Tables["lineitem"]
	p := shard.NewPartitioning(lineitem.Name, lineitem.Count, workers)
	fmt.Printf("%s: %d rows in %d z-order cells, partitioned over %d workers\n",
		lineitem.Name, p.TotalRows(), len(lineitem.Count), workers)
	for w := 0; w < workers; w++ {
		fmt.Printf("  worker %d owns %8d rows in %4d cell segments\n",
			w, p.Rows(w), len(p.Segments(w)))
	}

	// The single-box baseline, then the same query shared-nothing: the
	// Partition knob ships each worker its block of every scatter-scanned
	// table and lowers the scans to shipped row-range units.
	q := tpch.Query(3)
	serial, sst, _, err := tpch.RunQueryShards(db, q, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	part, pst, _, err := tpch.RunQueryOpts(db, q,
		tpch.RunOptions{Workers: workers, Shards: workers, Partition: true})
	if err != nil {
		log.Fatal(err)
	}

	// Byte-identity: same rows, same order, same float bits.
	if serial.Rows() != part.Rows() || len(serial.Cols) != len(part.Cols) {
		log.Fatalf("result shape diverged: %d×%d serial vs %d×%d partitioned",
			serial.Rows(), len(serial.Cols), part.Rows(), len(part.Cols))
	}
	for c := range serial.Cols {
		a, bb := serial.Cols[c], part.Cols[c]
		for i := 0; i < a.Len(); i++ {
			if a.Kind != bb.Kind ||
				(a.I64 != nil && a.I64[i] != bb.I64[i]) ||
				(a.F64 != nil && a.F64[i] != bb.F64[i]) ||
				(a.Str != nil && a.Str[i] != bb.Str[i]) {
				log.Fatalf("col %d row %d diverged", c, i)
			}
		}
	}
	fmt.Printf("\n%s: %d rows, identical serial vs partitioned\n", q.Name, part.Rows())

	// The meters behind the shared-nothing claim: scan reads land on the
	// workers' local copies, each at roughly 1/N of the single-box volume;
	// the coordinator is not charged for shipped scans.
	fmt.Printf("  single-box scan volume: %8.1f KB on the coordinator\n",
		float64(sst.IO.Bytes)/1024)
	for w, wio := range pst.WorkerIO {
		fmt.Printf("  partitioned, worker %d: %8.1f KB local\n",
			w, float64(wio.Bytes)/1024)
	}
	fmt.Printf("  partitioned, coord:    %8.1f KB (unpartitioned plan parts only)\n",
		float64(pst.IO.Bytes)/1024)
}
