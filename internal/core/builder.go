package core

import (
	"fmt"

	"bdcc/internal/catalog"
	"bdcc/internal/storage"
)

// Database is a materialized BDCC design: the created dimensions and the
// re-clustered tables. Tables without a design keep their plain layout and
// are not present here (the query planner falls back to the original stored
// table, as the paper's setup does for REGION).
type Database struct {
	Design     *Design
	Dimensions map[string]*Dimension
	Tables     map[string]*BDCCTable
}

// Builder materializes a Design over stored tables: it creates each
// dimension from the frequency histogram over the union of all using tables
// joined over their dimension paths (Algorithm 2 (ii), following the
// companion tech report), then BDCC-clusters every designed table at a
// self-tuned granularity (Algorithm 2 (iii) / Algorithm 1).
type Builder struct {
	Schema  *catalog.Schema
	Tables  map[string]*storage.Table
	Options BuildOptions
	// ForceBitsPerTable pins count-table granularities per table (ablation
	// experiments); absent tables self-tune.
	ForceBitsPerTable map[string]int
}

// Build materializes the design.
func (b *Builder) Build(design *Design) (*Database, error) {
	res := NewResolver(b.Schema, b.Tables)
	db := &Database{
		Design:     design,
		Dimensions: make(map[string]*Dimension),
		Tables:     make(map[string]*BDCCTable),
	}
	for _, spec := range design.Dimensions {
		dim, err := b.createDimension(design, spec, res)
		if err != nil {
			return nil, err
		}
		if err := dim.Validate(); err != nil {
			return nil, err
		}
		db.Dimensions[spec.Name] = dim
	}
	for _, td := range design.Tables {
		data, err := res.Table(td.Table)
		if err != nil {
			return nil, err
		}
		uses := make([]UseBinding, len(td.Uses))
		for i, us := range td.Uses {
			dim := db.Dimensions[us.Dim]
			if dim == nil {
				return nil, fmt.Errorf("core: table %s uses unknown dimension %s", td.Table, us.Dim)
			}
			bins, err := binsForUse(res, db, td.Table, us)
			if err != nil {
				return nil, err
			}
			uses[i] = UseBinding{Dim: dim, Path: us.Path, BinNos: bins}
		}
		opt := b.Options
		if fb, ok := b.ForceBitsPerTable[td.Table]; ok {
			opt.ForceBits = fb
		}
		bt, err := BuildBDCCTable(td.Table, data, uses, opt)
		if err != nil {
			return nil, err
		}
		if err := bt.Validate(); err != nil {
			return nil, err
		}
		db.Tables[td.Table] = bt
	}
	return db, nil
}

// createDimension builds the frequency histogram for one dimension over the
// union of all using tables joined over their paths and cuts it into bins.
// Every host-table row contributes at least weight 1 so the mapping stays
// surjective over the stored key domain even for values no fact references.
func (b *Builder) createDimension(design *Design, spec *DimensionSpec, res *Resolver) (*Dimension, error) {
	host, err := res.Table(spec.Table)
	if err != nil {
		return nil, err
	}
	keys, err := KeyValues(host, spec.Key)
	if err != nil {
		return nil, fmt.Errorf("core: dimension %s: %w", spec.Name, err)
	}
	weights := make([]int64, host.Rows())
	for i := range weights {
		weights[i] = 1
	}
	for _, td := range design.Tables {
		for _, us := range td.Uses {
			if us.Dim != spec.Name {
				continue
			}
			hostRows, err := res.HostRows(td.Table, us.Path)
			if err != nil {
				return nil, fmt.Errorf("core: dimension %s via %s.%s: %w", spec.Name, td.Table, us.PathString(), err)
			}
			for _, hr := range hostRows {
				weights[hr]++
			}
		}
	}
	obs := make([]WeightedKey, len(keys))
	for i := range keys {
		obs[i] = WeightedKey{Val: keys[i], Weight: weights[i]}
	}
	maxBits := DimensionBits(int64(distinctCount(keys)), spec.MaxBits)
	return CreateDimension(spec.Name, spec.Table, spec.Key, obs, maxBits)
}

// distinctCount counts distinct key values (keys need not be sorted).
func distinctCount(keys []KeyVal) int {
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[k.String()] = true
	}
	return len(seen)
}

// binsForUse resolves, for every row of the using table, the bin number of
// the dimension value reached over the use's path.
func binsForUse(res *Resolver, db *Database, table string, us UseSpec) ([]uint64, error) {
	dim := db.Dimensions[us.Dim]
	host, err := res.Table(dim.Table)
	if err != nil {
		return nil, err
	}
	hostKeys, err := KeyValues(host, dim.Key)
	if err != nil {
		return nil, err
	}
	hostBins := make([]uint64, len(hostKeys))
	for i, k := range hostKeys {
		hostBins[i] = dim.BinOf(k)
	}
	hostRows, err := res.HostRows(table, us.Path)
	if err != nil {
		return nil, err
	}
	bins := make([]uint64, len(hostRows))
	for i, hr := range hostRows {
		bins[i] = hostBins[hr]
	}
	return bins, nil
}
