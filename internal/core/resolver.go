package core

import (
	"fmt"
	"strings"

	"bdcc/internal/catalog"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Resolver resolves foreign-key paths between stored tables: for a child
// table row it finds the matching row of the referenced table, following a
// dimension path edge by edge. Lookup tables are built once per foreign key
// and cached.
type Resolver struct {
	schema *catalog.Schema
	tables map[string]*storage.Table
	fkMaps map[string][]int32
}

// NewResolver returns a resolver over the stored tables of a schema.
func NewResolver(schema *catalog.Schema, tables map[string]*storage.Table) *Resolver {
	return &Resolver{schema: schema, tables: tables, fkMaps: make(map[string][]int32)}
}

// Table returns the stored table registered under name.
func (r *Resolver) Table(name string) (*storage.Table, error) {
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("core: no stored table %q", name)
	}
	return t, nil
}

// FKMap returns, for the named foreign key, the parent row index of every
// child row. It errors on dangling references.
func (r *Resolver) FKMap(fkName string) ([]int32, error) {
	if m, ok := r.fkMaps[fkName]; ok {
		return m, nil
	}
	fk := r.schema.FK(fkName)
	if fk == nil {
		return nil, fmt.Errorf("core: unknown foreign key %q", fkName)
	}
	child, err := r.Table(fk.Table)
	if err != nil {
		return nil, err
	}
	parent, err := r.Table(fk.RefTable)
	if err != nil {
		return nil, err
	}
	m, err := buildFKMap(child, parent, fk)
	if err != nil {
		return nil, err
	}
	r.fkMaps[fkName] = m
	return m, nil
}

func buildFKMap(child, parent *storage.Table, fk *catalog.ForeignKey) ([]int32, error) {
	if len(fk.Cols) == 1 {
		pc, err := parent.Column(fk.RefCols[0])
		if err != nil {
			return nil, err
		}
		cc, err := child.Column(fk.Cols[0])
		if err != nil {
			return nil, err
		}
		if pc.Kind != vector.Int64 || cc.Kind != vector.Int64 {
			return nil, fmt.Errorf("core: foreign key %s: only int64 single-column keys supported, got %s/%s",
				fk.Name, cc.Kind, pc.Kind)
		}
		idx := make(map[int64]int32, len(pc.I64))
		for i, v := range pc.I64 {
			idx[v] = int32(i)
		}
		out := make([]int32, len(cc.I64))
		for i, v := range cc.I64 {
			p, ok := idx[v]
			if !ok {
				return nil, fmt.Errorf("core: foreign key %s: value %d of %s.%s has no match in %s.%s",
					fk.Name, v, fk.Table, fk.Cols[0], fk.RefTable, fk.RefCols[0])
			}
			out[i] = p
		}
		return out, nil
	}
	// Composite key: encode parts into a string key.
	pidx := make(map[string]int32, parent.Rows())
	penc, err := rowEncoder(parent, fk.RefCols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < parent.Rows(); i++ {
		pidx[penc(i)] = int32(i)
	}
	cenc, err := rowEncoder(child, fk.Cols)
	if err != nil {
		return nil, err
	}
	out := make([]int32, child.Rows())
	for i := range out {
		p, ok := pidx[cenc(i)]
		if !ok {
			return nil, fmt.Errorf("core: foreign key %s: row %d of %s has no match in %s",
				fk.Name, i, fk.Table, fk.RefTable)
		}
		out[i] = p
	}
	return out, nil
}

// rowEncoder returns a function encoding the named columns of row i into a
// map key.
func rowEncoder(t *storage.Table, cols []string) (func(int) string, error) {
	cs := make([]*storage.Column, len(cols))
	for i, name := range cols {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	return func(row int) string {
		var b strings.Builder
		for _, c := range cs {
			switch c.Kind {
			case vector.Int64:
				fmt.Fprintf(&b, "%d|", c.I64[row])
			case vector.Float64:
				fmt.Fprintf(&b, "%g|", c.F64[row])
			case vector.String:
				fmt.Fprintf(&b, "%s|", c.Str[row])
			}
		}
		return b.String()
	}, nil
}

// HostRows composes the foreign-key maps along a dimension path: the result
// maps each row of the using table to its row in the path's target (host)
// table. An empty path is the identity.
func (r *Resolver) HostRows(table string, path []string) ([]int32, error) {
	t, err := r.Table(table)
	if err != nil {
		return nil, err
	}
	cur := make([]int32, t.Rows())
	for i := range cur {
		cur[i] = int32(i)
	}
	for _, fkName := range path {
		m, err := r.FKMap(fkName)
		if err != nil {
			return nil, err
		}
		for i, p := range cur {
			cur[i] = m[p]
		}
	}
	return cur, nil
}

// KeyValues extracts the key value of every row of a stored table.
func KeyValues(t *storage.Table, key []string) ([]KeyVal, error) {
	kc := keyCols{}
	for _, name := range key {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		kc.kinds = append(kc.kinds, c.Kind)
		switch c.Kind {
		case vector.Int64:
			kc.i64 = append(kc.i64, c.I64)
			kc.str = append(kc.str, nil)
		case vector.String:
			kc.i64 = append(kc.i64, nil)
			kc.str = append(kc.str, c.Str)
		default:
			return nil, fmt.Errorf("core: dimension key column %q has unsupported kind %s", name, c.Kind)
		}
	}
	out := make([]KeyVal, t.Rows())
	for i := range out {
		out[i] = kc.at(i)
	}
	return out, nil
}
