package core

import (
	"fmt"
	"sort"
)

// WeightedKey is one key value observation with a frequency weight. The
// dimension-creation algorithm of the companion tech report builds a
// histogram "on the union of all tables Tᵢ joined over dimension path Pᵢ,
// projecting only the dimension keys" — each using table contributes its key
// values weighted by occurrence, so dimension bins are balanced with respect
// to the data that will actually be clustered by them.
type WeightedKey struct {
	Val    KeyVal
	Weight int64
}

// CreateDimension builds a BDCC dimension over the observed weighted key
// values with at most 2^maxBits bins.
//
// If the number of distinct values fits into 2^maxBits, every distinct value
// receives its own (unique, Definition 1 (iv)) bin — this reproduces e.g. the
// paper's D_NATION with 25 singleton bins in 5 bits. Otherwise values are cut
// into equal-frequency bins at the weight quantiles, never splitting a single
// value across bins, so heavily skewed values simply occupy (up to) a bin of
// their own and their neighbours stay balanced.
func CreateDimension(name, table string, key []string, obs []WeightedKey, maxBits int) (*Dimension, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: dimension %s: no key values observed", name)
	}
	if maxBits < 0 || maxBits > 62 {
		return nil, fmt.Errorf("core: dimension %s: maxBits %d out of range", name, maxBits)
	}
	// Merge duplicates.
	sorted := append([]WeightedKey(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Val.Compare(sorted[j].Val) < 0 })
	distinct := sorted[:0]
	for _, o := range sorted {
		if n := len(distinct); n > 0 && distinct[n-1].Val.Compare(o.Val) == 0 {
			distinct[n-1].Weight += o.Weight
			continue
		}
		distinct = append(distinct, o)
	}
	d := &Dimension{Name: name, Table: table, Key: key}
	maxBins := 1 << uint(maxBits)
	if len(distinct) <= maxBins {
		// One unique bin per distinct value.
		d.Bins = make([]Bin, len(distinct))
		for i, o := range distinct {
			d.Bins[i] = Bin{No: uint64(i), Min: o.Val, Max: o.Val, Weight: o.Weight, Unique: true}
		}
		return d, nil
	}
	// Equal-frequency cut at weight quantiles, aligned to distinct values.
	var total int64
	for _, o := range distinct {
		total += o.Weight
	}
	target := total / int64(maxBins)
	if target < 1 {
		target = 1
	}
	var bins []Bin
	var cum int64
	open := false
	var cur Bin
	for i, o := range distinct {
		// Isolate heavy hitters: a value carrying a full bin's share of the
		// weight must not share a bin with its predecessors, so close the
		// open bin first.
		if open && o.Weight >= target && len(bins) < maxBins-1 {
			bins = append(bins, cur)
			open = false
		}
		if !open {
			cur = Bin{Min: o.Val}
			open = true
		}
		cur.Max = o.Val
		cur.Weight += o.Weight
		cum += o.Weight
		// Close the bin once cumulative weight reaches the next quantile
		// boundary for the bins produced so far.
		boundary := (int64(len(bins)) + 1) * total / int64(maxBins)
		if cum >= boundary && len(bins) < maxBins-1 && i < len(distinct)-1 {
			bins = append(bins, cur)
			open = false
		}
	}
	if open {
		bins = append(bins, cur)
	}
	for i := range bins {
		bins[i].No = uint64(i)
		bins[i].Unique = bins[i].Min.Compare(bins[i].Max) == 0
	}
	d.Bins = bins
	return d, nil
}

// DimensionBits returns the granularity Algorithm 2 (ii) assigns to a new
// dimension: "a fixed maximal granularity derived from the usage and the
// number of distinct values" — min(capBits, ⌈log₂ ndv⌉).
func DimensionBits(ndv int64, capBits int) int {
	b := BitsFor(int(ndv))
	if b > capBits {
		return capBits
	}
	return b
}
