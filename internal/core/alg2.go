package core

import (
	"fmt"
	"strings"

	"bdcc/internal/catalog"
)

// UseSpec is a planned dimension use of Algorithm 2's output: the dimension
// name plus the foreign-key path from the using table to the dimension host.
type UseSpec struct {
	Dim  string
	Path []string
}

// PathString renders the path in the paper's notation ("-" when local).
func (u UseSpec) PathString() string {
	if len(u.Path) == 0 {
		return "-"
	}
	return strings.Join(u.Path, ".")
}

// DimensionSpec describes a dimension Algorithm 2 decided to create; the
// actual bins are built from data (or statistics) afterwards.
type DimensionSpec struct {
	Name  string
	Table string
	Key   []string
	// MaxBits caps bits(D); the builder derives actual bits from the number
	// of distinct key values (Algorithm 2 (ii), "e.g. bits(D) ≤ 13").
	MaxBits int
}

// TableDesign lists the dimension uses of one table, in interleaving order.
type TableDesign struct {
	Table string
	Uses  []UseSpec
}

// Design is the output of Algorithm 2: which dimensions to create and how
// each table is co-clustered on them.
type Design struct {
	Dimensions []*DimensionSpec
	Tables     []*TableDesign
}

// Dimension returns the named dimension spec, or nil.
func (d *Design) Dimension(name string) *DimensionSpec {
	for _, ds := range d.Dimensions {
		if ds.Name == name {
			return ds
		}
	}
	return nil
}

// Table returns the design of the named table, or nil (not every table is
// BDCC-clustered — tables without index hints keep their plain layout, like
// REGION in the paper's TPC-H setup).
func (d *Design) Table(name string) *TableDesign {
	for _, td := range d.Tables {
		if td.Table == name {
			return td
		}
	}
	return nil
}

// Advisor runs the semi-automatic schema design (Algorithm 2 phases (i) and
// the granularity caps of (ii)); materialization of dimensions and tables is
// the Builder's job (resolver.go).
type Advisor struct {
	Schema *catalog.Schema
	// CapBits is the fixed maximal dimension granularity; 0 means the
	// paper's 13.
	CapBits int
	// BitsCap overrides the granularity cap for individual dimensions by
	// name; actual bits(D) still follow from the number of bins created
	// (Definition 1 (vi)).
	BitsCap map[string]int
}

// Design derives the BDCC design: it traverses the schema DAG from the
// leaves (tables referenced by others first); for each table it interprets
// every CREATE INDEX declaration as a hint — an index whose columns equal a
// declared foreign key inherits all dimension uses of the referenced table
// with the foreign key prepended to their paths, any other index introduces
// a new dimension on the index key.
func (a *Advisor) Design() (*Design, error) {
	capBits := a.CapBits
	if capBits == 0 {
		capBits = 13
	}
	order, err := a.Schema.TopoOrder()
	if err != nil {
		return nil, err
	}
	design := &Design{}
	perTable := make(map[string][]UseSpec)
	for _, tname := range order {
		t := a.Schema.Table(tname)
		var uses []UseSpec
		seen := make(map[string]bool)
		add := func(u UseSpec) {
			k := u.Dim + "|" + u.PathString()
			if !seen[k] {
				seen[k] = true
				uses = append(uses, u)
			}
		}
		for _, ix := range t.Indexes {
			if fk := matchFK(t, ix); fk != nil {
				for _, ref := range perTable[fk.RefTable] {
					add(UseSpec{Dim: ref.Dim, Path: append([]string{fk.Name}, ref.Path...)})
				}
				continue
			}
			spec := &DimensionSpec{
				Name:    dimensionName(ix, design),
				Table:   tname,
				Key:     append([]string(nil), ix.Cols...),
				MaxBits: capBits,
			}
			if ov, ok := a.BitsCap[spec.Name]; ok {
				spec.MaxBits = ov
			}
			design.Dimensions = append(design.Dimensions, spec)
			add(UseSpec{Dim: spec.Name})
		}
		if len(uses) > 0 {
			perTable[tname] = uses
			design.Tables = append(design.Tables, &TableDesign{Table: tname, Uses: uses})
		}
	}
	return design, nil
}

// matchFK returns the foreign key of t whose column set equals the index's,
// or nil.
func matchFK(t *catalog.TableDef, ix *catalog.Index) *catalog.ForeignKey {
	for _, fk := range t.ForeignKeys {
		if catalog.IndexMatchesFK(ix, fk) {
			return fk
		}
	}
	return nil
}

// dimensionName derives the dimension name from the index name the way the
// paper does (date_idx → d_date, part_idx → d_part, nation_idx → d_nation),
// falling back to the raw index name on collision.
func dimensionName(ix *catalog.Index, d *Design) string {
	base := strings.TrimSuffix(ix.Name, "_idx")
	base = strings.TrimSuffix(base, "idx")
	base = strings.TrimPrefix(base, "idx_")
	if base == "" {
		base = ix.Table
	}
	name := "d_" + base
	if d.Dimension(name) != nil {
		name = "d_" + ix.Table + "_" + base
	}
	for i := 2; d.Dimension(name) != nil; i++ {
		name = fmt.Sprintf("d_%s_%s_%d", ix.Table, base, i)
	}
	return name
}
