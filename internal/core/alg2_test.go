package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bdcc/internal/catalog"
	"bdcc/internal/storage"
)

// figure1DDL is the schema of the paper's Figure 1: three dimension tables
// D1 (geography), D2 (time), D3 (range-binned values); fact tables A (uses
// D1, D2), C (uses D1, D3) and B, foreign-key connected to both A and C and
// therefore co-clustered on all their dimensions.
const figure1DDL = `
CREATE TABLE d1 (d1key INT, continent VARCHAR(16), PRIMARY KEY (d1key));
CREATE TABLE d2 (d2key INT, year INT, PRIMARY KEY (d2key));
CREATE TABLE d3 (d3key INT, val INT, PRIMARY KEY (d3key));
CREATE TABLE a (akey INT, a_d1 INT, a_d2 INT, x VARCHAR(8), PRIMARY KEY (akey),
    CONSTRAINT fk_a_d1 FOREIGN KEY (a_d1) REFERENCES d1,
    CONSTRAINT fk_a_d2 FOREIGN KEY (a_d2) REFERENCES d2);
CREATE TABLE c (ckey INT, c_d1 INT, c_d3 INT, y VARCHAR(8), PRIMARY KEY (ckey),
    CONSTRAINT fk_c_d1 FOREIGN KEY (c_d1) REFERENCES d1,
    CONSTRAINT fk_c_d3 FOREIGN KEY (c_d3) REFERENCES d3);
CREATE TABLE b (bkey INT, b_a INT, b_c INT, z VARCHAR(8), PRIMARY KEY (bkey),
    CONSTRAINT fk_b_a FOREIGN KEY (b_a) REFERENCES a,
    CONSTRAINT fk_b_c FOREIGN KEY (b_c) REFERENCES c);
CREATE INDEX cont_idx ON d1 (continent);
CREATE INDEX year_idx ON d2 (year);
CREATE INDEX val_idx ON d3 (val);
CREATE INDEX a1_idx ON a (a_d1);
CREATE INDEX a2_idx ON a (a_d2);
CREATE INDEX c1_idx ON c (c_d1);
CREATE INDEX c3_idx ON c (c_d3);
CREATE INDEX ba_idx ON b (b_a);
CREATE INDEX bc_idx ON b (b_c);
`

// TestFigure1Schema checks that Algorithm 2 derives the co-clustering of the
// paper's Figure 1: B inherits D1 and D2 over A, and D1 and D3 over C, with
// the two D1 uses kept distinct because their paths differ ("each use can
// logically be a different dimension").
func TestFigure1Schema(t *testing.T) {
	schema := catalog.MustParseDDL(figure1DDL)
	adv := &Advisor{Schema: schema}
	design, err := adv.Design()
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if len(design.Dimensions) != 3 {
		t.Fatalf("dimensions = %d, want 3", len(design.Dimensions))
	}
	wantUses := map[string][]string{
		"d1": {"d_cont|-"},
		"d2": {"d_year|-"},
		"d3": {"d_val|-"},
		"a":  {"d_cont|fk_a_d1", "d_year|fk_a_d2"},
		"c":  {"d_cont|fk_c_d1", "d_val|fk_c_d3"},
		"b": {
			"d_cont|fk_b_a.fk_a_d1", "d_year|fk_b_a.fk_a_d2",
			"d_cont|fk_b_c.fk_c_d1", "d_val|fk_b_c.fk_c_d3",
		},
	}
	for table, want := range wantUses {
		td := design.Table(table)
		if td == nil {
			t.Errorf("table %s has no design", table)
			continue
		}
		var got []string
		for _, u := range td.Uses {
			got = append(got, u.Dim+"|"+u.PathString())
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("table %s uses = %v, want %v", table, got, want)
		}
	}
	// A and C are co-clustered on D1 although not foreign-key connected.
	if design.Table("a").Uses[0].Dim != design.Table("c").Uses[0].Dim {
		t.Error("A and C do not share dimension d_cont")
	}
}

// figure1Data generates small stored tables for the Figure 1 schema.
func figure1Data(t *testing.T, nA, nB, nC int) map[string]*storage.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	continents := []string{"Africa", "America", "Asia", "Europe"}
	years := []int64{1997, 1998, 1999, 2000}
	mk := func(name string, cols ...*storage.Column) *storage.Table {
		return storage.MustNewTable(name, 4096, cols...)
	}
	d1k := []int64{0, 1, 2, 3}
	d2k := []int64{0, 1, 2, 3}
	d3k := make([]int64, 16)
	d3v := make([]int64, 16)
	for i := range d3k {
		d3k[i] = int64(i)
		d3v[i] = int64(i * 3)
	}
	tabs := map[string]*storage.Table{
		"d1": mk("d1", storage.NewInt64Column("d1key", d1k), storage.NewStringColumn("continent", continents)),
		"d2": mk("d2", storage.NewInt64Column("d2key", d2k), storage.NewInt64Column("year", years)),
		"d3": mk("d3", storage.NewInt64Column("d3key", d3k), storage.NewInt64Column("val", d3v)),
	}
	akey := make([]int64, nA)
	ad1 := make([]int64, nA)
	ad2 := make([]int64, nA)
	ax := make([]string, nA)
	for i := 0; i < nA; i++ {
		akey[i] = int64(i)
		ad1[i] = rng.Int63n(4)
		ad2[i] = rng.Int63n(4)
		ax[i] = fmt.Sprintf("a%03d", i)
	}
	tabs["a"] = mk("a",
		storage.NewInt64Column("akey", akey), storage.NewInt64Column("a_d1", ad1),
		storage.NewInt64Column("a_d2", ad2), storage.NewStringColumn("x", ax))
	ckey := make([]int64, nC)
	cd1 := make([]int64, nC)
	cd3 := make([]int64, nC)
	cy := make([]string, nC)
	for i := 0; i < nC; i++ {
		ckey[i] = int64(i)
		cd1[i] = rng.Int63n(4)
		cd3[i] = rng.Int63n(16)
		cy[i] = fmt.Sprintf("c%03d", i)
	}
	tabs["c"] = mk("c",
		storage.NewInt64Column("ckey", ckey), storage.NewInt64Column("c_d1", cd1),
		storage.NewInt64Column("c_d3", cd3), storage.NewStringColumn("y", cy))
	bkey := make([]int64, nB)
	ba := make([]int64, nB)
	bc := make([]int64, nB)
	bz := make([]string, nB)
	for i := 0; i < nB; i++ {
		bkey[i] = int64(i)
		ba[i] = rng.Int63n(int64(nA))
		bc[i] = rng.Int63n(int64(nC))
		bz[i] = fmt.Sprintf("b%03d", i)
	}
	tabs["b"] = mk("b",
		storage.NewInt64Column("bkey", bkey), storage.NewInt64Column("b_a", ba),
		storage.NewInt64Column("b_c", bc), storage.NewStringColumn("z", bz))
	return tabs
}

// TestFigure1Build materializes the Figure 1 design and checks the central
// co-clustering invariants end to end.
func TestFigure1Build(t *testing.T) {
	schema := catalog.MustParseDDL(figure1DDL)
	tabs := figure1Data(t, 40, 400, 30)
	design, err := (&Advisor{Schema: schema}).Design()
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	db, err := (&Builder{Schema: schema, Tables: tabs}).Build(design)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dCont := db.Dimensions["d_cont"]
	if dCont == nil || dCont.NumBins() != 4 || dCont.Bits() != 2 {
		t.Fatalf("d_cont = %v, want 4 bins / 2 bits", dCont)
	}
	bt := db.Tables["b"]
	if bt == nil {
		t.Fatal("table b not clustered")
	}
	if len(bt.Uses) != 4 {
		t.Fatalf("b has %d uses, want 4", len(bt.Uses))
	}
	// Selection propagation: restricting B to the Asia bin of its
	// A-side D1 use must return exactly the B rows whose A parent points at
	// Asia (continent bins are unique, so the rewrite is exact here).
	asiaBin := dCont.BinOf(StrKey("Asia"))
	entries := bt.SelectBins(bt.Uses[0], asiaBin, asiaBin)
	got := make(map[int64]bool)
	baCol := bt.Data.MustColumn("b_a")
	for _, r := range EntriesRanges(entries) {
		for i := r.Start; i < r.End; i++ {
			got[baCol.I64[i]] = true
		}
	}
	aD1 := tabs["a"].MustColumn("a_d1")
	cont := tabs["d1"].MustColumn("continent")
	// Every selected B row's parent must be Asia, and every Asia parent's
	// B row must be selected.
	orig := tabs["b"].MustColumn("b_a")
	for i := 0; i < tabs["b"].Rows(); i++ {
		parent := orig.I64[i]
		isAsia := cont.Str[aD1.I64[parent]] == "Asia"
		if isAsia && !got[parent] {
			t.Fatalf("b row %d (parent %d, Asia) missed by bin selection", i, parent)
		}
	}
	for parent := range got {
		if cont.Str[aD1.I64[parent]] != "Asia" {
			t.Fatalf("bin selection returned non-Asia parent %d", parent)
		}
	}
	// Co-clustering of A and B on the shared dimensions: every B group's
	// gathered D1 bits must equal the D1 bin of its parent row in A.
	use := bt.Uses[0]
	avail := Ones(use.Mask)
	d1OfA := make([]uint64, tabs["a"].Rows())
	for i := 0; i < tabs["a"].Rows(); i++ {
		d1OfA[i] = dCont.BinOf(StrKey(cont.Str[aD1.I64[i]]))
	}
	for _, e := range bt.Count {
		gbits := GatherBits(e.Key, use.Mask, bt.Bits)
		for i := e.Offset; i < e.Offset+e.Count; i++ {
			want := d1OfA[baCol.I64[i]] >> uint(dCont.Bits()-avail)
			if gbits != want {
				t.Fatalf("b row %d: group D1 bits %b, parent bin prefix %b", i, gbits, want)
			}
		}
	}
}

// TestAdvisorNoHintsNoDesign checks that tables without index declarations
// stay unclustered (the paper's REGION).
func TestAdvisorNoHintsNoDesign(t *testing.T) {
	schema := catalog.MustParseDDL(`
CREATE TABLE r (rk INT, PRIMARY KEY (rk));
CREATE TABLE n (nk INT, rk INT, PRIMARY KEY (nk),
  CONSTRAINT fk_n_r FOREIGN KEY (rk) REFERENCES r);
`)
	design, err := (&Advisor{Schema: schema}).Design()
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if len(design.Tables) != 0 || len(design.Dimensions) != 0 {
		t.Errorf("design not empty: %d tables, %d dimensions", len(design.Tables), len(design.Dimensions))
	}
}

// TestAdvisorFKIndexWithoutRefDesign checks that an FK-matching index whose
// referenced table carries no dimensions contributes nothing.
func TestAdvisorFKIndexWithoutRefDesign(t *testing.T) {
	schema := catalog.MustParseDDL(`
CREATE TABLE r (rk INT, PRIMARY KEY (rk));
CREATE TABLE n (nk INT, rk INT, PRIMARY KEY (nk),
  CONSTRAINT fk_n_r FOREIGN KEY (rk) REFERENCES r);
CREATE INDEX nr_idx ON n (rk);
`)
	design, err := (&Advisor{Schema: schema}).Design()
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if len(design.Tables) != 0 {
		t.Errorf("unexpected designs: %+v", design.Tables[0])
	}
}

// TestAdvisorDedupSamePath checks that the same dimension arriving twice
// over the same path is used only once.
func TestAdvisorDedupSamePath(t *testing.T) {
	schema := catalog.MustParseDDL(`
CREATE TABLE d (dk INT, v INT, PRIMARY KEY (dk));
CREATE TABLE f (fk INT, dk INT, PRIMARY KEY (fk),
  CONSTRAINT fk_f_d FOREIGN KEY (dk) REFERENCES d);
CREATE INDEX v_idx ON d (v);
CREATE INDEX fd_idx ON f (dk);
CREATE INDEX fd2_idx ON f (dk);
`)
	design, err := (&Advisor{Schema: schema}).Design()
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	td := design.Table("f")
	if td == nil || len(td.Uses) != 1 {
		t.Fatalf("f uses = %+v, want exactly 1", td)
	}
}
