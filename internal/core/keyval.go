// Package core implements the paper's contribution: Bitwise Dimensional
// Co-Clustering (BDCC). It provides
//
//   - BDCC dimensions (Definition 1): order-respecting surjective mappings
//     from a dimension key's value domain onto bin numbers, created with the
//     frequency-balanced binning of the companion tech report "Creating
//     Dimensions for BDCC" (binning.go);
//   - dimension paths (Definition 2) and dimension uses with bitmasks
//     (Definition 3), including round-robin (Z-order) and major-minor bit
//     interleaving (zorder.go);
//   - BDCC tables and their count tables (Definition 4), built by the
//     self-tuning Algorithm 1 with log₂ group-size histograms and efficient-
//     random-access-size (AR) granularity choice (bdcctable.go, stats.go);
//   - the semi-automatic schema design Algorithm 2 that derives a co-clustered
//     schema from classic DDL with CREATE INDEX hints (alg2.go);
//   - scatter-scan order computation over count tables, the access method
//     that feeds the sandwich operators (scatter.go); and
//   - small-group relocation after bulk load ("puff pastry" handling).
package core

import (
	"fmt"
	"strings"

	"bdcc/internal/vector"
)

// KeyPart is one component of a (possibly composite) dimension key value.
// Numeric parts order numerically, string parts lexicographically. An Inf
// part compares greater than every ordinary part — query rewriting uses it
// to close prefix ranges over composite keys ("all nations of region 2" =
// [(2), (2, +∞)]).
type KeyPart struct {
	IsStr bool
	Inf   bool
	I     int64
	S     string
}

// InfPart is the +∞ sentinel part.
func InfPart() KeyPart { return KeyPart{Inf: true} }

// KeyVal is a composite dimension key value, compared lexicographically
// part by part (Definition 1 requires an ordered key domain so that bins can
// be value-ordered).
type KeyVal struct {
	Parts []KeyPart
}

// IntKey returns a single-part numeric key value.
func IntKey(v int64) KeyVal { return KeyVal{Parts: []KeyPart{{I: v}}} }

// StrKey returns a single-part string key value.
func StrKey(s string) KeyVal { return KeyVal{Parts: []KeyPart{{IsStr: true, S: s}}} }

// Key returns a composite key value from the given parts.
func Key(parts ...KeyPart) KeyVal { return KeyVal{Parts: parts} }

// Compare orders key values lexicographically; shorter prefixes order first.
func (k KeyVal) Compare(o KeyVal) int {
	n := len(k.Parts)
	if len(o.Parts) < n {
		n = len(o.Parts)
	}
	for i := 0; i < n; i++ {
		a, b := k.Parts[i], o.Parts[i]
		if a.Inf || b.Inf {
			switch {
			case a.Inf && b.Inf:
				continue
			case a.Inf:
				return 1
			default:
				return -1
			}
		}
		if a.IsStr != b.IsStr {
			// Mixed-typed parts should not occur for well-formed keys; order
			// numerics first deterministically.
			if a.IsStr {
				return 1
			}
			return -1
		}
		if a.IsStr {
			if c := strings.Compare(a.S, b.S); c != 0 {
				return c
			}
		} else {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
		}
	}
	switch {
	case len(k.Parts) < len(o.Parts):
		return -1
	case len(k.Parts) > len(o.Parts):
		return 1
	}
	return 0
}

// String implements fmt.Stringer.
func (k KeyVal) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, p := range k.Parts {
		if i > 0 {
			b.WriteByte(',')
		}
		if p.IsStr {
			fmt.Fprintf(&b, "%q", p.S)
		} else {
			fmt.Fprintf(&b, "%d", p.I)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// KeyOfRow assembles the key value of row i from the given key columns
// (pre-fetched as raw slices to avoid per-row dispatch).
type keyCols struct {
	kinds []vector.Kind
	i64   [][]int64
	str   [][]string
}

func (kc *keyCols) at(i int) KeyVal {
	parts := make([]KeyPart, len(kc.kinds))
	for c, k := range kc.kinds {
		if k == vector.String {
			parts[c] = KeyPart{IsStr: true, S: kc.str[c][i]}
		} else {
			parts[c] = KeyPart{I: kc.i64[c][i]}
		}
	}
	return KeyVal{Parts: parts}
}
