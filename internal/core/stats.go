package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// GroupStats is the logarithmic group-size histogram Algorithm 1 collects
// "in a piggy-backed aggregation" during bulk load, one per possible
// count-table granularity: entry x counts groups of size [2^(x-1), 2^x).
// Correlated or hierarchical dimensions reveal themselves here as missing
// groups and skewed sizes, and Algorithm 1 reacts by choosing a higher
// granularity — the paper's "puff pastry does not hurt" property.
type GroupStats struct {
	// Granularity is the count-table bit granularity these stats describe.
	Granularity int
	// Groups[x] counts groups whose tuple count falls in [2^(x-1), 2^x).
	Groups []int64
	// Tuples[x] sums the tuple counts of those groups.
	Tuples []int64
	// NumGroups is the total number of (occupied) groups.
	NumGroups int64
	// TotalTuples is the table's tuple count.
	TotalTuples int64
}

// bucketOf returns the histogram bucket of a group of size n ≥ 1.
func bucketOf(n int64) int { return bits.Len64(uint64(n)) }

// addGroup records one group of size n.
func (g *GroupStats) addGroup(n int64) {
	b := bucketOf(n)
	for len(g.Groups) <= b {
		g.Groups = append(g.Groups, 0)
		g.Tuples = append(g.Tuples, 0)
	}
	g.Groups[b]++
	g.Tuples[b] += n
	g.NumGroups++
	g.TotalTuples += n
}

// TuplesInGroupsAtLeast returns the number of tuples that live in groups of
// at least minRows tuples, computed conservatively from the histogram: only
// buckets whose lower bound reaches minRows count. Algorithm 1's granularity
// chooser uses the exact sweep (TuplesInLargeGroups) instead; this
// bucket-granular variant serves reporting.
func (g *GroupStats) TuplesInGroupsAtLeast(minRows int64) int64 {
	if minRows <= 1 {
		return g.TotalTuples
	}
	var sum int64
	for x := range g.Groups {
		lo := int64(1) << uint(x-1) // lower bound of bucket x (x ≥ 1)
		if x == 0 {
			lo = 0
		}
		if lo >= minRows {
			sum += g.Tuples[x]
		}
	}
	return sum
}

// String renders the histogram for diagnostics.
func (g *GroupStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "g=%d groups=%d:", g.Granularity, g.NumGroups)
	for x, n := range g.Groups {
		if n == 0 {
			continue
		}
		lo := int64(0)
		if x > 0 {
			lo = 1 << uint(x-1)
		}
		fmt.Fprintf(&b, " [%d,%d):%d", lo, int64(1)<<uint(x), n)
	}
	return b.String()
}

// TuplesInLargeGroups returns, exactly, how many tuples of the sorted
// full-granularity key column live in groups of at least minRows tuples when
// grouped at granularity g ≤ fullBits.
func TuplesInLargeGroups(keys []uint64, fullBits, g int, minRows int64) int64 {
	shift := uint(fullBits - g)
	var sum, run int64
	flush := func() {
		if run >= minRows {
			sum += run
		}
		run = 0
	}
	for i := range keys {
		if i > 0 && keys[i]>>shift != keys[i-1]>>shift {
			flush()
		}
		run++
	}
	flush()
	return sum
}

// CollectGroupStats computes, from the sorted full-granularity keys of a
// table, the group-size histogram at every granularity 1..fullBits. keys
// must be ascending. The result is indexed by granularity-1.
func CollectGroupStats(keys []uint64, fullBits int) []*GroupStats {
	out := make([]*GroupStats, fullBits)
	for g := 1; g <= fullBits; g++ {
		gs := &GroupStats{Granularity: g}
		shift := uint(fullBits - g)
		var run int64
		for i := range keys {
			if i > 0 && keys[i]>>shift != keys[i-1]>>shift {
				gs.addGroup(run)
				run = 0
			}
			run++
		}
		if run > 0 {
			gs.addGroup(run)
		}
		out[g-1] = gs
	}
	return out
}
