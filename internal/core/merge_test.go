package core

import (
	"math"
	"math/rand"
	"testing"

	"bdcc/internal/storage"
)

// mergeFixture builds a base table clustered on a single local dimension whose
// bins were cut over the base data only, plus an un-clustered delta whose keys
// partly fall outside the observed domain (BinOf clamps those to the nearest
// bin, the production drift case). Payloads number rows globally so any lost,
// duplicated or misplaced row is visible.
func mergeFixture(t testing.TB, nBase, nDelta int, seed int64) (*Dimension, *storage.Table, *storage.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(n, off int, outOfRange bool) *storage.Table {
		k := make([]int64, n)
		pay := make([]int64, n)
		for i := range k {
			k[i] = rng.Int63n(256)
			if outOfRange && rng.Intn(4) == 0 {
				k[i] = 300 + rng.Int63n(50)
			}
			pay[i] = int64(off + i)
		}
		return storage.MustNewTable("t", 4<<10,
			storage.NewInt64Column("k", k), storage.NewInt64Column("payload", pay))
	}
	baseTab := mk(nBase, 0, false)
	deltaTab := mk(nDelta, nBase, true)
	obs := make([]WeightedKey, nBase)
	for i, v := range baseTab.MustColumn("k").I64 {
		obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
	}
	dim, err := CreateDimension("d_k", "t", []string{"k"}, obs, 6)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	return dim, baseTab, deltaTab
}

func binsOf(dim *Dimension, tab *storage.Table, from int) []uint64 {
	keys := tab.MustColumn("k").I64[from:]
	bins := make([]uint64, len(keys))
	for i, v := range keys {
		bins[i] = dim.BinOf(IntKey(v))
	}
	return bins
}

func sliceRows(t testing.TB, tab *storage.Table, lo, hi int) *storage.Table {
	t.Helper()
	cols := make([]*storage.Column, len(tab.Cols))
	for i, c := range tab.Cols {
		cols[i] = storage.NewInt64Column(c.Name, append([]int64(nil), c.I64[lo:hi]...))
	}
	return storage.MustNewTable(tab.Name, tab.PageSize, cols...)
}

func sameBDCCTable(t *testing.T, got, want *BDCCTable) {
	t.Helper()
	if got.Bits != want.Bits || got.FullBits != want.FullBits {
		t.Fatalf("granularity %d/%d, want %d/%d", got.Bits, got.FullBits, want.Bits, want.FullBits)
	}
	if got.Rows() != want.Rows() || got.RelocatedRows != want.RelocatedRows {
		t.Fatalf("rows %d+%d relocated, want %d+%d", got.Rows(), got.RelocatedRows, want.Rows(), want.RelocatedRows)
	}
	if len(got.SortedKeys) != len(want.SortedKeys) {
		t.Fatalf("%d sorted keys, want %d", len(got.SortedKeys), len(want.SortedKeys))
	}
	for i := range want.SortedKeys {
		if got.SortedKeys[i] != want.SortedKeys[i] {
			t.Fatalf("sorted key %d = %#x, want %#x", i, got.SortedKeys[i], want.SortedKeys[i])
		}
	}
	if len(got.Count) != len(want.Count) {
		t.Fatalf("%d count entries, want %d", len(got.Count), len(want.Count))
	}
	for i, w := range want.Count {
		if got.Count[i] != w {
			t.Fatalf("count entry %d = %+v, want %+v", i, got.Count[i], w)
		}
	}
	if got.Data.Rows() != want.Data.Rows() {
		t.Fatalf("data rows %d, want %d", got.Data.Rows(), want.Data.Rows())
	}
	for _, name := range []string{"k", "payload"} {
		g, w := got.Data.MustColumn(name).I64, want.Data.MustColumn(name).I64
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, g[i], w[i])
			}
		}
	}
}

// TestMergeMatchesFrozenRebuild pins the incremental path against the
// independent reference: splicing delta batches into the retained clustering
// (binary merge + count arithmetic) must produce, bit for bit, the same table
// as re-running Algorithm 1 from scratch over base-then-delta insertion order
// with the design frozen (same dimension, same granularity). Covered with
// relocation on (fresh decisions over the merged table) and off, and with the
// delta split across multiple merge calls.
func TestMergeMatchesFrozenRebuild(t *testing.T) {
	for _, tc := range []struct {
		name    string
		opt     BuildOptions
		batches int
	}{
		{"one-batch-relocation", BuildOptions{}, 1},
		{"three-batches", BuildOptions{DisableRelocation: true}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nBase, nDelta := 6000, 900
			dim, baseTab, deltaTab := mergeFixture(t, nBase, nDelta, 7)
			base, err := BuildBDCCTable("t", baseTab,
				[]UseBinding{{Dim: dim, BinNos: binsOf(dim, baseTab, 0)}}, tc.opt)
			if err != nil {
				t.Fatalf("build base: %v", err)
			}
			cur := base
			for b := 0; b < tc.batches; b++ {
				lo, hi := b*nDelta/tc.batches, (b+1)*nDelta/tc.batches
				batch := sliceRows(t, deltaTab, lo, hi)
				cur, err = MergeBDCCTable(cur, batch,
					[]UseBinding{{Dim: dim, Path: nil, BinNos: binsOf(dim, batch, 0)}}, tc.opt)
				if err != nil {
					t.Fatalf("merge batch %d: %v", b, err)
				}
				if err := cur.Validate(); err != nil {
					t.Fatalf("after batch %d: %v", b, err)
				}
			}
			concat, err := storage.Concat(baseTab, baseTab.Rows(), deltaTab)
			if err != nil {
				t.Fatalf("concat: %v", err)
			}
			refOpt := tc.opt
			refOpt.ForceBits = base.Bits
			ref, err := BuildBDCCTable("t", concat,
				[]UseBinding{{Dim: dim, BinNos: binsOf(dim, concat, 0)}}, refOpt)
			if err != nil {
				t.Fatalf("frozen rebuild: %v", err)
			}
			sameBDCCTable(t, cur, ref)
		})
	}
}

// TestRebinDeterminismUnderArrivalOrder checks the property that makes
// incremental maintenance sound: a row's cell is a pure function of the row,
// so the same delta rows produce the same cells — identical sorted keys and
// count table, and identical per-cell row multisets — no matter the order
// they arrive in.
func TestRebinDeterminismUnderArrivalOrder(t *testing.T) {
	nBase, nDelta := 4000, 600
	dim, baseTab, deltaTab := mergeFixture(t, nBase, nDelta, 21)
	build := func() *BDCCTable {
		base, err := BuildBDCCTable("t", baseTab,
			[]UseBinding{{Dim: dim, BinNos: binsOf(dim, baseTab, 0)}}, BuildOptions{DisableRelocation: true})
		if err != nil {
			t.Fatalf("build base: %v", err)
		}
		return base
	}
	merge := func(base *BDCCTable, delta *storage.Table) *BDCCTable {
		out, err := MergeBDCCTable(base, delta,
			[]UseBinding{{Dim: dim, BinNos: binsOf(dim, delta, 0)}}, BuildOptions{DisableRelocation: true})
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		return out
	}
	inOrder := merge(build(), deltaTab)
	shuffle := make([]int32, nDelta)
	for i := range shuffle {
		shuffle[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(nDelta, func(i, j int) { shuffle[i], shuffle[j] = shuffle[j], shuffle[i] })
	shuffled, err := deltaTab.Permute(shuffle)
	if err != nil {
		t.Fatalf("shuffle: %v", err)
	}
	// Half the shuffled rows in one batch, half in a second.
	reordered := merge(merge(build(), sliceRows(t, shuffled, 0, nDelta/2)), sliceRows(t, shuffled, nDelta/2, nDelta))

	for i := range inOrder.SortedKeys {
		if inOrder.SortedKeys[i] != reordered.SortedKeys[i] {
			t.Fatalf("sorted key %d differs under arrival order: %#x vs %#x",
				i, inOrder.SortedKeys[i], reordered.SortedKeys[i])
		}
	}
	if len(inOrder.Count) != len(reordered.Count) {
		t.Fatalf("%d vs %d count entries under arrival order", len(inOrder.Count), len(reordered.Count))
	}
	payA := inOrder.Data.MustColumn("payload").I64
	payB := reordered.Data.MustColumn("payload").I64
	for i, e := range inOrder.Count {
		if reordered.Count[i] != e {
			t.Fatalf("count entry %d: %+v vs %+v under arrival order", i, e, reordered.Count[i])
		}
		cell := map[int64]int{}
		for r := e.Offset; r < e.Offset+e.Count; r++ {
			cell[payA[r]]++
			cell[payB[r]]--
		}
		for p, c := range cell {
			if c != 0 {
				t.Fatalf("cell %#x: row payload %d off by %d under arrival order", e.Key, p, c)
			}
		}
	}
}

// TestMergeCountTableConsistency brute-force recounts every cell after
// batched merges: entries must match the key population at the count-table
// granularity, and the merged key order must be nondecreasing.
func TestMergeCountTableConsistency(t *testing.T) {
	dim, baseTab, deltaTab := mergeFixture(t, 5000, 750, 11)
	base, err := BuildBDCCTable("t", baseTab,
		[]UseBinding{{Dim: dim, BinNos: binsOf(dim, baseTab, 0)}}, BuildOptions{})
	if err != nil {
		t.Fatalf("build base: %v", err)
	}
	cur := base
	for b := 0; b < 5; b++ {
		lo, hi := b*150, (b+1)*150
		batch := sliceRows(t, deltaTab, lo, hi)
		cur, err = MergeBDCCTable(cur, batch,
			[]UseBinding{{Dim: dim, BinNos: binsOf(dim, batch, 0)}}, BuildOptions{})
		if err != nil {
			t.Fatalf("merge batch %d: %v", b, err)
		}
	}
	if err := cur.Validate(); err != nil {
		t.Fatal(err)
	}
	shift := uint(cur.FullBits - cur.Bits)
	want := map[uint64]int64{}
	for i, k := range cur.SortedKeys {
		if i > 0 && k < cur.SortedKeys[i-1] {
			t.Fatalf("merged keys decrease at %d", i)
		}
		want[k>>shift]++
	}
	if len(want) != len(cur.Count) {
		t.Fatalf("%d populated cells, %d count entries", len(want), len(cur.Count))
	}
	for _, e := range cur.Count {
		if want[e.Key] != e.Count {
			t.Fatalf("cell %#x counts %d, population is %d", e.Key, e.Count, want[e.Key])
		}
	}
}

// TestDriftStats checks the two detector signals: a delta drawn from the base
// distribution reads as low distance, while arrivals clamping past the
// observed domain concentrate in the last cells and read as drifted.
func TestDriftStats(t *testing.T) {
	dim, baseTab, _ := mergeFixture(t, 6000, 0, 31)
	base, err := BuildBDCCTable("t", baseTab,
		[]UseBinding{{Dim: dim, BinNos: binsOf(dim, baseTab, 0)}}, BuildOptions{DisableRelocation: true})
	if err != nil {
		t.Fatalf("build base: %v", err)
	}
	keysFor := func(vals []int64) []uint64 {
		tab := storage.MustNewTable("t", 4<<10,
			storage.NewInt64Column("k", vals), storage.NewInt64Column("payload", make([]int64, len(vals))))
		keys, err := DeltaKeys(base, []UseBinding{{Dim: dim, BinNos: binsOf(dim, tab, 0)}})
		if err != nil {
			t.Fatalf("DeltaKeys: %v", err)
		}
		return keys
	}
	rng := rand.New(rand.NewSource(32))
	uniform := make([]int64, 1000)
	for i := range uniform {
		uniform[i] = rng.Int63n(256)
	}
	low := DriftStats(base, keysFor(uniform))
	if low.DeltaRows != 1000 || low.Drifted(0.3) {
		t.Fatalf("in-distribution delta reads as drifted: %v", low)
	}
	beyond := make([]int64, 1000)
	for i := range beyond {
		beyond[i] = 10_000 + rng.Int63n(5)
	}
	high := DriftStats(base, keysFor(beyond))
	if !high.Drifted(0.3) || high.HotCellFrac < 0.9 {
		t.Fatalf("out-of-domain delta not detected: %v", high)
	}
	if high.Distance <= low.Distance {
		t.Fatalf("distance ordering: drifted %.3f <= uniform %.3f", high.Distance, low.Distance)
	}
	if math.IsNaN(high.Distance) || high.Distance > 1 {
		t.Fatalf("distance out of range: %v", high.Distance)
	}
	if none := DriftStats(base, nil); none.Drifted(0) || none.Distance != 0 {
		t.Fatalf("empty delta reports drift: %v", none)
	}
}
