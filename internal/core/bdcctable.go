package core

import (
	"fmt"
	"math"

	"bdcc/internal/iosim"
	"bdcc/internal/storage"
)

// DimensionUse is U = 〈D, P, M〉 (Definition 3): a dimension, the foreign-key
// path from the using table to the dimension key, and the bitmask that
// places the dimension's bits in the _bdcc_ ordering key.
type DimensionUse struct {
	Dim *Dimension
	// Path is P(U): the chain of foreign-key identifiers from the using
	// table to the dimension's host table; empty for a local dimension.
	Path []string
	// Mask is M(U) at the table's count-table granularity Bits.
	Mask uint64
	// FullMask is the mask at full load granularity FullBits.
	FullMask uint64
}

// PathString renders P(U) in the paper's dotted notation ("-" when local).
func (u *DimensionUse) PathString() string {
	if len(u.Path) == 0 {
		return "-"
	}
	s := u.Path[0]
	for _, p := range u.Path[1:] {
		s += "." + p
	}
	return s
}

// CountEntry is one row of the metadata table T_COUNT(_bdcc_, count): a
// group key at count-table granularity, its tuple count, and the starting
// row of the group in the (sorted) BDCC table. Relocated is set when the
// group was smaller than the efficient access size and its tuples were
// copied to the relocation area at the end of the table; the original rows
// are then "marked invalid" (never scanned) exactly as in the paper.
type CountEntry struct {
	Key       uint64
	Count     int64
	Offset    int64
	Relocated bool
}

// BDCCTable is T_BDCC = 〈T, U₁…U_d, b〉 (Definition 4): the source table
// stored sorted on the interleaved _bdcc_ key, its dimension uses, and the
// count table at the self-tuned granularity chosen by Algorithm 1.
type BDCCTable struct {
	Name string
	// Data is the re-clustered table (sorted on _bdcc_ at FullBits
	// granularity), including the relocation area when small groups were
	// re-appended after load.
	Data *storage.Table
	// Uses are the dimension uses, in interleaving order.
	Uses []*DimensionUse
	// Bits is b, the count-table granularity; FullBits is B = Σ bits(D(Uᵢ)),
	// the granularity the table was loaded and sorted at.
	Bits     int
	FullBits int
	// Count is T_COUNT ordered by Key.
	Count []CountEntry
	// Stats are the per-granularity logarithmic group-size histograms
	// collected during load (Algorithm 1 (ii)).
	Stats []*GroupStats
	// RelocatedRows counts tuples copied into the relocation area.
	RelocatedRows int64
	// SortedKeys are the _bdcc_ keys (at FullBits granularity) of the logical
	// rows in table order, retained so incremental merges can splice new rows
	// into the clustering by binary merge instead of a full re-sort.
	SortedKeys []uint64
	// baseRows is the row count of the original table (before relocation).
	baseRows int64
}

// BuildOptions control BuildBDCCTable.
type BuildOptions struct {
	// Device provides the efficient random access size AR; zero value means
	// the paper's SSD setup.
	Device iosim.Device
	// MajorMinor switches from the default round-robin (Z-order)
	// interleaving to classical major-minor ordering in use order, for the
	// paper's "Other Orderings" self-comparison.
	MajorMinor bool
	// ForceBits pins the count-table granularity b instead of Algorithm 1's
	// choice; 0 means self-tuned.
	ForceBits int
	// MajorityFrac is the fraction of tuples that must live in
	// efficiently-readable groups for a granularity to qualify; 0 means 0.5.
	MajorityFrac float64
	// DisableRelocation turns off small-group relocation after load.
	DisableRelocation bool
}

// UseBinding pairs a planned dimension use with the per-row bin numbers of
// the source table, resolved over the use's foreign-key path.
type UseBinding struct {
	Dim    *Dimension
	Path   []string
	BinNos []uint64
}

// BuildBDCCTable implements Algorithm 1 (self-tuned BDCC table):
//
//	(i)   assign round-robin interleaved masks at maximal granularity
//	      B = Σ bits(D(Uᵢ));
//	(ii)  compute _bdcc_ at granularity B, sort the table on it and collect
//	      per-granularity group-size histograms;
//	(iii) find the densest (widest) column and choose the largest b ≤ B such
//	      that most tuples live in groups of at least the efficient random
//	      access size AR (see DESIGN.md on the AR/2 rounding that reproduces
//	      the paper's ⌈log₂ 550000⌉ = 20 example);
//	(iv)  create T_COUNT at granularity b by one ordered aggregation.
//
// Afterwards, unless disabled, groups below the efficient size are copied to
// a consecutive relocation area at the end of the table and their original
// extents marked invalid in the count table.
func BuildBDCCTable(name string, data *storage.Table, uses []UseBinding, opt BuildOptions) (*BDCCTable, error) {
	if len(uses) == 0 {
		return nil, fmt.Errorf("core: BDCC table %s needs at least one dimension use", name)
	}
	if opt.Device.PageSize == 0 {
		opt.Device = iosim.PaperSSD()
	}
	if opt.MajorityFrac == 0 {
		opt.MajorityFrac = 0.5
	}
	n := data.Rows()
	bitsPerUse := make([]int, len(uses))
	dimBits := make([]int, len(uses))
	for i, u := range uses {
		if len(u.BinNos) != n {
			return nil, fmt.Errorf("core: BDCC table %s use %d: %d bin numbers for %d rows",
				name, i, len(u.BinNos), n)
		}
		bitsPerUse[i] = u.Dim.Bits()
		dimBits[i] = u.Dim.Bits()
	}
	// (i) interleaved masks at maximal granularity.
	var fullMasks []uint64
	var fullBits int
	if opt.MajorMinor {
		fullMasks, fullBits = MajorMinorMasks(bitsPerUse)
	} else {
		fullMasks, fullBits = RoundRobinMasks(bitsPerUse)
	}
	if fullBits > 62 {
		return nil, fmt.Errorf("core: BDCC table %s: %d clustering bits exceed the 62-bit key budget", name, fullBits)
	}
	if err := ValidateMasks(fullMasks, fullBits); err != nil {
		return nil, err
	}
	// (ii) compute _bdcc_ and sort.
	keys := make([]uint64, n)
	binNos := make([]uint64, len(uses))
	for r := 0; r < n; r++ {
		for i := range uses {
			binNos[i] = uses[i].BinNos[r]
		}
		keys[r] = EncodeKey(binNos, dimBits, fullMasks, fullBits)
	}
	perm := storage.SortPerm(keys)
	sortedKeys := make([]uint64, n)
	for i, p := range perm {
		sortedKeys[i] = keys[p]
	}
	sorted, err := data.Permute(perm)
	if err != nil {
		return nil, err
	}
	stats := CollectGroupStats(sortedKeys, fullBits)
	// (iii) choose the count-table granularity against the densest column.
	minRows := efficientRows(sorted, opt.Device)
	b := opt.ForceBits
	if b == 0 {
		b = chooseGranularity(sortedKeys, fullBits, minRows, opt.MajorityFrac, n)
	}
	if b > fullBits {
		b = fullBits
	}
	if b < 1 {
		b = 1
	}
	truncated := TruncateMasks(fullMasks, fullBits, b)
	t := &BDCCTable{
		Name:       name,
		Data:       sorted,
		Bits:       b,
		FullBits:   fullBits,
		Stats:      stats,
		SortedKeys: sortedKeys,
		baseRows:   int64(n),
	}
	for i, u := range uses {
		t.Uses = append(t.Uses, &DimensionUse{
			Dim:      u.Dim,
			Path:     append([]string(nil), u.Path...),
			Mask:     truncated[i],
			FullMask: fullMasks[i],
		})
	}
	// (iv) T_COUNT by one ordered aggregation over consecutive equal groups.
	shift := uint(fullBits - b)
	for i := 0; i < n; {
		j := i
		g := sortedKeys[i] >> shift
		for j < n && sortedKeys[j]>>shift == g {
			j++
		}
		t.Count = append(t.Count, CountEntry{Key: g, Count: int64(j - i), Offset: int64(i)})
		i = j
	}
	if !opt.DisableRelocation {
		if err := t.relocateSmallGroups(minRows); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// efficientRows converts the device's efficient random access size into a
// minimum group row count against the densest column: a group qualifies when
// it rounds to at least one AR unit (≥ AR/2 bytes) in that column.
func efficientRows(t *storage.Table, dev iosim.Device) int64 {
	w := t.DensestColumn().Width()
	if w <= 0 {
		w = 1
	}
	rows := int64(math.Ceil(float64(dev.AR) / 2 / w))
	if rows < 1 {
		rows = 1
	}
	return rows
}

// chooseGranularity returns the largest granularity at which at least frac
// of the tuples live in groups of minRows or more; if no granularity
// qualifies (the table is smaller than the efficient access size) it returns
// the full granularity — the count table is tiny in that case and finer
// grouping costs nothing, which is also how the paper's NATION ends up
// clustered on all 5 bits.
func chooseGranularity(sortedKeys []uint64, fullBits int, minRows int64, frac float64, n int) int {
	need := int64(math.Ceil(frac * float64(n)))
	for g := fullBits; g >= 1; g-- {
		if TuplesInLargeGroups(sortedKeys, fullBits, g, minRows) >= need {
			return g
		}
	}
	return fullBits
}

// relocateSmallGroups implements the paper's post-load step: groups smaller
// than the efficient size are copied, in count-table order, to a consecutive
// area appended to the table; their count-table entries are re-pointed there
// and flagged. Relocation is skipped when small groups hold more than 20% of
// the data ("the low percentage of data in very small groups") — in that
// case the chosen granularity already guarantees efficient groups for the
// majority and relocating would double too much of the table.
func (t *BDCCTable) relocateSmallGroups(minRows int64) error {
	var small storage.RowRanges
	var smallTuples int64
	for _, e := range t.Count {
		if e.Count < minRows {
			small = append(small, storage.RowRange{Start: int(e.Offset), End: int(e.Offset + e.Count)})
			smallTuples += e.Count
		}
	}
	if smallTuples == 0 || float64(smallTuples) > 0.2*float64(t.baseRows) {
		return nil
	}
	data, err := t.Data.AppendRows(small)
	if err != nil {
		return err
	}
	t.Data = data
	t.RelocatedRows = smallTuples
	next := t.baseRows
	for i := range t.Count {
		if t.Count[i].Count < minRows {
			t.Count[i].Offset = next
			t.Count[i].Relocated = true
			next += t.Count[i].Count
		}
	}
	return nil
}

// Rows returns the logical row count (excluding relocated copies).
func (t *BDCCTable) Rows() int64 { return t.baseRows }

// UseFor returns the first use of the named dimension, or nil.
func (t *BDCCTable) UseFor(dim string) *DimensionUse {
	for _, u := range t.Uses {
		if u.Dim.Name == dim {
			return u
		}
	}
	return nil
}

// Validate checks the Definition 4 and count-table invariants.
func (t *BDCCTable) Validate() error {
	masks := make([]uint64, len(t.Uses))
	full := make([]uint64, len(t.Uses))
	for i, u := range t.Uses {
		masks[i] = u.Mask
		full[i] = u.FullMask
	}
	if err := ValidateMasks(full, t.FullBits); err != nil {
		return fmt.Errorf("core: table %s full masks: %w", t.Name, err)
	}
	if err := ValidateMasks(masks, t.Bits); err != nil {
		return fmt.Errorf("core: table %s masks: %w", t.Name, err)
	}
	var sum int64
	var prev uint64
	for i, e := range t.Count {
		if i > 0 && e.Key <= prev {
			return fmt.Errorf("core: table %s count table not strictly ordered at %d", t.Name, i)
		}
		prev = e.Key
		sum += e.Count
	}
	if sum != t.baseRows {
		return fmt.Errorf("core: table %s count table sums to %d, want %d", t.Name, sum, t.baseRows)
	}
	return nil
}
