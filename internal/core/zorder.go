package core

import (
	"fmt"
	"math/bits"
	"strconv"
)

// Bit-position convention: a _bdcc_ key clustered on b bits occupies the b
// least significant bits of a uint64; "position 0" is the most significant
// of those b bits (the paper's leftmost mask digit). A mask with bit
// (b-1-pos) set places a dimension bit at position pos.

// Ones returns ones(M), the number of set bits of a mask.
func Ones(m uint64) int { return bits.OnesCount64(m) }

// MaskString renders a mask the way the paper's tables do: as a binary
// numeral without leading zeros (so the mask of the use owning position 0
// has exactly b digits, the next one b-1, and so on).
func MaskString(m uint64) string { return strconv.FormatUint(m, 2) }

// RoundRobinMasks implements the bit-assignment step of Algorithm 1 (i) with
// the interleaving that reproduces the paper's Section IV masks: positions
// are assigned one at a time, major to minor, cycling over the dimension
// uses in their given order; a use drops out of the rotation once the full
// granularity of its dimension (bitsPerUse) is consumed. Assignment stops
// when every use exhausted its granularity, so the number of set bits across
// all masks is maximal: B = Σ bitsPerUse.
//
// It returns one mask per use, at full granularity B, and B itself.
func RoundRobinMasks(bitsPerUse []int) ([]uint64, int) {
	total := 0
	for _, b := range bitsPerUse {
		total += b
	}
	masks := make([]uint64, len(bitsPerUse))
	remaining := append([]int(nil), bitsPerUse...)
	pos := 0
	for pos < total {
		for i := range remaining {
			if remaining[i] == 0 {
				continue
			}
			masks[i] |= 1 << uint(total-1-pos)
			remaining[i]--
			pos++
		}
	}
	return masks, total
}

// MajorMinorMasks assigns all bits of each use consecutively, in use order
// (use 0 is the major dimension). This is the classical MDAM-style ordering
// the paper compares against in its "Other Orderings" experiment.
func MajorMinorMasks(bitsPerUse []int) ([]uint64, int) {
	total := 0
	for _, b := range bitsPerUse {
		total += b
	}
	masks := make([]uint64, len(bitsPerUse))
	pos := 0
	for i, n := range bitsPerUse {
		for j := 0; j < n; j++ {
			masks[i] |= 1 << uint(total-1-pos)
			pos++
		}
	}
	return masks, total
}

// TruncateMasks reduces masks from granularity fullBits to the top b bits
// (Definition 1 (vii) applied to the interleaved key): positions ≥ b are
// dropped, positions < b are kept. The returned masks are b bits wide.
func TruncateMasks(masks []uint64, fullBits, b int) []uint64 {
	out := make([]uint64, len(masks))
	shift := uint(fullBits - b)
	for i, m := range masks {
		out[i] = m >> shift
	}
	return out
}

// ValidateMasks checks the Definition 4 constraints: all b bits covered,
// no two masks overlapping.
func ValidateMasks(masks []uint64, b int) error {
	var union uint64
	for i, m := range masks {
		if m&^((1<<uint(b))-1) != 0 {
			return fmt.Errorf("core: mask %d (%s) exceeds %d bits", i, MaskString(m), b)
		}
		if union&m != 0 {
			return fmt.Errorf("core: mask %d (%s) overlaps earlier masks", i, MaskString(m))
		}
		union |= m
	}
	if b < 64 && union != (1<<uint(b))-1 {
		return fmt.Errorf("core: masks cover %s, want all %d bits", MaskString(union), b)
	}
	return nil
}

// ScatterBits places the top ones(mask) bits of bin (a bin number of width
// dimBits) at the mask's positions within a b-bit key: the most significant
// mask position receives the most significant used bin bit (Definition 4:
// "map the major ones(M(Uᵢ)) bits of nᵢ to _bdcc_ according to mask M(Uᵢ)").
func ScatterBits(bin uint64, dimBits int, mask uint64, b int) uint64 {
	n := Ones(mask)
	if n == 0 {
		return 0
	}
	reduced := bin
	if dimBits > n {
		reduced = bin >> uint(dimBits-n)
	}
	var key uint64
	next := n - 1 // index of the next (currently most significant unplaced) bit
	for pos := 0; pos < b; pos++ {
		bit := uint(b - 1 - pos)
		if mask&(1<<bit) == 0 {
			continue
		}
		key |= ((reduced >> uint(next)) & 1) << bit
		next--
		if next < 0 {
			break
		}
	}
	return key
}

// GatherBits extracts the bits of key at the mask's positions, returning an
// integer of width ones(mask) — the inverse of ScatterBits on the reduced
// bin number.
func GatherBits(key uint64, mask uint64, b int) uint64 {
	var out uint64
	for pos := 0; pos < b; pos++ {
		bit := uint(b - 1 - pos)
		if mask&(1<<bit) == 0 {
			continue
		}
		out = out<<1 | ((key >> bit) & 1)
	}
	return out
}

// EncodeKey composes the full _bdcc_ key of one tuple from its per-use bin
// numbers (Definition 4). masks must be at granularity b.
func EncodeKey(binNos []uint64, dimBits []int, masks []uint64, b int) uint64 {
	var key uint64
	for i, bin := range binNos {
		key |= ScatterBits(bin, dimBits[i], masks[i], b)
	}
	return key
}
