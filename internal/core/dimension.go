package core

import (
	"fmt"
	"math/bits"
	"sort"
)

// Bin is one entry 〈nᵢ, Vᵢ〉 of a dimension's sequence S(D). The value set Vᵢ
// is represented by its closed [Min, Max] key range — Definition 1 (ii)-(iii)
// guarantee bins never overlap and are value-ordered, so a range suffices.
type Bin struct {
	// No is the bin number nᵢ; creation assigns dense ascending numbers
	// 0..m-1, satisfying Definition 1 (i).
	No uint64
	// Min and Max delimit the bin's value set.
	Min KeyVal
	Max KeyVal
	// Weight is the total key frequency observed for this bin during
	// creation, kept for diagnostics and tests of binning balance.
	Weight int64
	// Unique marks singleton bins |Vᵢ| = 1 (Definition 1 (iv)).
	Unique bool
}

// Dimension is a BDCC dimension D = 〈T, K, S〉 (Definition 1): an order
// respecting surjective mapping from the dimension key domain of a host
// table onto bin numbers.
type Dimension struct {
	// Name identifies the dimension (the paper's D_NATION, D_DATE, ...).
	Name string
	// Table is T(D), the table hosting the dimension key.
	Table string
	// Key is K(D), the ordered list of key column names on Table.
	Key []string
	// Bins is S(D), ordered by bin number and by value range.
	Bins []Bin
}

// NumBins returns m(D) = |S|.
func (d *Dimension) NumBins() int { return len(d.Bins) }

// Bits returns bits(D) = ⌈log₂|S|⌉, the dimension granularity
// (Definition 1 (vi)).
func (d *Dimension) Bits() int {
	return BitsFor(len(d.Bins))
}

// BitsFor returns ⌈log₂ n⌉ for n ≥ 1 (and 0 for n ≤ 1).
func BitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// BinOf returns bin_D(v), the bin number of key value v (Definition 1 (v)).
// Values outside every bin (unseen at creation time) map to the nearest bin
// in order, keeping the mapping total and monotone — required for range
// rewrites to stay correct under data drift.
func (d *Dimension) BinOf(v KeyVal) uint64 {
	i := sort.Search(len(d.Bins), func(i int) bool {
		return d.Bins[i].Max.Compare(v) >= 0
	})
	if i == len(d.Bins) {
		i = len(d.Bins) - 1
	}
	return d.Bins[i].No
}

// BinRange returns the inclusive bin-number interval covering all key values
// in [lo, hi]. Either bound may be nil for an open end. This is the mapping
// the query rewriter uses to turn a predicate on dimension key attributes
// into a _bdcc_ range restriction.
func (d *Dimension) BinRange(lo, hi *KeyVal) (uint64, uint64) {
	loBin := uint64(0)
	hiBin := uint64(len(d.Bins) - 1)
	if lo != nil {
		i := sort.Search(len(d.Bins), func(i int) bool {
			return d.Bins[i].Max.Compare(*lo) >= 0
		})
		if i == len(d.Bins) {
			i = len(d.Bins) - 1
		}
		loBin = d.Bins[i].No
	}
	if hi != nil {
		i := sort.Search(len(d.Bins), func(i int) bool {
			return d.Bins[i].Min.Compare(*hi) > 0
		})
		if i == 0 {
			i = 1
		}
		hiBin = d.Bins[i-1].No
	}
	if hiBin < loBin {
		hiBin = loBin
	}
	return loBin, hiBin
}

// Reduce returns the dimension D|g with granularity reduced to g bits
// (Definition 1 (vii)): the bits(D)-g least significant bits of all bin
// numbers are chopped off and bins with equal numbers are united.
func (d *Dimension) Reduce(g int) (*Dimension, error) {
	b := d.Bits()
	if g > b {
		return nil, fmt.Errorf("core: cannot reduce dimension %s from %d to %d bits", d.Name, b, g)
	}
	if g == b {
		return d, nil
	}
	shift := uint(b - g)
	out := &Dimension{Name: fmt.Sprintf("%s|%d", d.Name, g), Table: d.Table, Key: d.Key}
	for _, bin := range d.Bins {
		no := bin.No >> shift
		if n := len(out.Bins); n > 0 && out.Bins[n-1].No == no {
			last := &out.Bins[n-1]
			last.Max = bin.Max
			last.Weight += bin.Weight
			last.Unique = false
			continue
		}
		out.Bins = append(out.Bins, Bin{No: no, Min: bin.Min, Max: bin.Max, Weight: bin.Weight, Unique: bin.Unique})
	}
	return out, nil
}

// Validate checks the Definition 1 invariants: ascending bin numbers,
// non-overlapping and value-ordered bins.
func (d *Dimension) Validate() error {
	if len(d.Bins) == 0 {
		return fmt.Errorf("core: dimension %s has no bins", d.Name)
	}
	for i := range d.Bins {
		if d.Bins[i].Min.Compare(d.Bins[i].Max) > 0 {
			return fmt.Errorf("core: dimension %s bin %d has Min > Max", d.Name, i)
		}
		if i == 0 {
			continue
		}
		if d.Bins[i-1].No >= d.Bins[i].No {
			return fmt.Errorf("core: dimension %s bin numbers not ascending at %d", d.Name, i)
		}
		if d.Bins[i-1].Max.Compare(d.Bins[i].Min) >= 0 {
			return fmt.Errorf("core: dimension %s bins overlap or are unordered at %d", d.Name, i)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (d *Dimension) String() string {
	return fmt.Sprintf("%s(%d bits over %s.%v)", d.Name, d.Bits(), d.Table, d.Key)
}
