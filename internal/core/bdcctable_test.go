package core

import (
	"math/rand"
	"testing"

	"bdcc/internal/iosim"
	"bdcc/internal/storage"
)

// buildTestTable creates a storage table of n rows with a dimension key
// column "k" uniform in [0, domain) and a payload column, plus a dimension
// over it, and BDCC-clusters the table on that single dimension.
func buildTestTable(t *testing.T, n int, domain int64, maxBits int, opt BuildOptions) (*BDCCTable, *Dimension, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	k := make([]int64, n)
	payload := make([]int64, n)
	for i := range k {
		k[i] = rng.Int63n(domain)
		payload[i] = int64(i)
	}
	tab := storage.MustNewTable("t", 32<<10,
		storage.NewInt64Column("k", k),
		storage.NewInt64Column("payload", payload),
	)
	obs := make([]WeightedKey, n)
	for i, v := range k {
		obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
	}
	dim, err := CreateDimension("d_k", "t", []string{"k"}, obs, maxBits)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	bins := make([]uint64, n)
	for i, v := range k {
		bins[i] = dim.BinOf(IntKey(v))
	}
	bt, err := BuildBDCCTable("t", tab, []UseBinding{{Dim: dim, BinNos: bins}}, opt)
	if err != nil {
		t.Fatalf("BuildBDCCTable: %v", err)
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return bt, dim, k
}

// TestBuildSortsOnBDCC checks Definition 4: the stored table is sorted on
// _bdcc_, i.e. on the dimension bin of k for a single-use table.
func TestBuildSortsOnBDCC(t *testing.T) {
	bt, dim, _ := buildTestTable(t, 5000, 1000, 6, BuildOptions{DisableRelocation: true})
	kc := bt.Data.MustColumn("k")
	var prev uint64
	for i, v := range kc.I64 {
		b := dim.BinOf(IntKey(v))
		if i > 0 && b < prev {
			t.Fatalf("row %d: bin %d after bin %d — not sorted on _bdcc_", i, b, prev)
		}
		prev = b
	}
}

// TestBuildPreservesMultiset checks the clustering is a permutation.
func TestBuildPreservesMultiset(t *testing.T) {
	bt, _, orig := buildTestTable(t, 3000, 500, 5, BuildOptions{DisableRelocation: true})
	count := make(map[int64]int)
	for _, v := range orig {
		count[v]++
	}
	for _, v := range bt.Data.MustColumn("k").I64 {
		count[v]--
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("value %d count off by %d after clustering", v, c)
		}
	}
}

// TestCountTableInvariants checks T_COUNT: ordered keys, counts summing to
// the row count, offsets delimiting consecutive runs.
func TestCountTableInvariants(t *testing.T) {
	bt, _, _ := buildTestTable(t, 8000, 256, 8, BuildOptions{DisableRelocation: true})
	var sum int64
	next := int64(0)
	for i, e := range bt.Count {
		if e.Offset != next {
			t.Fatalf("entry %d offset %d, want %d", i, e.Offset, next)
		}
		next += e.Count
		sum += e.Count
	}
	if sum != bt.Rows() {
		t.Fatalf("count sums to %d, want %d", sum, bt.Rows())
	}
}

// TestAlgorithm1LineitemGranularity reproduces the paper's worked example:
// "Given that the highest density column l_comment has 550000 pages (using
// 32KB), Algorithm 1 chose to cluster LINEITEM using granularity
// ⌈log₂ 550000⌉ = 20 bits". We scale the byte geometry down by 2¹⁰ (pages of
// 4 KB, 537 pages ≈ 550000/1024) keeping the page/AR ratio, so the chooser
// must land at ⌈log₂ 537⌉ = 10 bits on a uniform key.
func TestAlgorithm1LineitemGranularity(t *testing.T) {
	const pages = 537
	dev := iosim.Device{PageSize: 4096, SeqBandwidth: 1 << 30, AR: 4096, RandEfficiency: 0.8}
	// 512 rows per 4 KB page of an 8-byte column: n = 512*pages rows, so
	// groups at the expected granularity hold hundreds of rows and binomial
	// noise is negligible (as it is for the paper's SF100 LINEITEM).
	n := 512 * pages
	rng := rand.New(rand.NewSource(1))
	k := make([]int64, n)
	for i := range k {
		k[i] = rng.Int63n(1 << 13)
	}
	tab := storage.MustNewTable("li", dev.PageSize, storage.NewInt64Column("k", k))
	obs := make([]WeightedKey, n)
	for i, v := range k {
		obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
	}
	dim, err := CreateDimension("d", "li", []string{"k"}, obs, 13)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	bins := make([]uint64, n)
	for i, v := range k {
		bins[i] = dim.BinOf(IntKey(v))
	}
	bt, err := BuildBDCCTable("li", tab, []UseBinding{{Dim: dim, BinNos: bins}},
		BuildOptions{Device: dev, DisableRelocation: true})
	if err != nil {
		t.Fatalf("BuildBDCCTable: %v", err)
	}
	if want := BitsFor(pages); bt.Bits != want {
		t.Errorf("chosen granularity = %d bits, want ⌈log₂ %d⌉ = %d", bt.Bits, pages, want)
	}
}

// TestAlgorithm1TinyTableFullGranularity checks the NATION behaviour: a
// table far below AR keeps full granularity (all 5 bits in the paper).
func TestAlgorithm1TinyTableFullGranularity(t *testing.T) {
	bt, dim, _ := buildTestTable(t, 25, 25, 5, BuildOptions{})
	if bt.Bits != bt.FullBits {
		t.Errorf("tiny table clustered at %d of %d bits, want full granularity", bt.Bits, bt.FullBits)
	}
	if bt.FullBits != dim.Bits() {
		t.Errorf("full bits %d != dimension bits %d", bt.FullBits, dim.Bits())
	}
}

// TestSelectBinsMatchesFilter checks the pushdown rewrite: scanning only the
// count groups of a bin range must return exactly the rows a full filter
// would (boundary bins may add rows, but never lose any; with unique bins
// the match is exact).
func TestSelectBinsMatchesFilter(t *testing.T) {
	bt, dim, _ := buildTestTable(t, 4000, 64, 6, BuildOptions{DisableRelocation: true})
	kc := bt.Data.MustColumn("k")
	for lo := int64(0); lo < 64; lo += 7 {
		hi := lo + 10
		lk, hk := IntKey(lo), IntKey(hi)
		bLo, bHi := dim.BinRange(&lk, &hk)
		entries := bt.SelectBins(bt.Uses[0], bLo, bHi)
		got := make(map[int]bool)
		for _, r := range EntriesRanges(entries) {
			for i := r.Start; i < r.End; i++ {
				got[i] = true
			}
		}
		for i, v := range kc.I64 {
			if v >= lo && v <= hi && !got[i] {
				t.Fatalf("row %d (k=%d in [%d,%d]) not covered by bin selection", i, v, lo, hi)
			}
		}
	}
}

// TestScatterPlanIsPermutation checks that a scatter plan's ranges cover
// every row exactly once and that groups are emitted in ascending group-id
// order.
func TestScatterPlanIsPermutation(t *testing.T) {
	bt, _, _ := buildTestTable(t, 6000, 512, 6, BuildOptions{DisableRelocation: true})
	g := Ones(bt.Uses[0].Mask)
	for gb := 1; gb <= g; gb++ {
		plan, err := bt.ScatterPlan([]int{0}, []int{gb}, nil)
		if err != nil {
			t.Fatalf("ScatterPlan(%d bits): %v", gb, err)
		}
		seen := make([]bool, bt.Data.Rows())
		var prev uint64
		for i, grp := range plan {
			if i > 0 && grp.GroupID <= prev {
				t.Fatalf("group ids not ascending at %d", i)
			}
			prev = grp.GroupID
			for _, r := range grp.Ranges {
				for j := r.Start; j < r.End; j++ {
					if seen[j] {
						t.Fatalf("row %d emitted twice", j)
					}
					seen[j] = true
				}
			}
		}
		n := 0
		for _, s := range seen {
			if s {
				n++
			}
		}
		if n != bt.Data.Rows() {
			t.Fatalf("scatter plan covers %d of %d rows", n, bt.Data.Rows())
		}
	}
}

// TestScatterPlanMajorOrder checks that the emitted stream is ordered by the
// requested dimension's bins — the "any major-minor order" property of the
// BDCC scan, on a two-dimensional table.
func TestScatterPlanMajorOrder(t *testing.T) {
	n := 4000
	rng := rand.New(rand.NewSource(5))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(64)
		b[i] = rng.Int63n(64)
	}
	tab := storage.MustNewTable("t", 32<<10,
		storage.NewInt64Column("a", a), storage.NewInt64Column("b", b))
	mk := func(name string, vals []int64) (*Dimension, []uint64) {
		obs := make([]WeightedKey, n)
		for i, v := range vals {
			obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
		}
		d, err := CreateDimension(name, "t", []string{name}, obs, 6)
		if err != nil {
			t.Fatalf("CreateDimension: %v", err)
		}
		bins := make([]uint64, n)
		for i, v := range vals {
			bins[i] = d.BinOf(IntKey(v))
		}
		return d, bins
	}
	da, ba := mk("a", a)
	db, bb := mk("b", b)
	bt, err := BuildBDCCTable("t", tab,
		[]UseBinding{{Dim: da, BinNos: ba}, {Dim: db, BinNos: bb}},
		BuildOptions{DisableRelocation: true})
	if err != nil {
		t.Fatalf("BuildBDCCTable: %v", err)
	}
	// Retrieve in major order of dimension b (use index 1).
	gb := Ones(bt.Uses[1].Mask)
	plan, err := bt.ScatterPlan([]int{1}, []int{gb}, nil)
	if err != nil {
		t.Fatalf("ScatterPlan: %v", err)
	}
	bc := bt.Data.MustColumn("b")
	var prevBin uint64
	first := true
	for _, grp := range plan {
		for _, r := range grp.Ranges {
			for i := r.Start; i < r.End; i++ {
				bin := db.BinOf(IntKey(bc.I64[i])) >> uint(db.Bits()-gb)
				if !first && bin < prevBin {
					t.Fatalf("stream not in dimension-b major order at row %d", i)
				}
				if bin != grp.GroupID {
					t.Fatalf("row %d: bin prefix %d but group id %d", i, bin, grp.GroupID)
				}
				prevBin, first = bin, false
			}
		}
	}
}

// TestRelocationSmallGroups checks the post-load relocation: small groups
// move to a consecutive area at the end, the count table stays consistent,
// and no tuples are lost or duplicated in the scanned extents.
func TestRelocationSmallGroups(t *testing.T) {
	// Zipf-ish skew: a few huge bins plus a long tail of tiny ones.
	n := 20000
	rng := rand.New(rand.NewSource(13))
	k := make([]int64, n)
	for i := range k {
		if rng.Intn(100) < 90 {
			k[i] = rng.Int63n(4) // 90% in 4 values
		} else {
			k[i] = 4 + rng.Int63n(252)
		}
	}
	tab := storage.MustNewTable("t", 32<<10, storage.NewInt64Column("k", k))
	obs := make([]WeightedKey, n)
	for i, v := range k {
		obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
	}
	dim, err := CreateDimension("d", "t", []string{"k"}, obs, 8)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	bins := make([]uint64, n)
	for i, v := range k {
		bins[i] = dim.BinOf(IntKey(v))
	}
	dev := iosim.Device{PageSize: 4096, SeqBandwidth: 1 << 30, AR: 4096, RandEfficiency: 0.8}
	bt, err := BuildBDCCTable("t", tab, []UseBinding{{Dim: dim, BinNos: bins}},
		BuildOptions{Device: dev})
	if err != nil {
		t.Fatalf("BuildBDCCTable: %v", err)
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if bt.RelocatedRows == 0 {
		t.Skip("no relocation triggered for this distribution")
	}
	if bt.Data.Rows() != int(bt.Rows()+bt.RelocatedRows) {
		t.Fatalf("data rows %d, want base %d + relocated %d", bt.Data.Rows(), bt.Rows(), bt.RelocatedRows)
	}
	// Scanning all count entries yields exactly one copy of every tuple.
	total := int64(0)
	seen := make(map[int64]int64)
	kc := bt.Data.MustColumn("k")
	for _, e := range bt.Count {
		for i := e.Offset; i < e.Offset+e.Count; i++ {
			seen[kc.I64[i]]++
		}
		total += e.Count
		if e.Relocated && e.Offset < bt.Rows() {
			t.Fatalf("relocated entry points into the base area (offset %d)", e.Offset)
		}
	}
	if total != bt.Rows() {
		t.Fatalf("count entries cover %d tuples, want %d", total, bt.Rows())
	}
	want := make(map[int64]int64)
	for _, v := range k {
		want[v]++
	}
	for v, c := range want {
		if seen[v] != c {
			t.Fatalf("value %d seen %d times via count table, want %d", v, seen[v], c)
		}
	}
}

// TestMajorMinorBuild checks the hand-tuned ordering variant used by the
// paper's "Other Orderings" comparison.
func TestMajorMinorBuild(t *testing.T) {
	bt, _, _ := buildTestTable(t, 2000, 128, 7, BuildOptions{MajorMinor: true, DisableRelocation: true})
	// Single use: major-minor equals round-robin; masks must cover all bits.
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupStatsHistogram checks the log₂ histogram bookkeeping.
func TestGroupStatsHistogram(t *testing.T) {
	keys := []uint64{0, 0, 0, 1, 1, 2, 3, 3, 3, 3} // at 2 bits: groups 3,2,1,4
	stats := CollectGroupStats(keys, 2)
	gs := stats[1] // granularity 2
	if gs.NumGroups != 4 || gs.TotalTuples != 10 {
		t.Fatalf("groups=%d tuples=%d, want 4/10", gs.NumGroups, gs.TotalTuples)
	}
	// Buckets: size 1 → bucket 1; size 2,3 → bucket 2; size 4 → bucket 3.
	if gs.Groups[1] != 1 || gs.Groups[2] != 2 || gs.Groups[3] != 1 {
		t.Fatalf("bucket counts = %v", gs.Groups)
	}
	if got := TuplesInLargeGroups(keys, 2, 2, 3); got != 7 {
		t.Fatalf("tuples in groups ≥3 = %d, want 7", got)
	}
	if got := TuplesInLargeGroups(keys, 2, 1, 5); got != 10 {
		t.Fatalf("at granularity 1 (groups 5,5): tuples ≥5 = %d, want 10", got)
	}
}
