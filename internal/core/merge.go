package core

import (
	"fmt"
	"math"

	"bdcc/internal/catalog"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
)

// This file maintains a materialized BDCC database under ingest. The key
// property making that cheap is that dimensions are frozen at design time and
// BinOf is total and monotone: any new key value — even one outside every
// observed range — bins deterministically, so a fresh row's z-order cell is a
// pure function of the row. Re-clustering after an append is therefore a
// local merge (splice sorted delta runs into the retained key order, add the
// per-cell counts), not a rebuild. The from-scratch rebuild with the same
// frozen design (RebuildWithDesign) exists as the independent reference the
// ingest oracle compares against bit-for-bit.

// BindUses recomputes, with the database's frozen dimensions, the per-row use
// bindings of one designed table over the given stored tables — typically the
// base + delta concatenations, so appended rows resolve foreign keys that
// point at other appended rows. Rows before `from` are skipped (bins start at
// row `from` of the table); pass 0 to bind every row.
func BindUses(db *Database, schema *catalog.Schema, tables map[string]*storage.Table, table string, from int) ([]UseBinding, error) {
	td := db.Design.Table(table)
	if td == nil {
		return nil, fmt.Errorf("core: table %s has no BDCC design", table)
	}
	res := NewResolver(schema, tables)
	uses := make([]UseBinding, len(td.Uses))
	for i, us := range td.Uses {
		dim := db.Dimensions[us.Dim]
		if dim == nil {
			return nil, fmt.Errorf("core: table %s uses unknown dimension %s", table, us.Dim)
		}
		bins, err := binsForUse(res, db, table, us)
		if err != nil {
			return nil, err
		}
		uses[i] = UseBinding{Dim: dim, Path: us.Path, BinNos: bins[from:]}
	}
	return uses, nil
}

// DeltaKeys encodes the _bdcc_ keys of delta rows at the table's full load
// granularity, using the frozen masks of the base table. All bindings must
// carry the same row count.
func DeltaKeys(base *BDCCTable, uses []UseBinding) ([]uint64, error) {
	if len(uses) != len(base.Uses) {
		return nil, fmt.Errorf("core: table %s: %d delta bindings for %d uses", base.Name, len(uses), len(base.Uses))
	}
	k := len(uses[0].BinNos)
	dimBits := make([]int, len(uses))
	fullMasks := make([]uint64, len(uses))
	for i, u := range base.Uses {
		if uses[i].Dim.Name != u.Dim.Name {
			return nil, fmt.Errorf("core: table %s: delta binding %d is %s, base use is %s",
				base.Name, i, uses[i].Dim.Name, u.Dim.Name)
		}
		if len(uses[i].BinNos) != k {
			return nil, fmt.Errorf("core: table %s: binding %d has %d bins, binding 0 has %d",
				base.Name, i, len(uses[i].BinNos), k)
		}
		dimBits[i] = u.Dim.Bits()
		fullMasks[i] = u.FullMask
	}
	keys := make([]uint64, k)
	binNos := make([]uint64, len(uses))
	for r := 0; r < k; r++ {
		for i := range uses {
			binNos[i] = uses[i].BinNos[r]
		}
		keys[r] = EncodeKey(binNos, dimBits, fullMasks, base.FullBits)
	}
	return keys, nil
}

// MergeBDCCTable splices delta rows into a BDCC table incrementally, keeping
// the frozen design (dimensions, masks, count-table granularity b):
//
//	(i)   encode the delta rows' _bdcc_ keys with the frozen masks and sort
//	      them (stably, so arrival order breaks ties);
//	(ii)  merge the run into the retained sorted key order by a single linear
//	      pass — base rows win ties, matching what a stable re-sort of
//	      base-then-delta insertion order would produce — and permute the
//	      concatenated data once into the merged order;
//	(iii) update T_COUNT arithmetically: per-cell delta counts are added to
//	      the existing entries (new cells are inserted in key order) and
//	      offsets re-derived by prefix sum, with no re-aggregation of base
//	      rows;
//	(iv)  re-run small-group relocation over the merged table.
//
// The merged table is uncompressed (Concat yields raw columns); callers
// consolidating a compressed base re-encode the result explicitly.
func MergeBDCCTable(base *BDCCTable, delta *storage.Table, uses []UseBinding, opt BuildOptions) (*BDCCTable, error) {
	if opt.Device.PageSize == 0 {
		opt.Device = iosim.PaperSSD()
	}
	n := int(base.baseRows)
	k := delta.Rows()
	if len(base.SortedKeys) != n {
		return nil, fmt.Errorf("core: table %s retains %d sorted keys for %d rows; built before key retention?",
			base.Name, len(base.SortedKeys), n)
	}
	deltaKeys, err := DeltaKeys(base, uses)
	if err != nil {
		return nil, err
	}
	if len(deltaKeys) != k {
		return nil, fmt.Errorf("core: table %s: %d delta keys for %d delta rows", base.Name, len(deltaKeys), k)
	}
	// (i) sort the delta run.
	deltaPerm := storage.SortPerm(deltaKeys)
	// (ii) one-pass merge into the retained order. Concat indexes rows
	// [0,n) as the sorted base and [n,n+k) as the delta in arrival order.
	concat, err := storage.Concat(base.Data, n, delta)
	if err != nil {
		return nil, err
	}
	perm := make([]int32, 0, n+k)
	mergedKeys := make([]uint64, 0, n+k)
	bi, dj := 0, 0
	for bi < n || dj < k {
		if bi < n && (dj >= k || base.SortedKeys[bi] <= deltaKeys[deltaPerm[dj]]) {
			mergedKeys = append(mergedKeys, base.SortedKeys[bi])
			perm = append(perm, int32(bi))
			bi++
		} else {
			mergedKeys = append(mergedKeys, deltaKeys[deltaPerm[dj]])
			perm = append(perm, int32(n)+deltaPerm[dj])
			dj++
		}
	}
	merged, err := concat.Permute(perm)
	if err != nil {
		return nil, err
	}
	// (iii) count-table arithmetic at the frozen granularity.
	shift := uint(base.FullBits - base.Bits)
	var deltaGroups []CountEntry
	for i := 0; i < k; {
		j := i
		g := deltaKeys[deltaPerm[i]] >> shift
		for j < k && deltaKeys[deltaPerm[j]]>>shift == g {
			j++
		}
		deltaGroups = append(deltaGroups, CountEntry{Key: g, Count: int64(j - i)})
		i = j
	}
	count := mergeCounts(base.Count, deltaGroups)
	t := &BDCCTable{
		Name:       base.Name,
		Data:       merged,
		Bits:       base.Bits,
		FullBits:   base.FullBits,
		Count:      count,
		Stats:      CollectGroupStats(mergedKeys, base.FullBits),
		SortedKeys: mergedKeys,
		baseRows:   int64(n + k),
	}
	for _, u := range base.Uses {
		t.Uses = append(t.Uses, &DimensionUse{
			Dim:      u.Dim,
			Path:     append([]string(nil), u.Path...),
			Mask:     u.Mask,
			FullMask: u.FullMask,
		})
	}
	// (iv) fresh relocation decisions over the merged table.
	if !opt.DisableRelocation {
		if err := t.relocateSmallGroups(efficientRows(merged, opt.Device)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// mergeCounts merges two key-ordered count-entry runs, summing counts of
// equal cells and re-deriving offsets by prefix sum. Relocation flags are
// dropped: the merged table is laid out contiguously again and relocation
// re-decides from scratch.
func mergeCounts(base, delta []CountEntry) []CountEntry {
	out := make([]CountEntry, 0, len(base)+len(delta))
	bi, dj := 0, 0
	for bi < len(base) || dj < len(delta) {
		switch {
		case dj >= len(delta) || (bi < len(base) && base[bi].Key < delta[dj].Key):
			out = append(out, CountEntry{Key: base[bi].Key, Count: base[bi].Count})
			bi++
		case bi >= len(base) || delta[dj].Key < base[bi].Key:
			out = append(out, CountEntry{Key: delta[dj].Key, Count: delta[dj].Count})
			dj++
		default:
			out = append(out, CountEntry{Key: base[bi].Key, Count: base[bi].Count + delta[dj].Count})
			bi++
			dj++
		}
	}
	var off int64
	for i := range out {
		out[i].Offset = off
		off += out[i].Count
	}
	return out
}

// RebuildWithDesign rebuilds every designed table from scratch over the given
// stored tables while keeping the frozen design: existing dimensions (so bin
// boundaries don't move under the data), interleaving order, and each table's
// count-table granularity. This is the reference path for the ingest oracle —
// it shares no code with the incremental merge beyond the binning itself —
// and the consolidation a drifted table would undergo offline.
func RebuildWithDesign(old *Database, schema *catalog.Schema, tables map[string]*storage.Table, opt BuildOptions) (*Database, error) {
	db := &Database{
		Design:     old.Design,
		Dimensions: old.Dimensions,
		Tables:     make(map[string]*BDCCTable),
	}
	for _, td := range old.Design.Tables {
		base := old.Tables[td.Table]
		if base == nil {
			return nil, fmt.Errorf("core: rebuild: table %s designed but not materialized", td.Table)
		}
		data, err := NewResolver(schema, tables).Table(td.Table)
		if err != nil {
			return nil, err
		}
		uses, err := BindUses(db, schema, tables, td.Table, 0)
		if err != nil {
			return nil, err
		}
		o := opt
		o.ForceBits = base.Bits
		bt, err := BuildBDCCTable(td.Table, data, uses, o)
		if err != nil {
			return nil, err
		}
		for i, u := range bt.Uses {
			if u.FullMask != base.Uses[i].FullMask || u.Mask != base.Uses[i].Mask {
				return nil, fmt.Errorf("core: rebuild of %s moved use %d masks", td.Table, i)
			}
		}
		if err := bt.Validate(); err != nil {
			return nil, err
		}
		db.Tables[td.Table] = bt
	}
	return db, nil
}

// DriftReport compares where delta rows land against the base clustering, at
// the base table's count-table granularity.
type DriftReport struct {
	Table     string
	BaseRows  int64
	DeltaRows int64
	// NewCells counts cells that receive delta rows but hold no base rows;
	// NewCellRows sums the delta rows landing there. New cells are the
	// benign kind of drift — the clustering absorbs them as fresh groups.
	NewCells    int
	NewCellRows int64
	// HotCellFrac is the largest single cell's share of the delta. A hot
	// cell means arrivals concentrate where BinOf clamps (e.g. dates past
	// the observed range all binning to the last date bin), the degenerate
	// pattern that erodes clustering selectivity.
	HotCellFrac float64
	// Distance is the total-variation distance between the base and delta
	// cell-size histograms (0 = identically distributed, 1 = disjoint).
	Distance float64
}

// Drifted reports whether the delta's cell distribution has diverged from the
// base by at least the given total-variation threshold.
func (r DriftReport) Drifted(threshold float64) bool {
	return r.DeltaRows > 0 && r.Distance >= threshold
}

func (r DriftReport) String() string {
	return fmt.Sprintf("%s: %d delta rows over %d base; %d new cells (%d rows), hottest cell %.0f%%, distance %.3f",
		r.Table, r.DeltaRows, r.BaseRows, r.NewCells, r.NewCellRows, 100*r.HotCellFrac, r.Distance)
}

// DriftStats compares the cell-size histogram of un-merged delta keys (at
// full granularity) against the base count table.
func DriftStats(base *BDCCTable, deltaKeys []uint64) DriftReport {
	r := DriftReport{Table: base.Name, BaseRows: base.baseRows, DeltaRows: int64(len(deltaKeys))}
	if len(deltaKeys) == 0 {
		return r
	}
	shift := uint(base.FullBits - base.Bits)
	deltaCells := make(map[uint64]int64, len(base.Count))
	for _, k := range deltaKeys {
		deltaCells[k>>shift]++
	}
	baseCells := make(map[uint64]int64, len(base.Count))
	for _, e := range base.Count {
		baseCells[e.Key] = e.Count
	}
	var dist float64
	var hottest int64
	for cell, cnt := range deltaCells {
		if cnt > hottest {
			hottest = cnt
		}
		if baseCells[cell] == 0 {
			r.NewCells++
			r.NewCellRows += cnt
		}
		dist += math.Abs(float64(cnt)/float64(r.DeltaRows) - float64(baseCells[cell])/float64(r.BaseRows))
	}
	for cell, cnt := range baseCells {
		if deltaCells[cell] == 0 {
			dist += float64(cnt) / float64(r.BaseRows)
		}
	}
	r.HotCellFrac = float64(hottest) / float64(r.DeltaRows)
	r.Distance = dist / 2
	return r
}

// DriftFor binds the trailing rows of a designed table over combined stored
// tables (base rows first, delta tail from row `from`) and reports their
// drift against the base clustering.
func DriftFor(db *Database, schema *catalog.Schema, tables map[string]*storage.Table, table string, from int) (DriftReport, error) {
	base := db.Tables[table]
	if base == nil {
		return DriftReport{}, fmt.Errorf("core: drift: table %s is not BDCC-clustered", table)
	}
	uses, err := BindUses(db, schema, tables, table, from)
	if err != nil {
		return DriftReport{}, err
	}
	keys, err := DeltaKeys(base, uses)
	if err != nil {
		return DriftReport{}, err
	}
	return DriftStats(base, keys), nil
}
