package core

import (
	"fmt"
	"sort"

	"bdcc/internal/storage"
)

// ScatterGroup is one group of a scatter scan: the rows of the BDCC table
// whose requested dimension bits equal GroupID, in count-table order. The
// group identifier is what the sandwich operators align join inputs and
// aggregation flushes on.
type ScatterGroup struct {
	GroupID uint64
	Ranges  storage.RowRanges
	Rows    int64
}

// ScatterPlan computes the group sequence of a scatter scan that retrieves
// the table in major order of the given dimension uses ("this scan can
// retrieve data in the orders (D1), (D2), (D1,D2), (D2,D1)"): useOrder lists
// use indices major to minor and groupBits how many (major) bits of each use
// form the group identifier. Offsets are calculated from T_COUNT; the scan
// touches only entries that survive the restriction (nil means all).
//
// Group identifiers are the concatenation of the selected bit prefixes,
// major use first; entries with equal identifiers merge into one group, and
// the emitted groups are ordered by identifier.
func (t *BDCCTable) ScatterPlan(useOrder []int, groupBits []int, restrict []CountEntry) ([]ScatterGroup, error) {
	if len(useOrder) != len(groupBits) {
		return nil, fmt.Errorf("core: scatter plan: %d uses but %d bit counts", len(useOrder), len(groupBits))
	}
	entries := restrict
	if entries == nil {
		entries = t.Count
	}
	type keyed struct {
		id uint64
		e  CountEntry
	}
	keyedEntries := make([]keyed, 0, len(entries))
	for _, e := range entries {
		var id uint64
		for i, ui := range useOrder {
			if ui < 0 || ui >= len(t.Uses) {
				return nil, fmt.Errorf("core: scatter plan: use index %d out of range", ui)
			}
			u := t.Uses[ui]
			avail := Ones(u.Mask)
			g := groupBits[i]
			if g > avail {
				return nil, fmt.Errorf("core: scatter plan: use %d has %d bits at count granularity, %d requested",
					ui, avail, g)
			}
			bits := GatherBits(e.Key, u.Mask, t.Bits)
			id = id<<uint(g) | (bits >> uint(avail-g))
		}
		keyedEntries = append(keyedEntries, keyed{id: id, e: e})
	}
	sort.SliceStable(keyedEntries, func(i, j int) bool { return keyedEntries[i].id < keyedEntries[j].id })
	var out []ScatterGroup
	for _, ke := range keyedEntries {
		r := storage.RowRange{Start: int(ke.e.Offset), End: int(ke.e.Offset + ke.e.Count)}
		if n := len(out); n > 0 && out[n-1].GroupID == ke.id {
			out[n-1].Ranges = append(out[n-1].Ranges, r)
			out[n-1].Rows += ke.e.Count
			continue
		}
		out = append(out, ScatterGroup{GroupID: ke.id, Ranges: storage.RowRanges{r}, Rows: ke.e.Count})
	}
	return out, nil
}

// SelectBins restricts the count table to groups whose bits of use u fall in
// the inclusive bin-number range [lo, hi] (expressed at the dimension's full
// granularity bits(D)). Boundary bins are included conservatively — the scan
// re-applies the tuple-level predicate. This is the _bdcc_ rewrite behind
// the paper's selection pushdown and selection propagation.
func (t *BDCCTable) SelectBins(u *DimensionUse, lo, hi uint64) []CountEntry {
	avail := Ones(u.Mask)
	shift := uint(u.Dim.Bits() - avail)
	loG, hiG := lo>>shift, hi>>shift
	var out []CountEntry
	for _, e := range t.Count {
		g := GatherBits(e.Key, u.Mask, t.Bits)
		if g >= loG && g <= hiG {
			out = append(out, e)
		}
	}
	return out
}

// SelectBinSet restricts the count table to groups whose bits of use u match
// the (reduced) bin prefix of any bin number in the set. The set members are
// at the dimension's full granularity.
func (t *BDCCTable) SelectBinSet(u *DimensionUse, bins map[uint64]bool) []CountEntry {
	avail := Ones(u.Mask)
	shift := uint(u.Dim.Bits() - avail)
	reduced := make(map[uint64]bool, len(bins))
	for b := range bins {
		reduced[b>>shift] = true
	}
	var out []CountEntry
	for _, e := range t.Count {
		if reduced[GatherBits(e.Key, u.Mask, t.Bits)] {
			out = append(out, e)
		}
	}
	return out
}

// IntersectEntries intersects two count-entry restrictions of the same
// table (both ordered by key).
func IntersectEntries(a, b []CountEntry) []CountEntry {
	var out []CountEntry
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case a[i].Key > b[j].Key:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// EntriesRanges converts count entries to row ranges of the table data.
func EntriesRanges(entries []CountEntry) storage.RowRanges {
	var out storage.RowRanges
	for _, e := range entries {
		out = append(out, storage.RowRange{Start: int(e.Offset), End: int(e.Offset + e.Count)})
	}
	return out.Normalize()
}

// TotalRows sums the tuple counts of count entries.
func TotalRows(entries []CountEntry) int64 {
	var n int64
	for _, e := range entries {
		n += e.Count
	}
	return n
}
