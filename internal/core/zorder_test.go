package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRoundRobinMasksPaperLineitem pins the paper's Section IV LINEITEM mask
// table: four uses (D_DATE 13 bits, D_NATION 5, D_NATION 5, D_PART 13)
// round-robin interleaved at full granularity B = 36 and truncated to the
// chosen b = 20 bits must produce exactly the published masks.
func TestRoundRobinMasksPaperLineitem(t *testing.T) {
	masks, total := RoundRobinMasks([]int{13, 5, 5, 13})
	if total != 36 {
		t.Fatalf("full granularity = %d, want 36", total)
	}
	trunc := TruncateMasks(masks, total, 20)
	want := []string{
		"10001000100010001000", // D_DATE    FK_L_O
		"1000100010001000100",  // D_NATION  FK_L_O.FK_O_C.FK_C_N
		"100010001000100010",   // D_NATION  FK_L_S.FK_S_N
		"10001000100010001",    // D_PART    FK_L_P
	}
	for i, w := range want {
		if got := MaskString(trunc[i]); got != w {
			t.Errorf("LINEITEM mask %d = %s, want %s", i, got, w)
		}
	}
	if err := ValidateMasks(trunc, 20); err != nil {
		t.Errorf("truncated masks invalid: %v", err)
	}
}

// TestRoundRobinMasksPaperOrders pins the ORDERS and PARTSUPP rows of the
// paper's mask table: D_DATE/D_PART (13 bits) with D_NATION (5 bits)
// alternate until the nation dimension exhausts, then the 13-bit dimension
// fills the remaining positions consecutively; B = b = 18.
func TestRoundRobinMasksPaperOrders(t *testing.T) {
	masks, total := RoundRobinMasks([]int{13, 5})
	if total != 18 {
		t.Fatalf("full granularity = %d, want 18", total)
	}
	if got, want := MaskString(masks[0]), "101010101011111111"; got != want {
		t.Errorf("D_DATE mask = %s, want %s", got, want)
	}
	if got, want := MaskString(masks[1]), "10101010100000000"; got != want {
		t.Errorf("D_NATION mask = %s, want %s", got, want)
	}
}

// TestRoundRobinMasksSingleUse pins the single-dimension rows of the paper's
// table (NATION, SUPPLIER, CUSTOMER on 5 bits; PART on 13): one use owns
// every bit.
func TestRoundRobinMasksSingleUse(t *testing.T) {
	masks, total := RoundRobinMasks([]int{5})
	if total != 5 || MaskString(masks[0]) != "11111" {
		t.Errorf("5-bit single mask = %s (B=%d), want 11111 (5)", MaskString(masks[0]), total)
	}
	masks, total = RoundRobinMasks([]int{13})
	if total != 13 || MaskString(masks[0]) != "1111111111111" {
		t.Errorf("13-bit single mask = %s (B=%d)", MaskString(masks[0]), total)
	}
}

func TestMajorMinorMasks(t *testing.T) {
	masks, total := MajorMinorMasks([]int{3, 2})
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if got, want := MaskString(masks[0]), "11100"; got != want {
		t.Errorf("major mask = %s, want %s", got, want)
	}
	if got, want := MaskString(masks[1]), "11"; got != want {
		t.Errorf("minor mask = %s, want %s", got, want)
	}
	if err := ValidateMasks(masks, 5); err != nil {
		t.Errorf("masks invalid: %v", err)
	}
}

// TestRoundRobinMasksProperties checks the Definition 4 constraints (cover
// all bits, no overlap) for arbitrary dimension widths.
func TestRoundRobinMasksProperties(t *testing.T) {
	prop := func(widths []uint8) bool {
		var bits []int
		total := 0
		for _, w := range widths {
			b := int(w%16) + 1
			if total+b > 60 {
				break
			}
			bits = append(bits, b)
			total += b
		}
		if len(bits) == 0 {
			return true
		}
		rr, brr := RoundRobinMasks(bits)
		mm, bmm := MajorMinorMasks(bits)
		if brr != total || bmm != total {
			return false
		}
		if ValidateMasks(rr, brr) != nil || ValidateMasks(mm, bmm) != nil {
			return false
		}
		for i, b := range bits {
			if Ones(rr[i]) != b || Ones(mm[i]) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScatterGatherRoundTrip checks that GatherBits inverts ScatterBits on
// the reduced bin number for random masks and bins.
func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		b := 1 + rng.Intn(40)
		mask := rng.Uint64() & ((1 << uint(b)) - 1)
		if mask == 0 {
			continue
		}
		dimBits := Ones(mask) + rng.Intn(8)
		bin := rng.Uint64() & ((1 << uint(dimBits)) - 1)
		key := ScatterBits(bin, dimBits, mask, b)
		if key&^mask != 0 {
			t.Fatalf("scatter leaked outside mask: bin=%b dimBits=%d mask=%b key=%b", bin, dimBits, mask, key)
		}
		want := bin >> uint(dimBits-Ones(mask))
		if got := GatherBits(key, mask, b); got != want {
			t.Fatalf("gather(scatter(%b)) = %b, want %b (mask %b, b=%d)", bin, got, want, mask, b)
		}
	}
}

// TestEncodeKeyDisjointUses checks that a full key decomposes per use.
func TestEncodeKeyDisjointUses(t *testing.T) {
	masks, b := RoundRobinMasks([]int{3, 2, 4})
	dims := []int{3, 2, 4}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		bins := make([]uint64, 3)
		for i, db := range dims {
			bins[i] = rng.Uint64() & ((1 << uint(db)) - 1)
		}
		key := EncodeKey(bins, dims, masks, b)
		for i := range dims {
			want := bins[i] >> uint(dims[i]-Ones(masks[i]))
			if got := GatherBits(key, masks[i], b); got != want {
				t.Fatalf("use %d: gathered %b, want %b", i, got, want)
			}
		}
	}
}

// TestEncodeKeyZOrderMonotone checks that with round-robin interleaving,
// increasing one dimension's bin while holding the others fixed never
// decreases the key — the Z-order curve is monotone per dimension, which is
// what makes bin-range pushdown sound.
func TestEncodeKeyZOrderMonotone(t *testing.T) {
	masks, b := RoundRobinMasks([]int{4, 4})
	dims := []int{4, 4}
	for other := uint64(0); other < 16; other++ {
		var prev uint64
		for bin := uint64(0); bin < 16; bin++ {
			key := EncodeKey([]uint64{bin, other}, dims, masks, b)
			if bin > 0 && key <= prev {
				t.Fatalf("key not monotone in dimension 0 at bin=%d other=%d", bin, other)
			}
			prev = key
		}
	}
}

func TestTruncateMasksDropsMinorBits(t *testing.T) {
	masks, total := RoundRobinMasks([]int{13, 5, 5, 13})
	for b := 1; b <= total; b++ {
		trunc := TruncateMasks(masks, total, b)
		if err := ValidateMasks(trunc, b); err != nil {
			t.Fatalf("truncation to %d bits invalid: %v", b, err)
		}
		n := 0
		for _, m := range trunc {
			n += Ones(m)
		}
		if n != b {
			t.Fatalf("truncation to %d bits has %d total ones", b, n)
		}
	}
}
