package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// makeIntDim builds a dimension over the given int values (weight 1 each).
func makeIntDim(t *testing.T, name string, vals []int64, maxBits int) *Dimension {
	t.Helper()
	obs := make([]WeightedKey, len(vals))
	for i, v := range vals {
		obs[i] = WeightedKey{Val: IntKey(v), Weight: 1}
	}
	d, err := CreateDimension(name, "t", []string{"k"}, obs, maxBits)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

// TestCreateDimensionUniqueBins reproduces the paper's D_NATION shape: 25
// distinct values fit 2^5 bins, so every value gets its own unique bin and
// bits(D) = 5.
func TestCreateDimensionUniqueBins(t *testing.T) {
	vals := make([]int64, 0, 100)
	for v := int64(0); v < 25; v++ {
		for r := 0; r < 4; r++ { // duplicates must merge
			vals = append(vals, v)
		}
	}
	d := makeIntDim(t, "d_nation", vals, 5)
	if d.NumBins() != 25 {
		t.Fatalf("bins = %d, want 25", d.NumBins())
	}
	if d.Bits() != 5 {
		t.Fatalf("bits = %d, want 5", d.Bits())
	}
	for i, b := range d.Bins {
		if !b.Unique {
			t.Errorf("bin %d not unique", i)
		}
		if b.Weight != 4 {
			t.Errorf("bin %d weight = %d, want 4", i, b.Weight)
		}
	}
}

// TestCreateDimensionEqualFrequency checks quantile binning balance on a
// uniform domain larger than the bin budget.
func TestCreateDimensionEqualFrequency(t *testing.T) {
	vals := make([]int64, 0, 4096)
	for v := int64(0); v < 4096; v++ {
		vals = append(vals, v)
	}
	d := makeIntDim(t, "d_uniform", vals, 4)
	if d.NumBins() != 16 {
		t.Fatalf("bins = %d, want 16", d.NumBins())
	}
	for i, b := range d.Bins {
		if b.Weight != 256 {
			t.Errorf("bin %d weight = %d, want 256", i, b.Weight)
		}
	}
}

// TestCreateDimensionSkew checks that a heavy hitter occupies its own bin
// without starving its neighbours: frequency-based binning "when faced with
// skew" per the companion tech report.
func TestCreateDimensionSkew(t *testing.T) {
	var obs []WeightedKey
	obs = append(obs, WeightedKey{Val: IntKey(500), Weight: 100000})
	for v := int64(0); v < 64; v++ {
		if v != 500 {
			obs = append(obs, WeightedKey{Val: IntKey(v), Weight: 10})
		}
	}
	d, err := CreateDimension("d_skew", "t", []string{"k"}, obs, 3)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The heavy value must be alone in its bin.
	hb := d.Bins[d.BinOf(IntKey(500))]
	if !hb.Unique {
		t.Errorf("heavy hitter shares bin [%v..%v]", hb.Min, hb.Max)
	}
}

// TestBinOfMonotone checks Definition 1: bin_D respects value order.
func TestBinOfMonotone(t *testing.T) {
	prop := func(raw []int64, maxBits uint8) bool {
		if len(raw) == 0 {
			return true
		}
		mb := int(maxBits%10) + 1
		obs := make([]WeightedKey, len(raw))
		for i, v := range raw {
			obs[i] = WeightedKey{Val: IntKey(v % 1000), Weight: 1}
		}
		d, err := CreateDimension("d", "t", []string{"k"}, obs, mb)
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		sorted := append([]int64(nil), raw...)
		for i := range sorted {
			sorted[i] %= 1000
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var prev uint64
		for i, v := range sorted {
			b := d.BinOf(IntKey(v))
			if i > 0 && b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReduceCongruence checks Definition 1 (vii): reducing granularity is
// exactly chopping low bin bits: bin_{D|g}(v) = bin_D(v) >> (bits(D)-g).
func TestReduceCongruence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63n(10000)
	}
	d := makeIntDim(t, "d", vals, 6)
	bits := d.Bits()
	for g := 0; g <= bits; g++ {
		r, err := d.Reduce(g)
		if err != nil {
			t.Fatalf("Reduce(%d): %v", g, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Reduce(%d) invalid: %v", g, err)
		}
		for _, v := range vals {
			want := d.BinOf(IntKey(v)) >> uint(bits-g)
			if got := r.BinOf(IntKey(v)); got != want {
				t.Fatalf("g=%d v=%d: reduced bin %d, want %d", g, v, got, want)
			}
		}
	}
	if _, err := d.Reduce(bits + 1); err == nil {
		t.Error("Reduce above bits(D) should fail")
	}
}

// TestBinRangeCoversPredicateValues checks that BinRange returns a bin
// interval covering every value satisfying lo ≤ v ≤ hi.
func TestBinRangeCoversPredicateValues(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = rng.Int63n(500)
	}
	d := makeIntDim(t, "d", vals, 4)
	for trial := 0; trial < 200; trial++ {
		lo := rng.Int63n(500)
		hi := lo + rng.Int63n(100)
		lk, hk := IntKey(lo), IntKey(hi)
		bLo, bHi := d.BinRange(&lk, &hk)
		for _, v := range vals {
			if v >= lo && v <= hi {
				b := d.BinOf(IntKey(v))
				if b < bLo || b > bHi {
					t.Fatalf("value %d in [%d,%d] has bin %d outside [%d,%d]", v, lo, hi, b, bLo, bHi)
				}
			}
		}
	}
}

// TestBinRangeOpenEnds checks half-open predicate ranges.
func TestBinRangeOpenEnds(t *testing.T) {
	d := makeIntDim(t, "d", []int64{10, 20, 30, 40}, 2)
	lo := IntKey(25)
	bLo, bHi := d.BinRange(&lo, nil)
	if bHi != uint64(d.NumBins()-1) {
		t.Errorf("open upper end: hi bin %d, want %d", bHi, d.NumBins()-1)
	}
	if bLo != d.BinOf(IntKey(30)) {
		t.Errorf("lo bin %d, want bin of 30 (%d)", bLo, d.BinOf(IntKey(30)))
	}
	hi := IntKey(25)
	bLo, bHi = d.BinRange(nil, &hi)
	if bLo != 0 {
		t.Errorf("open lower end: lo bin %d, want 0", bLo)
	}
	if bHi != d.BinOf(IntKey(20)) {
		t.Errorf("hi bin %d, want bin of 20 (%d)", bHi, d.BinOf(IntKey(20)))
	}
}

// TestCompositeKeyPrefixRange reproduces the paper's D_NATION rewrite: with
// key (n_regionkey, n_nationkey) ordered region-major, an equality on the
// region determines a consecutive bin range.
func TestCompositeKeyPrefixRange(t *testing.T) {
	var obs []WeightedKey
	for region := int64(0); region < 5; region++ {
		for nation := int64(0); nation < 5; nation++ {
			obs = append(obs, WeightedKey{Val: Key(KeyPart{I: region}, KeyPart{I: nation*5 + region}), Weight: 1})
		}
	}
	d, err := CreateDimension("d_nation", "nation", []string{"n_regionkey", "n_nationkey"}, obs, 5)
	if err != nil {
		t.Fatalf("CreateDimension: %v", err)
	}
	if d.NumBins() != 25 || d.Bits() != 5 {
		t.Fatalf("bins=%d bits=%d, want 25/5", d.NumBins(), d.Bits())
	}
	// Region 2 spans bins [10,14]: lo = (2,-inf) approximated by (2, min).
	lo := Key(KeyPart{I: 2}, KeyPart{I: -1 << 62})
	hi := Key(KeyPart{I: 2}, KeyPart{I: 1 << 62})
	bLo, bHi := d.BinRange(&lo, &hi)
	if bLo != 10 || bHi != 14 {
		t.Errorf("region 2 bin range = [%d,%d], want [10,14]", bLo, bHi)
	}
}

// TestKeyValCompare checks lexicographic composite ordering.
func TestKeyValCompare(t *testing.T) {
	cases := []struct {
		a, b KeyVal
		want int
	}{
		{IntKey(1), IntKey(2), -1},
		{IntKey(2), IntKey(2), 0},
		{StrKey("abc"), StrKey("abd"), -1},
		{Key(KeyPart{I: 1}, KeyPart{I: 5}), Key(KeyPart{I: 1}, KeyPart{I: 6}), -1},
		{Key(KeyPart{I: 2}, KeyPart{I: 0}), Key(KeyPart{I: 1}, KeyPart{I: 9}), 1},
		{Key(KeyPart{I: 1}), Key(KeyPart{I: 1}, KeyPart{I: 0}), -1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: %v vs %v = %d, want %d", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("case %d reversed: got %d, want %d", i, got, -c.want)
		}
	}
}

// TestDimensionBits checks the Algorithm 2 (ii) granularity rule.
func TestDimensionBits(t *testing.T) {
	cases := []struct {
		ndv  int64
		cap  int
		want int
	}{
		{25, 13, 5},          // paper's D_NATION
		{20_000_000, 13, 13}, // paper's D_PART at SF100
		{2406, 13, 12},       // o_orderdate NDV (see DESIGN.md on the paper's 13)
		{1, 13, 0},
		{2, 13, 1},
		{8192, 13, 13},
		{8193, 13, 13},
	}
	for _, c := range cases {
		if got := DimensionBits(c.ndv, c.cap); got != c.want {
			t.Errorf("DimensionBits(%d,%d) = %d, want %d", c.ndv, c.cap, got, c.want)
		}
	}
}
