package tpch

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/plan"
)

// The chaos harness: sustained back-to-back TPC-H load against real
// bdccworker processes that are repeatedly killed and restarted under it.
// Every run must stay byte-identical to the serial oracle, the recovery
// counters must prove the kills were observed and the restarted workers
// re-admitted and serving units again, a query with no surviving worker
// must complete through the coordinator's local fallback, and the whole
// ordeal must leak neither goroutines nor tracker bytes.

var (
	workerBinOnce sync.Once
	workerBin     string
	workerBinErr  error
)

// buildWorkerBinary compiles cmd/bdccworker once per test process.
func buildWorkerBinary(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bdccworker-chaos")
		if err != nil {
			workerBinErr = err
			return
		}
		bin := filepath.Join(dir, "bdccworker")
		out, err := exec.Command("go", "build", "-o", bin, "bdcc/cmd/bdccworker").CombinedOutput()
		if err != nil {
			workerBinErr = fmt.Errorf("go build bdccworker: %v\n%s", err, out)
			return
		}
		workerBin = bin
	})
	if workerBinErr != nil {
		t.Skipf("cannot build the bdccworker binary: %v", workerBinErr)
	}
	return workerBin
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// workerProc manages one real bdccworker process on a fixed address across
// kills and restarts.
type workerProc struct {
	bin  string
	addr string

	mu     sync.Mutex
	cmd    *exec.Cmd
	exited chan struct{}
}

// start launches the daemon and waits until it accepts connections,
// relaunching if a lingering predecessor still held the port.
func (w *workerProc) start(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(w.bin, "-listen", w.addr, "-workers", "2", "-drain-timeout", "2s")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan struct{})
		go func() {
			cmd.Wait()
			close(exited)
		}()
		w.mu.Lock()
		w.cmd, w.exited = cmd, exited
		w.mu.Unlock()
		for {
			conn, err := net.DialTimeout("tcp", w.addr, 100*time.Millisecond)
			if err == nil {
				conn.Close()
				return
			}
			select {
			case <-exited: // bind lost (port still releasing); relaunch
			default:
				if time.Now().After(deadline) {
					t.Fatalf("worker on %s never came up", w.addr)
				}
				time.Sleep(2 * time.Millisecond)
				continue
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker on %s never came up (its process keeps exiting)", w.addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stop signals the process and waits for it to exit; idempotent.
func (w *workerProc) stop(sig os.Signal) {
	w.mu.Lock()
	cmd, exited := w.cmd, w.exited
	w.cmd, w.exited = nil, nil
	w.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(sig)
	<-exited
}

func (w *workerProc) kill() { w.stop(os.Kill) }

// TestChaosSustainedLoad drives rounds of kill → query → restart → query
// against two real bdccworker processes through one long-lived session, so
// the failover, prober, and re-admission machinery is exercised end to end
// over real process boundaries — including one graceful SIGTERM drain.
// It finishes by killing every worker and asserting the query degrades to
// the coordinator's local fallback instead of failing.
func TestChaosSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short")
	}
	bin := buildWorkerBinary(t)
	b := benchmarkFixture(t)
	db := b.DBs[plan.BDCC]
	queries := []QueryDef{Query(9), Query(13)}
	serial := map[string]*engine.Result{}
	for _, q := range queries {
		res, _, _, err := RunQueryShards(db, q, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		serial[q.Name] = res
	}

	w1 := &workerProc{bin: bin, addr: freeAddr(t)}
	w2 := &workerProc{bin: bin, addr: freeAddr(t)}
	w1.start(t)
	w2.start(t)
	defer w1.kill()
	defer w2.kill()

	base := runtime.NumGoroutine()
	env := NewEnvOpts(db, RunOptions{
		Workers: 2, Remotes: []string{w1.addr, w2.addr},
		ProbeBase: 2 * time.Millisecond, ProbeMax: 20 * time.Millisecond,
	})
	defer env.Close()
	iter := 0
	runOnce := func(label string) {
		iter++
		q := queries[iter%2]
		node, err := q.Build(env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.run(node)
		if err != nil {
			t.Fatalf("%s %s failed instead of recovering: %v", q.Name, label, err)
		}
		assertSameResult(t, fmt.Sprintf("%s %s (iteration %d)", q.Name, label, iter), res, serial[q.Name])
	}
	victimHealth := func() engine.BackendHealth { return env.Ctx.HealthStats()[1] }
	waitVictim := func(label string, ok func(engine.BackendHealth) bool) {
		t.Helper()
		for deadline := time.Now().Add(10 * time.Second); ; {
			if ok(victimHealth()) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("round gave up waiting for %s: %+v", label, victimHealth())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	runOnce("with both workers up")
	for round := 1; round <= 3; round++ {
		// Round 2 drains gracefully (the daemon's SIGTERM path); the others
		// die hard. Either way the session's queries keep flowing.
		if round == 2 {
			w2.stop(syscall.SIGTERM)
		} else {
			w2.kill()
		}
		runOnce("across the worker kill") // discovery: failover mid-query
		want := int64(round)
		waitVictim("the down transition", func(h engine.BackendHealth) bool { return h.Downs >= want })
		w2.start(t)
		waitVictim("re-admission", func(h engine.BackendHealth) bool { return h.Readmits >= want })
		runOnce("after re-admission")
		if h := victimHealth(); h.ReadmitUnits < want {
			t.Fatalf("round %d: re-admitted worker served %d unit batches, want ≥ %d — restarted worker idle: %+v",
				round, h.ReadmitUnits, want, h)
		}
	}
	h := victimHealth()
	if h.Downs < 3 || h.Readmits < 3 || h.ReadmitUnits < 3 {
		t.Fatalf("after 3 chaos rounds the victim's counters read %+v", h)
	}
	if fb := env.Ctx.LocalFallbackUnits(); fb != 0 {
		t.Fatalf("a survivor was always up, yet %d units fell back to the coordinator", fb)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if cur := env.Ctx.Mem.Current(); cur != 0 {
		t.Fatalf("chaos rounds leak %d bytes on the query tracker", cur)
	}

	// Terminal degradation: with every worker dead the query must still
	// complete — locally, counted — and still match the oracle.
	w1.kill()
	w2.kill()
	down := NewEnvOpts(db, RunOptions{
		Workers: 2, Remotes: []string{w1.addr, w2.addr},
		ProbeBase: 2 * time.Millisecond, ProbeMax: 20 * time.Millisecond,
	})
	defer down.Close()
	q := queries[1]
	node, err := q.Build(down)
	if err != nil {
		t.Fatal(err)
	}
	res, err := down.run(node)
	if err != nil {
		t.Fatalf("%s with every worker dead failed instead of degrading locally: %v", q.Name, err)
	}
	assertSameResult(t, q.Name+" with every worker dead", res, serial[q.Name])
	if fb := down.Ctx.LocalFallbackUnits(); fb < 1 {
		t.Fatalf("all-down run recorded %d local-fallback units, want every routed unit", fb)
	}
	if err := down.Close(); err != nil {
		t.Fatal(err)
	}
	if cur := down.Ctx.Mem.Current(); cur != 0 {
		t.Fatalf("all-down run leaks %d bytes on the query tracker", cur)
	}

	// No goroutine may survive the ordeal (probers, read loops, schedulers,
	// process waiters all joined).
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= base {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines alive after the chaos run, want ≤ %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}
