package tpch

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"bdcc/internal/core"
	"bdcc/internal/plan"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// The ingest oracle: a database that grew by appends — snapshot views first,
// then an incremental merge — must be indistinguishable, bit for bit, from
// one rebuilt from scratch over the same rows. The reference rebuild keeps
// the frozen design (RebuildWithDesign) but re-sorts and re-aggregates from
// zero, a genuinely different code path from the splice-and-sum merge, so
// agreement is evidence rather than tautology.

// freshIngestBenchmark materializes a private benchmark the test may mutate
// (the shared fixture must stay append-free).
func freshIngestBenchmark(t testing.TB, sf float64, compress bool) *Benchmark {
	t.Helper()
	b, err := NewBenchmarkCompressed(sf, compress)
	if err != nil {
		t.Fatalf("NewBenchmarkCompressed: %v", err)
	}
	return b
}

// combinedWith concatenates the arrival batches onto the base tables in
// insertion order — the ground truth every scheme's ingest path must serve.
func combinedWith(t testing.TB, data *Dataset, batches []*DeltaBatch) map[string]*storage.Table {
	t.Helper()
	out := make(map[string]*storage.Table, len(data.Tables))
	for n, tab := range data.Tables {
		out[n] = tab
	}
	for _, b := range batches {
		for _, d := range []*storage.Table{b.Orders, b.Lineitem} {
			c, err := storage.Concat(out[d.Name], out[d.Name].Rows(), d)
			if err != nil {
				t.Fatalf("concat %s: %v", d.Name, err)
			}
			out[d.Name] = c
		}
	}
	return out
}

// referenceDBs builds each scheme from scratch over the combined tables,
// reusing the base benchmark's frozen BDCC design.
func referenceDBs(t testing.TB, b *Benchmark, combined map[string]*storage.Table) map[plan.Scheme]*plan.DB {
	t.Helper()
	refs := make(map[plan.Scheme]*plan.DB, len(b.DBs))
	for scheme, db := range b.DBs {
		switch scheme {
		case plan.Plain:
			refs[scheme] = plan.NewPlainDB(b.Schema, combined, db.Device)
		case plan.PK:
			ref, err := plan.NewPKDB(b.Schema, combined, db.Device)
			if err != nil {
				t.Fatalf("pk rebuild: %v", err)
			}
			refs[scheme] = ref
		case plan.BDCC:
			reb, err := core.RebuildWithDesign(db.Clustered, b.Schema, combined, core.BuildOptions{Device: db.Device})
			if err != nil {
				t.Fatalf("bdcc rebuild: %v", err)
			}
			refs[scheme] = &plan.DB{Scheme: plan.BDCC, Schema: b.Schema, Tables: combined, Clustered: reb, Device: db.Device}
		}
	}
	return refs
}

// TestIngestQueryEquivalence appends three arrival batches, then checks every
// query under every scheme against the from-scratch rebuild — first over the
// un-merged delta views, then again after the merge consolidated them — in
// the serial, parallel (4 workers), and sharded (2×2) cells. Serial results
// must match the rebuild bit for bit; the parallel and sharded cells must
// match their own serial run bit for bit (the engine's standing guarantee,
// now over snapshot views).
func TestIngestQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest oracle skipped in -short")
	}
	b := freshIngestBenchmark(t, 0.02, false)
	if err := b.EnableIngest(0, 0); err != nil {
		t.Fatal(err)
	}
	gen := NewDeltaGen(b.Data, 777)
	var batches []*DeltaBatch
	var deltaRows int64
	for i := 0; i < 3; i++ {
		batch := gen.Next(250)
		batches = append(batches, batch)
		deltaRows += int64(batch.Orders.Rows() + batch.Lineitem.Rows())
		if err := b.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	combined := combinedWith(t, b.Data, batches)
	refs := referenceDBs(t, b, combined)

	check := func(label string) {
		t.Helper()
		for scheme, db := range b.DBs {
			sdb := db.Snapshot()
			for _, q := range Queries {
				cell := fmt.Sprintf("%s under %s %s", q.Name, scheme, label)
				got, _, _, err := RunQuery(sdb, q)
				if err != nil {
					t.Fatalf("%s: %v", cell, err)
				}
				want, _, _, err := RunQuery(refs[scheme], q)
				if err != nil {
					t.Fatalf("%s (rebuild): %v", cell, err)
				}
				assertSameResult(t, cell+" vs from-scratch rebuild", got, want)
				par, _, _, err := RunQueryWorkers(sdb, q, 4)
				if err != nil {
					t.Fatalf("%s (parallel): %v", cell, err)
				}
				assertSameResult(t, cell+" parallel vs serial", par, got)
				sh, _, _, err := RunQueryShards(sdb, q, 2, 2)
				if err != nil {
					t.Fatalf("%s (sharded): %v", cell, err)
				}
				assertSameResult(t, cell+" sharded vs serial", sh, got)
			}
		}
	}

	for scheme, db := range b.DBs {
		if got := db.PendingDeltaRows(); got != deltaRows {
			t.Fatalf("%s sees %d pending delta rows, appended %d", scheme, got, deltaRows)
		}
		if db.Epoch() == 0 {
			t.Fatalf("%s still at epoch 0 after appends", scheme)
		}
	}
	drift := b.DBs[plan.BDCC].Ingest().Stats().Drift["lineitem"]
	if drift.DeltaRows == 0 || drift.Distance <= 0 {
		t.Fatalf("no drift measured over the lineitem delta: %+v", drift)
	}
	check("with un-merged delta")

	preEpoch := b.DBs[plan.BDCC].Epoch()
	if err := b.MergeAll(); err != nil {
		t.Fatal(err)
	}
	for scheme, db := range b.DBs {
		st := db.Ingest().Stats()
		if st.Err != nil {
			t.Fatalf("%s merge error: %v", scheme, st.Err)
		}
		if st.Merges != 1 || st.MergedRows != deltaRows || st.DeltaRows != 0 {
			t.Fatalf("%s merge counters: %+v, want 1 merge of %d rows and an empty delta", scheme, st, deltaRows)
		}
		if db.PendingDeltaRows() != 0 {
			t.Fatalf("%s still reports pending delta after the merge", scheme)
		}
	}
	if got := b.DBs[plan.BDCC].Epoch(); got <= preEpoch {
		t.Fatalf("merge did not advance the epoch: %d -> %d", preEpoch, got)
	}
	check("after the merge")

	// The incremental splice must also reproduce the rebuild's physical
	// clustering: same count table (cells, counts, offsets, relocation flags)
	// and same stored row count per designed fact table.
	mdb := b.DBs[plan.BDCC].Snapshot()
	for _, name := range []string{"orders", "lineitem"} {
		got, want := mdb.BDCCTable(name), refs[plan.BDCC].BDCCTable(name)
		if got == nil || want == nil {
			t.Fatalf("%s missing from a clustered database", name)
		}
		if got.Data.Rows() != want.Data.Rows() {
			t.Fatalf("%s stores %d rows after the merge, rebuild stores %d", name, got.Data.Rows(), want.Data.Rows())
		}
		if len(got.Count) != len(want.Count) {
			t.Fatalf("%s count table has %d cells, rebuild has %d", name, len(got.Count), len(want.Count))
		}
		for i := range got.Count {
			if got.Count[i] != want.Count[i] {
				t.Fatalf("%s count entry %d = %+v, rebuild has %+v", name, i, got.Count[i], want.Count[i])
			}
		}
	}
}

// TestIngestFreshDesignAgrees cross-checks the merged database against a
// completely fresh advisor+builder run over the combined tables — its own
// design, not the frozen one — with the tolerant comparison (summation order
// differs across clusterings).
func TestIngestFreshDesignAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	b := freshIngestBenchmark(t, 0.02, false)
	if err := b.EnableIngest(0, 0); err != nil {
		t.Fatal(err)
	}
	gen := NewDeltaGen(b.Data, 4242)
	batch := gen.Next(400)
	if err := b.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := b.MergeAll(); err != nil {
		t.Fatal(err)
	}
	combined := combinedWith(t, b.Data, []*DeltaBatch{batch})
	db := b.DBs[plan.BDCC]
	fresh, err := plan.NewBDCCDB(b.Schema, combined, db.Device, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range []int{1, 3, 6, 9, 18} {
		q := Query(num)
		got, _, _, err := RunQuery(db.Snapshot(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := RunQuery(fresh, q)
		if err != nil {
			t.Fatal(err)
		}
		gr, wr := resultRows(got, got.Row), resultRows(want, want.Row)
		if len(gr) != len(wr) {
			t.Fatalf("%s: %d rows vs %d under a fresh design", q.Name, len(gr), len(wr))
		}
		for i := range gr {
			if !rowsEqual(gr[i], wr[i]) {
				t.Fatalf("%s row %d: %s vs %s under a fresh design", q.Name, i, gr[i], wr[i])
			}
		}
	}
}

// TestIngestCompressedMerge checks the freshness tax and its repayment: over
// a compressed base the delta views scan uncompressed (appends must not stall
// on re-encoding), and the merge re-compresses the consolidated layout.
// Results match the uncompressed from-scratch rebuild bit for bit throughout.
func TestIngestCompressedMerge(t *testing.T) {
	b := freshIngestBenchmark(t, 0.01, true)
	if err := b.EnableIngest(0, 0); err != nil {
		t.Fatal(err)
	}
	gen := NewDeltaGen(b.Data, 31)
	batch := gen.Next(200)
	if err := b.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	combined := combinedWith(t, b.Data, []*DeltaBatch{batch})
	refs := referenceDBs(t, b, combined)
	queries := []QueryDef{Query(1), Query(6)}

	checkState := func(label string, wantCompressed bool) {
		t.Helper()
		for scheme, db := range b.DBs {
			sdb := db.Snapshot()
			st, err := sdb.StoredTable("lineitem")
			if err != nil {
				t.Fatal(err)
			}
			if st.Compressed() != wantCompressed {
				t.Fatalf("%s lineitem view %s: compressed=%v, want %v", scheme, label, st.Compressed(), wantCompressed)
			}
			for _, q := range queries {
				got, _, _, err := RunQuery(sdb, q)
				if err != nil {
					t.Fatalf("%s under %s %s: %v", q.Name, scheme, label, err)
				}
				want, _, _, err := RunQuery(refs[scheme], q)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, fmt.Sprintf("%s under %s %s", q.Name, scheme, label), got, want)
			}
		}
	}

	checkState("with un-merged delta", false)
	if err := b.MergeAll(); err != nil {
		t.Fatal(err)
	}
	checkState("after the merge", true)
	for scheme, db := range b.DBs {
		if cs := db.Snapshot().CompressionStats(); cs.EncodedBytes == 0 {
			t.Fatalf("%s reports no encoded bytes after the merge re-compression", scheme)
		}
	}
}

// q6Revenue recomputes Q06 over a snapshot's raw lineitem view — any row
// order, so it is layout-independent and compares with a relative tolerance.
func q6Revenue(sdb *plan.DB) (float64, error) {
	li, ok := sdb.Tables["lineitem"]
	if !ok {
		return 0, fmt.Errorf("no lineitem view")
	}
	lo, hi := vector.ParseDate("1994-01-01"), vector.ParseDate("1994-12-31")
	sd := li.MustColumn("l_shipdate").I64
	disc := li.MustColumn("l_discount").F64
	qty := li.MustColumn("l_quantity").F64
	ext := li.MustColumn("l_extendedprice").F64
	var sum float64
	for i := range sd {
		if sd[i] >= lo && sd[i] <= hi && disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24 {
			sum += ext[i] * disc[i]
		}
	}
	return sum, nil
}

// TestIngestSoak hammers the snapshot machinery under -race: one writer
// appending arrival batches into all three schemes while readers pin
// snapshots and verify each query result against an independent recomputation
// over the very snapshot it ran on — a torn view (partial merge, half-visible
// batch) shows up as a gross revenue mismatch. Background merges trigger off
// the delta limit while the readers run. The run must leak neither
// goroutines nor tracker bytes.
func TestIngestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest soak skipped in -short")
	}
	baseGoroutines := runtime.NumGoroutine()
	b := freshIngestBenchmark(t, 0.01, false)
	if err := b.EnableIngest(1500, 0.25); err != nil {
		t.Fatal(err)
	}
	gen := NewDeltaGen(b.Data, 99)

	const rounds = 18
	stop := make(chan struct{})
	errc := make(chan error, 16)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			if err := b.AppendBatch(gen.Next(100)); err != nil {
				fail(err)
				return
			}
		}
	}()
	for scheme, db := range b.DBs {
		scheme, db := scheme, db
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch int64
			reads := 0
			for {
				select {
				case <-stop:
					if reads == 0 {
						fail(fmt.Errorf("%s reader never ran", scheme))
					}
					return
				default:
				}
				sdb := db.Snapshot()
				if e := sdb.Epoch(); e < lastEpoch {
					fail(fmt.Errorf("%s epoch went backwards: %d after %d", scheme, e, lastEpoch))
					return
				} else {
					lastEpoch = e
				}
				// Parents-first visibility: a lineitem row may never be
				// visible before the order it references.
				maxKey := func(t *storage.Table, col string) int64 {
					var m int64
					for _, k := range t.MustColumn(col).I64 {
						if k > m {
							m = k
						}
					}
					return m
				}
				if lk, ok := maxKey(sdb.Tables["lineitem"], "l_orderkey"), maxKey(sdb.Tables["orders"], "o_orderkey"); lk > ok {
					fail(fmt.Errorf("%s snapshot shows lineitem for order %d beyond max order %d", scheme, lk, ok))
					return
				}
				res, _, _, err := RunQuery(sdb, Query(6))
				if err != nil {
					fail(fmt.Errorf("%s Q06: %w", scheme, err))
					return
				}
				if res.Rows() != 1 {
					fail(fmt.Errorf("%s Q06 returned %d rows", scheme, res.Rows()))
					return
				}
				got, err := strconv.ParseFloat(res.Row(0)[0], 64)
				if err != nil {
					fail(fmt.Errorf("%s Q06 revenue %q: %w", scheme, res.Row(0)[0], err))
					return
				}
				want, err := q6Revenue(sdb)
				if err != nil {
					fail(fmt.Errorf("%s: %w", scheme, err))
					return
				}
				// The rendered result rounds to cents; any torn view is off by at
				// least one qualifying row's ext*disc (tens of currency units).
				if diff := got - want; diff < -0.5 || diff > 0.5 {
					fail(fmt.Errorf("%s Q06 over its own snapshot (epoch %d): query says %.6f, recomputation says %.6f — torn view", scheme, sdb.Epoch(), got, want))
					return
				}
				reads++
			}
		}()
	}
	wg.Wait()
	b.WaitIngest()
	if err := b.MergeAll(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	var final []string
	for scheme, db := range b.DBs {
		st := db.Ingest().Stats()
		if st.Err != nil {
			t.Fatalf("%s merge error: %v", scheme, st.Err)
		}
		if st.Merges < 2 {
			t.Fatalf("%s committed %d merges over the soak, want the limit to have triggered background merges", scheme, st.Merges)
		}
		if st.DeltaRows != 0 || db.PendingDeltaRows() != 0 {
			t.Fatalf("%s still holds delta rows after the final merge: %+v", scheme, st)
		}
		// One metered run per scheme to prove the tracker drains to zero.
		env := NewEnvOpts(db.Snapshot(), RunOptions{})
		node, err := Query(6).Build(env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.run(node)
		if err != nil {
			t.Fatalf("%s post-soak Q06: %v", scheme, err)
		}
		final = append(final, resultRows(res, res.Row)...)
		if err := env.Close(); err != nil {
			t.Fatal(err)
		}
		if cur := env.Ctx.Mem.Current(); cur != 0 {
			t.Fatalf("%s leaks %d bytes on the query tracker after the soak", scheme, cur)
		}
	}
	for i := 1; i < len(final); i++ {
		if !rowsEqual(final[0], final[i]) {
			t.Fatalf("schemes disagree after the soak: %s vs %s", final[0], final[i])
		}
	}

	// Every background merge goroutine must have joined.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= baseGoroutines {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines alive after the soak, want ≤ %d\n%s", runtime.NumGoroutine(), baseGoroutines, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}
