package tpch

import (
	"fmt"
	"time"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/plan"
)

// Schema parses the TPC-H DDL together with the paper's BDCC hints.
func Schema() *catalog.Schema {
	return catalog.MustParseDDL(DDL + HintDDL)
}

// Benchmark holds one generated dataset materialized under the three
// physical schemes of the paper's evaluation. The embedded RunOptions are
// the execution knobs RunAll applies to every query (zero values keep the
// paper's serial single-box setup).
type Benchmark struct {
	SF     float64
	Schema *catalog.Schema
	Data   *Dataset
	DBs    map[plan.Scheme]*plan.DB
	// Compressed records whether the base tables were chunk-compressed
	// before materialization (NewBenchmarkCompressed). Materialized schemes
	// inherit the flag through Permute/AppendRows, so PK and BDCC layouts
	// re-encode in their clustered row order.
	Compressed bool
	RunOptions
}

// majorMinorOptions returns build options for the hand-tuned major-minor
// ordering of the paper's "Other Orderings" comparison (time dimension
// major, as the paper favours).
func majorMinorOptions() core.BuildOptions {
	return core.BuildOptions{MajorMinor: true}
}

// NewBenchmark generates data at the scale factor and materializes the
// requested schemes (all three when none are named), uncompressed.
func NewBenchmark(sf float64, schemes ...plan.Scheme) (*Benchmark, error) {
	return NewBenchmarkCompressed(sf, false, schemes...)
}

// NewBenchmarkCompressed is NewBenchmark with the storage-compression knob:
// with compress set, every base table is chunk-encoded before the schemes
// materialize, and the PK/BDCC permutations re-encode in clustered order
// (which is where BDCC's locally homogeneous values pay off). Query results
// are byte-identical across the knob.
func NewBenchmarkCompressed(sf float64, compress bool, schemes ...plan.Scheme) (*Benchmark, error) {
	if len(schemes) == 0 {
		schemes = []plan.Scheme{plan.Plain, plan.PK, plan.BDCC}
	}
	schema := Schema()
	data := Generate(sf)
	dev := iosim.PaperSSD()
	if compress {
		for _, t := range data.Tables {
			t.Compress()
		}
	}
	b := &Benchmark{SF: sf, Schema: schema, Data: data, DBs: map[plan.Scheme]*plan.DB{}, Compressed: compress}
	for _, s := range schemes {
		switch s {
		case plan.Plain:
			b.DBs[s] = plan.NewPlainDB(schema, data.Tables, dev)
		case plan.PK:
			db, err := plan.NewPKDB(schema, data.Tables, dev)
			if err != nil {
				return nil, err
			}
			b.DBs[s] = db
		case plan.BDCC:
			db, err := plan.NewBDCCDB(schema, data.Tables, dev, core.BuildOptions{})
			if err != nil {
				return nil, err
			}
			b.DBs[s] = db
		}
	}
	return b, nil
}

// Env is the per-execution environment a query builder runs in: it exposes
// the database and allows evaluating uncorrelated scalar subqueries and
// one-shot views (TPC-H Q11, Q15, Q17, Q22) against the same execution
// meters as the main plan.
type Env struct {
	DB  *plan.DB
	Ctx *engine.Context
	// Explain accumulates planner decisions across sub-plans.
	Explain []string

	// rec/replay are the subquery-memo halves of the daemon's plan cache:
	// recording appends every Scalar and Materialize result in Build-call
	// order, replaying returns them in the same order without executing
	// (Build functions are deterministic in their env-call sequence).
	rec    *subMemo
	replay *subMemo
	si, mi int
}

// subMemo records the environment-level subquery results of one query
// build. Cached alongside the plan memo, it lets a cache hit skip the
// scalar-subquery and one-shot-view executions of Q11/Q15/Q17/Q22-style
// builds; the recorded results are shared read-only across replays.
type subMemo struct {
	scalars []float64
	mats    []*engine.Result
}

// NewEnv returns an environment with fresh meters.
func NewEnv(db *plan.DB) *Env {
	return &Env{DB: db, Ctx: engine.NewContext(db.Device)}
}

// NewEnvWorkers returns an environment with fresh meters and the
// morsel-parallelism knob set (values below 2 mean serial).
func NewEnvWorkers(db *plan.DB, workers int) *Env {
	return NewEnvOpts(db, RunOptions{Workers: workers})
}

// NewEnvShards returns an environment with both execution knobs set:
// workers (local pool size) and shards (backend count; values below 2 mean
// single-box). The caller owns the environment's backend set — Close the
// env (or Ctx.CloseBackends) after the query.
func NewEnvShards(db *plan.DB, workers, shards int) *Env {
	return NewEnvOpts(db, RunOptions{Workers: workers, Shards: shards})
}

// NewEnvOpts returns an environment with the full knob set applied — the
// one place every front end's knob wiring goes through (engine.Options). The
// database is pinned here: one snapshot serves the whole query, including
// every scalar-subquery and one-shot-view sub-plan, so a query never mixes
// ingest versions. Read-only databases pass through unchanged.
func NewEnvOpts(db *plan.DB, opt RunOptions) *Env {
	db = db.Snapshot()
	return &Env{DB: db, Ctx: opt.NewContext(db.Device)}
}

// Close releases the environment's per-query resources (the backend set of
// sharded runs). Safe on never-sharded environments.
func (e *Env) Close() error { return e.Ctx.CloseBackends() }

// run plans and executes a sub-plan within the environment.
func (e *Env) run(n plan.Node) (*engine.Result, error) {
	p := plan.NewPlanner(e.DB, e.Ctx)
	res, err := p.Run(n)
	e.Explain = append(e.Explain, p.Log...)
	return res, err
}

// Scalar evaluates a plan expected to yield a single row and returns its
// first column as float64.
func (e *Env) Scalar(n plan.Node) (float64, error) {
	if e.replay != nil {
		if e.si >= len(e.replay.scalars) {
			return 0, fmt.Errorf("tpch: subquery replay out of scalars (call %d)", e.si)
		}
		v := e.replay.scalars[e.si]
		e.si++
		return v, nil
	}
	res, err := e.run(n)
	if err != nil {
		return 0, err
	}
	if res.Rows() != 1 {
		return 0, fmt.Errorf("tpch: scalar subquery returned %d rows", res.Rows())
	}
	c := res.Cols[0]
	v := float64(0)
	if len(c.F64) == 1 {
		v = c.F64[0]
	} else {
		v = float64(c.I64[0])
	}
	if e.rec != nil {
		e.rec.scalars = append(e.rec.scalars, v)
	}
	return v, nil
}

// Materialize evaluates a plan once and wraps it for reuse in the main plan.
func (e *Env) Materialize(n plan.Node) (*plan.Materialized, *engine.Result, error) {
	if e.replay != nil {
		if e.mi >= len(e.replay.mats) {
			return nil, nil, fmt.Errorf("tpch: subquery replay out of views (call %d)", e.mi)
		}
		res := e.replay.mats[e.mi]
		e.mi++
		return &plan.Materialized{Res: res}, res, nil
	}
	res, err := e.run(n)
	if err != nil {
		return nil, nil, err
	}
	if e.rec != nil {
		e.rec.mats = append(e.rec.mats, res)
	}
	return &plan.Materialized{Res: res}, res, nil
}

// QueryDef is one of the 22 TPC-H queries.
type QueryDef struct {
	Num  int
	Name string
	// Build constructs the logical plan; it may evaluate scalar subqueries
	// through the environment.
	Build func(e *Env) (plan.Node, error)
}

// Stats are the execution meters of one query run — the quantities behind
// the paper's Figure 2 (cold time) and Figure 3 (memory).
type Stats struct {
	Rows    int
	Wall    time.Duration
	IO      iosim.Stats
	PeakMem int64
	// Cold is the modeled cold execution time. Serially (workers below 2,
	// the paper's setup) it is device time plus CPU wall time. With a
	// multi-worker scheduler, grouped scans post their scattered group
	// reads asynchronously and each overlap window contributes
	// max(io, cpu) instead of io + cpu: Cold = Wall + IO.Time − IO.Hidden
	// (see iosim.Stats.ColdTime). Serial runs hide nothing, so their
	// numbers are unchanged.
	Cold time.Duration
	// Sched is the per-query scheduler activity (zero when serial),
	// reported by tpchbench -v.
	Sched engine.SchedStats
	// Net is the cross-backend transport activity of a sharded run
	// (runs = messages); zero when single-box. Reported as net_ms in the
	// JSON grid. Network time is tracked separately from device time — it
	// does not enter Cold, which keeps single-box cold numbers comparable
	// across the shards knob. Against real TCP workers the message and byte
	// counts are real while the time remains the 10 GbE model's (the wall
	// clock already contains the real cost).
	Net iosim.Stats
	// Shard is the per-backend routed load of a sharded run (group units
	// and batch bytes the router placed on each backend); nil when
	// single-box. Reported as shard_units in the JSON grid, and the
	// quantity the balance-by-size policy equalizes.
	Shard []engine.BackendLoad
	// Health is the per-backend failover health of a sharded run (retries,
	// downs, mid-query re-admissions); nil when single-box. Reported as
	// shard_retries / shard_downs / shard_readmits in the JSON grid.
	Health []engine.BackendHealth
	// LocalFallbackUnits counts units that ran on the coordinator's local
	// fallback because no remote backend survived them (graceful
	// degradation); reported as local_fallback_units in the JSON grid.
	LocalFallbackUnits int64
	// Epoch is the ingest version the query's snapshot pinned (0 for a
	// read-only or never-appended database) and DeltaRows the un-merged rows
	// visible at that version — the freshness the run paid its mb_read for.
	Epoch     int64
	DeltaRows int64
	// WorkerIO is the per-worker device activity of a partitioned run: the
	// modeled reads each worker's shipped scan units performed against its
	// local partition (reported back in unit done frames); nil unless the
	// Partition knob lowered at least one scan. Units re-scanned on the
	// coordinator's failover path appear in IO instead — the coordinator's
	// device did that work. Reported as worker_mb_read in the JSON grid;
	// the headline shared-nothing claim is that each entry's byte volume is
	// ~1/N of the single-box scan volume.
	WorkerIO []iosim.Stats
}

// RunOptions is the full execution knob set of one query run — an alias of
// engine.Options, the shared knob bundle every front end (tpchbench, this
// harness, bdccd) wires through one constructor instead of copying fields.
type RunOptions = engine.Options

// RunQuery executes one query against one database and reports results and
// meters, serially (the paper's measurement setup).
func RunQuery(db *plan.DB, q QueryDef) (*engine.Result, *Stats, []string, error) {
	return RunQueryWorkers(db, q, 0)
}

// RunQueryWorkers is RunQuery with the morsel-parallelism knob: workers
// below 2 mean serial, engine.DefaultWorkers() uses all cores. Results are
// byte-identical across worker counts.
func RunQueryWorkers(db *plan.DB, q QueryDef, workers int) (*engine.Result, *Stats, []string, error) {
	return RunQueryShards(db, q, workers, 0)
}

// RunQueryShards is RunQueryWorkers with the scale-out knob: shards below 2
// mean single-box; with shards ≥ 2 the planner installs a backend set and
// BDCC group streams shard across it. Results are byte-identical across
// both knobs; the run's network activity is reported in Stats.Net. The
// per-query backend set is closed before returning.
func RunQueryShards(db *plan.DB, q QueryDef, workers, shards int) (*engine.Result, *Stats, []string, error) {
	return RunQueryOpts(db, q, RunOptions{Workers: workers, Shards: shards})
}

// RunQueryOpts is the full-knob query runner: workers, shards, real worker
// addresses (dialed TCP backends instead of simulated remotes), and the
// placement policy. Results are byte-identical across every knob cell —
// including runs where a worker dies mid-query and its units fail over.
func RunQueryOpts(db *plan.DB, q QueryDef, opt RunOptions) (*engine.Result, *Stats, []string, error) {
	env := NewEnvOpts(db, opt)
	db = env.DB // the pinned snapshot
	defer env.Close()
	start := time.Now()
	node, err := q.Build(env)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s build: %w", q.Name, err)
	}
	res, err := env.run(node)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s (%s): %w", q.Name, db.Scheme, err)
	}
	wall := time.Since(start)
	st := &Stats{
		Rows:               res.Rows(),
		Wall:               wall,
		IO:                 env.Ctx.Acct.Stats(),
		PeakMem:            env.Ctx.Mem.Peak(),
		Net:                env.Ctx.NetStats(),
		Shard:              env.Ctx.ShardLoads(),
		Health:             env.Ctx.HealthStats(),
		LocalFallbackUnits: env.Ctx.LocalFallbackUnits(),
		WorkerIO:           env.Ctx.WorkerIOStats(),
		Epoch:              db.Epoch(),
		DeltaRows:          db.PendingDeltaRows(),
	}
	st.Cold = st.IO.ColdTime(wall)
	if s := env.Ctx.Scheduler(); s != nil {
		st.Sched = s.Stats()
	}
	if err := env.Close(); err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s (%s): backend close: %w", q.Name, db.Scheme, err)
	}
	return res, st, env.Explain, nil
}
