package tpch

import (
	"fmt"
	"time"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/plan"
)

// Schema parses the TPC-H DDL together with the paper's BDCC hints.
func Schema() *catalog.Schema {
	return catalog.MustParseDDL(DDL + HintDDL)
}

// Benchmark holds one generated dataset materialized under the three
// physical schemes of the paper's evaluation.
type Benchmark struct {
	SF     float64
	Schema *catalog.Schema
	Data   *Dataset
	DBs    map[plan.Scheme]*plan.DB
	// Workers is the morsel-parallelism knob applied to every query RunAll
	// executes; values below 2 keep the paper's single-threaded setup.
	Workers int
	// Shards is the scale-out knob applied to every query RunAll executes;
	// values below 2 keep the paper's single-box setup. Ignored when
	// Remotes is set (the worker count is then len(Remotes)).
	Shards int
	// Remotes lists bdccworker daemon addresses; when non-empty every query
	// shards its group streams over dialed TCP backends instead of
	// simulated remotes.
	Remotes []string
	// Balance is the group-placement policy of sharded runs: "" or "hash"
	// for group-hash placement, "size" for least-loaded-by-bytes.
	Balance string
	// ProbeBase and ProbeMax tune the failover health prober's reconnect
	// backoff against real workers (RunAll passes them through to every
	// query); zero values keep the defaults.
	ProbeBase time.Duration
	ProbeMax  time.Duration
}

// majorMinorOptions returns build options for the hand-tuned major-minor
// ordering of the paper's "Other Orderings" comparison (time dimension
// major, as the paper favours).
func majorMinorOptions() core.BuildOptions {
	return core.BuildOptions{MajorMinor: true}
}

// NewBenchmark generates data at the scale factor and materializes the
// requested schemes (all three when none are named).
func NewBenchmark(sf float64, schemes ...plan.Scheme) (*Benchmark, error) {
	if len(schemes) == 0 {
		schemes = []plan.Scheme{plan.Plain, plan.PK, plan.BDCC}
	}
	schema := Schema()
	data := Generate(sf)
	dev := iosim.PaperSSD()
	b := &Benchmark{SF: sf, Schema: schema, Data: data, DBs: map[plan.Scheme]*plan.DB{}}
	for _, s := range schemes {
		switch s {
		case plan.Plain:
			b.DBs[s] = plan.NewPlainDB(schema, data.Tables, dev)
		case plan.PK:
			db, err := plan.NewPKDB(schema, data.Tables, dev)
			if err != nil {
				return nil, err
			}
			b.DBs[s] = db
		case plan.BDCC:
			db, err := plan.NewBDCCDB(schema, data.Tables, dev, core.BuildOptions{})
			if err != nil {
				return nil, err
			}
			b.DBs[s] = db
		}
	}
	return b, nil
}

// Env is the per-execution environment a query builder runs in: it exposes
// the database and allows evaluating uncorrelated scalar subqueries and
// one-shot views (TPC-H Q11, Q15, Q17, Q22) against the same execution
// meters as the main plan.
type Env struct {
	DB  *plan.DB
	Ctx *engine.Context
	// Explain accumulates planner decisions across sub-plans.
	Explain []string
}

// NewEnv returns an environment with fresh meters.
func NewEnv(db *plan.DB) *Env {
	return &Env{DB: db, Ctx: engine.NewContext(db.Device)}
}

// NewEnvWorkers returns an environment with fresh meters and the
// morsel-parallelism knob set (values below 2 mean serial).
func NewEnvWorkers(db *plan.DB, workers int) *Env {
	e := NewEnv(db)
	e.Ctx.Workers = workers
	return e
}

// NewEnvShards returns an environment with both execution knobs set:
// workers (local pool size) and shards (backend count; values below 2 mean
// single-box). The caller owns the environment's backend set — Close the
// env (or Ctx.CloseBackends) after the query.
func NewEnvShards(db *plan.DB, workers, shards int) *Env {
	e := NewEnvWorkers(db, workers)
	e.Ctx.Shards = shards
	return e
}

// NewEnvOpts returns an environment with the full knob set applied.
func NewEnvOpts(db *plan.DB, opt RunOptions) *Env {
	e := NewEnvShards(db, opt.Workers, opt.Shards)
	e.Ctx.Remotes = opt.Remotes
	e.Ctx.Balance = opt.Balance
	e.Ctx.ProbeBase = opt.ProbeBase
	e.Ctx.ProbeMax = opt.ProbeMax
	return e
}

// Close releases the environment's per-query resources (the backend set of
// sharded runs). Safe on never-sharded environments.
func (e *Env) Close() error { return e.Ctx.CloseBackends() }

// run plans and executes a sub-plan within the environment.
func (e *Env) run(n plan.Node) (*engine.Result, error) {
	p := plan.NewPlanner(e.DB, e.Ctx)
	res, err := p.Run(n)
	e.Explain = append(e.Explain, p.Log...)
	return res, err
}

// Scalar evaluates a plan expected to yield a single row and returns its
// first column as float64.
func (e *Env) Scalar(n plan.Node) (float64, error) {
	res, err := e.run(n)
	if err != nil {
		return 0, err
	}
	if res.Rows() != 1 {
		return 0, fmt.Errorf("tpch: scalar subquery returned %d rows", res.Rows())
	}
	c := res.Cols[0]
	if len(c.F64) == 1 {
		return c.F64[0], nil
	}
	return float64(c.I64[0]), nil
}

// Materialize evaluates a plan once and wraps it for reuse in the main plan.
func (e *Env) Materialize(n plan.Node) (*plan.Materialized, *engine.Result, error) {
	res, err := e.run(n)
	if err != nil {
		return nil, nil, err
	}
	return &plan.Materialized{Res: res}, res, nil
}

// QueryDef is one of the 22 TPC-H queries.
type QueryDef struct {
	Num  int
	Name string
	// Build constructs the logical plan; it may evaluate scalar subqueries
	// through the environment.
	Build func(e *Env) (plan.Node, error)
}

// Stats are the execution meters of one query run — the quantities behind
// the paper's Figure 2 (cold time) and Figure 3 (memory).
type Stats struct {
	Rows    int
	Wall    time.Duration
	IO      iosim.Stats
	PeakMem int64
	// Cold is the modeled cold execution time. Serially (workers below 2,
	// the paper's setup) it is device time plus CPU wall time. With a
	// multi-worker scheduler, grouped scans post their scattered group
	// reads asynchronously and each overlap window contributes
	// max(io, cpu) instead of io + cpu: Cold = Wall + IO.Time − IO.Hidden
	// (see iosim.Stats.ColdTime). Serial runs hide nothing, so their
	// numbers are unchanged.
	Cold time.Duration
	// Sched is the per-query scheduler activity (zero when serial),
	// reported by tpchbench -v.
	Sched engine.SchedStats
	// Net is the cross-backend transport activity of a sharded run
	// (runs = messages); zero when single-box. Reported as net_ms in the
	// JSON grid. Network time is tracked separately from device time — it
	// does not enter Cold, which keeps single-box cold numbers comparable
	// across the shards knob. Against real TCP workers the message and byte
	// counts are real while the time remains the 10 GbE model's (the wall
	// clock already contains the real cost).
	Net iosim.Stats
	// Shard is the per-backend routed load of a sharded run (group units
	// and batch bytes the router placed on each backend); nil when
	// single-box. Reported as shard_units in the JSON grid, and the
	// quantity the balance-by-size policy equalizes.
	Shard []engine.BackendLoad
	// Health is the per-backend failover health of a sharded run (retries,
	// downs, mid-query re-admissions); nil when single-box. Reported as
	// shard_retries / shard_downs / shard_readmits in the JSON grid.
	Health []engine.BackendHealth
	// LocalFallbackUnits counts units that ran on the coordinator's local
	// fallback because no remote backend survived them (graceful
	// degradation); reported as local_fallback_units in the JSON grid.
	LocalFallbackUnits int64
}

// RunOptions is the full execution knob set of one query run.
type RunOptions struct {
	// Workers is the local pool size (below 2 = serial).
	Workers int
	// Shards is the simulated-remote count (below 2 = single-box); ignored
	// when Remotes is set.
	Shards int
	// Remotes lists bdccworker addresses to dial instead of simulating.
	Remotes []string
	// Balance is the placement policy: "" or "hash", or "size".
	Balance string
	// ProbeBase and ProbeMax tune the failover health prober's reconnect
	// backoff (first delay and cap); zero values keep the defaults.
	ProbeBase time.Duration
	ProbeMax  time.Duration
}

// RunQuery executes one query against one database and reports results and
// meters, serially (the paper's measurement setup).
func RunQuery(db *plan.DB, q QueryDef) (*engine.Result, *Stats, []string, error) {
	return RunQueryWorkers(db, q, 0)
}

// RunQueryWorkers is RunQuery with the morsel-parallelism knob: workers
// below 2 mean serial, engine.DefaultWorkers() uses all cores. Results are
// byte-identical across worker counts.
func RunQueryWorkers(db *plan.DB, q QueryDef, workers int) (*engine.Result, *Stats, []string, error) {
	return RunQueryShards(db, q, workers, 0)
}

// RunQueryShards is RunQueryWorkers with the scale-out knob: shards below 2
// mean single-box; with shards ≥ 2 the planner installs a backend set and
// BDCC group streams shard across it. Results are byte-identical across
// both knobs; the run's network activity is reported in Stats.Net. The
// per-query backend set is closed before returning.
func RunQueryShards(db *plan.DB, q QueryDef, workers, shards int) (*engine.Result, *Stats, []string, error) {
	return RunQueryOpts(db, q, RunOptions{Workers: workers, Shards: shards})
}

// RunQueryOpts is the full-knob query runner: workers, shards, real worker
// addresses (dialed TCP backends instead of simulated remotes), and the
// placement policy. Results are byte-identical across every knob cell —
// including runs where a worker dies mid-query and its units fail over.
func RunQueryOpts(db *plan.DB, q QueryDef, opt RunOptions) (*engine.Result, *Stats, []string, error) {
	env := NewEnvOpts(db, opt)
	defer env.Close()
	start := time.Now()
	node, err := q.Build(env)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s build: %w", q.Name, err)
	}
	res, err := env.run(node)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s (%s): %w", q.Name, db.Scheme, err)
	}
	wall := time.Since(start)
	st := &Stats{
		Rows:               res.Rows(),
		Wall:               wall,
		IO:                 env.Ctx.Acct.Stats(),
		PeakMem:            env.Ctx.Mem.Peak(),
		Net:                env.Ctx.NetStats(),
		Shard:              env.Ctx.ShardLoads(),
		Health:             env.Ctx.HealthStats(),
		LocalFallbackUnits: env.Ctx.LocalFallbackUnits(),
	}
	st.Cold = st.IO.ColdTime(wall)
	if s := env.Ctx.Scheduler(); s != nil {
		st.Sched = s.Stats()
	}
	if err := env.Close(); err != nil {
		return nil, nil, nil, fmt.Errorf("tpch: %s (%s): backend close: %w", q.Name, db.Scheme, err)
	}
	return res, st, env.Explain, nil
}
