package tpch

import (
	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/plan"
)

// Plan-building shorthand. Every query constructs fresh expression trees per
// execution (expressions bind in place), so builders are plain functions.

func sc(table string, filter expr.Expr, cols ...string) *plan.Scan {
	return &plan.Scan{Table: table, Cols: cols, Filter: filter}
}

func scAs(table, alias string, filter expr.Expr, cols ...string) *plan.Scan {
	return &plan.Scan{Table: table, Alias: alias, Cols: cols, Filter: filter}
}

func jn(l, r plan.Node, lk, rk string) *plan.Join {
	return &plan.Join{Left: l, Right: r, LeftKeys: []string{lk}, RightKeys: []string{rk}, Type: engine.InnerJoin}
}

func semi(l, r plan.Node, lk, rk string, residual expr.Expr) *plan.Join {
	return &plan.Join{Left: l, Right: r, LeftKeys: []string{lk}, RightKeys: []string{rk},
		Type: engine.SemiJoin, Residual: residual}
}

func anti(l, r plan.Node, lk, rk string, residual expr.Expr) *plan.Join {
	return &plan.Join{Left: l, Right: r, LeftKeys: []string{lk}, RightKeys: []string{rk},
		Type: engine.AntiJoin, Residual: residual}
}

func agg(child plan.Node, by []string, aggs ...engine.AggSpec) *plan.Agg {
	return &plan.Agg{Child: child, GroupBy: by, Aggs: aggs}
}

func sum(name string, e expr.Expr) engine.AggSpec {
	return engine.AggSpec{Name: name, Func: engine.AggSum, Arg: e}
}
func avg(name string, e expr.Expr) engine.AggSpec {
	return engine.AggSpec{Name: name, Func: engine.AggAvg, Arg: e}
}
func cnt(name string) engine.AggSpec { return engine.AggSpec{Name: name, Func: engine.AggCount} }
func mn(name string, e expr.Expr) engine.AggSpec {
	return engine.AggSpec{Name: name, Func: engine.AggMin, Arg: e}
}
func mx(name string, e expr.Expr) engine.AggSpec {
	return engine.AggSpec{Name: name, Func: engine.AggMax, Arg: e}
}

func proj(child plan.Node, cols ...engine.ProjCol) *plan.Project {
	return &plan.Project{Child: child, Cols: cols}
}

func pc(name string, e expr.Expr) engine.ProjCol { return engine.ProjCol{Name: name, Expr: e} }

func keep(names ...string) []engine.ProjCol {
	out := make([]engine.ProjCol, len(names))
	for i, n := range names {
		out[i] = engine.ProjCol{Name: n, Expr: expr.C(n)}
	}
	return out
}

func orderBy(child plan.Node, by ...engine.SortSpec) *plan.OrderBy {
	return &plan.OrderBy{Child: child, By: by}
}

func topN(child plan.Node, n int, by ...engine.SortSpec) *plan.TopNNode {
	return &plan.TopNNode{Child: child, By: by, N: n}
}

func asc(col string) engine.SortSpec  { return engine.SortSpec{Col: col} }
func desc(col string) engine.SortSpec { return engine.SortSpec{Col: col, Desc: true} }

// revenue is l_extendedprice * (1 - l_discount).
func revenue() expr.Expr {
	return expr.NewArith(expr.Mul, expr.C("l_extendedprice"),
		expr.NewArith(expr.Sub, expr.Float(1), expr.C("l_discount")))
}

func and(es ...expr.Expr) expr.Expr { return expr.NewAnd(es...) }

func between(c string, lo, hi expr.Expr) expr.Expr { return expr.Between(expr.C(c), lo, hi) }

func strs(vals ...string) []*expr.Const {
	out := make([]*expr.Const, len(vals))
	for i, v := range vals {
		out[i] = expr.Str(v)
	}
	return out
}

// Queries lists all 22 TPC-H queries with the specification's validation
// parameters.
var Queries = []QueryDef{
	{1, "Q01", q01}, {2, "Q02", q02}, {3, "Q03", q03}, {4, "Q04", q04},
	{5, "Q05", q05}, {6, "Q06", q06}, {7, "Q07", q07}, {8, "Q08", q08},
	{9, "Q09", q09}, {10, "Q10", q10}, {11, "Q11", q11}, {12, "Q12", q12},
	{13, "Q13", q13}, {14, "Q14", q14}, {15, "Q15", q15}, {16, "Q16", q16},
	{17, "Q17", q17}, {18, "Q18", q18}, {19, "Q19", q19}, {20, "Q20", q20},
	{21, "Q21", q21}, {22, "Q22", q22},
}

// Query returns the named query definition.
func Query(num int) QueryDef { return Queries[num-1] }

// q01: pricing summary report — a ~97% scan with heavy aggregation; the
// paper notes no indexing scheme can accelerate it.
func q01(e *Env) (plan.Node, error) {
	li := sc("lineitem",
		expr.NewCmp(expr.LE, expr.C("l_shipdate"), expr.Date("1998-09-02")),
		"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate")
	discPrice := expr.NewArith(expr.Mul, expr.C("l_extendedprice"),
		expr.NewArith(expr.Sub, expr.Float(1), expr.C("l_discount")))
	charge := expr.NewArith(expr.Mul,
		expr.NewArith(expr.Mul, expr.C("l_extendedprice"),
			expr.NewArith(expr.Sub, expr.Float(1), expr.C("l_discount"))),
		expr.NewArith(expr.Add, expr.Float(1), expr.C("l_tax")))
	a := agg(li, []string{"l_returnflag", "l_linestatus"},
		sum("sum_qty", expr.C("l_quantity")),
		sum("sum_base_price", expr.C("l_extendedprice")),
		sum("sum_disc_price", discPrice),
		sum("sum_charge", charge),
		avg("avg_qty", expr.C("l_quantity")),
		avg("avg_price", expr.C("l_extendedprice")),
		avg("avg_disc", expr.C("l_discount")),
		cnt("count_order"))
	return orderBy(a, asc("l_returnflag"), asc("l_linestatus")), nil
}

// q02: minimum cost supplier in EUROPE for size-15 %BRASS parts.
func q02(e *Env) (plan.Node, error) {
	europeSupPS := func() plan.Node {
		nat := jn(
			sc("nation", nil, "n_nationkey", "n_name", "n_regionkey"),
			sc("region", expr.Eq(expr.C("r_name"), expr.Str("EUROPE")), "r_regionkey", "r_name"),
			"n_regionkey", "r_regionkey")
		sup := jn(
			sc("supplier", nil, "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"),
			nat, "s_nationkey", "n_nationkey")
		return jn(
			sc("partsupp", nil, "ps_partkey", "ps_suppkey", "ps_supplycost"),
			sup, "ps_suppkey", "s_suppkey")
	}
	minCost := proj(
		agg(europeSupPS(), []string{"ps_partkey"}, mn("min_cost", expr.C("ps_supplycost"))),
		pc("mc_partkey", expr.C("ps_partkey")), pc("mc_cost", expr.C("min_cost")))
	part := sc("part", and(
		expr.Eq(expr.C("p_size"), expr.Int(15)),
		expr.NewLike(expr.C("p_type"), "%BRASS")),
		"p_partkey", "p_mfgr", "p_size", "p_type")
	j := jn(europeSupPS(), part, "ps_partkey", "p_partkey")
	j2 := &plan.Join{Left: j, Right: minCost,
		LeftKeys:  []string{"ps_partkey", "ps_supplycost"},
		RightKeys: []string{"mc_partkey", "mc_cost"},
		Type:      engine.InnerJoin}
	p := proj(j2, keep("s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment")...)
	return topN(p, 100, desc("s_acctbal"), asc("n_name"), asc("s_name"), asc("p_partkey")), nil
}

// q03: shipping priority — the paper's canonical pushdown+sandwich query.
func q03(e *Env) (plan.Node, error) {
	cust := sc("customer", expr.Eq(expr.C("c_mktsegment"), expr.Str("BUILDING")), "c_custkey", "c_mktsegment")
	ord := sc("orders", expr.NewCmp(expr.LT, expr.C("o_orderdate"), expr.Date("1995-03-15")),
		"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	li := sc("lineitem", expr.NewCmp(expr.GT, expr.C("l_shipdate"), expr.Date("1995-03-15")),
		"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
	j := jn(jn(li, ord, "l_orderkey", "o_orderkey"), cust, "o_custkey", "c_custkey")
	a := agg(j, []string{"l_orderkey", "o_orderdate", "o_shippriority"}, sum("revenue", revenue()))
	return topN(a, 10, desc("revenue"), asc("o_orderdate")), nil
}

// q04: order priority checking — semi join against late lineitems.
func q04(e *Env) (plan.Node, error) {
	ord := sc("orders", between("o_orderdate", expr.Date("1993-07-01"), expr.Date("1993-09-30")),
		"o_orderkey", "o_orderdate", "o_orderpriority")
	li := sc("lineitem", expr.NewCmp(expr.LT, expr.C("l_commitdate"), expr.C("l_receiptdate")),
		"l_orderkey", "l_commitdate", "l_receiptdate")
	s := semi(ord, li, "o_orderkey", "l_orderkey", nil)
	a := agg(s, []string{"o_orderpriority"}, cnt("order_count"))
	return orderBy(a, asc("o_orderpriority")), nil
}

// q05: local supplier volume — region selection propagated to every fact
// scan through D_NATION.
func q05(e *Env) (plan.Node, error) {
	nat := jn(
		sc("nation", nil, "n_nationkey", "n_name", "n_regionkey"),
		sc("region", expr.Eq(expr.C("r_name"), expr.Str("ASIA")), "r_regionkey", "r_name"),
		"n_regionkey", "r_regionkey")
	ord := sc("orders", between("o_orderdate", expr.Date("1994-01-01"), expr.Date("1994-12-31")),
		"o_orderkey", "o_custkey", "o_orderdate")
	li := sc("lineitem", nil, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	j := jn(li, ord, "l_orderkey", "o_orderkey")
	j = jn(j, sc("customer", nil, "c_custkey", "c_nationkey"), "o_custkey", "c_custkey")
	j = jn(j, sc("supplier", nil, "s_suppkey", "s_nationkey"), "l_suppkey", "s_suppkey")
	f := &plan.FilterNode{Child: j, Pred: expr.Eq(expr.C("c_nationkey"), expr.C("s_nationkey"))}
	j2 := jn(f, nat, "s_nationkey", "n_nationkey")
	a := agg(j2, []string{"n_name"}, sum("revenue", revenue()))
	return orderBy(a, desc("revenue")), nil
}

// q06: forecasting revenue change — pure selection; BDCC wins through the
// o_orderdate/l_shipdate correlation and MinMax indexes.
func q06(e *Env) (plan.Node, error) {
	li := sc("lineitem", and(
		between("l_shipdate", expr.Date("1994-01-01"), expr.Date("1994-12-31")),
		between("l_discount", expr.Float(0.05), expr.Float(0.07)),
		expr.NewCmp(expr.LT, expr.C("l_quantity"), expr.Float(24))),
		"l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
	return agg(li, nil, sum("revenue",
		expr.NewArith(expr.Mul, expr.C("l_extendedprice"), expr.C("l_discount")))), nil
}

// q07: volume shipping between FRANCE and GERMANY.
func q07(e *Env) (plan.Node, error) {
	natFilter := func() expr.Expr { return expr.NewIn(expr.C("n_name"), strs("FRANCE", "GERMANY")...) }
	li := sc("lineitem", between("l_shipdate", expr.Date("1995-01-01"), expr.Date("1996-12-31")),
		"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	j := jn(li, sc("supplier", nil, "s_suppkey", "s_nationkey"), "l_suppkey", "s_suppkey")
	j = jn(j, scAs("nation", "n1", natFilter(), "n_nationkey", "n_name"), "s_nationkey", "n1_n_nationkey")
	j = jn(j, sc("orders", nil, "o_orderkey", "o_custkey"), "l_orderkey", "o_orderkey")
	j = jn(j, sc("customer", nil, "c_custkey", "c_nationkey"), "o_custkey", "c_custkey")
	j = jn(j, scAs("nation", "n2", natFilter(), "n_nationkey", "n_name"), "c_nationkey", "n2_n_nationkey")
	f := &plan.FilterNode{Child: j, Pred: expr.NewOr(
		and(expr.Eq(expr.C("n1_n_name"), expr.Str("FRANCE")), expr.Eq(expr.C("n2_n_name"), expr.Str("GERMANY"))),
		and(expr.Eq(expr.C("n1_n_name"), expr.Str("GERMANY")), expr.Eq(expr.C("n2_n_name"), expr.Str("FRANCE"))))}
	p := proj(f,
		pc("supp_nation", expr.C("n1_n_name")),
		pc("cust_nation", expr.C("n2_n_name")),
		pc("l_year", expr.NewYear(expr.C("l_shipdate"))),
		pc("volume", revenue()))
	a := agg(p, []string{"supp_nation", "cust_nation", "l_year"}, sum("revenue", expr.C("volume")))
	return orderBy(a, asc("supp_nation"), asc("cust_nation"), asc("l_year")), nil
}

// q08: national market share of BRAZIL in AMERICA for a part type.
func q08(e *Env) (plan.Node, error) {
	li := sc("lineitem", nil, "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
	part := sc("part", expr.Eq(expr.C("p_type"), expr.Str("ECONOMY ANODIZED STEEL")), "p_partkey", "p_type")
	j := jn(li, part, "l_partkey", "p_partkey")
	j = jn(j, sc("orders", between("o_orderdate", expr.Date("1995-01-01"), expr.Date("1996-12-31")),
		"o_orderkey", "o_custkey", "o_orderdate"), "l_orderkey", "o_orderkey")
	j = jn(j, sc("customer", nil, "c_custkey", "c_nationkey"), "o_custkey", "c_custkey")
	// Customer nation must be in AMERICA.
	amNat := jn(
		scAs("nation", "cn", nil, "n_nationkey", "n_regionkey"),
		sc("region", expr.Eq(expr.C("r_name"), expr.Str("AMERICA")), "r_regionkey", "r_name"),
		"cn_n_regionkey", "r_regionkey")
	j = jn(j, amNat, "c_nationkey", "cn_n_nationkey")
	j = jn(j, sc("supplier", nil, "s_suppkey", "s_nationkey"), "l_suppkey", "s_suppkey")
	j = jn(j, scAs("nation", "sn", nil, "n_nationkey", "n_name"), "s_nationkey", "sn_n_nationkey")
	p := proj(j,
		pc("o_year", expr.NewYear(expr.C("o_orderdate"))),
		pc("volume", revenue()),
		pc("brazil_volume", expr.NewCase(
			expr.Eq(expr.C("sn_n_name"), expr.Str("BRAZIL")), revenue(), expr.Float(0))))
	a := agg(p, []string{"o_year"},
		sum("sum_brazil", expr.C("brazil_volume")),
		sum("sum_volume", expr.C("volume")))
	share := proj(a,
		pc("o_year", expr.C("o_year")),
		pc("mkt_share", expr.NewArith(expr.Div, expr.C("sum_brazil"), expr.C("sum_volume"))))
	return orderBy(share, asc("o_year")), nil
}

// q09: product type profit measure — the paper's sandwich-only query.
func q09(e *Env) (plan.Node, error) {
	li := sc("lineitem", nil,
		"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount")
	part := sc("part", expr.NewLike(expr.C("p_name"), "%green%"), "p_partkey", "p_name")
	j := jn(li, part, "l_partkey", "p_partkey")
	j = &plan.Join{Left: j,
		Right:     sc("partsupp", nil, "ps_partkey", "ps_suppkey", "ps_supplycost"),
		LeftKeys:  []string{"l_partkey", "l_suppkey"},
		RightKeys: []string{"ps_partkey", "ps_suppkey"},
		Type:      engine.InnerJoin}
	j = jn(j, sc("supplier", nil, "s_suppkey", "s_nationkey"), "l_suppkey", "s_suppkey")
	j = jn(j, sc("orders", nil, "o_orderkey", "o_orderdate"), "l_orderkey", "o_orderkey")
	j = jn(j, sc("nation", nil, "n_nationkey", "n_name"), "s_nationkey", "n_nationkey")
	amount := expr.NewArith(expr.Sub, revenue(),
		expr.NewArith(expr.Mul, expr.C("ps_supplycost"), expr.C("l_quantity")))
	p := proj(j,
		pc("nation", expr.C("n_name")),
		pc("o_year", expr.NewYear(expr.C("o_orderdate"))),
		pc("amount", amount))
	a := agg(p, []string{"nation", "o_year"}, sum("sum_profit", expr.C("amount")))
	return orderBy(a, asc("nation"), desc("o_year")), nil
}

// q10: returned item reporting.
func q10(e *Env) (plan.Node, error) {
	li := sc("lineitem", expr.Eq(expr.C("l_returnflag"), expr.Str("R")),
		"l_orderkey", "l_extendedprice", "l_discount", "l_returnflag")
	ord := sc("orders", between("o_orderdate", expr.Date("1993-10-01"), expr.Date("1993-12-31")),
		"o_orderkey", "o_custkey", "o_orderdate")
	j := jn(li, ord, "l_orderkey", "o_orderkey")
	j = jn(j, sc("customer", nil,
		"c_custkey", "c_name", "c_acctbal", "c_nationkey", "c_address", "c_phone", "c_comment"),
		"o_custkey", "c_custkey")
	j = jn(j, sc("nation", nil, "n_nationkey", "n_name"), "c_nationkey", "n_nationkey")
	a := agg(j, []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
		sum("revenue", revenue()))
	return topN(a, 20, desc("revenue")), nil
}

// q11: important stock identification in GERMANY, with the scalar threshold
// subquery evaluated first.
func q11(e *Env) (plan.Node, error) {
	german := func() plan.Node {
		j := jn(
			sc("partsupp", nil, "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
			sc("supplier", nil, "s_suppkey", "s_nationkey"), "ps_suppkey", "s_suppkey")
		return jn(j, sc("nation", expr.Eq(expr.C("n_name"), expr.Str("GERMANY")), "n_nationkey", "n_name"),
			"s_nationkey", "n_nationkey")
	}
	value := expr.NewArith(expr.Mul, expr.C("ps_supplycost"), expr.C("ps_availqty"))
	total, err := e.Scalar(agg(german(), nil, sum("total", value)))
	if err != nil {
		return nil, err
	}
	// The spec scales the threshold fraction with 1/SF; derive SF from the
	// ORDERS cardinality.
	sf := float64(e.DB.Tables["orders"].Rows()) / 1_500_000
	fraction := 0.0001 / sf
	a := agg(german(), []string{"ps_partkey"}, sum("value", value))
	f := &plan.FilterNode{Child: a,
		Pred: expr.NewCmp(expr.GT, expr.C("value"), expr.Float(total*fraction))}
	return orderBy(f, desc("value")), nil
}

// q12: shipping modes and order priority.
func q12(e *Env) (plan.Node, error) {
	li := sc("lineitem", and(
		expr.NewIn(expr.C("l_shipmode"), strs("MAIL", "SHIP")...),
		expr.NewCmp(expr.LT, expr.C("l_commitdate"), expr.C("l_receiptdate")),
		expr.NewCmp(expr.LT, expr.C("l_shipdate"), expr.C("l_commitdate")),
		between("l_receiptdate", expr.Date("1994-01-01"), expr.Date("1994-12-31"))),
		"l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate")
	j := jn(li, sc("orders", nil, "o_orderkey", "o_orderpriority"), "l_orderkey", "o_orderkey")
	high := expr.NewCase(
		expr.NewIn(expr.C("o_orderpriority"), strs("1-URGENT", "2-HIGH")...),
		expr.Int(1), expr.Int(0))
	low := expr.NewCase(
		expr.NewIn(expr.C("o_orderpriority"), strs("1-URGENT", "2-HIGH")...),
		expr.Int(0), expr.Int(1))
	a := agg(j, []string{"l_shipmode"}, sum("high_line_count", high), sum("low_line_count", low))
	return orderBy(a, asc("l_shipmode")), nil
}

// q13: customer distribution — the paper's example of sandwiching a join on
// a dimension (customer nation) that the query itself never mentions.
func q13(e *Env) (plan.Node, error) {
	ordAgg := agg(
		sc("orders", expr.NewNotLike(expr.C("o_comment"), "%special%requests%"),
			"o_orderkey", "o_custkey", "o_comment"),
		[]string{"o_custkey"}, cnt("order_cnt"))
	loj := &plan.Join{
		Left:      sc("customer", nil, "c_custkey"),
		Right:     ordAgg,
		LeftKeys:  []string{"c_custkey"},
		RightKeys: []string{"o_custkey"},
		Type:      engine.LeftOuterJoin,
	}
	counts := proj(loj, pc("c_count", expr.NewCase(
		expr.Eq(expr.C(engine.MatchedColName), expr.Int(1)),
		expr.C("order_cnt"), expr.Int(0))))
	a := agg(counts, []string{"c_count"}, cnt("custdist"))
	return orderBy(a, desc("custdist"), desc("c_count")), nil
}

// q14: promotion effect.
func q14(e *Env) (plan.Node, error) {
	li := sc("lineitem", between("l_shipdate", expr.Date("1995-09-01"), expr.Date("1995-09-30")),
		"l_partkey", "l_extendedprice", "l_discount", "l_shipdate")
	j := jn(li, sc("part", nil, "p_partkey", "p_type"), "l_partkey", "p_partkey")
	promo := expr.NewCase(expr.NewLike(expr.C("p_type"), "PROMO%"), revenue(), expr.Float(0))
	a := agg(j, nil, sum("promo_rev", promo), sum("total_rev", revenue()))
	return proj(a, pc("promo_revenue",
		expr.NewArith(expr.Div,
			expr.NewArith(expr.Mul, expr.Float(100), expr.C("promo_rev")),
			expr.C("total_rev")))), nil
}

// q15: top supplier by quarterly revenue (view evaluated once, max taken in
// a second pass over the materialized view).
func q15(e *Env) (plan.Node, error) {
	view := agg(
		sc("lineitem", between("l_shipdate", expr.Date("1996-01-01"), expr.Date("1996-03-31")),
			"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
		[]string{"l_suppkey"}, sum("total_revenue", revenue()))
	mat, res, err := e.Materialize(view)
	if err != nil {
		return nil, err
	}
	maxRev := 0.0
	ci := res.Schema.IndexOf("total_revenue")
	for _, v := range res.Cols[ci].F64 {
		if v > maxRev {
			maxRev = v
		}
	}
	top := &plan.FilterNode{Child: mat, Pred: expr.Eq(expr.C("total_revenue"), expr.Float(maxRev))}
	j := jn(sc("supplier", nil, "s_suppkey", "s_name", "s_address", "s_phone"), top,
		"s_suppkey", "l_suppkey")
	p := proj(j, keep("s_suppkey", "s_name", "s_address", "s_phone", "total_revenue")...)
	return orderBy(p, asc("s_suppkey")), nil
}

// q16: parts/supplier relationship, excluding complaint suppliers; the
// paper's sandwiched distinct-count.
func q16(e *Env) (plan.Node, error) {
	part := sc("part", and(
		expr.NewCmp(expr.NE, expr.C("p_brand"), expr.Str("Brand#45")),
		expr.NewNotLike(expr.C("p_type"), "MEDIUM POLISHED%"),
		expr.NewIn(expr.C("p_size"),
			expr.Int(49), expr.Int(14), expr.Int(23), expr.Int(45),
			expr.Int(19), expr.Int(3), expr.Int(36), expr.Int(9))),
		"p_partkey", "p_brand", "p_type", "p_size")
	j := jn(sc("partsupp", nil, "ps_partkey", "ps_suppkey"), part, "ps_partkey", "p_partkey")
	complainers := sc("supplier", expr.NewLike(expr.C("s_comment"), "%Customer%Complaints%"),
		"s_suppkey", "s_comment")
	a := anti(j, complainers, "ps_suppkey", "s_suppkey", nil)
	g := agg(a, []string{"p_brand", "p_type", "p_size"},
		engine.AggSpec{Name: "supplier_cnt", Func: engine.AggCountDistinct, Arg: expr.C("ps_suppkey")})
	return orderBy(g, desc("supplier_cnt"), asc("p_brand"), asc("p_type"), asc("p_size")), nil
}

// q17: small-quantity-order revenue with the decorrelated per-part average.
func q17(e *Env) (plan.Node, error) {
	avgQty := proj(
		agg(sc("lineitem", nil, "l_partkey", "l_quantity"),
			[]string{"l_partkey"}, avg("aq", expr.C("l_quantity"))),
		pc("l_partkey", expr.C("l_partkey")),
		pc("qty_limit", expr.NewArith(expr.Mul, expr.Float(0.2), expr.C("aq"))))
	li := sc("lineitem", nil, "l_partkey", "l_quantity", "l_extendedprice")
	part := sc("part", and(
		expr.Eq(expr.C("p_brand"), expr.Str("Brand#23")),
		expr.Eq(expr.C("p_container"), expr.Str("MED BOX"))),
		"p_partkey", "p_brand", "p_container")
	j := jn(li, part, "l_partkey", "p_partkey")
	j = jn(j, avgQty, "l_partkey", "l_partkey")
	f := &plan.FilterNode{Child: j, Pred: expr.NewCmp(expr.LT, expr.C("l_quantity"), expr.C("qty_limit"))}
	a := agg(f, nil, sum("sum_price", expr.C("l_extendedprice")))
	return proj(a, pc("avg_yearly", expr.NewArith(expr.Div, expr.C("sum_price"), expr.Float(7)))), nil
}

// q18: large volume customers — the PK scheme's streaming aggregate win.
func q18(e *Env) (plan.Node, error) {
	liAgg := agg(sc("lineitem", nil, "l_orderkey", "l_quantity"),
		[]string{"l_orderkey"}, sum("sum_qty", expr.C("l_quantity")))
	big := &plan.FilterNode{Child: liAgg,
		Pred: expr.NewCmp(expr.GT, expr.C("sum_qty"), expr.Float(300))}
	j := jn(sc("orders", nil, "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"), big,
		"o_orderkey", "l_orderkey")
	j = jn(j, sc("customer", nil, "c_custkey", "c_name"), "o_custkey", "c_custkey")
	p := proj(j, keep("c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty")...)
	return topN(p, 100, desc("o_totalprice"), asc("o_orderdate")), nil
}

// q19: discounted revenue (three OR-branches of brand/container/quantity).
func q19(e *Env) (plan.Node, error) {
	li := sc("lineitem", and(
		expr.NewIn(expr.C("l_shipmode"), strs("AIR", "REG AIR")...),
		expr.Eq(expr.C("l_shipinstruct"), expr.Str("DELIVER IN PERSON"))),
		"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct")
	j := jn(li, sc("part", nil, "p_partkey", "p_brand", "p_container", "p_size"),
		"l_partkey", "p_partkey")
	branch := func(brand string, containers []string, qlo, qhi float64, smax int64) expr.Expr {
		return and(
			expr.Eq(expr.C("p_brand"), expr.Str(brand)),
			expr.NewIn(expr.C("p_container"), strs(containers...)...),
			between("l_quantity", expr.Float(qlo), expr.Float(qhi)),
			between("p_size", expr.Int(1), expr.Int(smax)))
	}
	f := &plan.FilterNode{Child: j, Pred: expr.NewOr(
		branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
		branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15))}
	return agg(f, nil, sum("revenue", revenue())), nil
}

// q20: potential part promotion (nested semi joins).
func q20(e *Env) (plan.Node, error) {
	shipped := agg(
		sc("lineitem", between("l_shipdate", expr.Date("1994-01-01"), expr.Date("1994-12-31")),
			"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
		[]string{"l_partkey", "l_suppkey"}, sum("sum_qty", expr.C("l_quantity")))
	ps := &plan.Join{
		Left:      sc("partsupp", nil, "ps_partkey", "ps_suppkey", "ps_availqty"),
		Right:     shipped,
		LeftKeys:  []string{"ps_partkey", "ps_suppkey"},
		RightKeys: []string{"l_partkey", "l_suppkey"},
		Type:      engine.InnerJoin,
	}
	enough := &plan.FilterNode{Child: ps, Pred: expr.NewCmp(expr.GT,
		expr.NewArith(expr.Mul, expr.C("ps_availqty"), expr.Float(1)),
		expr.NewArith(expr.Mul, expr.Float(0.5), expr.C("sum_qty")))}
	forest := semi(enough, sc("part", expr.NewLike(expr.C("p_name"), "forest%"), "p_partkey", "p_name"),
		"ps_partkey", "p_partkey", nil)
	sup := jn(
		sc("supplier", nil, "s_suppkey", "s_name", "s_address", "s_nationkey"),
		sc("nation", expr.Eq(expr.C("n_name"), expr.Str("CANADA")), "n_nationkey", "n_name"),
		"s_nationkey", "n_nationkey")
	s := semi(sup, forest, "s_suppkey", "ps_suppkey", nil)
	return orderBy(proj(s, keep("s_name", "s_address")...), asc("s_name")), nil
}

// q21: suppliers who kept orders waiting (semi and anti self-joins with
// residual inequalities).
func q21(e *Env) (plan.Node, error) {
	l1 := sc("lineitem", expr.NewCmp(expr.GT, expr.C("l_receiptdate"), expr.C("l_commitdate")),
		"l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate")
	j := jn(l1, sc("supplier", nil, "s_suppkey", "s_name", "s_nationkey"), "l_suppkey", "s_suppkey")
	j = jn(j, sc("nation", expr.Eq(expr.C("n_name"), expr.Str("SAUDI ARABIA")), "n_nationkey", "n_name"),
		"s_nationkey", "n_nationkey")
	j = jn(j, sc("orders", expr.Eq(expr.C("o_orderstatus"), expr.Str("F")), "o_orderkey", "o_orderstatus"),
		"l_orderkey", "o_orderkey")
	l2 := scAs("lineitem", "l2", nil, "l_orderkey", "l_suppkey")
	s := semi(j, l2, "l_orderkey", "l2_l_orderkey",
		expr.NewCmp(expr.NE, expr.C("l2_l_suppkey"), expr.C("l_suppkey")))
	l3 := scAs("lineitem", "l3",
		expr.NewCmp(expr.GT, expr.C("l_receiptdate"), expr.C("l_commitdate")),
		"l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate")
	a := anti(s, l3, "l_orderkey", "l3_l_orderkey",
		expr.NewCmp(expr.NE, expr.C("l3_l_suppkey"), expr.C("l_suppkey")))
	g := agg(a, []string{"s_name"}, cnt("numwait"))
	return topN(g, 100, desc("numwait"), asc("s_name")), nil
}

// q22: global sales opportunity.
func q22(e *Env) (plan.Node, error) {
	codes := strs("13", "31", "23", "29", "30", "18", "17")
	code := func() expr.Expr { return expr.NewSubstr(expr.C("c_phone"), 1, 2) }
	avgBal, err := e.Scalar(agg(
		sc("customer", and(
			expr.NewCmp(expr.GT, expr.C("c_acctbal"), expr.Float(0)),
			expr.NewIn(code(), codes...)),
			"c_acctbal", "c_phone"),
		nil, avg("a", expr.C("c_acctbal"))))
	if err != nil {
		return nil, err
	}
	cust := sc("customer", and(
		expr.NewIn(code(), codes...),
		expr.NewCmp(expr.GT, expr.C("c_acctbal"), expr.Float(avgBal))),
		"c_custkey", "c_acctbal", "c_phone")
	a := anti(cust, sc("orders", nil, "o_custkey"), "c_custkey", "o_custkey", nil)
	p := proj(a, pc("cntrycode", code()), pc("c_acctbal", expr.C("c_acctbal")))
	g := agg(p, []string{"cntrycode"}, cnt("numcust"), sum("totacctbal", expr.C("c_acctbal")))
	return orderBy(g, asc("cntrycode")), nil
}
