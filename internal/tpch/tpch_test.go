package tpch

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bdcc/internal/plan"
	"bdcc/internal/vector"
)

// testBenchmark is built once per test binary (generation plus three scheme
// materializations dominate test time otherwise).
var (
	tbOnce sync.Once
	tb     *Benchmark
	tbErr  error
)

func benchmarkFixture(t *testing.T) *Benchmark {
	t.Helper()
	tbOnce.Do(func() {
		tb, tbErr = NewBenchmark(0.05)
	})
	if tbErr != nil {
		t.Fatalf("NewBenchmark: %v", tbErr)
	}
	return tb
}

// resultRows renders a result as sorted row strings (all queries end in an
// ORDER BY, but ties may order differently across schemes, so comparison is
// order-insensitive).
func resultRows(res interface{ Rows() int }, rowFn func(int) []string) []string {
	rows := make([]string, res.Rows())
	for i := range rows {
		rows[i] = fmt.Sprint(rowFn(i))
	}
	sort.Strings(rows)
	return rows
}

// rowsEqual compares rendered rows field by field; float fields compare with
// a relative tolerance because summation order differs across schemes (a
// scatter scan feeds the aggregates in _bdcc_ order).
func rowsEqual(a, b string) bool {
	if a == b {
		return true
	}
	fa := strings.Fields(strings.Trim(a, "[]"))
	fb := strings.Fields(strings.Trim(b, "[]"))
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] == fb[i] {
			continue
		}
		x, errX := strconv.ParseFloat(fa[i], 64)
		y, errY := strconv.ParseFloat(fb[i], 64)
		if errX != nil || errY != nil {
			return false
		}
		diff := math.Abs(x - y)
		scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		if diff > 1e-6*scale {
			return false
		}
	}
	return true
}

// TestCrossSchemeEquivalence is the reproduction's main correctness oracle:
// every TPC-H query must return identical rows under Plain, PK and BDCC —
// pushdown, propagation, merge joins, sandwich operators and relocation may
// change access paths, never results.
func TestCrossSchemeEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			var ref []string
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				res, st, _, err := RunQuery(b.DBs[scheme], q)
				if err != nil {
					t.Fatalf("%s under %s: %v", q.Name, scheme, err)
				}
				rows := resultRows(res, res.Row)
				if scheme == plan.Plain {
					ref = rows
					continue
				}
				if len(rows) != len(ref) {
					t.Fatalf("%s under %s: %d rows, plain has %d", q.Name, scheme, len(rows), len(ref))
				}
				for i := range rows {
					if !rowsEqual(rows[i], ref[i]) {
						t.Fatalf("%s under %s: row %d = %s, plain has %s", q.Name, scheme, i, rows[i], ref[i])
					}
				}
				_ = st
			}
		})
	}
}

// TestQueriesNonTrivial guards against vacuous equivalence: the generator
// must produce data that actually exercises each query's predicates.
func TestQueriesNonTrivial(t *testing.T) {
	b := benchmarkFixture(t)
	for _, q := range Queries {
		res, _, _, err := RunQuery(b.DBs[plan.Plain], q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Rows() == 0 {
			t.Errorf("%s returns no rows at SF %g — predicates select nothing", q.Name, b.SF)
		}
	}
}

// TestPaperDimensionTable reproduces the paper's Section IV dimension table
// against the generated data: D_NATION with 5 bits over (n_regionkey,
// n_nationkey), D_PART and D_DATE capped at 13 bits (D_DATE lands at 12 by
// the NDV rule — see DESIGN.md).
func TestPaperDimensionTable(t *testing.T) {
	b := benchmarkFixture(t)
	db := b.DBs[plan.BDCC].Clustered
	nation := db.Dimensions["d_nation"]
	if nation == nil {
		t.Fatal("d_nation missing")
	}
	if nation.Bits() != 5 || nation.Table != "nation" {
		t.Errorf("d_nation: %d bits over %s, want 5 bits over nation", nation.Bits(), nation.Table)
	}
	if fmt.Sprint(nation.Key) != "[n_regionkey n_nationkey]" {
		t.Errorf("d_nation key = %v", nation.Key)
	}
	date := db.Dimensions["d_date"]
	if date == nil {
		t.Fatal("d_date missing")
	}
	if date.Table != "orders" || fmt.Sprint(date.Key) != "[o_orderdate]" {
		t.Errorf("d_date over %s.%v", date.Table, date.Key)
	}
	if date.Bits() != 12 {
		t.Errorf("d_date bits = %d, want 12 (2406 distinct order dates)", date.Bits())
	}
	part := db.Dimensions["d_part"]
	if part == nil {
		t.Fatal("d_part missing")
	}
	if part.Table != "part" || fmt.Sprint(part.Key) != "[p_partkey]" {
		t.Errorf("d_part over %s.%v", part.Table, part.Key)
	}
	// At SF100 p_partkey NDV is 20M and the 13-bit cap binds; at small SF
	// the NDV rule gives ⌈log₂(200000·SF)⌉.
	if got, want := part.Bits(), wantBits(b.Data.Tables["part"].Rows(), 13); got != want {
		t.Errorf("d_part bits = %d, want %d", got, want)
	}
}

func wantBits(ndv, cap int) int {
	b := 0
	for (1 << b) < ndv {
		b++
	}
	if b > cap {
		return cap
	}
	return b
}

// TestPaperUseTable reproduces the paper's per-table dimension-use table:
// which dimensions each TPC-H table is clustered on and over which paths.
func TestPaperUseTable(t *testing.T) {
	b := benchmarkFixture(t)
	db := b.DBs[plan.BDCC].Clustered
	want := map[string][]string{
		"nation":   {"d_nation|-"},
		"supplier": {"d_nation|fk_s_n"},
		"customer": {"d_nation|fk_c_n"},
		"part":     {"d_part|-"},
		"partsupp": {"d_part|fk_ps_p", "d_nation|fk_ps_s.fk_s_n"},
		"orders":   {"d_date|-", "d_nation|fk_o_c.fk_c_n"},
		"lineitem": {
			"d_date|fk_l_o",
			"d_nation|fk_l_o.fk_o_c.fk_c_n",
			"d_nation|fk_l_s.fk_s_n",
			"d_part|fk_l_p",
		},
	}
	for table, uses := range want {
		bt := db.Tables[table]
		if bt == nil {
			t.Errorf("table %s not clustered", table)
			continue
		}
		var got []string
		for _, u := range bt.Uses {
			got = append(got, u.Dim.Name+"|"+u.PathString())
		}
		if fmt.Sprint(got) != fmt.Sprint(uses) {
			t.Errorf("%s uses = %v, want %v", table, got, uses)
		}
	}
	if db.Tables["region"] != nil {
		t.Error("region should not be BDCC-clustered (no hints), as in the paper")
	}
}

// TestShipdateCorrelation checks the generator preserves the
// orderdate/shipdate correlation the paper's Q6/Q12/Q20 analysis relies on.
func TestShipdateCorrelation(t *testing.T) {
	b := benchmarkFixture(t)
	li := b.Data.Tables["lineitem"]
	ord := b.Data.Tables["orders"]
	odate := ord.MustColumn("o_orderdate").I64
	okey := ord.MustColumn("o_orderkey").I64
	byKey := make(map[int64]int64, len(okey))
	for i, k := range okey {
		byKey[k] = odate[i]
	}
	ship := li.MustColumn("l_shipdate").I64
	lok := li.MustColumn("l_orderkey").I64
	for i := range ship {
		delta := ship[i] - byKey[lok[i]]
		if delta < 1 || delta > 121 {
			t.Fatalf("lineitem %d: shipdate %d days from orderdate, want [1,121]", i, delta)
		}
	}
}

// TestCustomerOrderGap checks a third of customers have no orders (Q22's
// population).
func TestCustomerOrderGap(t *testing.T) {
	b := benchmarkFixture(t)
	ord := b.Data.Tables["orders"]
	for _, ck := range ord.MustColumn("o_custkey").I64 {
		if ck%3 == 0 {
			t.Fatalf("customer %d (key %% 3 == 0) has orders", ck)
		}
	}
}

// TestGeneratedCardinalities pins the scaled table sizes.
func TestGeneratedCardinalities(t *testing.T) {
	b := benchmarkFixture(t)
	cases := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 500,
		"part":     10000,
		"partsupp": 40000,
		"customer": 7500,
		"orders":   75000,
	}
	for table, want := range cases {
		if got := b.Data.Tables[table].Rows(); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
	li := b.Data.Tables["lineitem"].Rows()
	if li < 75000 || li > 75000*7 {
		t.Errorf("lineitem rows = %d, outside [1,7] per order", li)
	}
	date := vector.ParseDate("1998-08-02")
	for _, d := range b.Data.Tables["orders"].MustColumn("o_orderdate").I64 {
		if d < vector.ParseDate("1992-01-01") || d > date {
			t.Fatalf("o_orderdate %s out of spec range", vector.FormatDate(d))
		}
	}
}
