// Package tpch implements the reproduction's workload substrate: a
// deterministic dbgen-style data generator for the eight TPC-H tables with
// the distributions the paper's effects depend on (uniform o_orderdate,
// shipdate = orderdate + small delta, phone country codes, comment tokens),
// the TPC-H DDL with the exact BDCC hint set of the paper's Section IV, all
// 22 benchmark queries as logical plans with the specification's validation
// parameters, and the experiment runner that regenerates Figure 2 (cold
// execution time) and Figure 3 (peak query memory) under the Plain / PK /
// BDCC schemes.
package tpch

// DDL is the TPC-H schema with primary keys and the declared foreign keys
// the paper's Algorithm 2 consumes. Foreign-key names follow the paper's
// FK_<T>_<T'> convention.
const DDL = `
CREATE TABLE region (
    r_regionkey INT,
    r_name      VARCHAR(25),
    r_comment   VARCHAR(152),
    PRIMARY KEY (r_regionkey));

CREATE TABLE nation (
    n_nationkey INT,
    n_name      VARCHAR(25),
    n_regionkey INT,
    n_comment   VARCHAR(152),
    PRIMARY KEY (n_nationkey),
    CONSTRAINT fk_n_r FOREIGN KEY (n_regionkey) REFERENCES region);

CREATE TABLE supplier (
    s_suppkey   INT,
    s_name      VARCHAR(25),
    s_address   VARCHAR(40),
    s_nationkey INT,
    s_phone     VARCHAR(15),
    s_acctbal   DECIMAL(15,2),
    s_comment   VARCHAR(101),
    PRIMARY KEY (s_suppkey),
    CONSTRAINT fk_s_n FOREIGN KEY (s_nationkey) REFERENCES nation);

CREATE TABLE part (
    p_partkey     INT,
    p_name        VARCHAR(55),
    p_mfgr        VARCHAR(25),
    p_brand       VARCHAR(10),
    p_type        VARCHAR(25),
    p_size        INT,
    p_container   VARCHAR(10),
    p_retailprice DECIMAL(15,2),
    p_comment     VARCHAR(23),
    PRIMARY KEY (p_partkey));

CREATE TABLE partsupp (
    ps_partkey    INT,
    ps_suppkey    INT,
    ps_availqty   INT,
    ps_supplycost DECIMAL(15,2),
    ps_comment    VARCHAR(199),
    PRIMARY KEY (ps_partkey, ps_suppkey),
    CONSTRAINT fk_ps_p FOREIGN KEY (ps_partkey) REFERENCES part,
    CONSTRAINT fk_ps_s FOREIGN KEY (ps_suppkey) REFERENCES supplier);

CREATE TABLE customer (
    c_custkey    INT,
    c_name       VARCHAR(25),
    c_address    VARCHAR(40),
    c_nationkey  INT,
    c_phone      VARCHAR(15),
    c_acctbal    DECIMAL(15,2),
    c_mktsegment VARCHAR(10),
    c_comment    VARCHAR(117),
    PRIMARY KEY (c_custkey),
    CONSTRAINT fk_c_n FOREIGN KEY (c_nationkey) REFERENCES nation);

CREATE TABLE orders (
    o_orderkey      INT,
    o_custkey       INT,
    o_orderstatus   VARCHAR(1),
    o_totalprice    DECIMAL(15,2),
    o_orderdate     DATE,
    o_orderpriority VARCHAR(15),
    o_clerk         VARCHAR(15),
    o_shippriority  INT,
    o_comment       VARCHAR(79),
    PRIMARY KEY (o_orderkey),
    CONSTRAINT fk_o_c FOREIGN KEY (o_custkey) REFERENCES customer);

CREATE TABLE lineitem (
    l_orderkey      INT,
    l_partkey       INT,
    l_suppkey       INT,
    l_linenumber    INT,
    l_quantity      DECIMAL(15,2),
    l_extendedprice DECIMAL(15,2),
    l_discount      DECIMAL(15,2),
    l_tax           DECIMAL(15,2),
    l_returnflag    VARCHAR(1),
    l_linestatus    VARCHAR(1),
    l_shipdate      DATE,
    l_commitdate    DATE,
    l_receiptdate   DATE,
    l_shipinstruct  VARCHAR(25),
    l_shipmode      VARCHAR(10),
    l_comment       VARCHAR(44),
    PRIMARY KEY (l_orderkey, l_linenumber),
    CONSTRAINT fk_l_o FOREIGN KEY (l_orderkey) REFERENCES orders,
    CONSTRAINT fk_l_p FOREIGN KEY (l_partkey) REFERENCES part,
    CONSTRAINT fk_l_s FOREIGN KEY (l_suppkey) REFERENCES supplier);
`

// HintDDL is the BDCC hint set of the paper's Section IV: the three CREATE
// INDEX statements defining the dimensions, followed by the foreign-key
// indexes "that are used to derive the co-clustering of the tables". The
// declaration order reproduces the paper's dimension-use order (and thereby
// its masks): on LINEITEM the l_orderkey hint precedes l_suppkey and
// l_partkey, giving the use order D_DATE, D_NATION (customer), D_NATION
// (supplier), D_PART of the paper's table.
const HintDDL = `
CREATE INDEX date_idx   ON orders (o_orderdate);
CREATE INDEX part_idx   ON part (p_partkey);
CREATE INDEX nation_idx ON nation (n_regionkey, n_nationkey);

CREATE INDEX o_ck_idx  ON orders (o_custkey);
CREATE INDEX s_nk_idx  ON supplier (s_nationkey);
CREATE INDEX c_nk_idx  ON customer (c_nationkey);
CREATE INDEX l_ok_idx  ON lineitem (l_orderkey);
CREATE INDEX l_sk_idx  ON lineitem (l_suppkey);
CREATE INDEX l_pk_idx  ON lineitem (l_partkey);
CREATE INDEX ps_pk_idx ON partsupp (ps_partkey);
CREATE INDEX ps_sk_idx ON partsupp (ps_suppkey);
`
