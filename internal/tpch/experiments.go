package tpch

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/plan"
	"bdcc/internal/storage"
)

// QueryRun is one (query, scheme) measurement. Round is 0 on a read-only
// grid; an ingest grid runs every query twice — round 1 interleaved with
// appends (delta visible), round 2 after the merge consolidated it.
type QueryRun struct {
	Query  string
	Scheme plan.Scheme
	Round  int
	Stats  *Stats
}

// Report holds the full Figure 2 / Figure 3 measurement grid.
type Report struct {
	SF      float64
	Workers int      // morsel-parallelism knob the grid ran with (0/1 = serial)
	Shards  int      // scale-out knob the grid ran with (0/1 = single-box)
	Remotes []string // bdccworker addresses the grid ran against (empty = simulated)
	Balance string   // placement policy ("hash" default, "size")
	// Partition records the shared-nothing knob: scatter scans lowered to
	// shipped scan units over worker-local partitions.
	Partition bool
	Schemes   []plan.Scheme
	Runs      map[plan.Scheme][]QueryRun // indexed by query position
	Explain   map[string][]string        // per "scheme/query"
	// Compressed records the storage-compression knob; Comp holds the
	// per-scheme compression outcome (modeled on-disk bytes and the wire
	// bytes the batch codec saved across the scheme's 22 runs). Comp is
	// populated even when uncompressed — all-zero then — so gating tools
	// can assert either state.
	Compressed bool
	Comp       map[plan.Scheme]CompRecord
	// Concurrency holds the daemon leg of the grid (closed-loop clients
	// through bdccd, one record per scheme); nil when the grid ran without
	// a daemon. Populated by tpchbench -clients.
	Concurrency []ConcurrencyStats
	// IngestRate and IngestLimit are the mixed-workload knobs of an ingest
	// grid (RunAllIngest): orders appended before each round-1 query and the
	// per-table delta bound that triggers background merges. Ingest holds the
	// per-scheme outcome; all empty/zero on a read-only grid.
	IngestRate  int
	IngestLimit int
	Ingest      map[plan.Scheme]IngestRecord
}

// IngestRecord is one scheme's ingest outcome over the grid: lifetime
// appended rows, committed consolidations, and the peak drift distance the
// un-merged delta reached before the final merge absorbed it.
type IngestRecord struct {
	AppendedRows int64
	Merges       int64
	MergedRows   int64
	MaxDrift     float64
}

// CompRecord is one scheme's compression outcome: the storage-side chunk
// totals plus the wire bytes the batch codec saved over the scheme's runs.
type CompRecord struct {
	storage.CompressionStats
	WireSaved int64
}

// RunAll executes every TPC-H query under every materialized scheme of the
// benchmark, with fresh meters per run (cold execution, as in the paper's
// Figure 2). The benchmark's Workers knob applies to every run.
func (b *Benchmark) RunAll() (*Report, error) {
	shards := b.Shards
	if len(b.Remotes) > 0 {
		shards = len(b.Remotes)
	}
	rep := &Report{
		SF:        b.SF,
		Workers:   b.Workers,
		Shards:    shards,
		Remotes:   b.Remotes,
		Balance:   b.Balance,
		Partition: b.Partition,
		Runs:      make(map[plan.Scheme][]QueryRun),
		Explain:   make(map[string][]string),

		Compressed: b.Compressed,
		Comp:       make(map[plan.Scheme]CompRecord),
	}
	if rep.Balance == "" {
		rep.Balance = "hash"
	}
	opt := b.RunOptions
	for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
		db, ok := b.DBs[scheme]
		if !ok {
			continue
		}
		rep.Schemes = append(rep.Schemes, scheme)
		comp := CompRecord{CompressionStats: db.CompressionStats()}
		for _, q := range Queries {
			_, st, explain, err := RunQueryOpts(db, q, opt)
			if err != nil {
				return nil, fmt.Errorf("tpch: %s under %s: %w", q.Name, scheme, err)
			}
			rep.Runs[scheme] = append(rep.Runs[scheme], QueryRun{Query: q.Name, Scheme: scheme, Stats: st})
			rep.Explain[fmt.Sprintf("%s/%s", scheme, q.Name)] = explain
			comp.WireSaved += st.Net.Saved
		}
		rep.Comp[scheme] = comp
	}
	return rep, nil
}

// RunAllIngest executes the mixed read/write grid: every scheme ingests the
// same pre-generated arrival stream — rate orders (plus their lineitems)
// appended before each round-1 query, so each measurement reads a snapshot
// with in-flight delta — then consolidates and runs all queries again
// post-merge. Round-1 runs carry the freshness tax (uncompressed delta views,
// delta_rows > 0); round-2 runs must be back at base-layout cost with
// delta_rows 0. Compression stats are taken post-merge, where the
// re-clustered chunks have been re-encoded.
func (b *Benchmark) RunAllIngest(rate, limit int, driftThreshold float64) (*Report, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("tpch: ingest grid needs a positive rate, got %d", rate)
	}
	if err := b.EnableIngest(limit, driftThreshold); err != nil {
		return nil, err
	}
	gen := NewDeltaGen(b.Data, 424242)
	batches := make([]*DeltaBatch, len(Queries))
	for i := range batches {
		batches[i] = gen.Next(rate)
	}
	shards := b.Shards
	if len(b.Remotes) > 0 {
		shards = len(b.Remotes)
	}
	rep := &Report{
		SF:        b.SF,
		Workers:   b.Workers,
		Shards:    shards,
		Remotes:   b.Remotes,
		Balance:   b.Balance,
		Partition: b.Partition,
		Runs:      make(map[plan.Scheme][]QueryRun),
		Explain:   make(map[string][]string),

		Compressed:  b.Compressed,
		Comp:        make(map[plan.Scheme]CompRecord),
		IngestRate:  rate,
		IngestLimit: limit,
		Ingest:      make(map[plan.Scheme]IngestRecord),
	}
	if rep.Balance == "" {
		rep.Balance = "hash"
	}
	opt := b.RunOptions
	for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
		db, ok := b.DBs[scheme]
		if !ok {
			continue
		}
		rep.Schemes = append(rep.Schemes, scheme)
		ing := db.Ingest()
		comp := CompRecord{}
		for qi, q := range Queries {
			if err := appendTo(db, batches[qi]); err != nil {
				return nil, fmt.Errorf("tpch: ingest before %s under %s: %w", q.Name, scheme, err)
			}
			_, st, explain, err := RunQueryOpts(db, q, opt)
			if err != nil {
				return nil, fmt.Errorf("tpch: %s under %s (round 1): %w", q.Name, scheme, err)
			}
			rep.Runs[scheme] = append(rep.Runs[scheme], QueryRun{Query: q.Name, Scheme: scheme, Round: 1, Stats: st})
			rep.Explain[fmt.Sprintf("%s/%s", scheme, q.Name)] = explain
			comp.WireSaved += st.Net.Saved
		}
		// The drift map clears when a merge absorbs the delta: read the peak
		// before forcing the final consolidation.
		rec := IngestRecord{}
		pre := ing.Stats()
		for _, d := range pre.Drift {
			if d.Distance > rec.MaxDrift {
				rec.MaxDrift = d.Distance
			}
		}
		ing.Wait()
		if err := ing.Merge(); err != nil {
			return nil, fmt.Errorf("tpch: merge under %s: %w", scheme, err)
		}
		for _, q := range Queries {
			_, st, _, err := RunQueryOpts(db, q, opt)
			if err != nil {
				return nil, fmt.Errorf("tpch: %s under %s (round 2): %w", q.Name, scheme, err)
			}
			rep.Runs[scheme] = append(rep.Runs[scheme], QueryRun{Query: q.Name, Scheme: scheme, Round: 2, Stats: st})
			comp.WireSaved += st.Net.Saved
		}
		post := ing.Stats()
		rec.AppendedRows = post.AppendedRows
		rec.Merges = post.Merges
		rec.MergedRows = post.MergedRows
		if post.Err != nil {
			return nil, fmt.Errorf("tpch: background merge under %s: %w", scheme, post.Err)
		}
		rep.Ingest[scheme] = rec
		comp.CompressionStats = db.Snapshot().CompressionStats()
		rep.Comp[scheme] = comp
	}
	return rep, nil
}

// Totals sums a metric across the 22 queries of one scheme.
func (r *Report) Totals(scheme plan.Scheme, metric func(*Stats) float64) float64 {
	var sum float64
	for _, run := range r.Runs[scheme] {
		sum += metric(run.Stats)
	}
	return sum
}

// ColdSeconds extracts the modeled cold time in seconds.
func ColdSeconds(s *Stats) float64 { return s.Cold.Seconds() }

// IOSeconds extracts the modeled device time in seconds.
func IOSeconds(s *Stats) float64 { return s.IO.Time.Seconds() }

// PeakMB extracts the peak query memory in MB.
func PeakMB(s *Stats) float64 { return float64(s.PeakMem) / (1 << 20) }

// WriteFig2 renders the Figure 2 analogue: per-query cold execution time per
// scheme, plus the run totals the paper reports (630.82 / 491.33 / 284.43 s
// at SF100 on the authors' hardware — here the shape, not the absolute
// scale, is the claim under reproduction).
func (r *Report) WriteFig2(w io.Writer) {
	fmt.Fprintf(w, "Figure 2 — TPC-H SF%g cold execution time (modeled device time + CPU)\n", r.SF)
	fmt.Fprintf(w, "%-5s", "query")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for qi, q := range Queries {
		fmt.Fprintf(w, "%-5s", q.Name)
		for _, s := range r.Schemes {
			fmt.Fprintf(w, " %12.4f", ColdSeconds(r.Runs[s][qi].Stats))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-5s", "total")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %12.4f", r.Totals(s, ColdSeconds))
	}
	fmt.Fprintln(w)
}

// WriteFig3 renders the Figure 3 analogue: per-query peak memory per scheme
// plus the aggregate the paper reports (avg 1.59 GB plain vs 0.09 GB BDCC,
// peaks 8 GB / 275 MB at SF100).
func (r *Report) WriteFig3(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 — TPC-H SF%g peak query memory (MB)\n", r.SF)
	fmt.Fprintf(w, "%-5s", "query")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for qi, q := range Queries {
		fmt.Fprintf(w, "%-5s", q.Name)
		for _, s := range r.Schemes {
			fmt.Fprintf(w, " %12.3f", PeakMB(r.Runs[s][qi].Stats))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-5s", "avg")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %12.3f", r.Totals(s, PeakMB)/float64(len(Queries)))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s", "peak")
	for _, s := range r.Schemes {
		peak := 0.0
		for _, run := range r.Runs[s] {
			if m := PeakMB(run.Stats); m > peak {
				peak = m
			}
		}
		fmt.Fprintf(w, " %12.3f", peak)
	}
	fmt.Fprintln(w)
}

// WriteIO renders the per-query device activity (bytes, access runs, modeled
// device time) underlying Figure 2.
func (r *Report) WriteIO(w io.Writer) {
	fmt.Fprintf(w, "Device activity — TPC-H SF%g (MB read / access runs / modeled seconds)\n", r.SF)
	fmt.Fprintf(w, "%-5s", "query")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %24s", s)
	}
	fmt.Fprintln(w)
	for qi, q := range Queries {
		fmt.Fprintf(w, "%-5s", q.Name)
		for _, s := range r.Schemes {
			st := r.Runs[s][qi].Stats
			fmt.Fprintf(w, " %10.1f %6d %6.3f",
				float64(st.IO.Bytes)/(1<<20), st.IO.Runs, st.IO.Time.Seconds())
		}
		fmt.Fprintln(w)
	}
}

// WriteSched renders the per-scheme scheduler activity (tasks, steals, idle
// time) and the hidden (overlapped) device time, for tpchbench -v. All
// numbers are zero in serial runs.
func (r *Report) WriteSched(w io.Writer) {
	fmt.Fprintf(w, "Scheduler — per-query pool activity over the 22 queries (workers=%d shards=%d remotes=%d balance=%s)\n",
		r.Workers, r.Shards, len(r.Remotes), r.Balance)
	fmt.Fprintf(w, "%-6s %10s %10s %12s %12s %10s %10s\n", "scheme", "tasks", "steals", "idle-ms", "hidden-io-ms", "net-msgs", "net-ms")
	for _, s := range r.Schemes {
		var tasks, steals, msgs int64
		var idle, hidden, netT time.Duration
		var loads []engine.BackendLoad
		for _, run := range r.Runs[s] {
			tasks += run.Stats.Sched.Tasks
			steals += run.Stats.Sched.Steals
			idle += run.Stats.Sched.Idle
			hidden += run.Stats.IO.Hidden
			msgs += run.Stats.Net.Runs
			netT += run.Stats.Net.Time
			for i, l := range run.Stats.Shard {
				if i >= len(loads) {
					loads = append(loads, engine.BackendLoad{})
				}
				loads[i].Units += l.Units
				loads[i].Bytes += l.Bytes
			}
		}
		var retries, downs, readmits, fallback int64
		for _, run := range r.Runs[s] {
			for _, h := range run.Stats.Health {
				retries += h.Retries
				downs += h.Downs
				readmits += h.Readmits
			}
			fallback += run.Stats.LocalFallbackUnits
		}
		fmt.Fprintf(w, "%-6s %10d %10d %12.1f %12.1f %10d %10.1f\n", s, tasks, steals,
			float64(idle.Microseconds())/1000, float64(hidden.Microseconds())/1000,
			msgs, float64(netT.Microseconds())/1000)
		if len(loads) > 0 {
			fmt.Fprintf(w, "       routed group units per backend:")
			for _, l := range loads {
				fmt.Fprintf(w, " %d (%.1f MB)", l.Units, float64(l.Bytes)/(1<<20))
			}
			fmt.Fprintln(w)
		}
		if retries+downs+readmits+fallback > 0 {
			fmt.Fprintf(w, "       failover: %d retries, %d downs, %d readmits, %d local-fallback units\n",
				retries, downs, readmits, fallback)
		}
		var workerBytes []int64
		for _, run := range r.Runs[s] {
			for i, wio := range run.Stats.WorkerIO {
				if i >= len(workerBytes) {
					workerBytes = append(workerBytes, 0)
				}
				workerBytes[i] += wio.Bytes
			}
		}
		if len(workerBytes) > 0 {
			fmt.Fprintf(w, "       partitioned scan MB read per worker:")
			for _, b := range workerBytes {
				fmt.Fprintf(w, " %.1f", float64(b)/(1<<20))
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteComp renders the per-scheme compression outcome (tpchbench -v with
// -compress): modeled raw vs encoded storage bytes, the chunk mix per
// encoding, and the wire bytes the batch codec saved on sharded legs.
func (r *Report) WriteComp(w io.Writer) {
	if !r.Compressed {
		return
	}
	fmt.Fprintf(w, "Compression — chunk-encoded storage per scheme (SF%g)\n", r.SF)
	fmt.Fprintf(w, "%-6s %12s %12s %7s %8s %8s %8s %8s %14s\n",
		"scheme", "storage-MB", "encoded-MB", "ratio", "raw", "rle", "dict", "for", "wire-saved-MB")
	for _, s := range r.Schemes {
		c, ok := r.Comp[s]
		if !ok {
			continue
		}
		ratio := 1.0
		if c.RawBytes > 0 {
			ratio = float64(c.EncodedBytes) / float64(c.RawBytes)
		}
		fmt.Fprintf(w, "%-6s %12.1f %12.1f %7.3f %8d %8d %8d %8d %14.1f\n",
			s, float64(c.RawBytes)/(1<<20), float64(c.EncodedBytes)/(1<<20), ratio,
			c.RawChunks, c.RLEChunks, c.DictChunks, c.FORChunks,
			float64(c.WireSaved)/(1<<20))
	}
}

// WriteIngest renders the mixed-workload leg: per-scheme arrival totals,
// merge counters, peak drift, and the freshness tax — round-1 (delta visible)
// versus round-2 (post-merge) MB read over the query set.
func (r *Report) WriteIngest(w io.Writer) {
	if len(r.Ingest) == 0 {
		return
	}
	fmt.Fprintf(w, "Ingest — mixed read/write grid (SF%g, %d orders per query, limit %d)\n",
		r.SF, r.IngestRate, r.IngestLimit)
	fmt.Fprintf(w, "%-6s %12s %8s %12s %10s %14s %14s\n",
		"scheme", "appended", "merges", "merged-rows", "max-drift", "r1-MB-read", "r2-MB-read")
	for _, s := range r.Schemes {
		rec, ok := r.Ingest[s]
		if !ok {
			continue
		}
		var mb [3]float64
		for _, run := range r.Runs[s] {
			if run.Round >= 1 && run.Round <= 2 {
				mb[run.Round] += float64(run.Stats.IO.Bytes) / (1 << 20)
			}
		}
		fmt.Fprintf(w, "%-6s %12d %8d %12d %10.3f %14.1f %14.1f\n",
			s, rec.AppendedRows, rec.Merges, rec.MergedRows, rec.MaxDrift, mb[1], mb[2])
	}
}

// WriteConcurrency renders the daemon leg: closed-loop throughput and
// latency quantiles per scheme, with the admission counters of each run.
func (r *Report) WriteConcurrency(w io.Writer) {
	if len(r.Concurrency) == 0 {
		return
	}
	fmt.Fprintf(w, "Concurrency — closed-loop clients through bdccd (SF%g)\n", r.SF)
	fmt.Fprintf(w, "%-6s %8s %9s %9s %9s %9s %8s %9s\n",
		"scheme", "clients", "requests", "qps", "p50-ms", "p99-ms", "queued", "rejected")
	for _, c := range r.Concurrency {
		fmt.Fprintf(w, "%-6s %8d %9d %9.1f %9.3f %9.3f %8d %9d\n",
			c.Scheme, c.Clients, c.Requests, c.QPS, c.P50MS, c.P99MS, c.Queued, c.Rejected)
	}
}

// JSONQueryRun is one (scheme, query) record of the machine-readable
// benchmark report, units chosen to match the bench_test metrics
// (device-ms, MB-read, peak-MB) so the perf trajectory can be diffed
// PR-over-PR by tooling.
type JSONQueryRun struct {
	Scheme string `json:"scheme"`
	Query  string `json:"query"`
	// Round distinguishes the two passes of an ingest grid (1 = interleaved
	// with appends, 2 = post-merge); omitted on read-only grids. Epoch is the
	// ingest version the run's snapshot pinned and DeltaRows the un-merged
	// rows visible at it — the freshness the run's mb_read paid for.
	Round     int     `json:"round,omitempty"`
	Epoch     int64   `json:"epoch,omitempty"`
	DeltaRows int64   `json:"delta_rows,omitempty"`
	Rows      int     `json:"rows"`
	DeviceMS  float64 `json:"device_ms"`
	MBRead    float64 `json:"mb_read"`
	PeakMB    float64 `json:"peak_mb"`
	ColdMS    float64 `json:"cold_ms"`
	WallMS    float64 `json:"wall_ms"`
	// HiddenMS is the device time hidden behind compute by asynchronous
	// grouped-scan reads; zero in serial runs (cold = device + wall there).
	HiddenMS    float64 `json:"hidden_ms,omitempty"`
	SchedTasks  int64   `json:"sched_tasks,omitempty"`
	SchedSteals int64   `json:"sched_steals,omitempty"`
	// NetMS is the modeled cross-backend transport time of a sharded run
	// (shards ≥ 2); zero and omitted when single-box. NetMsgs counts the
	// transport messages behind it (real messages when the run dialed
	// bdccworker daemons).
	NetMS   float64 `json:"net_ms,omitempty"`
	NetMsgs int64   `json:"net_msgs,omitempty"`
	// ShardUnits is the routed group-unit count per backend of a sharded
	// run (index = backend), the distribution the balance knob shapes;
	// omitted when single-box.
	ShardUnits []int64 `json:"shard_units,omitempty"`
	// ShardRetries / ShardDowns / ShardReadmits are the per-backend failover
	// health counters of a sharded run (index = backend): failed unit
	// attempts, down transitions, and mid-query re-admissions. All zero on
	// an undisturbed run; omitted when single-box.
	ShardRetries  []int64 `json:"shard_retries,omitempty"`
	ShardDowns    []int64 `json:"shard_downs,omitempty"`
	ShardReadmits []int64 `json:"shard_readmits,omitempty"`
	// LocalFallbackUnits counts group units that degraded to the
	// coordinator's local backend because no remote survived them; omitted
	// when zero.
	LocalFallbackUnits int64 `json:"local_fallback_units,omitempty"`
	// WorkerMBRead and WorkerDeviceMS are the per-worker device activity of
	// a partitioned run (index = worker slot): the bytes each worker's
	// shipped scan units read from its local partition and their modeled
	// device time. Present exactly when the Partition knob lowered the
	// query's scan; the shared-nothing headline is each entry ≈ mb_read/N
	// of the single-box run. Failover re-scans land in mb_read instead.
	WorkerMBRead   []float64 `json:"worker_mb_read,omitempty"`
	WorkerDeviceMS []float64 `json:"worker_device_ms,omitempty"`
}

// JSONReport is the machine-readable form of the full measurement grid.
type JSONReport struct {
	SF float64 `json:"sf"`
	// Workers and Shards are the knobs of the run: local pool size and
	// backend count (0/1 = serial, single-box respectively).
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Remotes is the number of real bdccworker daemons the grid ran
	// against (0 = simulated backends); Balance is the group-placement
	// policy ("hash" or "size").
	Remotes int    `json:"remotes"`
	Balance string `json:"balance"`
	// Partition is the shared-nothing knob of the run: scatter scans
	// lowered to shipped scan units over worker-local partitions.
	Partition bool           `json:"partition,omitempty"`
	Queries   []JSONQueryRun `json:"queries"`
	// Compressed is the storage-compression knob of the run; Compression
	// holds the per-scheme outcome (present exactly when Compressed).
	Compressed  bool              `json:"compressed"`
	Compression []JSONCompression `json:"compression,omitempty"`
	// Concurrency is the daemon leg of the grid: closed-loop client
	// measurements through bdccd, one record per scheme. Absent when the
	// grid ran without a daemon.
	Concurrency []ConcurrencyStats `json:"concurrency,omitempty"`
	// IngestRate/IngestLimit are the mixed-workload knobs of an ingest grid;
	// Ingest the per-scheme outcome. Absent on read-only grids.
	IngestRate  int          `json:"ingest_rate,omitempty"`
	IngestLimit int          `json:"ingest_limit,omitempty"`
	Ingest      []JSONIngest `json:"ingest,omitempty"`
}

// JSONIngest is one scheme's ingest record in the JSON grid: how many rows
// arrived, how many consolidations committed and how many rows they folded
// into the base, and the peak drift distance observed before the final merge.
type JSONIngest struct {
	Scheme       string  `json:"scheme"`
	AppendedRows int64   `json:"appended_rows"`
	Merges       int64   `json:"merges"`
	MergedRows   int64   `json:"merged_rows"`
	MaxDrift     float64 `json:"max_drift"`
}

// JSONCompression is one scheme's compression record in the JSON grid:
// modeled on-disk raw vs encoded bytes, the chunk count per encoding, and
// the wire bytes the batch codec saved across the scheme's 22 runs.
type JSONCompression struct {
	Scheme       string `json:"scheme"`
	StorageBytes int64  `json:"storage_bytes"`
	EncodedBytes int64  `json:"encoded_bytes"`
	RawChunks    int64  `json:"raw_chunks"`
	RLEChunks    int64  `json:"rle_chunks"`
	DictChunks   int64  `json:"dict_chunks"`
	FORChunks    int64  `json:"for_chunks"`
	WireSaved    int64  `json:"wire_bytes_saved"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	balance := r.Balance
	if balance == "" {
		balance = "hash"
	}
	out := JSONReport{SF: r.SF, Workers: r.Workers, Shards: r.Shards,
		Remotes: len(r.Remotes), Balance: balance, Partition: r.Partition,
		Concurrency: r.Concurrency, Compressed: r.Compressed,
		IngestRate: r.IngestRate, IngestLimit: r.IngestLimit}
	if len(r.Ingest) > 0 {
		for _, scheme := range r.Schemes {
			rec, ok := r.Ingest[scheme]
			if !ok {
				continue
			}
			out.Ingest = append(out.Ingest, JSONIngest{
				Scheme:       scheme.String(),
				AppendedRows: rec.AppendedRows,
				Merges:       rec.Merges,
				MergedRows:   rec.MergedRows,
				MaxDrift:     rec.MaxDrift,
			})
		}
	}
	if r.Compressed {
		for _, scheme := range r.Schemes {
			c := r.Comp[scheme]
			out.Compression = append(out.Compression, JSONCompression{
				Scheme:       scheme.String(),
				StorageBytes: c.RawBytes,
				EncodedBytes: c.EncodedBytes,
				RawChunks:    c.RawChunks,
				RLEChunks:    c.RLEChunks,
				DictChunks:   c.DictChunks,
				FORChunks:    c.FORChunks,
				WireSaved:    c.WireSaved,
			})
		}
	}
	for _, scheme := range r.Schemes {
		for _, run := range r.Runs[scheme] {
			st := run.Stats
			var units []int64
			for _, l := range st.Shard {
				units = append(units, l.Units)
			}
			var retries, downs, readmits []int64
			for _, h := range st.Health {
				retries = append(retries, h.Retries)
				downs = append(downs, h.Downs)
				readmits = append(readmits, h.Readmits)
			}
			var workerMB, workerMS []float64
			for _, wio := range st.WorkerIO {
				workerMB = append(workerMB, float64(wio.Bytes)/(1<<20))
				workerMS = append(workerMS, float64(wio.Time.Microseconds())/1000)
			}
			out.Queries = append(out.Queries, JSONQueryRun{
				Scheme:             scheme.String(),
				Query:              run.Query,
				Round:              run.Round,
				Epoch:              st.Epoch,
				DeltaRows:          st.DeltaRows,
				Rows:               st.Rows,
				DeviceMS:           float64(st.IO.Time.Microseconds()) / 1000,
				MBRead:             float64(st.IO.Bytes) / (1 << 20),
				PeakMB:             PeakMB(st),
				ColdMS:             float64(st.Cold.Microseconds()) / 1000,
				WallMS:             float64(st.Wall.Microseconds()) / 1000,
				HiddenMS:           float64(st.IO.Hidden.Microseconds()) / 1000,
				SchedTasks:         st.Sched.Tasks,
				SchedSteals:        st.Sched.Steals,
				NetMS:              float64(st.Net.Time.Microseconds()) / 1000,
				NetMsgs:            st.Net.Runs,
				ShardUnits:         units,
				ShardRetries:       retries,
				ShardDowns:         downs,
				ShardReadmits:      readmits,
				LocalFallbackUnits: st.LocalFallbackUnits,
				WorkerMBRead:       workerMB,
				WorkerDeviceMS:     workerMS,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// OrderingComparison reproduces the paper's "Other Orderings" experiment:
// the automatic Z-order setup versus a hand-tuned major-minor setup using
// the same dimensions and bit counts, with the time dimension as the major
// dimension (the paper measures 284 s vs 291 s — comparable, Z slightly
// ahead).
type OrderingComparison struct {
	ZOrder     time.Duration
	MajorMinor time.Duration
	ZOrderIO   time.Duration
	MajorIO    time.Duration
}

// RunOrderingComparison builds a second BDCC database with major-minor
// interleaving and runs the full query set under both.
func RunOrderingComparison(sf float64) (*OrderingComparison, error) {
	zb, err := NewBenchmark(sf, plan.BDCC)
	if err != nil {
		return nil, err
	}
	schema := Schema()
	data := zb.Data
	mmDB, err := plan.NewBDCCDB(schema, data.Tables, zb.DBs[plan.BDCC].Device,
		majorMinorOptions())
	if err != nil {
		return nil, err
	}
	out := &OrderingComparison{}
	for _, q := range Queries {
		_, st, _, err := RunQuery(zb.DBs[plan.BDCC], q)
		if err != nil {
			return nil, err
		}
		out.ZOrder += st.Cold
		out.ZOrderIO += st.IO.Time
		_, st, _, err = RunQuery(mmDB, q)
		if err != nil {
			return nil, err
		}
		out.MajorMinor += st.Cold
		out.MajorIO += st.IO.Time
	}
	return out, nil
}
