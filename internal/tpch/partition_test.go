package tpch

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bdcc/internal/plan"
)

// TestPartitionedEquivalence is the shared-nothing leg of the scale-out
// oracle: every TPC-H query under every scheme with the Partition knob set,
// over two real bdccworker servers dialed over TCP — base-table partitions
// shipped at query setup, scatter scans running as shipped row-range units
// against worker-local storage — must return byte-identical results to the
// serial single-box baseline, including exact float bits. Under BDCC the
// run must additionally prove the shared-nothing claim: scan device reads
// land on the workers (reported per slot in Stats.WorkerIO), each worker
// reading strictly less than the single-box scan volume.
func TestPartitionedEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	srvs, addrs := startWorkers(t, 2, 2)
	var partBytes [2]int64
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, sst, _, err := RunQueryShards(b.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatalf("%s under %s serial: %v", q.Name, scheme, err)
				}
				part, st, _, err := RunQueryOpts(b.DBs[scheme], q,
					RunOptions{Workers: 2, Remotes: addrs, Partition: true})
				if err != nil {
					t.Fatalf("%s under %s partitioned: %v", q.Name, scheme, err)
				}
				label := fmt.Sprintf("%s under %s partitioned", q.Name, scheme)
				assertSameResult(t, label, part, serial)
				for c := range serial.Cols {
					for i, v := range serial.Cols[c].F64 {
						if pv := part.Cols[c].F64[i]; pv != v {
							t.Fatalf("%s: col %d row %d = %v, %v at baseline — floats must be bit-identical",
								label, c, i, pv, v)
						}
					}
				}
				if scheme != plan.BDCC {
					// Only BDCC has scatter scans to partition; the knob must
					// be a no-op elsewhere.
					if st.WorkerIO != nil {
						t.Fatalf("%s under %s reports worker scan IO without a partitionable scan", q.Name, scheme)
					}
					continue
				}
				if st.WorkerIO == nil {
					// Queries whose plans have no scatter scan stay local.
					continue
				}
				if len(st.WorkerIO) != len(addrs) {
					t.Fatalf("%s: %d worker IO slots for %d workers", q.Name, len(st.WorkerIO), len(addrs))
				}
				var sum int64
				for w, wio := range st.WorkerIO {
					if wio.Bytes >= sst.IO.Bytes && sst.IO.Bytes > 0 {
						t.Fatalf("%s: worker %d read %d bytes, not less than the single-box %d — nothing was partitioned",
							q.Name, w, wio.Bytes, sst.IO.Bytes)
					}
					partBytes[w] += wio.Bytes
					sum += wio.Bytes
				}
				if sum == 0 {
					t.Fatalf("%s: partitioned plan lowered but no worker read any bytes", q.Name)
				}
				// The coordinator must not double-charge shipped scans.
				if st.IO.Bytes >= sst.IO.Bytes+sst.IO.Bytes/10 {
					t.Fatalf("%s: coordinator read %d bytes on the partitioned run vs %d single-box — shipped scans double-charged",
						q.Name, st.IO.Bytes, sst.IO.Bytes)
				}
			}
		})
	}
	for w, bts := range partBytes {
		if bts == 0 {
			t.Fatalf("worker %d performed no local scan reads across the whole suite", w)
		}
	}
	var units int64
	for _, s := range srvs {
		units += s.UnitsDone()
	}
	if units == 0 {
		t.Fatal("no unit ever reached a TCP worker — the partitioned path went unexercised")
	}
}

// TestPartitionedSimEquivalence is the simulated-backend leg of the
// shared-nothing oracle (tpchbench -shards 2 -partition): the same
// partition shipping and shipped scan units run over in-process simulated
// remotes instead of TCP daemons, and must match the serial baseline with
// scan reads landing on the workers.
func TestPartitionedSimEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	for _, qn := range []int{3, 9, 19} {
		q := Query(qn)
		serial, _, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		part, st, _, err := RunQueryOpts(b.DBs[plan.BDCC], q,
			RunOptions{Workers: 2, Shards: 2, Partition: true})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		assertSameResult(t, q.Name+" partitioned over simulated backends", part, serial)
		if st.WorkerIO == nil {
			t.Fatalf("%s: no per-worker scan IO over simulated backends", q.Name)
		}
		for w, wio := range st.WorkerIO {
			if wio.Bytes == 0 {
				t.Fatalf("%s: simulated worker %d read no bytes", q.Name, w)
			}
		}
	}
}

// TestPartitionedFailoverMidScan kills one of two TCP workers in the middle
// of a partitioned scan-heavy query — after its second completed unit — and
// asserts the run still matches the serial oracle byte for byte: the dead
// worker's pinned scan units re-scan on the coordinator's local copy, and
// the delivered-prefix replay splices half-delivered units without
// duplicating or reordering rows. The kill is timing-dependent (the query
// must still be running), so the scenario retries a few times; equivalence
// is asserted unconditionally on every attempt.
func TestPartitionedFailoverMidScan(t *testing.T) {
	b := benchmarkFixture(t)
	for _, qn := range []int{3, 19} {
		q := Query(qn)
		t.Run(q.Name, func(t *testing.T) {
			serial, _, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for attempt := 1; ; attempt++ {
				srvs, addrs := startWorkers(t, 2, 2)
				for _, s := range srvs {
					s.OnUnitStart = func() { time.Sleep(2 * time.Millisecond) }
				}
				victim := srvs[1]
				var killed atomic.Bool
				victim.OnUnitDone = func(total int64) {
					if total == 2 && !killed.Swap(true) {
						go victim.Close()
					}
				}
				part, st, _, err := RunQueryOpts(b.DBs[plan.BDCC], q,
					RunOptions{Workers: 2, Remotes: addrs, Partition: true})
				if err != nil {
					t.Fatalf("%s with a worker killed mid-scan failed instead of failing over: %v", q.Name, err)
				}
				assertSameResult(t, q.Name+" after mid-scan worker kill", part, serial)
				if killed.Load() {
					if st.WorkerIO == nil {
						t.Fatalf("%s: partitioned run reports no worker IO", q.Name)
					}
					if st.IO.Bytes == 0 {
						t.Fatalf("%s: dead worker's units re-scanned locally but the coordinator charged no reads", q.Name)
					}
					return
				}
				srvs[0].Close()
				if attempt == 5 {
					t.Fatalf("%s: the victim never completed 2 units before the query finished in %d attempts", q.Name, attempt)
				}
			}
		})
	}
}
