package tpch

import (
	"fmt"
	"strings"

	"bdcc/internal/engine"
	"bdcc/internal/plan"
)

// Service is the query front end the bdccd daemon mounts behind the serve
// layer's admission gate: query-name lookup over the 22 TPC-H builders, one
// shared catalog (the benchmark's materialized schemes), and one plan cache
// so repeated queries replay recorded planning — preanalysis, pre-executed
// build subtrees, scalar subqueries, one-shot views — instead of redoing
// it. Handle matches serve.Handler; serve prepares the context (scheduler
// pool, memory-budget lease, shared backends) before calling it.
type Service struct {
	bench  *Benchmark
	cache  *plan.Cache
	byName map[string]QueryDef
}

// NewService wraps a materialized benchmark as a daemon query service.
func NewService(b *Benchmark) *Service {
	s := &Service{bench: b, cache: plan.NewCache(), byName: make(map[string]QueryDef)}
	for _, q := range Queries {
		s.byName[strings.ToUpper(q.Name)] = q
		// Accept the bare number too ("7" as well as "Q07").
		s.byName[fmt.Sprintf("%d", q.Num)] = q
	}
	return s
}

// CacheStats exposes the plan cache's hit and miss counts.
func (s *Service) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// schemeDB resolves a wire scheme name to a materialized database.
func (s *Service) schemeDB(name string) (*plan.DB, error) {
	for sch, db := range s.bench.DBs {
		if strings.EqualFold(sch.String(), name) {
			return db, nil
		}
	}
	return nil, fmt.Errorf("tpch: scheme %q not materialized", name)
}

// knobs fingerprints the plan-shaping execution knobs for the cache key.
// Partition shapes the plan (a partitioned scatter scan lowers to shipped
// scan units), so it is part of the fingerprint.
func knobs(ctx *engine.Context) string {
	part := ""
	if ctx.Partition {
		part = "/p"
	}
	return fmt.Sprintf("w%d/s%d/r%d/%s%s", ctx.Workers, ctx.Shards, len(ctx.Remotes), ctx.Balance, part)
}

// Handle runs one named query under one scheme on the prepared context. The
// first arrival of a (query, scheme, knobs) key records a plan memo and the
// subquery memo while holding the cache entry's lock (concurrent first
// arrivals wait, then replay); every later arrival replays both — planning
// decisions and subquery results — and only executes the main plan. Results
// are byte-identical either way: replay reuses decisions and materialized
// subquery results, never the main plan's operators or output.
func (s *Service) Handle(ctx *engine.Context, scheme, query string) (*engine.Result, error) {
	db, err := s.schemeDB(scheme)
	if err != nil {
		return nil, err
	}
	q, ok := s.byName[strings.ToUpper(query)]
	if !ok {
		return nil, fmt.Errorf("tpch: unknown query %q", query)
	}
	// Pin the ingest snapshot before planning; the epoch keys the cache so a
	// memo recorded over one version never replays over another (plans bake
	// table references and zonemap decisions).
	db = db.Snapshot()
	key := plan.CacheKey{
		Query:  q.Name,
		Schema: fmt.Sprintf("%s/sf%g/e%d", db.Scheme, s.bench.SF, db.Epoch()),
		Knobs:  knobs(ctx),
	}
	lease := s.cache.Acquire(key)
	env := &Env{DB: db, Ctx: ctx}
	var memo *plan.Memo
	if lease.Hit() {
		memo = lease.Memo
		env.replay, _ = lease.Sub.(*subMemo)
	} else {
		memo = plan.NewMemo()
		env.rec = &subMemo{}
	}
	node, err := q.Build(env)
	if err != nil {
		lease.Abandon()
		return nil, fmt.Errorf("tpch: %s build: %w", q.Name, err)
	}
	p := plan.NewPlanner(db, ctx)
	p.UseMemo(memo)
	res, err := p.Run(node)
	if err != nil {
		lease.Abandon()
		return nil, fmt.Errorf("tpch: %s (%s): %w", q.Name, db.Scheme, err)
	}
	lease.Complete(memo, env.rec) // no-op on a hit
	return res, nil
}
