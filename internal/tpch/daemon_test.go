package tpch

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/plan"
	"bdcc/internal/serve"
)

// startDaemon mounts the benchmark behind a loopback bdccd: the serve
// layer's admission gate and memory governor in front of a Service over the
// shared fixture catalog. Returns the server (for counters), its address,
// and the service (for cache stats).
func startDaemon(t *testing.T, b *Benchmark, cfg serve.Config) (*serve.Server, string, *Service) {
	t.Helper()
	svc := NewService(b)
	dev := iosim.PaperSSD()
	if cfg.NewContext == nil {
		workers := cfg.Workers
		cfg.NewContext = func() *engine.Context {
			return engine.Options{Workers: workers}.NewContext(dev)
		}
	}
	cfg.Handler = svc.Handle
	s := serve.NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String(), svc
}

// assertIdentical compares a daemon result to the serial single-box
// baseline exactly: same rows in the same order, float columns bit for bit
// (the wire codec round-trips exact IEEE-754 bits, so no tolerance).
func assertIdentical(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: %d rows, baseline has %d", label, got.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		if g, w := fmt.Sprint(got.Row(i)), fmt.Sprint(want.Row(i)); g != w {
			t.Fatalf("%s: row %d = %s, baseline %s", label, i, g, w)
		}
	}
	for c := range want.Cols {
		for i, v := range want.Cols[c].F64 {
			if gv := got.Cols[c].F64[i]; gv != v {
				t.Fatalf("%s: col %d row %d = %v, baseline %v — floats must be bit-identical",
					label, c, i, gv, v)
			}
		}
	}
}

// TestDaemonOracle is the concurrency acceptance oracle: all 22 queries
// under all three schemes, issued by 4 concurrent client sessions through
// the daemon, must come back byte-identical to serial single-box runs —
// across admission scheduling, pool reuse, and plan-cache replay (the
// repeated keys hit the cache, so replayed plans are in the comparison by
// construction).
func TestDaemonOracle(t *testing.T) {
	b := benchmarkFixture(t)
	schemes := []plan.Scheme{plan.Plain, plan.PK, plan.BDCC}

	// Serial single-box baselines, one per (scheme, query).
	baseline := make(map[string]*engine.Result)
	for _, scheme := range schemes {
		for _, q := range Queries {
			res, _, _, err := RunQuery(b.DBs[scheme], q)
			if err != nil {
				t.Fatalf("%s under %s baseline: %v", q.Name, scheme, err)
			}
			baseline[scheme.String()+"/"+q.Name] = res
		}
	}

	_, addr, svc := startDaemon(t, b, serve.Config{
		Pools: 2, Workers: 2, QueueCap: 64, QueueWait: time.Minute,
	})
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := serve.Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for _, scheme := range schemes {
				for _, q := range Queries {
					res, err := c.Query(scheme.String(), q.Name)
					if err != nil {
						errs <- fmt.Errorf("%s under %s through daemon: %w", q.Name, scheme, err)
						return
					}
					key := scheme.String() + "/" + q.Name
					assertIdentical(t, key, res, baseline[key])
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := svc.CacheStats()
	if want := int64(len(schemes) * len(Queries)); misses != want {
		t.Errorf("plan cache recorded %d misses, want exactly one per (scheme, query) = %d", misses, want)
	}
	if want := int64((clients - 1) * len(schemes) * len(Queries)); hits != want {
		t.Errorf("plan cache recorded %d hits, want %d — repeated keys are not replaying", hits, want)
	}
}

// TestDaemonMemoryGovernanceQueues pins the governed path under pressure: a
// process budget sized for about one and a half heavy queries makes
// concurrent queries wait for each other's releases (or, when they
// interlock mid-growth, shed one after the bounded wait) — the budget's
// summed reservations never exceed the limit, governance provably engaged,
// a rejected query is a typed rejection that succeeds on retry, and every
// result stays byte-identical.
func TestDaemonMemoryGovernanceQueues(t *testing.T) {
	b := benchmarkFixture(t)
	heavy := Query(13) // the paper's memory-figure query: largest plain-scheme build
	want, stHeavy, _, err := RunQuery(b.DBs[plan.Plain], heavy)
	if err != nil {
		t.Fatal(err)
	}
	const quantum = 64 << 10
	// One query always fits (peak plus rounding headroom); two concurrent
	// ones exceed the limit and must queue for each other's releases.
	budget := stHeavy.PeakMem + stHeavy.PeakMem/2
	if budget < 8*quantum {
		budget = 8 * quantum
	}
	// Two pools bound the budget's concurrent consumers: one query always
	// fits, so an interlocked pair resolves as soon as the bounded wait
	// sheds one — the survivor finishes and the shed query's retry lands on
	// a mostly free budget.
	srv, addr, _ := startDaemon(t, b, serve.Config{
		Pools: 2, QueueCap: 16, QueueWait: time.Minute,
		MemBudget: budget, MemWait: 500 * time.Millisecond, MemQuantum: quantum,
	})
	const clients, rounds = 4, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var retried int64
	var retriedMu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := serve.Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				var res *engine.Result
				for attempt := 0; ; attempt++ {
					res, err = c.Query("plain", heavy.Name)
					if err == nil {
						break
					}
					// Concurrent queries that interlock mid-growth are shed
					// by the bounded wait as typed rejections; a closed-loop
					// client retries and must eventually get through.
					if !errors.Is(err, serve.ErrRejected) || attempt >= 30 {
						errs <- fmt.Errorf("governed %s (attempt %d): %w", heavy.Name, attempt, err)
						return
					}
					retriedMu.Lock()
					retried++
					retriedMu.Unlock()
					// Linear backoff keeps shed queries from re-creating the
					// same interlock immediately.
					time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
				}
				assertIdentical(t, "governed Q13", res, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	bud := srv.Budget()
	if got := bud.PeakReserved(); got > budget {
		t.Errorf("summed reservations peaked at %d, above the %d budget — governance is not a hard bound", got, budget)
	}
	if bud.Queued() == 0 && bud.Rejected() == 0 {
		t.Errorf("budget %d (1.5x the %d heavy peak) neither queued nor rejected any reservation across %d concurrent clients — governance did not engage",
			budget, stHeavy.PeakMem, clients)
	}
	if got := bud.Reserved(); got != 0 {
		t.Errorf("budget still holds %d bytes after all queries unwound", got)
	}
	if retried > 0 {
		t.Logf("governance shed and re-admitted %d request(s) under pressure", retried)
	}
}

// TestDaemonTinyBudgetRejects pins rejection under a budget too small for
// the heavy query: it is refused with the typed rejection (not a failure),
// while light queries keep being served by the same daemon.
func TestDaemonTinyBudgetRejects(t *testing.T) {
	b := benchmarkFixture(t)
	heavy, light := Query(13), Query(6)
	_, stHeavy, _, err := RunQuery(b.DBs[plan.Plain], heavy)
	if err != nil {
		t.Fatal(err)
	}
	_, stLight, _, err := RunQuery(b.DBs[plan.Plain], light)
	if err != nil {
		t.Fatal(err)
	}
	const quantum = 16 << 10
	budget := stHeavy.PeakMem / 2
	if floor := stLight.PeakMem + 4*quantum; budget < floor {
		t.Skipf("heavy peak %d and light peak %d do not separate at this scale", stHeavy.PeakMem, stLight.PeakMem)
	}
	srv, addr, _ := startDaemon(t, b, serve.Config{
		Pools: 2, QueueCap: 16, QueueWait: time.Minute,
		MemBudget: budget, MemWait: 0, MemQuantum: quantum,
	})
	c, err := serve.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("plain", heavy.Name); !errors.Is(err, serve.ErrRejected) {
		t.Fatalf("over-budget %s returned %v, want the typed rejection", heavy.Name, err)
	}
	if _, err := c.Query("plain", light.Name); err != nil {
		t.Fatalf("daemon stopped serving after a memory rejection: %v", err)
	}
	st := srv.Stats()
	if st.MemRejected == 0 {
		t.Errorf("budget recorded no rejection: %+v", st)
	}
	if got := srv.Budget().Reserved(); got != 0 {
		t.Errorf("budget still holds %d bytes after the rejected query unwound", got)
	}
}
