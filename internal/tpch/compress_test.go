package tpch

import (
	"fmt"
	"sync"
	"testing"

	"bdcc/internal/plan"
	"bdcc/internal/storage"
)

// The compressed benchmark is built once per binary, like the raw one in
// tpch_test.go. Generation is deterministically seeded, so it holds exactly
// the data of benchmarkFixture and the two are comparable byte for byte.
var (
	ctbOnce sync.Once
	ctb     *Benchmark
	ctbErr  error
)

func compressedFixture(t *testing.T) *Benchmark {
	t.Helper()
	ctbOnce.Do(func() {
		ctb, ctbErr = NewBenchmarkCompressed(0.05, true)
	})
	if ctbErr != nil {
		t.Fatalf("NewBenchmarkCompressed: %v", ctbErr)
	}
	if !ctb.Compressed {
		t.Fatal("compressed benchmark does not report Compressed")
	}
	return ctb
}

// TestCompressionEquivalence is the compression oracle: every TPC-H query
// must return byte-identical results (same rows, same order, same float
// bits) on the compressed database as on the raw one, under every scheme —
// serially and, under BDCC, with the compressed group units shipped through
// the sharded transport so the tagged wire codec is on the comparison path
// too. No float tolerance, no row sorting.
func TestCompressionEquivalence(t *testing.T) {
	raw := benchmarkFixture(t)
	comp := compressedFixture(t)
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				want, _, _, err := RunQueryShards(raw.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatalf("%s raw under %s: %v", q.Name, scheme, err)
				}
				cells := []struct{ workers, shards int }{{1, 1}, {4, 1}}
				if scheme == plan.BDCC {
					cells = append(cells, struct{ workers, shards int }{2, 2})
				}
				for _, cell := range cells {
					label := fmt.Sprintf("workers=%d shards=%d", cell.workers, cell.shards)
					got, _, _, err := RunQueryShards(comp.DBs[scheme], q, cell.workers, cell.shards)
					if err != nil {
						t.Fatalf("%s compressed under %s %s: %v", q.Name, scheme, label, err)
					}
					if got.Rows() != want.Rows() {
						t.Fatalf("%s under %s %s: compressed returns %d rows, raw returns %d",
							q.Name, scheme, label, got.Rows(), want.Rows())
					}
					for i := 0; i < want.Rows(); i++ {
						if g, w := fmt.Sprint(got.Row(i)), fmt.Sprint(want.Row(i)); g != w {
							t.Fatalf("%s under %s %s: row %d = %s compressed, %s raw",
								q.Name, scheme, label, i, g, w)
						}
					}
					for c := range want.Cols {
						for i, v := range want.Cols[c].F64 {
							if gv := got.Cols[c].F64[i]; gv != v {
								t.Fatalf("%s under %s %s: col %d row %d = %v compressed, %v raw — floats must be bit-identical",
									q.Name, scheme, label, c, i, gv, v)
							}
						}
					}
				}
			}
		})
	}
}

// TestCompressionWinsOnClustered checks the paper-motivated payoff: BDCC
// co-clustering makes columns locally homogeneous, so the chunk encoder must
// beat the raw representation on the clustered layout (encoded bytes
// strictly below storage bytes, with RLE/dict/FOR chunks actually chosen),
// and the modeled scan volume of the full query suite must shrink against
// the same queries on the raw database.
func TestCompressionWinsOnClustered(t *testing.T) {
	raw := benchmarkFixture(t)
	comp := compressedFixture(t)
	for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
		cs := comp.DBs[scheme].CompressionStats()
		if cs.RawBytes == 0 || cs.EncodedBytes == 0 {
			t.Fatalf("%s: compressed database reports no bytes: %+v", scheme, cs)
		}
		if cs.EncodedBytes >= cs.RawBytes {
			t.Errorf("%s: encoded %d bytes not below raw %d — compression stopped winning", scheme, cs.EncodedBytes, cs.RawBytes)
		}
		if cs.RLEChunks+cs.DictChunks+cs.FORChunks == 0 {
			t.Errorf("%s: every chunk fell back to raw: %+v", scheme, cs)
		}
		if rs := raw.DBs[scheme].CompressionStats(); rs != (storage.CompressionStats{}) {
			t.Errorf("%s: raw database reports compression activity: %+v", scheme, rs)
		}
	}
	var rawRead, compRead int64
	for _, q := range Queries {
		_, rst, _, err := RunQueryShards(raw.DBs[plan.BDCC], q, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, cst, _, err := RunQueryShards(comp.DBs[plan.BDCC], q, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		rawRead += rst.IO.Bytes
		compRead += cst.IO.Bytes
	}
	if compRead >= rawRead {
		t.Errorf("BDCC suite reads %d bytes compressed, %d raw — compression did not shrink modeled I/O", compRead, rawRead)
	}
}

// TestCompressionWireSavings checks the transport meter: a sharded BDCC run
// over the compressed database must record wire bytes saved by the tagged
// batch codec (the shipped group units shrank against their raw form), and
// the savings must never be negative anywhere in the grid.
func TestCompressionWireSavings(t *testing.T) {
	comp := compressedFixture(t)
	var saved int64
	for _, q := range Queries {
		_, st, _, err := RunQueryShards(comp.DBs[plan.BDCC], q, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.Net.Saved < 0 {
			t.Fatalf("%s: negative wire savings %d", q.Name, st.Net.Saved)
		}
		saved += st.Net.Saved
	}
	if saved == 0 {
		t.Fatal("no wire bytes saved across any sharded BDCC query — the batch codec stopped winning on shipped units")
	}
}
