package tpch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bdcc/internal/plan"
	"bdcc/internal/serve"
)

// ConcurrencyStats is one closed-loop concurrency measurement against a
// bdccd daemon: N clients each issuing the query list for `rounds` rounds
// back to back, latencies recorded per request — the concurrency leg of the
// benchmark grid.
type ConcurrencyStats struct {
	Scheme   string  `json:"scheme"`
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Queued/Rejected are the daemon's admission counters over this run
	// (deltas of the wire stats); rejected requests also count into
	// Requests — a closed-loop client moves on, it does not retry.
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
	// Errors counts non-rejection failures (0 on a healthy run).
	Errors int64 `json:"errors,omitempty"`
}

// RunConcurrency drives a daemon at addr with `clients` closed-loop
// sessions, each issuing every named query `rounds` times under one scheme,
// and reports throughput, latency quantiles, and the daemon's admission
// deltas for the run.
func RunConcurrency(addr, token string, scheme plan.Scheme, queries []string, clients, rounds int) (*ConcurrencyStats, error) {
	if clients < 1 {
		clients = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	probe, err := serve.Dial(addr, token)
	if err != nil {
		return nil, err
	}
	defer probe.Close()
	before, err := probe.Stats()
	if err != nil {
		return nil, err
	}

	type outcome struct {
		lat      []time.Duration
		rejected int64
		errs     int64
		fatal    error
	}
	outcomes := make([]outcome, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := serve.Dial(addr, token)
			if err != nil {
				outcomes[i].fatal = err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				for _, q := range queries {
					t0 := time.Now()
					_, err := c.Query(scheme.String(), q)
					outcomes[i].lat = append(outcomes[i].lat, time.Since(t0))
					switch {
					case err == nil:
					case errors.Is(err, serve.ErrRejected):
						outcomes[i].rejected++
					default:
						outcomes[i].errs++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	st := &ConcurrencyStats{Scheme: scheme.String(), Clients: clients}
	var lats []time.Duration
	for _, o := range outcomes {
		if o.fatal != nil {
			return nil, fmt.Errorf("tpch: concurrency client: %w", o.fatal)
		}
		lats = append(lats, o.lat...)
		st.Rejected += o.rejected
		st.Errors += o.errs
	}
	st.Requests = len(lats)
	if wall > 0 {
		st.QPS = float64(st.Requests) / wall.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		st.P50MS = float64(lats[n/2].Microseconds()) / 1000
		st.P99MS = float64(lats[n*99/100].Microseconds()) / 1000
	}
	after, err := probe.Stats()
	if err != nil {
		return nil, err
	}
	st.Queued = after.QueuedTotal - before.QueuedTotal
	return st, nil
}
