package tpch

import (
	"fmt"
	"testing"

	"bdcc/internal/plan"
)

// TestQ13ParallelMemoryEffect checks the paper's central memory claim
// survives parallel execution: the sandwiched Q13 peak (serial per-group
// build, parallel scans and aggregations) stays below the plain scheme's
// full-materialization peak at every worker count.
func TestQ13ParallelMemoryEffect(t *testing.T) {
	b := benchmarkFixture(t)
	for _, workers := range []int{1, 4} {
		_, stB, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		_, stP, _, err := RunQueryWorkers(b.DBs[plan.Plain], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		if stB.PeakMem >= stP.PeakMem {
			t.Errorf("workers=%d: sandwiched Q13 peak %d not below plain %d", workers, stB.PeakMem, stP.PeakMem)
		}
	}
}

// TestWorkersEquivalence is the morsel-parallelism oracle: every TPC-H
// query must return byte-identical results (same rows, same order, same
// float bits) with workers=1 and workers=4 under every scheme. The engine
// guarantees this by construction — order-preserving merges for scans and
// join probes, and per-group single-worker accumulation for aggregates —
// so the comparison is exact, with no float tolerance and no row sorting.
func TestWorkersEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	const parWorkers = 4
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, _, _, err := RunQueryWorkers(b.DBs[scheme], q, 1)
				if err != nil {
					t.Fatalf("%s under %s workers=1: %v", q.Name, scheme, err)
				}
				par, _, _, err := RunQueryWorkers(b.DBs[scheme], q, parWorkers)
				if err != nil {
					t.Fatalf("%s under %s workers=%d: %v", q.Name, scheme, parWorkers, err)
				}
				if par.Rows() != serial.Rows() {
					t.Fatalf("%s under %s: workers=%d returns %d rows, workers=1 returns %d",
						q.Name, scheme, parWorkers, par.Rows(), serial.Rows())
				}
				for i := 0; i < serial.Rows(); i++ {
					if got, want := fmt.Sprint(par.Row(i)), fmt.Sprint(serial.Row(i)); got != want {
						t.Fatalf("%s under %s: row %d = %s with workers=%d, %s with workers=1",
							q.Name, scheme, i, got, parWorkers, want)
					}
				}
				for c := range serial.Cols {
					if serial.Cols[c].Kind != serial.Schema[c].Kind {
						continue
					}
					for i, v := range serial.Cols[c].F64 {
						if pv := par.Cols[c].F64[i]; pv != v {
							t.Fatalf("%s under %s: col %d row %d = %v with workers=%d, %v serial — floats must be bit-identical",
								q.Name, scheme, c, i, pv, parWorkers, v)
						}
					}
				}
			}
		})
	}
}
