package tpch

import (
	"fmt"
	"testing"
	"time"

	"bdcc/internal/plan"
)

// TestQ13ParallelMemoryEffect checks the paper's central memory claim
// survives parallel execution: the sandwiched Q13 peak (serial per-group
// build, parallel scans and aggregations) stays below the plain scheme's
// full-materialization peak at every worker count.
func TestQ13ParallelMemoryEffect(t *testing.T) {
	b := benchmarkFixture(t)
	for _, workers := range []int{1, 4} {
		_, stB, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		_, stP, _, err := RunQueryWorkers(b.DBs[plan.Plain], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		if stB.PeakMem >= stP.PeakMem {
			t.Errorf("workers=%d: sandwiched Q13 peak %d not below plain %d", workers, stB.PeakMem, stP.PeakMem)
		}
	}
}

// TestWorkersEquivalence is the morsel-parallelism oracle: every TPC-H
// query must return byte-identical results (same rows, same order, same
// float bits) with workers=1 and workers=4 under every scheme. The engine
// guarantees this by construction — order-preserving merges for scans and
// join probes, and per-group single-worker accumulation for aggregates —
// so the comparison is exact, with no float tolerance and no row sorting.
func TestWorkersEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	const parWorkers = 4
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, _, _, err := RunQueryWorkers(b.DBs[scheme], q, 1)
				if err != nil {
					t.Fatalf("%s under %s workers=1: %v", q.Name, scheme, err)
				}
				par, _, _, err := RunQueryWorkers(b.DBs[scheme], q, parWorkers)
				if err != nil {
					t.Fatalf("%s under %s workers=%d: %v", q.Name, scheme, parWorkers, err)
				}
				if par.Rows() != serial.Rows() {
					t.Fatalf("%s under %s: workers=%d returns %d rows, workers=1 returns %d",
						q.Name, scheme, parWorkers, par.Rows(), serial.Rows())
				}
				for i := 0; i < serial.Rows(); i++ {
					if got, want := fmt.Sprint(par.Row(i)), fmt.Sprint(serial.Row(i)); got != want {
						t.Fatalf("%s under %s: row %d = %s with workers=%d, %s with workers=1",
							q.Name, scheme, i, got, parWorkers, want)
					}
				}
				for c := range serial.Cols {
					if serial.Cols[c].Kind != serial.Schema[c].Kind {
						continue
					}
					for i, v := range serial.Cols[c].F64 {
						if pv := par.Cols[c].F64[i]; pv != v {
							t.Fatalf("%s under %s: col %d row %d = %v with workers=%d, %v serial — floats must be bit-identical",
								q.Name, scheme, c, i, pv, parWorkers, v)
						}
					}
				}
			}
		})
	}
}

// TestColdTimeOverlapsGroupedScanIO is the I/O–compute overlap acceptance
// check: under BDCC with a multi-worker scheduler, grouped scans post their
// scattered group reads asynchronously, so some device time is hidden
// behind compute and the reported cold time is max(io, cpu) per overlap
// window (cold = wall + io − hidden) instead of the serial sum. Serial runs
// must hide nothing, preserving the paper's measurement setup.
func TestColdTimeOverlapsGroupedScanIO(t *testing.T) {
	b := benchmarkFixture(t)
	var hiddenPar time.Duration
	for _, q := range Queries {
		_, stSer, _, err := RunQueryWorkers(b.DBs[plan.BDCC], q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if stSer.IO.Hidden != 0 {
			t.Fatalf("%s serial run hid %v of device time — workers<=1 numbers must be unchanged", q.Name, stSer.IO.Hidden)
		}
		if stSer.Cold != stSer.IO.Time+stSer.Wall {
			t.Fatalf("%s serial cold %v != io %v + wall %v", q.Name, stSer.Cold, stSer.IO.Time, stSer.Wall)
		}
		_, stPar, _, err := RunQueryWorkers(b.DBs[plan.BDCC], q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if stPar.IO.Hidden > stPar.IO.Time {
			t.Fatalf("%s: hidden %v exceeds device time %v", q.Name, stPar.IO.Hidden, stPar.IO.Time)
		}
		if stPar.Cold != stPar.IO.ColdTime(stPar.Wall) {
			t.Fatalf("%s: cold %v not derived from the overlap model", q.Name, stPar.Cold)
		}
		hiddenPar += stPar.IO.Hidden
	}
	if hiddenPar == 0 {
		t.Fatal("no device time hidden across any BDCC query at workers=4 — grouped scans are not overlapping I/O")
	}
}

// TestSchedulerStatsReported checks the per-query scheduler counters that
// feed tpchbench -v: parallel runs record tasks, serial runs record none.
func TestSchedulerStatsReported(t *testing.T) {
	b := benchmarkFixture(t)
	_, stPar, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stPar.Sched.Tasks == 0 {
		t.Fatal("parallel Q13 recorded no scheduler tasks")
	}
	_, stSer, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stSer.Sched.Tasks != 0 {
		t.Fatalf("serial Q13 recorded %d scheduler tasks", stSer.Sched.Tasks)
	}
}
