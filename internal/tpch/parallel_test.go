package tpch

import (
	"fmt"
	"testing"
	"time"

	"bdcc/internal/plan"
)

// TestQ13ParallelMemoryEffect checks the paper's central memory claim
// survives parallel execution: the sandwiched Q13 peak (serial per-group
// build, parallel scans and aggregations) stays below the plain scheme's
// full-materialization peak at every worker count.
func TestQ13ParallelMemoryEffect(t *testing.T) {
	b := benchmarkFixture(t)
	for _, workers := range []int{1, 4} {
		_, stB, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		_, stP, _, err := RunQueryWorkers(b.DBs[plan.Plain], Query(13), workers)
		if err != nil {
			t.Fatal(err)
		}
		if stB.PeakMem >= stP.PeakMem {
			t.Errorf("workers=%d: sandwiched Q13 peak %d not below plain %d", workers, stB.PeakMem, stP.PeakMem)
		}
	}
}

// equivalenceMatrix is the (workers, shards) grid the oracle runs: the
// workers {1,4} × shards {1,2,4} matrix of the scale-out acceptance
// criteria, with (1,1) — serial single-box, the paper's setup — as the
// baseline every other cell must reproduce byte for byte.
var equivalenceMatrix = []struct{ workers, shards int }{
	{1, 1}, // baseline
	{4, 1},
	{1, 2}, // sharded groups over serial local execution
	{4, 2},
	{1, 4},
	{4, 4},
}

// TestWorkersEquivalence is the parallelism and scale-out oracle: every
// TPC-H query must return byte-identical results (same rows, same order,
// same float bits) at every cell of the workers × shards matrix under every
// scheme. The engine guarantees this by construction — order-preserving
// merges for scans, join probes and sharded sandwich groups, and per-group
// single-worker accumulation for aggregates — so the comparison is exact,
// with no float tolerance and no row sorting.
func TestWorkersEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, _, _, err := RunQueryShards(b.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatalf("%s under %s workers=1 shards=1: %v", q.Name, scheme, err)
				}
				for _, cell := range equivalenceMatrix[1:] {
					label := fmt.Sprintf("workers=%d shards=%d", cell.workers, cell.shards)
					par, _, _, err := RunQueryShards(b.DBs[scheme], q, cell.workers, cell.shards)
					if err != nil {
						t.Fatalf("%s under %s %s: %v", q.Name, scheme, label, err)
					}
					if par.Rows() != serial.Rows() {
						t.Fatalf("%s under %s: %s returns %d rows, baseline returns %d",
							q.Name, scheme, label, par.Rows(), serial.Rows())
					}
					for i := 0; i < serial.Rows(); i++ {
						if got, want := fmt.Sprint(par.Row(i)), fmt.Sprint(serial.Row(i)); got != want {
							t.Fatalf("%s under %s: row %d = %s with %s, %s at baseline",
								q.Name, scheme, i, got, label, want)
						}
					}
					for c := range serial.Cols {
						if serial.Cols[c].Kind != serial.Schema[c].Kind {
							continue
						}
						for i, v := range serial.Cols[c].F64 {
							if pv := par.Cols[c].F64[i]; pv != v {
								t.Fatalf("%s under %s: col %d row %d = %v with %s, %v at baseline — floats must be bit-identical",
									q.Name, scheme, c, i, pv, label, v)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardNetAccounting checks the modeled transport meter: single-box
// runs report no network activity at all, sharded BDCC runs pay for their
// shipped groups, and sharded Plain/PK runs — which produce no group
// streams — never even build a backend set, so sharding is free where it
// cannot apply.
func TestShardNetAccounting(t *testing.T) {
	b := benchmarkFixture(t)
	var sharded int64
	for _, q := range Queries {
		_, stSingle, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if stSingle.Net.Runs != 0 || stSingle.Net.Time != 0 {
			t.Fatalf("%s single-box run recorded network activity: %+v", q.Name, stSingle.Net)
		}
		_, stShard, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		sharded += stShard.Net.Runs
		if stShard.Net.Runs > 0 && stShard.Net.Time <= 0 {
			t.Fatalf("%s: %d messages but no modeled network time", q.Name, stShard.Net.Runs)
		}
	}
	if sharded == 0 {
		t.Fatal("no BDCC query shipped any group over the transport at shards=2")
	}
	_, stPlain, _, err := RunQueryShards(b.DBs[plan.Plain], Query(13), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.Net.Runs != 0 {
		t.Fatalf("plain scheme (no group streams) recorded network activity: %+v", stPlain.Net)
	}
}

// TestColdTimeOverlapsGroupedScanIO is the I/O–compute overlap acceptance
// check: under BDCC with a multi-worker scheduler, grouped scans post their
// scattered group reads asynchronously, so some device time is hidden
// behind compute and the reported cold time is max(io, cpu) per overlap
// window (cold = wall + io − hidden) instead of the serial sum. Serial runs
// must hide nothing, preserving the paper's measurement setup.
func TestColdTimeOverlapsGroupedScanIO(t *testing.T) {
	b := benchmarkFixture(t)
	var hiddenPar time.Duration
	for _, q := range Queries {
		_, stSer, _, err := RunQueryWorkers(b.DBs[plan.BDCC], q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if stSer.IO.Hidden != 0 {
			t.Fatalf("%s serial run hid %v of device time — workers<=1 numbers must be unchanged", q.Name, stSer.IO.Hidden)
		}
		if stSer.Cold != stSer.IO.Time+stSer.Wall {
			t.Fatalf("%s serial cold %v != io %v + wall %v", q.Name, stSer.Cold, stSer.IO.Time, stSer.Wall)
		}
		_, stPar, _, err := RunQueryWorkers(b.DBs[plan.BDCC], q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if stPar.IO.Hidden > stPar.IO.Time {
			t.Fatalf("%s: hidden %v exceeds device time %v", q.Name, stPar.IO.Hidden, stPar.IO.Time)
		}
		if stPar.Cold != stPar.IO.ColdTime(stPar.Wall) {
			t.Fatalf("%s: cold %v not derived from the overlap model", q.Name, stPar.Cold)
		}
		hiddenPar += stPar.IO.Hidden
	}
	if hiddenPar == 0 {
		t.Fatal("no device time hidden across any BDCC query at workers=4 — grouped scans are not overlapping I/O")
	}
}

// TestSchedulerStatsReported checks the per-query scheduler counters that
// feed tpchbench -v: parallel runs record tasks, serial runs record none.
func TestSchedulerStatsReported(t *testing.T) {
	b := benchmarkFixture(t)
	_, stPar, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stPar.Sched.Tasks == 0 {
		t.Fatal("parallel Q13 recorded no scheduler tasks")
	}
	_, stSer, _, err := RunQueryWorkers(b.DBs[plan.BDCC], Query(13), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stSer.Sched.Tasks != 0 {
		t.Fatalf("serial Q13 recorded %d scheduler tasks", stSer.Sched.Tasks)
	}
}
