package tpch

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"bdcc/internal/plan"
	"bdcc/internal/shard"
)

// startWorkers launches n in-process bdccworker servers on loopback TCP and
// returns them with their dialable addresses.
func startWorkers(t *testing.T, n, workers int) ([]*shard.Server, []string) {
	t.Helper()
	srvs := make([]*shard.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := shard.NewServer(workers)
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		srvs[i], addrs[i] = srv, l.Addr().String()
	}
	return srvs, addrs
}

// assertSameResult compares two results byte for byte: rows, order, and
// exact float bits.
func assertSameResult(t *testing.T, label string, got, want interface {
	Rows() int
	Row(int) []string
}) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s returns %d rows, baseline returns %d", label, got.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		if g, w := fmt.Sprint(got.Row(i)), fmt.Sprint(want.Row(i)); g != w {
			t.Fatalf("%s: row %d = %s, baseline has %s", label, i, g, w)
		}
	}
}

// TestRemoteEquivalence is the loopback-TCP leg of the scale-out oracle:
// every TPC-H query under every scheme, sharded over two real bdccworker
// servers dialed over TCP (plan fragments shipped at setup, every group and
// result batch crossing real sockets), must return byte-identical results
// to the serial single-box baseline — including exact float bits — under
// both placement policies.
func TestRemoteEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	srvs, addrs := startWorkers(t, 2, 2)
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, _, _, err := RunQueryShards(b.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatalf("%s under %s serial: %v", q.Name, scheme, err)
				}
				remote, st, _, err := RunQueryOpts(b.DBs[scheme], q,
					RunOptions{Workers: 2, Remotes: addrs})
				if err != nil {
					t.Fatalf("%s under %s remotes: %v", q.Name, scheme, err)
				}
				label := fmt.Sprintf("%s under %s via TCP workers", q.Name, scheme)
				assertSameResult(t, label, remote, serial)
				for c := range serial.Cols {
					for i, v := range serial.Cols[c].F64 {
						if pv := remote.Cols[c].F64[i]; pv != v {
							t.Fatalf("%s: col %d row %d = %v, %v at baseline — floats must be bit-identical",
								label, c, i, pv, v)
						}
					}
				}
				if scheme != plan.BDCC && st.Net.Runs != 0 {
					t.Fatalf("%s under %s dialed workers but has no group streams to ship: %+v",
						q.Name, scheme, st.Net)
				}
				if scheme == plan.BDCC && st.Net.Runs > 0 {
					if len(st.Shard) != len(addrs) {
						t.Fatalf("%s: %d shard loads recorded for %d workers", q.Name, len(st.Shard), len(addrs))
					}
					// balance-by-size must reproduce the same bytes too.
					sized, _, _, err := RunQueryOpts(b.DBs[scheme], q,
						RunOptions{Workers: 2, Remotes: addrs, Balance: "size"})
					if err != nil {
						t.Fatalf("%s balance=size: %v", q.Name, err)
					}
					assertSameResult(t, label+" (balance=size)", sized, serial)
				}
			}
		})
	}
	var total int64
	for _, s := range srvs {
		total += s.UnitsDone()
	}
	if total == 0 {
		t.Fatal("no group unit ever reached a TCP worker — the remote path went unexercised")
	}
}

// TestRemoteFailoverMidQuery kills one of two TCP workers mid-query —
// deterministically, after its second completed unit — on the
// sandwich-heavy queries and asserts the rerouted run still matches the
// serial oracle byte for byte, with the query-side tracker balanced.
func TestRemoteFailoverMidQuery(t *testing.T) {
	b := benchmarkFixture(t)
	for _, qn := range []int{9, 13} {
		q := Query(qn)
		t.Run(q.Name, func(t *testing.T) {
			serial, _, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			srvs, addrs := startWorkers(t, 2, 2)
			victim := srvs[1]
			var killed atomic.Bool
			victim.OnUnitDone = func(total int64) {
				if total == 2 && !killed.Swap(true) {
					go victim.Close()
				}
			}
			remote, st, _, err := RunQueryOpts(b.DBs[plan.BDCC], q,
				RunOptions{Workers: 2, Remotes: addrs})
			if err != nil {
				t.Fatalf("%s with a worker killed mid-query failed instead of failing over: %v", q.Name, err)
			}
			assertSameResult(t, q.Name+" after mid-query worker kill", remote, serial)
			if !killed.Load() {
				t.Fatalf("%s: the victim worker completed %d units and was never killed — reroute unexercised",
					q.Name, victim.UnitsDone())
			}
			if st.Net.Runs == 0 {
				t.Fatalf("%s recorded no transport activity", q.Name)
			}
		})
	}
}
