package tpch

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/plan"
	"bdcc/internal/shard"
)

// startWorkers launches n in-process bdccworker servers on loopback TCP and
// returns them with their dialable addresses.
func startWorkers(t *testing.T, n, workers int) ([]*shard.Server, []string) {
	t.Helper()
	srvs := make([]*shard.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := shard.NewServer(workers)
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		srvs[i], addrs[i] = srv, l.Addr().String()
	}
	return srvs, addrs
}

// assertSameResult compares two results byte for byte: rows, order, and
// exact float bits.
func assertSameResult(t *testing.T, label string, got, want interface {
	Rows() int
	Row(int) []string
}) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s returns %d rows, baseline returns %d", label, got.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		if g, w := fmt.Sprint(got.Row(i)), fmt.Sprint(want.Row(i)); g != w {
			t.Fatalf("%s: row %d = %s, baseline has %s", label, i, g, w)
		}
	}
}

// TestRemoteEquivalence is the loopback-TCP leg of the scale-out oracle:
// every TPC-H query under every scheme, sharded over two real bdccworker
// servers dialed over TCP (plan fragments shipped at setup, every group and
// result batch crossing real sockets), must return byte-identical results
// to the serial single-box baseline — including exact float bits — under
// both placement policies.
func TestRemoteEquivalence(t *testing.T) {
	b := benchmarkFixture(t)
	srvs, addrs := startWorkers(t, 2, 2)
	for _, q := range Queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
				serial, _, _, err := RunQueryShards(b.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatalf("%s under %s serial: %v", q.Name, scheme, err)
				}
				remote, st, _, err := RunQueryOpts(b.DBs[scheme], q,
					RunOptions{Workers: 2, Remotes: addrs})
				if err != nil {
					t.Fatalf("%s under %s remotes: %v", q.Name, scheme, err)
				}
				label := fmt.Sprintf("%s under %s via TCP workers", q.Name, scheme)
				assertSameResult(t, label, remote, serial)
				for c := range serial.Cols {
					for i, v := range serial.Cols[c].F64 {
						if pv := remote.Cols[c].F64[i]; pv != v {
							t.Fatalf("%s: col %d row %d = %v, %v at baseline — floats must be bit-identical",
								label, c, i, pv, v)
						}
					}
				}
				if scheme != plan.BDCC && st.Net.Runs != 0 {
					t.Fatalf("%s under %s dialed workers but has no group streams to ship: %+v",
						q.Name, scheme, st.Net)
				}
				if scheme == plan.BDCC && st.Net.Runs > 0 {
					if len(st.Shard) != len(addrs) {
						t.Fatalf("%s: %d shard loads recorded for %d workers", q.Name, len(st.Shard), len(addrs))
					}
					// balance-by-size must reproduce the same bytes too.
					sized, _, _, err := RunQueryOpts(b.DBs[scheme], q,
						RunOptions{Workers: 2, Remotes: addrs, Balance: "size"})
					if err != nil {
						t.Fatalf("%s balance=size: %v", q.Name, err)
					}
					assertSameResult(t, label+" (balance=size)", sized, serial)
				}
			}
		})
	}
	var total int64
	for _, s := range srvs {
		total += s.UnitsDone()
	}
	if total == 0 {
		t.Fatal("no group unit ever reached a TCP worker — the remote path went unexercised")
	}
}

// TestRemoteReadmissionMidQuery is the recovery counterpart of
// TestRemoteFailoverMidQuery: the victim worker is killed after its second
// completed unit AND restarted on the same address while the query still
// runs, so the health prober re-admits it mid-query and it serves units
// again. Results must stay byte-identical to the serial oracle under every
// scheme; under BDCC (the only scheme that ships group streams) the run
// must additionally prove the re-admission through the health counters.
// The counter half is timing-sensitive — the query must outlive the
// restart — so that half retries a few times; equivalence is asserted on
// every attempt unconditionally.
func TestRemoteReadmissionMidQuery(t *testing.T) {
	b := benchmarkFixture(t)
	for _, qn := range []int{9, 13} {
		q := Query(qn)
		for _, scheme := range []plan.Scheme{plan.Plain, plan.PK, plan.BDCC} {
			scheme := scheme
			t.Run(fmt.Sprintf("%s/%s", q.Name, scheme), func(t *testing.T) {
				serial, _, _, err := RunQueryShards(b.DBs[scheme], q, 1, 1)
				if err != nil {
					t.Fatal(err)
				}
				if scheme != plan.BDCC {
					// No group streams to ship: the workers stay idle and the
					// kill/restart machinery has nothing to bite on — the run
					// must simply match.
					_, addrs := startWorkers(t, 2, 2)
					remote, _, _, err := RunQueryOpts(b.DBs[scheme], q,
						RunOptions{Workers: 2, Remotes: addrs})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, fmt.Sprintf("%s under %s", q.Name, scheme), remote, serial)
					return
				}
				for attempt := 1; ; attempt++ {
					if runReadmitScenario(t, b.DBs[scheme], q, serial) {
						return
					}
					if attempt == 3 {
						t.Fatalf("%s: no mid-query re-admission observed in %d attempts", q.Name, attempt)
					}
				}
			})
		}
	}
}

// runReadmitScenario runs one kill → restart → re-admit pass of q: two
// back-to-back runs of the query through one environment — one session,
// one backend set. Both workers are throttled so run 1 outlives the
// recovery window; the victim is killed after its first completed unit and
// immediately replaced by a fresh server on the same address, which the
// prober re-admits while the session lives. Run 2 then routes its units
// over the recovered set, proving the re-admitted worker serves units and
// the exclusion chain reset. Equivalence against serial is asserted for
// both runs unconditionally; the return value reports whether the victim
// was killed at all (the only timing-dependent part the caller retries).
func runReadmitScenario(t *testing.T, db *plan.DB, q QueryDef, serial *engine.Result) bool {
	t.Helper()
	srvs, addrs := startWorkers(t, 2, 2)
	srvs[0].OnUnitStart = func() { time.Sleep(5 * time.Millisecond) }
	victim, victimAddr := srvs[1], addrs[1]
	victim.OnUnitStart = func() { time.Sleep(5 * time.Millisecond) }
	restarted := make(chan *shard.Server, 1)
	t.Cleanup(func() {
		select {
		case srv := <-restarted:
			if srv != nil {
				srv.Close()
			}
		default:
		}
	})
	var killed atomic.Bool
	victim.OnUnitDone = func(total int64) {
		if total == 1 && !killed.Swap(true) {
			go func() {
				victim.Close()
				for deadline := time.Now().Add(5 * time.Second); ; {
					l, err := net.Listen("tcp", victimAddr)
					if err == nil {
						srv := shard.NewServer(2)
						go srv.Serve(l)
						restarted <- srv
						return
					}
					if time.Now().After(deadline) {
						restarted <- nil
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
		}
	}
	env := NewEnvOpts(db, RunOptions{
		Workers: 2, Remotes: addrs,
		ProbeBase: time.Millisecond, ProbeMax: 10 * time.Millisecond,
	})
	defer env.Close()
	runOnce := func(label string) {
		node, err := q.Build(env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.run(node)
		if err != nil {
			t.Fatalf("%s %s failed instead of recovering: %v", q.Name, label, err)
		}
		assertSameResult(t, q.Name+" "+label, res, serial)
	}
	runOnce("across the mid-query worker kill")
	if !killed.Load() {
		return false // the victim never completed a unit; retry the scenario
	}
	fresh := <-restarted
	if fresh == nil {
		t.Fatalf("%s: could not rebind %s for the restarted worker", q.Name, victimAddr)
	}
	defer fresh.Close()
	if h := env.Ctx.HealthStats()[1]; h.Downs < 1 {
		t.Fatalf("%s: victim killed mid-query but its slot records no down transition: %+v", q.Name, h)
	}
	// The session outlives the query: the prober keeps re-dialing until the
	// restarted worker answers.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if env.Ctx.HealthStats()[1].Readmits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: restarted worker never re-admitted: %+v", q.Name, env.Ctx.HealthStats()[1])
		}
		time.Sleep(2 * time.Millisecond)
	}
	runOnce("after re-admission")
	h := env.Ctx.HealthStats()[1]
	if h.State != "up" || h.ReadmitUnits < 1 {
		t.Fatalf("%s: re-admitted slot served no units: %+v", q.Name, h)
	}
	if fresh.UnitsDone() < 1 {
		t.Fatalf("%s: restarted worker completed %d units, want at least one", q.Name, fresh.UnitsDone())
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if cur := env.Ctx.Mem.Current(); cur != 0 {
		t.Fatalf("%s: %d bytes still on the query tracker after kill/restart/re-admit", q.Name, cur)
	}
	return true
}

// TestRemoteFailoverMidQuery kills one of two TCP workers mid-query —
// deterministically, after its second completed unit — on the
// sandwich-heavy queries and asserts the rerouted run still matches the
// serial oracle byte for byte, with the query-side tracker balanced.
func TestRemoteFailoverMidQuery(t *testing.T) {
	b := benchmarkFixture(t)
	for _, qn := range []int{9, 13} {
		q := Query(qn)
		t.Run(q.Name, func(t *testing.T) {
			serial, _, _, err := RunQueryShards(b.DBs[plan.BDCC], q, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			srvs, addrs := startWorkers(t, 2, 2)
			victim := srvs[1]
			var killed atomic.Bool
			victim.OnUnitDone = func(total int64) {
				if total == 2 && !killed.Swap(true) {
					go victim.Close()
				}
			}
			remote, st, _, err := RunQueryOpts(b.DBs[plan.BDCC], q,
				RunOptions{Workers: 2, Remotes: addrs})
			if err != nil {
				t.Fatalf("%s with a worker killed mid-query failed instead of failing over: %v", q.Name, err)
			}
			assertSameResult(t, q.Name+" after mid-query worker kill", remote, serial)
			if !killed.Load() {
				t.Fatalf("%s: the victim worker completed %d units and was never killed — reroute unexercised",
					q.Name, victim.UnitsDone())
			}
			if st.Net.Runs == 0 {
				t.Fatalf("%s recorded no transport activity", q.Name)
			}
		})
	}
}
