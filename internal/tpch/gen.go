package tpch

import (
	"fmt"
	"math/rand"

	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Static value pools from the TPC-H specification (subset sufficient for the
// 22 queries' predicates).
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

	// nations maps n_nationkey to (name, regionkey), per the spec's fixed
	// nation table.
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	nationRegions = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	// colors is a subset of the spec's P_NAME word pool; it includes the
	// words Q9 ("green") and Q20 ("forest") select on.
	colors = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
		"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
		"magenta", "maroon", "medium", "metallic", "midnight", "mint",
		"misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
		"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
		"spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
		"wheat", "white", "yellow",
	}

	commentWords = []string{
		"carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
		"regular", "express", "bold", "final", "pending", "silent", "even",
		"special", "unusual", "packages", "deposits", "requests", "accounts",
		"instructions", "theodolites", "pinto", "beans", "foxes", "ideas",
		"dependencies", "platelets", "excuses", "asymptotes", "courts",
		"sleep", "wake", "haggle", "nag", "cajole", "boost", "detect",
		"integrate", "use", "among", "across", "above", "the",
	}
)

// Dataset is a generated TPC-H database.
type Dataset struct {
	SF     float64
	Tables map[string]*storage.Table
}

// Generate produces a deterministic TPC-H dataset at the given scale factor
// with the paper's 32 KB page geometry. Key distributional properties the
// reproduction depends on are preserved from the specification:
//
//   - o_orderdate uniform in [1992-01-01, 1998-08-02] — uncorrelated with
//     orderkey, so insertion order gives the Plain scheme no date locality;
//   - l_shipdate = o_orderdate + U[1,121] — the orderdate/shipdate
//     correlation that lets MinMax indexes prune shipdate predicates once
//     BDCC clusters on D_DATE (the paper's Q6/Q12/Q20 effect);
//   - one third of customers place no orders (Q22's target population);
//   - c_phone country code = 10 + nationkey (Q22's substring predicate);
//   - a small fraction of o_comment match '%special%requests%' (Q13) and of
//     s_comment match '%Customer%Complaints%' (Q16).
func Generate(sf float64) *Dataset {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: scale factor %v must be positive", sf))
	}
	// The paper stores 100 GB TPC-H on 32 KB pages; reproduction datasets
	// are ~1000× smaller, so 4 KB logical pages keep the group-bytes-per-
	// page geometry of Algorithm 1's AR sizing comparable (see DESIGN.md).
	const pageSize = 4 << 10
	d := &Dataset{SF: sf, Tables: make(map[string]*storage.Table)}

	nSupp := scaled(10_000, sf)
	nPart := scaled(200_000, sf)
	nCust := scaled(150_000, sf)
	nOrd := scaled(1_500_000, sf)

	d.Tables["region"] = genRegion(pageSize)
	d.Tables["nation"] = genNation(pageSize)
	d.Tables["supplier"] = genSupplier(pageSize, nSupp)
	part, retail := genPart(pageSize, nPart)
	d.Tables["part"] = part
	d.Tables["partsupp"] = genPartsupp(pageSize, nPart, nSupp)
	d.Tables["customer"] = genCustomer(pageSize, nCust)
	orders, lineitem := genOrdersLineitem(pageSize, nOrd, nCust, nPart, nSupp, retail)
	d.Tables["orders"] = orders
	d.Tables["lineitem"] = lineitem
	return d
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// comment builds a pseudo-random comment; with probability injectProb the
// two pattern words are planted with a gap, so '%w1%w2%' LIKE predicates
// match a controlled fraction of rows.
func comment(rng *rand.Rand, words int, injectProb float64, w1, w2 string) string {
	out := make([]byte, 0, 64)
	inject := injectProb > 0 && rng.Float64() < injectProb
	at := -1
	if inject {
		at = rng.Intn(words - 1)
	}
	for i := 0; i < words; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		switch {
		case inject && i == at:
			out = append(out, w1...)
		case inject && i == at+1:
			out = append(out, w2...)
		default:
			out = append(out, commentWords[rng.Intn(len(commentWords))]...)
		}
	}
	return string(out)
}

func genRegion(pageSize int64) *storage.Table {
	rng := rand.New(rand.NewSource(101))
	n := len(regionNames)
	key := make([]int64, n)
	name := make([]string, n)
	com := make([]string, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		name[i] = regionNames[i]
		com[i] = comment(rng, 6, 0, "", "")
	}
	return storage.MustNewTable("region", pageSize,
		storage.NewInt64Column("r_regionkey", key),
		storage.NewStringColumn("r_name", name),
		storage.NewStringColumn("r_comment", com))
}

func genNation(pageSize int64) *storage.Table {
	rng := rand.New(rand.NewSource(102))
	n := len(nationNames)
	key := make([]int64, n)
	name := make([]string, n)
	region := make([]int64, n)
	com := make([]string, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		name[i] = nationNames[i]
		region[i] = nationRegions[i]
		com[i] = comment(rng, 8, 0, "", "")
	}
	return storage.MustNewTable("nation", pageSize,
		storage.NewInt64Column("n_nationkey", key),
		storage.NewStringColumn("n_name", name),
		storage.NewInt64Column("n_regionkey", region),
		storage.NewStringColumn("n_comment", com))
}

func genSupplier(pageSize int64, n int) *storage.Table {
	rng := rand.New(rand.NewSource(103))
	key := make([]int64, n)
	name := make([]string, n)
	addr := make([]string, n)
	nation := make([]int64, n)
	phone := make([]string, n)
	bal := make([]float64, n)
	com := make([]string, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		key[i] = k
		name[i] = fmt.Sprintf("Supplier#%09d", k)
		addr[i] = fmt.Sprintf("addr s%d %s", k, commentWords[rng.Intn(len(commentWords))])
		nk := rng.Int63n(25)
		nation[i] = nk
		phone[i] = genPhone(rng, nk)
		bal[i] = float64(rng.Intn(1100000)-100000) / 100
		// The spec plants "Customer ... Complaints" in 5 of 10000 suppliers.
		com[i] = comment(rng, 10, 0.0005, "Customer", "Complaints")
	}
	return storage.MustNewTable("supplier", pageSize,
		storage.NewInt64Column("s_suppkey", key),
		storage.NewStringColumn("s_name", name),
		storage.NewStringColumn("s_address", addr),
		storage.NewInt64Column("s_nationkey", nation),
		storage.NewStringColumn("s_phone", phone),
		storage.NewFloat64Column("s_acctbal", bal),
		storage.NewStringColumn("s_comment", com))
}

func genPhone(rng *rand.Rand, nationkey int64) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nationkey,
		100+rng.Intn(900), 100+rng.Intn(900), 1000+rng.Intn(9000))
}

// genPart returns the part table and p_retailprice by part index (needed to
// derive l_extendedprice).
func genPart(pageSize int64, n int) (*storage.Table, []float64) {
	rng := rand.New(rand.NewSource(104))
	key := make([]int64, n)
	name := make([]string, n)
	mfgr := make([]string, n)
	brand := make([]string, n)
	ptype := make([]string, n)
	size := make([]int64, n)
	container := make([]string, n)
	retail := make([]float64, n)
	com := make([]string, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		key[i] = k
		// Five distinct color words, as in the spec's P_NAME.
		perm := rng.Perm(len(colors))[:5]
		nm := ""
		for j, ci := range perm {
			if j > 0 {
				nm += " "
			}
			nm += colors[ci]
		}
		name[i] = nm
		m := 1 + rng.Intn(5)
		mfgr[i] = fmt.Sprintf("Manufacturer#%d", m)
		brand[i] = fmt.Sprintf("Brand#%d%d", m, 1+rng.Intn(5))
		ptype[i] = typeSyl1[rng.Intn(6)] + " " + typeSyl2[rng.Intn(5)] + " " + typeSyl3[rng.Intn(5)]
		size[i] = int64(1 + rng.Intn(50))
		container[i] = containerSyl1[rng.Intn(5)] + " " + containerSyl2[rng.Intn(8)]
		retail[i] = float64(90000+((k/10)%20001)+100*(k%1000)) / 100
		com[i] = comment(rng, 4, 0, "", "")
	}
	t := storage.MustNewTable("part", pageSize,
		storage.NewInt64Column("p_partkey", key),
		storage.NewStringColumn("p_name", name),
		storage.NewStringColumn("p_mfgr", mfgr),
		storage.NewStringColumn("p_brand", brand),
		storage.NewStringColumn("p_type", ptype),
		storage.NewInt64Column("p_size", size),
		storage.NewStringColumn("p_container", container),
		storage.NewFloat64Column("p_retailprice", retail),
		storage.NewStringColumn("p_comment", com))
	return t, retail
}

// psSupplierFor reproduces the spec's supplier assignment: the i-th (0..3)
// supplier of part p among s suppliers.
func psSupplierFor(p int64, i int, s int64) int64 {
	return (p+int64(i)*(s/4+(p-1)/s))%s + 1
}

func genPartsupp(pageSize int64, nPart, nSupp int) *storage.Table {
	rng := rand.New(rand.NewSource(105))
	n := nPart * 4
	pk := make([]int64, 0, n)
	sk := make([]int64, 0, n)
	avail := make([]int64, 0, n)
	cost := make([]float64, 0, n)
	com := make([]string, 0, n)
	for p := int64(1); p <= int64(nPart); p++ {
		for i := 0; i < 4; i++ {
			pk = append(pk, p)
			sk = append(sk, psSupplierFor(p, i, int64(nSupp)))
			avail = append(avail, int64(1+rng.Intn(9999)))
			cost = append(cost, float64(100+rng.Intn(99901))/100)
			com = append(com, comment(rng, 12, 0, "", ""))
		}
	}
	return storage.MustNewTable("partsupp", pageSize,
		storage.NewInt64Column("ps_partkey", pk),
		storage.NewInt64Column("ps_suppkey", sk),
		storage.NewInt64Column("ps_availqty", avail),
		storage.NewFloat64Column("ps_supplycost", cost),
		storage.NewStringColumn("ps_comment", com))
}

func genCustomer(pageSize int64, n int) *storage.Table {
	rng := rand.New(rand.NewSource(106))
	key := make([]int64, n)
	name := make([]string, n)
	addr := make([]string, n)
	nation := make([]int64, n)
	phone := make([]string, n)
	bal := make([]float64, n)
	seg := make([]string, n)
	com := make([]string, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		key[i] = k
		name[i] = fmt.Sprintf("Customer#%09d", k)
		addr[i] = fmt.Sprintf("addr c%d", k)
		nk := rng.Int63n(25)
		nation[i] = nk
		phone[i] = genPhone(rng, nk)
		bal[i] = float64(rng.Intn(1100000)-100000) / 100
		seg[i] = segments[rng.Intn(len(segments))]
		com[i] = comment(rng, 10, 0, "", "")
	}
	return storage.MustNewTable("customer", pageSize,
		storage.NewInt64Column("c_custkey", key),
		storage.NewStringColumn("c_name", name),
		storage.NewStringColumn("c_address", addr),
		storage.NewInt64Column("c_nationkey", nation),
		storage.NewStringColumn("c_phone", phone),
		storage.NewFloat64Column("c_acctbal", bal),
		storage.NewStringColumn("c_mktsegment", seg),
		storage.NewStringColumn("c_comment", com))
}

func genOrdersLineitem(pageSize int64, nOrd, nCust, nPart, nSupp int, retail []float64) (*storage.Table, *storage.Table) {
	rng := rand.New(rand.NewSource(107))
	dateLo := vector.ParseDate("1992-01-01")
	dateHi := vector.ParseDate("1998-08-02")
	statusCut := vector.ParseDate("1995-06-17")

	oKey := make([]int64, nOrd)
	oCust := make([]int64, nOrd)
	oStatus := make([]string, nOrd)
	oTotal := make([]float64, nOrd)
	oDate := make([]int64, nOrd)
	oPrio := make([]string, nOrd)
	oClerk := make([]string, nOrd)
	oShipPrio := make([]int64, nOrd)
	oCom := make([]string, nOrd)

	var lOrd, lPart, lSupp, lNum []int64
	var lQty, lExt, lDisc, lTax []float64
	var lRet, lStat []string
	var lShip, lCommit, lRcpt []int64
	var lInstr, lMode, lCom []string

	for i := 0; i < nOrd; i++ {
		ok := int64(i + 1)
		oKey[i] = ok
		// A third of customers place no orders (custkey % 3 == 0 skipped).
		var ck int64
		for {
			ck = 1 + rng.Int63n(int64(nCust))
			if ck%3 != 0 || nCust < 3 {
				break
			}
		}
		oCust[i] = ck
		od := dateLo + rng.Int63n(dateHi-dateLo+1)
		oDate[i] = od
		oPrio[i] = priorities[rng.Intn(5)]
		oClerk[i] = fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))
		oShipPrio[i] = 0
		// The spec plants "special ... requests" so Q13 excludes a small
		// fraction of orders.
		oCom[i] = comment(rng, 8, 0.02, "special", "requests")

		items := 1 + rng.Intn(7)
		var total float64
		allF, allO := true, true
		for ln := 1; ln <= items; ln++ {
			pk := 1 + rng.Int63n(int64(nPart))
			si := rng.Intn(4)
			sk := psSupplierFor(pk, si, int64(nSupp))
			qty := float64(1 + rng.Intn(50))
			ext := qty * retail[pk-1]
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := od + 1 + rng.Int63n(121)
			commit := od + 30 + rng.Int63n(61)
			rcpt := ship + 1 + rng.Int63n(30)
			rf := "N"
			if rcpt <= statusCut {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "F"
			if ship > statusCut {
				ls = "O"
			}
			if ls == "F" {
				allO = false
			} else {
				allF = false
			}
			lOrd = append(lOrd, ok)
			lPart = append(lPart, pk)
			lSupp = append(lSupp, sk)
			lNum = append(lNum, int64(ln))
			lQty = append(lQty, qty)
			lExt = append(lExt, ext)
			lDisc = append(lDisc, disc)
			lTax = append(lTax, tax)
			lRet = append(lRet, rf)
			lStat = append(lStat, ls)
			lShip = append(lShip, ship)
			lCommit = append(lCommit, commit)
			lRcpt = append(lRcpt, rcpt)
			lInstr = append(lInstr, instructs[rng.Intn(4)])
			lMode = append(lMode, shipModes[rng.Intn(7)])
			lCom = append(lCom, comment(rng, 5, 0, "", ""))
			total += ext * (1 + tax) * (1 - disc)
		}
		switch {
		case allF:
			oStatus[i] = "F"
		case allO:
			oStatus[i] = "O"
		default:
			oStatus[i] = "P"
		}
		oTotal[i] = total
	}

	orders := storage.MustNewTable("orders", pageSize,
		storage.NewInt64Column("o_orderkey", oKey),
		storage.NewInt64Column("o_custkey", oCust),
		storage.NewStringColumn("o_orderstatus", oStatus),
		storage.NewFloat64Column("o_totalprice", oTotal),
		storage.NewInt64Column("o_orderdate", oDate),
		storage.NewStringColumn("o_orderpriority", oPrio),
		storage.NewStringColumn("o_clerk", oClerk),
		storage.NewInt64Column("o_shippriority", oShipPrio),
		storage.NewStringColumn("o_comment", oCom))
	lineitem := storage.MustNewTable("lineitem", pageSize,
		storage.NewInt64Column("l_orderkey", lOrd),
		storage.NewInt64Column("l_partkey", lPart),
		storage.NewInt64Column("l_suppkey", lSupp),
		storage.NewInt64Column("l_linenumber", lNum),
		storage.NewFloat64Column("l_quantity", lQty),
		storage.NewFloat64Column("l_extendedprice", lExt),
		storage.NewFloat64Column("l_discount", lDisc),
		storage.NewFloat64Column("l_tax", lTax),
		storage.NewStringColumn("l_returnflag", lRet),
		storage.NewStringColumn("l_linestatus", lStat),
		storage.NewInt64Column("l_shipdate", lShip),
		storage.NewInt64Column("l_commitdate", lCommit),
		storage.NewInt64Column("l_receiptdate", lRcpt),
		storage.NewStringColumn("l_shipinstruct", lInstr),
		storage.NewStringColumn("l_shipmode", lMode),
		storage.NewStringColumn("l_comment", lCom))
	return orders, lineitem
}
