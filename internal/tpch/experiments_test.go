package tpch

import (
	"strings"
	"sync"
	"testing"

	"bdcc/internal/plan"
)

// The shape tests run the full grid once per binary.
var (
	repOnce sync.Once
	rep     *Report
	repErr  error
)

func reportFixture(t *testing.T) *Report {
	t.Helper()
	b := benchmarkFixture(t)
	repOnce.Do(func() {
		rep, repErr = b.RunAll()
	})
	if repErr != nil {
		t.Fatalf("RunAll: %v", repErr)
	}
	return rep
}

// TestFig3MemoryShape asserts the paper's Figure 3 claims hold in shape:
// BDCC needs several times less memory than Plain on average and at the
// peak, and is also more memory efficient than PK.
func TestFig3MemoryShape(t *testing.T) {
	r := reportFixture(t)
	avg := func(s plan.Scheme) float64 { return r.Totals(s, PeakMB) / float64(len(Queries)) }
	peak := func(s plan.Scheme) float64 {
		m := 0.0
		for _, run := range r.Runs[s] {
			if v := PeakMB(run.Stats); v > m {
				m = v
			}
		}
		return m
	}
	if a, b := avg(plan.BDCC), avg(plan.Plain); a >= b/2 {
		t.Errorf("avg memory: bdcc %.3f MB vs plain %.3f MB — want at least 2x reduction (paper: ~17x at SF100)", a, b)
	}
	if a, b := avg(plan.BDCC), avg(plan.PK); a >= b {
		t.Errorf("avg memory: bdcc %.3f MB vs pk %.3f MB — want bdcc below pk (paper: 6x)", a, b)
	}
	if a, b := peak(plan.BDCC), peak(plan.Plain); a >= b/2 {
		t.Errorf("peak memory: bdcc %.3f MB vs plain %.3f MB — want at least 2x reduction (paper: ~29x at SF100)", a, b)
	}
}

// TestFig2IOShape asserts the Figure 2 direction on the modeled device time:
// BDCC reads substantially less than Plain over the full query set, and the
// per-query pattern follows the paper's detailed analysis.
func TestFig2IOShape(t *testing.T) {
	r := reportFixture(t)
	if a, b := r.Totals(plan.BDCC, IOSeconds), r.Totals(plan.Plain, IOSeconds); a >= b*0.8 {
		t.Errorf("total device time: bdcc %.4fs vs plain %.4fs — want a clear reduction", a, b)
	}
	// Per-query expectations from the paper's Section IV detailed analysis.
	idx := func(name string) int {
		for i, q := range Queries {
			if q.Name == name {
				return i
			}
		}
		t.Fatalf("unknown query %s", name)
		return -1
	}
	bytes := func(s plan.Scheme, q string) float64 {
		return float64(r.Runs[s][idx(q)].Stats.IO.Bytes)
	}
	// Selection pushdown / propagation queries must read much less.
	for _, q := range []string{"Q03", "Q05", "Q07", "Q08", "Q10", "Q11", "Q14", "Q15", "Q20"} {
		if b, p := bytes(plan.BDCC, q), bytes(plan.Plain, q); b >= 0.7*p {
			t.Errorf("%s: bdcc reads %.1f MB vs plain %.1f MB — paper lists it as pushdown-accelerated",
				q, b/(1<<20), p/(1<<20))
		}
	}
	// MinMax-correlation queries (shipdate via orderdate locality).
	for _, q := range []string{"Q06", "Q12"} {
		if b, p := bytes(plan.BDCC, q), bytes(plan.Plain, q); b >= 0.9*p {
			t.Errorf("%s: bdcc reads %.1f MB vs plain %.1f MB — paper credits MinMax correlation", q, b/(1<<20), p/(1<<20))
		}
	}
	// Q1 is a ~97% scan: no scheme should read materially less.
	if b, p := bytes(plan.BDCC, "Q01"), bytes(plan.Plain, "Q01"); b < 0.9*p {
		t.Errorf("Q01: bdcc reads %.1f MB vs plain %.1f MB — paper says Q1 cannot be accelerated by indexing", b/(1<<20), p/(1<<20))
	}
}

// TestDetailedAnalysisPlans asserts the planner decisions behind the paper's
// per-query attribution: sandwich joins on the sandwich-credited queries,
// merge joins under PK, the streaming aggregate for PK Q18, and the Q13
// sandwich on the never-mentioned customer nation dimension.
func TestDetailedAnalysisPlans(t *testing.T) {
	r := reportFixture(t)
	explainHas := func(scheme plan.Scheme, q, want string) bool {
		for _, line := range r.Explain[scheme.String()+"/"+q] {
			if strings.Contains(line, want) {
				return true
			}
		}
		return false
	}
	// Q9 and Q13: "BDCC acceleration strictly comes from sandwiched
	// execution of joins".
	for _, q := range []string{"Q09", "Q13"} {
		if !explainHas(plan.BDCC, q, "sandwich hash join") {
			t.Errorf("%s under bdcc: no sandwich join placed", q)
		}
	}
	// Q13's sandwich aligns on the nation dimension although the query never
	// references NATION.
	if !explainHas(plan.BDCC, "Q13", "sandwich hash join on d_nation") {
		t.Error("Q13: sandwich not aligned on d_nation (the paper's implied-dimension example)")
	}
	// Q18: sandwiched aggregation of LINEITEM on l_orderkey under BDCC...
	if !explainHas(plan.BDCC, "Q18", "sandwich aggregation") {
		t.Error("Q18 under bdcc: no sandwich aggregation")
	}
	// ...and the unbeatable streaming aggregate under PK.
	if !explainHas(plan.PK, "Q18", "streaming aggregation") {
		t.Error("Q18 under pk: no streaming aggregation")
	}
	// PK gets its LINEITEM⋈ORDERS and PART⋈PARTSUPP merge joins.
	if !explainHas(plan.PK, "Q03", "merge join on l_orderkey = o_orderkey") {
		t.Error("Q03 under pk: LINEITEM-ORDERS not merge joined")
	}
	if !explainHas(plan.PK, "Q16", "merge join") {
		t.Error("Q16 under pk: PARTSUPP-PART not merge joined")
	}
	// Selection propagation reaches LINEITEM for the region query Q5.
	if !explainHas(plan.BDCC, "Q05", "scan lineitem: bdcc pushdown") {
		t.Error("Q05 under bdcc: no count-table pushdown on lineitem")
	}
}

// TestSandwichMemoryEffect isolates the paper's central memory claim on
// Q13: the per-group build of the sandwiched join must stay far below the
// full CUSTOMER materialization the PK scheme pays.
func TestSandwichMemoryEffect(t *testing.T) {
	r := reportFixture(t)
	var q13 int
	for i, q := range Queries {
		if q.Name == "Q13" {
			q13 = i
		}
	}
	b := r.Runs[plan.BDCC][q13].Stats.PeakMem
	p := r.Runs[plan.PK][q13].Stats.PeakMem
	if b*2 >= p {
		t.Errorf("Q13 peak memory: bdcc %d vs pk %d — want at least 2x reduction (paper: 'strongly reduces memory')", b, p)
	}
}

// TestOrderingComparison reproduces the "Other Orderings" experiment shape:
// the automatic Z-order setup and the hand-tuned major-minor setup are
// comparable (within 2x on device time; the paper measures 284 s vs 291 s).
func TestOrderingComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering comparison builds a second BDCC database")
	}
	oc, err := RunOrderingComparison(0.01)
	if err != nil {
		t.Fatalf("RunOrderingComparison: %v", err)
	}
	ratio := oc.ZOrderIO.Seconds() / oc.MajorIO.Seconds()
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("z-order/major-minor device time ratio %.2f — paper finds the runs comparable", ratio)
	}
}
