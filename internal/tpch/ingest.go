package tpch

import (
	"fmt"
	"math/rand"

	"bdcc/internal/plan"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// DeltaBatch is one arrival batch: freshly placed orders and their lineitems,
// in insertion order. Orders must be appended before lineitems so the
// lineitems' foreign keys resolve over base + visible delta.
type DeltaBatch struct {
	Orders   *storage.Table
	Lineitem *storage.Table
}

// DeltaGen generates arrival batches continuing a dataset's order-key space
// with the base generator's distributions (customer skip rule, item counts,
// price/discount/date derivations, status cut). Order dates split between
// the historical window and the period after it — the realistic mix of
// backfill and fresh traffic. Fresh dates fall outside every d_date bin the
// design observed at load, so they exercise BinOf's clamping and are what the
// drift detector fires on.
type DeltaGen struct {
	// Backfill is the fraction of generated orders dated inside the
	// historical window (default 0.5). 1 keeps arrivals in-distribution;
	// 0 makes every arrival post-window, the fastest way to drift.
	Backfill float64

	rng     *rand.Rand
	nextKey int64
	nCust   int
	nPart   int
	nSupp   int
	retail  []float64
}

// NewDeltaGen returns a generator whose first order key continues after the
// dataset's. Different seeds give independent arrival streams.
func NewDeltaGen(d *Dataset, seed int64) *DeltaGen {
	orders := d.Tables["orders"]
	var maxKey int64
	for _, k := range orders.MustColumn("o_orderkey").I64 {
		if k > maxKey {
			maxKey = k
		}
	}
	return &DeltaGen{
		Backfill: 0.5,
		rng:      rand.New(rand.NewSource(seed)),
		nextKey:  maxKey + 1,
		nCust:    d.Tables["customer"].Rows(),
		nPart:    d.Tables["part"].Rows(),
		nSupp:    d.Tables["supplier"].Rows(),
		retail:   d.Tables["part"].MustColumn("p_retailprice").F64,
	}
}

// Next generates the next nOrders arrivals.
func (g *DeltaGen) Next(nOrders int) *DeltaBatch {
	rng := g.rng
	dateLo := vector.ParseDate("1992-01-01")
	dateHi := vector.ParseDate("1998-08-02")
	freshHi := vector.ParseDate("1999-06-01")
	statusCut := vector.ParseDate("1995-06-17")
	pageSize := int64(4 << 10)

	oKey := make([]int64, nOrders)
	oCust := make([]int64, nOrders)
	oStatus := make([]string, nOrders)
	oTotal := make([]float64, nOrders)
	oDate := make([]int64, nOrders)
	oPrio := make([]string, nOrders)
	oClerk := make([]string, nOrders)
	oShipPrio := make([]int64, nOrders)
	oCom := make([]string, nOrders)

	var lOrd, lPart, lSupp, lNum []int64
	var lQty, lExt, lDisc, lTax []float64
	var lRet, lStat []string
	var lShip, lCommit, lRcpt []int64
	var lInstr, lMode, lCom []string

	for i := 0; i < nOrders; i++ {
		ok := g.nextKey
		g.nextKey++
		oKey[i] = ok
		var ck int64
		for {
			ck = 1 + rng.Int63n(int64(g.nCust))
			if ck%3 != 0 || g.nCust < 3 {
				break
			}
		}
		oCust[i] = ck
		var od int64
		if rng.Float64() < g.Backfill {
			od = dateLo + rng.Int63n(dateHi-dateLo+1)
		} else {
			od = dateHi + 1 + rng.Int63n(freshHi-dateHi)
		}
		oDate[i] = od
		oPrio[i] = priorities[rng.Intn(5)]
		oClerk[i] = fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))
		oShipPrio[i] = 0
		oCom[i] = comment(rng, 8, 0.02, "special", "requests")

		items := 1 + rng.Intn(7)
		var total float64
		allF, allO := true, true
		for ln := 1; ln <= items; ln++ {
			pk := 1 + rng.Int63n(int64(g.nPart))
			si := rng.Intn(4)
			sk := psSupplierFor(pk, si, int64(g.nSupp))
			qty := float64(1 + rng.Intn(50))
			ext := qty * g.retail[pk-1]
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := od + 1 + rng.Int63n(121)
			commit := od + 30 + rng.Int63n(61)
			rcpt := ship + 1 + rng.Int63n(30)
			rf := "N"
			if rcpt <= statusCut {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "F"
			if ship > statusCut {
				ls = "O"
			}
			if ls == "F" {
				allO = false
			} else {
				allF = false
			}
			lOrd = append(lOrd, ok)
			lPart = append(lPart, pk)
			lSupp = append(lSupp, sk)
			lNum = append(lNum, int64(ln))
			lQty = append(lQty, qty)
			lExt = append(lExt, ext)
			lDisc = append(lDisc, disc)
			lTax = append(lTax, tax)
			lRet = append(lRet, rf)
			lStat = append(lStat, ls)
			lShip = append(lShip, ship)
			lCommit = append(lCommit, commit)
			lRcpt = append(lRcpt, rcpt)
			lInstr = append(lInstr, instructs[rng.Intn(4)])
			lMode = append(lMode, shipModes[rng.Intn(7)])
			lCom = append(lCom, comment(rng, 5, 0, "", ""))
			total += ext * (1 + tax) * (1 - disc)
		}
		switch {
		case allF:
			oStatus[i] = "F"
		case allO:
			oStatus[i] = "O"
		default:
			oStatus[i] = "P"
		}
		oTotal[i] = total
	}

	orders := storage.MustNewTable("orders", pageSize,
		storage.NewInt64Column("o_orderkey", oKey),
		storage.NewInt64Column("o_custkey", oCust),
		storage.NewStringColumn("o_orderstatus", oStatus),
		storage.NewFloat64Column("o_totalprice", oTotal),
		storage.NewInt64Column("o_orderdate", oDate),
		storage.NewStringColumn("o_orderpriority", oPrio),
		storage.NewStringColumn("o_clerk", oClerk),
		storage.NewInt64Column("o_shippriority", oShipPrio),
		storage.NewStringColumn("o_comment", oCom))
	lineitem := storage.MustNewTable("lineitem", pageSize,
		storage.NewInt64Column("l_orderkey", lOrd),
		storage.NewInt64Column("l_partkey", lPart),
		storage.NewInt64Column("l_suppkey", lSupp),
		storage.NewInt64Column("l_linenumber", lNum),
		storage.NewFloat64Column("l_quantity", lQty),
		storage.NewFloat64Column("l_extendedprice", lExt),
		storage.NewFloat64Column("l_discount", lDisc),
		storage.NewFloat64Column("l_tax", lTax),
		storage.NewStringColumn("l_returnflag", lRet),
		storage.NewStringColumn("l_linestatus", lStat),
		storage.NewInt64Column("l_shipdate", lShip),
		storage.NewInt64Column("l_commitdate", lCommit),
		storage.NewInt64Column("l_receiptdate", lRcpt),
		storage.NewStringColumn("l_shipinstruct", lInstr),
		storage.NewStringColumn("l_shipmode", lMode),
		storage.NewStringColumn("l_comment", lCom))
	return &DeltaBatch{Orders: orders, Lineitem: lineitem}
}

// EnableIngest attaches delta stores to every materialized scheme with the
// same bound and drift trigger, so the three schemes see identical arrival
// streams.
func (b *Benchmark) EnableIngest(limit int, driftThreshold float64) error {
	for s, db := range b.DBs {
		opt := plan.IngestOptions{Limit: limit, DriftThreshold: driftThreshold}
		if s == plan.PK {
			opt.Raw = b.Data.Tables
		}
		if _, err := db.EnableIngest(opt); err != nil {
			return err
		}
	}
	return nil
}

// appendTo ingests one arrival batch into a single database, parents first.
func appendTo(db *plan.DB, batch *DeltaBatch) error {
	ing := db.Ingest()
	if ing == nil {
		return fmt.Errorf("tpch: ingest not enabled on %s", db.Scheme)
	}
	if err := ing.Append("orders", batch.Orders); err != nil {
		return fmt.Errorf("tpch: append orders (%s): %w", db.Scheme, err)
	}
	if err := ing.Append("lineitem", batch.Lineitem); err != nil {
		return fmt.Errorf("tpch: append lineitem (%s): %w", db.Scheme, err)
	}
	return nil
}

// AppendBatch ingests one arrival batch into every scheme, parents first.
func (b *Benchmark) AppendBatch(batch *DeltaBatch) error {
	for _, db := range b.DBs {
		if err := appendTo(db, batch); err != nil {
			return err
		}
	}
	return nil
}

// MergeAll drains background merges and consolidates any remaining delta in
// every scheme.
func (b *Benchmark) MergeAll() error {
	for s, db := range b.DBs {
		ing := db.Ingest()
		if ing == nil {
			continue
		}
		ing.Wait()
		if err := ing.Merge(); err != nil {
			return fmt.Errorf("tpch: merge (%s): %w", s, err)
		}
	}
	return nil
}

// WaitIngest drains background merges on every scheme without forcing one.
func (b *Benchmark) WaitIngest() {
	for _, db := range b.DBs {
		if ing := db.Ingest(); ing != nil {
			ing.Wait()
		}
	}
}

// IngestStats sums the per-scheme ingest counters. Appends go to every
// scheme, so rates are per scheme (the summary divides where needed).
func (b *Benchmark) IngestStats() map[plan.Scheme]plan.IngestStats {
	out := make(map[plan.Scheme]plan.IngestStats, len(b.DBs))
	for s, db := range b.DBs {
		if ing := db.Ingest(); ing != nil {
			out[s] = ing.Stats()
		}
	}
	return out
}
