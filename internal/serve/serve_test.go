package serve

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// stubResult builds a small multi-kind result whose values depend on the
// query name, so round-trips are checkable.
func stubResult(query string) *engine.Result {
	n := len(query)
	return &engine.Result{
		Schema: expr.Schema{
			{Name: "id", Kind: vector.Int64},
			{Name: "weight", Kind: vector.Float64},
			{Name: "tag", Kind: vector.String},
		},
		Cols: []*vector.Vector{
			{Kind: vector.Int64, I64: []int64{int64(n), int64(n) * 2}},
			{Kind: vector.Float64, F64: []float64{0.1 * float64(n), -3.75}},
			{Kind: vector.String, Str: []string{query, "x"}},
		},
	}
}

// startServer brings a daemon up on a loopback listener with a stub handler:
// queries named "block" park until release is closed; "fail" errors;
// "hungry" grows the query tracker past any test budget.
func startServer(t *testing.T, cfg Config) (*Server, string, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	if cfg.NewContext == nil {
		cfg.NewContext = func() *engine.Context { return engine.NewContext(iosim.PaperSSD()) }
	}
	if cfg.Handler == nil {
		cfg.Handler = func(ctx *engine.Context, scheme, query string) (*engine.Result, error) {
			switch {
			case query == "fail":
				return nil, errors.New("synthetic failure")
			case query == "hungry":
				ctx.Mem.Grow(1 << 20)
				defer ctx.Mem.Shrink(1 << 20)
				if err := ctx.Mem.Err(); err != nil {
					return nil, err
				}
				return stubResult(query), nil
			case strings.HasPrefix(query, "block"):
				<-release
			}
			return stubResult(query), nil
		}
	}
	s := NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String(), release
}

func TestQueryRoundTrip(t *testing.T) {
	_, addr, _ := startServer(t, Config{Pools: 2})
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Pools() != 2 {
		t.Errorf("announced pools = %d, want 2", c.Pools())
	}
	res, err := c.Query("BDCC", "Q7")
	if err != nil {
		t.Fatal(err)
	}
	want := stubResult("Q7")
	if fmt.Sprint(res.Schema) != fmt.Sprint(want.Schema) {
		t.Errorf("schema = %v, want %v", res.Schema, want.Schema)
	}
	if res.Rows() != want.Rows() {
		t.Fatalf("rows = %d, want %d", res.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		if fmt.Sprint(res.Row(i)) != fmt.Sprint(want.Row(i)) {
			t.Errorf("row %d = %v, want %v", i, res.Row(i), want.Row(i))
		}
	}
	if _, err := c.Query("BDCC", "fail"); err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("failed query returned %v, want the handler's error text", err)
	}
}

// TestAdmissionControl pins the gate: with one pool and a one-deep queue,
// one query runs, one queues, and the third is rejected immediately.
func TestAdmissionControl(t *testing.T) {
	s, addr, release := startServer(t, Config{Pools: 1, QueueCap: 1, QueueWait: time.Minute})
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Query("BDCC", fmt.Sprintf("block%d", i))
			results <- err
		}(i)
	}
	// Wait until one runs and one waits in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Active == 1 && st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 1 active + 1 queued; stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: the third arrival must be rejected, typed as such.
	if _, err := c.Query("BDCC", "third"); !errors.Is(err, ErrRejected) {
		t.Fatalf("third query returned %v, want ErrRejected", err)
	}
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("blocked query failed after release: %v", err)
		}
	}
	st := s.Stats()
	if st.Admitted != 2 || st.Rejected != 1 || st.QueuedTotal != 1 || st.Done != 2 {
		t.Errorf("stats = %+v, want admitted 2, rejected 1, queued_total 1, done 2", st)
	}

	// And the same counters over the wire.
	wire, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if wire != st {
		t.Errorf("wire stats %+v != server stats %+v", wire, st)
	}
}

// TestQueueWaitExpires pins the bounded wait: a queued query is rejected
// once QueueWait passes without a pool freeing.
func TestQueueWaitExpires(t *testing.T) {
	s, addr, release := startServer(t, Config{Pools: 1, QueueCap: 4, QueueWait: 30 * time.Millisecond})
	defer close(release)
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Query("BDCC", "block")
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Active != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Query("BDCC", "waits"); !errors.Is(err, ErrRejected) {
		t.Fatalf("queued query returned %v, want ErrRejected after the wait expired", err)
	}
}

// TestMemBudgetRejection pins memory governance end to end: a query whose
// tracker cannot reserve against the process budget is rejected (typed),
// while the daemon keeps serving and the budget balances back to zero.
func TestMemBudgetRejection(t *testing.T) {
	s, addr, _ := startServer(t, Config{Pools: 2, MemBudget: 64 << 10, MemWait: 0})
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("BDCC", "hungry"); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-budget query returned %v, want ErrRejected", err)
	}
	if res, err := c.Query("BDCC", "small"); err != nil || res.Rows() == 0 {
		t.Fatalf("daemon stopped serving after a memory rejection: %v", err)
	}
	st := s.Stats()
	if st.MemRejected == 0 {
		t.Errorf("budget recorded no rejection: %+v", st)
	}
	if st.MemReserved != 0 {
		t.Errorf("budget still holds %d bytes after all queries unwound", st.MemReserved)
	}
}

func TestAuthToken(t *testing.T) {
	_, addr, _ := startServer(t, Config{Pools: 1, AuthToken: "sesame"})
	if _, err := Dial(addr, "sesame"); err != nil {
		t.Fatalf("matching token rejected: %v", err)
	}
	if _, err := Dial(addr, "wrong"); err == nil {
		t.Fatal("wrong token accepted")
	}
	if _, err := Dial(addr, ""); err == nil {
		t.Fatal("missing token accepted")
	}
}

// TestConcurrentClients runs several sessions issuing interleaved queries
// and checks every response lands on its own request.
func TestConcurrentClients(t *testing.T) {
	_, addr, _ := startServer(t, Config{Pools: 4, QueueCap: 64, QueueWait: time.Minute})
	var wg sync.WaitGroup
	errs := make(chan error, 6*20)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < 20; k++ {
				q := fmt.Sprintf("q-%d-%d", i, k)
				res, err := c.Query("BDCC", q)
				if err != nil {
					errs <- err
					return
				}
				if res.Cols[2].Str[0] != q {
					errs <- fmt.Errorf("response for %q carries %q", q, res.Cols[2].Str[0])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
