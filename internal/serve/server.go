package serve

import (
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bdcc/internal/engine"
)

// Handler runs one admitted query on the prepared context and returns its
// materialized result. The tpch layer provides the implementation (name
// lookup, plan cache, execution); serve owns everything around it —
// admission, the scheduler pool, the memory budget lease.
type Handler func(ctx *engine.Context, scheme, query string) (*engine.Result, error)

// Config assembles a daemon.
type Config struct {
	// Pools is the number of queries that execute simultaneously, each on
	// its own pre-created process-lifetime scheduler pool (<1 means 1).
	Pools int
	// Workers is the goroutine count of each pool (<2 keeps pools serial).
	Workers int
	// QueueCap bounds how many admitted-but-waiting queries may queue for a
	// pool; a query arriving past it is rejected immediately (0 = no queue).
	QueueCap int
	// QueueWait bounds how long a queued query waits for a pool before
	// rejection; <=0 waits indefinitely.
	QueueWait time.Duration
	// MemBudget is the process-global operator memory budget shared by all
	// running queries (0 = ungoverned). Per-query trackers reserve against
	// it in quanta; a query it cannot cover queues inside the budget for up
	// to MemWait and is then rejected (see engine.MemBudget).
	MemBudget int64
	// MemWait bounds a query's wait for budget headroom (<=0: reject
	// immediately when hot).
	MemWait time.Duration
	// MemQuantum is the reservation granularity (0 = engine default).
	MemQuantum int64
	// AuthToken is the shared secret client hellos must present (empty
	// accepts only token-less hellos). Constant-time compared; a mismatch
	// drops the connection without a reply.
	AuthToken string
	// NewContext returns a fresh execution context per query: device meters,
	// knobs, and — when the daemon shares worker sessions across queries —
	// the pre-installed backend set with Context.SharedBackends set. serve
	// then installs the scheduler pool and the memory budget lease on it.
	NewContext func() *engine.Context
	// Handler executes one query on the prepared context.
	Handler Handler
}

// Stats is a snapshot of the daemon's admission and memory counters.
type Stats struct {
	// Active is the number of queries executing right now; Queued the number
	// waiting for a pool.
	Active int `json:"active"`
	Queued int `json:"queued"`
	// Admitted counts queries that reached a pool; QueuedTotal how many of
	// all arrivals had to queue first; Rejected those turned away (queue
	// full, queue wait expired, or memory budget); Done completed runs.
	Admitted    int64 `json:"admitted"`
	QueuedTotal int64 `json:"queued_total"`
	Rejected    int64 `json:"rejected"`
	Done        int64 `json:"done"`
	// Memory budget counters (zero when ungoverned): current and peak
	// reserved bytes, queued and rejected reservations.
	MemReserved int64 `json:"mem_reserved"`
	MemPeak     int64 `json:"mem_peak"`
	MemQueued   int64 `json:"mem_queued"`
	MemRejected int64 `json:"mem_rejected"`
}

// Server is the daemon: a listener loop accepting client sessions, an
// admission gate in front of Config.Pools scheduler pools, and one optional
// process-global memory budget over every admitted query.
type Server struct {
	cfg    Config
	budget *engine.MemBudget
	pools  chan *engine.Sched
	owned  []*engine.Sched

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	queued    int
	active    int
	admitted  int64
	queuedTot int64
	rejected  int64
	done      int64

	wg sync.WaitGroup
}

// NewServer assembles a daemon from cfg; Start serving with Serve or
// ServeConn, tear down with Close.
func NewServer(cfg Config) *Server {
	if cfg.Pools < 1 {
		cfg.Pools = 1
	}
	s := &Server{
		cfg:   cfg,
		pools: make(chan *engine.Sched, cfg.Pools),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.MemBudget > 0 {
		s.budget = engine.NewMemBudget(cfg.MemBudget, cfg.MemWait)
	}
	for i := 0; i < cfg.Pools; i++ {
		var pool *engine.Sched
		if cfg.Workers >= 2 {
			pool = engine.NewSched(cfg.Workers)
			pool.Retain() // process-lifetime: queries' Retain/Release never drop it
			s.owned = append(s.owned, pool)
		}
		s.pools <- pool
	}
	return s
}

// Budget exposes the process memory budget (nil when ungoverned).
func (s *Server) Budget() *engine.MemBudget { return s.budget }

// Stats snapshots the admission and memory counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Active:      s.active,
		Queued:      s.queued,
		Admitted:    s.admitted,
		QueuedTotal: s.queuedTot,
		Rejected:    s.rejected,
		Done:        s.done,
	}
	s.mu.Unlock()
	if s.budget != nil {
		st.MemReserved = s.budget.Reserved()
		st.MemPeak = s.budget.PeakReserved()
		st.MemQueued = s.budget.Queued()
		st.MemRejected = s.budget.Rejected()
	}
	return st
}

// admit gates one query: an idle pool admits immediately; otherwise the
// query joins the bounded queue and waits up to QueueWait. The returned
// error (ErrRejected-wrapped) names which bound turned it away.
func (s *Server) admit() (*engine.Sched, error) {
	select {
	case p := <-s.pools:
		s.noteAdmit()
		return p, nil
	default:
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed
	}
	if s.queued >= s.cfg.QueueCap {
		s.rejected++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: all %d pools busy, queue full (%d waiting)",
			ErrRejected, s.cfg.Pools, s.cfg.QueueCap)
	}
	s.queued++
	s.queuedTot++
	s.mu.Unlock()
	var timeout <-chan time.Time
	if s.cfg.QueueWait > 0 {
		t := time.NewTimer(s.cfg.QueueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case p := <-s.pools:
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.noteAdmit()
		return p, nil
	case <-timeout:
	}
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
	// A pool may have freed between the timeout firing and our giving up;
	// prefer admission over a racy rejection.
	select {
	case p := <-s.pools:
		s.noteAdmit()
		return p, nil
	default:
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
	return nil, fmt.Errorf("%w: no pool freed within the %v queue wait", ErrRejected, s.cfg.QueueWait)
}

func (s *Server) noteAdmit() {
	s.mu.Lock()
	s.admitted++
	s.active++
	s.mu.Unlock()
}

// runQuery executes one admitted query end to end: fresh context, the
// pool installed, a budget lease attached, the handler run, everything
// released — pool last, so a freed slot always means a fully unwound query.
func (s *Server) runQuery(scheme, query string) (*engine.Result, error) {
	pool, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer func() {
		s.mu.Lock()
		s.active--
		s.done++
		s.mu.Unlock()
		s.pools <- pool
	}()
	ctx := s.cfg.NewContext()
	if pool != nil {
		ctx.SetScheduler(pool)
	}
	if s.budget != nil {
		ctx.Mem.AttachBudget(s.budget, s.cfg.MemQuantum)
		defer ctx.Mem.DetachBudget()
	}
	defer ctx.CloseBackends() // no-op for daemon-shared sets (SharedBackends)
	res, err := s.cfg.Handler(ctx, scheme, query)
	if err != nil && errors.Is(err, engine.ErrMemBudget) {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	return res, err
}

// Serve accepts client sessions on l until the listener fails or the server
// closes. It returns nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.ServeConn(conn)
	}
}

// ServeConn starts one client session over an established connection and
// returns immediately.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.session(conn)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
}

// session is one client connection's lifetime: authenticated hello, then a
// frame loop running each query on its own goroutine (a session is a
// multiplexed pipe, not a serial one — concurrent requests from one client
// interleave freely), joined before the session ends.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	_, typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello || len(payload) < len(ProtoMagic)+4 ||
		string(payload[:len(ProtoMagic)]) != ProtoMagic {
		return
	}
	conn.SetReadDeadline(time.Time{})
	// Authenticate before replying, exactly like the worker protocol: a
	// wrong-secret peer learns nothing, not even the version.
	var token []byte
	if n := int(binary.LittleEndian.Uint16(payload[len(ProtoMagic)+2:])); len(payload) >= len(ProtoMagic)+4+n {
		token = payload[len(ProtoMagic)+4 : len(ProtoMagic)+4+n]
	}
	if subtle.ConstantTimeCompare(token, []byte(s.cfg.AuthToken)) != 1 {
		return
	}
	var wmu sync.Mutex
	reply := binary.LittleEndian.AppendUint16(frameBuf(), ProtoVersion)
	reply = binary.LittleEndian.AppendUint16(reply, uint16(s.cfg.Pools))
	if writeFrame(conn, 0, frameHello, reply) != nil {
		return
	}
	if v := binary.LittleEndian.Uint16(payload[len(ProtoMagic):]); v != ProtoVersion {
		return
	}

	var requests sync.WaitGroup
	defer requests.Wait()
	for {
		id, typ, payload, err := readFrame(conn)
		if err != nil {
			conn.Close() // unblock request goroutines parked writing
			return
		}
		switch typ {
		case frameStats:
			st, _ := json.Marshal(s.Stats())
			wmu.Lock()
			writeFrame(conn, id, frameStatsReply, append(frameBuf(), st...))
			wmu.Unlock()
		case frameQuery:
			scheme, query, derr := decodeQuery(payload)
			if derr != nil {
				conn.Close()
				return
			}
			requests.Add(1)
			go func(id uint64) {
				defer requests.Done()
				res, err := s.runQuery(scheme, query)
				out := frameBuf()
				switch {
				case err == nil:
					out = append(out, statusOK)
					out = encodeResult(res, out)
					if len(out)-frameHeader > maxFramePayload {
						out = append(frameBuf(), statusError)
						out = append(out, fmt.Sprintf("serve: result encodes to %d bytes, over the %d frame cap",
							len(out)-frameHeader, maxFramePayload)...)
					}
				case errors.Is(err, ErrRejected):
					out = append(out, statusRejected)
					out = append(out, err.Error()...)
				default:
					out = append(out, statusError)
					out = append(out, err.Error()...)
				}
				wmu.Lock()
				writeFrame(conn, id, frameResult, out)
				wmu.Unlock()
			}(id)
		default:
			conn.Close()
			return
		}
	}
}

// Close shuts the daemon down: listeners stop, sessions close (in-flight
// queries finish against their closed connections and unwind), request
// goroutines are joined, and the owned scheduler pools are released.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	for _, p := range s.owned {
		p.Release()
	}
	return nil
}
