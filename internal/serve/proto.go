// Package serve is the front-end daemon layer: it accepts concurrent query
// sessions over the same framed wire transport the shard backends speak
// (docs/WIRE.md, client protocol section), admits each query onto a bounded
// number of process-lifetime scheduler pools behind an admission queue,
// governs their combined operator memory with one process-global budget,
// and answers every request with a byte-exact encoded result. The engine,
// planner, and catalog know nothing of it: serve composes them through the
// same engine.Context seam a single-query run uses, which is what keeps
// daemon results byte-identical to serial single-box runs.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// Protocol identity of the client protocol: same frame layout as the worker
// protocol (u32 length, u64 id, u8 type), its own magic so a client cannot
// mistake a worker for a daemon, and its own version counter. The hello
// exchange mirrors the worker protocol's v3 shape: magic + u16 version +
// u16 token length + token, answered (only after the token verifies) with
// u16 version + u16 pool count. Version 2 tracks the batch wire form gaining
// its per-column encoding tag byte (result batches cross in that form, so an
// old client would misparse them).
const (
	ProtoMagic   = "BDCQ"
	ProtoVersion = 2
)

// Client-protocol frame types, numbered after the worker protocol's 1-7 so
// the one WIRE.md frame table stays unambiguous.
const (
	frameHello      = byte(1)  // both directions at session start
	frameQuery      = byte(8)  // client → daemon: run one query; id = request id
	frameResult     = byte(9)  // daemon → client: status + result; id = request id
	frameStats      = byte(10) // client → daemon: admission/memory counters
	frameStatsReply = byte(11) // daemon → client: JSON-encoded Stats
)

// Result statuses carried in the first payload byte of frameResult.
const (
	statusOK       = byte(0) // payload: encoded result
	statusError    = byte(1) // payload: error text (the query failed)
	statusRejected = byte(2) // payload: reason (admission or memory rejection)
)

const frameHeader = 4 + 8 + 1

// maxFramePayload mirrors the worker protocol's allocation bound.
const maxFramePayload = 1 << 30

// handshakeTimeout bounds the hello exchange on both sides.
const handshakeTimeout = 10 * time.Second

// frameWriteTimeout bounds every frame write, so a stalled peer becomes a
// write error instead of a parked goroutine.
const frameWriteTimeout = 2 * time.Minute

// ErrRejected marks a query the daemon refused to run — the admission queue
// was full, the bounded queue wait expired, or the process memory budget
// could not cover it — as opposed to a query that ran and failed. Clients
// retry rejected queries (later, elsewhere, or never); failed queries would
// fail identically again.
var ErrRejected = errors.New("serve: query rejected")

var errClosed = errors.New("serve: closed")

func frameBuf() []byte { return make([]byte, frameHeader) }

func writeFrame(conn net.Conn, id uint64, typ byte, frame []byte) error {
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-frameHeader))
	binary.LittleEndian.PutUint64(frame[4:], id)
	frame[12] = typ
	conn.SetWriteDeadline(time.Now().Add(frameWriteTimeout))
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn) (id uint64, typ byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	id = binary.LittleEndian.Uint64(hdr[4:])
	typ = hdr[12]
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("serve: frame claims %d-byte payload (cap %d)", n, maxFramePayload)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(conn, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, typ, payload, nil
}

// encodeQuery lays out a frameQuery payload: u16 scheme length + scheme,
// u16 query length + query.
func encodeQuery(scheme, query string, buf []byte) ([]byte, error) {
	if len(scheme) > 1<<16-1 || len(query) > 1<<16-1 {
		return nil, fmt.Errorf("serve: scheme or query name over the u16 length field")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(scheme)))
	buf = append(buf, scheme...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(query)))
	buf = append(buf, query...)
	return buf, nil
}

func decodeQuery(payload []byte) (scheme, query string, err error) {
	take := func() (string, error) {
		if len(payload) < 2 {
			return "", fmt.Errorf("serve: truncated query frame")
		}
		n := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if len(payload) < n {
			return "", fmt.Errorf("serve: truncated query frame")
		}
		s := string(payload[:n])
		payload = payload[n:]
		return s, nil
	}
	if scheme, err = take(); err != nil {
		return "", "", err
	}
	if query, err = take(); err != nil {
		return "", "", err
	}
	return scheme, query, nil
}

// encodeResult appends a result's wire form: u16 column count, each column
// name (u16 length + bytes), then the columns in the exact batch encoding
// of internal/vector — IEEE-754 float bits and raw string bytes — so a
// decoded result reproduces the original bit for bit.
func encodeResult(res *engine.Result, buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(res.Schema)))
	for _, c := range res.Schema {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	b := &vector.Batch{Cols: res.Cols}
	return b.Encode(buf)
}

func decodeResult(data []byte) (*engine.Result, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("serve: truncated result encoding")
	}
	ncols := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	names := make([]string, ncols)
	for i := range names {
		if len(data) < 2 {
			return nil, fmt.Errorf("serve: truncated result schema")
		}
		n := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < n {
			return nil, fmt.Errorf("serve: truncated result schema")
		}
		names[i] = string(data[:n])
		data = data[n:]
	}
	b, n, err := vector.DecodeBatch(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("serve: %d trailing bytes after result", len(data)-n)
	}
	if len(b.Cols) != ncols {
		return nil, fmt.Errorf("serve: result names %d columns, carries %d", ncols, len(b.Cols))
	}
	res := &engine.Result{Cols: b.Cols, Schema: make(expr.Schema, ncols)}
	for i, c := range b.Cols {
		res.Schema[i] = expr.ColMeta{Name: names[i], Kind: c.Kind}
	}
	return res, nil
}
