package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bdcc/internal/engine"
)

// Client is one session against a bdccd daemon: a framed connection whose
// requests multiplex freely — Query and Stats are safe to call from any
// number of goroutines, responses are matched by request id.
type Client struct {
	conn net.Conn
	name string

	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	broken  error
	closed  bool

	pools int
	loop  sync.WaitGroup
}

type response struct {
	typ     byte
	payload []byte
}

// Dial connects to a daemon at addr, presenting token in the hello (empty =
// none). A token-mismatched daemon drops the connection without a reply,
// surfacing here as a hello-reply read error.
func Dial(addr, token string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return NewClient(conn, addr, token)
}

// NewClient performs the hello exchange on an established connection and
// starts the response reader; it owns conn from this point on.
func NewClient(conn net.Conn, name, token string) (*Client, error) {
	if len(token) > 1<<16-1 {
		conn.Close()
		return nil, fmt.Errorf("serve: %s: auth token longer than the hello's u16 length field", name)
	}
	c := &Client{conn: conn, name: name, pending: make(map[uint64]chan response)}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := append(frameBuf(), ProtoMagic...)
	hello = binary.LittleEndian.AppendUint16(hello, ProtoVersion)
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(token)))
	hello = append(hello, token...)
	if err := writeFrame(conn, 0, frameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: %s: hello: %w", name, err)
	}
	_, typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: %s: hello reply: %w", name, err)
	}
	conn.SetDeadline(time.Time{})
	if typ != frameHello || len(payload) < 4 {
		conn.Close()
		return nil, fmt.Errorf("serve: %s: malformed hello reply (type %d, %d bytes)", name, typ, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload); v != ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("serve: %s speaks client protocol version %d, this build speaks %d", name, v, ProtoVersion)
	}
	c.pools = int(binary.LittleEndian.Uint16(payload[2:]))
	c.loop.Add(1)
	go c.readLoop()
	return c, nil
}

// Pools returns the daemon's announced concurrent-query capacity.
func (c *Client) Pools() int { return c.pools }

// call registers a request id, ships the frame, and awaits the response.
func (c *Client) call(typ byte, frame []byte) (response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return response{}, errClosed
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return response{}, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := writeFrame(c.conn, id, typ, frame)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
	r, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.broken
		c.mu.Unlock()
		if err == nil {
			err = errClosed
		}
		return response{}, err
	}
	return r, nil
}

// Query runs one query on the daemon and returns its materialized result,
// decoded bit-exactly. A daemon-side admission or memory rejection returns
// an ErrRejected-wrapped error; a query failure returns its error text.
func (c *Client) Query(scheme, query string) (*engine.Result, error) {
	frame, err := encodeQuery(scheme, query, frameBuf())
	if err != nil {
		return nil, err
	}
	r, err := c.call(frameQuery, frame)
	if err != nil {
		return nil, err
	}
	if r.typ != frameResult || len(r.payload) < 1 {
		return nil, fmt.Errorf("serve: %s: malformed result frame (type %d, %d bytes)", c.name, r.typ, len(r.payload))
	}
	switch r.payload[0] {
	case statusOK:
		return decodeResult(r.payload[1:])
	case statusRejected:
		return nil, fmt.Errorf("%w: %s", ErrRejected, string(r.payload[1:]))
	default:
		return nil, errors.New(string(r.payload[1:]))
	}
}

// Stats fetches the daemon's admission and memory counters.
func (c *Client) Stats() (Stats, error) {
	r, err := c.call(frameStats, frameBuf())
	if err != nil {
		return Stats{}, err
	}
	if r.typ != frameStatsReply {
		return Stats{}, fmt.Errorf("serve: %s: malformed stats reply (type %d)", c.name, r.typ)
	}
	var st Stats
	if err := json.Unmarshal(r.payload, &st); err != nil {
		return Stats{}, fmt.Errorf("serve: %s: stats reply: %w", c.name, err)
	}
	return st, nil
}

// fail breaks the session: the connection closes and every pending and
// later request resolves with the first failure.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = fmt.Errorf("serve: %s: session down: %w", c.name, err)
	}
	chans := make([]chan response, 0, len(c.pending))
	for id, ch := range c.pending {
		chans = append(chans, ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range chans {
		close(ch)
	}
}

func (c *Client) readLoop() {
	defer c.loop.Done()
	for {
		id, typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- response{typ: typ, payload: payload}
		}
	}
}

// Close tears the session down and joins the reader; pending requests
// resolve with a session-down error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	c.loop.Wait()
	c.fail(errClosed)
	return nil
}
