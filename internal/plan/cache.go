package plan

import (
	"sync"

	"bdcc/internal/engine"
)

// Plan caching. Logical plan trees cannot be shared across executions —
// expression Bind mutates nodes in place, so every execution builds fresh
// trees — but everything the BDCC planner *decides* about a tree is a pure
// function of (query shape, catalog, data): the preanalysis maps (which
// scans scatter, which joins sandwich, which uses pair), and the key sets
// its pre-executed build subtrees propagate into count-table restrictions.
// Those decisions are what a Memo captures, keyed off node *positions*
// (deterministic pre-order sites) instead of node pointers, so they replay
// onto the structurally identical fresh tree of a later execution — which
// then skips preanalysis and, above all, skips re-running pre-execution
// subqueries at plan time.
//
// The Cache is the daemon-side container: one completed Memo per
// (query, schema, knobs) key, with a per-entry record lock so exactly one
// of several concurrent first arrivals records while the rest wait and then
// replay. Replays share the Memo read-only (recorded bin sets and
// materialized results are never mutated after construction) and run fully
// concurrently.

// Memo is the replayable planning record of one (query, schema, knobs)
// combination. A zero Memo records; a completed one replays. Memos are
// immutable once completed and safe for concurrent replay.
type Memo struct {
	scanChoice map[int]*useChoice
	alignment  map[int]*sharedPair
	joinPairs  map[int][]sharedPair
	preExec    map[int]*preExecMemo
	complete   bool
}

// preExecMemo is the recorded outcome of one join's key-set propagation:
// the raw bin sets it derived per dimension use (merged into the probe
// side's transferred restrictions on replay exactly as on record), and the
// materialized build result when the original run replaced the build
// operator with its rows (nil when the build operator was kept). Both are
// immutable after recording: bin sets are never mutated after construction
// (restrict.go's sharing contract) and each replay wraps res in its own
// read-only engine.Values.
type preExecMemo struct {
	raw map[string]binSet
	res *engine.Result
}

// NewMemo returns an empty memo ready to record one planning run.
func NewMemo() *Memo {
	return &Memo{
		scanChoice: make(map[int]*useChoice),
		alignment:  make(map[int]*sharedPair),
		joinPairs:  make(map[int][]sharedPair),
		preExec:    make(map[int]*preExecMemo),
	}
}

// Complete marks the memo recorded; from now on planners replay it.
func (m *Memo) Complete() { m.complete = true }

// Completed reports whether the memo holds a finished recording.
func (m *Memo) Completed() bool { return m != nil && m.complete }

// siteIndex numbers a logical tree's scans and joins by deterministic
// pre-order position (probe before build under joins), the translation
// layer between one execution's node pointers and the memo's stable sites.
type siteIndex struct {
	scanOf map[*Scan]int
	joinOf map[*Join]int
	scans  []*Scan
	joins  []*Join
}

func indexSites(n Node) *siteIndex {
	ix := &siteIndex{scanOf: make(map[*Scan]int), joinOf: make(map[*Join]int)}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			ix.scanOf[t] = len(ix.scans)
			ix.scans = append(ix.scans, t)
		case *Join:
			ix.joinOf[t] = len(ix.joins)
			ix.joins = append(ix.joins, t)
			walk(t.Left)
			walk(t.Right)
		case *Project:
			walk(t.Child)
		case *FilterNode:
			walk(t.Child)
		case *Agg:
			walk(t.Child)
		case *OrderBy:
			walk(t.Child)
		case *LimitNode:
			walk(t.Child)
		case *TopNNode:
			walk(t.Child)
		}
	}
	walk(n)
	return ix
}

// recordAnalysis converts the planner's pointer-keyed preanalysis maps to
// memo sites, after preanalyze has run.
func (p *Planner) recordAnalysis() {
	for s, c := range p.scanChoice {
		if i, ok := p.sites.scanOf[s]; ok {
			p.memo.scanChoice[i] = c
		}
	}
	for j, a := range p.alignment {
		if i, ok := p.sites.joinOf[j]; ok {
			p.memo.alignment[i] = a
		}
	}
	for j, prs := range p.joinPairs {
		if i, ok := p.sites.joinOf[j]; ok {
			p.memo.joinPairs[i] = prs
		}
	}
}

// replayAnalysis rebuilds the pointer-keyed preanalysis maps for this
// execution's fresh tree from the memo, in place of running preanalyze.
func (p *Planner) replayAnalysis() {
	for i, c := range p.memo.scanChoice {
		if i < len(p.sites.scans) {
			p.scanChoice[p.sites.scans[i]] = c
		}
	}
	for i, a := range p.memo.alignment {
		if i < len(p.sites.joins) {
			p.alignment[p.sites.joins[i]] = a
		}
	}
	for i, prs := range p.memo.joinPairs {
		if i < len(p.sites.joins) {
			p.joinPairs[p.sites.joins[i]] = prs
		}
	}
}

// CacheKey identifies one cached plan: the query, the physical schema it
// was planned against, and the execution knobs that shape the plan.
type CacheKey struct {
	// Query names the logical plan (e.g. "Q13"); plans are assumed
	// structurally identical across builds of the same name.
	Query string
	// Schema identifies the physical database: scheme and data identity
	// (e.g. "BDCC/sf0.05"). Plans do not survive schema changes.
	Schema string
	// Knobs fingerprints the plan-shaping execution knobs (workers, shards,
	// remotes, balance) — a sharded plan differs from a single-box one.
	Knobs string
}

// Cache holds completed memos by key. One cache serves many concurrent
// queries: hits replay concurrently, misses serialize per key behind the
// entry's record lock so pre-execution subqueries run once, not once per
// concurrent first arrival.
type Cache struct {
	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	mu   sync.Mutex
	memo *Memo
	sub  any
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[CacheKey]*cacheEntry)}
}

// Lease is the result of Cache.Acquire: either a hit (Memo non-nil, ready
// to replay, nothing held) or a recording miss (Memo nil, the entry's
// record lock held until Complete or Abandon).
type Lease struct {
	entry *cacheEntry
	// Memo is the completed memo on a hit, nil on a recording miss.
	Memo *Memo
	// Sub is the front end's opaque attachment recorded with the memo (the
	// tpch layer stores its subquery replay state here); nil on a miss.
	Sub any
}

// Acquire resolves key to a lease. Concurrent first arrivals of one key
// serialize: one records while the others block in Acquire and then hit.
func (c *Cache) Acquire(key CacheKey) *Lease {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.mu.Lock()
	if e.memo.Completed() {
		memo, sub := e.memo, e.sub
		e.mu.Unlock()
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return &Lease{Memo: memo, Sub: sub}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return &Lease{entry: e}
}

// Hit reports whether the lease replays a completed memo.
func (l *Lease) Hit() bool { return l.Memo != nil }

// Complete publishes the recorded memo (marking it complete) with an
// optional front-end attachment and releases the record lock. Miss leases
// only.
func (l *Lease) Complete(m *Memo, sub any) {
	if l.entry == nil {
		return
	}
	m.Complete()
	l.entry.memo = m
	l.entry.sub = sub
	l.entry.mu.Unlock()
	l.entry = nil
}

// Abandon releases the record lock without publishing (a failed recording
// run); the next arrival records afresh. No-op on hits.
func (l *Lease) Abandon() {
	if l.entry == nil {
		return
	}
	l.entry.mu.Unlock()
	l.entry = nil
}

// Stats returns the cache's hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
