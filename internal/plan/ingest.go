package plan

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bdcc/internal/core"
	"bdcc/internal/storage"
)

// Ingest attaches an append path to a DB. Each table gets a row-oriented
// delta store (storage.Delta); every append publishes a fresh immutable view
// of the affected table — base plus the visible delta prefix, in the scheme's
// own layout — behind an atomic pointer. Queries pin one such version at plan
// time (DB.Snapshot) and never block on writers; writers serialize on a
// mutex and never mutate a published version, so a pinned snapshot stays
// valid across any number of later appends and merges. A background merge
// consolidates the delta into the base layout (re-sorting, re-clustering via
// the incremental core.MergeBDCCTable splice, and re-compressing when the
// base was compressed) and publishes the consolidated version the same way.
type Ingest struct {
	db  *DB
	opt IngestOptions

	mu     sync.Mutex
	deltas map[string]*storage.Delta
	// cons* describe the consolidated base: the insertion-order raw tables
	// and the scheme views every un-merged delta layers on top of. They
	// start as the DB's loaded state and advance only when a merge commits.
	consRaw       map[string]*storage.Table
	consTables    map[string]*storage.Table
	consClustered *core.Database
	compressed    map[string]bool
	epoch         int64
	merging       bool
	mergeErr      error
	wg            sync.WaitGroup
	merges        int64
	mergedRows    int64
	drift         map[string]core.DriftReport

	cur atomic.Pointer[snapState]
}

// IngestOptions configure EnableIngest.
type IngestOptions struct {
	// Raw holds the insertion-order base tables the DB was built from. nil
	// uses DB.Tables, which is correct for Plain and BDCC; the PK scheme
	// stores its tables re-sorted and must be given the originals.
	Raw map[string]*storage.Table
	// Limit bounds the per-table delta: reaching it triggers a background
	// merge. 0 means merges are only started explicitly (or by drift).
	Limit int
	// DriftThreshold triggers a background merge when the un-merged delta's
	// cell distribution diverges from the base clustering by at least this
	// total-variation distance (see core.DriftReport). 0 disables the
	// trigger; only BDCC-clustered tables are measured.
	DriftThreshold float64
	// Build controls merge-time re-clustering; its zero Device defaults to
	// the DB's device.
	Build core.BuildOptions
}

// snapState is one immutable published version.
type snapState struct {
	epoch      int64
	raw        map[string]*storage.Table
	tables     map[string]*storage.Table
	clustered  *core.Database
	deltaRows  map[string]int
	totalDelta int64
}

// EnableIngest attaches an empty ingest state to the DB and returns it.
func (db *DB) EnableIngest(opt IngestOptions) (*Ingest, error) {
	if db.ing != nil {
		return nil, fmt.Errorf("plan: ingest already enabled on this %s database", db.Scheme)
	}
	if db.snap != nil {
		return nil, fmt.Errorf("plan: cannot enable ingest on a pinned snapshot")
	}
	raw := opt.Raw
	if raw == nil {
		if db.Scheme == PK {
			return nil, fmt.Errorf("plan: ingest on a pk database needs the insertion-order tables")
		}
		raw = db.Tables
	}
	if opt.Build.Device.PageSize == 0 {
		opt.Build.Device = db.Device
	}
	ing := &Ingest{
		db:         db,
		opt:        opt,
		deltas:     make(map[string]*storage.Delta),
		consRaw:    raw,
		consTables: db.Tables,
		compressed: make(map[string]bool),
		drift:      make(map[string]core.DriftReport),
	}
	ing.consClustered = db.Clustered
	for name := range db.Tables {
		t, err := db.StoredTable(name)
		if err != nil {
			return nil, err
		}
		ing.compressed[name] = t.Compressed()
	}
	db.ing = ing
	return ing, nil
}

// Ingest returns the DB's ingest state, or nil when writes were never
// enabled. Pinned snapshots share their origin's state.
func (db *DB) Ingest() *Ingest { return db.ing }

// Snapshot pins the current version: the returned DB serves the base plus
// every delta row visible now, forever, regardless of concurrent appends and
// merges. Without ingest state (or on an already-pinned snapshot) it returns
// the receiver unchanged, so read-only databases pay nothing.
func (db *DB) Snapshot() *DB {
	if db.ing == nil || db.snap != nil {
		return db
	}
	s := db.ing.cur.Load()
	if s == nil {
		return db
	}
	c := *db
	c.Tables = s.tables
	c.Clustered = s.clustered
	c.snap = s
	return &c
}

// Epoch returns the version this DB serves: 0 for the loaded base, counting
// up once per append or merge commit.
func (db *DB) Epoch() int64 {
	if db.snap != nil {
		return db.snap.epoch
	}
	if db.ing != nil {
		if s := db.ing.cur.Load(); s != nil {
			return s.epoch
		}
	}
	return 0
}

// PendingDeltaRows returns the un-merged rows visible at this DB's version.
func (db *DB) PendingDeltaRows() int64 {
	if db.snap != nil {
		return db.snap.totalDelta
	}
	if db.ing != nil {
		if s := db.ing.cur.Load(); s != nil {
			return s.totalDelta
		}
	}
	return 0
}

// Append ingests rows into one table and publishes the version making them
// visible. Rows must arrive referential-parents-first: a batch may reference
// keys appended earlier or in the same call's table, but not keys of another
// table's future batch (foreign-key resolution over base + visible delta
// fails on dangling references).
func (ing *Ingest) Append(table string, rows *storage.Table) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	base, ok := ing.consRaw[table]
	if !ok {
		return fmt.Errorf("plan: ingest into unknown table %q", table)
	}
	delta := ing.deltas[table]
	if delta == nil {
		delta = storage.NewDelta(base)
		ing.deltas[table] = delta
	}
	visible, err := delta.Append(rows)
	if err != nil {
		return err
	}
	if err := ing.publishViews(table, rows); err != nil {
		return err
	}
	trigger := ing.opt.Limit > 0 && visible >= ing.opt.Limit
	if r, ok := ing.drift[table]; ok && ing.opt.DriftThreshold > 0 && r.Drifted(ing.opt.DriftThreshold) {
		trigger = true
	}
	if trigger && !ing.merging {
		ing.merging = true
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			ing.Merge()
		}()
	}
	return nil
}

// publishViews rebuilds the affected table's views over the consolidated
// base plus its whole visible delta and publishes the next version; batch is
// the newly appended tail. Caller holds mu.
func (ing *Ingest) publishViews(table string, batch *storage.Table) error {
	delta := ing.deltas[table]
	k := delta.Rows()
	dtab, err := delta.Prefix(k)
	if err != nil {
		return err
	}
	combined, err := storage.Concat(ing.consRaw[table], ing.consRaw[table].Rows(), dtab)
	if err != nil {
		return err
	}
	prev := ing.cur.Load()
	next := &snapState{
		epoch:     ing.epoch + 1,
		raw:       make(map[string]*storage.Table),
		tables:    make(map[string]*storage.Table),
		deltaRows: make(map[string]int),
		clustered: ing.consClustered,
	}
	if prev != nil {
		for n, t := range prev.raw {
			next.raw[n] = t
		}
		for n, t := range prev.tables {
			next.tables[n] = t
		}
		for n, r := range prev.deltaRows {
			next.deltaRows[n] = r
		}
		next.clustered = prev.clustered
	} else {
		for n, t := range ing.consRaw {
			next.raw[n] = t
		}
		for n, t := range ing.consTables {
			next.tables[n] = t
		}
	}
	next.raw[table] = combined
	next.deltaRows[table] = k
	for _, r := range next.deltaRows {
		next.totalDelta += int64(r)
	}
	db := ing.db
	switch db.Scheme {
	case Plain:
		next.tables[table] = combined
	case PK:
		sorted, err := pkSort(db, table, combined)
		if err != nil {
			return err
		}
		next.tables[table] = sorted
	case BDCC:
		next.tables[table] = combined
		if bt := clusteredTable(next.clustered, table); bt != nil {
			// Splice only the newest batch into the previous view — it
			// already holds the older delta rows. Bindings resolve over the
			// combined raw tables so fresh rows may reference fresh parents.
			from := combined.Rows() - batch.Rows()
			if from != int(bt.Rows()) {
				return fmt.Errorf("plan: ingest view of %s holds %d rows, combined base has %d", table, bt.Rows(), from)
			}
			uses, err := core.BindUses(next.clustered, db.Schema, next.raw, table, from)
			if err != nil {
				return err
			}
			merged, err := core.MergeBDCCTable(bt, batch, uses, ing.opt.Build)
			if err != nil {
				return err
			}
			if err := merged.Validate(); err != nil {
				return err
			}
			next.clustered = cloneClustered(next.clustered, table, merged)
		}
		if consBT := clusteredTable(ing.consClustered, table); consBT != nil {
			// Drift measures all visible delta rows against the consolidated
			// clustering, whose count table has not absorbed them yet.
			r, err := core.DriftFor(ing.consClustered, db.Schema, next.raw, table, ing.consRaw[table].Rows())
			if err != nil {
				return err
			}
			ing.drift[table] = r
		}
	}
	ing.epoch = next.epoch
	ing.cur.Store(next)
	return nil
}

// Merge consolidates every table's visible delta into the base layout and
// publishes the merged version: combined insertion-order raw tables become
// the new base, scheme views are rebuilt fresh (so no published table is ever
// mutated) and re-compressed when the base was compressed, and the merged
// delta prefix is truncated. Readers keep whatever version they pinned.
func (ing *Ingest) Merge() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	defer func() { ing.merging = false }()
	db := ing.db
	newRaw := make(map[string]*storage.Table, len(ing.consRaw))
	newTables := make(map[string]*storage.Table, len(ing.consTables))
	for n, t := range ing.consRaw {
		newRaw[n] = t
	}
	for n, t := range ing.consTables {
		newTables[n] = t
	}
	newClustered := ing.consClustered
	var total int64
	merged := make(map[string]int)
	for table, delta := range ing.deltas {
		k := delta.Rows()
		if k == 0 {
			continue
		}
		dtab, err := delta.Prefix(k)
		if err != nil {
			return ing.failMerge(err)
		}
		combined, err := storage.Concat(ing.consRaw[table], ing.consRaw[table].Rows(), dtab)
		if err != nil {
			return ing.failMerge(err)
		}
		newRaw[table] = combined
		merged[table] = k
		total += int64(k)
	}
	for table, k := range merged {
		combined := newRaw[table]
		switch db.Scheme {
		case Plain:
			newTables[table] = combined
			if ing.compressed[table] {
				combined.Compress()
			}
		case PK:
			sorted, err := pkSort(db, table, combined)
			if err != nil {
				return ing.failMerge(err)
			}
			if ing.compressed[table] {
				sorted.Compress()
			}
			newTables[table] = sorted
		case BDCC:
			newTables[table] = combined
			bt := clusteredTable(newClustered, table)
			if bt == nil {
				continue
			}
			from := combined.Rows() - k
			uses, err := core.BindUses(newClustered, db.Schema, newRaw, table, from)
			if err != nil {
				return ing.failMerge(err)
			}
			dtab, err := ing.deltas[table].Prefix(k)
			if err != nil {
				return ing.failMerge(err)
			}
			mt, err := core.MergeBDCCTable(bt, dtab, uses, ing.opt.Build)
			if err != nil {
				return ing.failMerge(err)
			}
			if err := mt.Validate(); err != nil {
				return ing.failMerge(err)
			}
			if ing.compressed[table] {
				mt.Data.Compress()
			}
			newClustered = cloneClustered(newClustered, table, mt)
		}
	}
	for table, k := range merged {
		if err := ing.deltas[table].TruncatePrefix(k); err != nil {
			return ing.failMerge(err)
		}
	}
	ing.consRaw = newRaw
	ing.consTables = newTables
	ing.consClustered = newClustered
	if total > 0 {
		ing.merges++
		ing.mergedRows += total
		ing.epoch++
		for t := range ing.drift {
			delete(ing.drift, t)
		}
		ing.cur.Store(&snapState{
			epoch:     ing.epoch,
			raw:       newRaw,
			tables:    newTables,
			clustered: newClustered,
			deltaRows: make(map[string]int),
		})
	}
	return nil
}

// failMerge records a merge failure; a half-built consolidation is simply
// dropped — the published version and the delta stores are untouched, so
// readers and writers continue on the pre-merge state.
func (ing *Ingest) failMerge(err error) error {
	ing.mergeErr = err
	return err
}

// Wait drains any background merge in flight.
func (ing *Ingest) Wait() { ing.wg.Wait() }

// IngestStats is a point-in-time summary of the ingest state.
type IngestStats struct {
	// Epoch is the currently published version.
	Epoch int64
	// DeltaRows counts visible un-merged rows across tables; AppendedRows is
	// the lifetime total.
	DeltaRows    int64
	AppendedRows int64
	// Merges counts committed consolidations; MergedRows the rows they
	// folded into the base.
	Merges     int64
	MergedRows int64
	// Drift holds the latest per-table drift reports (cleared on merge).
	Drift map[string]core.DriftReport
	// Err is the last merge failure, if any.
	Err error
}

// Stats reports the current ingest counters.
func (ing *Ingest) Stats() IngestStats {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	s := IngestStats{
		Epoch:      ing.epoch,
		Merges:     ing.merges,
		MergedRows: ing.mergedRows,
		Drift:      make(map[string]core.DriftReport, len(ing.drift)),
		Err:        ing.mergeErr,
	}
	for _, d := range ing.deltas {
		s.DeltaRows += int64(d.Rows())
		s.AppendedRows += d.AppendedRows()
	}
	for t, r := range ing.drift {
		s.Drift[t] = r
	}
	return s
}

// pkSort lays a combined table out in the PK scheme's order: a stable sort
// on the primary key, identical to what NewPKDB does at load.
func pkSort(db *DB, name string, t *storage.Table) (*storage.Table, error) {
	def := db.Schema.Table(name)
	if def == nil || len(def.PrimaryKey) == 0 {
		return t, nil
	}
	keys, err := core.KeyValues(t, def.PrimaryKey)
	if err != nil {
		return nil, fmt.Errorf("plan: pk sort of %s: %w", name, err)
	}
	return t.Permute(sortPermByKeys(keys))
}

func clusteredTable(db *core.Database, name string) *core.BDCCTable {
	if db == nil {
		return nil
	}
	return db.Tables[name]
}

// cloneClustered swaps one table of a materialized design, sharing
// everything else.
func cloneClustered(db *core.Database, name string, bt *core.BDCCTable) *core.Database {
	out := &core.Database{Design: db.Design, Dimensions: db.Dimensions, Tables: make(map[string]*core.BDCCTable, len(db.Tables))}
	for n, t := range db.Tables {
		out.Tables[n] = t
	}
	out.Tables[name] = bt
	return out
}
