package plan

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
)

// twoHopBuild is the propagation-heavy shape of TestPlannerTwoHopPropagation:
// a region-filtered dimension chain whose pre-executed build restricts the
// fact scan, plus a sandwich-aligned join — every decision a memo records.
func twoHopBuild() Node {
	stores := &Join{
		Left:     &Scan{Table: "store", Cols: []string{"st_id", "st_region"}},
		Right:    &Scan{Table: "region", Cols: []string{"rg_id", "rg_name"}, Filter: expr.Eq(expr.C("rg_name"), expr.Str("SOUTH"))},
		LeftKeys: []string{"st_region"}, RightKeys: []string{"rg_id"}, Type: engine.InnerJoin,
	}
	j := &Join{Left: &Scan{Table: "fact", Cols: []string{"f_store", "f_amount"}}, Right: stores,
		LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: engine.InnerJoin}
	return &Agg{Child: j, GroupBy: []string{"rg_name"},
		Aggs: []engine.AggSpec{{Name: "total", Func: engine.AggSum, Arg: expr.C("f_amount")}}}
}

func logLine(log []string, substr string) string {
	for _, l := range log {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}

// TestMemoReplayIdentical records one BDCC planning run and replays it onto
// a freshly built tree: the replay must skip re-running the pre-execution
// subquery yet land the identical scan restriction and produce identical
// rows.
func TestMemoReplayIdentical(t *testing.T) {
	f := newFixture(t)
	db := f.dbs[BDCC]

	memo := NewMemo()
	p1 := NewPlanner(db, engine.NewContext(db.Device))
	p1.UseMemo(memo)
	res1, err := p1.Run(twoHopBuild())
	if err != nil {
		t.Fatal(err)
	}
	if logLine(p1.Log, "pre-executed build (") == "" {
		t.Fatalf("recording run did not pre-execute the build side; log:\n%s", strings.Join(p1.Log, "\n"))
	}
	memo.Complete()

	p2 := NewPlanner(db, engine.NewContext(db.Device))
	p2.UseMemo(memo)
	res2, err := p2.Run(twoHopBuild())
	if err != nil {
		t.Fatal(err)
	}
	if logLine(p2.Log, "pre-executed build (") != "" {
		t.Errorf("replay re-ran the pre-execution subquery; log:\n%s", strings.Join(p2.Log, "\n"))
	}
	if logLine(p2.Log, "replayed pre-executed build restriction") == "" {
		t.Errorf("replay did not apply the recorded restriction; log:\n%s", strings.Join(p2.Log, "\n"))
	}
	// Identical planning decisions: the fact scan prunes to the same groups,
	// and the sandwich join lands the same way.
	for _, marker := range []string{"scan fact: bdcc pushdown", "sandwich hash join"} {
		rec, rep := logLine(p1.Log, marker), logLine(p2.Log, marker)
		if rec == "" || rec != rep {
			t.Errorf("decision %q differs:\n record %q\n replay %q", marker, rec, rep)
		}
	}
	if res1.Rows() != res2.Rows() {
		t.Fatalf("replayed result differs: %d rows vs %d rows", res2.Rows(), res1.Rows())
	}
	for i := 0; i < res1.Rows(); i++ {
		if fmt.Sprint(res1.Row(i)) != fmt.Sprint(res2.Row(i)) {
			t.Errorf("row %d differs: record %v, replay %v", i, res1.Row(i), res2.Row(i))
		}
	}
}

// TestMemoReplayEquivalentAcrossJoinTypes replays every join type the
// planner caches decisions for and cross-checks rows against the Plain
// scheme, so a replayed plan stays semantically equivalent — not just
// self-consistent.
func TestMemoReplayEquivalentAcrossJoinTypes(t *testing.T) {
	f := newFixture(t)
	db := f.dbs[BDCC]
	for name, typ := range map[string]engine.JoinType{
		"inner": engine.InnerJoin, "semi": engine.SemiJoin, "anti": engine.AntiJoin,
	} {
		typ := typ
		t.Run(name, func(t *testing.T) {
			build := func() Node {
				j := &Join{
					Left:     &Scan{Table: "fact", Cols: []string{"f_id", "f_store", "f_amount"}},
					Right:    &Scan{Table: "store", Cols: []string{"st_id", "st_region"}, Filter: expr.Eq(expr.C("st_region"), expr.Int(3))},
					LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: typ}
				return &Agg{Child: j, GroupBy: []string{"f_store"},
					Aggs: []engine.AggSpec{{Name: "c", Func: engine.AggCount}}}
			}
			ref, _ := runRows(t, f.dbs[Plain], build())

			memo := NewMemo()
			p1 := NewPlanner(db, engine.NewContext(db.Device))
			p1.UseMemo(memo)
			if _, err := p1.Run(build()); err != nil {
				t.Fatal(err)
			}
			memo.Complete()
			p2 := NewPlanner(db, engine.NewContext(db.Device))
			p2.UseMemo(memo)
			res, err := p2.Run(build())
			if err != nil {
				t.Fatal(err)
			}
			rows := make([]string, res.Rows())
			for i := range rows {
				rows[i] = fmt.Sprint(res.Row(i))
			}
			if got := fmt.Sprint(sortedStrings(rows)); got != fmt.Sprint(ref) {
				t.Errorf("replayed %s join disagrees with plain", name)
			}
		})
	}
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestCacheAcquireSerializesRecording pins the cache contract: concurrent
// first arrivals of one key produce exactly one recording miss — everyone
// else blocks in Acquire and then replays the published memo.
func TestCacheAcquireSerializesRecording(t *testing.T) {
	c := NewCache()
	key := CacheKey{Query: "Q", Schema: "BDCC/x", Knobs: "w4"}

	lease := c.Acquire(key)
	if lease.Hit() {
		t.Fatal("first acquire must miss")
	}

	const n = 8
	var wg sync.WaitGroup
	hits := make(chan *Lease, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits <- c.Acquire(key)
		}()
	}
	memo := NewMemo()
	lease.Complete(memo, "sub-state")
	wg.Wait()
	close(hits)
	for l := range hits {
		if !l.Hit() {
			t.Fatal("post-publish acquire must hit")
		}
		if l.Memo != memo || l.Sub != "sub-state" {
			t.Fatal("hit returned a different memo or attachment")
		}
	}
	if h, m := c.Stats(); h != n || m != 1 {
		t.Errorf("stats = %d hits / %d misses, want %d / 1", h, m, n)
	}

	// Distinct keys miss independently.
	other := c.Acquire(CacheKey{Query: "Q", Schema: "BDCC/x", Knobs: "w8"})
	if other.Hit() {
		t.Error("different knobs must not hit")
	}
	other.Abandon()

	// An abandoned recording leaves the next arrival to record afresh.
	again := c.Acquire(CacheKey{Query: "Q", Schema: "BDCC/x", Knobs: "w8"})
	if again.Hit() {
		t.Error("abandoned entry must miss again")
	}
	again.Abandon()
}
