package plan

import (
	"fmt"

	"bdcc/internal/core"
	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// binSet is a set of dimension bin numbers at the dimension's full
// granularity. A nil binSet means "unrestricted".
type binSet map[uint64]bool

// restrictions maps dimension uses (by useKey, anchored at one base table)
// to the bin sets their rows are known to fall into. These are the planner's
// currency for the paper's selection pushdown and selection propagation:
// they are produced at scans from predicates on dimension keys, transferred
// across joins whose foreign-key paths connect matched uses, and finally
// consumed by the count-table restriction of BDCC scans.
type restrictions map[string]binSet

// useKey identifies a dimension use within its base table.
func useKey(u *core.DimensionUse) string {
	return u.Dim.Name + "|" + u.PathString()
}

// intersectInto merges other into r, intersecting overlapping entries.
func (r restrictions) intersectInto(other restrictions) {
	for k, bins := range other {
		if cur, ok := r[k]; ok {
			merged := make(binSet)
			for b := range cur {
				if bins[b] {
					merged[b] = true
				}
			}
			r[k] = merged
			continue
		}
		r[k] = bins
	}
}

// clone returns a shallow copy (bin sets shared; they are never mutated
// after construction).
func (r restrictions) clone() restrictions {
	out := make(restrictions, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// binsForLeadingRange converts a closed interval on the leading key column
// of a dimension into the covering bin set. Either bound may be nil.
func binsForLeadingRange(dim *core.Dimension, kind vector.Kind, loI, hiI *int64, loS, hiS *string) binSet {
	var lo, hi *core.KeyVal
	mk := func(i *int64, s *string, closeHi bool) *core.KeyVal {
		if i == nil && s == nil {
			return nil
		}
		var part core.KeyPart
		if kind == vector.String {
			part = core.KeyPart{IsStr: true, S: *s}
		} else {
			part = core.KeyPart{I: *i}
		}
		parts := []core.KeyPart{part}
		if closeHi && len(dim.Key) > 1 {
			parts = append(parts, core.InfPart())
		}
		kv := core.KeyVal{Parts: parts}
		return &kv
	}
	if kind == vector.String {
		lo, hi = mk(nil, loS, false), mk(nil, hiS, true)
	} else {
		lo, hi = mk(loI, nil, false), mk(hiI, nil, true)
	}
	bLo, bHi := dim.BinRange(lo, hi)
	out := make(binSet, bHi-bLo+1)
	for b := bLo; b <= bHi; b++ {
		out[b] = true
	}
	return out
}

// localScanRestrictions derives static restrictions from a scan filter: for
// every local dimension use of the table, a conjunct restricting the
// dimension's leading key column to an interval or an IN list yields a bin
// set ("selection pushdown for a dimension ... used for clustering a
// table").
func localScanRestrictions(bt *core.BDCCTable, filter expr.Expr) restrictions {
	if filter == nil {
		return restrictions{}
	}
	out := restrictions{}
	implied := expr.ImpliedRanges(filter)
	for _, u := range bt.Uses {
		if len(u.Path) != 0 {
			continue
		}
		lead := u.Dim.Key[0]
		if r, ok := implied[lead]; ok && (r.HasLo || r.HasHi) {
			var loI, hiI *int64
			var loS, hiS *string
			if r.HasLo {
				loI, loS = &r.LoI, &r.LoS
			}
			if r.HasHi {
				hiI, hiS = &r.HiI, &r.HiS
			}
			out[useKey(u)] = binsForLeadingRange(u.Dim, r.Kind, loI, hiI, loS, hiS)
		}
		// IN lists with several constants escape ImpliedRanges; handle them
		// directly.
		for _, c := range expr.Conjuncts(filter) {
			in, ok := c.(*expr.InList)
			if !ok || in.Negate || len(in.Values) < 2 {
				continue
			}
			col, ok := in.Arg.(*expr.Col)
			if !ok || col.Name != lead {
				continue
			}
			bins := make(binSet)
			for _, v := range in.Values {
				var vb binSet
				switch v.K {
				case vector.Int64:
					vb = binsForLeadingRange(u.Dim, vector.Int64, &v.I, &v.I, nil, nil)
				case vector.String:
					vb = binsForLeadingRange(u.Dim, vector.String, nil, nil, &v.S, &v.S)
				default:
					continue
				}
				for b := range vb {
					bins[b] = true
				}
			}
			k := useKey(u)
			if cur, restricted := out[k]; restricted {
				merged := make(binSet)
				for b := range cur {
					if bins[b] {
						merged[b] = true
					}
				}
				out[k] = merged
			} else {
				out[k] = bins
			}
		}
	}
	return out
}

// binsForKeyValues maps a set of join-key values to dimension bins for one
// use of the probe base table. The values restrict probe stream column
// probeCol, which must be either the leading key column of a local
// dimension (case B: the region→nation prefix-range rewrite), or the
// foreign-key column of some hop h of the use's path (case A). For h > 0
// the restriction is only sound if every earlier hop's foreign key is
// actually equated by joins inside the probe subtree — `equated` carries
// those pairs. This is how a pre-executed dimension-side subtree's
// selection becomes a count-table restriction — the paper's "a region
// equi-selection determines a consecutive D_NATION bin range" generalized
// to arbitrary key sets at any depth of the dimension path.
func (p *Planner) binsForKeyValues(u *core.DimensionUse, probeCol string, vals []int64, equated map[string]bool) (binSet, error) {
	dim := u.Dim
	if len(u.Path) == 0 {
		if probeCol != dim.Key[0] {
			return nil, nil
		}
		bins := make(binSet)
		for _, v := range vals {
			vb := binsForLeadingRange(dim, vector.Int64, &v, &v, nil, nil)
			for b := range vb {
				bins[b] = true
			}
		}
		return bins, nil
	}
	hop := -1
	for h, fkName := range u.Path {
		fk := p.DB.Schema.FK(fkName)
		if fk == nil {
			return nil, nil
		}
		if len(fk.Cols) == 1 && fk.Cols[0] == probeCol {
			hop = h
			break
		}
	}
	if hop < 0 {
		return nil, nil
	}
	// Verify the hops leading to probeCol are joined within the probe
	// subtree (otherwise probeCol's values say nothing about the base
	// table's rows — the self-join safety condition).
	for h := 0; h < hop; h++ {
		fk := p.DB.Schema.FK(u.Path[h])
		for i := range fk.Cols {
			if !equated[fk.Cols[i]+"="+fk.RefCols[i]] {
				return nil, nil
			}
		}
	}
	m, err := p.valueBinMap(u, hop)
	if err != nil || m == nil {
		return nil, err
	}
	bins := make(binSet)
	for _, v := range vals {
		if b, ok := m[v]; ok {
			bins[b] = true
		}
	}
	return bins, nil
}

// valueBinMap returns (building and caching on first use) the map from hop
// h's reference key value to the dimension bin reached over the rest of the
// use's path.
func (p *Planner) valueBinMap(u *core.DimensionUse, hop int) (map[int64]uint64, error) {
	fk := p.DB.Schema.FK(u.Path[hop])
	key := u.Dim.Name + "|" + fk.Name
	if m, ok := p.binMaps[key]; ok {
		return m, nil
	}
	ref, ok := p.DB.Tables[fk.RefTable]
	if !ok {
		return nil, fmt.Errorf("plan: no stored table %q", fk.RefTable)
	}
	refCol, err := ref.Column(fk.RefCols[0])
	if err != nil {
		return nil, err
	}
	if refCol.Kind != vector.Int64 {
		return nil, nil
	}
	hostRows, err := p.resolver().HostRows(fk.RefTable, u.Path[hop+1:])
	if err != nil {
		return nil, err
	}
	dim := u.Dim
	host := p.DB.Tables[dim.Table]
	hostKeys, err := core.KeyValues(host, dim.Key)
	if err != nil {
		return nil, err
	}
	m := make(map[int64]uint64, len(refCol.I64))
	for i, v := range refCol.I64 {
		m[v] = dim.BinOf(hostKeys[hostRows[i]])
	}
	p.binMaps[key] = m
	return m, nil
}

// equatedPairs collects the column equalities established by equi-joins in
// a subtree, as "a=b" strings in both orders.
func equatedPairs(n Node, out map[string]bool) {
	switch t := n.(type) {
	case *Join:
		for i := range t.LeftKeys {
			out[t.LeftKeys[i]+"="+t.RightKeys[i]] = true
			out[t.RightKeys[i]+"="+t.LeftKeys[i]] = true
		}
		equatedPairs(t.Left, out)
		equatedPairs(t.Right, out)
	case *FilterNode:
		equatedPairs(t.Child, out)
	case *Project:
		equatedPairs(t.Child, out)
	case *Agg:
		equatedPairs(t.Child, out)
	case *OrderBy:
		equatedPairs(t.Child, out)
	case *LimitNode:
		equatedPairs(t.Child, out)
	case *TopNNode:
		equatedPairs(t.Child, out)
	}
}
