package plan

import (
	"bdcc/internal/catalog"
	"bdcc/internal/core"
)

// sharedPair couples a probe-base use with a build-base use of the same
// dimension such that the join's equated keys imply equal (prefix) bins on
// both sides — the applicability condition for sandwich operators and for
// restriction transfer across the join.
type sharedPair struct {
	uP *core.DimensionUse
	uR *core.DimensionUse
}

// useChoice is the grouping assignment of a base scan: scatter-scan in major
// order of this use, exposing the given number of group bits.
type useChoice struct {
	use  *core.DimensionUse
	bits int
}

// sharedDims finds all use pairs of probe base P and build base R whose bins
// are equated by the join keys. Three structural cases (DESIGN.md):
//
//	forward:   P reaches the dimension through the joined foreign key and
//	           onward along R's own path (uP.Path = …fk… ++ uR.Path with fk
//	           landing on R) — LINEITEM⋈ORDERS over FK_L_O;
//	common:    both sides hop over distinct foreign keys onto the same third
//	           table and continue identically — LINEITEM⋈PARTSUPP where
//	           FK_L_P and FK_PS_P both land on PART;
//	reverse:   the foreign key belongs to the build side and lands on P —
//	           CUSTOMER⋈ORDERS with FK_O_C (the paper's Q13 sandwich).
func (p *Planner) sharedDims(P, R *core.BDCCTable, leftKeys, rightKeys []string) []sharedPair {
	var out []sharedPair
	schema := p.DB.Schema
	for _, uP := range P.Uses {
		for _, uR := range R.Uses {
			if uP.Dim != uR.Dim {
				continue
			}
			if matchForward(schema, uP, uR, R.Name, leftKeys, rightKeys) ||
				matchCommon(schema, uP, uR, R.Name, leftKeys, rightKeys) ||
				matchReverse(schema, uP, uR, P.Name, leftKeys, rightKeys) {
				out = append(out, sharedPair{uP: uP, uR: uR})
			}
		}
	}
	return out
}

// keyPairs reports whether every (aCols[i], bCols[i]) pair is equated by the
// join keys (aKeys[j] == aCols[i] with bKeys[j] == bCols[i]).
func keyPairs(aCols, bCols, aKeys, bKeys []string) bool {
	if len(aCols) != len(bCols) || len(aCols) == 0 {
		return false
	}
	for i := range aCols {
		found := false
		for j := range aKeys {
			if aKeys[j] == aCols[i] && bKeys[j] == bCols[i] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// stripAlias removes the "<alias>_" rename prefix from key names so they
// match catalog column names again.
func stripAlias(alias string, keys []string) []string {
	prefix := alias + "_"
	out := make([]string, len(keys))
	for i, k := range keys {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out[i] = k[len(prefix):]
		} else {
			out[i] = k
		}
	}
	return out
}

func pathsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func matchForward(schema *catalog.Schema, uP, uR *core.DimensionUse, buildTable string, leftKeys, rightKeys []string) bool {
	k := len(uP.Path) - len(uR.Path)
	if k < 1 || !pathsEqual(uP.Path[k:], uR.Path) {
		return false
	}
	fk := schema.FK(uP.Path[k-1])
	if fk == nil || fk.RefTable != buildTable {
		return false
	}
	return keyPairs(fk.Cols, fk.RefCols, leftKeys, rightKeys)
}

func matchCommon(schema *catalog.Schema, uP, uR *core.DimensionUse, buildTable string, leftKeys, rightKeys []string) bool {
	if len(uR.Path) < 1 {
		return false
	}
	fkR := schema.FK(uR.Path[0])
	if fkR == nil || fkR.Table != buildTable {
		return false
	}
	k := len(uP.Path) - (len(uR.Path) - 1)
	if k < 1 || !pathsEqual(uP.Path[k:], uR.Path[1:]) {
		return false
	}
	fkP := schema.FK(uP.Path[k-1])
	if fkP == nil || fkP.RefTable != fkR.RefTable || !pathsEqual(fkP.RefCols, fkR.RefCols) {
		return false
	}
	return keyPairs(fkP.Cols, fkR.Cols, leftKeys, rightKeys)
}

func matchReverse(schema *catalog.Schema, uP, uR *core.DimensionUse, probeTable string, leftKeys, rightKeys []string) bool {
	k := len(uR.Path) - len(uP.Path)
	if k < 1 || !pathsEqual(uR.Path[k:], uP.Path) {
		return false
	}
	fk := schema.FK(uR.Path[k-1])
	if fk == nil || fk.RefTable != probeTable {
		return false
	}
	return keyPairs(fk.RefCols, fk.Cols, leftKeys, rightKeys)
}

// baseScan walks to the base scan of a pipeline: the scan reached through
// probe (left) children of joins and through group-preserving unary
// operators (filters, projections, aggregations that may flush per group).
func baseScan(n Node) *Scan {
	for {
		switch t := n.(type) {
		case *Scan:
			return t
		case *Join:
			n = t.Left
		case *FilterNode:
			n = t.Child
		case *Project:
			n = t.Child
		case *Agg:
			n = t.Child
		case *LimitNode:
			n = t.Child
		default:
			return nil
		}
	}
}

// preanalyze decides, before lowering, which dimension use every join chain
// aligns on and therefore which base scans become scatter scans. A chain is
// the sequence of joins along probe (left) children; all its sandwich joins
// share one alignment dimension so the probe stream's group order serves
// every join (the build side of each sandwiched join is forced to group on
// its matched use). Joins in the chain that do not share the chosen
// dimension stay hash joins — the probe's group tags pass through them
// unharmed.
func (p *Planner) preanalyze(n Node, forced *core.DimensionUse) {
	switch t := n.(type) {
	case *Scan:
		return
	case *FilterNode:
		p.preanalyze(t.Child, forced)
	case *Project:
		p.preanalyze(t.Child, forced)
	case *Agg:
		p.preanalyze(t.Child, forced)
	case *OrderBy:
		p.preanalyze(t.Child, nil)
	case *LimitNode:
		p.preanalyze(t.Child, forced)
	case *TopNNode:
		p.preanalyze(t.Child, nil)
	case *Join:
		p.analyzeChain(t, forced)
	}
}

// analyzeChain handles one join chain rooted at top.
func (p *Planner) analyzeChain(top *Join, forced *core.DimensionUse) {
	// Collect the spine of joins down the probe side.
	var spine []*Join
	n := Node(top)
spineWalk:
	for {
		switch t := n.(type) {
		case *Join:
			spine = append(spine, t)
			n = t.Left
		case *FilterNode:
			n = t.Child
		case *Project:
			n = t.Child
		case *Agg:
			n = t.Child
		case *LimitNode:
			n = t.Child
		default:
			break spineWalk
		}
	}
	base := baseScan(spine[len(spine)-1].Left)
	var P *core.BDCCTable
	if base != nil && base.Alias == "" && p.DB.Scheme == BDCC {
		P = p.DB.BDCCTable(base.Table)
	}
	if P == nil {
		for _, j := range spine {
			p.preanalyze(j.Right, nil)
		}
		return
	}
	// Shared pairs per join, innermost first.
	type joinShared struct {
		j     *Join
		pairs []sharedPair
	}
	var shared []joinShared
	counts := make(map[*core.DimensionUse]int)
	for i := len(spine) - 1; i >= 0; i-- {
		j := spine[i]
		var pairs []sharedPair
		rbase := baseScan(j.Right)
		if rbase != nil {
			if R := p.DB.BDCCTable(rbase.Table); R != nil {
				// Aliased scans rename columns "<alias>_<col>"; strip the
				// prefix so self-joins (TPC-H Q21's lineitem l2/l3) can
				// still be matched and sandwiched.
				rightKeys := j.RightKeys
				if rbase.Alias != "" {
					rightKeys = stripAlias(rbase.Alias, j.RightKeys)
				}
				pairs = p.sharedDims(P, R, j.LeftKeys, rightKeys)
			}
		}
		shared = append(shared, joinShared{j: j, pairs: pairs})
		p.joinPairs[j] = pairs
		seen := map[*core.DimensionUse]bool{}
		for _, pr := range pairs {
			if !seen[pr.uP] {
				seen[pr.uP] = true
				counts[pr.uP]++
			}
		}
	}
	// Choose the alignment use: the forced one if the parent sandwiches this
	// subtree, else the use shared by the most joins (ties: use order).
	var star *core.DimensionUse
	if forced != nil {
		star = forced
	} else {
		best := 0
		for _, u := range P.Uses {
			if c := counts[u]; c > best {
				best = c
				star = u
			}
		}
	}
	if star != nil {
		p.scanChoice[base] = &useChoice{use: star, bits: core.Ones(star.Mask)}
		for _, js := range shared {
			for _, pr := range js.pairs {
				if pr.uP == star {
					pair := pr
					p.alignment[js.j] = &pair
					break
				}
			}
		}
	}
	// Recurse into build sides, forcing the matched use where sandwiched.
	for _, js := range shared {
		var buildForced *core.DimensionUse
		if al := p.alignment[js.j]; al != nil {
			buildForced = al.uR
			// The build base scan must scatter on the matched use even if
			// the build side has no joins of its own.
			if rbase := baseScan(js.j.Right); rbase != nil {
				if _, isJoin := js.j.Right.(*Join); !isJoin {
					p.scanChoice[rbase] = &useChoice{use: al.uR, bits: core.Ones(al.uR.Mask)}
				}
			}
		}
		p.preanalyze(js.j.Right, buildForced)
	}
}
