// Package plan defines logical query plans and lowers them to physical
// operator trees per storage scheme — the reproduction's three competitors:
//
//   - Plain: unindexed insertion-order tables; hash joins and hash
//     aggregation everywhere, MinMax (zonemap) pruning structurally present
//     but ineffective without clustering.
//   - PK: tables sorted on their primary keys; merge joins where both inputs
//     share the key order (LINEITEM⋈ORDERS, PART⋈PARTSUPP) and streaming
//     aggregation over key order.
//   - BDCC: the paper's scheme. The planner rewrites selections on dimension
//     keys into count-table group restrictions (selection pushdown),
//     propagates restrictions across joins whose foreign-key paths connect
//     co-clustered tables (selection propagation), pre-executes small
//     dimension-side subtrees to turn their selections into bin sets (the
//     paper's "region equi-selection determines a consecutive D_NATION bin
//     range" rewrite), places sandwich operators on joins and aggregations
//     aligned on shared dimensions, and leaves tuple-level predicates in the
//     scans so every rewrite only needs to be conservative.
//
// One logical plan per query is written once; lowering it under the three
// schemes is what makes the reproduction's comparisons apples-to-apples.
package plan

import (
	"bdcc/internal/engine"
	"bdcc/internal/expr"
)

// Node is a logical plan node.
type Node interface{ isNode() }

// Scan reads a base table. Filter is expressed over the table's original
// column names; when Alias is set, every output column is renamed
// "<alias>_<name>" after filtering, so self-joined tables stay
// distinguishable further up the plan.
type Scan struct {
	Table  string
	Alias  string
	Cols   []string
	Filter expr.Expr
}

// Join is an equi-join; Left is the probe side (put the fact pipeline
// here), Right the build side. Residual is an extra non-equi condition over
// the combined row (left columns then right columns).
type Join struct {
	Left, Right         Node
	LeftKeys, RightKeys []string
	Type                engine.JoinType
	Residual            expr.Expr
}

// Agg groups by columns and computes aggregates.
type Agg struct {
	Child   Node
	GroupBy []string
	Aggs    []engine.AggSpec
}

// Project computes scalar expressions.
type Project struct {
	Child Node
	Cols  []engine.ProjCol
}

// FilterNode applies a predicate above other operators (scan-level
// predicates belong in Scan.Filter).
type FilterNode struct {
	Child Node
	Pred  expr.Expr
}

// OrderBy sorts the (usually already aggregated) stream.
type OrderBy struct {
	Child Node
	By    []engine.SortSpec
}

// LimitNode truncates the stream after N rows.
type LimitNode struct {
	Child Node
	N     int
}

// TopNNode is OrderBy+Limit fused into a bounded-memory operator.
type TopNNode struct {
	Child Node
	By    []engine.SortSpec
	N     int
}

// Materialized embeds an already-computed result (scalar subqueries and
// views evaluated once per query, e.g. TPC-H Q15's revenue view).
type Materialized struct {
	Res *engine.Result
}

func (*Scan) isNode()         {}
func (*Materialized) isNode() {}
func (*Join) isNode()         {}
func (*Agg) isNode()          {}
func (*Project) isNode()      {}
func (*FilterNode) isNode()   {}
func (*OrderBy) isNode()      {}
func (*LimitNode) isNode()    {}
func (*TopNNode) isNode()     {}
