package plan

import (
	"fmt"
	"sort"

	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/shard"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Planner lowers logical plans to physical operator trees for one physical
// database. A planner is single-use per query execution (it owns the
// execution context used for pre-executed subtrees).
type Planner struct {
	DB  *DB
	Ctx *engine.Context
	// PropagationThreshold bounds the base-table size of build subtrees the
	// BDCC planner pre-executes for key-set propagation; 0 means 300000.
	PropagationThreshold int
	// PreExecRowCap bounds the result size usable for key-set restrictions.
	PreExecRowCap int
	// Log collects EXPLAIN-style decisions.
	Log []string

	res        *core.Resolver
	binMaps    map[string]map[int64]uint64
	scanChoice map[*Scan]*useChoice
	alignment  map[*Join]*sharedPair
	joinPairs  map[*Join][]sharedPair
	// set is the planner-owned backend set behind Ctx.Backends, kept for the
	// partitioned-scan path (PartitionTable and the per-worker scan
	// accountants live on the set, not on the engine-facing Backend slice).
	// nil when single-box or when the context borrowed a shared set.
	set *shard.Set

	// memo/sites support plan caching (cache.go): an attached incomplete
	// memo records this planner's decisions, a completed one replays them.
	memo  *Memo
	sites *siteIndex
}

// NewPlanner returns a planner for one query execution.
func NewPlanner(db *DB, ctx *engine.Context) *Planner {
	return &Planner{
		DB:                   db,
		Ctx:                  ctx,
		PropagationThreshold: 300_000,
		PreExecRowCap:        65_536,
		binMaps:              make(map[string]map[int64]uint64),
		scanChoice:           make(map[*Scan]*useChoice),
		alignment:            make(map[*Join]*sharedPair),
		joinPairs:            make(map[*Join][]sharedPair),
	}
}

func (p *Planner) resolver() *core.Resolver {
	if p.res == nil {
		p.res = core.NewResolver(p.DB.Schema, p.DB.Tables)
	}
	return p.res
}

func (p *Planner) logf(format string, args ...any) {
	p.Log = append(p.Log, fmt.Sprintf(format, args...))
}

// streamInfo describes what the planner knows about a lowered subtree's
// output stream.
type streamInfo struct {
	// base is the BDCC table at the bottom of the probe pipeline (nil when
	// the pipeline is not BDCC-clustered).
	base *core.BDCCTable
	// groupUse/groupBits describe the stream's group tags (nil/0 when the
	// stream is ungrouped).
	groupUse  *core.DimensionUse
	groupBits int
	// order is the column prefix the stream is sorted on.
	order []string
	// restr are the stream's known dimension restrictions, anchored at base.
	restr restrictions
}

// UseMemo attaches a plan memo (see cache.go). An incomplete memo records
// this planner's decisions during Plan; a completed one replays them onto
// the fresh tree, skipping preanalysis and pre-execution subqueries. The
// caller must present the same logical plan shape, database, and
// plan-shaping knobs the memo was recorded against.
func (p *Planner) UseMemo(m *Memo) { p.memo = m }

// Plan lowers a logical plan into an executable operator tree.
func (p *Planner) Plan(n Node) (engine.Operator, error) {
	if p.memo != nil {
		p.sites = indexSites(n)
	}
	if p.memo.Completed() {
		p.replayAnalysis()
	} else if p.DB.Scheme == BDCC {
		p.preanalyze(n, nil)
	}
	op, _, err := p.lower(n, restrictions{})
	if err == nil && p.memo != nil && !p.memo.Completed() {
		p.recordAnalysis()
	}
	return op, err
}

// Run lowers and executes a logical plan.
func (p *Planner) Run(n Node) (*engine.Result, error) {
	op, err := p.Plan(n)
	if err != nil {
		return nil, err
	}
	return engine.Run(p.Ctx, op)
}

func (p *Planner) lower(n Node, inherited restrictions) (engine.Operator, *streamInfo, error) {
	switch t := n.(type) {
	case *Scan:
		return p.lowerScan(t, inherited)
	case *Materialized:
		return &engine.Values{Rows: t.Res}, &streamInfo{restr: restrictions{}}, nil
	case *Join:
		return p.lowerJoin(t, inherited)
	case *Agg:
		return p.lowerAgg(t, inherited)
	case *Project:
		op, info, err := p.lower(t.Child, inherited)
		if err != nil {
			return nil, nil, err
		}
		out := &engine.Project{Child: op, Cols: t.Cols}
		// A projection keeps group tags but invalidates column-order info
		// unless the sort columns survive; conservatively keep order only
		// for pass-through column references.
		kept := info.withOrder(projectedOrder(info.order, t.Cols))
		return out, kept, nil
	case *FilterNode:
		op, info, err := p.lower(t.Child, inherited)
		if err != nil {
			return nil, nil, err
		}
		return &engine.Filter{Child: op, Pred: t.Pred}, info, nil
	case *OrderBy:
		op, info, err := p.lower(t.Child, inherited)
		if err != nil {
			return nil, nil, err
		}
		out := &engine.Sort{Child: op, By: t.By}
		return out, &streamInfo{order: sortOrder(t.By), restr: info.restr}, nil
	case *LimitNode:
		op, info, err := p.lower(t.Child, inherited)
		if err != nil {
			return nil, nil, err
		}
		return &engine.Limit{Child: op, N: t.N}, info, nil
	case *TopNNode:
		op, info, err := p.lower(t.Child, inherited)
		if err != nil {
			return nil, nil, err
		}
		out := &engine.TopN{Child: op, By: t.By, N: t.N}
		return out, &streamInfo{order: sortOrder(t.By), restr: info.restr}, nil
	default:
		return nil, nil, fmt.Errorf("plan: cannot lower %T", n)
	}
}

func (s *streamInfo) withOrder(order []string) *streamInfo {
	c := *s
	c.order = order
	return &c
}

func sortOrder(by []engine.SortSpec) []string {
	var out []string
	for _, b := range by {
		if b.Desc {
			break
		}
		out = append(out, b.Col)
	}
	return out
}

// projectedOrder keeps the order prefix as long as its columns pass through
// the projection under the same name.
func projectedOrder(order []string, cols []engine.ProjCol) []string {
	passthrough := make(map[string]bool)
	for _, c := range cols {
		if ref, ok := c.Expr.(*expr.Col); ok && ref.Name == c.Name {
			passthrough[c.Name] = true
		}
	}
	var out []string
	for _, o := range order {
		if !passthrough[o] {
			break
		}
		out = append(out, o)
	}
	return out
}

// lowerScan plans a base-table access.
func (p *Planner) lowerScan(s *Scan, inherited restrictions) (engine.Operator, *streamInfo, error) {
	stored, err := p.DB.StoredTable(s.Table)
	if err != nil {
		return nil, nil, err
	}
	var rename []string
	if s.Alias != "" {
		rename = make([]string, len(s.Cols))
		for i, c := range s.Cols {
			rename[i] = s.Alias + "_" + c
		}
	}
	info := &streamInfo{restr: restrictions{}}
	if p.DB.Scheme == PK {
		info.order = p.DB.SortedBy[s.Table]
		if s.Alias != "" {
			info.order = nil
		}
	}
	bt := p.DB.BDCCTable(s.Table)
	if bt == nil || (s.Alias != "" && p.scanChoice[s] == nil) {
		ranges := p.zonemapPrune(stored, s.Filter, storage.FullRange(stored.Rows()))
		op := &engine.TableScan{Table: stored, Cols: s.Cols, Ranges: ranges, Filter: s.Filter, Push: pushPreds(stored, s.Filter, s.Cols), Rename: rename, Sched: p.sched()}
		if rows := ranges.Rows(); rows < stored.Rows() {
			p.logf("scan %s%s: minmax pruned to %d of %d rows", s.Table, aliasSuffix(s.Alias), rows, stored.Rows())
		}
		return op, info, nil
	}
	info.base = bt
	// Count-table restriction: local pushdown plus inherited propagation.
	// Aliased scans participate in sandwich alignment but not in restriction
	// propagation (their renamed columns are invisible to the rewriter).
	restr := restrictions{}
	if s.Alias == "" {
		restr = localScanRestrictions(bt, s.Filter)
		restr.intersectInto(inherited)
	}
	entries := bt.Count
	for _, u := range bt.Uses {
		bins, ok := restr[useKey(u)]
		if !ok {
			continue
		}
		entries = core.IntersectEntries(entries, bt.SelectBinSet(u, bins))
	}
	if len(entries) < len(bt.Count) {
		p.logf("scan %s: bdcc pushdown to %d of %d groups (%d of %d rows)",
			s.Table, len(entries), len(bt.Count), core.TotalRows(entries), bt.Rows())
	}
	info.restr = restr
	if choice := p.scanChoice[s]; choice != nil {
		idx := -1
		for i, u := range bt.Uses {
			if u == choice.use {
				idx = i
			}
		}
		if idx < 0 {
			return nil, nil, fmt.Errorf("plan: scatter use %s not found on %s", useKey(choice.use), s.Table)
		}
		groups, err := bt.ScatterPlan([]int{idx}, []int{choice.bits}, entries)
		if err != nil {
			return nil, nil, err
		}
		groups = p.pruneGroups(stored, s.Filter, groups)
		p.logf("scan %s%s: scatter scan on %s (%d bits, %d groups)",
			s.Table, aliasSuffix(s.Alias), choice.use.Dim.Name, choice.bits, len(groups))
		op := &engine.GroupedScan{BDCC: bt, Cols: s.Cols, Groups: groups, Filter: s.Filter, Push: pushPreds(stored, s.Filter, s.Cols), Rename: rename, Sched: p.sched()}
		info.groupUse = choice.use
		info.groupBits = choice.bits
		if err := p.partitionScan(s, bt, stored, groups, op); err != nil {
			return nil, nil, err
		}
		return op, info, nil
	}
	ranges := p.zonemapPrune(stored, s.Filter, core.EntriesRanges(entries))
	op := &engine.TableScan{Table: stored, Cols: s.Cols, Ranges: ranges, Filter: s.Filter, Push: pushPreds(stored, s.Filter, s.Cols), Sched: p.sched()}
	return op, info, nil
}

// sched returns the one scheduler handle of this query — the shared
// worker pool owned by the execution context — injected into every operator
// the planner permits to parallelize. nil (Workers below 2) keeps every
// operator on its serial path, preserving the paper's single-threaded
// measurement setup.
func (p *Planner) sched() *engine.Sched {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Scheduler()
}

// backends returns the query's backend set — one set per query, installed
// lazily on the execution context the first time a plan places an operator
// that can shard its group stream. nil (Shards below 2 and no Remotes)
// keeps execution single-box, preserving the paper's measurement setup.
// With Remotes configured, the set dials one TCP backend per bdccworker
// address — a worker down at dial time joins the set down and the health
// prober re-admits it when it answers, so only an empty address list fails
// the query; otherwise the set's simulated remotes each run max(1, Workers)
// pool goroutines. Either set shares one network accountant (Context.Net),
// records per-backend routed loads (Context.Loads) and failover health
// (Context.Health), and places groups by hash or — under Balance "size" —
// by least cumulative bytes. The query owner closes the set via
// Context.CloseBackends after execution.
func (p *Planner) backends() ([]engine.Backend, error) {
	if p.Ctx == nil || (p.Ctx.Shards < 2 && len(p.Ctx.Remotes) == 0) {
		return nil, nil
	}
	if p.Ctx.Backends == nil {
		var set *shard.Set
		if len(p.Ctx.Remotes) > 0 {
			var err error
			set, err = shard.DialSetConfig(p.Ctx.Remotes, shard.PaperNet(), shard.SetConfig{
				Probe:     shard.ProbeConfig{Base: p.Ctx.ProbeBase, Max: p.Ctx.ProbeMax},
				AuthToken: p.Ctx.AuthToken,
			})
			if err != nil {
				return nil, err
			}
		} else {
			workers := p.Ctx.Workers
			if workers < 1 {
				workers = 1
			}
			set = shard.NewSet(p.Ctx.Shards, workers, shard.PaperNet())
		}
		if p.Ctx.Balance == "size" {
			set.BalanceBySize()
		}
		p.set = set
		p.Ctx.Backends = set.Backends()
		p.Ctx.Route = set.Route
		p.Ctx.Net = set.Net()
		p.Ctx.Loads = set.Loads
		p.Ctx.Health = set.Health
		p.Ctx.FallbackUnits = set.LocalFallbackUnits
	}
	return p.Ctx.Backends, nil
}

// partitionScan moves a scatter scan onto the shared-nothing path when the
// Partition knob is set: the base table is partitioned across the query's
// workers by BDCC cell blocks (see internal/shard's Partitioning and
// docs/PARTITIONING.md), each worker receives its blocks once per query
// setup, and the scan lowers to a PartScanPlan whose units ship row ranges
// to the worker owning them instead of reading pages locally. The
// coordinator keeps a fully prepared query-side fragment: it is the
// failover path, re-scanning a down worker's units from the local copy.
//
// The path requires a planner-owned backend set — a shared set (the bdccd
// daemon's) stays on the ordinary scatter scan, as does a single-box
// context; both leave the operator untouched. Predicate pushdown is
// dropped on this path: pushed intervals prune by encoded chunk layout,
// which differs between the coordinator's table and a recompressed shipped
// partition, and the sites re-apply the full filter anyway.
func (p *Planner) partitionScan(s *Scan, bt *core.BDCCTable, stored *storage.Table, groups []core.ScatterGroup, op *engine.GroupedScan) error {
	if p.Ctx == nil || !p.Ctx.Partition {
		return nil
	}
	bks, err := p.backends()
	if err != nil {
		return err
	}
	if len(bks) == 0 || p.set == nil {
		return nil
	}
	part := p.set.PartitionTable(bt.Name, stored, bt.Count)
	p.set.EnableScanIO(p.DB.Device)
	p.Ctx.WorkerIO = p.set.ScanIO

	schema := make(expr.Schema, len(s.Cols))
	for i, name := range s.Cols {
		ci := stored.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("plan: table %q has no column %q", s.Table, name)
		}
		schema[i] = expr.ColMeta{Name: name, Kind: stored.Cols[ci].Kind}
	}
	frag := &engine.Fragment{
		Kind:     engine.FragScan,
		Table:    bt.Name,
		Probe:    schema,
		Residual: s.Filter,
		// The coordinator resolves the table to its own full copy at
		// original offsets (identity map): Prepare needs it to validate the
		// plan, and the failover re-scan reads through it.
		Src: func(string) (engine.ScanTable, error) {
			return engine.ScanTable{Tab: stored}, nil
		},
		Acct: p.Ctx.Acct,
	}
	if err := frag.Prepare(); err != nil {
		return err
	}
	var units []engine.PartScanUnit
	for _, g := range groups {
		runs, err := part.SplitGroup(g.Ranges)
		if err != nil {
			return err
		}
		for _, r := range runs {
			units = append(units, engine.PartScanUnit{GID: g.GroupID, Slot: r.Worker, Ranges: r.Ranges})
		}
	}
	op.Push = nil
	op.Part = &engine.PartScanPlan{Frag: frag, Units: units, Backends: bks}
	p.logf("scan %s%s: partitioned over %d workers (%d scan units)",
		s.Table, aliasSuffix(s.Alias), len(bks), len(units))
	return nil
}

func aliasSuffix(alias string) string {
	if alias == "" {
		return ""
	}
	return " (" + alias + ")"
}

// zonemapPrune intersects row ranges with the MinMax-qualified pages for
// every analyzable conjunct of the filter.
func (p *Planner) zonemapPrune(t *storage.Table, filter expr.Expr, in storage.RowRanges) storage.RowRanges {
	if filter == nil {
		return in
	}
	for col, r := range expr.ImpliedRanges(filter) {
		if t.ColumnIndex(col) < 0 {
			continue
		}
		iv := storage.Interval{}
		if r.HasLo {
			iv.Lo = storage.Bound{Set: true, I: r.LoI, S: r.LoS}
		}
		if r.HasHi {
			iv.Hi = storage.Bound{Set: true, I: r.HiI, S: r.HiS}
		}
		in = t.PruneZonemap(col, iv, in)
	}
	return in
}

// pushPreds builds reader pushdown intervals from the filter's analyzable
// conjuncts over the scanned columns. Only compressed tables benefit (the
// reader prunes on the encoded form — RLE runs and dictionary codes), so
// uncompressed tables get none. PushPred.Col indexes the scan's cols slice.
// The scan re-applies the full filter, so pushdown never changes results.
func pushPreds(t *storage.Table, filter expr.Expr, cols []string) []storage.PushPred {
	if filter == nil || !t.Compressed() {
		return nil
	}
	var push []storage.PushPred
	for col, r := range expr.ImpliedRanges(filter) {
		for i, name := range cols {
			if name != col {
				continue
			}
			iv := storage.Interval{}
			if r.HasLo {
				iv.Lo = storage.Bound{Set: true, I: r.LoI, S: r.LoS}
			}
			if r.HasHi {
				iv.Hi = storage.Bound{Set: true, I: r.HiI, S: r.HiS}
			}
			push = append(push, storage.PushPred{Col: i, Iv: iv})
		}
	}
	return push
}

// pruneGroups applies zonemap pruning inside every scatter group.
func (p *Planner) pruneGroups(t *storage.Table, filter expr.Expr, groups []core.ScatterGroup) []core.ScatterGroup {
	if filter == nil {
		return groups
	}
	out := groups[:0]
	for _, g := range groups {
		ranges := p.zonemapPrune(t, filter, g.Ranges)
		if len(ranges) == 0 {
			continue
		}
		g.Ranges = ranges
		out = append(out, g)
	}
	return out
}

// lowerJoin plans a join: sandwich where the chain analysis aligned it,
// merge join under PK where both inputs share the key order, hash join
// otherwise. Build sides are lowered (and possibly pre-executed) first so
// their selections propagate into the probe side's scans.
func (p *Planner) lowerJoin(j *Join, inherited restrictions) (engine.Operator, *streamInfo, error) {
	al := p.alignment[j]
	buildOp, buildInfo, err := p.lower(j.Right, restrictions{})
	if err != nil {
		return nil, nil, err
	}
	sandwich := al != nil &&
		buildInfo.groupUse == al.uR && buildInfo.groupBits > 0
	// Restriction transfer (selection propagation) across matched uses,
	// valid for inner and semi joins only.
	transferred := restrictions{}
	if j.Type == engine.InnerJoin || j.Type == engine.SemiJoin {
		for _, pr := range p.joinPairs[j] {
			if bins, ok := buildInfo.restr[useKey(pr.uR)]; ok {
				transferred[useKey(pr.uP)] = bins
				p.logf("join: propagate %s restriction (%d bins) from %s to probe",
					pr.uR.Dim.Name, len(bins), pr.uR.Dim.Table)
			}
		}
		// Key-set propagation from small build sides (pre-execution).
		if p.DB.Scheme == BDCC && len(j.LeftKeys) == 1 {
			buildOp, err = p.preExecPropagate(j, sandwich, buildOp, transferred)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	probeIn := inherited.clone()
	probeIn.intersectInto(transferred)
	probeOp, probeInfo, err := p.lower(j.Left, probeIn)
	if err != nil {
		return nil, nil, err
	}
	outInfo := &streamInfo{
		base:      probeInfo.base,
		groupUse:  probeInfo.groupUse,
		groupBits: probeInfo.groupBits,
		order:     probeInfo.order,
		restr:     probeInfo.restr.clone(),
	}
	outInfo.restr.intersectInto(transferred)
	if sandwich && probeInfo.groupUse == al.uP && probeInfo.groupBits > 0 {
		g := probeInfo.groupBits
		if buildInfo.groupBits < g {
			g = buildInfo.groupBits
		}
		op := &engine.SandwichHashJoin{
			Left: probeOp, Right: buildOp,
			LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
			Type: j.Type, Residual: j.Residual,
			ProbeShift: uint(probeInfo.groupBits - g),
			BuildShift: uint(buildInfo.groupBits - g),
			Sched:      p.sched(),
		}
		bks, err := p.backends()
		if err != nil {
			return nil, nil, err
		}
		if bks != nil {
			// Scale-out seam: ship the aligned group stream across the
			// query's backend set (simulated remotes, or dialed bdccworker
			// daemons when Remotes is configured), placed by the router. The
			// group join runs wherever the router says — and wherever
			// failover reroutes it; the exchange's group-order merge keeps
			// results byte-identical to the single-box run.
			op.Backends = bks
			op.Route = p.Ctx.Route
			p.logf("join: sandwich hash join on %s (%d group bits, groups sharded over %d backends, %d workers each)",
				al.uP.Dim.Name, g, len(bks), bks[0].Workers())
		} else if p.sched() != nil {
			p.logf("join: sandwich hash join on %s (%d group bits, group-pipelined over %d workers)",
				al.uP.Dim.Name, g, p.Ctx.Workers)
		} else {
			p.logf("join: sandwich hash join on %s (%d group bits)", al.uP.Dim.Name, g)
		}
		return op, outInfo, nil
	}
	if p.DB.Scheme == PK && j.Type == engine.InnerJoin && j.Residual == nil &&
		len(j.LeftKeys) == 1 &&
		hasOrderPrefix(probeInfo.order, j.LeftKeys[0]) &&
		hasOrderPrefix(buildInfo.order, j.RightKeys[0]) {
		p.logf("join: merge join on %s = %s", j.LeftKeys[0], j.RightKeys[0])
		return &engine.MergeJoin{
			Left: probeOp, Right: buildOp,
			LeftKey: j.LeftKeys[0], RightKey: j.RightKeys[0],
		}, outInfo, nil
	}
	if p.sched() != nil {
		p.logf("join: hash join on %v morsel-parallel (%d workers)", j.LeftKeys, p.Ctx.Workers)
	}
	return &engine.HashJoin{
		Left: probeOp, Right: buildOp,
		LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
		Type: j.Type, Residual: j.Residual,
		Sched: p.sched(),
	}, outInfo, nil
}

func hasOrderPrefix(order []string, col string) bool {
	return len(order) > 0 && order[0] == col
}

// mergeTransferredBins intersects bins into transferred under key k,
// allocating a fresh merged set on overlap so neither input is mutated —
// the recorded bin sets of a memo replay alias into transferred safely.
func mergeTransferredBins(transferred restrictions, k string, bins binSet) {
	if cur, ok := transferred[k]; ok {
		merged := make(binSet)
		for b := range cur {
			if bins[b] {
				merged[b] = true
			}
		}
		transferred[k] = merged
	} else {
		transferred[k] = bins
	}
}

// preExecPropagate executes a small build subtree to convert its join-key
// set into probe-side bin restrictions. For sandwich joins the subtree runs
// once more in grouped form, so the planning run is charged to neither the
// I/O nor the memory meter (the rewriter-style lookup); for plain hash
// joins the materialized rows feed the real join and the run is charged
// normally.
//
// Under a completed memo the subtree does not run at all: the recorded raw
// bin sets replay through the same merge as recording used, and a recorded
// materialized build result substitutes for re-executing the build.
func (p *Planner) preExecPropagate(j *Join, sandwich bool, buildOp engine.Operator, transferred restrictions) (engine.Operator, error) {
	if p.memo.Completed() {
		pe := p.memo.preExec[p.sites.joinOf[j]]
		if pe == nil {
			return buildOp, nil
		}
		for k, bins := range pe.raw {
			mergeTransferredBins(transferred, k, bins)
			p.logf("join: replayed pre-executed build restriction %s (%d bins)", k, len(bins))
		}
		if pe.res != nil {
			return &engine.Values{Rows: pe.res}, nil
		}
		return buildOp, nil
	}
	probeBase := baseScan(j.Left)
	if probeBase == nil || probeBase.Alias != "" {
		return buildOp, nil
	}
	bt := p.DB.BDCCTable(probeBase.Table)
	if bt == nil {
		return buildOp, nil
	}
	if !p.subtreeSmall(j.Right) {
		return buildOp, nil
	}
	probeCol := j.LeftKeys[0]
	var res *engine.Result
	var err error
	if sandwich {
		// Plan-time lookup: re-lower ungrouped with free meters.
		scratch := &Planner{
			DB: p.DB, Ctx: &engine.Context{},
			PropagationThreshold: 0, PreExecRowCap: p.PreExecRowCap,
			binMaps:    p.binMaps,
			scanChoice: map[*Scan]*useChoice{},
			alignment:  map[*Join]*sharedPair{},
			joinPairs:  map[*Join][]sharedPair{},
		}
		op, _, err2 := scratch.lower(j.Right, restrictions{})
		if err2 != nil {
			return buildOp, err2
		}
		res, err = engine.Run(scratch.Ctx, op)
	} else {
		res, err = engine.Run(p.Ctx, buildOp)
	}
	if err != nil {
		return buildOp, err
	}
	rec := &preExecMemo{}
	if p.memo != nil && p.sites != nil {
		p.memo.preExec[p.sites.joinOf[j]] = rec
	}
	if res.Rows() > p.PreExecRowCap {
		if sandwich {
			return buildOp, nil
		}
		rec.res = res
		return &engine.Values{Rows: res}, nil
	}
	ci := res.Schema.IndexOf(j.RightKeys[0])
	if ci >= 0 && res.Schema[ci].Kind == vector.Int64 {
		vals := distinctInt64(res.Cols[ci].I64)
		equated := make(map[string]bool)
		equatedPairs(j.Left, equated)
		raw := make(map[string]binSet)
		for _, u := range bt.Uses {
			bins, err := p.binsForKeyValues(u, probeCol, vals, equated)
			if err != nil {
				return buildOp, err
			}
			if bins == nil {
				continue
			}
			k := useKey(u)
			raw[k] = bins
			mergeTransferredBins(transferred, k, bins)
			p.logf("join: pre-executed build (%d keys) restricts %s via %s to %d bins",
				len(vals), probeBase.Table, k, len(bins))
		}
		rec.raw = raw
	}
	if sandwich {
		return buildOp, nil
	}
	rec.res = res
	return &engine.Values{Rows: res}, nil
}

// subtreeSmall reports whether every base table of a subtree is under the
// propagation threshold.
func (p *Planner) subtreeSmall(n Node) bool {
	limit := p.PropagationThreshold
	if limit == 0 {
		limit = 300_000
	}
	small := true
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			if tab, ok := p.DB.Tables[t.Table]; !ok || tab.Rows() > limit {
				small = false
			}
		case *Join:
			walk(t.Left)
			walk(t.Right)
		case *FilterNode:
			walk(t.Child)
		case *Project:
			walk(t.Child)
		case *Agg:
			walk(t.Child)
		case *OrderBy:
			walk(t.Child)
		case *LimitNode:
			walk(t.Child)
		case *TopNNode:
			walk(t.Child)
		}
	}
	walk(n)
	return small
}

func distinctInt64(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// lowerAgg plans an aggregation: sandwich (flush-per-group) when the stream
// is grouped and the grouping keys determine the group dimension, streaming
// when the input already arrives in group-key order, hash otherwise.
func (p *Planner) lowerAgg(a *Agg, inherited restrictions) (engine.Operator, *streamInfo, error) {
	childOp, info, err := p.lower(a.Child, inherited)
	if err != nil {
		return nil, nil, err
	}
	if info.groupUse != nil && p.keysDetermineUse(a.GroupBy, info.groupUse) {
		p.logf("agg: sandwich aggregation on %s (flush per %s group)",
			fmt.Sprint(a.GroupBy), info.groupUse.Dim.Name)
		op := &engine.HashAggregate{Child: childOp, GroupBy: a.GroupBy, Aggs: a.Aggs, FlushOnGroup: true}
		out := &streamInfo{
			base:      info.base,
			groupUse:  info.groupUse,
			groupBits: info.groupBits,
			restr:     info.restr,
		}
		return op, out, nil
	}
	if orderCovers(info.order, a.GroupBy) {
		p.logf("agg: streaming aggregation on %v", a.GroupBy)
		op := &engine.StreamAggregate{Child: childOp, GroupBy: a.GroupBy, Aggs: a.Aggs}
		return op, &streamInfo{order: a.GroupBy, restr: info.restr, base: info.base}, nil
	}
	if p.sched() != nil {
		p.logf("agg: hash aggregation on %v partition-parallel (%d workers)", a.GroupBy, p.Ctx.Workers)
	}
	op := &engine.HashAggregate{Child: childOp, GroupBy: a.GroupBy, Aggs: a.Aggs, Sched: p.sched()}
	return op, &streamInfo{restr: info.restr, base: info.base}, nil
}

// keysDetermineUse reports whether the grouping keys functionally determine
// the group dimension: a local dimension's key columns, or the columns of
// the first foreign-key hop of the use's path, are all grouping keys.
func (p *Planner) keysDetermineUse(groupBy []string, u *core.DimensionUse) bool {
	contains := func(col string) bool {
		for _, g := range groupBy {
			if g == col {
				return true
			}
		}
		return false
	}
	if len(u.Path) == 0 {
		for _, k := range u.Dim.Key {
			if !contains(k) {
				return false
			}
		}
		return true
	}
	fk := p.DB.Schema.FK(u.Path[0])
	if fk == nil {
		return false
	}
	for _, c := range fk.Cols {
		if !contains(c) {
			return false
		}
	}
	return true
}

// orderCovers reports whether the stream order prefix covers all grouping
// keys (so equal keys are adjacent).
func orderCovers(order []string, groupBy []string) bool {
	if len(groupBy) == 0 || len(order) < len(groupBy) {
		return false
	}
	prefix := make(map[string]bool, len(groupBy))
	for _, o := range order[:len(groupBy)] {
		prefix[o] = true
	}
	for _, g := range groupBy {
		if !prefix[g] {
			return false
		}
	}
	return true
}
