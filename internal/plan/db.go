package plan

import (
	"fmt"
	"sort"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
)

// Scheme identifies a physical storage scheme.
type Scheme int

const (
	// Plain is the unindexed baseline: tables in insertion order.
	Plain Scheme = iota
	// PK sorts every table on its primary key (the paper's second baseline).
	PK
	// BDCC is the paper's co-clustered scheme.
	BDCC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Plain:
		return "plain"
	case PK:
		return "pk"
	case BDCC:
		return "bdcc"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// DB is one physical database the planner lowers against: the stored tables
// in the scheme's layout plus scheme-specific metadata.
type DB struct {
	Scheme Scheme
	Schema *catalog.Schema
	// Tables holds the scheme's layout of every table. Under BDCC, tables
	// with a design are additionally present in Clustered (whose Data is
	// what actually gets scanned); tables without a design (REGION) fall
	// back to this map.
	Tables map[string]*storage.Table
	// SortedBy lists the sort columns per table under PK.
	SortedBy map[string][]string
	// Clustered is the materialized BDCC design (nil except under BDCC).
	Clustered *core.Database
	// Device is the modeled storage device.
	Device iosim.Device
	// ing is the ingest state once EnableIngest was called; the fields above
	// then stay the immutable loaded base forever and queries read versioned
	// views via Snapshot.
	ing *Ingest
	// snap marks a pinned snapshot copy and carries its version metadata.
	snap *snapState
}

// NewPlainDB wraps insertion-order tables as the plain scheme.
func NewPlainDB(schema *catalog.Schema, tables map[string]*storage.Table, dev iosim.Device) *DB {
	return &DB{Scheme: Plain, Schema: schema, Tables: tables, Device: dev}
}

// NewPKDB re-sorts every table on its primary key and returns the PK scheme
// database. Composite keys sort lexicographically.
func NewPKDB(schema *catalog.Schema, tables map[string]*storage.Table, dev iosim.Device) (*DB, error) {
	out := make(map[string]*storage.Table, len(tables))
	sortedBy := make(map[string][]string)
	for name, t := range tables {
		def := schema.Table(name)
		if def == nil || len(def.PrimaryKey) == 0 {
			out[name] = t
			continue
		}
		keys, err := core.KeyValues(t, def.PrimaryKey)
		if err != nil {
			return nil, fmt.Errorf("plan: pk sort of %s: %w", name, err)
		}
		perm := sortPermByKeys(keys)
		st, err := t.Permute(perm)
		if err != nil {
			return nil, err
		}
		out[name] = st
		sortedBy[name] = append([]string(nil), def.PrimaryKey...)
	}
	return &DB{Scheme: PK, Schema: schema, Tables: out, SortedBy: sortedBy, Device: dev}, nil
}

// NewBDCCDB materializes the BDCC design over the given tables using the
// advisor (Algorithm 2) and builder (Algorithm 1).
func NewBDCCDB(schema *catalog.Schema, tables map[string]*storage.Table, dev iosim.Device, opt core.BuildOptions) (*DB, error) {
	adv := &core.Advisor{Schema: schema}
	design, err := adv.Design()
	if err != nil {
		return nil, err
	}
	if opt.Device.PageSize == 0 {
		opt.Device = dev
	}
	b := &core.Builder{Schema: schema, Tables: tables, Options: opt}
	db, err := b.Build(design)
	if err != nil {
		return nil, err
	}
	return &DB{Scheme: BDCC, Schema: schema, Tables: tables, Clustered: db, Device: dev}, nil
}

// sortPermByKeys returns the stable sort permutation of composite keys.
func sortPermByKeys(keys []core.KeyVal) []int32 {
	perm := make([]int32, len(keys))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]].Compare(keys[perm[b]]) < 0 })
	return perm
}

// StoredTable returns the scannable layout of a table under this scheme:
// the BDCC-clustered data when available, the scheme layout otherwise.
func (db *DB) StoredTable(name string) (*storage.Table, error) {
	if db.Scheme == BDCC && db.Clustered != nil {
		if bt, ok := db.Clustered.Tables[name]; ok {
			return bt.Data, nil
		}
	}
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %q", name)
	}
	return t, nil
}

// CompressionStats sums the compression outcome over every scannable table
// of the scheme (the layout StoredTable serves — under BDCC the clustered
// data where a design exists, the plain layout otherwise). Zero-valued when
// the tables are uncompressed.
func (db *DB) CompressionStats() storage.CompressionStats {
	var s storage.CompressionStats
	for name := range db.Tables {
		t, err := db.StoredTable(name)
		if err != nil {
			continue
		}
		s.Add(t.CompressionStats())
	}
	return s
}

// BDCCTable returns the clustered form of a table, or nil.
func (db *DB) BDCCTable(name string) *core.BDCCTable {
	if db.Scheme != BDCC || db.Clustered == nil {
		return nil
	}
	return db.Clustered.Tables[name]
}
