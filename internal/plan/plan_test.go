package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bdcc/internal/catalog"
	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
)

// starDDL is a small star schema: a fact with two dimension paths, one of
// them two hops deep (fact → store → region), so restriction transfer,
// pre-execution and sandwich placement all have something to do.
const starDDL = `
CREATE TABLE region (rg_id INT, rg_name VARCHAR(16), PRIMARY KEY (rg_id));
CREATE TABLE store (st_id INT, st_region INT, st_name VARCHAR(16), PRIMARY KEY (st_id),
    CONSTRAINT fk_st_rg FOREIGN KEY (st_region) REFERENCES region);
CREATE TABLE item (it_id INT, it_class INT, PRIMARY KEY (it_id));
CREATE TABLE fact (f_id INT, f_store INT, f_item INT, f_amount DECIMAL(9,2), PRIMARY KEY (f_id),
    CONSTRAINT fk_f_st FOREIGN KEY (f_store) REFERENCES store,
    CONSTRAINT fk_f_it FOREIGN KEY (f_item) REFERENCES item);
CREATE INDEX rg_idx ON region (rg_id);
CREATE INDEX it_idx ON item (it_class, it_id);
CREATE INDEX strg_idx ON store (st_region);
CREATE INDEX fst_idx ON fact (f_store);
CREATE INDEX fit_idx ON fact (f_item);
`

func starData(n int) map[string]*storage.Table {
	rng := rand.New(rand.NewSource(17))
	mk := storage.MustNewTable
	regions := mk("region", 4096,
		storage.NewInt64Column("rg_id", []int64{0, 1, 2, 3}),
		storage.NewStringColumn("rg_name", []string{"EAST", "NORTH", "SOUTH", "WEST"}))
	nStores := 32
	stID := make([]int64, nStores)
	stRegion := make([]int64, nStores)
	stName := make([]string, nStores)
	for i := range stID {
		stID[i] = int64(i)
		stRegion[i] = int64(i % 4)
		stName[i] = fmt.Sprintf("store%02d", i)
	}
	nItems := 256
	itID := make([]int64, nItems)
	itClass := make([]int64, nItems)
	for i := range itID {
		itID[i] = int64(i)
		itClass[i] = int64(i % 16)
	}
	fID := make([]int64, n)
	fStore := make([]int64, n)
	fItem := make([]int64, n)
	fAmount := make([]float64, n)
	for i := 0; i < n; i++ {
		fID[i] = int64(i)
		fStore[i] = rng.Int63n(int64(nStores))
		fItem[i] = rng.Int63n(int64(nItems))
		fAmount[i] = float64(rng.Intn(1000)) / 10
	}
	return map[string]*storage.Table{
		"region": regions,
		"store": mk("store", 4096,
			storage.NewInt64Column("st_id", stID),
			storage.NewInt64Column("st_region", stRegion),
			storage.NewStringColumn("st_name", stName)),
		"item": mk("item", 4096,
			storage.NewInt64Column("it_id", itID),
			storage.NewInt64Column("it_class", itClass)),
		"fact": mk("fact", 4096,
			storage.NewInt64Column("f_id", fID),
			storage.NewInt64Column("f_store", fStore),
			storage.NewInt64Column("f_item", fItem),
			storage.NewFloat64Column("f_amount", fAmount)),
	}
}

type fixture struct {
	schema *catalog.Schema
	tables map[string]*storage.Table
	dbs    map[Scheme]*DB
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	schema := catalog.MustParseDDL(starDDL)
	tables := starData(50_000)
	dev := iosim.PaperSSD()
	pk, err := NewPKDB(schema, tables, dev)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := NewBDCCDB(schema, tables, dev, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		schema: schema,
		tables: tables,
		dbs: map[Scheme]*DB{
			Plain: NewPlainDB(schema, tables, dev),
			PK:    pk,
			BDCC:  bd,
		},
	}
}

func runRows(t *testing.T, db *DB, n Node) ([]string, *Planner) {
	t.Helper()
	ctx := engine.NewContext(db.Device)
	p := NewPlanner(db, ctx)
	res, err := p.Run(n)
	if err != nil {
		t.Fatalf("run under %s: %v", db.Scheme, err)
	}
	rows := make([]string, res.Rows())
	for i := range rows {
		rows[i] = fmt.Sprint(res.Row(i))
	}
	sort.Strings(rows)
	return rows, p
}

// assertEquivalent runs one plan-builder under all schemes and compares.
func assertEquivalent(t *testing.T, f *fixture, build func() Node) {
	t.Helper()
	ref, _ := runRows(t, f.dbs[Plain], build())
	for _, s := range []Scheme{PK, BDCC} {
		got, _ := runRows(t, f.dbs[s], build())
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("%s disagrees with plain:\n got %d rows\nwant %d rows", s, len(got), len(ref))
		}
	}
}

func TestPlannerJoinTypesEquivalent(t *testing.T) {
	f := newFixture(t)
	factScan := func() *Scan {
		return &Scan{Table: "fact", Cols: []string{"f_id", "f_store", "f_amount"}}
	}
	westStores := func() *Scan {
		return &Scan{Table: "store", Cols: []string{"st_id", "st_region"},
			Filter: expr.Eq(expr.C("st_region"), expr.Int(3))}
	}
	for name, typ := range map[string]engine.JoinType{
		"inner": engine.InnerJoin, "semi": engine.SemiJoin,
		"anti": engine.AntiJoin, "leftouter": engine.LeftOuterJoin,
	} {
		typ := typ
		t.Run(name, func(t *testing.T) {
			assertEquivalent(t, f, func() Node {
				j := &Join{Left: factScan(), Right: westStores(),
					LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: typ}
				return &Agg{Child: j, GroupBy: []string{"f_store"},
					Aggs: []engine.AggSpec{{Name: "c", Func: engine.AggCount}}}
			})
		})
	}
}

func TestPlannerTwoHopPropagation(t *testing.T) {
	f := newFixture(t)
	build := func() Node {
		stores := &Join{
			Left:     &Scan{Table: "store", Cols: []string{"st_id", "st_region"}},
			Right:    &Scan{Table: "region", Cols: []string{"rg_id", "rg_name"}, Filter: expr.Eq(expr.C("rg_name"), expr.Str("SOUTH"))},
			LeftKeys: []string{"st_region"}, RightKeys: []string{"rg_id"}, Type: engine.InnerJoin,
		}
		j := &Join{Left: &Scan{Table: "fact", Cols: []string{"f_store", "f_amount"}}, Right: stores,
			LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: engine.InnerJoin}
		return &Agg{Child: j, GroupBy: []string{"rg_name"},
			Aggs: []engine.AggSpec{{Name: "total", Func: engine.AggSum, Arg: expr.C("f_amount")}}}
	}
	assertEquivalent(t, f, build)
	// And the fact scan must actually be restricted under BDCC.
	_, p := runRows(t, f.dbs[BDCC], build())
	found := false
	for _, l := range p.Log {
		if strings.Contains(l, "scan fact: bdcc pushdown") {
			found = true
		}
	}
	if !found {
		t.Errorf("region selection did not propagate to the fact scan; log:\n%s", strings.Join(p.Log, "\n"))
	}
}

// TestPlannerSelfJoinSafety pins the Q21-style soundness rule: a filtered
// dimension reached by ONE fact alias must not restrict the scan of another
// alias joined only on an unrelated key.
func TestPlannerSelfJoinSafety(t *testing.T) {
	f := newFixture(t)
	build := func() Node {
		f1 := &Join{
			Left:     &Scan{Table: "fact", Cols: []string{"f_id", "f_store", "f_item"}},
			Right:    &Scan{Table: "store", Cols: []string{"st_id", "st_region"}, Filter: expr.Eq(expr.C("st_region"), expr.Int(1))},
			LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: engine.InnerJoin,
		}
		// Exists another fact row for the same item from a different store.
		f2 := &Scan{Table: "fact", Alias: "f2", Cols: []string{"f_item", "f_store"}}
		s := &Join{Left: f1, Right: f2,
			LeftKeys: []string{"f_item"}, RightKeys: []string{"f2_f_item"},
			Type:     engine.SemiJoin,
			Residual: expr.NewCmp(expr.NE, expr.C("f2_f_store"), expr.C("f_store"))}
		return &Agg{Child: s, GroupBy: nil,
			Aggs: []engine.AggSpec{{Name: "c", Func: engine.AggCount}}}
	}
	assertEquivalent(t, f, build)
}

func TestPKMergeJoinSelected(t *testing.T) {
	f := newFixture(t)
	// fact sorted by f_id under PK; a self-equi-join on the key order...
	// simpler: store sorted by st_id; join fact (not sorted on f_store) — no
	// merge. Join store to itself via fact is artificial; instead check the
	// one real merge case: scanning fact ordered by f_id and joining a
	// probe that is also f_id-ordered (the fact scan itself).
	build := func() Node {
		agg := &Agg{
			Child:   &Scan{Table: "fact", Cols: []string{"f_id", "f_amount"}},
			GroupBy: []string{"f_id"},
			Aggs:    []engine.AggSpec{{Name: "s", Func: engine.AggSum, Arg: expr.C("f_amount")}},
		}
		return &Join{
			Left:     &Scan{Table: "fact", Cols: []string{"f_id", "f_store"}},
			Right:    agg,
			LeftKeys: []string{"f_id"}, RightKeys: []string{"f_id"}, Type: engine.InnerJoin,
		}
	}
	_, p := runRows(t, f.dbs[PK], build())
	merged := false
	streamed := false
	for _, l := range p.Log {
		if strings.Contains(l, "merge join") {
			merged = true
		}
		if strings.Contains(l, "streaming aggregation") {
			streamed = true
		}
	}
	if !streamed {
		t.Errorf("PK scheme should stream-aggregate over key order; log:\n%s", strings.Join(p.Log, "\n"))
	}
	if !merged {
		t.Errorf("PK scheme should merge join on shared key order; log:\n%s", strings.Join(p.Log, "\n"))
	}
	assertEquivalent(t, f, build)
}

func TestSandwichPlacedAndMemoryLower(t *testing.T) {
	f := newFixture(t)
	build := func() Node {
		return &Join{
			Left:     &Scan{Table: "fact", Cols: []string{"f_store", "f_amount"}},
			Right:    &Scan{Table: "store", Cols: []string{"st_id", "st_name"}},
			LeftKeys: []string{"f_store"}, RightKeys: []string{"st_id"}, Type: engine.InnerJoin,
		}
	}
	ctxB := engine.NewContext(f.dbs[BDCC].Device)
	pB := NewPlanner(f.dbs[BDCC], ctxB)
	if _, err := pB.Run(build()); err != nil {
		t.Fatal(err)
	}
	sandwich := false
	for _, l := range pB.Log {
		if strings.Contains(l, "sandwich hash join") {
			sandwich = true
		}
	}
	if !sandwich {
		t.Fatalf("no sandwich join placed; log:\n%s", strings.Join(pB.Log, "\n"))
	}
	ctxP := engine.NewContext(f.dbs[Plain].Device)
	if _, err := NewPlanner(f.dbs[Plain], ctxP).Run(build()); err != nil {
		t.Fatal(err)
	}
	if ctxB.Mem.Peak() >= ctxP.Mem.Peak() {
		t.Errorf("sandwich peak %d should undercut hash join peak %d", ctxB.Mem.Peak(), ctxP.Mem.Peak())
	}
}

func TestSharedDimsStructuralCases(t *testing.T) {
	f := newFixture(t)
	db := f.dbs[BDCC]
	p := NewPlanner(db, engine.NewContext(db.Device))
	fact := db.BDCCTable("fact")
	store := db.BDCCTable("store")
	item := db.BDCCTable("item")
	// Forward: fact reaches d_rg over fk_f_st ++ store's path.
	pairs := p.sharedDims(fact, store, []string{"f_store"}, []string{"st_id"})
	if len(pairs) == 0 {
		t.Error("forward case not matched (fact⋈store)")
	}
	// Wrong keys must not match.
	if got := p.sharedDims(fact, store, []string{"f_item"}, []string{"st_id"}); len(got) != 0 {
		t.Errorf("matched on unrelated keys: %d pairs", len(got))
	}
	// Common third table: two facts joined on f_item would share d_it; here
	// item itself: forward again.
	pairs = p.sharedDims(fact, item, []string{"f_item"}, []string{"it_id"})
	if len(pairs) == 0 {
		t.Error("fact⋈item not matched")
	}
	// Reverse: probe store, build fact (fact's FK lands on the probe).
	pairs = p.sharedDims(store, fact, []string{"st_id"}, []string{"f_store"})
	if len(pairs) == 0 {
		t.Error("reverse case not matched (store⋈fact)")
	}
}

func TestMaterializedNode(t *testing.T) {
	f := newFixture(t)
	db := f.dbs[Plain]
	ctx := engine.NewContext(db.Device)
	p := NewPlanner(db, ctx)
	res, err := p.Run(&Scan{Table: "region", Cols: []string{"rg_id", "rg_name"}})
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPlanner(db, ctx)
	res2, err := p2.Run(&FilterNode{
		Child: &Materialized{Res: res},
		Pred:  expr.Eq(expr.C("rg_name"), expr.Str("EAST")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows() != 1 || res2.Row(0)[1] != "EAST" {
		t.Errorf("materialized filter = %v", res2)
	}
}
