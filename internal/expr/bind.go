package expr

import (
	"fmt"

	"bdcc/internal/vector"
)

// Bind resolves column references in e against schema and computes result
// kinds, mutating the tree in place. Expressions must be bound before Eval
// and must not be re-bound against a different schema (plan builders
// construct fresh trees per execution).
func Bind(e Expr, schema Schema) error {
	switch n := e.(type) {
	case *Col:
		i := schema.IndexOf(n.Name)
		if i < 0 {
			return fmt.Errorf("expr: unknown column %q (schema %v)", n.Name, schema.Names())
		}
		n.Index = i
		n.kind = schema[i].Kind
		return nil
	case *Const:
		return nil
	case *Cmp:
		if err := bindAll(schema, n.L, n.R); err != nil {
			return err
		}
		if n.L.Kind() != n.R.Kind() {
			return fmt.Errorf("expr: comparison kind mismatch %s %s %s (%s vs %s)",
				n.L, n.Op, n.R, n.L.Kind(), n.R.Kind())
		}
		return nil
	case *And:
		return bindAll(schema, n.Args...)
	case *Or:
		return bindAll(schema, n.Args...)
	case *Not:
		return Bind(n.Arg, schema)
	case *Arith:
		if err := bindAll(schema, n.L, n.R); err != nil {
			return err
		}
		if n.L.Kind() == vector.String || n.R.Kind() == vector.String {
			return fmt.Errorf("expr: arithmetic on string operand in %s", n)
		}
		if n.L.Kind() == vector.Float64 || n.R.Kind() == vector.Float64 {
			n.kind = vector.Float64
		} else {
			n.kind = vector.Int64
		}
		return nil
	case *Case:
		if err := bindAll(schema, n.When, n.Then, n.Else); err != nil {
			return err
		}
		if n.Then.Kind() != n.Else.Kind() {
			return fmt.Errorf("expr: CASE branches disagree on kind in %s", n)
		}
		return nil
	case *Year:
		return Bind(n.Arg, schema)
	case *Substr:
		if err := Bind(n.Arg, schema); err != nil {
			return err
		}
		if n.Arg.Kind() != vector.String {
			return fmt.Errorf("expr: SUBSTRING of non-string in %s", n)
		}
		return nil
	case *InList:
		if err := Bind(n.Arg, schema); err != nil {
			return err
		}
		for _, c := range n.Values {
			if c.K != n.Arg.Kind() {
				return fmt.Errorf("expr: IN list kind mismatch in %s", n)
			}
		}
		return nil
	case *Like:
		if err := Bind(n.Arg, schema); err != nil {
			return err
		}
		if n.Arg.Kind() != vector.String {
			return fmt.Errorf("expr: LIKE on non-string in %s", n)
		}
		return nil
	}
	return fmt.Errorf("expr: cannot bind %T", e)
}

func bindAll(schema Schema, es ...Expr) error {
	for _, e := range es {
		if err := Bind(e, schema); err != nil {
			return err
		}
	}
	return nil
}

// Conjuncts flattens nested ANDs into a list of conjuncts. A nil expression
// yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, arg := range a.Args {
			out = append(out, Conjuncts(arg)...)
		}
		return out
	}
	return []Expr{e}
}

// AndAll combines conjuncts into a single expression (nil for empty input,
// the sole element for a singleton).
func AndAll(conjs []Expr) Expr {
	switch len(conjs) {
	case 0:
		return nil
	case 1:
		return conjs[0]
	default:
		return NewAnd(conjs...)
	}
}

// ColRange is a closed value interval implied by a predicate on one column.
type ColRange struct {
	Col   string
	HasLo bool
	HasHi bool
	// Numeric bounds (Int64 columns, including dates).
	LoI, HiI int64
	// String bounds.
	LoS, HiS string
	Kind     vector.Kind
}

// ImpliedRanges extracts, for each column, the tightest closed interval
// implied by the conjuncts of e. Only directly analyzable conjuncts
// contribute: comparisons between a bare column and a constant, and
// single-element IN lists. The BDCC rewriter maps these intervals onto
// dimension bin ranges; the scan also uses them for MinMax pruning.
func ImpliedRanges(e Expr) map[string]*ColRange {
	out := make(map[string]*ColRange)
	for _, c := range Conjuncts(e) {
		col, op, k, iv, sv, ok := analyzeCmp(c)
		if !ok {
			continue
		}
		r := out[col]
		if r == nil {
			r = &ColRange{Col: col, Kind: k}
			out[col] = r
		}
		switch op {
		case EQ:
			r.tightenLo(k, iv, sv)
			r.tightenHi(k, iv, sv)
		case GE:
			r.tightenLo(k, iv, sv)
		case GT:
			if k == vector.Int64 {
				r.tightenLo(k, iv+1, sv)
			} else {
				r.tightenLo(k, iv, sv) // conservative: treat as ≥ for strings
			}
		case LE:
			r.tightenHi(k, iv, sv)
		case LT:
			if k == vector.Int64 {
				r.tightenHi(k, iv-1, sv)
			} else {
				r.tightenHi(k, iv, sv)
			}
		}
	}
	return out
}

func (r *ColRange) tightenLo(k vector.Kind, iv int64, sv string) {
	if k == vector.Int64 {
		if !r.HasLo || iv > r.LoI {
			r.LoI = iv
		}
	} else {
		if !r.HasLo || sv > r.LoS {
			r.LoS = sv
		}
	}
	r.HasLo = true
}

func (r *ColRange) tightenHi(k vector.Kind, iv int64, sv string) {
	if k == vector.Int64 {
		if !r.HasHi || iv < r.HiI {
			r.HiI = iv
		}
	} else {
		if !r.HasHi || sv < r.HiS {
			r.HiS = sv
		}
	}
	r.HasHi = true
}

// analyzeCmp recognizes `col op const` and `const op col` (flipping the
// operator) over Int64 and String columns, plus single-constant IN lists.
func analyzeCmp(e Expr) (col string, op CmpOp, k vector.Kind, iv int64, sv string, ok bool) {
	if in, isIn := e.(*InList); isIn && !in.Negate && len(in.Values) == 1 {
		c, isCol := in.Arg.(*Col)
		if !isCol {
			return "", 0, 0, 0, "", false
		}
		v := in.Values[0]
		if v.K == vector.Float64 {
			return "", 0, 0, 0, "", false
		}
		return c.Name, EQ, v.K, v.I, v.S, true
	}
	cmp, isCmp := e.(*Cmp)
	if !isCmp {
		return "", 0, 0, 0, "", false
	}
	if c, isCol := cmp.L.(*Col); isCol {
		if v, isConst := cmp.R.(*Const); isConst && v.K != vector.Float64 {
			return c.Name, cmp.Op, v.K, v.I, v.S, true
		}
	}
	if c, isCol := cmp.R.(*Col); isCol {
		if v, isConst := cmp.L.(*Const); isConst && v.K != vector.Float64 {
			return c.Name, flip(cmp.Op), v.K, v.I, v.S, true
		}
	}
	return "", 0, 0, 0, "", false
}

func flip(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}
