package expr

import (
	"fmt"
	"strings"

	"bdcc/internal/vector"
)

// Like is a SQL LIKE pattern match supporting % (any run) and _ (any single
// byte) wildcards.
type Like struct {
	Arg     Expr
	Pattern string
	Negate  bool
}

// NewLike returns arg LIKE pattern.
func NewLike(arg Expr, pattern string) *Like { return &Like{Arg: arg, Pattern: pattern} }

// NewNotLike returns arg NOT LIKE pattern.
func NewNotLike(arg Expr, pattern string) *Like {
	return &Like{Arg: arg, Pattern: pattern, Negate: true}
}

// Kind implements Expr.
func (l *Like) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %q)", l.Arg, op, l.Pattern)
}

// Eval implements Expr.
func (l *Like) Eval(b *vector.Batch, out *vector.Vector) {
	tmp := NewScratch(vector.String)
	l.Arg.Eval(b, tmp)
	segs, anchoredStart, anchoredEnd := compileLike(l.Pattern)
	for _, s := range tmp.Str {
		out.I64 = append(out.I64, b2i(matchLike(s, segs, anchoredStart, anchoredEnd) != l.Negate))
	}
}

// likeSeg is one literal segment between % wildcards; runes '_' inside a
// segment match any single byte.
type likeSeg string

// compileLike splits the pattern at % into segments and reports whether the
// match is anchored at the start and/or end.
func compileLike(pattern string) (segs []likeSeg, anchoredStart, anchoredEnd bool) {
	parts := strings.Split(pattern, "%")
	anchoredStart = !strings.HasPrefix(pattern, "%")
	anchoredEnd = !strings.HasSuffix(pattern, "%")
	for _, p := range parts {
		if p != "" {
			segs = append(segs, likeSeg(p))
		}
	}
	return segs, anchoredStart, anchoredEnd
}

// segMatchAt reports whether segment seg matches s starting at position i.
func segMatchAt(s string, seg likeSeg, i int) bool {
	if i+len(seg) > len(s) {
		return false
	}
	for j := 0; j < len(seg); j++ {
		if seg[j] != '_' && seg[j] != s[i+j] {
			return false
		}
	}
	return true
}

// segFind returns the first position ≥ from where seg matches s, or -1.
func segFind(s string, seg likeSeg, from int) int {
	for i := from; i+len(seg) <= len(s); i++ {
		if segMatchAt(s, seg, i) {
			return i
		}
	}
	return -1
}

func matchLike(s string, segs []likeSeg, anchoredStart, anchoredEnd bool) bool {
	if len(segs) == 0 {
		// Pattern was only % wildcards (or empty: matches only empty string).
		if anchoredStart && anchoredEnd {
			return s == ""
		}
		return true
	}
	if len(segs) == 1 && anchoredStart && anchoredEnd {
		return len(s) == len(segs[0]) && segMatchAt(s, segs[0], 0)
	}
	pos := 0
	for i, seg := range segs {
		if i == 0 && anchoredStart {
			if !segMatchAt(s, seg, 0) {
				return false
			}
			pos = len(seg)
			continue
		}
		if i == len(segs)-1 && anchoredEnd {
			start := len(s) - len(seg)
			if start < pos || !segMatchAt(s, seg, start) {
				return false
			}
			return true
		}
		at := segFind(s, seg, pos)
		if at < 0 {
			return false
		}
		pos = at + len(seg)
	}
	return true
}
