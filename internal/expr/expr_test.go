package expr

import (
	"fmt"
	"testing"
	"testing/quick"

	"bdcc/internal/vector"
)

func evalBatch(t *testing.T, e Expr, schema Schema, b *vector.Batch) *vector.Vector {
	t.Helper()
	if err := Bind(e, schema); err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	out := NewScratch(e.Kind())
	e.Eval(b, out)
	if out.Len() != b.Len() {
		t.Fatalf("%s produced %d values for %d rows", e, out.Len(), b.Len())
	}
	return out
}

func intBatch(vals ...int64) (*vector.Batch, Schema) {
	schema := Schema{{Name: "x", Kind: vector.Int64}}
	b := vector.NewBatch(schema.Kinds())
	b.Cols[0].I64 = vals
	return b, schema
}

func TestComparisonsAndBooleans(t *testing.T) {
	b, schema := intBatch(1, 5, 10)
	cases := []struct {
		e    Expr
		want []int64
	}{
		{NewCmp(LT, C("x"), Int(5)), []int64{1, 0, 0}},
		{NewCmp(LE, C("x"), Int(5)), []int64{1, 1, 0}},
		{NewCmp(EQ, C("x"), Int(5)), []int64{0, 1, 0}},
		{NewCmp(NE, C("x"), Int(5)), []int64{1, 0, 1}},
		{NewCmp(GE, C("x"), Int(5)), []int64{0, 1, 1}},
		{NewCmp(GT, Int(5), C("x")), []int64{1, 0, 0}},
		{NewAnd(NewCmp(GT, C("x"), Int(1)), NewCmp(LT, C("x"), Int(10))), []int64{0, 1, 0}},
		{NewOr(NewCmp(LT, C("x"), Int(2)), NewCmp(GT, C("x"), Int(9))), []int64{1, 0, 1}},
		{NewNot(NewCmp(EQ, C("x"), Int(5))), []int64{1, 0, 1}},
		{Between(C("x"), Int(5), Int(10)), []int64{0, 1, 1}},
		{NewIn(C("x"), Int(1), Int(10)), []int64{1, 0, 1}},
		{NewNotIn(C("x"), Int(1), Int(10)), []int64{0, 1, 0}},
	}
	for _, c := range cases {
		got := evalBatch(t, c.e, schema, b)
		if fmt.Sprint(got.I64) != fmt.Sprint(c.want) {
			t.Errorf("%s = %v, want %v", c.e, got.I64, c.want)
		}
	}
}

func TestArithPromotion(t *testing.T) {
	b, schema := intBatch(4)
	e := NewArith(Add, C("x"), Int(2))
	got := evalBatch(t, e, schema, b)
	if e.Kind() != vector.Int64 || got.I64[0] != 6 {
		t.Errorf("int add = %v (%s)", got.I64, e.Kind())
	}
	f := NewArith(Mul, C("x"), Float(0.5))
	gotF := evalBatch(t, f, schema, b)
	if f.Kind() != vector.Float64 || gotF.F64[0] != 2 {
		t.Errorf("mixed mul = %v (%s)", gotF.F64, f.Kind())
	}
}

func TestCaseYearSubstr(t *testing.T) {
	schema := Schema{{Name: "d", Kind: vector.Int64}, {Name: "s", Kind: vector.String}}
	b := vector.NewBatch(schema.Kinds())
	b.Cols[0].I64 = []int64{vector.ParseDate("1995-03-15"), vector.ParseDate("1998-12-31")}
	b.Cols[1].Str = []string{"13-foo", "31-bar"}
	y := evalBatch(t, NewYear(C("d")), schema, b)
	if y.I64[0] != 1995 || y.I64[1] != 1998 {
		t.Errorf("year = %v", y.I64)
	}
	s := evalBatch(t, NewSubstr(C("s"), 1, 2), schema, b)
	if s.Str[0] != "13" || s.Str[1] != "31" {
		t.Errorf("substr = %v", s.Str)
	}
	c := evalBatch(t, NewCase(NewCmp(GT, NewYear(C("d")), Int(1996)), Str("late"), Str("early")), schema, b)
	if c.Str[0] != "early" || c.Str[1] != "late" {
		t.Errorf("case = %v", c.Str)
	}
}

func TestLikeSemantics(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hello", "hell%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"special packs requests now", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
		{"PROMO ANODIZED TIN", "PROMO%", true},
		{"abcabc", "%abc", true},
		{"ab", "%abc", false},
		{"banana", "b%na", true},
		{"banana", "b%nax", false},
		{"aXbYc", "a%b%c", true},
	}
	schema := Schema{{Name: "s", Kind: vector.String}}
	for _, c := range cases {
		b := vector.NewBatch(schema.Kinds())
		b.Cols[0].Str = []string{c.s}
		got := evalBatch(t, NewLike(C("s"), c.pattern), schema, b)
		if (got.I64[0] == 1) != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pattern, got.I64[0] == 1, c.want)
		}
		neg := evalBatch(t, NewNotLike(C("s"), c.pattern), schema, b)
		if (neg.I64[0] == 1) == c.want {
			t.Errorf("%q NOT LIKE %q inconsistent", c.s, c.pattern)
		}
	}
}

// TestLikeNeverPanics fuzzes pattern/input combinations.
func TestLikeNeverPanics(t *testing.T) {
	prop := func(s, pattern string) bool {
		segs, as, ae := compileLike(pattern)
		matchLike(s, segs, as, ae)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBindErrors(t *testing.T) {
	schema := Schema{{Name: "x", Kind: vector.Int64}, {Name: "s", Kind: vector.String}}
	cases := []Expr{
		C("nope"),
		NewCmp(EQ, C("x"), Str("a")),
		NewArith(Add, C("s"), Int(1)),
		NewLike(C("x"), "%"),
		NewSubstr(C("x"), 1, 2),
		NewIn(C("x"), Str("a")),
		NewCase(NewCmp(EQ, C("x"), Int(1)), Int(1), Str("a")),
	}
	for _, e := range cases {
		if err := Bind(e, schema); err == nil {
			t.Errorf("Bind(%s) should fail", e)
		}
	}
}

func TestConjunctsAndAll(t *testing.T) {
	a := NewCmp(EQ, C("x"), Int(1))
	b := NewCmp(EQ, C("x"), Int(2))
	c := NewCmp(EQ, C("x"), Int(3))
	conjs := Conjuncts(NewAnd(a, NewAnd(b, c)))
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(conjs))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if AndAll([]Expr{a}) != a {
		t.Error("AndAll singleton should be identity")
	}
}

func TestImpliedRanges(t *testing.T) {
	e := NewAnd(
		NewCmp(GE, C("d"), Int(100)),
		NewCmp(LT, C("d"), Int(200)),
		NewCmp(EQ, C("s"), Str("BUILDING")),
		NewCmp(GT, Int(50), C("q")), // flipped: q < 50
		NewLike(C("s"), "B%"),       // not analyzable
	)
	rs := ImpliedRanges(e)
	d := rs["d"]
	if d == nil || !d.HasLo || !d.HasHi || d.LoI != 100 || d.HiI != 199 {
		t.Errorf("d range = %+v", d)
	}
	s := rs["s"]
	if s == nil || s.LoS != "BUILDING" || s.HiS != "BUILDING" {
		t.Errorf("s range = %+v", s)
	}
	q := rs["q"]
	if q == nil || q.HasLo || !q.HasHi || q.HiI != 49 {
		t.Errorf("q range = %+v", q)
	}
}

// TestImpliedRangesSound checks that rows satisfying the predicate always
// lie within the implied per-column intervals.
func TestImpliedRangesSound(t *testing.T) {
	prop := func(vals []int16, lo, hi int16) bool {
		e := NewAnd(NewCmp(GE, C("x"), Int(int64(lo))), NewCmp(LE, C("x"), Int(int64(hi))))
		schema := Schema{{Name: "x", Kind: vector.Int64}}
		if err := Bind(e, schema); err != nil {
			return false
		}
		b := vector.NewBatch(schema.Kinds())
		for _, v := range vals {
			b.Cols[0].I64 = append(b.Cols[0].I64, int64(v))
		}
		out := NewScratch(vector.Int64)
		e.Eval(b, out)
		r := ImpliedRanges(e)["x"]
		for i, v := range b.Cols[0].I64 {
			if out.I64[i] == 1 {
				if (r.HasLo && v < r.LoI) || (r.HasHi && v > r.HiI) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
