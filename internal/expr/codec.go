package expr

import (
	"encoding/binary"
	"fmt"
	"math"

	"bdcc/internal/vector"
)

// This file is the expression wire codec: the byte form in which a scalar
// expression crosses a transport boundary (a sandwich plan fragment carries
// its residual predicate to a remote worker). Expressions travel in their
// unbound form — column references as names, result kinds unresolved — and
// the receiver re-binds the decoded tree against its reconstruction of the
// schema with Bind, which is what keeps the codec independent of column
// positions and makes a decoded tree exactly as trustworthy as a freshly
// built one.
//
// The node set is closed (the types of this package), so the encoding is a
// simple tagged pre-order walk (little endian):
//
//	u8 tag, then per node type:
//	  Col    name
//	  Const  u8 kind, then i64 / f64 bits / string
//	  Cmp    u8 op, L, R
//	  And/Or u32 arity, args
//	  Not    arg
//	  Arith  u8 op, L, R
//	  Case   when, then, else
//	  Year   arg
//	  Substr arg, u32 start, u32 length
//	  In     u8 negate, arg, u32 count, consts
//	  Like   u8 negate, pattern, arg
//
// Strings are u32 byte length + raw bytes.

// Expression node tags of the wire form. Tags are append-only: a new node
// type takes the next free tag, existing tags never change meaning (see
// docs/WIRE.md for the protocol's versioning rules).
const (
	tagCol = byte(iota + 1)
	tagConst
	tagCmp
	tagAnd
	tagOr
	tagNot
	tagArith
	tagCase
	tagYear
	tagSubstr
	tagIn
	tagLike
)

// AppendString appends the wire form of s (u32 byte length + raw bytes) to
// buf — the string layout shared by every codec of the wire protocol (this
// package's expressions, internal/shard's fragments).
func AppendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// DecodeString decodes one wire-form string from the front of data,
// returning it and the bytes consumed.
func DecodeString(data []byte) (string, int, error) {
	if len(data) < 4 {
		return "", 0, fmt.Errorf("expr: truncated string length")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) < 4+n {
		return "", 0, fmt.Errorf("expr: truncated string (%d of %d bytes)", len(data)-4, n)
	}
	return string(data[4 : 4+n]), 4 + n, nil
}

func encodeConst(c *Const, buf []byte) []byte {
	buf = append(buf, byte(c.K))
	switch c.K {
	case vector.Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.F))
	case vector.String:
		buf = AppendString(buf, c.S)
	default:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.I))
	}
	return buf
}

func decodeConst(data []byte) (*Const, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("expr: truncated constant")
	}
	c := &Const{K: vector.Kind(data[0])}
	pos := 1
	switch c.K {
	case vector.Float64:
		if len(data) < pos+8 {
			return nil, 0, fmt.Errorf("expr: truncated float constant")
		}
		c.F = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	case vector.String:
		s, n, err := DecodeString(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		c.S = s
		pos += n
	case vector.Int64:
		if len(data) < pos+8 {
			return nil, 0, fmt.Errorf("expr: truncated int constant")
		}
		c.I = int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	default:
		return nil, 0, fmt.Errorf("expr: constant of unknown kind %d", c.K)
	}
	return c, pos, nil
}

// EncodeExpr appends the wire encoding of e to buf and returns the extended
// slice. Bound and unbound trees encode identically (binding state does not
// travel); an unknown node type is an error.
func EncodeExpr(e Expr, buf []byte) ([]byte, error) {
	var err error
	switch n := e.(type) {
	case *Col:
		return AppendString(append(buf, tagCol), n.Name), nil
	case *Const:
		return encodeConst(n, append(buf, tagConst)), nil
	case *Cmp:
		buf = append(buf, tagCmp, byte(n.Op))
		if buf, err = EncodeExpr(n.L, buf); err != nil {
			return nil, err
		}
		return EncodeExpr(n.R, buf)
	case *And:
		return encodeNary(tagAnd, n.Args, buf)
	case *Or:
		return encodeNary(tagOr, n.Args, buf)
	case *Not:
		return EncodeExpr(n.Arg, append(buf, tagNot))
	case *Arith:
		buf = append(buf, tagArith, byte(n.Op))
		if buf, err = EncodeExpr(n.L, buf); err != nil {
			return nil, err
		}
		return EncodeExpr(n.R, buf)
	case *Case:
		buf = append(buf, tagCase)
		if buf, err = EncodeExpr(n.When, buf); err != nil {
			return nil, err
		}
		if buf, err = EncodeExpr(n.Then, buf); err != nil {
			return nil, err
		}
		return EncodeExpr(n.Else, buf)
	case *Year:
		return EncodeExpr(n.Arg, append(buf, tagYear))
	case *Substr:
		buf = append(buf, tagSubstr)
		if buf, err = EncodeExpr(n.Arg, buf); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Start))
		return binary.LittleEndian.AppendUint32(buf, uint32(n.Length)), nil
	case *InList:
		buf = append(buf, tagIn, b2b(n.Negate))
		if buf, err = EncodeExpr(n.Arg, buf); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.Values)))
		for _, c := range n.Values {
			buf = encodeConst(c, buf)
		}
		return buf, nil
	case *Like:
		buf = AppendString(append(buf, tagLike, b2b(n.Negate)), n.Pattern)
		return EncodeExpr(n.Arg, buf)
	}
	return nil, fmt.Errorf("expr: cannot encode %T", e)
}

func encodeNary(tag byte, args []Expr, buf []byte) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(append(buf, tag), uint32(len(args)))
	var err error
	for _, a := range args {
		if buf, err = EncodeExpr(a, buf); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeExpr decodes one expression from the front of data, returning the
// tree (unbound — callers Bind it before Eval) and the bytes consumed.
func DecodeExpr(data []byte) (Expr, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("expr: truncated expression")
	}
	tag := data[0]
	pos := 1
	sub := func() (Expr, error) {
		e, n, err := DecodeExpr(data[pos:])
		pos += n
		return e, err
	}
	switch tag {
	case tagCol:
		name, n, err := DecodeString(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		return C(name), pos + n, nil
	case tagConst:
		c, n, err := decodeConst(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		return c, pos + n, nil
	case tagCmp, tagArith:
		if len(data) < pos+1 {
			return nil, 0, fmt.Errorf("expr: truncated operator")
		}
		op := data[pos]
		pos++
		l, err := sub()
		if err != nil {
			return nil, 0, err
		}
		r, err := sub()
		if err != nil {
			return nil, 0, err
		}
		if tag == tagCmp {
			return NewCmp(CmpOp(op), l, r), pos, nil
		}
		return NewArith(ArithOp(op), l, r), pos, nil
	case tagAnd, tagOr:
		if len(data) < pos+4 {
			return nil, 0, fmt.Errorf("expr: truncated arity")
		}
		arity := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		// Every argument occupies at least one byte, so an arity beyond the
		// remaining data is garbage — checked before it sizes an allocation.
		if arity > len(data)-pos {
			return nil, 0, fmt.Errorf("expr: arity %d exceeds %d remaining bytes", arity, len(data)-pos)
		}
		args := make([]Expr, 0, arity)
		for i := 0; i < arity; i++ {
			a, err := sub()
			if err != nil {
				return nil, 0, err
			}
			args = append(args, a)
		}
		if tag == tagAnd {
			return NewAnd(args...), pos, nil
		}
		return NewOr(args...), pos, nil
	case tagNot:
		a, err := sub()
		if err != nil {
			return nil, 0, err
		}
		return NewNot(a), pos, nil
	case tagCase:
		when, err := sub()
		if err != nil {
			return nil, 0, err
		}
		then, err := sub()
		if err != nil {
			return nil, 0, err
		}
		els, err := sub()
		if err != nil {
			return nil, 0, err
		}
		return NewCase(when, then, els), pos, nil
	case tagYear:
		a, err := sub()
		if err != nil {
			return nil, 0, err
		}
		return NewYear(a), pos, nil
	case tagSubstr:
		a, err := sub()
		if err != nil {
			return nil, 0, err
		}
		if len(data) < pos+8 {
			return nil, 0, fmt.Errorf("expr: truncated substring bounds")
		}
		start := int(binary.LittleEndian.Uint32(data[pos:]))
		length := int(binary.LittleEndian.Uint32(data[pos+4:]))
		return NewSubstr(a, start, length), pos + 8, nil
	case tagIn:
		if len(data) < pos+1 {
			return nil, 0, fmt.Errorf("expr: truncated IN header")
		}
		negate := data[pos] != 0
		pos++
		a, err := sub()
		if err != nil {
			return nil, 0, err
		}
		if len(data) < pos+4 {
			return nil, 0, fmt.Errorf("expr: truncated IN count")
		}
		cnt := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		in := &InList{Arg: a, Negate: negate}
		for i := 0; i < cnt; i++ {
			c, n, err := decodeConst(data[pos:])
			if err != nil {
				return nil, 0, err
			}
			in.Values = append(in.Values, c)
			pos += n
		}
		return in, pos, nil
	case tagLike:
		if len(data) < pos+1 {
			return nil, 0, fmt.Errorf("expr: truncated LIKE header")
		}
		negate := data[pos] != 0
		pos++
		pattern, n, err := DecodeString(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += n
		a, err := sub()
		if err != nil {
			return nil, 0, err
		}
		return &Like{Arg: a, Pattern: pattern, Negate: negate}, pos, nil
	}
	return nil, 0, fmt.Errorf("expr: unknown expression tag %d", tag)
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}
