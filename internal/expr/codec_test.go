package expr

import (
	"testing"

	"bdcc/internal/vector"
)

// codecSchema is a schema covering all three kinds, for bind-and-eval
// round-trip checks.
var codecSchema = Schema{
	{Name: "a", Kind: vector.Int64},
	{Name: "b", Kind: vector.Float64},
	{Name: "c", Kind: vector.String},
}

func codecBatch() *vector.Batch {
	b := vector.NewBatch(codecSchema.Kinds())
	for i := 0; i < 16; i++ {
		b.Cols[0].AppendInt64(int64(i - 8))
		b.Cols[1].AppendFloat64(float64(i) * 1.5)
		b.Cols[2].AppendString(string(rune('a' + i%5)))
	}
	return b
}

// TestExprCodecRoundTrip checks every node type survives the wire: the
// decoded tree renders identically, binds against the same schema, and
// evaluates to the same values as the original.
func TestExprCodecRoundTrip(t *testing.T) {
	exprs := []Expr{
		C("a"),
		Int(42),
		Float(-0.5),
		Str("hello"),
		NewCmp(LE, C("a"), Int(3)),
		NewAnd(Eq(C("c"), Str("b")), NewCmp(GT, C("b"), Float(2))),
		NewOr(Eq(C("a"), Int(0)), Eq(C("a"), Int(1)), Eq(C("a"), Int(2))),
		NewNot(Eq(C("c"), Str("a"))),
		NewArith(Mul, C("b"), NewArith(Sub, Float(1), Float(0.25))),
		NewArith(Add, C("a"), Int(7)),
		NewCase(NewCmp(LT, C("a"), Int(0)), Int(1), Int(0)),
		NewYear(C("a")),
		NewSubstr(C("c"), 1, 1),
		NewIn(C("c"), Str("a"), Str("c")),
		NewNotIn(C("a"), Int(1), Int(2)),
		NewLike(C("c"), "%a%"),
		NewNotLike(C("c"), "b_"),
		Between(C("a"), Int(-3), Int(3)),
	}
	in := codecBatch()
	for _, e := range exprs {
		buf, err := EncodeExpr(e, nil)
		if err != nil {
			t.Fatalf("%s: encode: %v", e, err)
		}
		got, n, err := DecodeExpr(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", e, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: decoded %d of %d bytes", e, n, len(buf))
		}
		if got.String() != e.String() {
			t.Fatalf("round trip changed the tree: %s != %s", got, e)
		}
		if err := Bind(e, codecSchema); err != nil {
			t.Fatalf("%s: bind original: %v", e, err)
		}
		if err := Bind(got, codecSchema); err != nil {
			t.Fatalf("%s: bind decoded: %v", e, err)
		}
		want := NewScratch(e.Kind())
		have := NewScratch(got.Kind())
		e.Eval(in, want)
		got.Eval(in, have)
		if want.Len() != have.Len() {
			t.Fatalf("%s: %d values, original has %d", e, have.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if want.GetString(i) != have.GetString(i) {
				t.Fatalf("%s: row %d = %s, original has %s", e, i, have.GetString(i), want.GetString(i))
			}
		}
	}
}

// TestExprCodecBoundTreeEncodesUnbound locks in that binding state does not
// travel: encoding a bound tree and an identical unbound tree yields the
// same bytes.
func TestExprCodecBoundTreeEncodesUnbound(t *testing.T) {
	mk := func() Expr { return NewAnd(Eq(C("a"), Int(1)), NewLike(C("c"), "x%")) }
	bound := mk()
	if err := Bind(bound, codecSchema); err != nil {
		t.Fatal(err)
	}
	b1, err := EncodeExpr(bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeExpr(mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("bound and unbound trees encode differently")
	}
}

// TestExprCodecTruncation checks every prefix of a deep encoding fails to
// decode rather than panicking or decoding garbage.
func TestExprCodecTruncation(t *testing.T) {
	e := NewCase(NewIn(C("c"), Str("a")), NewArith(Div, C("b"), Float(2)), NewSubstr(C("c"), 1, 2))
	buf, err := EncodeExpr(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeExpr(buf[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(buf))
		}
	}
	if _, _, err := DecodeExpr([]byte{250}); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
}
