// Package expr implements the scalar expression language of the engine:
// typed expression trees that evaluate vectorized (one output vector per
// input batch), plus the static analysis the BDCC query rewriter relies on
// (conjunct splitting and extraction of value intervals per column, which the
// rewriter maps onto dimension bin ranges and MinMax pages).
//
// Boolean results are represented as Int64 vectors holding 0 or 1.
package expr

import (
	"fmt"

	"bdcc/internal/vector"
)

// ColMeta describes one column of a row schema.
type ColMeta struct {
	Name string
	Kind vector.Kind
}

// Schema is an ordered list of columns an expression can be bound against.
type Schema []ColMeta

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Kinds returns the kind of each column.
func (s Schema) Kinds() []vector.Kind {
	ks := make([]vector.Kind, len(s))
	for i, c := range s {
		ks[i] = c.Kind
	}
	return ks
}

// Names returns the name of each column.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i, c := range s {
		ns[i] = c.Name
	}
	return ns
}

// Expr is a scalar expression. Expressions are built unbound (column
// references by name), bound against a Schema with Bind, and then evaluated
// against batches conforming to that schema.
type Expr interface {
	// Kind returns the result kind. Only valid after Bind.
	Kind() vector.Kind
	// Eval appends one value per row of b to out (out must have the
	// expression's kind and is not reset).
	Eval(b *vector.Batch, out *vector.Vector)
	// String renders the expression for EXPLAIN output.
	String() string
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// Col references a column by name; Bind resolves Index and Kind.
type Col struct {
	Name  string
	Index int
	kind  vector.Kind
}

// C returns an unbound column reference.
func C(name string) *Col { return &Col{Name: name, Index: -1} }

// Kind implements Expr.
func (c *Col) Kind() vector.Kind { return c.kind }

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Eval implements Expr.
func (c *Col) Eval(b *vector.Batch, out *vector.Vector) {
	src := b.Cols[c.Index]
	switch c.kind {
	case vector.Int64:
		out.I64 = append(out.I64, src.I64...)
	case vector.Float64:
		out.F64 = append(out.F64, src.F64...)
	case vector.String:
		out.Str = append(out.Str, src.Str...)
	}
}

// Const is a literal value.
type Const struct {
	K vector.Kind
	I int64
	F float64
	S string
}

// Int returns an int64 literal.
func Int(v int64) *Const { return &Const{K: vector.Int64, I: v} }

// Float returns a float64 literal.
func Float(v float64) *Const { return &Const{K: vector.Float64, F: v} }

// Str returns a string literal.
func Str(v string) *Const { return &Const{K: vector.String, S: v} }

// Date returns an int64 literal holding the day number of a YYYY-MM-DD date.
func Date(s string) *Const { return Int(vector.ParseDate(s)) }

// Kind implements Expr.
func (c *Const) Kind() vector.Kind { return c.K }

// String implements Expr.
func (c *Const) String() string {
	switch c.K {
	case vector.Int64:
		return fmt.Sprintf("%d", c.I)
	case vector.Float64:
		return fmt.Sprintf("%g", c.F)
	default:
		return fmt.Sprintf("%q", c.S)
	}
}

// Eval implements Expr.
func (c *Const) Eval(b *vector.Batch, out *vector.Vector) {
	n := b.Len()
	switch c.K {
	case vector.Int64:
		for i := 0; i < n; i++ {
			out.I64 = append(out.I64, c.I)
		}
	case vector.Float64:
		for i := 0; i < n; i++ {
			out.F64 = append(out.F64, c.F)
		}
	case vector.String:
		for i := 0; i < n; i++ {
			out.Str = append(out.Str, c.S)
		}
	}
}

// Cmp is a binary comparison producing a boolean (Int64 0/1).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp returns the comparison l op r.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eq is shorthand for an equality comparison.
func Eq(l, r Expr) *Cmp { return NewCmp(EQ, l, r) }

// Kind implements Expr.
func (c *Cmp) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// Eval implements Expr.
func (c *Cmp) Eval(b *vector.Batch, out *vector.Vector) {
	lv := NewScratch(c.L.Kind())
	rv := NewScratch(c.R.Kind())
	c.L.Eval(b, lv)
	c.R.Eval(b, rv)
	n := b.Len()
	for i := 0; i < n; i++ {
		cmp := lv.Compare(i, rv, i)
		var r bool
		switch c.Op {
		case EQ:
			r = cmp == 0
		case NE:
			r = cmp != 0
		case LT:
			r = cmp < 0
		case LE:
			r = cmp <= 0
		case GT:
			r = cmp > 0
		case GE:
			r = cmp >= 0
		}
		out.I64 = append(out.I64, b2i(r))
	}
}

// And is an n-ary conjunction.
type And struct{ Args []Expr }

// NewAnd returns the conjunction of args (which must be boolean-valued).
func NewAnd(args ...Expr) *And { return &And{Args: args} }

// Kind implements Expr.
func (a *And) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (a *And) String() string { return nary("AND", a.Args) }

// Eval implements Expr.
func (a *And) Eval(b *vector.Batch, out *vector.Vector) {
	n := b.Len()
	acc := make([]int64, n)
	for i := range acc {
		acc[i] = 1
	}
	tmp := NewScratch(vector.Int64)
	for _, arg := range a.Args {
		tmp.Reset()
		arg.Eval(b, tmp)
		for i := 0; i < n; i++ {
			acc[i] &= tmp.I64[i]
		}
	}
	out.I64 = append(out.I64, acc...)
}

// Or is an n-ary disjunction.
type Or struct{ Args []Expr }

// NewOr returns the disjunction of args.
func NewOr(args ...Expr) *Or { return &Or{Args: args} }

// Kind implements Expr.
func (o *Or) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (o *Or) String() string { return nary("OR", o.Args) }

// Eval implements Expr.
func (o *Or) Eval(b *vector.Batch, out *vector.Vector) {
	n := b.Len()
	acc := make([]int64, n)
	tmp := NewScratch(vector.Int64)
	for _, arg := range o.Args {
		tmp.Reset()
		arg.Eval(b, tmp)
		for i := 0; i < n; i++ {
			acc[i] |= tmp.I64[i]
		}
	}
	out.I64 = append(out.I64, acc...)
}

// Not negates a boolean expression.
type Not struct{ Arg Expr }

// NewNot returns NOT arg.
func NewNot(arg Expr) *Not { return &Not{Arg: arg} }

// Kind implements Expr.
func (n *Not) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.Arg) }

// Eval implements Expr.
func (n *Not) Eval(b *vector.Batch, out *vector.Vector) {
	tmp := NewScratch(vector.Int64)
	n.Arg.Eval(b, tmp)
	for _, v := range tmp.I64 {
		out.I64 = append(out.I64, 1-v)
	}
}

// Arith is a binary arithmetic expression. Mixed int/float operands promote
// to float.
type Arith struct {
	Op   ArithOp
	L, R Expr
	kind vector.Kind
}

// NewArith returns l op r.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Kind implements Expr.
func (a *Arith) Kind() vector.Kind { return a.kind }

// String implements Expr.
func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Eval implements Expr.
func (a *Arith) Eval(b *vector.Batch, out *vector.Vector) {
	n := b.Len()
	if a.kind == vector.Int64 {
		lv, rv := NewScratch(vector.Int64), NewScratch(vector.Int64)
		a.L.Eval(b, lv)
		a.R.Eval(b, rv)
		for i := 0; i < n; i++ {
			var v int64
			switch a.Op {
			case Add:
				v = lv.I64[i] + rv.I64[i]
			case Sub:
				v = lv.I64[i] - rv.I64[i]
			case Mul:
				v = lv.I64[i] * rv.I64[i]
			case Div:
				v = lv.I64[i] / rv.I64[i]
			}
			out.I64 = append(out.I64, v)
		}
		return
	}
	lf := evalAsFloat(a.L, b)
	rf := evalAsFloat(a.R, b)
	for i := 0; i < n; i++ {
		var v float64
		switch a.Op {
		case Add:
			v = lf[i] + rf[i]
		case Sub:
			v = lf[i] - rf[i]
		case Mul:
			v = lf[i] * rf[i]
		case Div:
			v = lf[i] / rf[i]
		}
		out.F64 = append(out.F64, v)
	}
}

func evalAsFloat(e Expr, b *vector.Batch) []float64 {
	tmp := NewScratch(e.Kind())
	e.Eval(b, tmp)
	if e.Kind() == vector.Float64 {
		return tmp.F64
	}
	fs := make([]float64, len(tmp.I64))
	for i, v := range tmp.I64 {
		fs[i] = float64(v)
	}
	return fs
}

// Case is CASE WHEN cond THEN a ELSE b END. Then and Else must share a kind.
type Case struct {
	When Expr
	Then Expr
	Else Expr
}

// NewCase returns the conditional expression.
func NewCase(when, then, els Expr) *Case { return &Case{When: when, Then: then, Else: els} }

// Kind implements Expr.
func (c *Case) Kind() vector.Kind { return c.Then.Kind() }

// String implements Expr.
func (c *Case) String() string {
	return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", c.When, c.Then, c.Else)
}

// Eval implements Expr.
func (c *Case) Eval(b *vector.Batch, out *vector.Vector) {
	cond := NewScratch(vector.Int64)
	c.When.Eval(b, cond)
	tv := NewScratch(c.Then.Kind())
	ev := NewScratch(c.Else.Kind())
	c.Then.Eval(b, tv)
	c.Else.Eval(b, ev)
	n := b.Len()
	for i := 0; i < n; i++ {
		if cond.I64[i] != 0 {
			out.AppendFrom(tv, i)
		} else {
			out.AppendFrom(ev, i)
		}
	}
}

// Year extracts the calendar year from a date (Int64 day number) expression.
type Year struct{ Arg Expr }

// NewYear returns EXTRACT(YEAR FROM arg).
func NewYear(arg Expr) *Year { return &Year{Arg: arg} }

// Kind implements Expr.
func (y *Year) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (y *Year) String() string { return fmt.Sprintf("YEAR(%s)", y.Arg) }

// Eval implements Expr.
func (y *Year) Eval(b *vector.Batch, out *vector.Vector) {
	tmp := NewScratch(vector.Int64)
	y.Arg.Eval(b, tmp)
	for _, d := range tmp.I64 {
		out.I64 = append(out.I64, vector.DateYear(d))
	}
}

// Substr is SUBSTRING(arg FROM start FOR length) with 1-based start.
type Substr struct {
	Arg    Expr
	Start  int
	Length int
}

// NewSubstr returns the substring expression.
func NewSubstr(arg Expr, start, length int) *Substr {
	return &Substr{Arg: arg, Start: start, Length: length}
}

// Kind implements Expr.
func (s *Substr) Kind() vector.Kind { return vector.String }

// String implements Expr.
func (s *Substr) String() string {
	return fmt.Sprintf("SUBSTRING(%s FROM %d FOR %d)", s.Arg, s.Start, s.Length)
}

// Eval implements Expr.
func (s *Substr) Eval(b *vector.Batch, out *vector.Vector) {
	tmp := NewScratch(vector.String)
	s.Arg.Eval(b, tmp)
	for _, v := range tmp.Str {
		lo := s.Start - 1
		if lo < 0 {
			lo = 0
		}
		hi := lo + s.Length
		if lo > len(v) {
			lo = len(v)
		}
		if hi > len(v) {
			hi = len(v)
		}
		out.Str = append(out.Str, v[lo:hi])
	}
}

// InList tests membership of Arg in a set of constants of the same kind.
type InList struct {
	Arg    Expr
	Values []*Const
	Negate bool
}

// NewIn returns arg IN (values...).
func NewIn(arg Expr, values ...*Const) *InList { return &InList{Arg: arg, Values: values} }

// NewNotIn returns arg NOT IN (values...).
func NewNotIn(arg Expr, values ...*Const) *InList {
	return &InList{Arg: arg, Values: values, Negate: true}
}

// Kind implements Expr.
func (in *InList) Kind() vector.Kind { return vector.Int64 }

// String implements Expr.
func (in *InList) String() string {
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s %v)", in.Arg, op, in.Values)
}

// Eval implements Expr.
func (in *InList) Eval(b *vector.Batch, out *vector.Vector) {
	tmp := NewScratch(in.Arg.Kind())
	in.Arg.Eval(b, tmp)
	n := b.Len()
	for i := 0; i < n; i++ {
		hit := false
		for _, c := range in.Values {
			switch tmp.Kind {
			case vector.Int64:
				hit = tmp.I64[i] == c.I
			case vector.Float64:
				hit = tmp.F64[i] == c.F
			case vector.String:
				hit = tmp.Str[i] == c.S
			}
			if hit {
				break
			}
		}
		out.I64 = append(out.I64, b2i(hit != in.Negate))
	}
}

// Between is lo <= arg AND arg <= hi, as a single analyzable node.
func Between(arg Expr, lo, hi Expr) Expr {
	return NewAnd(NewCmp(GE, arg, lo), NewCmp(LE, arg, hi))
}

// NewScratch returns an empty scratch vector of kind k sized for one batch.
func NewScratch(k vector.Kind) *vector.Vector {
	return vector.NewVector(k, vector.BatchSize)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func nary(op string, args []Expr) string {
	s := "("
	for i, a := range args {
		if i > 0 {
			s += " " + op + " "
		}
		s += a.String()
	}
	return s + ")"
}
