package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// Sim is the in-process simulated remote backend: the first non-local
// implementation of engine.Backend, shaped so a real network backend is a
// drop-in replacement. It owns a scheduler of its own (the remote box's
// pool), and every group unit crosses a genuine byte-stream transport — an
// in-memory full-duplex connection carrying length-framed messages — so the
// remote side decodes fresh batches and shares no data memory with the
// query's operators. Transport activity is charged to an iosim accountant
// over a network device (one "run" per message), producing the modeled
// net_ms the benchmark grid reports.
//
// One deliberate simulation shortcut: the GroupWork closure does not cross
// the wire. It stands in for the plan fragment a real remote would receive
// once at query setup; the remote loop looks it up by unit id from the
// sender's registry. All batch data — probe, build, results — crosses as
// bytes in both directions.
type Sim struct {
	sched *engine.Sched
	net   *iosim.Accountant

	local  net.Conn // query side: writes requests, reads responses
	remote net.Conn // backend side: reads requests, writes responses

	wLocal  sync.Mutex // frames the request stream
	wRemote sync.Mutex // frames the response stream

	mu      sync.Mutex
	pending map[uint64]*simCall
	nextID  uint64
	broken  error // transport-level failure; fails every later unit
	closed  bool

	tasks sync.WaitGroup // remote-side in-flight unit tasks
	loops sync.WaitGroup // the two transport reader goroutines
}

// simCall is the query-side registration of one in-flight unit.
type simCall struct {
	work engine.GroupWork
	emit func(*vector.Batch)
	done func(error)
}

// Transport frame types. Every frame is one message on the stream:
// u32 payload length, u64 unit id, u8 type, payload.
const (
	frameUnit  = byte(1) // query → backend: one encoded GroupUnit
	frameBatch = byte(2) // backend → query: one encoded result batch
	frameDone  = byte(3) // backend → query: unit finished; payload = error text
)

const frameHeader = 4 + 8 + 1

var errSimClosed = errors.New("shard: backend closed")

// NewSim returns a simulated remote backend with its own pool of `workers`
// goroutines, charging transport activity to acct (nil disables network
// accounting).
func NewSim(workers int, acct *iosim.Accountant) *Sim {
	s := &Sim{
		sched:   engine.NewSched(workers),
		net:     acct,
		pending: make(map[uint64]*simCall),
	}
	s.local, s.remote = net.Pipe()
	s.sched.Retain()
	s.loops.Add(2)
	go s.remoteLoop()
	go s.localLoop()
	return s
}

// Workers implements engine.Backend.
func (s *Sim) Workers() int { return s.sched.Workers() }

// frameBuf returns a payload buffer with the frame header reserved up
// front, so encoders append payload bytes directly behind it and writeFrame
// ships the single buffer with no second copy.
func frameBuf() []byte { return make([]byte, frameHeader) }

// writeFrame patches the reserved header of frame (a frameBuf-based buffer
// whose payload starts at frameHeader) and sends it as one message on conn,
// charging its bytes to the network model.
func (s *Sim) writeFrame(conn net.Conn, mu *sync.Mutex, id uint64, typ byte, frame []byte) error {
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-frameHeader))
	binary.LittleEndian.PutUint64(frame[4:], id)
	frame[12] = typ
	if s.net != nil {
		s.net.AddRun(1, int64(len(frame)))
	}
	mu.Lock()
	defer mu.Unlock()
	_, err := conn.Write(frame)
	return err
}

// readFrame reads one framed message from conn.
func readFrame(conn net.Conn) (id uint64, typ byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	id = binary.LittleEndian.Uint64(hdr[4:])
	typ = hdr[12]
	payload = make([]byte, n)
	if _, err = io.ReadFull(conn, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, typ, payload, nil
}

// RunGroup implements engine.Backend: encode the unit, register the call,
// and ship it. The remote loop schedules execution; the local loop delivers
// results. done is always invoked exactly once, possibly synchronously when
// the transport is already down.
func (s *Sim) RunGroup(u *engine.GroupUnit, work engine.GroupWork, emit func(*vector.Batch), done func(error)) {
	s.mu.Lock()
	if err := s.unusable(); err != nil {
		s.mu.Unlock()
		done(err)
		return
	}
	id := s.nextID
	s.nextID++
	s.pending[id] = &simCall{work: work, emit: emit, done: done}
	s.mu.Unlock()

	if err := s.writeFrame(s.local, &s.wLocal, id, frameUnit, EncodeUnit(u, frameBuf())); err != nil {
		s.fail(fmt.Errorf("shard: ship unit: %w", err))
	}
}

// unusable reports why new units cannot be accepted. Called with s.mu held.
func (s *Sim) unusable() error {
	if s.closed {
		return errSimClosed
	}
	return s.broken
}

// fail marks the transport broken, tears the pipe down (unblocking any
// writer parked on the synchronous stream — without this a remote task
// blocked shipping a result after the local reader died would hang Close
// forever), and fails every pending unit; later units fail on arrival.
// Exactly-once delivery of done is preserved: a call is removed from
// pending before its done runs.
func (s *Sim) fail(err error) {
	s.mu.Lock()
	if s.broken == nil {
		s.broken = err
	}
	err = s.broken
	calls := make([]*simCall, 0, len(s.pending))
	for id, c := range s.pending {
		calls = append(calls, c)
		delete(s.pending, id)
	}
	s.mu.Unlock()
	s.local.Close()
	s.remote.Close()
	for _, c := range calls {
		c.done(err)
	}
}

// remoteLoop is the backend box: it reads unit frames off the request
// stream and turns each into a task on the backend's own scheduler. The
// task decodes the unit (so decoding parallelizes on the remote pool), runs
// the group work against the decoded batches, streams every result batch
// back as bytes, then reports completion.
func (s *Sim) remoteLoop() {
	defer s.loops.Done()
	for {
		id, typ, payload, err := readFrame(s.remote)
		if err != nil {
			return // transport closed (Close) or broken (local side reports)
		}
		if typ != frameUnit {
			s.fail(fmt.Errorf("shard: backend received frame type %d", typ))
			return
		}
		s.mu.Lock()
		call := s.pending[id]
		s.mu.Unlock()
		if call == nil {
			continue // unit already failed locally
		}
		s.tasks.Add(1)
		s.sched.Submit(-1, func(w int) {
			defer s.tasks.Done()
			u, err := DecodeUnit(payload)
			if err == nil {
				err = call.work(w, u, func(b *vector.Batch) {
					if werr := s.writeFrame(s.remote, &s.wRemote, id, frameBatch, b.Encode(frameBuf())); werr != nil {
						s.fail(fmt.Errorf("shard: ship result: %w", werr))
					}
				})
			}
			msg := frameBuf()
			if err != nil {
				msg = append(msg, err.Error()...)
			}
			if werr := s.writeFrame(s.remote, &s.wRemote, id, frameDone, msg); werr != nil {
				s.fail(fmt.Errorf("shard: ship completion: %w", werr))
			}
		})
	}
}

// localLoop is the query side of the response stream: it decodes result
// batches and delivers them (in shipped order) to the unit's emit, then
// completes the unit. Work errors cross the transport as text — a real
// remote loses error identity the same way.
func (s *Sim) localLoop() {
	defer s.loops.Done()
	for {
		id, typ, payload, err := readFrame(s.local)
		if err != nil {
			return
		}
		s.mu.Lock()
		call := s.pending[id]
		if typ == frameDone {
			delete(s.pending, id)
		}
		s.mu.Unlock()
		if call == nil {
			continue
		}
		switch typ {
		case frameBatch:
			b, n, derr := vector.DecodeBatch(payload)
			if derr == nil && n != len(payload) {
				derr = fmt.Errorf("shard: %d trailing bytes after result batch", len(payload)-n)
			}
			if derr != nil {
				s.fail(derr)
				return
			}
			call.emit(b)
		case frameDone:
			if len(payload) != 0 {
				call.done(errors.New(string(payload)))
			} else {
				call.done(nil)
			}
		default:
			s.fail(fmt.Errorf("shard: query side received frame type %d", typ))
			return
		}
	}
}

// Close implements engine.Backend: it joins the remote pool's in-flight
// tasks, releases the pool (idle workers exit), tears down the transport,
// and joins both reader loops, so a closed backend leaves no goroutines
// behind. Units must not be in flight (the engine's exchange joins every
// done callback before operators close); any that are anyway fail with
// errSimClosed.
func (s *Sim) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.tasks.Wait()
	s.sched.Release()
	s.local.Close()
	s.remote.Close()
	s.loops.Wait()
	s.fail(errSimClosed) // defensively complete contract-violating stragglers
	return nil
}
