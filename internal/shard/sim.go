package shard

import (
	"fmt"
	"net"

	"bdcc/internal/iosim"
)

// Sim is the in-process simulated remote backend: the protocol client of
// net.go talking to the worker Server of net.go — the very same two halves
// a real deployment runs, speaking the wire protocol of docs/WIRE.md —
// connected by an in-memory net.Pipe instead of a TCP socket. Nothing is
// simulated but the wire itself: the plan fragment ships as bytes at
// setup, every group unit and result batch crosses the stream
// length-framed and encoded (the remote side decodes fresh memory and
// shares none with the query's operators), the remote box runs its own
// scheduler and meters its own hash tables, and transport activity is
// charged to an iosim accountant over a network device — producing the
// modeled net_ms the benchmark grid reports where a real deployment pays
// wall-clock time.
//
// Because both halves are the production implementations, a passing run
// over Sim is a passing run of the full wire protocol; swapping the pipe
// for a dialed connection (Dial) is the only difference between the
// simulation and a real bdccworker.
type Sim struct {
	*client
	srv *Server
}

// NewSim returns a simulated remote backend whose worker half runs its own
// pool of `workers` goroutines, charging transport activity to acct (nil
// disables network accounting).
func NewSim(workers int, acct *iosim.Accountant) *Sim {
	srv := NewServer(workers)
	local, remote := net.Pipe()
	srv.ServeConn(remote)
	cl, err := newClient(local, "sim", "", acct)
	if err != nil {
		// The handshake runs between two goroutines of this process over a
		// fresh pipe; it cannot fail without a protocol-implementation bug.
		panic(fmt.Sprintf("shard: in-process handshake failed: %v", err))
	}
	return &Sim{client: cl, srv: srv}
}

// Close implements engine.Backend: it closes the client half (joining its
// read loop) and shuts the in-process worker down (joining its session and
// in-flight unit tasks), so a closed backend leaves no goroutines behind on
// either side of the pipe.
func (s *Sim) Close() error {
	err := s.client.Close()
	s.srv.Close()
	return err
}

// Worker returns the backend's in-process worker half — its memory tracker
// and unit counters are the remote box's meters.
func (s *Sim) Worker() *Server { return s.srv }
