package shard

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// This file is the network backend: the framed byte-stream protocol between
// a query (client half, engine.Backend) and a worker (Server half, the core
// of cmd/bdccworker), plus Dial for real TCP connections. The simulated
// remote (sim.go) runs exactly this client against exactly this server over
// an in-process net.Pipe, so the simulation and the real network share one
// protocol implementation end to end. The full wire specification lives in
// docs/WIRE.md.

// Protocol identity. ProtoMagic opens every session's hello frame;
// ProtoVersion is negotiated in the hello exchange and must match exactly
// (see docs/WIRE.md for the versioning rules). Version 2 added the
// ping/pong liveness pair — an old worker would drop a pinged session, so
// the version was bumped rather than kept additive. Version 3 added the
// shared-secret auth token to the client hello (compared constant-time by
// the worker, mismatch drops the session without a reply); the payload
// grew, so again a bump, not an addition. Version 4 changed the batch wire
// form itself (a per-column encoding tag byte with RLE/FOR/dictionary
// compressed payloads) — an old peer would misparse every unit and result
// batch, so once more a bump, not an addition. Version 5 made the workers
// shared-nothing: the client ships base-table partitions (framePartTable
// manifest + framePartData row batches), the setup payload gained a
// fragment-kind byte and table name (scan fragments), the unit payload
// gained a scan-range list, and the done payload gained a status byte plus
// optional per-unit scan read stats — four payload-layout changes, so once
// more a bump, not an addition.
const (
	ProtoMagic   = "BDCW"
	ProtoVersion = 5
)

// Transport frame types. Every frame is one message on the stream:
// u32 payload length, u64 id, u8 type, payload.
const (
	frameHello     = byte(1) // both directions at session start: version handshake
	frameSetup     = byte(2) // query → worker: one plan fragment; id = fragment id
	frameUnit      = byte(3) // query → worker: one group unit; id = unit id
	frameBatch     = byte(4) // worker → query: one result batch; id = unit id
	frameDone      = byte(5) // worker → query: unit finished; payload = status (+stats or error)
	framePing      = byte(6) // query → worker: liveness probe; id = ping id
	framePong      = byte(7) // worker → query: ping echo; id = the ping's id
	framePartTable = byte(8) // query → worker: partition manifest; id = partition id
	framePartData  = byte(9) // query → worker: partition row batch; id = partition id
)

const frameHeader = 4 + 8 + 1

// maxFramePayload bounds what a peer can make us allocate from a 13-byte
// header: well above any real unit (a group's batches), well below an
// OOM-by-garbage. A frame claiming more is a protocol violation and drops
// the session; the send side checks it first, failing only the oversized
// unit — a work error, not a backend failure, so failover does not cascade
// it through the set (see docs/WIRE.md).
const maxFramePayload = 1 << 30

// handshakeTimeout bounds Dial's connect and the hello exchange, so one
// black-holed address or non-protocol listener fails the set instead of
// hanging the query at planning.
const handshakeTimeout = 10 * time.Second

// frameWriteTimeout bounds every single frame write. A peer that is alive
// at the TCP level but not consuming (a stopped process, a stalled
// client) would otherwise park the writer forever once the transport
// window fills — on the query side that blocks the feeder under wmu with
// failover never triggering, on the worker side it parks unit tasks on
// the daemon's shared scheduler and starves every other session. With the
// deadline, a stall becomes a write error: the query side reroutes
// (ErrBackendDown), the worker side abandons the stalled session's unit.
// Generous — a 1 GiB frame crosses a 1 Gbps link in ~10 s.
const frameWriteTimeout = 2 * time.Minute

// ErrBackendDown marks transport-level backend failures — refused dials,
// connection loss, protocol corruption — as opposed to unit work errors,
// which cross the transport as frameDone text. The failover wrapper retries
// a unit on a surviving backend exactly when its error wraps ErrBackendDown;
// work errors are never retried (a rerun would fail identically).
var ErrBackendDown = errors.New("shard: backend down")

var errClosed = errors.New("shard: backend closed")

// frameBuf returns a payload buffer with the frame header reserved up
// front, so encoders append payload bytes directly behind it and writeFrame
// ships the single buffer with no second copy.
func frameBuf() []byte { return make([]byte, frameHeader) }

// writeFrame patches the reserved header of frame (a frameBuf-based buffer
// whose payload starts at frameHeader) and sends it as one message on conn;
// acct, when non-nil, charges the message to the network model. Callers
// hold their direction's write mutex (one frame at a time per direction).
func writeFrame(conn net.Conn, acct *iosim.Accountant, id uint64, typ byte, frame []byte) error {
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-frameHeader))
	binary.LittleEndian.PutUint64(frame[4:], id)
	frame[12] = typ
	if acct != nil {
		acct.AddRun(1, int64(len(frame)))
	}
	conn.SetWriteDeadline(time.Now().Add(frameWriteTimeout))
	_, err := conn.Write(frame)
	return err
}

// readFrame reads one framed message from conn, charging it to acct when
// non-nil (the query side meters both directions; the worker meters none,
// so every message is charged exactly once).
func readFrame(conn net.Conn, acct *iosim.Accountant) (id uint64, typ byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	id = binary.LittleEndian.Uint64(hdr[4:])
	typ = hdr[12]
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("shard: frame claims %d-byte payload (cap %d)", n, maxFramePayload)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(conn, payload); err != nil {
		return 0, 0, nil, err
	}
	if acct != nil {
		acct.AddRun(1, int64(frameHeader)+int64(n))
	}
	return id, typ, payload, nil
}

// client is the query half of the protocol: an engine.Backend over one
// framed byte-stream connection. It ships each operator's plan fragment
// once (frameSetup, keyed by fragment pointer), then one frameUnit per
// group, and delivers frameBatch/frameDone responses to the unit's
// emit/done callbacks. Transport failures fail every pending and later
// unit with an ErrBackendDown-wrapped error.
type client struct {
	conn net.Conn
	name string // dial address, or "sim" for the in-process pipe
	net  *iosim.Accountant

	wmu sync.Mutex // frames the request stream; also guards frags and parts
	// frags is the by-pointer registry of shipped fragments; fragsByKey
	// indexes the same registrations by encoded content, so two Fragment
	// values with identical wire forms — e.g. the same cached plan
	// instantiated by two queries sharing this session — ship one setup
	// frame and alias one fragment id.
	frags      map[*engine.Fragment]uint64
	fragsByKey map[string]uint64
	nextFrag   uint64
	// parts records shipped table partitions by content key, so a partition
	// offered twice to one session (plan-time ship racing a re-admission
	// re-ship) crosses the wire once.
	parts    map[string]uint64
	nextPart uint64

	// dmu serializes callback delivery: the read loop's emit/done calls and
	// fail's drain of pending dones are mutually exclusive, so a unit never
	// sees emit or done concurrently (the backend contract the failover
	// buffer and the exchange depend on), and a unit drained by fail is
	// never emitted to afterwards.
	dmu sync.Mutex

	mu       sync.Mutex
	pending  map[uint64]*call
	nextID   uint64
	pings    map[uint64]chan error
	nextPing uint64
	broken   error
	closed   bool
	// onScanIO, when set, receives the per-unit modeled read stats a v5 done
	// frame carries for scan units — the worker's local device reads, fed
	// into the query's per-worker scan accountant.
	onScanIO func(runs, pages, bytes int64)

	workers int
	loop    sync.WaitGroup
}

// call is the query-side registration of one in-flight unit.
type call struct {
	emit func(*vector.Batch)
	done func(error)
}

// newClient performs the hello exchange on conn (bounded by
// handshakeTimeout), presenting token as the shared secret (empty = none
// configured), and starts the response reader. It owns conn from this point
// on (Close closes it). A worker whose token differs drops the connection
// without a reply, which surfaces here as a hello-reply read error.
func newClient(conn net.Conn, name, token string, acct *iosim.Accountant) (*client, error) {
	c := &client{
		conn:       conn,
		name:       name,
		net:        acct,
		frags:      make(map[*engine.Fragment]uint64),
		fragsByKey: make(map[string]uint64),
		parts:      make(map[string]uint64),
		pending:    make(map[uint64]*call),
		pings:      make(map[uint64]chan error),
	}
	if len(token) > 1<<16-1 {
		conn.Close()
		return nil, fmt.Errorf("shard: %s: auth token longer than the hello's u16 length field", name)
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := append(frameBuf(), ProtoMagic...)
	hello = binary.LittleEndian.AppendUint16(hello, ProtoVersion)
	hello = binary.LittleEndian.AppendUint16(hello, uint16(len(token)))
	hello = append(hello, token...)
	if err := writeFrame(conn, c.net, 0, frameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("shard: %s: hello: %w", name, err)
	}
	_, typ, payload, err := readFrame(conn, c.net)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("shard: %s: hello reply: %w", name, err)
	}
	conn.SetDeadline(time.Time{})
	if typ != frameHello || len(payload) < 4 {
		conn.Close()
		return nil, fmt.Errorf("shard: %s: malformed hello reply (type %d, %d bytes)", name, typ, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload); v != ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("shard: %s speaks protocol version %d, this build speaks %d", name, v, ProtoVersion)
	}
	c.workers = int(binary.LittleEndian.Uint16(payload[2:]))
	if c.workers < 1 {
		c.workers = 1
	}
	c.loop.Add(1)
	go c.readLoop()
	return c, nil
}

// Workers implements engine.Backend, reporting the parallelism the worker
// announced in its hello.
func (c *client) Workers() int { return c.workers }

// SetScanIO installs the hook that receives the per-unit scan read stats
// carried by done frames (the worker's modeled local device reads). The
// failover layer installs one per slot, feeding the query's per-worker scan
// accountants.
func (c *client) SetScanIO(fn func(runs, pages, bytes int64)) {
	c.mu.Lock()
	c.onScanIO = fn
	c.mu.Unlock()
}

// ShipPartition sends one table partition to the worker: the manifest
// payload, then the row-batch payloads, each as its own frame sharing the
// partition id. key identifies the shipment's content (table name + scheme
// revision); a partition already shipped under the same key on this session
// is skipped, so a plan-time ship racing a re-admission re-ship crosses the
// wire once. saved[i] is batch i's raw-minus-encoded wire saving, credited
// to the network accountant like any other compressed frame. The payload
// slices are copied per send (writeFrame patches a header in place, and the
// caller shares the payloads across sessions).
func (c *client) ShipPartition(key string, manifest []byte, data [][]byte, saved []int64) error {
	c.mu.Lock()
	if err := c.unusable(); err != nil {
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	c.wmu.Lock()
	if _, done := c.parts[key]; done {
		c.wmu.Unlock()
		return nil
	}
	id := c.nextPart
	c.nextPart++
	if err := writeFrame(c.conn, c.net, id, framePartTable, append(frameBuf(), manifest...)); err != nil {
		c.wmu.Unlock()
		c.fail(fmt.Errorf("ship partition manifest: %w", err))
		return fmt.Errorf("%w: %s: ship partition: %v", ErrBackendDown, c.name, err)
	}
	for i, d := range data {
		if err := writeFrame(c.conn, c.net, id, framePartData, append(frameBuf(), d...)); err != nil {
			c.wmu.Unlock()
			c.fail(fmt.Errorf("ship partition data: %w", err))
			return fmt.Errorf("%w: %s: ship partition: %v", ErrBackendDown, c.name, err)
		}
		if saved[i] > 0 && c.net != nil {
			c.net.AddSaved(saved[i])
		}
	}
	c.parts[key] = id
	c.wmu.Unlock()
	return nil
}

// RunGroup implements engine.Backend: register the call, ship the fragment
// on first use, ship the unit. The read loop delivers results. done is
// always invoked exactly once, possibly synchronously when the transport is
// already down.
func (c *client) RunGroup(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error)) {
	c.mu.Lock()
	if err := c.unusable(); err != nil {
		c.mu.Unlock()
		done(err)
		return
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = &call{emit: emit, done: done}
	c.mu.Unlock()

	// The unit payload is encoded outside the write lock (units can be
	// large, and reroutes run RunGroup concurrently with the feeder); the
	// fragment-id slot after the frame header is patched once the id is
	// known.
	pl := EncodeUnit(u, append(frameBuf(), make([]byte, 8)...))
	// net_ms is charged on the encoded frame; the raw-form difference is
	// recorded as wire savings (query side meters both directions, so each
	// message's saving is counted exactly once).
	if saved := RawUnitWireSize(u) - (len(pl) - frameHeader - 8); saved > 0 && c.net != nil {
		c.net.AddSaved(int64(saved))
	}
	if len(pl)-frameHeader > maxFramePayload {
		// Failing only this unit — as a work error, not a backend failure —
		// keeps an oversized group from cascading through every backend of
		// the set via failover.
		c.resolve(id, fmt.Errorf("shard: group %d encodes to %d bytes, over the %d frame cap",
			u.GID, len(pl)-frameHeader, maxFramePayload))
		return
	}

	// wmu is held across the fragment check and both writes: no other
	// unit's frame can interleave between a fragment's setup frame and its
	// first unit, so the worker always sees the fragment before any unit
	// that references it.
	c.wmu.Lock()
	fid, known := c.frags[frag]
	if !known {
		fpl, err := EncodeFragment(frag, frameBuf())
		if err != nil {
			c.wmu.Unlock()
			c.resolve(id, err) // a plan bug, not a transport failure: no reroute
			return
		}
		key := string(fpl[frameHeader:])
		if aliased, ok := c.fragsByKey[key]; ok {
			// Identical wire form already on the worker (another query's
			// instantiation of the same cached plan): alias its id.
			fid = aliased
			c.frags[frag] = fid
		} else {
			fid = c.nextFrag
			c.nextFrag++
			if err := writeFrame(c.conn, c.net, fid, frameSetup, fpl); err != nil {
				c.wmu.Unlock()
				c.fail(fmt.Errorf("ship fragment: %w", err))
				return
			}
			// Registered only after the setup frame shipped: a failed encode
			// or send must not leave later units referencing a fragment the
			// worker never received.
			c.frags[frag] = fid
			c.fragsByKey[key] = fid
		}
	}
	binary.LittleEndian.PutUint64(pl[frameHeader:], fid)
	err := writeFrame(c.conn, c.net, id, frameUnit, pl)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("ship unit: %w", err))
	}
}

// Ping performs one application-level liveness round-trip, bounded by
// timeout: the worker echoes the ping id as a pong. A pong proves the whole
// session — socket, frame loop, hello state — is live, which is stronger
// than a successful dial. The health prober pings a fresh connection before
// re-admitting its backend to the routing set.
func (c *client) Ping(timeout time.Duration) error {
	ch := make(chan error, 1)
	c.mu.Lock()
	if err := c.unusable(); err != nil {
		c.mu.Unlock()
		return err
	}
	id := c.nextPing
	c.nextPing++
	c.pings[id] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := writeFrame(c.conn, c.net, id, framePing, frameBuf())
	c.wmu.Unlock()
	if err != nil {
		// fail drains c.pings, so the select below resolves promptly.
		c.fail(fmt.Errorf("ping: %w", err))
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-ch:
		return err
	case <-t.C:
		c.mu.Lock()
		delete(c.pings, id)
		c.mu.Unlock()
		return fmt.Errorf("%w: %s: no pong within %v", ErrBackendDown, c.name, timeout)
	}
}

// Preload ships frag's setup frame now, instead of lazily on the first
// unit. Re-admission preloads every fragment the session already shipped,
// so a recovered worker can take any later unit of the query without a
// first-unit setup race.
func (c *client) Preload(frag *engine.Fragment) error {
	c.wmu.Lock()
	if _, known := c.frags[frag]; known {
		c.wmu.Unlock()
		return nil
	}
	fpl, err := EncodeFragment(frag, frameBuf())
	if err != nil {
		c.wmu.Unlock()
		return err
	}
	key := string(fpl[frameHeader:])
	if aliased, ok := c.fragsByKey[key]; ok {
		c.frags[frag] = aliased
		c.wmu.Unlock()
		return nil
	}
	fid := c.nextFrag
	c.nextFrag++
	werr := writeFrame(c.conn, c.net, fid, frameSetup, fpl)
	if werr == nil {
		c.frags[frag] = fid
		c.fragsByKey[key] = fid
	}
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("ship fragment: %w", werr))
		return fmt.Errorf("%w: %s: ship fragment: %v", ErrBackendDown, c.name, werr)
	}
	return nil
}

// unusable reports why new units cannot be accepted. Called with c.mu held.
func (c *client) unusable() error {
	if c.closed {
		return errClosed
	}
	return c.broken
}

// resolve completes one registered unit with err, preserving exactly-once
// delivery of done.
func (c *client) resolve(id uint64, err error) {
	c.mu.Lock()
	cl := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if cl != nil {
		cl.done(err)
	}
}

// fail marks the transport broken (wrapping the cause in ErrBackendDown so
// the failover wrapper reroutes), tears the connection down (unblocking any
// writer parked on the stream), and fails every pending unit; later units
// fail on arrival. Exactly-once delivery of done is preserved: a call is
// removed from pending before its done runs.
func (c *client) fail(err error) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.mu.Lock()
	if c.broken == nil {
		if !errors.Is(err, ErrBackendDown) {
			err = fmt.Errorf("%w: %s: %v", ErrBackendDown, c.name, err)
		}
		c.broken = err
	}
	err = c.broken
	calls := make([]*call, 0, len(c.pending))
	for id, cl := range c.pending {
		calls = append(calls, cl)
		delete(c.pending, id)
	}
	waiters := make([]chan error, 0, len(c.pings))
	for id, ch := range c.pings {
		waiters = append(waiters, ch)
		delete(c.pings, id)
	}
	c.mu.Unlock()
	c.conn.Close()
	for _, cl := range calls {
		cl.done(err)
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// readLoop is the query side of the response stream: it decodes result
// batches and delivers them (in shipped order) to the unit's emit, then
// completes the unit. Work errors cross the transport as frameDone text —
// error identity does not survive the wire — while a broken stream fails
// everything through fail.
func (c *client) readLoop() {
	defer c.loop.Done()
	for {
		id, typ, payload, err := readFrame(c.conn, c.net)
		if err != nil {
			c.fail(err)
			return
		}
		if typ != frameBatch && typ != frameDone && typ != framePong {
			c.fail(fmt.Errorf("query side received frame type %d", typ))
			return
		}
		if typ == framePong {
			c.mu.Lock()
			ch := c.pings[id]
			delete(c.pings, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- nil // a timed-out ping already removed its channel
			}
			continue
		}
		var b *vector.Batch
		if typ == frameBatch {
			var n int
			var derr error
			b, n, derr = vector.DecodeBatch(payload)
			if derr == nil && n != len(payload) {
				derr = fmt.Errorf("%d trailing bytes after result batch", len(payload)-n)
			}
			if derr != nil {
				c.fail(derr)
				return
			}
			if saved := b.RawWireSize() - len(payload); saved > 0 && c.net != nil {
				c.net.AddSaved(int64(saved))
			}
		}
		// The pending lookup happens under dmu so it cannot interleave with
		// fail's drain: a unit fail already completed is skipped here, never
		// emitted to or completed twice.
		c.dmu.Lock()
		c.mu.Lock()
		cl := c.pending[id]
		if typ == frameDone {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if cl != nil {
			switch typ {
			case frameBatch:
				cl.emit(b)
			case frameDone:
				// v5 done payload: status byte (0 success, 1 work error),
				// then — success only, scan units only — 24 bytes of
				// little-endian per-unit scan read stats (runs, pages,
				// bytes); on failure the error text. The status byte also
				// removes v4's ambiguity between success and an empty error
				// string.
				switch {
				case len(payload) < 1:
					c.dmu.Unlock()
					c.fail(fmt.Errorf("done frame with empty payload"))
					return
				case payload[0] != 0:
					cl.done(errors.New(string(payload[1:])))
				default:
					if len(payload) >= 25 {
						c.mu.Lock()
						fn := c.onScanIO
						c.mu.Unlock()
						if fn != nil {
							fn(int64(binary.LittleEndian.Uint64(payload[1:])),
								int64(binary.LittleEndian.Uint64(payload[9:])),
								int64(binary.LittleEndian.Uint64(payload[17:])))
						}
					}
					cl.done(nil)
				}
			}
		}
		c.dmu.Unlock()
	}
}

// Close implements engine.Backend: it tears down the connection and joins
// the read loop, so a closed backend leaves no goroutines behind. Units
// must not be in flight (the engine's exchange joins every done callback
// before operators close); any that are anyway fail with errClosed.
func (c *client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	c.loop.Wait()
	c.fail(errClosed) // defensively complete contract-violating stragglers
	return nil
}

// Dial connects to a bdccworker daemon at addr (host:port), performs the
// hello exchange, and returns the connection as an engine.Backend. Dial
// failures are wrapped in ErrBackendDown so a set built around survivors
// can treat an unreachable worker like a lost one.
func Dial(addr string, acct *iosim.Accountant) (engine.Backend, error) {
	return DialToken(addr, "", acct)
}

// DialToken is Dial presenting a shared-secret auth token in the hello
// (empty = no token). A token-mismatched worker drops the connection
// without a reply, which surfaces as an ErrBackendDown-wrapped dial error.
func DialToken(addr, token string, acct *iosim.Accountant) (engine.Backend, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrBackendDown, addr, err)
	}
	return newClient(conn, addr, token, acct)
}

// Server is the worker half of the protocol: the core of the bdccworker
// daemon, usable in-process (the simulated remote and the loopback tests
// serve net.Pipe and local TCP connections through it). One Server owns one
// scheduler and one memory tracker shared by every session; each accepted
// connection is an independent session with its own fragment registry, so
// concurrent queries do not observe each other.
type Server struct {
	sched     *engine.Sched
	mem       *engine.MemTracker
	token     string
	partLimit int64

	// OnUnitDone, when set before serving, is called after each unit
	// completes with the total completed so far — a diagnostic and test
	// hook (the failover tests use it to kill a worker mid-stream at a
	// deterministic point). It must not block; calling Close from the hook
	// must be done asynchronously.
	OnUnitDone func(total int64)

	// OnUnitStart, when set before serving, runs at the start of each unit
	// task, on the scheduler goroutine that executes it. Unlike OnUnitDone
	// it may block — the chaos and drain tests use it to throttle a worker
	// or wedge a session at a deterministic point.
	OnUnitStart func()

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool

	unitsDone atomic.Int64
	wg        sync.WaitGroup
	release   sync.Once
}

// NewServer returns a worker over its own scheduler of `workers` pool
// goroutines and its own memory tracker (remote group joins are metered on
// the box that runs them).
func NewServer(workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	s := &Server{
		sched: engine.NewSched(workers),
		mem:   &engine.MemTracker{},
		conns: make(map[net.Conn]struct{}),
	}
	s.sched.Retain()
	return s
}

// SetAuthToken configures the shared secret sessions must present in their
// hello frames (empty, the default, accepts only clients presenting no
// token). Set before serving; the comparison is constant-time and a
// mismatch drops the connection without a reply.
func (s *Server) SetAuthToken(token string) { s.token = token }

// SetPartLimit caps the decoded bytes of shipped table partitions one
// session may hold (0, the default, means unlimited). Crossing the cap
// poisons the affected table, failing its scan units as work errors without
// dropping the session — back-pressure for a coordinator shipping more data
// than the worker box should hold. Set before serving.
func (s *Server) SetPartLimit(bytes int64) { s.partLimit = bytes }

// Workers returns the server's scheduler parallelism (announced to clients
// in the hello exchange).
func (s *Server) Workers() int { return s.sched.Workers() }

// Mem returns the server's memory tracker: the worker-side analogue of the
// query's tracker, charged with every remote group's hash table.
func (s *Server) Mem() *engine.MemTracker { return s.mem }

// UnitsDone returns the number of units completed across all sessions.
func (s *Server) UnitsDone() int64 { return s.unitsDone.Load() }

// Serve accepts connections on l until the listener fails or the server is
// closed, serving each connection as an independent session. It returns nil
// after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.ServeConn(conn)
	}
}

// ServeConn starts one session over an established connection (net.Pipe end,
// accepted socket) and returns immediately; the session runs on server-owned
// goroutines until the peer closes or the server does.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.session(conn)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
}

// session is one connection's lifetime: hello exchange, then a setup/unit
// frame loop spawning one scheduler task per unit, then teardown — the
// connection is closed first (unblocking any task parked writing a result)
// and in-flight tasks are joined before the session ends, so Close never
// returns while a unit still runs.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	_, typ, payload, err := readFrame(conn, nil)
	if err != nil || typ != frameHello || len(payload) < len(ProtoMagic)+2 ||
		string(payload[:len(ProtoMagic)]) != ProtoMagic {
		return // not a protocol peer (or one that stalled); no reply owed
	}
	conn.SetReadDeadline(time.Time{})
	// Authenticate before replying: a peer with the wrong shared secret
	// learns nothing — not the version, not that anything listens here
	// beyond TCP. The token field is v3's addition; a well-formed older
	// hello simply has no token bytes, which only matches a server that
	// requires none (and is then dropped by the version check below).
	var token []byte
	if rest := payload[len(ProtoMagic)+2:]; len(rest) >= 2 {
		if n := int(binary.LittleEndian.Uint16(rest)); len(rest) >= 2+n {
			token = rest[2 : 2+n]
		}
	}
	if subtle.ConstantTimeCompare(token, []byte(s.token)) != 1 {
		return // auth mismatch: drop without a reply
	}
	var wmu sync.Mutex
	reply := binary.LittleEndian.AppendUint16(frameBuf(), ProtoVersion)
	reply = binary.LittleEndian.AppendUint16(reply, uint16(s.sched.Workers()))
	if writeFrame(conn, nil, 0, frameHello, reply) != nil {
		return
	}
	if v := binary.LittleEndian.Uint16(payload[len(ProtoMagic):]); v != ProtoVersion {
		return // versions must match exactly; the client reports the mismatch
	}

	frags := make(map[uint64]*engine.Fragment)
	fragErrs := make(map[uint64]error)
	parts := newPartStore(s.partLimit)
	var tasks sync.WaitGroup
	defer tasks.Wait()
	for {
		id, typ, payload, err := readFrame(conn, nil)
		if err != nil {
			conn.Close() // unblock tasks parked writing before joining them
			return
		}
		switch typ {
		case frameSetup:
			frag, err := DecodeFragment(payload)
			if err == nil {
				frag.Mem = s.mem
				if frag.Kind == engine.FragScan {
					// The session's shipped partitions are the scan source;
					// a table never shipped (or poisoned by the part limit)
					// surfaces here as a Prepare error, failing the scan's
					// units as work errors.
					frag.Src = parts.source
				}
				err = frag.Prepare()
			}
			if err != nil {
				fragErrs[id] = err
				continue
			}
			frags[id] = frag
		case framePartTable:
			if err := parts.addManifest(id, payload); err != nil {
				conn.Close() // protocol corruption: drop the session
				return
			}
		case framePartData:
			if err := parts.addData(id, payload); err != nil {
				conn.Close()
				return
			}
		case framePing:
			wmu.Lock()
			writeFrame(conn, nil, id, framePong, frameBuf())
			wmu.Unlock()
		case frameUnit:
			if len(payload) < 8 {
				conn.Close() // protocol corruption: drop the session
				return
			}
			fid := binary.LittleEndian.Uint64(payload)
			frag := frags[fid]
			if frag == nil {
				err := fragErrs[fid]
				if err == nil {
					err = fmt.Errorf("shard: unit references unknown fragment %d", fid)
				}
				s.finishUnit(conn, &wmu, id, nil, err)
				continue
			}
			body := payload[8:]
			tasks.Add(1)
			s.sched.Submit(-1, func(int) {
				defer tasks.Done()
				if s.OnUnitStart != nil {
					s.OnUnitStart()
				}
				u, err := DecodeUnit(body)
				var stats *scanStats
				if err == nil && frag.Kind == engine.FragScan {
					// The unit's modeled local read cost rides its done
					// frame; computing it before the scan keeps a mapping
					// error a clean unit failure.
					var st scanStats
					if st.runs, st.pages, st.bytes, err = frag.ScanStats(u); err == nil {
						stats = &st
					}
				}
				var oversized error
				if err == nil {
					err = frag.Run(u, func(b *vector.Batch) {
						if oversized != nil {
							return // unit already failed; drop the rest
						}
						pl := b.Encode(frameBuf())
						// Mirror the client's send-side cap: shipping an
						// over-cap result would make the client drop the
						// session and failover cascade the same group —
						// deterministically oversized — through every
						// backend. Failing just this unit keeps it a work
						// error.
						if len(pl)-frameHeader > maxFramePayload {
							if oversized == nil {
								oversized = fmt.Errorf("shard: group %d result batch encodes to %d bytes, over the %d frame cap",
									u.GID, len(pl)-frameHeader, maxFramePayload)
							}
							return
						}
						// A send failure here means the client is gone; the
						// done frame below fails the same way and the read
						// loop tears the session down.
						wmu.Lock()
						writeFrame(conn, nil, id, frameBatch, pl)
						wmu.Unlock()
					})
					if err == nil {
						err = oversized
					}
				}
				s.finishUnit(conn, &wmu, id, stats, err)
			})
		default:
			conn.Close()
			return
		}
	}
}

// scanStats is one scan unit's modeled local read cost, reported to the
// client in the unit's done frame.
type scanStats struct {
	runs, pages, bytes int64
}

// finishUnit reports a unit's completion (err == nil) or its work error.
// The done payload is a status byte — 0 success, 1 failure — followed on
// failure by the error text and on a scan unit's success by the 24-byte
// read stats. The counter (and hook) advance before the done frame ships,
// so a client that observed a completion always finds it counted.
func (s *Server) finishUnit(conn net.Conn, wmu *sync.Mutex, id uint64, stats *scanStats, err error) {
	n := s.unitsDone.Add(1)
	if s.OnUnitDone != nil {
		s.OnUnitDone(n)
	}
	msg := frameBuf()
	switch {
	case err != nil:
		msg = append(msg, 1)
		msg = append(msg, err.Error()...)
	case stats != nil:
		msg = append(msg, 0)
		msg = binary.LittleEndian.AppendUint64(msg, uint64(stats.runs))
		msg = binary.LittleEndian.AppendUint64(msg, uint64(stats.pages))
		msg = binary.LittleEndian.AppendUint64(msg, uint64(stats.bytes))
	default:
		msg = append(msg, 0)
	}
	wmu.Lock()
	writeFrame(conn, nil, id, frameDone, msg)
	wmu.Unlock()
}

// Close shuts the worker down: listeners stop accepting, every session's
// connection is closed (failing the clients' pending units with
// ErrBackendDown, which is what lets a query fail over to surviving
// workers), in-flight unit tasks and session goroutines are joined, and
// the scheduler is released — a closed server leaves no goroutines behind.
func (s *Server) Close() error {
	_, err := s.shutdown(0)
	return err
}

// CloseWithin is Close with a bounded drain: sessions that have not ended
// within d are abandoned rather than waited for, and their count is
// returned. A wedged session — a unit task parked on a blocked write or a
// stuck hook — can otherwise hang Close forever; the bdccworker daemon
// bounds its SIGTERM drain with this and exits, letting the OS reap the
// wedged work. The scheduler is only released on a clean drain (abandoned
// tasks may still be running on it); an abandoning caller is expected to
// exit the process.
func (s *Server) CloseWithin(d time.Duration) (abandoned int, err error) {
	return s.shutdown(d)
}

// shutdown is the shared teardown: d <= 0 waits for the drain forever.
func (s *Server) shutdown(d time.Duration) (int, error) {
	s.mu.Lock()
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if d > 0 {
		drained := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(drained)
		}()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			if n > 0 {
				return n, nil
			}
			<-drained // the last session ended between the timeout and the count
		}
	} else {
		s.wg.Wait()
	}
	s.release.Do(s.sched.Release)
	return 0, nil
}
