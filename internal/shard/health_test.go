package shard

import (
	"errors"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/vector"
)

// TestProbeBackoffBoundedAndJittered checks the prober's wait schedule:
// every draw for attempt n lands in [d/2, d] with d = min(Max, Base·2ⁿ),
// the cap holds at absurd attempt counts (no overflow past the shift
// width), and repeated draws at one attempt differ (the jitter that keeps
// many queries' probers from re-dialing a restarted worker in lockstep).
func TestProbeBackoffBoundedAndJittered(t *testing.T) {
	cfg := ProbeConfig{Base: 100 * time.Millisecond, Max: 5 * time.Second}.withDefaults()
	rng := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 16; attempt++ {
		d := cfg.Max
		if e := cfg.Base * (1 << uint(attempt)); e < d {
			d = e
		}
		for k := 0; k < 32; k++ {
			if got := cfg.backoff(attempt, rng); got < d/2 || got > d {
				t.Fatalf("attempt %d draw %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
	for _, attempt := range []int{40, 63, 1 << 20} {
		if got := cfg.backoff(attempt, rng); got < cfg.Max/2 || got > cfg.Max {
			t.Fatalf("attempt %d draw %v escaped the cap window [%v, %v]", attempt, got, cfg.Max/2, cfg.Max)
		}
	}
	seen := map[time.Duration]bool{}
	for k := 0; k < 64; k++ {
		seen[cfg.backoff(6, rng)] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 draws at one attempt were all identical — no jitter")
	}
}

// TestPingPong checks the liveness round-trip on a live session, and that a
// ping against a dead worker fails with the reroute marker (promptly on a
// broken transport, at the timeout on a silent one).
func TestPingPong(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, addr := startWorker(t, 1)
	b, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := b.(*client)
	for i := 0; i < 3; i++ {
		if err := cl.Ping(2 * time.Second); err != nil {
			t.Fatalf("ping %d over a live session: %v", i, err)
		}
	}
	srv.Close()
	if err := cl.Ping(200 * time.Millisecond); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("ping over a dead session returned %v, want ErrBackendDown", err)
	}
	cl.Close()
	waitGoroutines(t, base)
}

// TestProberStopsOnClose checks context cancellation through the reconnect
// loop: a prober parked on an hour-long backoff (or mid-dial) returns
// promptly when the set closes, instead of sleeping the window out.
func TestProberStopsOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	set, err := DialSetConfig([]string{dead}, PaperNet(), SetConfig{
		Probe: ProbeConfig{Base: time.Hour, Max: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := set.Health(); h[0].State != "probing" {
		t.Fatalf("dead slot state %q, want probing", h[0].State)
	}
	start := time.Now()
	for _, b := range set.Backends() {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("closing the set waited %v on a prober mid-backoff, want immediate cancellation", d)
	}
	waitGoroutines(t, base)
}

// TestReadmissionAfterRestart is the recovery round-trip at the shard
// level: kill a worker (units fail over and the slot goes down/probing),
// restart a fresh worker on the same address, and assert the prober
// re-admits it — fragments re-shipped, epoch advanced so the exclusion
// chain resets — and that it serves units again.
func TestReadmissionAfterRestart(t *testing.T) {
	base := runtime.NumGoroutine()
	srv1, addr1 := startWorker(t, 1)
	srv2, addr2 := startWorker(t, 1)
	set, err := DialSetConfig([]string{addr1, addr2}, PaperNet(), SetConfig{
		Probe: ProbeConfig{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	frag := testFragment(t)
	probe, build := testStreams(1, 2)
	unit := func() *engine.GroupUnit {
		return &engine.GroupUnit{GID: 0,
			Probe: []*vector.Batch{probe.batches[0], probe.batches[1]},
			Build: []*vector.Batch{build.batches[0]},
		}
	}
	run := func(pref int) error {
		done := make(chan error, 1)
		set.Backends()[pref].RunGroup(unit(), frag, func(*vector.Batch) {}, func(err error) { done <- err })
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("unit never completed")
			return nil
		}
	}
	// Seed the session's fragment registry, then kill worker 2: the next
	// unit preferring it fails over to worker 1 and marks the slot down.
	if err := run(0); err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	if err := run(1); err != nil {
		t.Fatalf("unit after the kill failed instead of failing over: %v", err)
	}
	// Restart a fresh worker on the same address (the old port may linger
	// briefly) and wait for the prober to re-admit it.
	var srv3 *Server
	for deadline := time.Now().Add(5 * time.Second); ; {
		l, err := net.Listen("tcp", addr2)
		if err == nil {
			srv3 = NewServer(1)
			go srv3.Serve(l)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr2, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer srv3.Close()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if set.Health()[1].Readmits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted worker never re-admitted: %+v", set.Health()[1])
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := run(1); err != nil {
		t.Fatalf("unit on the re-admitted worker: %v", err)
	}
	h := set.Health()[1]
	if h.State != "up" || h.Readmits < 1 || h.ReadmitUnits < 1 {
		t.Fatalf("re-admitted slot health %+v, want up with a readmit-served unit", h)
	}
	if srv3.UnitsDone() < 1 {
		t.Fatalf("restarted worker served %d units, want at least the re-admitted one", srv3.UnitsDone())
	}
	for _, b := range set.Backends() {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()
	srv3.Close()
	waitGoroutines(t, base)
}

// TestCloseWithinAbandonsWedgedSession checks the bounded drain: a session
// wedged in a unit task (here, a blocking OnUnitStart hook) is abandoned —
// counted, not waited for — while the client observes the teardown as a
// backend failure; once the wedge releases, a second close drains cleanly.
func TestCloseWithinAbandonsWedgedSession(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := NewServer(1)
	started := make(chan struct{})
	release := make(chan struct{})
	srv.OnUnitStart = func() {
		close(started)
		<-release
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	b, err := Dial(l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	frag := testFragment(t)
	probe, _ := testStreams(1, 2)
	done := make(chan error, 1)
	b.RunGroup(&engine.GroupUnit{GID: 0, Probe: []*vector.Batch{probe.batches[0]}},
		frag, func(*vector.Batch) {}, func(err error) { done <- err })
	<-started
	abandoned, err := srv.CloseWithin(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if abandoned != 1 {
		t.Fatalf("drain abandoned %d sessions, want the 1 wedged one", abandoned)
	}
	if err := <-done; !errors.Is(err, ErrBackendDown) {
		t.Fatalf("wedged unit completed with %v, want ErrBackendDown", err)
	}
	close(release)
	if _, err := srv.CloseWithin(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	b.Close()
	waitGoroutines(t, base)
}
