package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// groupStream is a test operator producing a synthetic grouped stream:
// group-pure batches with non-decreasing group identifiers, the shape
// grouped scans emit. Batches are reused across Next calls (like real
// producers), so consumers must clone.
type groupStream struct {
	schema  expr.Schema
	batches []*vector.Batch
	pos     int
	out     *vector.Batch
}

func (g *groupStream) Schema() expr.Schema { return g.schema }
func (g *groupStream) Open(*engine.Context) error {
	g.pos = 0
	g.out = vector.NewBatch(g.schema.Kinds())
	return nil
}
func (g *groupStream) Close() error { return nil }
func (g *groupStream) Next() (*vector.Batch, error) {
	if g.pos >= len(g.batches) {
		return nil, nil
	}
	b := g.batches[g.pos]
	g.pos++
	g.out.Reset()
	g.out.AppendBatch(b)
	g.out.GroupID = b.GroupID
	g.out.Grouped = true
	return g.out, nil
}

// testStreams builds an aligned probe/build stream pair over `groups`
// groups: the build side has one batch per group keyed so equal keys imply
// equal groups, the probe side references build keys with skew and spans
// several batches per group.
func testStreams(groups, probePerGroup int) (probe, build *groupStream) {
	rng := rand.New(rand.NewSource(7))
	ps := expr.Schema{
		{Name: "lkey", Kind: vector.Int64},
		{Name: "lid", Kind: vector.Int64},
		{Name: "ltag", Kind: vector.String},
	}
	bs := expr.Schema{
		{Name: "rkey", Kind: vector.Int64},
		{Name: "rpay", Kind: vector.Float64},
	}
	probe = &groupStream{schema: ps}
	build = &groupStream{schema: bs}
	id := int64(0)
	for g := 0; g < groups; g++ {
		// Build: a few keys per group (key*groups+g keeps keys group-pure).
		bb := vector.NewBatch(bs.Kinds())
		bb.GroupID = uint64(g)
		bb.Grouped = true
		for k := 0; k < 8; k++ {
			bb.Cols[0].AppendInt64(int64(k*groups + g))
			bb.Cols[1].AppendFloat64(float64(k) + float64(g)*0.5)
		}
		if g%5 != 4 { // every fifth group has no build rows
			build.batches = append(build.batches, bb)
		}
		for b := 0; b < 2; b++ {
			pb := vector.NewBatch(ps.Kinds())
			pb.GroupID = uint64(g)
			pb.Grouped = true
			for i := 0; i < probePerGroup/2; i++ {
				k := rng.Int63n(10) // keys 8..9 miss the build side
				pb.Cols[0].AppendInt64(k*int64(groups) + int64(g))
				pb.Cols[1].AppendInt64(id)
				pb.Cols[2].AppendString(fmt.Sprintf("p%d", id%13))
				id++
			}
			probe.batches = append(probe.batches, pb)
		}
	}
	return probe, build
}

func sandwich(ctx *engine.Context, bks []engine.Backend, route func(uint64, int64) int) *engine.SandwichHashJoin {
	probe, build := testStreams(32, 400)
	return &engine.SandwichHashJoin{
		Left: probe, Right: build,
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
		Type:     engine.InnerJoin,
		Sched:    ctx.Scheduler(),
		Backends: bks,
		Route:    route,
	}
}

// testFragment returns a prepared fragment matching testStreams' schemas,
// for driving backends directly.
func testFragment(t *testing.T) *engine.Fragment {
	t.Helper()
	probe, build := testStreams(1, 2)
	f := &engine.Fragment{
		Probe: probe.schema, Build: build.schema,
		ProbeKeys: []string{"lkey"}, BuildKeys: []string{"rkey"},
		Type: engine.InnerJoin,
	}
	if err := f.Prepare(); err != nil {
		t.Fatal(err)
	}
	return f
}

func renderRows(r *engine.Result) []string {
	out := make([]string, r.Rows())
	for i := range out {
		out[i] = fmt.Sprint(r.Row(i))
	}
	return out
}

// waitGoroutines polls until the process goroutine count drops to at most
// want (pool workers and transport loops exit asynchronously).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines still alive, want ≤ %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUnitCodecRoundTrip checks the group-unit wire form reproduces probe
// and build batch sets exactly, including empty build sides.
func TestUnitCodecRoundTrip(t *testing.T) {
	probe, build := testStreams(4, 40)
	u := &engine.GroupUnit{GID: 3}
	for _, b := range probe.batches[:2] {
		u.Probe = append(u.Probe, b)
	}
	u.Build = append(u.Build, build.batches[0])
	got, err := DecodeUnit(EncodeUnit(u, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.GID != u.GID || len(got.Probe) != len(u.Probe) || len(got.Build) != len(u.Build) {
		t.Fatalf("shape: got gid=%d p=%d b=%d", got.GID, len(got.Probe), len(got.Build))
	}
	for i := range u.Probe {
		if fmt.Sprint(got.Probe[i].Cols) == "" || got.Probe[i].Len() != u.Probe[i].Len() ||
			got.Probe[i].GroupID != u.Probe[i].GroupID || !got.Probe[i].Grouped {
			t.Fatalf("probe batch %d mismatch", i)
		}
	}
	if got.Bytes() != u.Bytes() {
		t.Fatalf("footprint changed across the wire: %d != %d", got.Bytes(), u.Bytes())
	}
	empty := &engine.GroupUnit{GID: 9, Probe: u.Probe[:1]}
	got2, err := DecodeUnit(EncodeUnit(empty, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Build) != 0 || len(got2.Probe) != 1 {
		t.Fatalf("empty build side not preserved: p=%d b=%d", len(got2.Probe), len(got2.Build))
	}
	if _, err := DecodeUnit(EncodeUnit(u, nil)[:20]); err == nil {
		t.Fatal("truncated unit decoded without error")
	}
}

// TestRouter checks determinism, range, and that groups actually spread
// across backends.
func TestRouter(t *testing.T) {
	r := NewRouter(4)
	seen := make(map[int]int)
	for gid := uint64(0); gid < 256; gid++ {
		k := r.Route(gid)
		if k < 0 || k >= 4 {
			t.Fatalf("route(%d) = %d out of range", gid, k)
		}
		if k != r.Route(gid) {
			t.Fatalf("route(%d) not deterministic", gid)
		}
		seen[k]++
	}
	for k := 0; k < 4; k++ {
		if seen[k] == 0 {
			t.Fatalf("backend %d received no groups: %v", k, seen)
		}
	}
}

// TestShardedSandwichMatchesSerial is the package's equivalence oracle: the
// sandwich join over Local and Sim backend sets — across shard counts and
// local worker counts, including the serial-local shards>1 shape — must
// reproduce the serial join byte-identically, with a balanced memory
// tracker and no leaked goroutines.
func TestShardedSandwichMatchesSerial(t *testing.T) {
	base := runtime.NumGoroutine()
	serialCtx := &engine.Context{Mem: &engine.MemTracker{}}
	serial, err := engine.Run(serialCtx, sandwich(serialCtx, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Rows() == 0 {
		t.Fatal("serial join returned no rows — vacuous test")
	}
	want := renderRows(serial)

	check := func(t *testing.T, ctx *engine.Context, bks []engine.Backend, route func(uint64, int64) int) {
		t.Helper()
		res, err := engine.Run(ctx, sandwich(ctx, bks, route))
		if err != nil {
			t.Fatal(err)
		}
		got := renderRows(res)
		if len(got) != len(want) {
			t.Fatalf("%d rows, serial has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d = %s, serial has %s", i, got[i], want[i])
			}
		}
		if cur := ctx.Mem.Current(); cur != 0 {
			t.Fatalf("%d bytes still accounted after Close", cur)
		}
	}

	t.Run("local-backend", func(t *testing.T) {
		ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: 4}
		l := NewLocal(ctx.Scheduler())
		check(t, ctx, []engine.Backend{l}, func(uint64, int64) int { return 0 })
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
	for _, tc := range []struct {
		workers, shards int
		bySize          bool
	}{
		{1, 2, false}, {1, 4, false}, {4, 2, false}, {4, 4, false},
		{1, 2, true}, {4, 4, true},
	} {
		tc := tc
		t.Run(fmt.Sprintf("sim/workers=%d/shards=%d/bySize=%v", tc.workers, tc.shards, tc.bySize), func(t *testing.T) {
			ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: tc.workers}
			set := NewSet(tc.shards, tc.workers, PaperNet())
			if tc.bySize {
				set.BalanceBySize()
			}
			ctx.Backends = set.Backends()
			ctx.Net = set.Net()
			check(t, ctx, set.Backends(), set.Route)
			if err := ctx.CloseBackends(); err != nil {
				t.Fatal(err)
			}
			st := set.Net().Stats()
			if st.Runs == 0 || st.Bytes == 0 || st.Time <= 0 {
				t.Fatalf("no network activity recorded for a sharded run: %+v", st)
			}
			loads := set.Loads()
			var units, bytes int64
			for _, l := range loads {
				units += l.Units
				bytes += l.Bytes
			}
			if units != 32 {
				t.Fatalf("router recorded %d routed units for 32 groups: %+v", units, loads)
			}
			if bytes <= 0 {
				t.Fatalf("router recorded no routed bytes: %+v", loads)
			}
			if tc.bySize {
				// Least-loaded placement cannot leave a backend empty while
				// another holds more than one unit's worth of slack.
				for i, l := range loads {
					if l.Units == 0 {
						t.Fatalf("balance-by-size left backend %d empty: %+v", i, loads)
					}
				}
			}
		})
	}
	waitGoroutines(t, base+2)
}

// TestShardedSandwichEarlyClose checks an abandoned consumer (early Limit)
// over a sharded group pipeline: close must join every in-flight unit's
// done callback across the transport, leaving a balanced tracker and no
// goroutines on either side.
func TestShardedSandwichEarlyClose(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: workers}
			set := NewSet(3, workers, PaperNet())
			ctx.Backends = set.Backends()
			ctx.Net = set.Net()
			lim := &engine.Limit{Child: sandwich(ctx, set.Backends(), set.Route), N: 7}
			res, err := engine.Run(ctx, lim)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows() != 7 {
				t.Fatalf("limit returned %d rows, want 7", res.Rows())
			}
			if cur := ctx.Mem.Current(); cur != 0 {
				t.Fatalf("%d bytes still accounted after early close", cur)
			}
			if err := ctx.CloseBackends(); err != nil {
				t.Fatal(err)
			}
		})
	}
	waitGoroutines(t, base+2)
}

// errBackend fails every unit after `ok` successes — transport failure
// injection at the Backend seam.
type errBackend struct {
	inner engine.Backend
	ok    int
	err   error
}

func (e *errBackend) Workers() int { return e.inner.Workers() }
func (e *errBackend) Close() error { return e.inner.Close() }
func (e *errBackend) RunGroup(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error)) {
	if e.ok <= 0 {
		// Emit a partial result first: the error arrives mid-group.
		if len(u.Probe) > 0 {
			emit(u.Probe[0].Clone())
		}
		done(e.err)
		return
	}
	e.ok--
	e.inner.RunGroup(u, frag, emit, done)
}

// TestBackendErrorMidGroupPropagates mirrors TestErrorMidStreamJoinsProducers
// at the backend seam: a backend failing mid-group must surface its error to
// the consumer, and Close must join every shard feeder and transport
// goroutine without leaks and with a balanced tracker.
func TestBackendErrorMidGroupPropagates(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom: shard 1 fell over")
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: workers}
			set := NewSet(2, workers, PaperNet())
			bks := []engine.Backend{
				set.Backends()[0],
				&errBackend{inner: set.Backends()[1], ok: 1, err: boom},
			}
			ctx.Backends = bks
			_, err := engine.Run(ctx, sandwich(ctx, bks, set.Route))
			if err == nil || !errors.Is(err, boom) {
				t.Fatalf("Run returned %v, want the injected backend error", err)
			}
			if cur := ctx.Mem.Current(); cur != 0 {
				t.Fatalf("%d bytes still accounted after backend error", cur)
			}
			if err := ctx.CloseBackends(); err != nil {
				t.Fatal(err)
			}
		})
	}
	waitGoroutines(t, base+2)
}

// TestSimWorkErrorCrossesTransport checks a work error raised on the remote
// side travels back over the byte stream (as text — error identity does not
// survive the wire) and fails only that fragment's units, as a plain,
// non-reroutable error. The error is provoked the way a real worker would
// hit it: a fragment that fails Prepare on arrival.
func TestSimWorkErrorCrossesTransport(t *testing.T) {
	base := runtime.NumGoroutine()
	s := NewSim(2, nil)
	probe, build := testStreams(1, 2)
	bad := &engine.Fragment{
		Probe: probe.schema, Build: build.schema,
		ProbeKeys: []string{"no_such_column"}, BuildKeys: []string{"rkey"},
		Type: engine.InnerJoin,
	}
	u := &engine.GroupUnit{GID: 1, Probe: []*vector.Batch{probe.batches[0]}}
	errCh := make(chan error, 1)
	s.RunGroup(u, bad,
		func(*vector.Batch) { t.Error("emit called for a failed unit") },
		func(err error) { errCh <- err },
	)
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "no_such_column") {
			t.Fatalf("done received %v, want the remote preparation error", err)
		}
		if errors.Is(err, ErrBackendDown) {
			t.Fatalf("work error %v is marked as a backend failure — failover would retry it", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("done callback never fired")
	}
	// The session survives the poisoned fragment: a healthy fragment still
	// executes on the same backend.
	good := testFragment(t)
	okCh := make(chan error, 1)
	var rows int
	s.RunGroup(u, good,
		func(b *vector.Batch) { rows += b.Len() },
		func(err error) { okCh <- err },
	)
	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("healthy fragment after a poisoned one failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy unit never completed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base+2)
}

// TestSimTransportCorruptionFailsFast locks in the fail-path teardown: a
// corrupt frame on the stream must break the transport, fail in-flight and
// later units promptly with an ErrBackendDown-wrapped error (done still
// fires exactly once each), and unblock any writer parked on the
// synchronous pipe so Close returns instead of hanging.
func TestSimTransportCorruptionFailsFast(t *testing.T) {
	base := runtime.NumGoroutine()
	s := NewSim(2, nil)
	// Inject garbage where the worker expects a setup or unit frame: an
	// unknown frame type makes the worker drop the session.
	s.client.wmu.Lock()
	err := writeFrame(s.client.conn, nil, 99, 42, frameBuf())
	s.client.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	s.RunGroup(&engine.GroupUnit{GID: 1}, testFragment(t),
		func(*vector.Batch) {},
		func(err error) { done <- err },
	)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unit on a corrupted transport completed without error")
		}
		if !errors.Is(err, ErrBackendDown) {
			t.Fatalf("transport failure %v does not wrap ErrBackendDown — failover would not reroute", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unit on a corrupted transport never completed — fail did not unblock the pipe")
	}
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a corrupted transport")
	}
	waitGoroutines(t, base+2)
}

// TestSimClosedBackendFailsUnits checks the defensive path: units handed to
// a closed backend complete with an error instead of hanging.
func TestSimClosedBackendFailsUnits(t *testing.T) {
	s := NewSim(1, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	s.RunGroup(&engine.GroupUnit{}, nil, nil, func(err error) { done <- err })
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unit on a closed backend completed without error")
		}
	case <-time.After(time.Second):
		t.Fatal("unit on a closed backend never completed")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestSimNetAccounting checks every unit pays for its request and response
// messages: runs and bytes grow with traffic and the modeled time follows
// the device model.
func TestSimNetAccounting(t *testing.T) {
	set := NewSet(2, 2, PaperNet())
	ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: 1}
	ctx.Backends = set.Backends()
	ctx.Net = set.Net()
	if _, err := engine.Run(ctx, sandwich(ctx, set.Backends(), set.Route)); err != nil {
		t.Fatal(err)
	}
	st := set.Net().Stats()
	// 32 groups: one request frame each plus at least one response frame.
	if st.Runs < 64 {
		t.Fatalf("only %d messages recorded for 32 shipped groups", st.Runs)
	}
	if want := PaperNet().ReadTime(st.Runs, st.Bytes); st.Time != want {
		t.Fatalf("modeled net time %v, device model says %v", st.Time, want)
	}
	if ctx.NetStats().Runs != st.Runs {
		t.Fatalf("context net stats disagree with the set's accountant")
	}
	if err := ctx.CloseBackends(); err != nil {
		t.Fatal(err)
	}
}
