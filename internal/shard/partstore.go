package shard

import (
	"encoding/binary"
	"fmt"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Partition shipping: the wire form and both ends of the base-table
// partition transfer that makes workers shared-nothing (protocol v5, frames
// framePartTable and framePartData; see docs/WIRE.md and
// docs/PARTITIONING.md).
//
// Manifest payload layout (little endian):
//
//	table name        (u32 length + bytes)
//	u8  compressed    (1 = the worker compresses its rebuilt copy)
//	u64 page size
//	u64 total rows
//	u16 column count, then per column: name (u32 length + bytes), u8 kind
//	u32 segment count, then per segment: u64 start + u64 end
//	    (coordinator row space, in ship order — the order the data frames'
//	    rows concatenate in, and the order RangeMap assumes)
//
// Each data frame carries one vector.Batch in its standard wire form. The
// transfer has no explicit end: the worker finalizes the partition the
// moment the accumulated row count reaches the manifest's total, and a scan
// fragment referencing a table still short of its total fails Prepare —
// which cannot happen on a correct client, since ShipPartition writes every
// frame before any unit ships.

// partManifest is the decoded manifest of one shipped partition.
type partManifest struct {
	Table      string
	Compressed bool
	PageSize   int64
	Rows       int64
	Cols       expr.Schema
	Segs       storage.RowRanges
}

// encodePartManifest appends the manifest payload describing shipping the
// given segments of tab to buf and returns the extended slice.
func encodePartManifest(tab *storage.Table, segs storage.RowRanges, buf []byte) []byte {
	buf = expr.AppendString(buf, tab.Name)
	if tab.Compressed() {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tab.PageSize))
	var rows int64
	for _, s := range segs {
		rows += int64(s.Len())
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rows))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tab.Cols)))
	for _, c := range tab.Cols {
		buf = expr.AppendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(segs)))
	for _, s := range segs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.End))
	}
	return buf
}

// decodePartManifest decodes one manifest payload occupying all of data.
func decodePartManifest(data []byte) (*partManifest, error) {
	m := &partManifest{}
	name, n, err := expr.DecodeString(data)
	if err != nil {
		return nil, fmt.Errorf("shard: partition manifest table: %w", err)
	}
	m.Table = name
	data = data[n:]
	if len(data) < 1+8+8+2 {
		return nil, fmt.Errorf("shard: truncated partition manifest")
	}
	m.Compressed = data[0] != 0
	m.PageSize = int64(binary.LittleEndian.Uint64(data[1:]))
	m.Rows = int64(binary.LittleEndian.Uint64(data[9:]))
	nc := int(binary.LittleEndian.Uint16(data[17:]))
	data = data[19:]
	m.Cols = make(expr.Schema, 0, nc)
	for i := 0; i < nc; i++ {
		cname, w, err := expr.DecodeString(data)
		if err != nil {
			return nil, fmt.Errorf("shard: partition manifest column: %w", err)
		}
		data = data[w:]
		if len(data) < 1 {
			return nil, fmt.Errorf("shard: truncated partition manifest column kind")
		}
		m.Cols = append(m.Cols, expr.ColMeta{Name: cname, Kind: vector.Kind(data[0])})
		data = data[1:]
	}
	if m.PageSize <= 0 || m.Rows < 0 || len(m.Cols) == 0 {
		return nil, fmt.Errorf("shard: malformed partition manifest for %q", m.Table)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("shard: truncated partition manifest segments")
	}
	ns := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != 16*ns {
		return nil, fmt.Errorf("shard: partition manifest segment section is %d bytes, want %d", len(data), 16*ns)
	}
	m.Segs = make(storage.RowRanges, ns)
	var segRows int64
	for i := 0; i < ns; i++ {
		m.Segs[i] = storage.RowRange{
			Start: int(binary.LittleEndian.Uint64(data)),
			End:   int(binary.LittleEndian.Uint64(data[8:])),
		}
		if m.Segs[i].Start < 0 || m.Segs[i].End < m.Segs[i].Start {
			return nil, fmt.Errorf("shard: partition manifest segment [%d,%d) malformed", m.Segs[i].Start, m.Segs[i].End)
		}
		segRows += int64(m.Segs[i].Len())
		data = data[16:]
	}
	if segRows != m.Rows {
		return nil, fmt.Errorf("shard: partition manifest for %q declares %d rows but segments cover %d", m.Table, m.Rows, segRows)
	}
	return m, nil
}

// partRecv is one in-flight partition transfer on a worker session.
type partRecv struct {
	m     *partManifest
	rows  int64
	bytes int64
	cols  []partCol
	skip  bool // duplicate or poisoned: drain remaining data frames silently
}

// partCol accumulates one column's values across the transfer's batches.
type partCol struct {
	i64 []int64
	f64 []float64
	str []string
}

// partStore is a worker session's registry of shipped table partitions: the
// scan source the session installs on every scan fragment it Prepares. All
// methods run on the session's frame-loop goroutine (frames arrive in
// order, and frameSetup — the only reader, via source — is a frame too), so
// the store needs no locking; the resolved engine.ScanTable a fragment
// captures at Prepare is immutable afterwards and safe on scheduler
// goroutines.
type partStore struct {
	limit int64 // decoded-byte cap across the session's partitions; 0 = none
	used  int64
	byID  map[uint64]*partRecv
	tabs  map[string]engine.ScanTable
	errs  map[string]error
}

func newPartStore(limit int64) *partStore {
	return &partStore{
		limit: limit,
		byID:  make(map[uint64]*partRecv),
		tabs:  make(map[string]engine.ScanTable),
		errs:  make(map[string]error),
	}
}

// addManifest registers one partition transfer. Duplicates (a table already
// finalized, typically a plan-time ship racing a re-admission re-ship the
// client-side dedup didn't see) keep the first copy and drain the new
// transfer. The returned error means protocol corruption — the session
// drops.
func (p *partStore) addManifest(id uint64, payload []byte) error {
	m, err := decodePartManifest(payload)
	if err != nil {
		return err
	}
	if _, dup := p.byID[id]; dup {
		return fmt.Errorf("shard: partition id %d reused", id)
	}
	r := &partRecv{m: m}
	if _, have := p.tabs[m.Table]; have {
		r.skip = true
	} else if _, poisoned := p.errs[m.Table]; poisoned {
		r.skip = true
	} else {
		r.cols = make([]partCol, len(m.Cols))
		if m.Rows == 0 {
			p.byID[id] = r
			return p.finalize(r)
		}
	}
	p.byID[id] = r
	return nil
}

// addData appends one data frame's batch to its transfer, finalizing the
// partition when the manifest's row total is reached. The returned error
// means protocol corruption; resource-limit and schema problems instead
// poison the table, failing its scans as work errors without dropping the
// session.
func (p *partStore) addData(id uint64, payload []byte) error {
	r := p.byID[id]
	if r == nil {
		return fmt.Errorf("shard: partition data for unknown id %d", id)
	}
	if r.skip {
		return nil
	}
	b, n, err := vector.DecodeBatch(payload)
	if err != nil {
		return fmt.Errorf("shard: partition batch: %w", err)
	}
	if n != len(payload) {
		return fmt.Errorf("shard: %d trailing bytes after partition batch", len(payload)-n)
	}
	if len(b.Cols) != len(r.m.Cols) {
		return fmt.Errorf("shard: partition batch for %q has %d columns, manifest %d", r.m.Table, len(b.Cols), len(r.m.Cols))
	}
	if p.limit > 0 && p.used+b.Bytes() > p.limit {
		p.poison(r, fmt.Errorf("shard: partition for %q exceeds the worker's %d-byte partition limit", r.m.Table, p.limit))
		return nil
	}
	for i, v := range b.Cols {
		if v.Kind != r.m.Cols[i].Kind {
			return fmt.Errorf("shard: partition batch column %d of %q is kind %d, manifest says %d", i, r.m.Table, v.Kind, r.m.Cols[i].Kind)
		}
		switch v.Kind {
		case vector.Int64:
			r.cols[i].i64 = append(r.cols[i].i64, v.I64...)
		case vector.Float64:
			r.cols[i].f64 = append(r.cols[i].f64, v.F64...)
		case vector.String:
			r.cols[i].str = append(r.cols[i].str, v.Str...)
		}
	}
	p.used += b.Bytes()
	r.bytes += b.Bytes()
	r.rows += int64(b.Len())
	if r.rows > r.m.Rows {
		return fmt.Errorf("shard: partition for %q received %d rows, manifest declares %d", r.m.Table, r.rows, r.m.Rows)
	}
	if r.rows == r.m.Rows {
		return p.finalize(r)
	}
	return nil
}

// finalize rebuilds the partition as a local table — compressed when the
// coordinator's original was — and publishes it with its coordinator→local
// range mapping.
func (p *partStore) finalize(r *partRecv) error {
	cols := make([]*storage.Column, len(r.m.Cols))
	for i, c := range r.m.Cols {
		switch c.Kind {
		case vector.Int64:
			if r.cols[i].i64 == nil {
				r.cols[i].i64 = []int64{}
			}
			cols[i] = storage.NewInt64Column(c.Name, r.cols[i].i64)
		case vector.Float64:
			if r.cols[i].f64 == nil {
				r.cols[i].f64 = []float64{}
			}
			cols[i] = storage.NewFloat64Column(c.Name, r.cols[i].f64)
		case vector.String:
			if r.cols[i].str == nil {
				r.cols[i].str = []string{}
			}
			cols[i] = storage.NewStringColumn(c.Name, r.cols[i].str)
		default:
			return fmt.Errorf("shard: partition column %q has unknown kind %d", c.Name, c.Kind)
		}
	}
	tab, err := storage.NewTable(r.m.Table, r.m.PageSize, cols...)
	if err != nil {
		p.poison(r, err)
		return nil
	}
	if r.m.Compressed {
		tab.Compress()
	}
	p.tabs[r.m.Table] = engine.ScanTable{Tab: tab, Map: NewRangeMap(r.m.Segs).Map}
	r.cols, r.skip = nil, true
	return nil
}

// poison records why the table's partition is unusable and frees the
// partial transfer; the table's scan fragments fail Prepare with the cause.
func (p *partStore) poison(r *partRecv, err error) {
	p.errs[r.m.Table] = err
	p.used -= r.bytes
	r.cols, r.skip = nil, true
}

// source is the engine.ScanSource a scan fragment resolves its table
// through at Prepare.
func (p *partStore) source(table string) (engine.ScanTable, error) {
	if st, ok := p.tabs[table]; ok {
		return st, nil
	}
	if err, ok := p.errs[table]; ok {
		return engine.ScanTable{}, err
	}
	return engine.ScanTable{}, fmt.Errorf("shard: no partition of %q shipped on this session", table)
}

// partShipment is the encoded, reusable form of one worker's partition of
// one table: the payload bytes ShipPartition frames per session. Payloads
// are shared read-only across sessions (each send copies behind a fresh
// frame header).
type partShipment struct {
	key      string
	manifest []byte
	data     [][]byte
	saved    []int64
}

// buildPartShipment extracts the given segments of tab (all columns, ship
// order) and encodes them as a shipment. The extraction reads through a
// plain reader with no accountant: shipping is network work, metered on the
// frames by the session's network accountant, not modeled device IO.
func buildPartShipment(key string, tab *storage.Table, segs storage.RowRanges) *partShipment {
	s := &partShipment{key: key, manifest: encodePartManifest(tab, segs, nil)}
	cols := make([]int, len(tab.Cols))
	kinds := make([]vector.Kind, len(tab.Cols))
	for i, c := range tab.Cols {
		cols[i] = i
		kinds[i] = c.Kind
	}
	r := storage.NewReader(tab, cols, segs, nil)
	b := vector.NewBatch(kinds)
	for r.Next(b) {
		pl := b.Encode(nil)
		s.data = append(s.data, pl)
		s.saved = append(s.saved, int64(b.RawWireSize()-len(pl)))
	}
	return s
}
