package shard

import (
	"bdcc/internal/engine"
	"bdcc/internal/vector"
)

// Local is the reference Backend: the existing local pool behind the
// backend seam. Group units run as tasks on the wrapped executor against
// the operator's own prepared fragment, with no serialization and no
// transport cost — a single-box shard. It exists so the Backend contract
// can be exercised (and mixed sets composed) against the executor every
// other implementation is measured by.
type Local struct {
	exec engine.Executor
}

// NewLocal returns a backend running units on exec. The backend holds an
// executor retain until Close.
func NewLocal(exec engine.Executor) *Local {
	exec.Retain()
	return &Local{exec: exec}
}

// Workers implements engine.Backend.
func (l *Local) Workers() int { return l.exec.Workers() }

// RunGroup implements engine.Backend: the unit body becomes one pool task
// running the fragment in place (the fragment is already prepared by the
// operator that owns it).
func (l *Local) RunGroup(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error)) {
	l.exec.Submit(-1, func(int) {
		done(frag.Run(u, emit))
	})
}

// Close implements engine.Backend, releasing the executor retain.
func (l *Local) Close() error {
	if l.exec != nil {
		l.exec.Release()
		l.exec = nil
	}
	return nil
}
