package shard

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"bdcc/internal/iosim"
)

// Health probing: the recovery half of failover. A backend that fails is
// marked down, and — when it has a dialable address — a prober goroutine
// drives it through the down → probing → up state machine: sleep a bounded,
// jittered exponential backoff, re-dial, handshake, and prove session
// liveness with a ping round-trip before handing the fresh connection back
// to the failover set for re-admission (failover.go). Every wait and every
// dial is bound to the set's context, so closing the set (or cancelling the
// query) stops a prober mid-backoff instead of sleeping the window out.

// ProbeConfig tunes the health prober of one backend set. The zero value
// selects the defaults below.
type ProbeConfig struct {
	// Base is the first reconnect backoff; attempt n waits a jittered
	// min(Max, Base·2ⁿ). Default 100ms.
	Base time.Duration
	// Max caps the backoff growth. Default 5s (and never below Base).
	Max time.Duration
	// DialTimeout bounds each reconnect dial plus hello exchange.
	// Default handshakeTimeout.
	DialTimeout time.Duration
	// PingTimeout bounds the liveness round-trip on a fresh connection.
	// Default 2s.
	PingTimeout time.Duration
}

func (p ProbeConfig) withDefaults() ProbeConfig {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = handshakeTimeout
	}
	if p.PingTimeout <= 0 {
		p.PingTimeout = 2 * time.Second
	}
	return p
}

// backoff returns the delay before reconnect attempt `attempt` (0-based):
// full jitter over [d/2, d] where d = min(Max, Base·2^attempt). The bound
// keeps a long outage from growing unbounded waits; the jitter keeps the
// probers of many queries (all watching the same restarted worker) from
// re-dialing it in one synchronized thundering herd.
func (p ProbeConfig) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.Max
	if attempt < 40 { // past 2^40 the shift alone exceeds any sane Max
		if e := p.Base << uint(attempt); e > 0 && e < d {
			d = e
		}
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// dialProbe is one reconnect attempt: dial, hello exchange, ping. The dial
// honours ctx (a cancelled query abandons the attempt immediately) and the
// handshake is aborted on cancellation by closing the connection under it.
func dialProbe(ctx context.Context, addr, token string, acct *iosim.Accountant, cfg ProbeConfig) (*client, error) {
	dctx, cancel := context.WithTimeout(ctx, cfg.DialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrBackendDown, addr, err)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	cl, err := newClient(conn, addr, token, acct)
	if err != nil {
		return nil, err
	}
	if err := cl.Ping(cfg.PingTimeout); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// probeLoop is the prober goroutine of one down slot: backoff, re-dial,
// re-admit, until it succeeds or the set closes. The failover set starts at
// most one per slot (slot.probing) and joins them all on Close.
func (f *failover) probeLoop(i int) {
	s := f.slots[i]
	for attempt := 0; ; attempt++ {
		f.mu.Lock()
		d := f.probe.backoff(attempt, f.rng) // rng is not goroutine-safe
		f.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-f.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		cl, err := dialProbe(f.ctx, s.addr, f.token, f.acct, f.probe)
		if err != nil {
			if f.ctx.Err() != nil {
				return
			}
			continue
		}
		res := f.readmit(i, cl)
		if res == readmitOK {
			return
		}
		cl.Close()
		if res == readmitClosed {
			return
		}
		// readmitRetry: the fresh connection died during fragment preload;
		// back off and probe again.
	}
}
