// Package shard scales the engine's BDCC group streams past one box. The
// paper's organization makes dimension groups the natural unit of
// distribution: a group's build and probe batches are self-contained (rows
// never match across groups, and a scatter group's row ranges never
// interleave with another group's), so group work units ship to other
// executors with no cross-shard coordination. Two unit shapes cross the
// seam: sandwich-join units carry a group's batches to whichever backend
// the router picks, and scan units carry only row ranges to the worker
// that owns the matching table partition — the shared-nothing path, where
// base-table data lives worker-local and only results come back. This
// package provides the pieces behind the engine's Backend seam:
//
//   - Router / Set.Route: group placement — deterministic group-hash by
//     default, least-loaded-by-bytes under the balance-by-size policy —
//     with per-backend routed loads recorded either way (placement stays in
//     the scheduler/backend layer, not in operators).
//   - Partitioning (partition.go): the deterministic assignment of a BDCC
//     table's z-order cells to workers, the coordinator→local range
//     mapping, and the group splitter — the partitioning layer specified
//     in docs/PARTITIONING.md. Set.PartitionTable builds it and ships each
//     worker its partition (partstore.go holds the wire form and both ends
//     of the transfer).
//   - the wire codecs (codec.go): plan fragments and group units cross a
//     transport as bytes, never as shared memory.
//   - the frame protocol (net.go): the client half (engine.Backend over one
//     framed byte stream) and the worker half (Server, the core of
//     cmd/bdccworker), specified in docs/WIRE.md.
//   - Local: the reference Backend over an engine.Executor — the local pool
//     behind the seam, no transport.
//   - Sim: the protocol client and worker server over an in-process
//     net.Pipe — the real wire protocol with only the network modeled.
//   - Dial / DialSet: the same client over real TCP connections to
//     bdccworker daemons (docs/OPERATIONS.md covers deployment).
//   - NewFailover (failover.go): unit-level retry across a set — failed
//     units reroute to surviving backends, excluding failed attempts; scan
//     units are placement-pinned and instead retry on a re-admitted home
//     worker or re-scan on the coordinator's full copy.
//   - the health prober (health.go): down backends with dialable addresses
//     are re-dialed under bounded jittered backoff, liveness-checked with a
//     ping/pong round-trip, and re-admitted to the routing set mid-query;
//     when every remote is down, units degrade to the coordinator's local
//     copy of the fragment instead of failing the query.
//
// # The Backend lifecycle contract
//
// A third-party backend implements engine.Backend against this contract;
// the transport backends of this package follow it over their framed
// streams (dial → partitions → setup → units → done/close):
//
//   - Connect/handshake: a session begins with the client's hello (magic +
//     protocol version) and the worker's hello reply (version + worker
//     parallelism). Versions must match exactly; Workers() reports the
//     replied parallelism so the engine can size its in-flight lookahead.
//   - Partitions: before any scan fragment references a table, the client
//     ships the worker its partition of it — one manifest frame (segments,
//     schema, total rows) and a stream of row-batch frames, finalized the
//     moment the row total is reached. Shipments are deduplicated per
//     session by content key; join-only queries skip this step entirely.
//   - Setup: the first unit of each operator is preceded by the operator's
//     serialized plan fragment (one frameSetup per fragment, identified by
//     a client-assigned id). The worker Prepares the decoded fragment once
//     and executes every later unit of that id against it — scan fragments
//     resolve against the session's shipped partitions at Prepare. A
//     fragment that fails to decode or Prepare poisons only its own units
//     (each fails with the preparation error as a work error), never the
//     session.
//   - Units: RunGroup is asynchronous and concurrent; each unit is
//     independent. The backend invokes emit sequentially per unit with
//     result batches that share no memory with the shipped unit, then
//     done(err) exactly once. A scan unit's done additionally reports the
//     unit's modeled local read stats (the worker's device traffic, the
//     per-worker numbers the partitioned benchmarks gate on). Work errors
//     cross the wire as text — error identity does not survive — and are
//     deterministic: the engine does not retry them.
//   - Failure and reroute: transport-level failures (connection loss, a
//     killed worker, refused dials, protocol corruption) fail every pending
//     and later unit with an error wrapping ErrBackendDown. That wrapper is
//     the reroute signal: the failover layer retries exactly such units on
//     surviving backends, excluding every backend that already failed the
//     unit; because unit output is deterministic and emitted sequentially,
//     the retry replays the same batch sequence and skips the prefix a
//     half-emitted failed attempt already delivered. Scan units are
//     placement-pinned — peers do not hold their partition — so they skip
//     the survivor chain and go straight to local fallback.
//   - Recovery: a down backend with a dialable address is probed (bounded
//     jittered backoff, ping-verified sessions) and re-admitted mid-query
//     with the slot's table partitions and the session's fragments
//     re-shipped first; its exclusion records reset, so later units —
//     including pinned scan units — land on it again. With no remote
//     surviving, units run on the coordinator's local fragment copy
//     (graceful degradation; for scans, against the coordinator's full
//     table at identical batch boundaries).
//   - Close: callers Close only after every done callback returned (the
//     engine's exchange guarantees this). Close tears the transport down
//     and joins all backend-owned goroutines; a closed backend completes
//     any contract-violating straggler unit with an error rather than
//     hanging.
//
// One backend Set is installed per query (by the planner, when the Shards
// knob exceeds one or worker addresses are configured); query results are
// byte-identical across shard counts, routing policies, transports,
// partitioned and shipped-data scans, and mid-query worker failures,
// because the engine's exchange merges returned batches in group order
// regardless of where — and after how many attempts — a group ran.
package shard

import (
	"fmt"
	"sync"

	"bdcc/internal/core"
	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Router deterministically assigns BDCC groups to n backends by hashing the
// aligned group identifier. Determinism is not needed for correctness (the
// exchange merges in group order no matter the placement) but keeps runs
// reproducible and lets two streams of the same query agree on placement.
type Router struct {
	n int
}

// NewRouter returns a router over n backends; n must be positive.
func NewRouter(n int) *Router {
	if n < 1 {
		panic("shard: router over zero backends")
	}
	return &Router{n: n}
}

// Route returns the backend index of group gid, in [0, n). Neighboring
// group identifiers spread across backends (the hash decorrelates the
// Z-order prefix), so a range-restricted query still loads every shard.
func (r *Router) Route(gid uint64) int {
	return int(vector.Mix64(gid) % uint64(r.n))
}

// PaperNet returns the modeled interconnect of the simulated remote
// backends: a 10 GbE-class link (1.25 GB/s) whose per-message overhead is
// derived the same way iosim derives run setup — a 256 KB transfer reaches
// 80% of line rate, putting message overhead at ~52 µs. Stats.Runs counts
// messages and Stats.Time is the modeled network time reported as net_ms.
// Real TCP backends are charged to the same model: their message and byte
// counts are real, while the modeled time stands beside the wall clock that
// already contains the real cost.
func PaperNet() iosim.Device {
	return iosim.Device{
		Name:           "10GbE",
		PageSize:       64 << 10,
		SeqBandwidth:   1.25e9,
		AR:             256 << 10,
		RandEfficiency: 0.80,
	}
}

// Set is the per-query backend group: n backends (simulated remotes or
// dialed TCP workers) behind the failover wrapper, one shared network
// accountant, and the router that places groups on them. The router records
// each backend's routed load (units, bytes); the balance-by-size policy
// places every group on the backend with the least cumulative bytes instead
// of hashing the group id.
type Set struct {
	backends []engine.Backend
	f        *failover
	hash     *Router
	net      *iosim.Accountant

	mu        sync.Mutex
	bySize    bool
	loads     []engine.BackendLoad
	parts     map[string]*Partitioning
	scanAccts []*iosim.Accountant
}

// SetConfig tunes a set's recovery behavior.
type SetConfig struct {
	// Probe tunes the health prober's reconnect backoff and deadlines; the
	// zero value selects the defaults (see ProbeConfig).
	Probe ProbeConfig
	// NoLocalFallback disables graceful degradation: with it set, a unit
	// that exhausts the set fails with ErrBackendDown instead of running on
	// the coordinator's local fragment copy.
	NoLocalFallback bool
	// AuthToken is the shared secret presented in every hello — the initial
	// dials and the prober's re-dials alike. It must match the workers'
	// -auth-token or sessions are dropped before the hello reply.
	AuthToken string
}

// NewSet returns a backend set of n simulated remotes, each with its own
// scheduler of `workers` goroutines, all charging transport activity to one
// accountant over dev. Simulated remotes have no dialable address, so there
// is no re-admission; local fallback still applies when the whole set dies.
func NewSet(n, workers int, dev iosim.Device) *Set {
	if workers < 1 {
		workers = 1
	}
	s := newSet(n, iosim.NewAccountant(dev))
	slots := make([]*slot, n)
	for i := 0; i < n; i++ {
		b := NewSim(workers, s.net)
		slots[i] = &slot{backend: b, workers: b.Workers()}
	}
	s.backends, s.f = newFailover(slots, failoverOptions{localFallback: true, acct: s.net})
	return s
}

// DialSet returns a backend set of one TCP backend per bdccworker address
// with the default recovery configuration; see DialSetConfig.
func DialSet(addrs []string, dev iosim.Device) (*Set, error) {
	return DialSetConfig(addrs, dev, SetConfig{})
}

// DialSetConfig returns a backend set of one TCP backend per bdccworker
// address, behind the failover wrapper, charging message traffic to one
// accountant over dev. A worker that is down at dial time no longer fails
// the query: its slot joins the set down and the health prober re-dials it
// under bounded jittered backoff, re-admitting it once it answers — the
// same path a worker lost mid-query recovers through. Only an empty
// address list is an error.
func DialSetConfig(addrs []string, dev iosim.Device, cfg SetConfig) (*Set, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: DialSet with no addresses")
	}
	s := newSet(len(addrs), iosim.NewAccountant(dev))
	slots := make([]*slot, len(addrs))
	for i, addr := range addrs {
		b, err := DialToken(addr, cfg.AuthToken, s.net)
		if err != nil {
			slots[i] = &slot{addr: addr, workers: 1}
			continue
		}
		slots[i] = &slot{backend: b, addr: addr, workers: b.Workers()}
	}
	s.backends, s.f = newFailover(slots, failoverOptions{
		localFallback: !cfg.NoLocalFallback,
		probe:         cfg.Probe,
		token:         cfg.AuthToken,
		acct:          s.net,
	})
	return s, nil
}

func newSet(n int, acct *iosim.Accountant) *Set {
	return &Set{
		hash:  NewRouter(n),
		net:   acct,
		loads: make([]engine.BackendLoad, n),
		parts: make(map[string]*Partitioning),
	}
}

// PartitionTable partitions the named base table across the set's workers by
// its BDCC count entries and ships each worker its partition — manifest plus
// row batches over the session, deduplicated per session by content key, so
// a second query over the same set reuses both the placement and the already
// shipped data. The returned Partitioning is the placement the planner
// splits scatter groups with; it is cached per table name, and shipping
// failures are deliberately absorbed (a broken session fails its units with
// ErrBackendDown and re-admission re-ships).
func (s *Set) PartitionTable(name string, tab *storage.Table, entries []core.CountEntry) *Partitioning {
	s.mu.Lock()
	if p, ok := s.parts[name]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()
	// Built outside the lock — extraction and encoding are heavy, and Route
	// must not stall behind them. A concurrent builder of the same table is
	// resolved below (first registration wins; the loser's shipments are
	// dropped, and per-session dedup absorbs any frames it already sent).
	p := NewPartitioning(name, entries, len(s.backends))
	ships := make([]*partShipment, len(s.backends))
	for w := range ships {
		key := fmt.Sprintf("%s/%d@%d", name, w, len(s.backends))
		ships[w] = buildPartShipment(key, tab, p.Segments(w))
	}
	s.mu.Lock()
	if prev, ok := s.parts[name]; ok {
		s.mu.Unlock()
		return prev
	}
	s.parts[name] = p
	s.mu.Unlock()
	s.f.shipPartition(name, ships)
	return p
}

// Partitioning returns the cached placement of a table PartitionTable
// already processed, or nil.
func (s *Set) Partitioning(name string) *Partitioning {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parts[name]
}

// EnableScanIO equips every worker slot with a scan-read accountant over
// dev: the read stats workers report in scan units' done frames accumulate
// per slot, giving the per-worker device traffic the partitioned
// benchmarks report (worker_mb_read). First call wins; later calls are
// no-ops.
func (s *Set) EnableScanIO(dev iosim.Device) {
	s.mu.Lock()
	if s.scanAccts != nil {
		s.mu.Unlock()
		return
	}
	s.scanAccts = make([]*iosim.Accountant, len(s.backends))
	hooks := make([]func(runs, pages, bytes int64), len(s.backends))
	for i := range s.scanAccts {
		a := iosim.NewAccountant(dev)
		s.scanAccts[i] = a
		hooks[i] = a.AddRuns
	}
	s.mu.Unlock()
	s.f.setScanIO(hooks)
}

// ScanIO returns the per-worker scan read stats accumulated since
// EnableScanIO, index-aligned with the backends; nil when never enabled.
// Units that failed over to the coordinator's local copy are charged to the
// query's own accountant instead, so these stats are exactly what the
// workers' devices served.
func (s *Set) ScanIO() []iosim.Stats {
	s.mu.Lock()
	accts := s.scanAccts
	s.mu.Unlock()
	if accts == nil {
		return nil
	}
	out := make([]iosim.Stats, len(accts))
	for i, a := range accts {
		out[i] = a.Stats()
	}
	return out
}

// ResetScanIO clears the per-worker scan accountants (between benchmark
// repetitions sharing one set).
func (s *Set) ResetScanIO() {
	s.mu.Lock()
	accts := s.scanAccts
	s.mu.Unlock()
	for _, a := range accts {
		a.Reset()
	}
}

// BalanceBySize switches the set's placement policy from group-hash to
// least-loaded-by-bytes: each group unit goes to the backend with the
// smallest cumulative routed bytes (lowest index on ties). With a single
// sharded operator placement is deterministic (its feeder routes groups
// serially in stream order); a plan with several sharded operators routes
// from concurrently running feeders, so the per-backend distribution may
// vary run to run — unlike the hash policy, which is deterministic per
// group regardless. Results are byte-identical across policies and
// placements either way: the exchange merges in group order no matter
// where a group ran.
func (s *Set) BalanceBySize() {
	s.mu.Lock()
	s.bySize = true
	s.mu.Unlock()
}

// Backends returns the set's backends, one per shard, failover-wrapped and
// index-aligned with Route.
func (s *Set) Backends() []engine.Backend { return s.backends }

// Route is the set's placement function: group id and unit bytes in,
// backend index out, with the routed load recorded per backend.
func (s *Set) Route(gid uint64, bytes int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := 0
	if s.bySize {
		for i := 1; i < len(s.loads); i++ {
			if s.loads[i].Bytes < s.loads[k].Bytes {
				k = i
			}
		}
	} else {
		k = s.hash.Route(gid)
	}
	s.loads[k].Units++
	s.loads[k].Bytes += bytes
	return k
}

// Loads returns a snapshot of the per-backend routed load (group-size
// counts): how many units and batch bytes the router placed on each shard.
// After a failover, loads reflect routing, not final execution sites.
func (s *Set) Loads() []engine.BackendLoad {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]engine.BackendLoad, len(s.loads))
	copy(out, s.loads)
	return out
}

// Net returns the shared network accountant.
func (s *Set) Net() *iosim.Accountant { return s.net }

// Health returns a snapshot of the set's per-backend failover health:
// retry/down/readmit counters and the prober state of each slot.
func (s *Set) Health() []engine.BackendHealth { return s.f.Health() }

// LocalFallbackUnits returns how many units ran on the coordinator's local
// fallback because no remote backend survived them.
func (s *Set) LocalFallbackUnits() int64 { return s.f.FallbackUnits() }
