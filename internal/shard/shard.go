// Package shard scales the engine's BDCC group streams past one box. The
// paper's organization makes dimension groups the natural unit of
// distribution: a group's build and probe batches are self-contained (rows
// never match across groups), so a sandwich-group work unit can ship to
// another executor with no cross-shard coordination. This package provides
// the pieces behind the engine's Backend seam:
//
//   - Router: a deterministic group-hash router assigning groups to N
//     backends (placement stays in the scheduler/backend layer, not in
//     operators — the morsel paper's locality argument).
//   - the group-unit wire codec (codec.go): units cross a transport as
//     vector.Batch bytes, never as shared memory.
//   - Local: the reference Backend over an engine.Executor — the existing
//     local pool behind the new interface.
//   - Sim: the first non-local Backend — an in-process simulated remote
//     with its own scheduler, a byte-stream transport, and iosim-modeled
//     network cost.
//
// One backend Set is installed per query (by the planner, when the Shards
// knob exceeds one); query results are byte-identical across shard counts
// because the engine's exchange merges returned batches in group order
// regardless of where a group ran. A real network backend is a drop-in: it
// implements engine.Backend over a socket instead of the in-process pipe and
// receives the plan fragment that Sim's GroupWork closure stands in for.
package shard

import (
	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// Router deterministically assigns BDCC groups to n backends by hashing the
// aligned group identifier. Determinism is not needed for correctness (the
// exchange merges in group order no matter the placement) but keeps runs
// reproducible and lets two streams of the same query agree on placement.
type Router struct {
	n int
}

// NewRouter returns a router over n backends; n must be positive.
func NewRouter(n int) *Router {
	if n < 1 {
		panic("shard: router over zero backends")
	}
	return &Router{n: n}
}

// Route returns the backend index of group gid, in [0, n). Neighboring
// group identifiers spread across backends (the hash decorrelates the
// Z-order prefix), so a range-restricted query still loads every shard.
func (r *Router) Route(gid uint64) int {
	return int(vector.Mix64(gid) % uint64(r.n))
}

// PaperNet returns the modeled interconnect of the simulated remote
// backends: a 10 GbE-class link (1.25 GB/s) whose per-message overhead is
// derived the same way iosim derives run setup — a 256 KB transfer reaches
// 80% of line rate, putting message overhead at ~52 µs. Stats.Runs counts
// messages and Stats.Time is the modeled network time reported as net_ms.
func PaperNet() iosim.Device {
	return iosim.Device{
		Name:           "10GbE",
		PageSize:       64 << 10,
		SeqBandwidth:   1.25e9,
		AR:             256 << 10,
		RandEfficiency: 0.80,
	}
}

// Set is the per-query backend group: n simulated-remote backends sharing
// one network accountant, plus the router that places groups on them.
type Set struct {
	backends []engine.Backend
	router   *Router
	net      *iosim.Accountant
}

// NewSet returns a backend set of n simulated remotes, each with its own
// scheduler of `workers` goroutines, all charging transport activity to one
// accountant over dev.
func NewSet(n, workers int, dev iosim.Device) *Set {
	if workers < 1 {
		workers = 1
	}
	s := &Set{router: NewRouter(n), net: iosim.NewAccountant(dev)}
	for i := 0; i < n; i++ {
		s.backends = append(s.backends, NewSim(workers, s.net))
	}
	return s
}

// Backends returns the set's backends, one per shard.
func (s *Set) Backends() []engine.Backend { return s.backends }

// Route is the set's group-hash placement function (see Router.Route).
func (s *Set) Route(gid uint64) int { return s.router.Route(gid) }

// Net returns the shared network accountant.
func (s *Set) Net() *iosim.Accountant { return s.net }
