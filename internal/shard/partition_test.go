package shard

import (
	"fmt"
	"reflect"
	"testing"

	"bdcc/internal/core"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// testEntries builds a synthetic count table in key order whose row offsets
// are deliberately NOT monotone — entries 1 and 4 live in a relocation area
// at the end of the table, as BDCC's small-cell relocation produces — so
// every lookup in these tests goes through the offset-interval index.
func testEntries() []core.CountEntry {
	return []core.CountEntry{
		{Key: 0, Count: 10, Offset: 0},
		{Key: 1, Count: 4, Offset: 100, Relocated: true},
		{Key: 2, Count: 20, Offset: 10},
		{Key: 3, Count: 6, Offset: 30},
		{Key: 4, Count: 3, Offset: 104, Relocated: true},
		{Key: 5, Count: 25, Offset: 36},
		{Key: 6, Count: 12, Offset: 61},
		{Key: 7, Count: 27, Offset: 73},
	}
}

func TestPartitioningDeterministicAndCovering(t *testing.T) {
	entries := testEntries()
	var total int64
	for _, e := range entries {
		total += e.Count
	}
	for workers := 1; workers <= 5; workers++ {
		p := NewPartitioning("t", entries, workers)
		q := NewPartitioning("t", entries, workers)
		for w := 0; w < workers; w++ {
			if !reflect.DeepEqual(p.Segments(w), q.Segments(w)) {
				t.Fatalf("workers=%d: two partitionings of the same count table differ at worker %d", workers, w)
			}
		}
		if p.TotalRows() != total {
			t.Fatalf("workers=%d: partitioning owns %d rows, table has %d", workers, p.TotalRows(), total)
		}
		// Every entry is owned by exactly one worker, whole and in key order.
		owned := map[int]int{} // entry index -> worker
		next := 0
		for w := 0; w < workers; w++ {
			var rows int64
			for _, s := range p.Segments(w) {
				if next >= len(entries) {
					t.Fatalf("workers=%d: worker %d owns more segments than there are entries", workers, w)
				}
				e := entries[next]
				if s.Start != int(e.Offset) || s.End != int(e.Offset+e.Count) {
					t.Fatalf("workers=%d: worker %d segment [%d,%d) is not entry %d's interval [%d,%d) — blocks must be contiguous in key order",
						workers, w, s.Start, s.End, next, e.Offset, e.Offset+e.Count)
				}
				owned[next] = w
				next++
				rows += int64(s.Len())
			}
			if rows != p.Rows(w) {
				t.Fatalf("workers=%d: worker %d segments cover %d rows, Rows says %d", workers, w, rows, p.Rows(w))
			}
		}
		if next != len(entries) {
			t.Fatalf("workers=%d: only %d of %d entries owned", workers, next, len(entries))
		}
		// WorkerFor agrees with the segment assignment, including on
		// sub-ranges (zonemap-shrunk ranges stay inside their entry).
		for i, e := range entries {
			full := storage.RowRange{Start: int(e.Offset), End: int(e.Offset + e.Count)}
			w, err := p.WorkerFor(full)
			if err != nil {
				t.Fatal(err)
			}
			if w != owned[i] {
				t.Fatalf("workers=%d: WorkerFor(entry %d) = %d, segments say %d", workers, i, w, owned[i])
			}
			shrunk := storage.RowRange{Start: full.Start + 1, End: full.End}
			if full.Len() > 1 {
				if sw, err := p.WorkerFor(shrunk); err != nil || sw != w {
					t.Fatalf("workers=%d: shrunk range of entry %d maps to %d/%v, want %d", workers, i, sw, err, w)
				}
			}
		}
		// Balance: no worker owns more than a fair share plus the largest
		// single cell (a cell is never split across workers).
		var maxCell int64
		for _, e := range entries {
			if e.Count > maxCell {
				maxCell = e.Count
			}
		}
		fair := total/int64(workers) + maxCell
		for w := 0; w < workers; w++ {
			if p.Rows(w) > fair {
				t.Fatalf("workers=%d: worker %d owns %d rows, bound is %d (fair %d + max cell %d)",
					workers, w, p.Rows(w), fair, total/int64(workers), maxCell)
			}
		}
	}
}

func TestWorkerForRejectsEntrySpanningRange(t *testing.T) {
	p := NewPartitioning("t", testEntries(), 3)
	// [5, 15) straddles entry 0 ([0,10)) and entry 2 ([10,30)).
	if _, err := p.WorkerFor(storage.RowRange{Start: 5, End: 15}); err == nil {
		t.Fatal("a range spanning two count entries must be rejected, not split")
	}
	if _, err := p.WorkerFor(storage.RowRange{Start: 200, End: 201}); err == nil {
		t.Fatal("a range outside every entry must be rejected")
	}
}

func TestSplitGroupPreservesOrder(t *testing.T) {
	entries := testEntries()
	p := NewPartitioning("t", entries, 3)
	// A scatter group: one (possibly shrunk) range per count entry, in key
	// order — exactly what ScatterPlan plus zonemap pruning emits.
	var group storage.RowRanges
	for i, e := range entries {
		r := storage.RowRange{Start: int(e.Offset), End: int(e.Offset + e.Count)}
		if i%2 == 1 && r.Len() > 2 {
			r.Start++ // shrink some ranges like pruning would
		}
		group = append(group, r)
	}
	runs, err := p.SplitGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	var flat storage.RowRanges
	for i, run := range runs {
		if i > 0 && runs[i-1].Worker == run.Worker {
			t.Fatalf("runs %d and %d share worker %d — runs must be maximal", i-1, i, run.Worker)
		}
		for _, r := range run.Ranges {
			w, err := p.WorkerFor(r)
			if err != nil {
				t.Fatal(err)
			}
			if w != run.Worker {
				t.Fatalf("range [%d,%d) in run of worker %d is owned by worker %d", r.Start, r.End, run.Worker, w)
			}
		}
		flat = append(flat, run.Ranges...)
	}
	if !reflect.DeepEqual(flat, group) {
		t.Fatalf("concatenated runs = %v, want the original group order %v", flat, group)
	}
}

// TestSplitGroupCutsMergedRanges feeds SplitGroup the normalized form a
// pruned group actually has — adjacent entry intervals merged into one
// range — and checks the range is cut at every entry boundary, each piece
// owned by its entry's worker, with the concatenated row sequence unchanged.
func TestSplitGroupCutsMergedRanges(t *testing.T) {
	entries := testEntries()
	p := NewPartitioning("t", entries, 4)
	// Rows [10,61) merge entries 2 ([10,30)), 3 ([30,36)) and 5 ([36,61)),
	// which the quota walk spreads over more than one worker.
	merged := storage.RowRanges{{Start: 0, End: 10}, {Start: 10, End: 61}}
	runs, err := p.SplitGroup(merged)
	if err != nil {
		t.Fatal(err)
	}
	var flat storage.RowRanges
	for _, run := range runs {
		for _, r := range run.Ranges {
			w, err := p.WorkerFor(r) // each piece must sit inside one entry
			if err != nil {
				t.Fatal(err)
			}
			if w != run.Worker {
				t.Fatalf("piece [%d,%d) owned by %d, run says %d", r.Start, r.End, w, run.Worker)
			}
			flat = append(flat, r)
		}
	}
	next := 0
	for _, r := range flat {
		if r.Start != next {
			t.Fatalf("pieces not contiguous: [%d,%d) after row %d", r.Start, r.End, next)
		}
		next = r.End
	}
	if next != 61 {
		t.Fatalf("pieces cover rows up to %d, want 61", next)
	}
	if _, err := p.SplitGroup(storage.RowRanges{{Start: 61, End: 120}}); err == nil {
		t.Fatal("rows in no count entry must be rejected")
	}
}

func TestRangeMapOffsets(t *testing.T) {
	segs := storage.RowRanges{{Start: 10, End: 30}, {Start: 36, End: 61}, {Start: 104, End: 107}}
	m := NewRangeMap(segs)
	if m.Rows() != 20+25+3 {
		t.Fatalf("Rows = %d, want 48", m.Rows())
	}
	cases := []struct{ in, want storage.RowRange }{
		{storage.RowRange{Start: 10, End: 30}, storage.RowRange{Start: 0, End: 20}},
		{storage.RowRange{Start: 15, End: 20}, storage.RowRange{Start: 5, End: 10}},
		{storage.RowRange{Start: 36, End: 61}, storage.RowRange{Start: 20, End: 45}},
		{storage.RowRange{Start: 104, End: 107}, storage.RowRange{Start: 45, End: 48}},
	}
	for _, c := range cases {
		got, err := m.Map(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Map(%v) = %v, want %v", c.in, got, c.want)
		}
		if got.Len() != c.in.Len() {
			t.Fatalf("Map(%v) changed the range length", c.in)
		}
	}
	for _, bad := range []storage.RowRange{{Start: 0, End: 5}, {Start: 25, End: 40}, {Start: 61, End: 62}} {
		if _, err := m.Map(bad); err == nil {
			t.Fatalf("Map(%v) must fail — range outside the shipped partition", bad)
		}
	}
}

// shipTestTable builds a small table whose single int64 column equals the row
// index, so shipped values identify their coordinator row.
func shipTestTable(t *testing.T, rows int, compress bool) *storage.Table {
	t.Helper()
	i64 := make([]int64, rows)
	str := make([]string, rows)
	for i := range i64 {
		i64[i] = int64(i)
		str[i] = fmt.Sprintf("r%04d", i)
	}
	tab, err := storage.NewTable("lineitem", 1<<10,
		storage.NewInt64Column("id", i64), storage.NewStringColumn("tag", str))
	if err != nil {
		t.Fatal(err)
	}
	if compress {
		tab.Compress()
	}
	return tab
}

func TestPartShipmentRoundtrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			tab := shipTestTable(t, 500, compress)
			segs := storage.RowRanges{{Start: 40, End: 160}, {Start: 200, End: 210}, {Start: 480, End: 500}}
			ship := buildPartShipment("lineitem/0@2", tab, segs)

			store := newPartStore(0)
			if err := store.addManifest(1, ship.manifest); err != nil {
				t.Fatal(err)
			}
			for _, d := range ship.data {
				if err := store.addData(1, d); err != nil {
					t.Fatal(err)
				}
			}
			st, err := store.source("lineitem")
			if err != nil {
				t.Fatal(err)
			}
			if st.Tab.Compressed() != compress {
				t.Fatalf("rebuilt partition compressed=%v, original %v", st.Tab.Compressed(), compress)
			}
			if got, want := st.Tab.Rows(), 120+10+20; got != want {
				t.Fatalf("rebuilt partition has %d rows, want %d", got, want)
			}
			// Every coordinator row in the shipment maps to a local row
			// holding the same values.
			r := storage.NewReader(st.Tab, []int{0, 1}, storage.FullRange(st.Tab.Rows()), nil)
			b := vector.NewBatch([]vector.Kind{vector.Int64, vector.String})
			var local []int64
			for r.Next(b) {
				local = append(local, b.Cols[0].I64...)
			}
			want := []int64{}
			for _, s := range segs {
				for i := s.Start; i < s.End; i++ {
					want = append(want, int64(i))
				}
			}
			if !reflect.DeepEqual(local, want) {
				t.Fatalf("rebuilt partition rows = %v..., want the segments' rows in ship order", local[:5])
			}
			// And the RangeMap agrees.
			m, err := st.Map(storage.RowRange{Start: 200, End: 210})
			if err != nil {
				t.Fatal(err)
			}
			if m.Start != 120 || m.End != 130 {
				t.Fatalf("Map([200,210)) = %v, want [120,130)", m)
			}
		})
	}
}

func TestPartStoreLimitPoisonsNotDrops(t *testing.T) {
	tab := shipTestTable(t, 400, false)
	ship := buildPartShipment("lineitem/0@2", tab, storage.FullRange(tab.Rows()))
	store := newPartStore(64) // far below the shipment's decoded bytes
	if err := store.addManifest(7, ship.manifest); err != nil {
		t.Fatal(err)
	}
	for _, d := range ship.data {
		if err := store.addData(7, d); err != nil {
			t.Fatalf("an over-limit partition must poison the table, not drop the session: %v", err)
		}
	}
	if _, err := store.source("lineitem"); err == nil {
		t.Fatal("scans of a poisoned partition must fail Prepare")
	}
	if store.used != 0 {
		t.Fatalf("poisoning must release the partial transfer's bytes, %d still held", store.used)
	}
}

func TestPartStoreDuplicateTableKeepsFirst(t *testing.T) {
	tab := shipTestTable(t, 100, false)
	ship := buildPartShipment("lineitem/0@2", tab, storage.FullRange(tab.Rows()))
	store := newPartStore(0)
	if err := store.addManifest(1, ship.manifest); err != nil {
		t.Fatal(err)
	}
	for _, d := range ship.data {
		if err := store.addData(1, d); err != nil {
			t.Fatal(err)
		}
	}
	first, err := store.source("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// A second transfer of the same table (re-admission re-ship racing the
	// dedup) drains silently and keeps the first copy.
	if err := store.addManifest(2, ship.manifest); err != nil {
		t.Fatal(err)
	}
	for _, d := range ship.data {
		if err := store.addData(2, d); err != nil {
			t.Fatal(err)
		}
	}
	again, err := store.source("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if again.Tab != first.Tab {
		t.Fatal("a duplicate transfer replaced the finalized partition")
	}
	// Reusing a transfer id is protocol corruption, though.
	if err := store.addManifest(1, ship.manifest); err == nil {
		t.Fatal("reused partition id must be a protocol error")
	}
}

func TestPartManifestRejectsCorruption(t *testing.T) {
	tab := shipTestTable(t, 50, false)
	good := encodePartManifest(tab, storage.RowRanges{{Start: 0, End: 50}}, nil)
	if _, err := decodePartManifest(good); err != nil {
		t.Fatal(err)
	}
	if _, err := decodePartManifest(good[:len(good)-3]); err == nil {
		t.Fatal("truncated manifest must be rejected")
	}
	// Declare 50 rows but cover 40: row/segment mismatch.
	bad := encodePartManifest(tab, storage.RowRanges{{Start: 0, End: 40}}, nil)
	// Patch the row count up by rebuilding via the original then swapping
	// segments is fiddly; instead decode-check that mismatched totals from a
	// hand-built payload fail. The simplest corruption: chop one segment off.
	if _, err := decodePartManifest(bad[:len(bad)-16]); err == nil {
		t.Fatal("segment section shorter than its count must be rejected")
	}
}
