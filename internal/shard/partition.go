// Partitioning: deterministic placement of BDCC count-table cells onto
// workers, the basis of the shared-nothing scan path (docs/PARTITIONING.md).
//
// The partition key is the table's own _bdcc_ z-order key: the count table
// is already ordered by it, so a partitioning is just a division of the
// count-entry sequence into Workers contiguous blocks, balanced by
// cumulative row count. Contiguity in *key order* keeps each scatter
// group's cells on at most a few adjacent workers (a group at scan
// granularity is a contiguous key run at count granularity), so a
// partitioned scatter scan splits every group into at most Workers
// consecutive runs and the coordinator's order-preserving exchange can
// merge them without re-sorting.
//
// The assignment is a pure function of (count table, Workers): both sides
// of the wire, and the failover re-scan on the coordinator, derive the same
// placement independently. Row offsets are NOT contiguous per worker —
// relocated cells live in the relocation area at the end of the table — so
// range→worker lookup goes through an offset-interval index, never through
// arithmetic on row positions.

package shard

import (
	"fmt"
	"sort"

	"bdcc/internal/core"
	"bdcc/internal/storage"
)

// Partitioning assigns the count entries (z-order cells) of one BDCC table
// to Workers workers. Worker w owns the contiguous key-order block of
// entries [bounds[w], bounds[w+1]); blocks are balanced by cumulative row
// count with the deterministic greedy rule in NewPartitioning.
type Partitioning struct {
	// Table is the partitioned table's name (the wire manifest key).
	Table string
	// Workers is the number of partitions.
	Workers int

	bounds []int               // len Workers+1; entry-index block boundaries in key order
	rows   []int64             // rows owned per worker
	segs   []storage.RowRanges // per worker: owned entry intervals in key (ship) order
	ivals  []entryIval         // offset-sorted index for range→worker lookup
}

// entryIval is one count entry's row interval [Start, End) tagged with its
// owning worker, indexed by Start for range→worker lookup.
type entryIval struct {
	Start, End int
	Worker     int
}

// PartRun is a maximal run of consecutive scatter-group ranges owned by one
// worker. SplitGroup returns runs in original range order, so concatenating
// the runs' rows reproduces the unpartitioned scan order exactly.
type PartRun struct {
	Worker int
	Ranges storage.RowRanges
}

// NewPartitioning divides the count entries into Workers contiguous
// key-order blocks balanced by row count: walking the entries in key order
// and accumulating rows, a block closes after the entry that brings the
// cumulative count to at least the next 1/Workers quota of the total. The
// rule is integer-exact and entry-order stable, so the same count table and
// worker count always produce the same placement; a single cell larger than
// a quota simply spills into the next block (later workers may own empty
// blocks, which the balance tests tolerate by bounding spread, not
// demanding equality).
func NewPartitioning(table string, entries []core.CountEntry, workers int) *Partitioning {
	if workers < 1 {
		workers = 1
	}
	p := &Partitioning{
		Table:   table,
		Workers: workers,
		bounds:  make([]int, workers+1),
		rows:    make([]int64, workers),
		segs:    make([]storage.RowRanges, workers),
	}
	var total int64
	for _, e := range entries {
		total += e.Count
	}
	w := 0
	var cum int64
	for i, e := range entries {
		cum += e.Count
		p.rows[w] += e.Count
		iv := entryIval{
			Start:  int(e.Offset),
			End:    int(e.Offset + e.Count),
			Worker: w,
		}
		p.ivals = append(p.ivals, iv)
		p.segs[w] = append(p.segs[w], storage.RowRange{Start: iv.Start, End: iv.End})
		for w < workers-1 && cum*int64(workers) >= int64(w+1)*total {
			p.bounds[w+1] = i + 1
			w++
		}
	}
	for ; w < workers; w++ {
		p.bounds[w+1] = len(entries)
	}
	sort.Slice(p.ivals, func(a, b int) bool { return p.ivals[a].Start < p.ivals[b].Start })
	return p
}

// Segments returns worker w's owned row ranges — one per count entry, in
// key order, deliberately unnormalized. The per-entry structure is the
// shipped manifest: the worker's local table concatenates exactly these
// segments, so a 1:1 coordinator→local range mapping exists and the
// failover re-scan on the coordinator replays the identical batch
// sequence.
func (p *Partitioning) Segments(w int) storage.RowRanges {
	return p.segs[w]
}

// Rows returns the number of rows owned by worker w.
func (p *Partitioning) Rows(w int) int64 { return p.rows[w] }

// TotalRows returns the table's total row count across all workers.
func (p *Partitioning) TotalRows() int64 {
	var t int64
	for _, r := range p.rows {
		t += r
	}
	return t
}

// WorkerFor returns the worker owning the count entry that contains r
// whole. Ranges that cross entry boundaries (pruned groups merge adjacent
// entry intervals) are an error here — SplitGroup is the entry-splitting
// form.
func (p *Partitioning) WorkerFor(r storage.RowRange) (int, error) {
	i := sort.Search(len(p.ivals), func(i int) bool { return p.ivals[i].Start > r.Start }) - 1
	if i < 0 || r.End > p.ivals[i].End {
		return 0, fmt.Errorf("shard: range [%d,%d) of %s spans no single count entry", r.Start, r.End, p.Table)
	}
	return p.ivals[i].Worker, nil
}

// SplitGroup splits one scatter group's pruned ranges into maximal
// consecutive runs per owning worker, preserving range order: concatenating
// the runs' rows reproduces the group's unpartitioned row order exactly,
// which is all the order-preserving exchange needs. A range is cut at every
// count-entry boundary it crosses — zonemap pruning normalizes a group's
// ranges, merging entry intervals that are adjacent in row-offset order —
// and each piece goes to the entry's owner; a row outside every entry is a
// planner invariant violation and errs. Cutting at entry boundaries (even
// between same-worker entries) also keeps every shipped piece inside one
// manifest segment, which RangeMap requires.
func (p *Partitioning) SplitGroup(ranges storage.RowRanges) ([]PartRun, error) {
	var runs []PartRun
	add := func(w int, r storage.RowRange) {
		if n := len(runs); n > 0 && runs[n-1].Worker == w {
			runs[n-1].Ranges = append(runs[n-1].Ranges, r)
			return
		}
		runs = append(runs, PartRun{Worker: w, Ranges: storage.RowRanges{r}})
	}
	for _, r := range ranges {
		for r.Len() > 0 {
			i := sort.Search(len(p.ivals), func(i int) bool { return p.ivals[i].Start > r.Start }) - 1
			if i < 0 || r.Start >= p.ivals[i].End {
				return nil, fmt.Errorf("shard: row %d of %s lies in no count entry", r.Start, p.Table)
			}
			iv := p.ivals[i]
			end := r.End
			if iv.End < end {
				end = iv.End
			}
			add(iv.Worker, storage.RowRange{Start: r.Start, End: end})
			r.Start = end
		}
	}
	return runs, nil
}

// RangeMap maps coordinator row ranges to a shipped partition's local row
// space. The local table concatenates the manifest segments in ship order,
// so segment k's local start is the prefix sum of the preceding segments'
// lengths; a mapped range must lie inside one segment (same invariant as
// WorkerFor) and keeps its length, which is what makes the worker-side
// reader's batch boundaries — ranges plus BatchSize steps — identical to
// the coordinator's.
type RangeMap struct {
	segs []mapSeg // sorted by coordinator Start
}

type mapSeg struct {
	start, end int // coordinator interval [start, end)
	local      int // local offset of start
}

// NewRangeMap builds the coordinator→local mapping for a partition shipped
// as the given segments in ship (key) order.
func NewRangeMap(segments storage.RowRanges) *RangeMap {
	m := &RangeMap{segs: make([]mapSeg, 0, len(segments))}
	local := 0
	for _, s := range segments {
		m.segs = append(m.segs, mapSeg{start: s.Start, end: s.End, local: local})
		local += s.Len()
	}
	sort.Slice(m.segs, func(a, b int) bool { return m.segs[a].start < m.segs[b].start })
	return m
}

// Map translates one coordinator range into the local row space.
func (m *RangeMap) Map(r storage.RowRange) (storage.RowRange, error) {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].start > r.Start }) - 1
	if i < 0 || r.End > m.segs[i].end {
		return storage.RowRange{}, fmt.Errorf("shard: range [%d,%d) outside shipped partition", r.Start, r.End)
	}
	off := m.segs[i].local - m.segs[i].start
	return storage.RowRange{Start: r.Start + off, End: r.End + off}, nil
}

// Rows returns the local table's row count implied by the manifest.
func (m *RangeMap) Rows() int {
	n := 0
	for _, s := range m.segs {
		n += s.end - s.start
	}
	return n
}
