package shard

import (
	"encoding/binary"
	"fmt"

	"bdcc/internal/engine"
	"bdcc/internal/vector"
)

// Group-unit wire form: the serialized shape of one engine.GroupUnit as it
// crosses a backend transport. Layout (little endian):
//
//	u64 aligned group id
//	u32 probe batch count, u32 build batch count
//	probe batches then build batches, each in the vector.Batch wire form
//
// The unit codec is exact because the batch codec is: a decoded unit joins
// to bit-identical results, which is what keeps sharded runs byte-identical.

// EncodeUnit appends the wire encoding of u to buf and returns the extended
// slice.
func EncodeUnit(u *engine.GroupUnit, buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, u.GID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Probe)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Build)))
	for _, b := range u.Probe {
		buf = b.Encode(buf)
	}
	for _, b := range u.Build {
		buf = b.Encode(buf)
	}
	return buf
}

// DecodeUnit decodes one group unit occupying all of data. The decoded unit
// owns its memory — nothing aliases the sender's batches.
func DecodeUnit(data []byte) (*engine.GroupUnit, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("shard: truncated unit header (%d bytes)", len(data))
	}
	u := &engine.GroupUnit{GID: binary.LittleEndian.Uint64(data)}
	np := int(binary.LittleEndian.Uint32(data[8:]))
	nb := int(binary.LittleEndian.Uint32(data[12:]))
	pos := 16
	for i := 0; i < np+nb; i++ {
		b, n, err := vector.DecodeBatch(data[pos:])
		if err != nil {
			return nil, fmt.Errorf("shard: unit batch %d: %w", i, err)
		}
		pos += n
		if i < np {
			u.Probe = append(u.Probe, b)
		} else {
			u.Build = append(u.Build, b)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("shard: %d trailing bytes after unit", len(data)-pos)
	}
	return u, nil
}
