package shard

import (
	"encoding/binary"
	"fmt"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// Wire forms of the two plan-side payloads a backend transport carries (see
// docs/WIRE.md for the full protocol):
//
// Group unit — the serialized shape of one engine.GroupUnit. Layout (little
// endian, protocol v5):
//
//	u64 aligned group id
//	u32 probe batch count, u32 build batch count
//	probe batches then build batches, each in the vector.Batch wire form
//	u32 scan range count, then per range u64 start + u64 end
//	    (coordinator row space; 0 for a join unit, and a scan unit
//	    carries no batches)
//
// Plan fragment — the serialized shape of one engine.Fragment, shipped once
// per operator at query setup. Layout (little endian, protocol v5):
//
//	u8 fragment kind             (0 join, 1 scan)
//	table name                   (u32 length + bytes; empty for a join)
//	probe schema, build schema   (u16 column count; per column: string name
//	                              as u32 length + bytes, u8 kind)
//	probe keys, build keys       (u16 count, strings)
//	u8 join type
//	u8 residual present, then the expr wire form (unbound; the worker
//	   re-binds — against probe+build for a join, against the probe/output
//	   schema for a scan, where the slot carries the scan filter)
//
// Both codecs are exact because the batch and expression codecs are: a
// decoded unit joins (or scans) under a decoded fragment to bit-identical
// results, which is what keeps sharded runs byte-identical.

// EncodeUnit appends the wire encoding of u to buf and returns the extended
// slice.
func EncodeUnit(u *engine.GroupUnit, buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, u.GID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Probe)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Build)))
	for _, b := range u.Probe {
		buf = b.Encode(buf)
	}
	for _, b := range u.Build {
		buf = b.Encode(buf)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.ScanRanges)))
	for _, r := range u.ScanRanges {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.End))
	}
	return buf
}

// RawUnitWireSize returns the size EncodeUnit would produce with every batch
// column forced raw — the baseline the transport's wire_bytes_saved counter
// is measured against.
func RawUnitWireSize(u *engine.GroupUnit) int {
	sz := 16 + 4 + 16*len(u.ScanRanges)
	for _, b := range u.Probe {
		sz += b.RawWireSize()
	}
	for _, b := range u.Build {
		sz += b.RawWireSize()
	}
	return sz
}

// DecodeUnit decodes one group unit occupying all of data. The decoded unit
// owns its memory — nothing aliases the sender's batches.
func DecodeUnit(data []byte) (*engine.GroupUnit, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("shard: truncated unit header (%d bytes)", len(data))
	}
	u := &engine.GroupUnit{GID: binary.LittleEndian.Uint64(data)}
	np := int(binary.LittleEndian.Uint32(data[8:]))
	nb := int(binary.LittleEndian.Uint32(data[12:]))
	pos := 16
	for i := 0; i < np+nb; i++ {
		b, n, err := vector.DecodeBatch(data[pos:])
		if err != nil {
			return nil, fmt.Errorf("shard: unit batch %d: %w", i, err)
		}
		pos += n
		if i < np {
			u.Probe = append(u.Probe, b)
		} else {
			u.Build = append(u.Build, b)
		}
	}
	if len(data) < pos+4 {
		return nil, fmt.Errorf("shard: truncated unit scan ranges")
	}
	nr := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if nr > 0 {
		if len(data) < pos+16*nr {
			return nil, fmt.Errorf("shard: truncated unit scan ranges")
		}
		u.ScanRanges = make(storage.RowRanges, nr)
		for i := 0; i < nr; i++ {
			u.ScanRanges[i] = storage.RowRange{
				Start: int(binary.LittleEndian.Uint64(data[pos:])),
				End:   int(binary.LittleEndian.Uint64(data[pos+8:])),
			}
			pos += 16
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("shard: %d trailing bytes after unit", len(data)-pos)
	}
	return u, nil
}

func appendSchema(buf []byte, s expr.Schema) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	for _, c := range s {
		buf = expr.AppendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	return buf
}

func decodeSchema(data []byte) (expr.Schema, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("shard: truncated schema")
	}
	n := int(binary.LittleEndian.Uint16(data))
	pos := 2
	s := make(expr.Schema, 0, n)
	for i := 0; i < n; i++ {
		name, w, err := expr.DecodeString(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += w
		if len(data) < pos+1 {
			return nil, 0, fmt.Errorf("shard: truncated column kind")
		}
		s = append(s, expr.ColMeta{Name: name, Kind: vector.Kind(data[pos])})
		pos++
	}
	return s, pos, nil
}

func appendStrs(buf []byte, ss []string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ss)))
	for _, s := range ss {
		buf = expr.AppendString(buf, s)
	}
	return buf
}

func decodeStrs(data []byte) ([]string, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("shard: truncated string list")
	}
	n := int(binary.LittleEndian.Uint16(data))
	pos := 2
	ss := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, w, err := expr.DecodeString(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		ss = append(ss, s)
		pos += w
	}
	return ss, pos, nil
}

// EncodeFragment appends the wire encoding of f's plan description to buf
// and returns the extended slice. Execution-site state (bound indexes,
// meters) does not travel — the receiving worker Prepares the decoded
// fragment itself.
func EncodeFragment(f *engine.Fragment, buf []byte) ([]byte, error) {
	buf = append(buf, byte(f.Kind))
	buf = expr.AppendString(buf, f.Table)
	buf = appendSchema(buf, f.Probe)
	buf = appendSchema(buf, f.Build)
	buf = appendStrs(buf, f.ProbeKeys)
	buf = appendStrs(buf, f.BuildKeys)
	buf = append(buf, byte(f.Type))
	if f.Residual == nil {
		return append(buf, 0), nil
	}
	buf = append(buf, 1)
	return expr.EncodeExpr(f.Residual, buf)
}

// DecodeFragment decodes one plan fragment occupying all of data. The
// returned fragment is unprepared and unmetered; the caller Prepares it and
// attaches its own execution-site hooks.
func DecodeFragment(data []byte) (*engine.Fragment, error) {
	f := &engine.Fragment{}
	var n int
	var err error
	if len(data) < 1 {
		return nil, fmt.Errorf("shard: truncated fragment kind")
	}
	f.Kind = engine.FragKind(data[0])
	data = data[1:]
	if f.Table, n, err = expr.DecodeString(data); err != nil {
		return nil, fmt.Errorf("shard: fragment table: %w", err)
	}
	data = data[n:]
	if f.Probe, n, err = decodeSchema(data); err != nil {
		return nil, fmt.Errorf("shard: fragment probe schema: %w", err)
	}
	data = data[n:]
	if f.Build, n, err = decodeSchema(data); err != nil {
		return nil, fmt.Errorf("shard: fragment build schema: %w", err)
	}
	data = data[n:]
	if f.ProbeKeys, n, err = decodeStrs(data); err != nil {
		return nil, fmt.Errorf("shard: fragment probe keys: %w", err)
	}
	data = data[n:]
	if f.BuildKeys, n, err = decodeStrs(data); err != nil {
		return nil, fmt.Errorf("shard: fragment build keys: %w", err)
	}
	data = data[n:]
	if len(data) < 2 {
		return nil, fmt.Errorf("shard: truncated fragment trailer")
	}
	f.Type = engine.JoinType(data[0])
	hasResidual := data[1] != 0
	data = data[2:]
	if hasResidual {
		if f.Residual, n, err = expr.DecodeExpr(data); err != nil {
			return nil, fmt.Errorf("shard: fragment residual: %w", err)
		}
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after fragment", len(data))
	}
	return f, nil
}
