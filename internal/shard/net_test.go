package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// startWorker starts an in-process worker Server on a loopback TCP listener
// and returns it with its dialable address. Cleanup closes it (idempotent,
// so tests may close earlier to simulate a crash).
func startWorker(t *testing.T, workers int) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(workers)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// TestFragmentCodecRoundTrip checks the plan-fragment wire form: schemas,
// keys, type, and residual reproduce exactly, and the decoded fragment
// prepares and joins like the original.
func TestFragmentCodecRoundTrip(t *testing.T) {
	probe, build := testStreams(2, 8)
	orig := &engine.Fragment{
		Probe: probe.schema, Build: build.schema,
		ProbeKeys: []string{"lkey"}, BuildKeys: []string{"rkey"},
		Type:     engine.InnerJoin,
		Residual: expr.NewCmp(expr.GT, expr.C("rpay"), expr.Float(0.75)),
	}
	buf, err := EncodeFragment(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFragment(buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Probe) != fmt.Sprint(orig.Probe) || fmt.Sprint(got.Build) != fmt.Sprint(orig.Build) {
		t.Fatalf("schemas changed across the wire: %v / %v", got.Probe, got.Build)
	}
	if fmt.Sprint(got.ProbeKeys) != fmt.Sprint(orig.ProbeKeys) ||
		fmt.Sprint(got.BuildKeys) != fmt.Sprint(orig.BuildKeys) || got.Type != orig.Type {
		t.Fatalf("keys or type changed across the wire")
	}
	if got.Residual == nil || got.Residual.String() != orig.Residual.String() {
		t.Fatalf("residual changed across the wire: %v", got.Residual)
	}
	if err := orig.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := got.Prepare(); err != nil {
		t.Fatal(err)
	}
	u := &engine.GroupUnit{GID: 0,
		Probe: []*vector.Batch{probe.batches[0]},
		Build: []*vector.Batch{build.batches[0]},
	}
	render := func(f *engine.Fragment) (out []string) {
		if err := f.Run(u, func(b *vector.Batch) {
			for i := 0; i < b.Len(); i++ {
				row := make([]string, len(b.Cols))
				for c, col := range b.Cols {
					row[c] = col.GetString(i)
				}
				out = append(out, fmt.Sprint(row))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want, have := render(orig), render(got)
	if len(want) == 0 {
		t.Fatal("residual join produced no rows — vacuous test")
	}
	if fmt.Sprint(want) != fmt.Sprint(have) {
		t.Fatalf("decoded fragment joins differently:\n%v\n%v", have, want)
	}

	// No-residual and truncation paths.
	plain := &engine.Fragment{Probe: probe.schema, Build: build.schema,
		ProbeKeys: []string{"lkey"}, BuildKeys: []string{"rkey"}}
	buf2, err := EncodeFragment(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeFragment(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Residual != nil {
		t.Fatal("nil residual decoded as non-nil")
	}
	for n := 0; n < len(buf); n += 3 {
		if _, err := DecodeFragment(buf[:n]); err == nil {
			t.Fatalf("truncated fragment (%d of %d bytes) decoded without error", n, len(buf))
		}
	}
}

// TestTCPBackendMatchesSerial is the loopback-TCP equivalence leg: the
// sandwich join sharded over two real bdccworker servers (dialed over
// loopback TCP, fragments and batches crossing real sockets) must
// reproduce the serial join byte-identically, and closing the set must
// leave no goroutines or connections behind.
func TestTCPBackendMatchesSerial(t *testing.T) {
	base := runtime.NumGoroutine()
	serialCtx := &engine.Context{Mem: &engine.MemTracker{}}
	serial, err := engine.Run(serialCtx, sandwich(serialCtx, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(serial)

	srv1, addr1 := startWorker(t, 2)
	srv2, addr2 := startWorker(t, 2)
	for _, balance := range []string{"hash", "size"} {
		t.Run(balance, func(t *testing.T) {
			set, err := DialSet([]string{addr1, addr2}, PaperNet())
			if err != nil {
				t.Fatal(err)
			}
			if balance == "size" {
				set.BalanceBySize()
			}
			ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: 1}
			ctx.Backends = set.Backends()
			ctx.Net = set.Net()
			res, err := engine.Run(ctx, sandwich(ctx, set.Backends(), set.Route))
			if err != nil {
				t.Fatal(err)
			}
			got := renderRows(res)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("TCP-sharded run differs from serial (%d vs %d rows)", len(got), len(want))
			}
			if cur := ctx.Mem.Current(); cur != 0 {
				t.Fatalf("%d bytes still accounted after Close", cur)
			}
			if st := set.Net().Stats(); st.Runs < 64 || st.Bytes == 0 {
				t.Fatalf("loopback run recorded implausible transport stats: %+v", st)
			}
			if err := ctx.CloseBackends(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if srv1.UnitsDone()+srv2.UnitsDone() < 64 {
		t.Fatalf("workers completed %d+%d units, want 64 (32 groups × 2 runs)",
			srv1.UnitsDone(), srv2.UnitsDone())
	}
	if srv1.UnitsDone() == 0 || srv2.UnitsDone() == 0 {
		t.Fatalf("one worker executed nothing (%d / %d) — routing is not spreading groups",
			srv1.UnitsDone(), srv2.UnitsDone())
	}
	srv1.Close()
	srv2.Close()
	if cur := srv1.Mem().Current(); cur != 0 {
		t.Fatalf("worker 1 still accounts %d bytes after close", cur)
	}
	waitGoroutines(t, base+2)
}

// TestFailoverReroutesKilledWorker is the failover acceptance test: one of
// two workers is killed mid-stream — deterministically, after completing
// its third unit — and the run must still match the serial oracle byte for
// byte, because every failed and future unit of the dead worker reroutes to
// the survivor. No goroutines or connections may leak, and the query-side
// tracker must balance.
func TestFailoverReroutesKilledWorker(t *testing.T) {
	base := runtime.NumGoroutine()
	serialCtx := &engine.Context{Mem: &engine.MemTracker{}}
	serial, err := engine.Run(serialCtx, sandwich(serialCtx, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(serial)

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv1, addr1 := startWorker(t, 2)
			srv2, addr2 := startWorker(t, 2)
			var killed atomic.Bool
			srv2.OnUnitDone = func(total int64) {
				if total == 3 && !killed.Swap(true) {
					go srv2.Close() // async: Close joins the calling unit task
				}
			}
			set, err := DialSet([]string{addr1, addr2}, PaperNet())
			if err != nil {
				t.Fatal(err)
			}
			ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: workers}
			ctx.Backends = set.Backends()
			ctx.Net = set.Net()
			res, err := engine.Run(ctx, sandwich(ctx, set.Backends(), set.Route))
			if err != nil {
				t.Fatalf("run with a killed worker failed instead of failing over: %v", err)
			}
			got := renderRows(res)
			if len(got) != len(want) {
				t.Fatalf("rerouted run returns %d rows, serial %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d = %s after failover, serial has %s", i, got[i], want[i])
				}
			}
			if !killed.Load() {
				t.Fatal("worker 2 was never killed — the reroute path went unexercised")
			}
			if cur := ctx.Mem.Current(); cur != 0 {
				t.Fatalf("%d bytes still accounted after failover run", cur)
			}
			if err := ctx.CloseBackends(); err != nil {
				t.Fatal(err)
			}
			srv1.Close()
			srv2.Close()
		})
	}
	waitGoroutines(t, base+2)
}

// renderBatch renders a batch's rows as display strings, for comparing
// emitted unit output against a direct fragment run.
func renderBatch(b *vector.Batch) []string {
	out := make([]string, b.Len())
	for i := range out {
		row := make([]string, len(b.Cols))
		for c, col := range b.Cols {
			row[c] = col.GetString(i)
		}
		out[i] = fmt.Sprint(row)
	}
	return out
}

// TestFailoverExhaustion checks the terminal cases of a set with no
// survivors. By default the unit degrades gracefully: it runs on the
// coordinator's own copy of the fragment, byte-identical to a worker run,
// with the downgrade counted and every dead slot left probing for
// re-admission. Under NoLocalFallback it completes with an
// ErrBackendDown-wrapped error instead of hanging.
func TestFailoverExhaustion(t *testing.T) {
	base := runtime.NumGoroutine()
	frag := testFragment(t)
	probe, build := testStreams(1, 2)
	unit := func() *engine.GroupUnit {
		return &engine.GroupUnit{GID: 0,
			Probe: []*vector.Batch{probe.batches[0], probe.batches[1]},
			Build: []*vector.Batch{build.batches[0]},
		}
	}
	var want []string
	if err := frag.Run(unit(), func(b *vector.Batch) {
		want = append(want, renderBatch(b)...)
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test unit joins to no rows — vacuous test")
	}

	t.Run("local-fallback", func(t *testing.T) {
		srv1, addr1 := startWorker(t, 1)
		srv2, addr2 := startWorker(t, 1)
		set, err := DialSet([]string{addr1, addr2}, PaperNet())
		if err != nil {
			t.Fatal(err)
		}
		srv1.Close()
		srv2.Close()
		var got []string
		done := make(chan error, 1)
		set.Backends()[0].RunGroup(unit(), frag,
			func(b *vector.Batch) { got = append(got, renderBatch(b)...) },
			func(err error) { done <- err })
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("all-down unit failed instead of degrading to the local fragment: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("unit with no surviving backends never completed")
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("local fallback produced %d rows != direct run's %d", len(got), len(want))
		}
		if n := set.LocalFallbackUnits(); n != 1 {
			t.Fatalf("local fallback recorded %d units, want 1", n)
		}
		for i, h := range set.Health() {
			if h.State != "probing" || h.Downs < 1 {
				t.Fatalf("slot %d after all-down: %+v, want probing with a down recorded", i, h)
			}
		}
		for _, b := range set.Backends() {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("no-fallback", func(t *testing.T) {
		srv1, addr1 := startWorker(t, 1)
		srv2, addr2 := startWorker(t, 1)
		set, err := DialSetConfig([]string{addr1, addr2}, PaperNet(), SetConfig{NoLocalFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		srv1.Close()
		srv2.Close()
		done := make(chan error, 1)
		set.Backends()[0].RunGroup(unit(), frag, func(*vector.Batch) {}, func(err error) { done <- err })
		select {
		case err := <-done:
			if !errors.Is(err, ErrBackendDown) {
				t.Fatalf("exhausted failover returned %v, want an ErrBackendDown-wrapped error", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("unit with no surviving backends never completed")
		}
		for _, b := range set.Backends() {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
	waitGoroutines(t, base+2)
}

// TestDialFailureIsBackendDown checks refused dials carry the reroute
// marker, and that a dead member no longer fails DialSet: its slot joins
// the set down and probing, and units preferring it route to the survivor.
func TestDialFailureIsBackendDown(t *testing.T) {
	base := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	if _, err := Dial(dead, nil); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("dial to a dead address returned %v, want ErrBackendDown", err)
	}
	srv, addr := startWorker(t, 1)
	set, err := DialSet([]string{addr, dead}, PaperNet())
	if err != nil {
		t.Fatalf("DialSet with a dead member failed instead of admitting it down: %v", err)
	}
	if h := set.Health(); h[1].State != "probing" || h[1].Downs != 1 {
		t.Fatalf("dead member health %+v, want probing with one down transition", h[1])
	}
	frag := testFragment(t)
	probe, _ := testStreams(1, 2)
	done := make(chan error, 1)
	rows := 0
	set.Backends()[1].RunGroup(
		&engine.GroupUnit{GID: 0, Probe: []*vector.Batch{probe.batches[0]}},
		frag, func(b *vector.Batch) { rows += b.Len() }, func(err error) { done <- err })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unit preferring the dead slot failed instead of routing around it: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unit preferring the dead slot never completed")
	}
	if srv.UnitsDone() != 1 {
		t.Fatalf("survivor served %d units, want the rerouted 1", srv.UnitsDone())
	}
	for _, b := range set.Backends() {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	waitGoroutines(t, base+2)
}

// TestHelloVersionMismatch locks in the versioning rule of docs/WIRE.md: a
// worker answers a mismatched client hello with its own version and drops
// the session without executing anything.
func TestHelloVersionMismatch(t *testing.T) {
	_, addr := startWorker(t, 1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := append(frameBuf(), ProtoMagic...)
	hello = binary.LittleEndian.AppendUint16(hello, ProtoVersion+41)
	if err := writeFrame(conn, nil, 0, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, typ, payload, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("no hello reply before drop: %v", err)
	}
	if typ != frameHello || binary.LittleEndian.Uint16(payload) != ProtoVersion {
		t.Fatalf("hello reply type %d version %d, want the worker's real version %d",
			typ, binary.LittleEndian.Uint16(payload), ProtoVersion)
	}
	if _, _, _, err := readFrame(conn, nil); err != io.EOF {
		t.Fatalf("worker kept a mismatched session open (read returned %v, want EOF)", err)
	}
}

// TestSimWorkerMeters checks the remote box meters its own hash tables: a
// sharded run charges the worker-side tracker, not (beyond in-flight unit
// clones) the query-side one, and the worker tracker balances after the
// run.
func TestSimWorkerMeters(t *testing.T) {
	ctx := &engine.Context{Mem: &engine.MemTracker{}, Workers: 1}
	sim := NewSim(2, iosim.NewAccountant(PaperNet()))
	ctx.Backends = []engine.Backend{sim}
	res, err := engine.Run(ctx, sandwich(ctx, ctx.Backends, func(uint64, int64) int { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() == 0 {
		t.Fatal("no rows — vacuous test")
	}
	if peak := sim.Worker().Mem().Peak(); peak <= 0 {
		t.Fatalf("worker-side tracker saw no hash-table memory (peak %d)", peak)
	}
	if cur := sim.Worker().Mem().Current(); cur != 0 {
		t.Fatalf("worker-side tracker still accounts %d bytes", cur)
	}
	if done := sim.Worker().UnitsDone(); done != 32 {
		t.Fatalf("worker completed %d units for 32 groups", done)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHelloAuthToken locks in the v3 auth rule: a session presenting the
// worker's shared secret works end to end, any mismatch — wrong token, or a
// token where none is configured — is dropped without a reply.
func TestHelloAuthToken(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(1)
	srv.SetAuthToken("sesame")
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()

	b, err := DialToken(addr, "sesame", nil)
	if err != nil {
		t.Fatalf("matching token rejected: %v", err)
	}
	if err := b.(*client).Ping(5 * time.Second); err != nil {
		t.Fatalf("authenticated session not live: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := DialToken(addr, "wrong", nil); err == nil {
		t.Fatal("wrong token produced a session")
	}
	if _, err := Dial(addr, nil); err == nil {
		t.Fatal("missing token produced a session")
	}

	// The reverse mismatch: a tokenless worker only accepts tokenless peers.
	_, open := startWorker(t, 1)
	if _, err := DialToken(open, "extra", nil); err == nil {
		t.Fatal("unexpected token accepted by a tokenless worker")
	}
	if b, err := Dial(open, nil); err != nil {
		t.Fatalf("tokenless dial to a tokenless worker: %v", err)
	} else {
		b.Close()
	}
}

// TestFragmentContentDedupe checks the session-level fragment cache: two
// Fragment values with identical wire forms (distinct pointers, as the plan
// cache produces for repeated queries) ship one setup frame and share one
// fragment id, including via Preload.
func TestFragmentContentDedupe(t *testing.T) {
	_, addr := startWorker(t, 1)
	b, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := b.(*client)
	defer cl.Close()
	probe, build := testStreams(1, 2)
	run := func(frag *engine.Fragment) {
		t.Helper()
		done := make(chan error, 1)
		cl.RunGroup(&engine.GroupUnit{GID: 0,
			Probe: []*vector.Batch{probe.batches[0]},
			Build: []*vector.Batch{build.batches[0]},
		}, frag, func(*vector.Batch) {}, func(err error) { done <- err })
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("unit never completed")
		}
	}
	frag1, frag2 := testFragment(t), testFragment(t)
	run(frag1)
	run(frag2)
	frag3 := testFragment(t)
	if err := cl.Preload(frag3); err != nil {
		t.Fatal(err)
	}
	cl.wmu.Lock()
	fid1, fid2, fid3, next := cl.frags[frag1], cl.frags[frag2], cl.frags[frag3], cl.nextFrag
	cl.wmu.Unlock()
	if fid1 != fid2 || fid1 != fid3 {
		t.Fatalf("identical fragments got ids %d/%d/%d, want one shared id", fid1, fid2, fid3)
	}
	if next != 1 {
		t.Fatalf("shipped %d setup frames for identical fragments, want 1", next)
	}

	// A genuinely different fragment must not alias.
	diff := testFragment(t)
	diff.Type = engine.SemiJoin
	run(diff)
	cl.wmu.Lock()
	fidDiff, next := cl.frags[diff], cl.nextFrag
	cl.wmu.Unlock()
	if fidDiff == fid1 || next != 2 {
		t.Fatalf("distinct fragment aliased (id %d vs %d, %d setups)", fidDiff, fid1, next)
	}
}
