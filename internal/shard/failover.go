package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bdcc/internal/engine"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// Failover: unit-level retry across a backend set, plus the recovery half —
// re-admission and graceful degradation. Every backend of a set is wrapped;
// a unit routed to wrapper i first runs on backend i, and when the attempt
// fails with an ErrBackendDown-wrapped error (connection loss, a killed
// worker, a refused dial) the unit is rerouted to the next surviving
// backend, excluding every backend that already failed it in its current
// incarnation. Work errors (frameDone text) are never retried: a
// deterministic group join that failed once fails identically everywhere,
// so rerouting would only mask the error.
//
// A backend observed down is marked so later units skip it up front, and —
// when the slot has a dialable address — a health prober (health.go) starts
// re-dialing it under bounded jittered backoff. On reconnect the prober
// re-ships the session's plan fragments over the fresh connection and
// re-admits the slot: its epoch advances, so the per-unit exclusion chain
// (which records the epoch a slot failed at) resets and later units — even
// ones that failed on the dead incarnation — can land on the recovered
// worker again.
//
// When no backend survives a unit's exclusion chain, the set degrades
// gracefully instead of failing the query: the unit runs on the
// coordinator's own copy of the fragment (every sharded fragment is also
// prepared query-side), and a counter records the downgrade.
//
// Result batches stream straight through to the real emit as they arrive —
// buffering them until done would hide a whole window of unit output from
// the exchange's buffer cap and the query's memory meter. What makes
// streaming retry-safe is determinism: a group join's output is a pure
// function of (fragment, unit), emitted sequentially, so a retry — on a
// survivor, a re-admitted worker, or the local fallback — replays the exact
// batch sequence the failed attempt produced and the wrapper simply skips
// the prefix that was already delivered. A backend that died halfway
// through a group therefore contributes exactly its delivered prefix, and
// the survivor contributes the rest — byte-identical to an undisturbed run.

// failover is the shared state of one wrapped backend set.
type failover struct {
	mu            sync.Mutex
	slots         []*slot
	health        []engine.BackendHealth
	frags         map[*engine.Fragment]struct{}
	fallbackUnits int64
	closed        bool

	// parts registers each partitioned table's per-slot shipments, partsVer
	// counting registrations: a re-admission ships the registry to the fresh
	// session and re-checks the version before publishing, so a partition
	// registered concurrently is never missing from an admitted worker.
	// scanIO, when enabled, holds the per-slot hooks fed each scan unit's
	// done-frame read stats.
	parts    map[string][]*partShipment
	partsVer uint64
	scanIO   []func(runs, pages, bytes int64)

	fallback bool // run orphaned units locally instead of erroring
	probe    ProbeConfig
	token    string // auth token the prober presents on re-dials
	acct     *iosim.Accountant
	rng      *rand.Rand

	ctx     context.Context
	cancel  context.CancelFunc
	probers sync.WaitGroup
}

// slot is one position of the set: the live backend (nil while down with no
// connection), the address the prober re-dials ("" = not reconnectable, e.g.
// a simulated remote), and the down → probing → up state. epoch counts
// re-admissions: a unit excludes (slot, epoch) pairs, so a slot that failed
// it becomes eligible again once a fresh incarnation is admitted.
type slot struct {
	backend engine.Backend
	addr    string
	workers int
	down    bool
	probing bool
	epoch   uint64
}

// failoverBackend is the wrapper at one set index; it implements
// engine.Backend and preserves 1:1 index alignment with the router.
type failoverBackend struct {
	f   *failover
	idx int
}

// failoverOptions configures newFailover beyond the slot list.
type failoverOptions struct {
	localFallback bool
	probe         ProbeConfig
	token         string
	acct          *iosim.Accountant
}

// NewFailover wraps backends with unit-level failover, returning a slice
// index-aligned with the input (wrapper i prefers backend i). Closing any
// wrapper closes the whole set's probers; closing wrapper i closes backend
// i. This plain form has neither re-admission (no addresses to re-dial) nor
// local fallback — exhaustion of the set fails the unit with
// ErrBackendDown, as PR 5 shipped it.
func NewFailover(backends []engine.Backend) []engine.Backend {
	slots := make([]*slot, len(backends))
	for i, b := range backends {
		slots[i] = &slot{backend: b, workers: b.Workers()}
	}
	out, _ := newFailover(slots, failoverOptions{})
	return out
}

// newFailover builds the wrapped set over prepared slots and starts a
// prober for every slot that is already down (a worker unreachable at dial
// time joins the set down and is re-admitted when it comes up).
func newFailover(slots []*slot, opt failoverOptions) ([]engine.Backend, *failover) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &failover{
		slots:    slots,
		health:   make([]engine.BackendHealth, len(slots)),
		frags:    make(map[*engine.Fragment]struct{}),
		parts:    make(map[string][]*partShipment),
		fallback: opt.localFallback,
		probe:    opt.probe.withDefaults(),
		token:    opt.token,
		acct:     opt.acct,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		ctx:      ctx,
		cancel:   cancel,
	}
	out := make([]engine.Backend, len(slots))
	for i, s := range slots {
		out[i] = &failoverBackend{f: f, idx: i}
		if s.backend == nil {
			s.down = true
			f.health[i].Downs++
			if s.addr != "" {
				s.probing = true
				f.startProber(i)
			}
		}
	}
	return out, f
}

// startProber launches the probe loop of slot i. Callers hold f.mu or own
// the set exclusively (construction); slot i's probing flag is already set.
func (f *failover) startProber(i int) {
	f.probers.Add(1)
	go func() {
		defer f.probers.Done()
		f.probeLoop(i)
	}()
}

// Workers implements engine.Backend. The worker count is the slot's cached
// one, so a down slot still reports its last-known parallelism (sizing the
// exchange lookahead must not collapse mid-query).
func (b *failoverBackend) Workers() int {
	b.f.mu.Lock()
	defer b.f.mu.Unlock()
	if w := b.f.slots[b.idx].workers; w > 1 {
		return w
	}
	return 1
}

// Close implements engine.Backend. The first wrapper closed shuts the whole
// set's recovery machinery down — the context cancels, stopping every
// prober mid-backoff or mid-dial — then each wrapper closes its own slot's
// backend.
func (b *failoverBackend) Close() error {
	f := b.f
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.cancel()
	}
	s := f.slots[b.idx]
	bk := s.backend
	s.backend = nil
	f.mu.Unlock()
	f.probers.Wait()
	if bk != nil {
		return bk.Close()
	}
	return nil
}

// RunGroup implements engine.Backend: run the unit on the preferred
// backend, rerouting to survivors on transport failure. The fragment is
// remembered for the session so re-admission can re-ship it to recovered
// workers.
func (b *failoverBackend) RunGroup(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error)) {
	f := b.f
	if frag != nil {
		f.mu.Lock()
		f.frags[frag] = struct{}{}
		f.mu.Unlock()
	}
	t := &try{
		u: u, frag: frag, emit: emit, done: done,
		excluded: make([]uint64, len(f.slots)),
		home:     b.idx,
		pinned:   u.ScanRanges != nil,
	}
	f.attempt(t, b.idx, nil)
}

// partShipper is the capability surface partition shipping needs from a
// slot's backend: the network client implements it (and the simulated
// remote inherits it); backends without it — a plain local pass-through —
// simply never receive partitions, and their scan units fail Prepare as
// work errors.
type partShipper interface {
	ShipPartition(key string, manifest []byte, data [][]byte, saved []int64) error
	SetScanIO(fn func(runs, pages, bytes int64))
}

// shipPartition registers table's per-slot shipments (index-aligned with
// the slots) and sends each live slot its own. Transport errors are
// deliberately not handled here: a failed ship breaks that session, the
// slot's units fail with ErrBackendDown, and re-admission re-ships the
// whole registry over the fresh connection. Idempotent per table.
func (f *failover) shipPartition(table string, ships []*partShipment) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	if _, done := f.parts[table]; done {
		f.mu.Unlock()
		return
	}
	f.parts[table] = ships
	f.partsVer++
	type target struct {
		cl   partShipper
		ship *partShipment
	}
	var targets []target
	for i, s := range f.slots {
		if s.down || s.backend == nil || ships[i] == nil {
			continue
		}
		if cl, ok := s.backend.(partShipper); ok {
			targets = append(targets, target{cl, ships[i]})
		}
	}
	f.mu.Unlock()
	for _, t := range targets {
		t.cl.ShipPartition(t.ship.key, t.ship.manifest, t.ship.data, t.ship.saved)
	}
}

// setScanIO installs the per-slot scan-read-stats hooks (index-aligned with
// the slots) on every live session; re-admissions install them on fresh
// sessions before publishing. First call wins — the hooks feed long-lived
// per-worker accountants, not per-query state.
func (f *failover) setScanIO(hooks []func(runs, pages, bytes int64)) {
	f.mu.Lock()
	if f.scanIO != nil || f.closed {
		f.mu.Unlock()
		return
	}
	f.scanIO = hooks
	type target struct {
		cl   partShipper
		hook func(runs, pages, bytes int64)
	}
	var targets []target
	for i, s := range f.slots {
		if s.backend == nil || hooks[i] == nil {
			continue
		}
		if cl, ok := s.backend.(partShipper); ok {
			targets = append(targets, target{cl, hooks[i]})
		}
	}
	f.mu.Unlock()
	for _, t := range targets {
		t.cl.SetScanIO(t.hook)
	}
}

// try is the cross-attempt state of one unit: the delivered-batch prefix
// and the exclusion chain. excluded[i] holds epoch+1 of slot i at the
// attempt that failed on it (0 = never failed there), so a re-admitted
// incarnation — a higher epoch — is eligible again. A pinned try (a scan
// unit) only ever runs on its home slot: the unit's partition lives there
// and nowhere else among the workers, so on failure the only retry targets
// are a re-admitted incarnation of home (which re-ships the partition
// first) and the coordinator's local fallback, which holds the full table.
type try struct {
	u         *engine.GroupUnit
	frag      *engine.Fragment
	emit      func(*vector.Batch)
	done      func(error)
	delivered int
	excluded  []uint64
	attempts  int
	home      int
	pinned    bool
}

// pick returns the first usable slot at or after pref (cyclically): not
// down, holding a live backend, and not excluded by this unit's chain at
// its current epoch. It returns the backend and epoch observed under the
// lock, so a concurrent readmit between pick and the attempt's failure is
// detected as a stale epoch.
func (f *failover) pick(pref int, t *try) (int, engine.Backend, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.pinned {
		s := f.slots[t.home]
		if s.down || s.backend == nil || t.excluded[t.home] == s.epoch+1 {
			return -1, nil, 0
		}
		return t.home, s.backend, s.epoch
	}
	n := len(f.slots)
	for k := 0; k < n; k++ {
		i := (pref + k) % n
		s := f.slots[i]
		if s.down || s.backend == nil {
			continue
		}
		if t.excluded[i] == s.epoch+1 {
			continue
		}
		return i, s.backend, s.epoch
	}
	return -1, nil, 0
}

// attempt runs one try of the unit, chaining the next try from the done
// callback on transport failure. delivered counts the batches already
// passed to the real emit across attempts: a retry replays the unit's
// deterministic batch sequence and skips that prefix, so the merged output
// never duplicates and never misses a batch. The backend contract
// serializes a unit's emit and done calls, so the try needs no lock.
// Exactly-once delivery of done holds: every chain ends in exactly one
// call — success, a non-retryable error, local fallback, or exhaustion.
func (f *failover) attempt(t *try, pref int, lastErr error) {
	// Epoch churn bounds each (slot, epoch) pair to one attempt, but a
	// worker flapping in lockstep with retries could in principle chain
	// forever; cap the chain and degrade.
	t.attempts++
	exhausted := t.attempts > 2*len(f.slots)+2
	i, bk, epoch := -1, engine.Backend(nil), uint64(0)
	if !exhausted {
		i, bk, epoch = f.pick(pref, t)
	}
	if i < 0 {
		if f.fallback && t.frag != nil {
			f.runLocal(t)
			return
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("%w: no surviving backend for group %d", ErrBackendDown, t.u.GID)
		}
		t.done(lastErr)
		return
	}
	seen := 0
	bk.RunGroup(t.u, t.frag,
		func(b *vector.Batch) {
			seen++
			if seen > t.delivered {
				t.emit(b)
				t.delivered = seen
			}
		},
		func(err error) {
			if err == nil {
				if epoch > 0 {
					// A re-admitted incarnation served this unit: the proof
					// the chaos harness asserts on.
					f.mu.Lock()
					f.health[i].ReadmitUnits++
					f.mu.Unlock()
				}
				t.done(nil)
				return
			}
			if !errors.Is(err, ErrBackendDown) {
				t.done(err) // a work error: deterministic, not worth rerouting
				return
			}
			f.noteFailure(i, epoch)
			t.excluded[i] = epoch + 1
			f.attempt(t, (i+1)%len(f.slots), err)
		})
}

// noteFailure records a failed attempt on slot i at the given epoch: the
// retry counter always advances, but the slot is only marked down if the
// failing connection is still the slot's current incarnation — a failure
// observed on a connection that was already replaced by a readmit must not
// take the fresh one down. Marking down starts the prober when the slot is
// reconnectable.
func (f *failover) noteFailure(i int, epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.health[i].Retries++
	s := f.slots[i]
	if s.epoch != epoch || s.down {
		return
	}
	s.down = true
	f.health[i].Downs++
	if s.addr != "" && !s.probing && !f.closed {
		s.probing = true
		f.startProber(i)
	}
}

// readmitResult is the outcome of offering a fresh connection to a slot.
type readmitResult int

const (
	readmitOK     readmitResult = iota // published; the prober is done
	readmitRetry                       // preload failed; keep probing
	readmitClosed                      // the set closed; stop probing
)

// readmit re-admits slot i over the fresh connection cl: the slot's table
// partitions and the session's plan fragments are re-shipped first (a
// recovered worker has an empty registry of both, units may reference any
// fragment of the query, and a scan unit pinned to this slot needs its
// partition back before it can land), then the slot is published up with
// its epoch advanced — resetting every unit's exclusion of it. A partition
// registered while shipping was under way is caught by the version re-check
// and shipped in another pass (the client's per-session dedup makes the
// re-pass cheap). The previous dead backend, if any, is closed.
func (f *failover) readmit(i int, cl *client) readmitResult {
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return readmitClosed
		}
		ver := f.partsVer
		var ships []*partShipment
		for _, perSlot := range f.parts {
			if perSlot[i] != nil {
				ships = append(ships, perSlot[i])
			}
		}
		var hook func(runs, pages, bytes int64)
		if f.scanIO != nil {
			hook = f.scanIO[i]
		}
		frags := make([]*engine.Fragment, 0, len(f.frags))
		for fr := range f.frags {
			frags = append(frags, fr)
		}
		f.mu.Unlock()
		if hook != nil {
			cl.SetScanIO(hook)
		}
		for _, sh := range ships {
			if err := cl.ShipPartition(sh.key, sh.manifest, sh.data, sh.saved); err != nil {
				return readmitRetry
			}
		}
		for _, fr := range frags {
			if err := cl.Preload(fr); err != nil {
				return readmitRetry
			}
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return readmitClosed
		}
		if f.partsVer != ver {
			f.mu.Unlock()
			continue
		}
		s := f.slots[i]
		old := s.backend
		s.backend = cl
		s.workers = cl.Workers()
		s.down, s.probing = false, false
		s.epoch++
		f.health[i].Readmits++
		f.mu.Unlock()
		if old != nil {
			old.Close()
		}
		return readmitOK
	}
}

// runLocal is graceful degradation: with no backend surviving the unit's
// exclusion chain, the unit runs on the coordinator's own copy of the
// fragment (sharded fragments are always prepared query-side too) instead
// of failing the query. The same delivered-prefix skip applies, so a unit
// that streamed half its batches from a now-dead worker finishes locally
// byte-identically. Runs on its own goroutine — the caller may be a
// client read loop, which must not block on local join work.
func (f *failover) runLocal(t *try) {
	f.mu.Lock()
	f.fallbackUnits++
	f.mu.Unlock()
	go func() {
		seen := 0
		t.done(t.frag.Run(t.u, func(b *vector.Batch) {
			seen++
			if seen > t.delivered {
				t.emit(b)
				t.delivered = seen
			}
		}))
	}()
}

// Health returns a snapshot of the per-slot failover health counters and
// prober states.
func (f *failover) Health() []engine.BackendHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]engine.BackendHealth, len(f.health))
	copy(out, f.health)
	for i, s := range f.slots {
		switch {
		case !s.down:
			out[i].State = "up"
		case s.probing:
			out[i].State = "probing"
		default:
			out[i].State = "down"
		}
	}
	return out
}

// FallbackUnits returns how many units ran on the coordinator's local
// fallback because no remote survived them.
func (f *failover) FallbackUnits() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fallbackUnits
}
