package shard

import (
	"errors"
	"fmt"
	"sync"

	"bdcc/internal/engine"
	"bdcc/internal/vector"
)

// Failover: unit-level retry across a backend set. Every backend of a set
// is wrapped; a unit routed to wrapper i first runs on backend i, and when
// the attempt fails with an ErrBackendDown-wrapped error (connection loss,
// a killed worker, a refused dial) the unit is rerouted to the next
// surviving backend, excluding every backend that already failed it — the
// reroute never revisits a failed attempt, and a backend observed down is
// marked so later units skip it up front. Work errors (frameDone text) are
// never retried: a deterministic group join that failed once fails
// identically everywhere, so rerouting would only mask the error.
//
// Result batches stream straight through to the real emit as they arrive —
// buffering them until done would hide a whole window of unit output from
// the exchange's buffer cap and the query's memory meter. What makes
// streaming retry-safe is determinism: a group join's output is a pure
// function of (fragment, unit), emitted sequentially, so a retry replays
// the exact batch sequence the failed attempt produced and the wrapper
// simply skips the prefix that was already delivered. A backend that died
// halfway through a group therefore contributes exactly its delivered
// prefix, and the survivor contributes the rest — byte-identical to an
// undisturbed run.

// failover is the shared state of one wrapped backend set.
type failover struct {
	backends []engine.Backend
	mu       sync.Mutex
	down     []bool
}

// failoverBackend is the wrapper at one set index; it implements
// engine.Backend and preserves 1:1 index alignment with the router.
type failoverBackend struct {
	f   *failover
	idx int
}

// NewFailover wraps backends with unit-level failover, returning a slice
// index-aligned with the input (wrapper i prefers backend i). Closing a
// wrapper closes its underlying backend.
func NewFailover(backends []engine.Backend) []engine.Backend {
	f := &failover{backends: backends, down: make([]bool, len(backends))}
	out := make([]engine.Backend, len(backends))
	for i := range backends {
		out[i] = &failoverBackend{f: f, idx: i}
	}
	return out
}

// Workers implements engine.Backend.
func (b *failoverBackend) Workers() int { return b.f.backends[b.idx].Workers() }

// Close implements engine.Backend, closing the underlying backend.
func (b *failoverBackend) Close() error { return b.f.backends[b.idx].Close() }

// RunGroup implements engine.Backend: run the unit on the preferred
// backend, rerouting to survivors on transport failure.
func (b *failoverBackend) RunGroup(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error)) {
	delivered := 0
	b.f.attempt(u, frag, emit, done, &delivered, b.idx, make([]bool, len(b.f.backends)), nil)
}

// pick returns the first backend index at or after pref (cyclically) that
// is neither excluded for this unit nor marked down, or -1 when none
// survives.
func (f *failover) pick(pref int, excluded []bool) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.backends)
	for k := 0; k < n; k++ {
		i := (pref + k) % n
		if !excluded[i] && !f.down[i] {
			return i
		}
	}
	return -1
}

func (f *failover) markDown(i int) {
	f.mu.Lock()
	f.down[i] = true
	f.mu.Unlock()
}

// attempt runs one try of the unit, chaining the next try from the done
// callback on transport failure. delivered counts the batches already
// passed to the real emit across attempts: a retry replays the unit's
// deterministic batch sequence and skips that prefix, so the merged output
// never duplicates and never misses a batch. The backend contract
// serializes a unit's emit and done calls, so delivered needs no lock.
// Exactly-once delivery of done holds: every chain ends in exactly one
// call — success, a non-retryable error, or exhaustion of surviving
// backends.
func (f *failover) attempt(u *engine.GroupUnit, frag *engine.Fragment, emit func(*vector.Batch), done func(error), delivered *int, pref int, excluded []bool, lastErr error) {
	i := f.pick(pref, excluded)
	if i < 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("%w: no surviving backend for group %d", ErrBackendDown, u.GID)
		}
		done(lastErr)
		return
	}
	seen := 0
	f.backends[i].RunGroup(u, frag,
		func(b *vector.Batch) {
			seen++
			if seen > *delivered {
				emit(b)
				*delivered = seen
			}
		},
		func(err error) {
			if err == nil {
				done(nil)
				return
			}
			if !errors.Is(err, ErrBackendDown) {
				done(err) // a work error: deterministic, not worth rerouting
				return
			}
			f.markDown(i)
			excluded[i] = true
			f.attempt(u, frag, emit, done, delivered, (i+1)%len(f.backends), excluded, err)
		})
}
