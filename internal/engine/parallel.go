package engine

import (
	"runtime"
	"sync"

	"bdcc/internal/vector"
)

// This file is the engine's morsel-driven parallel execution core: an
// order-preserving exchange that fans work out to the query's shared
// scheduler (see scheduler.go) and merges worker output batches back in job
// order. Scans use the morsel form (the job list — split row ranges — is
// known up front, and job tasks are released to the scheduler as the
// consumption window allows), hash joins use the streaming form (a feeder
// goroutine pulls probe batches from the serial child and submits one task
// per job). Because delivery order equals job order, a parallel plan
// produces byte-identical results to its serial counterpart; see the package
// comment for the full threading contract.
//
// Tasks submitted to the shared scheduler never block: backpressure is
// applied at release time (the exchange stops handing out jobs while the
// window is full or the buffer cap is exceeded), not inside running tasks.
// That invariant is what lets one pool serve a whole scan→join→agg pipeline
// without cross-stage deadlock.

// DefaultWorkers is the default of the workers knob: one worker per
// available core.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// morselRows is the number of rows per scan morsel (a multiple of the batch
// size, so morsel cuts preserve batch boundaries).
const morselRows = 16 * vector.BatchSize

// exchangeBufferCap bounds the bytes of produced-but-unconsumed output
// batches an exchange will buffer before it stops releasing further jobs —
// the backpressure that keeps a high-fanout join's parallel peak memory
// within a constant of its serial peak. Jobs already in flight keep posting
// without blocking (their output is bounded by their input), so the cap can
// overshoot by the in-flight window's output; the memory tracker accounts
// the exact buffered bytes either way.
const exchangeBufferCap = 4 << 20

// exchange is the order-preserving merge at the top of every parallel
// operator. Jobs are released (or fed) in sequence; workers post their
// output batches under the job's index; the consumer drains batches strictly
// in job order, inside a job in posting order. A window bounds how far job
// release may run ahead of consumption, bounding both buffered memory and
// the scheduler's in-flight task count.
type exchange struct {
	mu    sync.Mutex
	cond  *sync.Cond
	mem   *MemTracker
	sched Executor
	wg    sync.WaitGroup // stream-form feeder goroutine

	window   int
	results  [][]*vector.Batch // posted output batches, indexed by job
	done     []bool            // job fully produced
	jobs     int               // total jobs; -1 while streaming input is open
	released int               // jobs handed to the scheduler (or claimed by the feeder)
	next     int               // next job to consume
	pos      int               // batches of job `next` already consumed
	charged  int64             // bytes of buffered batches charged to mem
	tasksOut int               // submitted-but-unfinished scheduler tasks
	err      error
	closed   bool

	// run is the morsel-form job body; nil in the streaming form.
	run func(job, worker int, emit func(*vector.Batch)) error
	// onRelease/onFinish are I/O-overlap hooks: called (outside the exchange
	// lock) right before a job's task is submitted and right after its body
	// ran. Grouped scans use them to post the next group's modeled read
	// ahead of the compute and close the overlap window when a group's last
	// morsel completes.
	onRelease func(job int)
	onFinish  func(job int)
}

// newExchange creates an exchange over a task executor — usually the
// context's shared scheduler. The exchange holds an executor retain until
// close. A nil executor is allowed for merge-only exchanges whose jobs all
// run elsewhere (shard backends registered via beginJob); such an exchange
// must never see runMorsels or submitJob.
func newExchange(mem *MemTracker, sched Executor, window int) *exchange {
	e := &exchange{mem: mem, sched: sched, window: window, jobs: -1}
	e.cond = sync.NewCond(&e.mu)
	if sched != nil {
		sched.Retain()
	}
	return e
}

// runMorsels fixes the job count and starts releasing job tasks to the
// scheduler. run(job, worker, emit) is the job body; emitted batches must be
// freshly allocated (the consumer takes ownership).
func (e *exchange) runMorsels(jobs int, run func(job, worker int, emit func(*vector.Batch)) error) {
	e.mu.Lock()
	e.jobs = jobs
	e.run = run
	e.mu.Unlock()
	e.pump(-1)
}

// ensureJob grows the result arrays to cover job. Called with e.mu held.
func (e *exchange) ensureJob(job int) {
	for len(e.results) <= job {
		e.results = append(e.results, nil)
		e.done = append(e.done, false)
	}
}

// pump releases morsel jobs to the scheduler while the consumption window
// and the buffer cap allow, submitting one non-blocking task per job. It is
// called from the consumer (window advanced), from finishing tasks (which
// push the continuation onto their own deque), and once at start.
func (e *exchange) pump(worker int) {
	e.mu.Lock()
	var release []int
	for e.run != nil && !e.closed && e.err == nil &&
		e.released < e.jobs && e.released < e.next+e.window &&
		e.charged <= exchangeBufferCap {
		j := e.released
		e.released++
		e.tasksOut++
		e.ensureJob(j)
		release = append(release, j)
	}
	e.mu.Unlock()
	for _, j := range release {
		if e.onRelease != nil {
			e.onRelease(j)
		}
		j := j
		e.sched.Submit(worker, func(w int) {
			var err error
			if !e.isClosed() {
				err = e.run(j, w, func(b *vector.Batch) { e.post(j, b) })
			}
			if e.onFinish != nil {
				e.onFinish(j)
			}
			e.finish(j, err)
			e.pump(w)
		})
	}
}

// claim hands the streaming feeder the next job index, blocking while the
// in-flight window is full or the buffer cap is exceeded. Only the feeder
// goroutine calls claim — never a scheduler task. ok is false once the input
// is sealed or the exchange shut down.
func (e *exchange) claim() (job int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.closed && e.err == nil &&
		(e.released >= e.next+e.window || e.charged > exchangeBufferCap) &&
		(e.jobs < 0 || e.released < e.jobs) {
		e.cond.Wait()
	}
	if e.closed || e.err != nil || (e.jobs >= 0 && e.released >= e.jobs) {
		return 0, false
	}
	job = e.released
	e.released++
	e.ensureJob(job)
	return job, true
}

// submitJob schedules fn as the body of a claimed job: the task posts its
// emitted batches under the job index and marks the job finished. fn always
// runs, even on a closed exchange (so it can release in-flight accounting);
// it should check isClosed before doing real work. Used by streaming feeders
// (join probes, sandwich group pipelines).
func (e *exchange) submitJob(job int, fn func(worker int, emit func(*vector.Batch)) error) {
	e.mu.Lock()
	e.tasksOut++
	e.mu.Unlock()
	e.sched.Submit(-1, func(w int) {
		err := fn(w, func(b *vector.Batch) { e.post(job, b) })
		e.finish(job, err)
	})
}

// beginJob registers a claimed job whose body runs outside the exchange's
// executor — on a shard backend. The backend posts result batches with post
// and completes the job with finish; registering here is what makes close
// join the backend's completion callback before tearing the exchange down.
func (e *exchange) beginJob() {
	e.mu.Lock()
	e.tasksOut++
	e.mu.Unlock()
}

// post publishes one output batch of job; the consumer may pick it up before
// the job finishes. post never blocks (see the package comment on the
// no-blocking-tasks invariant).
func (e *exchange) post(job int, b *vector.Batch) {
	n := b.Bytes()
	e.mu.Lock()
	if !e.closed {
		e.results[job] = append(e.results[job], b)
		e.charged += n
		e.mem.Grow(n)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// finish marks job complete, recording the first error.
func (e *exchange) finish(job int, err error) {
	e.mu.Lock()
	e.done[job] = true
	e.tasksOut--
	if err != nil && e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// seal fixes the total job count (streaming feeders call it at end of
// input; the morsel form seals up front).
func (e *exchange) seal(jobs int) {
	e.mu.Lock()
	e.jobs = jobs
	e.cond.Broadcast()
	e.mu.Unlock()
}

// setErr records an error raised outside a job (e.g. by the feeder).
func (e *exchange) setErr(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// nextBatch returns the next output batch in job order, nil at end of
// stream. Consuming progress re-pumps the morsel form so freed window room
// turns into new scheduler tasks.
func (e *exchange) nextBatch() (*vector.Batch, error) {
	e.mu.Lock()
	for {
		if e.err != nil {
			e.mu.Unlock()
			return nil, e.err
		}
		if e.next < len(e.results) && e.pos < len(e.results[e.next]) {
			b := e.results[e.next][e.pos]
			e.results[e.next][e.pos] = nil
			e.pos++
			n := b.Bytes()
			e.charged -= n
			e.mem.Shrink(n)
			e.cond.Broadcast() // wakes the feeder blocked on the buffer cap
			e.mu.Unlock()
			e.pump(-1)
			return b, nil
		}
		if e.next < len(e.results) && e.done[e.next] && e.pos >= len(e.results[e.next]) {
			e.results[e.next] = nil
			e.next++
			e.pos = 0
			e.cond.Broadcast() // frees window room for the feeder
			e.mu.Unlock()
			e.pump(-1)
			e.mu.Lock()
			continue
		}
		if e.jobs >= 0 && e.next >= e.jobs {
			e.mu.Unlock()
			return nil, nil
		}
		if e.closed {
			e.mu.Unlock()
			return nil, nil
		}
		e.cond.Wait()
	}
}

// close shuts the exchange down: no further jobs are released, in-flight
// tasks and the feeder are joined, still-buffered batches are released from
// the memory tracker, and the scheduler retain is dropped. It is safe to
// call close before, during, or after consumption — including when the
// consumer abandoned the stream mid-way (early Limit, downstream error), so
// a closed exchange never leaves producers behind.
func (e *exchange) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	// Join the feeder before draining tasks: a feeder that claimed its job
	// before the close may still be assembling it and will submit (or ship
	// to a backend) one last task — only once the feeder has exited is the
	// in-flight count final, so waiting on tasksOut first would let that
	// straggler's accounting release after close returns.
	e.wg.Wait()
	e.mu.Lock()
	for e.tasksOut > 0 {
		e.cond.Wait()
	}
	e.mem.Shrink(e.charged)
	e.charged = 0
	e.results = nil
	e.mu.Unlock()
	if e.sched != nil {
		e.sched.Release()
		e.sched = nil
	}
}

// streamJobRows is the target row count of one streaming job: the feeder
// coalesces consecutive same-group input batches up to this size, so the
// per-job synchronization (claim, task submission, merge) amortizes over
// several batches of probe work.
const streamJobRows = 4 * vector.BatchSize

// runStream starts a feeder goroutine that serially pulls input batches
// (cloning them, since producers reuse their output batch, and coalescing
// same-group neighbors into jobs of up to streamJobRows rows) and submits
// one scheduler task per job running work. Input clones are charged to the
// memory tracker while in flight. pull must not be called concurrently —
// only the feeder calls it.
func (e *exchange) runStream(pull func() (*vector.Batch, error), work func(in *vector.Batch, worker int, emit func(*vector.Batch)) error) {
	e.wg.Add(1)
	go func() { // feeder
		defer e.wg.Done()
		var pending *vector.Batch // cloned lookahead that broke coalescing
		for {
			job, ok := e.claim()
			if !ok {
				return
			}
			cur := pending
			pending = nil
			for cur == nil {
				b, err := pull()
				if err != nil {
					e.setErr(err)
					return
				}
				if b == nil {
					e.seal(job)
					return
				}
				if b.Len() > 0 {
					cur = b.Clone()
				}
			}
			eof := false
			for cur.Len() < streamJobRows {
				b, err := pull()
				if err != nil {
					e.setErr(err)
					return
				}
				if b == nil {
					eof = true
					break
				}
				if b.Len() == 0 {
					continue
				}
				// Jobs stay group-pure so probe output batches keep exact
				// group tags.
				if b.Grouped != cur.Grouped || b.GroupID != cur.GroupID {
					pending = b.Clone()
					break
				}
				cur.AppendBatch(b)
			}
			in := cur
			n := in.Bytes()
			e.mem.Grow(n)
			e.submitJob(job, func(w int, emit func(*vector.Batch)) error {
				var err error
				if !e.isClosed() {
					err = work(in, w, emit)
				}
				e.mem.Shrink(n)
				return err
			})
			if eof {
				e.seal(job + 1)
				return
			}
		}
	}()
}

func (e *exchange) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
