package engine

import (
	"runtime"
	"sync"

	"bdcc/internal/vector"
)

// This file is the engine's morsel-driven parallel execution core: an
// order-preserving exchange that fans work out to a pool of workers and
// merges their output batches back in job order. Scans use the morsel form
// (the job list — split row ranges — is known up front), hash joins use the
// streaming form (a feeder pulls probe batches from the serial child and
// hands them to workers by sequence number). Because delivery order equals
// job order, a parallel plan produces byte-identical results to its serial
// counterpart; see the package comment for the full threading contract.

// DefaultWorkers is the default of the workers knob: one worker per
// available core.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount resolves the context's Workers knob; values below 2 mean
// serial.
func (c *Context) workerCount() int {
	if c == nil || c.Workers < 2 {
		return 1
	}
	return c.Workers
}

// morselRows is the number of rows per scan morsel (a multiple of the batch
// size, so morsel cuts preserve batch boundaries).
const morselRows = 16 * vector.BatchSize

// batchBytes returns the exact footprint of a batch's column data, matching
// the Buffer accounting convention (8 bytes per scalar, 16 bytes plus
// payload per string).
func batchBytes(b *vector.Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		switch c.Kind {
		case vector.String:
			n += 16 * int64(len(c.Str))
			for _, s := range c.Str {
				n += int64(len(s))
			}
		default:
			n += 8 * int64(c.Len())
		}
	}
	return n
}

// copyBatch clones src (including group tags) into a fresh batch, detaching
// it from the producing operator's reuse cycle.
func copyBatch(src *vector.Batch) *vector.Batch {
	out := vector.NewBatch(src.Kinds())
	out.AppendBatch(src)
	out.GroupID = src.GroupID
	out.Grouped = src.Grouped
	return out
}

// exchange is the order-preserving merge at the top of every parallel
// operator. Jobs are claimed (or fed) in sequence; workers post their output
// batches under the job's index; the consumer drains batches strictly in
// job order, inside a job in posting order. A window bounds how far job
// claiming may run ahead of consumption, bounding buffered memory.
type exchange struct {
	mu   sync.Mutex
	cond *sync.Cond
	mem  *MemTracker
	wg   sync.WaitGroup

	window  int
	results [][]*vector.Batch // posted output batches, indexed by job
	done    []bool            // job fully produced
	jobs    int               // total jobs; -1 while streaming input is open
	claimed int               // next job index to claim
	next    int               // next job to consume
	pos     int               // batches of job `next` already consumed
	charged int64             // bytes of buffered batches charged to mem
	err     error
	closed  bool
}

func newExchange(mem *MemTracker, window int) *exchange {
	e := &exchange{mem: mem, window: window, jobs: -1}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// claim hands out the next job index, blocking while the in-flight window is
// full. ok is false once all jobs are claimed or the exchange shut down.
func (e *exchange) claim() (job int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.closed && e.err == nil && e.claimed >= e.next+e.window && (e.jobs < 0 || e.claimed < e.jobs) {
		e.cond.Wait()
	}
	if e.closed || e.err != nil || (e.jobs >= 0 && e.claimed >= e.jobs) {
		return 0, false
	}
	job = e.claimed
	e.claimed++
	for len(e.results) <= job {
		e.results = append(e.results, nil)
		e.done = append(e.done, false)
	}
	return job, true
}

// exchangeBufferCap bounds the bytes of produced-but-unconsumed output
// batches an exchange will buffer before posting workers block — the
// backpressure that keeps a high-fanout join's parallel peak memory within
// a constant of its serial peak. The worker holding the lowest in-flight
// job never blocks (jobs are claimed and handed out in order), so the
// consumer can always drain forward and blocked posters always wake.
const exchangeBufferCap = 4 << 20

// post publishes one output batch of job; the consumer may pick it up before
// the job finishes. Posting blocks while the buffer cap is exceeded, unless
// this job is the one the consumer is currently draining.
func (e *exchange) post(job int, b *vector.Batch) {
	e.mu.Lock()
	for !e.closed && e.err == nil && job != e.next && e.charged > exchangeBufferCap {
		e.cond.Wait()
	}
	if !e.closed {
		e.results[job] = append(e.results[job], b)
		n := batchBytes(b)
		e.charged += n
		e.mem.Grow(n)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// finish marks job complete, recording the first error.
func (e *exchange) finish(job int, err error) {
	e.mu.Lock()
	e.done[job] = true
	if err != nil && e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// seal fixes the total job count (streaming feeders call it at end of
// input; the morsel form seals up front).
func (e *exchange) seal(jobs int) {
	e.mu.Lock()
	e.jobs = jobs
	e.cond.Broadcast()
	e.mu.Unlock()
}

// setErr records an error raised outside a job (e.g. by the feeder).
func (e *exchange) setErr(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// next returns the next output batch in job order, nil at end of stream.
func (e *exchange) nextBatch() (*vector.Batch, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return nil, e.err
		}
		if e.next < len(e.results) && e.pos < len(e.results[e.next]) {
			b := e.results[e.next][e.pos]
			e.results[e.next][e.pos] = nil
			e.pos++
			n := batchBytes(b)
			e.charged -= n
			e.mem.Shrink(n)
			e.cond.Broadcast() // wakes posters blocked on the buffer cap
			return b, nil
		}
		if e.next < len(e.results) && e.done[e.next] && e.pos >= len(e.results[e.next]) {
			e.results[e.next] = nil
			e.next++
			e.pos = 0
			e.cond.Broadcast() // frees window room for claimers
			continue
		}
		if e.jobs >= 0 && e.next >= e.jobs {
			return nil, nil
		}
		if e.closed {
			return nil, nil
		}
		e.cond.Wait()
	}
}

// close shuts the exchange down: claimers stop, workers drain, and any
// still-buffered batches are released from the memory tracker. It is safe
// to call close before, during, or after consumption.
func (e *exchange) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	e.mu.Lock()
	e.mem.Shrink(e.charged)
	e.charged = 0
	e.results = nil
	e.mu.Unlock()
}

// runMorsels starts workers goroutines that claim jobs 0..jobs-1 and run
// run(job, worker, emit), posting emitted batches order-preservingly. The
// emitted batches must be freshly allocated (the consumer takes ownership).
func (e *exchange) runMorsels(jobs, workers int, run func(job, worker int, emit func(*vector.Batch)) error) {
	e.seal(jobs)
	for w := 0; w < workers; w++ {
		w := w
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for {
				job, ok := e.claim()
				if !ok {
					return
				}
				err := run(job, w, func(b *vector.Batch) { e.post(job, b) })
				e.finish(job, err)
			}
		}()
	}
}

// streamJob is one unit handed from a streaming feeder to a worker.
type streamJob struct {
	job int
	in  *vector.Batch
}

// streamJobRows is the target row count of one streaming job: the feeder
// coalesces consecutive same-group input batches up to this size, so the
// per-job synchronization (claim, channel hand-off, merge) amortizes over
// several batches of probe work.
const streamJobRows = 4 * vector.BatchSize

// runStream starts a feeder that serially pulls input batches (copying
// them, since producers reuse their output batch, and coalescing same-group
// neighbors into jobs of up to streamJobRows rows) plus workers running
// work per job. Input copies are charged to the memory tracker while in
// flight. pull must not be called concurrently — only the feeder calls it.
func (e *exchange) runStream(workers int, pull func() (*vector.Batch, error), work func(in *vector.Batch, worker int, emit func(*vector.Batch)) error) {
	inputs := make(chan streamJob, e.window)
	e.wg.Add(1)
	go func() { // feeder
		defer e.wg.Done()
		defer close(inputs)
		var pending *vector.Batch // copied lookahead that broke coalescing
		for {
			job, ok := e.claim()
			if !ok {
				return
			}
			cur := pending
			pending = nil
			for cur == nil {
				b, err := pull()
				if err != nil {
					e.setErr(err)
					return
				}
				if b == nil {
					e.seal(job)
					return
				}
				if b.Len() > 0 {
					cur = copyBatch(b)
				}
			}
			eof := false
			for cur.Len() < streamJobRows {
				b, err := pull()
				if err != nil {
					e.setErr(err)
					return
				}
				if b == nil {
					eof = true
					break
				}
				if b.Len() == 0 {
					continue
				}
				// Jobs stay group-pure so probe output batches keep exact
				// group tags.
				if b.Grouped != cur.Grouped || b.GroupID != cur.GroupID {
					pending = copyBatch(b)
					break
				}
				cur.AppendBatch(b)
			}
			e.mem.Grow(batchBytes(cur))
			inputs <- streamJob{job: job, in: cur}
			if eof {
				e.seal(job + 1)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for sj := range inputs {
				var err error
				if !e.isClosed() {
					err = work(sj.in, w, func(b *vector.Batch) { e.post(sj.job, b) })
				}
				e.mem.Shrink(batchBytes(sj.in))
				e.finish(sj.job, err)
			}
		}()
	}
}

func (e *exchange) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
