package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// Fragment is the sandwich plan fragment: the frozen group-join
// configuration a backend needs to execute GroupUnits of one
// SandwichHashJoin — input schemas, join keys, join type, and the residual
// predicate. It is the unit of plan shipping: a remote backend receives the
// fragment once at query setup (serialized by internal/shard's fragment
// codec), Prepares it, and then executes every unit of that operator against
// it, so only batch data crosses the wire per group.
//
// The first six fields fully describe the plan and are what the wire codec
// carries. The remaining fields are execution-site state: Prepare derives
// the bound form (key indexes, output schema, bound residual), and the
// optional Mem/NoteGroup hooks meter whichever box the fragment runs on —
// the query's trackers locally, the worker daemon's remotely, nil for none.
type Fragment struct {
	// Probe and Build are the probe-side (left) and build-side (right) input
	// schemas; unit batches must conform to them.
	Probe, Build expr.Schema
	// ProbeKeys and BuildKeys are the equated join key columns, by name.
	ProbeKeys, BuildKeys []string
	// Type is the join type.
	Type JoinType
	// Residual is the non-equi predicate evaluated over probe+build rows,
	// nil for none. Prepare binds it against the combined schema, so a
	// decoded (unbound) tree and the operator's already-bound tree are
	// interchangeable — binding resolves to the same indexes either way.
	Residual expr.Expr

	// Mem, when set, meters the per-group hash table exactly like the serial
	// operator meters its own. NoteGroup, when set, receives each
	// materialized build-group's row count (the MaxGroupRows diagnostic).
	Mem       *MemTracker
	NoteGroup func(rows int64)

	probeIdx, buildIdx []int
	out                expr.Schema
	prepared           bool
}

// Prepare derives the fragment's bound execution state: key indexes, the
// output schema, and the bound residual. It must be called once before Run,
// on the box that will run the fragment.
func (f *Fragment) Prepare() error {
	var err error
	f.probeIdx, err = keyIndexes(f.Probe, f.ProbeKeys)
	if err != nil {
		return errOp("fragment probe keys", err)
	}
	f.buildIdx, err = keyIndexes(f.Build, f.BuildKeys)
	if err != nil {
		return errOp("fragment build keys", err)
	}
	switch f.Type {
	case InnerJoin:
		f.out = append(append(expr.Schema{}, f.Probe...), f.Build...)
	case LeftOuterJoin:
		f.out = append(append(expr.Schema{}, f.Probe...), f.Build...)
		f.out = append(f.out, expr.ColMeta{Name: MatchedColName, Kind: vector.Int64})
	case SemiJoin, AntiJoin:
		f.out = append(expr.Schema{}, f.Probe...)
	default:
		return fmt.Errorf("engine: fragment with unknown join type %d", f.Type)
	}
	if f.Residual != nil {
		combined := append(append(expr.Schema{}, f.Probe...), f.Build...)
		if err := expr.Bind(f.Residual, combined); err != nil {
			return errOp("fragment residual", err)
		}
	}
	f.prepared = true
	return nil
}

// OutSchema returns the join's output schema. Only valid after Prepare.
func (f *Fragment) OutSchema() expr.Schema { return f.out }

// Run executes one group unit: build the group's private hash table from the
// unit's build batches, then probe the unit's probe batches exactly like the
// serial sandwich join — same row order, same BatchSize flush boundaries,
// same per-probe-batch cuts — so the merged output is byte-identical to the
// serial join's no matter which box ran the group. It touches only the unit,
// per-call state, and the fragment's frozen configuration (read-only after
// Prepare), so concurrent Runs of one fragment are safe — on a local pool
// task, a simulated remote, or a worker daemon's scheduler alike.
func (f *Fragment) Run(g *GroupUnit, emit func(*vector.Batch)) error {
	if !f.prepared {
		return fmt.Errorf("engine: fragment run before Prepare")
	}
	buf := NewBuffer(f.Build)
	table := newPartJoinTable(1)
	var buildHashes []uint64
	var buildRow int32
	buildEq := func(head int32) bool {
		return keysEqualBufBuf(buf, f.buildIdx, int(buildRow), int(head))
	}
	for _, b := range g.Build {
		base := int32(buf.Len())
		buf.AppendBatch(b)
		buildHashes = vector.HashKeys(b, f.buildIdx, buildHashes)
		for i := 0; i < b.Len(); i++ {
			buildRow = base + int32(i)
			table.Insert(buildHashes[i], buildRow, buildEq)
		}
	}
	tableBytes := buf.Bytes() + table.Bytes()
	f.Mem.Grow(tableBytes)
	defer f.Mem.Shrink(tableBytes)
	if f.NoteGroup != nil {
		f.NoteGroup(int64(buf.Len()))
	}

	var combined *vector.Batch
	var resVec *vector.Vector
	if f.Residual != nil {
		cs := append(append(expr.Schema{}, f.Probe...), f.Build...)
		combined = vector.NewBatch(cs.Kinds())
		resVec = expr.NewScratch(vector.Int64)
	}
	var probeBatch *vector.Batch
	var probeRow int
	probeEq := func(head int32) bool {
		return keysEqualBatchBuf(probeBatch, f.probeIdx, probeRow, buf, f.buildIdx, int(head))
	}
	residualOK := func(b *vector.Batch, li int, bi int32) bool {
		if f.Residual == nil {
			return true
		}
		combined.Reset()
		nl := len(b.Cols)
		for c := 0; c < nl; c++ {
			combined.Cols[c].AppendFrom(b.Cols[c], li)
		}
		buf.WriteRow(combined, int(bi), nl)
		resVec.Reset()
		f.Residual.Eval(combined, resVec)
		return resVec.I64[0] != 0
	}

	var probeHashes []uint64
	var matches []int32
	kinds := f.out.Kinds()
	for _, b := range g.Probe {
		probeBatch = b
		newOut := func() *vector.Batch {
			out := vector.NewBatch(kinds)
			out.Grouped = true
			out.GroupID = b.GroupID
			return out
		}
		out := newOut()
		nl := len(b.Cols)
		probeHashes = vector.HashKeys(b, f.probeIdx, probeHashes)
		for r := 0; r < b.Len(); r++ {
			probeRow = r
			head := table.Lookup(probeHashes[r], probeEq)
			if f.Type == SemiJoin || f.Type == AntiJoin {
				hit := false
				for bi := head; bi >= 0; bi = table.ChainNext(bi) {
					if residualOK(b, r, bi) {
						hit = true
						break
					}
				}
				if hit == (f.Type == SemiJoin) {
					out.AppendRow(b, r)
				}
				if out.Len() >= vector.BatchSize {
					emit(out)
					out = newOut()
				}
				continue
			}
			matches = table.Matches(head, matches[:0])
			emitted := false
			for _, bi := range matches {
				if !residualOK(b, r, bi) {
					continue
				}
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				buf.WriteRow(out, int(bi), nl)
				if f.Type == LeftOuterJoin {
					out.Cols[len(out.Cols)-1].AppendInt64(1)
				}
				emitted = true
				if out.Len() >= vector.BatchSize {
					emit(out)
					out = newOut()
				}
			}
			if !emitted && f.Type == LeftOuterJoin {
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				for c := range f.Build {
					appendZero(out.Cols[nl+c])
				}
				out.Cols[len(out.Cols)-1].AppendInt64(0)
			}
			if out.Len() >= vector.BatchSize {
				emit(out)
				out = newOut()
			}
		}
		// Serial Next flushes at every probe-batch boundary; replicate the
		// cut so batch shapes match byte-for-byte.
		if out.Len() > 0 {
			emit(out)
		}
	}
	return nil
}
