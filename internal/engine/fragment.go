package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// FragKind discriminates what a shipped Fragment executes: the sandwich
// group join (FragJoin, the original and zero-valued kind, so pre-v5 peers
// and old call sites read unchanged) or a partitioned scatter scan
// (FragScan), where units carry row ranges instead of batches and the
// fragment streams pages from the execution site's local copy of the table.
type FragKind uint8

const (
	// FragJoin runs the sandwich group join over the unit's batches.
	FragJoin FragKind = iota
	// FragScan scans the unit's row ranges from site-local table storage.
	FragScan
)

// ScanTable is an execution site's resolution of a scan fragment's table: the
// local stored copy and, when the copy is a shipped partition rather than the
// full table, the mapping from coordinator row space to local row space. A
// nil Map means identity (the site holds the full table at original offsets —
// the coordinator itself, or its failover re-scan).
type ScanTable struct {
	Tab *storage.Table
	Map func(storage.RowRange) (storage.RowRange, error)
}

// ScanSource resolves a table name to the execution site's local storage.
// Each site installs its own: the planner resolves against the coordinator's
// database, a worker daemon against the partitions shipped to its session.
type ScanSource func(table string) (ScanTable, error)

// Fragment is the shipped plan fragment: the frozen per-operator
// configuration a backend needs to execute GroupUnits of one operator. For
// the sandwich group join (FragJoin) that is input schemas, join keys, join
// type, and the residual predicate; for the partitioned scatter scan
// (FragScan) it is the table name, the output schema (whose column names are
// the physical columns to read), and the scan filter carried in Residual. It
// is the unit of plan shipping: a remote backend receives the fragment once
// at query setup (serialized by internal/shard's fragment codec), Prepares
// it, and then executes every unit of that operator against it, so only
// batch data — or, for scans, only row ranges — crosses the wire per group.
//
// The wire fields (Kind through Residual) fully describe the plan and are
// what the wire codec carries. The remaining fields are execution-site
// state: Prepare derives the bound form (key indexes, output schema, bound
// residual, resolved scan table), and the optional hooks meter whichever box
// the fragment runs on — the query's trackers locally, the worker daemon's
// remotely, nil for none.
type Fragment struct {
	// Kind selects the execution shape; the zero value is the group join.
	Kind FragKind
	// Table is the scanned base table's name (FragScan only); Prepare
	// resolves it through Src at the execution site.
	Table string
	// Probe and Build are the probe-side (left) and build-side (right) input
	// schemas; unit batches must conform to them. A scan fragment uses Probe
	// as its output schema — the column names are the physical columns read
	// from Table — and leaves Build empty.
	Probe, Build expr.Schema
	// ProbeKeys and BuildKeys are the equated join key columns, by name
	// (FragJoin only).
	ProbeKeys, BuildKeys []string
	// Type is the join type (FragJoin only).
	Type JoinType
	// Residual is the non-equi predicate evaluated over probe+build rows for
	// a join, or the scan filter evaluated over Probe rows for a scan; nil
	// for none. Prepare binds it against the matching schema, so a decoded
	// (unbound) tree and the operator's already-bound tree are
	// interchangeable — binding resolves to the same indexes either way.
	Residual expr.Expr

	// Mem, when set, meters the per-group hash table exactly like the serial
	// operator meters its own. NoteGroup, when set, receives each
	// materialized build-group's row count (the MaxGroupRows diagnostic).
	Mem       *MemTracker
	NoteGroup func(rows int64)

	// Src resolves Table at the execution site (FragScan only; required
	// before Prepare). Acct, when set, is charged the scan's modeled device
	// reads — the coordinator's accountant on a local or fallback run, nil on
	// a worker, where the site instead calls ScanStats per unit and reports
	// the stats in the unit's done frame.
	Src  ScanSource
	Acct *iosim.Accountant

	probeIdx, buildIdx []int
	out                expr.Schema
	prepared           bool
	scanTab            *storage.Table
	scanMap            func(storage.RowRange) (storage.RowRange, error)
	scanIdx            []int
}

// Prepare derives the fragment's bound execution state: key indexes, the
// output schema, and the bound residual. It must be called once before Run,
// on the box that will run the fragment.
func (f *Fragment) Prepare() error {
	if f.Kind == FragScan {
		return f.prepareScan()
	}
	var err error
	f.probeIdx, err = keyIndexes(f.Probe, f.ProbeKeys)
	if err != nil {
		return errOp("fragment probe keys", err)
	}
	f.buildIdx, err = keyIndexes(f.Build, f.BuildKeys)
	if err != nil {
		return errOp("fragment build keys", err)
	}
	switch f.Type {
	case InnerJoin:
		f.out = append(append(expr.Schema{}, f.Probe...), f.Build...)
	case LeftOuterJoin:
		f.out = append(append(expr.Schema{}, f.Probe...), f.Build...)
		f.out = append(f.out, expr.ColMeta{Name: MatchedColName, Kind: vector.Int64})
	case SemiJoin, AntiJoin:
		f.out = append(expr.Schema{}, f.Probe...)
	default:
		return fmt.Errorf("engine: fragment with unknown join type %d", f.Type)
	}
	if f.Residual != nil {
		combined := append(append(expr.Schema{}, f.Probe...), f.Build...)
		if err := expr.Bind(f.Residual, combined); err != nil {
			return errOp("fragment residual", err)
		}
	}
	f.prepared = true
	return nil
}

// prepareScan resolves the scan fragment against the execution site's local
// storage: the table through Src, the physical column indexes from the Probe
// schema's names, and the filter bound against Probe. The resolved kinds
// must match the shipped schema — a partition shipped for a different build
// of the table would silently produce garbage otherwise.
func (f *Fragment) prepareScan() error {
	if f.Src == nil {
		return fmt.Errorf("engine: scan fragment for %q has no table source", f.Table)
	}
	st, err := f.Src(f.Table)
	if err != nil {
		return errOp("fragment scan source", err)
	}
	cols := make([]string, len(f.Probe))
	for i, c := range f.Probe {
		cols[i] = c.Name
	}
	schema, idx, err := resolveScanSchema(st.Tab, cols)
	if err != nil {
		return errOp("fragment scan columns", err)
	}
	for i, c := range schema {
		if c.Kind != f.Probe[i].Kind {
			return fmt.Errorf("engine: scan fragment column %q is %v locally, %v in plan", c.Name, c.Kind, f.Probe[i].Kind)
		}
	}
	if f.Residual != nil {
		if err := expr.Bind(f.Residual, f.Probe); err != nil {
			return errOp("fragment scan filter", err)
		}
	}
	f.scanTab, f.scanMap, f.scanIdx = st.Tab, st.Map, idx
	f.out = f.Probe
	f.prepared = true
	return nil
}

// OutSchema returns the fragment's output schema. Only valid after Prepare.
func (f *Fragment) OutSchema() expr.Schema { return f.out }

// Run executes one group unit: build the group's private hash table from the
// unit's build batches, then probe the unit's probe batches exactly like the
// serial sandwich join — same row order, same BatchSize flush boundaries,
// same per-probe-batch cuts — so the merged output is byte-identical to the
// serial join's no matter which box ran the group. It touches only the unit,
// per-call state, and the fragment's frozen configuration (read-only after
// Prepare), so concurrent Runs of one fragment are safe — on a local pool
// task, a simulated remote, or a worker daemon's scheduler alike.
func (f *Fragment) Run(g *GroupUnit, emit func(*vector.Batch)) error {
	if !f.prepared {
		return fmt.Errorf("engine: fragment run before Prepare")
	}
	if f.Kind == FragScan {
		return f.runScan(g, emit)
	}
	buf := NewBuffer(f.Build)
	table := newPartJoinTable(1)
	var buildHashes []uint64
	var buildRow int32
	buildEq := func(head int32) bool {
		return keysEqualBufBuf(buf, f.buildIdx, int(buildRow), int(head))
	}
	for _, b := range g.Build {
		base := int32(buf.Len())
		buf.AppendBatch(b)
		buildHashes = vector.HashKeys(b, f.buildIdx, buildHashes)
		for i := 0; i < b.Len(); i++ {
			buildRow = base + int32(i)
			table.Insert(buildHashes[i], buildRow, buildEq)
		}
	}
	tableBytes := buf.Bytes() + table.Bytes()
	f.Mem.Grow(tableBytes)
	defer f.Mem.Shrink(tableBytes)
	if f.NoteGroup != nil {
		f.NoteGroup(int64(buf.Len()))
	}

	var combined *vector.Batch
	var resVec *vector.Vector
	if f.Residual != nil {
		cs := append(append(expr.Schema{}, f.Probe...), f.Build...)
		combined = vector.NewBatch(cs.Kinds())
		resVec = expr.NewScratch(vector.Int64)
	}
	var probeBatch *vector.Batch
	var probeRow int
	probeEq := func(head int32) bool {
		return keysEqualBatchBuf(probeBatch, f.probeIdx, probeRow, buf, f.buildIdx, int(head))
	}
	residualOK := func(b *vector.Batch, li int, bi int32) bool {
		if f.Residual == nil {
			return true
		}
		combined.Reset()
		nl := len(b.Cols)
		for c := 0; c < nl; c++ {
			combined.Cols[c].AppendFrom(b.Cols[c], li)
		}
		buf.WriteRow(combined, int(bi), nl)
		resVec.Reset()
		f.Residual.Eval(combined, resVec)
		return resVec.I64[0] != 0
	}

	var probeHashes []uint64
	var matches []int32
	kinds := f.out.Kinds()
	for _, b := range g.Probe {
		probeBatch = b
		newOut := func() *vector.Batch {
			out := vector.NewBatch(kinds)
			out.Grouped = true
			out.GroupID = b.GroupID
			return out
		}
		out := newOut()
		nl := len(b.Cols)
		probeHashes = vector.HashKeys(b, f.probeIdx, probeHashes)
		for r := 0; r < b.Len(); r++ {
			probeRow = r
			head := table.Lookup(probeHashes[r], probeEq)
			if f.Type == SemiJoin || f.Type == AntiJoin {
				hit := false
				for bi := head; bi >= 0; bi = table.ChainNext(bi) {
					if residualOK(b, r, bi) {
						hit = true
						break
					}
				}
				if hit == (f.Type == SemiJoin) {
					out.AppendRow(b, r)
				}
				if out.Len() >= vector.BatchSize {
					emit(out)
					out = newOut()
				}
				continue
			}
			matches = table.Matches(head, matches[:0])
			emitted := false
			for _, bi := range matches {
				if !residualOK(b, r, bi) {
					continue
				}
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				buf.WriteRow(out, int(bi), nl)
				if f.Type == LeftOuterJoin {
					out.Cols[len(out.Cols)-1].AppendInt64(1)
				}
				emitted = true
				if out.Len() >= vector.BatchSize {
					emit(out)
					out = newOut()
				}
			}
			if !emitted && f.Type == LeftOuterJoin {
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				for c := range f.Build {
					appendZero(out.Cols[nl+c])
				}
				out.Cols[len(out.Cols)-1].AppendInt64(0)
			}
			if out.Len() >= vector.BatchSize {
				emit(out)
				out = newOut()
			}
		}
		// Serial Next flushes at every probe-batch boundary; replicate the
		// cut so batch shapes match byte-for-byte.
		if out.Len() > 0 {
			emit(out)
		}
	}
	return nil
}

// ScanStats returns the modeled device-read stats — runs, pages, bytes —
// one scan unit costs against the site's local copy of the table: the same
// measure ChargeIO charges an accountant, computed without performing the
// scan. A worker daemon calls it per unit and reports the stats in the
// unit's done frame, which is how partitioned scans account device reads on
// the box that actually performed them. Only valid on a prepared FragScan.
func (f *Fragment) ScanStats(g *GroupUnit) (runs, pages, bytes int64, err error) {
	if !f.prepared || f.Kind != FragScan {
		return 0, 0, 0, fmt.Errorf("engine: scan stats on an unprepared or non-scan fragment")
	}
	ranges := g.ScanRanges
	if f.scanMap != nil {
		mapped := make(storage.RowRanges, len(ranges))
		for i, r := range ranges {
			m, merr := f.scanMap(r)
			if merr != nil {
				return 0, 0, 0, merr
			}
			mapped[i] = m
		}
		ranges = mapped
	}
	runs, pages, bytes = f.scanTab.ReadStats(f.scanIdx, ranges)
	return runs, pages, bytes, nil
}

// runScan executes one scan unit: map the unit's coordinator row ranges into
// the site's local row space (identity when the site holds the full table),
// stream them through a reader, filter, and emit group-tagged batches. Range
// lengths survive the mapping and the reader cuts batches only at range
// boundaries and BatchSize steps, so a worker's local scan and the
// coordinator's failover re-scan of the same unit produce identical batch
// sequences — which is what lets the failover layer's delivered-prefix
// replay splice a half-scanned unit without duplicating or reordering rows.
// Predicate pushdown is deliberately absent here: pushed intervals prune by
// encoded chunk layout, which differs between the coordinator's table and a
// recompressed shipped partition, and the scan re-applies the full filter
// anyway.
func (f *Fragment) runScan(g *GroupUnit, emit func(*vector.Batch)) error {
	ranges := g.ScanRanges
	if f.scanMap != nil {
		mapped := make(storage.RowRanges, len(ranges))
		for i, r := range ranges {
			m, err := f.scanMap(r)
			if err != nil {
				return err
			}
			mapped[i] = m
		}
		ranges = mapped
	}
	r := storage.NewReaderPush(f.scanTab, f.scanIdx, ranges, f.Acct, nil)
	kinds := f.out.Kinds()
	raw := vector.NewBatch(kinds)
	var pred *vector.Vector
	if f.Residual != nil {
		pred = expr.NewScratch(vector.Int64)
	}
	for r.Next(raw) {
		out := vector.NewBatch(kinds)
		if f.Residual != nil {
			filterInto(f.Residual, pred, raw, out)
		} else {
			out.AppendBatch(raw)
		}
		if out.Len() == 0 {
			continue
		}
		out.Grouped = true
		out.GroupID = g.GID
		emit(out)
	}
	return nil
}
