package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// AggSum sums the argument (int64 or float64).
	AggSum AggFunc = iota
	// AggMin tracks the minimum argument.
	AggMin
	// AggMax tracks the maximum argument.
	AggMax
	// AggCount counts rows (Arg nil) or non-default indicator semantics are
	// handled by the planner via CASE expressions.
	AggCount
	// AggCountDistinct counts distinct argument values.
	AggCountDistinct
	// AggAvg computes the mean of the argument as float64.
	AggAvg
)

// AggSpec is one aggregate of an aggregation operator.
type AggSpec struct {
	Name string
	Func AggFunc
	// Arg is the aggregated expression; nil is permitted for AggCount.
	Arg expr.Expr
}

// resultKind returns the output kind of the aggregate.
func (a AggSpec) resultKind() vector.Kind {
	switch a.Func {
	case AggCount, AggCountDistinct:
		return vector.Int64
	case AggAvg:
		return vector.Float64
	default:
		return a.Arg.Kind()
	}
}

// aggState is the running state of one aggregate in one group.
type aggState struct {
	i64      int64
	f64      float64
	str      string
	count    int64
	distinct *distinctSet
}

// aggStateBytes is the in-memory size of one aggState (four 8-byte fields
// plus the 16-byte string header), charged to the memory tracker per
// (group, aggregate) pair.
const aggStateBytes = 48

// HashAggregate groups its input by the GroupBy columns and computes the
// aggregates. With FlushOnGroup set the operator becomes the sandwich
// aggregation of the paper's reference [3]: the input stream must be
// grouped (tagged batches from a scatter scan or a group-preserving
// pipeline), and because the grouping key functionally determines the
// stream's group identifier, the hash table can be emitted and cleared at
// every group boundary — peak memory is one co-clustering group instead of
// the whole input (the paper's Q13/Q16/Q18 memory effect).
type HashAggregate struct {
	Child        Operator
	GroupBy      []string
	Aggs         []AggSpec
	FlushOnGroup bool

	schema   expr.Schema
	ctx      *Context
	keyIdx   []int
	table    oaTable    // key hash -> group id
	states   []aggState // flat, group g's states at [g*len(Aggs) : (g+1)*len(Aggs)]
	nGroups  int        // group count (keyBuf.Len() is 0 for zero-column keys)
	keyBuf   *Buffer    // one row per group, in first-seen (emission) order
	memBytes int64

	hashes        []uint64 // per-batch key hash scratch
	distinctBytes int64    // footprint of all COUNT(DISTINCT) sets
	keyBufCols    []int
	eqBatch       *vector.Batch
	eqRow         int
	groupEq       func(int32) bool

	argVecs []*vector.Vector
	out     *vector.Batch

	pending []*vector.Batch // flushed output waiting to be returned
	done    bool
	haveGID bool
	curGID  uint64
}

// Schema implements Operator.
func (h *HashAggregate) Schema() expr.Schema { return h.schema }

// Open implements Operator.
func (h *HashAggregate) Open(ctx *Context) error {
	h.ctx = ctx
	if err := h.Child.Open(ctx); err != nil {
		return err
	}
	cs := h.Child.Schema()
	var err error
	h.keyIdx, err = keyIndexes(cs, h.GroupBy)
	if err != nil {
		return errOp("aggregate keys", err)
	}
	var keySchema expr.Schema
	for _, i := range h.keyIdx {
		keySchema = append(keySchema, cs[i])
	}
	h.schema = append(expr.Schema{}, keySchema...)
	for _, a := range h.Aggs {
		if a.Arg != nil {
			if err := expr.Bind(a.Arg, cs); err != nil {
				return errOp(fmt.Sprintf("aggregate %s", a.Name), err)
			}
		} else if a.Func != AggCount {
			return fmt.Errorf("engine: aggregate %s requires an argument", a.Name)
		}
		h.schema = append(h.schema, expr.ColMeta{Name: a.Name, Kind: a.resultKind()})
	}
	h.keyBuf = NewBuffer(keySchema)
	h.keyBufCols = identityCols(len(h.keyIdx))
	h.groupEq = func(g int32) bool {
		return keysEqualBatchBuf(h.eqBatch, h.keyIdx, h.eqRow, h.keyBuf, h.keyBufCols, int(g))
	}
	h.argVecs = make([]*vector.Vector, len(h.Aggs))
	for i, a := range h.Aggs {
		if a.Arg != nil {
			h.argVecs[i] = expr.NewScratch(a.Arg.Kind())
		}
	}
	h.out = vector.NewBatch(h.schema.Kinds())
	return nil
}

// accumulate folds one batch into the hash table: the key columns are
// hashed vector-at-a-time, then each row resolves (or claims) its group id
// in the open-addressing table, with collisions verified against the
// materialized group keys in keyBuf.
func (h *HashAggregate) accumulate(b *vector.Batch) {
	for i, a := range h.Aggs {
		if a.Arg != nil {
			h.argVecs[i].Reset()
			a.Arg.Eval(b, h.argVecs[i])
		}
	}
	keyBatch := vector.Batch{Cols: make([]*vector.Vector, len(h.keyIdx))}
	for c, ki := range h.keyIdx {
		keyBatch.Cols[c] = b.Cols[ki]
	}
	h.hashes = vector.HashKeys(b, h.keyIdx, h.hashes)
	h.eqBatch = b
	nAggs := len(h.Aggs)
	for r := 0; r < b.Len(); r++ {
		h.eqRow = r
		h.table.Reserve()
		slot, found := h.table.FindSlot(h.hashes[r], h.groupEq)
		var g int32
		if found {
			g = h.table.Payload(slot)
		} else {
			g = int32(h.nGroups)
			h.nGroups++
			h.table.Insert(slot, h.hashes[r], g)
			h.keyBuf.AppendRow(&keyBatch, r)
			for i := 0; i < nAggs; i++ {
				h.states = append(h.states, aggState{})
			}
		}
		states := h.states[int(g)*nAggs : (int(g)+1)*nAggs]
		for i, a := range h.Aggs {
			st := &states[i]
			switch a.Func {
			case AggCount:
				st.count++
			case AggCountDistinct:
				if st.distinct == nil {
					st.distinct = newDistinctSet(h.argVecs[i].Kind)
				}
				h.distinctBytes += st.distinct.Add(h.argVecs[i], r)
			case AggSum, AggAvg:
				switch h.argVecs[i].Kind {
				case vector.Int64:
					st.i64 += h.argVecs[i].I64[r]
					st.f64 += float64(h.argVecs[i].I64[r])
				case vector.Float64:
					st.f64 += h.argVecs[i].F64[r]
				}
				st.count++
			case AggMin, AggMax:
				updateMinMax(st, h.argVecs[i], r, a.Func == AggMin)
			}
		}
	}
	// Charge the footprint growth once per batch; every term is the exact
	// size of a flat allocation.
	foot := h.keyBuf.Bytes() + h.table.Bytes() + int64(cap(h.states))*aggStateBytes + h.distinctBytes
	if d := foot - h.memBytes; d > 0 {
		h.memBytes = foot
		h.ctx.Mem.Grow(d)
	}
}

func updateMinMax(st *aggState, v *vector.Vector, r int, isMin bool) {
	first := st.count == 0
	st.count++
	switch v.Kind {
	case vector.Int64:
		x := v.I64[r]
		if first || (isMin && x < st.i64) || (!isMin && x > st.i64) {
			st.i64 = x
		}
	case vector.Float64:
		x := v.F64[r]
		if first || (isMin && x < st.f64) || (!isMin && x > st.f64) {
			st.f64 = x
		}
	case vector.String:
		x := v.Str[r]
		if first || (isMin && x < st.str) || (!isMin && x > st.str) {
			st.str = x
		}
	}
}

// flush converts the hash table into pending output batches and clears it.
// Flushed batches of a FlushOnGroup aggregation keep the group tag, so a
// sandwich aggregation's output remains a group stream and enclosing
// sandwich operators can align on it.
func (h *HashAggregate) flush() {
	if h.nGroups == 0 {
		return
	}
	nk := len(h.keyIdx)
	tag := func(b *vector.Batch) {
		if h.FlushOnGroup && h.haveGID {
			b.Grouped = true
			b.GroupID = h.curGID
		}
	}
	out := vector.NewBatch(h.schema.Kinds())
	emit := func() {
		if out.Len() > 0 {
			tag(out)
			h.pending = append(h.pending, out)
			out = vector.NewBatch(h.schema.Kinds())
		}
	}
	nAggs := len(h.Aggs)
	for gi := 0; gi < h.nGroups; gi++ {
		states := h.states[gi*nAggs : (gi+1)*nAggs]
		h.keyBuf.WriteRow(out, gi, 0)
		for i, a := range h.Aggs {
			col := out.Cols[nk+i]
			st := states[i]
			switch a.Func {
			case AggCount:
				col.AppendInt64(st.count)
			case AggCountDistinct:
				col.AppendInt64(int64(st.distinct.Len()))
			case AggAvg:
				if st.count == 0 {
					col.AppendFloat64(0)
				} else {
					col.AppendFloat64(st.f64 / float64(st.count))
				}
			case AggSum:
				if col.Kind == vector.Int64 {
					col.AppendInt64(st.i64)
				} else {
					col.AppendFloat64(st.f64)
				}
			case AggMin, AggMax:
				switch col.Kind {
				case vector.Int64:
					col.AppendInt64(st.i64)
				case vector.Float64:
					col.AppendFloat64(st.f64)
				case vector.String:
					col.AppendString(st.str)
				}
			}
		}
		if out.Len() >= vector.BatchSize {
			emit()
		}
	}
	emit()
	h.ctx.Mem.Shrink(h.memBytes)
	h.memBytes = 0
	h.distinctBytes = 0
	h.table.Reset()
	h.states = h.states[:0]
	h.nGroups = 0
	h.keyBuf.Reset()
}

// Next implements Operator.
func (h *HashAggregate) Next() (*vector.Batch, error) {
	for {
		if len(h.pending) > 0 {
			b := h.pending[0]
			h.pending = h.pending[1:]
			return b, nil
		}
		if h.done {
			return nil, nil
		}
		b, err := h.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			h.done = true
			h.flush()
			continue
		}
		if b.Len() == 0 {
			continue
		}
		if h.FlushOnGroup && b.Grouped {
			if h.haveGID && b.GroupID != h.curGID {
				h.flush()
			}
			h.haveGID = true
			h.curGID = b.GroupID
		}
		h.accumulate(b)
	}
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.ctx.Mem.Shrink(h.memBytes)
	h.memBytes = 0
	return h.Child.Close()
}

// StreamAggregate aggregates an input already sorted on its grouping
// columns with O(1) state — the "streaming aggregate applied by the PK
// scheme" that wins Q18 in the paper.
type StreamAggregate struct {
	Child   Operator
	GroupBy []string
	Aggs    []AggSpec

	schema  expr.Schema
	keyIdx  []int
	enc     *keyEncoder
	curKey  []byte
	haveKey bool
	keyRow  *Buffer
	states  []aggState
	argVecs []*vector.Vector
	out     *vector.Batch
	done    bool
}

// Schema implements Operator.
func (s *StreamAggregate) Schema() expr.Schema { return s.schema }

// Open implements Operator.
func (s *StreamAggregate) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	cs := s.Child.Schema()
	var err error
	s.keyIdx, err = keyIndexes(cs, s.GroupBy)
	if err != nil {
		return errOp("stream aggregate keys", err)
	}
	var keySchema expr.Schema
	for _, i := range s.keyIdx {
		keySchema = append(keySchema, cs[i])
	}
	s.schema = append(expr.Schema{}, keySchema...)
	for _, a := range s.Aggs {
		if a.Arg != nil {
			if err := expr.Bind(a.Arg, cs); err != nil {
				return errOp(fmt.Sprintf("stream aggregate %s", a.Name), err)
			}
		}
		s.schema = append(s.schema, expr.ColMeta{Name: a.Name, Kind: a.resultKind()})
	}
	s.enc = newKeyEncoder(s.keyIdx)
	s.keyRow = NewBuffer(keySchema)
	s.states = make([]aggState, len(s.Aggs))
	s.argVecs = make([]*vector.Vector, len(s.Aggs))
	for i, a := range s.Aggs {
		if a.Arg != nil {
			s.argVecs[i] = expr.NewScratch(a.Arg.Kind())
		}
	}
	s.out = vector.NewBatch(s.schema.Kinds())
	return nil
}

// emitGroup appends the finished group to the output batch.
func (s *StreamAggregate) emitGroup() {
	nk := len(s.keyIdx)
	s.keyRow.WriteRow(s.out, 0, 0)
	for i, a := range s.Aggs {
		col := s.out.Cols[nk+i]
		st := s.states[i]
		switch a.Func {
		case AggCount:
			col.AppendInt64(st.count)
		case AggCountDistinct:
			col.AppendInt64(int64(st.distinct.Len()))
		case AggAvg:
			if st.count == 0 {
				col.AppendFloat64(0)
			} else {
				col.AppendFloat64(st.f64 / float64(st.count))
			}
		case AggSum:
			if col.Kind == vector.Int64 {
				col.AppendInt64(st.i64)
			} else {
				col.AppendFloat64(st.f64)
			}
		case AggMin, AggMax:
			switch col.Kind {
			case vector.Int64:
				col.AppendInt64(st.i64)
			case vector.Float64:
				col.AppendFloat64(st.f64)
			case vector.String:
				col.AppendString(st.str)
			}
		}
	}
	s.states = make([]aggState, len(s.Aggs))
	s.keyRow.Reset()
}

// Next implements Operator.
func (s *StreamAggregate) Next() (*vector.Batch, error) {
	s.out.Reset()
	for {
		if s.done {
			if s.out.Len() > 0 {
				return s.out, nil
			}
			return nil, nil
		}
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.done = true
			if s.haveKey {
				s.emitGroup()
			}
			continue
		}
		for i, a := range s.Aggs {
			if a.Arg != nil {
				s.argVecs[i].Reset()
				a.Arg.Eval(b, s.argVecs[i])
			}
		}
		keyBatch := vector.Batch{Cols: make([]*vector.Vector, len(s.keyIdx))}
		for c, ki := range s.keyIdx {
			keyBatch.Cols[c] = b.Cols[ki]
		}
		for r := 0; r < b.Len(); r++ {
			key := s.enc.encode(b, r)
			if !s.haveKey || string(key) != string(s.curKey) {
				if s.haveKey {
					s.emitGroup()
				}
				s.curKey = append(s.curKey[:0], key...)
				s.haveKey = true
				s.keyRow.AppendRow(&keyBatch, r)
			}
			for i, a := range s.Aggs {
				st := &s.states[i]
				switch a.Func {
				case AggCount:
					st.count++
				case AggCountDistinct:
					if st.distinct == nil {
						st.distinct = newDistinctSet(s.argVecs[i].Kind)
					}
					st.distinct.Add(s.argVecs[i], r)
				case AggSum, AggAvg:
					switch s.argVecs[i].Kind {
					case vector.Int64:
						st.i64 += s.argVecs[i].I64[r]
						st.f64 += float64(s.argVecs[i].I64[r])
					case vector.Float64:
						st.f64 += s.argVecs[i].F64[r]
					}
					st.count++
				case AggMin, AggMax:
					updateMinMax(st, s.argVecs[i], r, a.Func == AggMin)
				}
			}
		}
		if s.out.Len() >= vector.BatchSize {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *StreamAggregate) Close() error { return s.Child.Close() }
