package engine

import (
	"fmt"
	"sort"
	"sync"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// AggSum sums the argument (int64 or float64).
	AggSum AggFunc = iota
	// AggMin tracks the minimum argument.
	AggMin
	// AggMax tracks the maximum argument.
	AggMax
	// AggCount counts rows (Arg nil) or non-default indicator semantics are
	// handled by the planner via CASE expressions.
	AggCount
	// AggCountDistinct counts distinct argument values.
	AggCountDistinct
	// AggAvg computes the mean of the argument as float64.
	AggAvg
)

// AggSpec is one aggregate of an aggregation operator.
type AggSpec struct {
	Name string
	Func AggFunc
	// Arg is the aggregated expression; nil is permitted for AggCount.
	Arg expr.Expr
}

// resultKind returns the output kind of the aggregate.
func (a AggSpec) resultKind() vector.Kind {
	switch a.Func {
	case AggCount, AggCountDistinct:
		return vector.Int64
	case AggAvg:
		return vector.Float64
	default:
		return a.Arg.Kind()
	}
}

// aggState is the running state of one aggregate in one group.
type aggState struct {
	i64      int64
	f64      float64
	str      string
	count    int64
	distinct *distinctSet
}

// aggStateBytes is the in-memory size of one aggState (four 8-byte fields
// plus the 16-byte string header), charged to the memory tracker per
// (group, aggregate) pair.
const aggStateBytes = 48

// aggTable is one hash-aggregation state: the open-addressing group index,
// the flat state array, the materialized group keys, and per-row scratch.
// The serial operator owns one; each parallel worker owns its own (workers
// aggregate disjoint key partitions, so tables never share mutable state).
type aggTable struct {
	aggs       []AggSpec
	keyIdx     []int
	table      oaTable    // key hash -> group id
	states     []aggState // flat, group g's states at [g*len(aggs) : (g+1)*len(aggs)]
	nGroups    int        // group count (keyBuf.Len() is 0 for zero-column keys)
	keyBuf     *Buffer    // one row per group, in first-seen (emission) order
	firstRows  []int64    // per group: global row index of the first-seen row
	memBytes   int64      // bytes charged to the memory tracker
	hashes     []uint64   // per-batch key hash scratch
	distBytes  int64      // footprint of all COUNT(DISTINCT) sets
	keyBufCols []int
	eqBatch    *vector.Batch
	eqRow      int
	groupEq    func(int32) bool
	argVecs    []*vector.Vector
}

func newAggTable(aggs []AggSpec, keyIdx []int, keySchema expr.Schema) *aggTable {
	t := &aggTable{aggs: aggs, keyIdx: keyIdx}
	t.keyBuf = NewBuffer(keySchema)
	t.keyBufCols = identityCols(len(keyIdx))
	t.groupEq = func(g int32) bool {
		return keysEqualBatchBuf(t.eqBatch, t.keyIdx, t.eqRow, t.keyBuf, t.keyBufCols, int(g))
	}
	t.argVecs = make([]*vector.Vector, len(aggs))
	for i, a := range aggs {
		if a.Arg != nil {
			t.argVecs[i] = expr.NewScratch(a.Arg.Kind())
		}
	}
	return t
}

// accumulate folds one batch into the table: the key columns are hashed
// vector-at-a-time (or taken pre-hashed from a routing feeder), then each
// row resolves (or claims) its group id in the open-addressing table, with
// collisions verified against the materialized group keys in keyBuf.
// rowIdx, when non-nil, carries each row's global input row index so
// parallel workers can reconstruct the serial first-seen emission order.
func (t *aggTable) accumulate(b *vector.Batch, hashes []uint64, rowIdx []int64) {
	for i, a := range t.aggs {
		if a.Arg != nil {
			t.argVecs[i].Reset()
			a.Arg.Eval(b, t.argVecs[i])
		}
	}
	keyBatch := vector.Batch{Cols: make([]*vector.Vector, len(t.keyIdx))}
	for c, ki := range t.keyIdx {
		keyBatch.Cols[c] = b.Cols[ki]
	}
	if hashes == nil {
		t.hashes = vector.HashKeys(b, t.keyIdx, t.hashes)
		hashes = t.hashes
	}
	t.eqBatch = b
	nAggs := len(t.aggs)
	for r := 0; r < b.Len(); r++ {
		t.eqRow = r
		t.table.Reserve()
		slot, found := t.table.FindSlot(hashes[r], t.groupEq)
		var g int32
		if found {
			g = t.table.Payload(slot)
		} else {
			g = int32(t.nGroups)
			t.nGroups++
			t.table.Insert(slot, hashes[r], g)
			t.keyBuf.AppendRow(&keyBatch, r)
			if rowIdx != nil {
				t.firstRows = append(t.firstRows, rowIdx[r])
			}
			for i := 0; i < nAggs; i++ {
				t.states = append(t.states, aggState{})
			}
		}
		states := t.states[int(g)*nAggs : (int(g)+1)*nAggs]
		for i, a := range t.aggs {
			st := &states[i]
			switch a.Func {
			case AggCount:
				st.count++
			case AggCountDistinct:
				if st.distinct == nil {
					st.distinct = newDistinctSet(t.argVecs[i].Kind)
				}
				t.distBytes += st.distinct.Add(t.argVecs[i], r)
			case AggSum, AggAvg:
				switch t.argVecs[i].Kind {
				case vector.Int64:
					st.i64 += t.argVecs[i].I64[r]
					st.f64 += float64(t.argVecs[i].I64[r])
				case vector.Float64:
					st.f64 += t.argVecs[i].F64[r]
				}
				st.count++
			case AggMin, AggMax:
				updateMinMax(st, t.argVecs[i], r, a.Func == AggMin)
			}
		}
	}
}

// bytes returns the exact footprint of the table's flat allocations.
func (t *aggTable) bytes() int64 {
	return t.keyBuf.Bytes() + t.table.Bytes() +
		int64(cap(t.states))*aggStateBytes + t.distBytes +
		int64(cap(t.firstRows))*8
}

// charge reconciles the accounted bytes with the current footprint; mem is
// mutex-protected, so parallel workers charge concurrently.
func (t *aggTable) charge(mem *MemTracker) {
	foot := t.bytes()
	switch d := foot - t.memBytes; {
	case d > 0:
		mem.Grow(d)
	case d < 0:
		mem.Shrink(-d)
	}
	t.memBytes = foot
}

// release returns the charged bytes to the tracker and clears the table,
// keeping capacity.
func (t *aggTable) release(mem *MemTracker) {
	mem.Shrink(t.memBytes)
	t.memBytes = 0
	t.distBytes = 0
	t.table.Reset()
	t.states = t.states[:0]
	t.firstRows = t.firstRows[:0]
	t.nGroups = 0
	t.keyBuf.Reset()
}

func updateMinMax(st *aggState, v *vector.Vector, r int, isMin bool) {
	first := st.count == 0
	st.count++
	switch v.Kind {
	case vector.Int64:
		x := v.I64[r]
		if first || (isMin && x < st.i64) || (!isMin && x > st.i64) {
			st.i64 = x
		}
	case vector.Float64:
		x := v.F64[r]
		if first || (isMin && x < st.f64) || (!isMin && x > st.f64) {
			st.f64 = x
		}
	case vector.String:
		x := v.Str[r]
		if first || (isMin && x < st.str) || (!isMin && x > st.str) {
			st.str = x
		}
	}
}

// HashAggregate groups its input by the GroupBy columns and computes the
// aggregates. With FlushOnGroup set the operator becomes the sandwich
// aggregation of the paper's reference [3]: the input stream must be
// grouped (tagged batches from a scatter scan or a group-preserving
// pipeline), and because the grouping key functionally determines the
// stream's group identifier, the hash table can be emitted and cleared at
// every group boundary — peak memory is one co-clustering group instead of
// the whole input (the paper's Q13/Q16/Q18 memory effect).
//
// With a scheduler handle injected (and FlushOnGroup unset), input rows are
// routed to key-hash partitions whose jobs run as tasks on the query's
// shared worker pool: every group is accumulated entirely by one partition
// in global row order, so even float sums are bit-identical to the serial
// run, and the merged output emits groups in the serial first-seen order.
type HashAggregate struct {
	Child        Operator
	GroupBy      []string
	Aggs         []AggSpec
	FlushOnGroup bool
	// Sched is the planner-injected handle of the query's shared worker
	// pool; it takes effect when FlushOnGroup is unset (the sandwich
	// aggregation is already bounded by one co-clustering group and flushes
	// on a serial group cursor). nil means serial aggregation.
	Sched *Sched

	schema expr.Schema
	ctx    *Context
	keyIdx []int
	agg    *aggTable

	pending []*vector.Batch // flushed output waiting to be returned
	done    bool
	haveGID bool
	curGID  uint64
}

// Schema implements Operator.
func (h *HashAggregate) Schema() expr.Schema { return h.schema }

// Open implements Operator.
func (h *HashAggregate) Open(ctx *Context) error {
	h.ctx = ctx
	if err := h.Child.Open(ctx); err != nil {
		return err
	}
	cs := h.Child.Schema()
	var err error
	h.keyIdx, err = keyIndexes(cs, h.GroupBy)
	if err != nil {
		return errOp("aggregate keys", err)
	}
	var keySchema expr.Schema
	for _, i := range h.keyIdx {
		keySchema = append(keySchema, cs[i])
	}
	h.schema = append(expr.Schema{}, keySchema...)
	for _, a := range h.Aggs {
		if a.Arg != nil {
			if err := expr.Bind(a.Arg, cs); err != nil {
				return errOp(fmt.Sprintf("aggregate %s", a.Name), err)
			}
		} else if a.Func != AggCount {
			return fmt.Errorf("engine: aggregate %s requires an argument", a.Name)
		}
		h.schema = append(h.schema, expr.ColMeta{Name: a.Name, Kind: a.resultKind()})
	}
	h.agg = newAggTable(h.Aggs, h.keyIdx, keySchema)
	return nil
}

// workers resolves the effective worker count of this aggregation.
func (h *HashAggregate) workers() int {
	if h.Sched == nil || h.FlushOnGroup {
		return 1
	}
	return h.Sched.Workers()
}

// emitGroups renders groups of src (in the given order) into pending
// batches; order nil means src's insertion order. Flushed batches of a
// FlushOnGroup aggregation keep the group tag, so a sandwich aggregation's
// output remains a group stream and enclosing sandwich operators can align
// on it.
func (h *HashAggregate) emitGroups(tables []*aggTable, order []groupRef) {
	nk := len(h.keyIdx)
	nAggs := len(h.Aggs)
	tag := func(b *vector.Batch) {
		if h.FlushOnGroup && h.haveGID {
			b.Grouped = true
			b.GroupID = h.curGID
		}
	}
	out := vector.NewBatch(h.schema.Kinds())
	emit := func() {
		if out.Len() > 0 {
			tag(out)
			h.pending = append(h.pending, out)
			out = vector.NewBatch(h.schema.Kinds())
		}
	}
	for _, ref := range order {
		t := tables[ref.table]
		states := t.states[ref.group*nAggs : (ref.group+1)*nAggs]
		t.keyBuf.WriteRow(out, ref.group, 0)
		for i, a := range h.Aggs {
			col := out.Cols[nk+i]
			st := states[i]
			switch a.Func {
			case AggCount:
				col.AppendInt64(st.count)
			case AggCountDistinct:
				col.AppendInt64(int64(st.distinct.Len()))
			case AggAvg:
				if st.count == 0 {
					col.AppendFloat64(0)
				} else {
					col.AppendFloat64(st.f64 / float64(st.count))
				}
			case AggSum:
				if col.Kind == vector.Int64 {
					col.AppendInt64(st.i64)
				} else {
					col.AppendFloat64(st.f64)
				}
			case AggMin, AggMax:
				switch col.Kind {
				case vector.Int64:
					col.AppendInt64(st.i64)
				case vector.Float64:
					col.AppendFloat64(st.f64)
				case vector.String:
					col.AppendString(st.str)
				}
			}
		}
		if out.Len() >= vector.BatchSize {
			emit()
		}
	}
	emit()
}

// groupRef addresses one group of one aggTable during emission.
type groupRef struct {
	table    int
	group    int
	firstRow int64
}

// flush converts the hash table into pending output batches and clears it.
func (h *HashAggregate) flush() {
	if h.agg.nGroups == 0 {
		return
	}
	order := make([]groupRef, h.agg.nGroups)
	for g := range order {
		order[g] = groupRef{group: g}
	}
	h.emitGroups([]*aggTable{h.agg}, order)
	h.agg.release(h.ctx.Mem)
}

// aggJob is one routed unit of the parallel aggregation: up to aggJobRows
// rows of one worker's key partition with pre-computed key hashes and
// global row indexes. Jobs are recycled through a free list once a worker
// has folded them in.
type aggJob struct {
	b      *vector.Batch
	hashes []uint64
	rowIdx []int64
	bytes  int64 // charged while in flight
}

func (j *aggJob) reset() {
	j.b.Reset()
	j.hashes = j.hashes[:0]
	j.rowIdx = j.rowIdx[:0]
	j.bytes = 0
}

// aggJobRows is the target row count of one routed job: the feeder buffers
// each worker's rows across input batches up to this size, so per-job
// synchronization amortizes over several batches of table work.
const aggJobRows = 4 * vector.BatchSize

// aggPart is one key-hash partition of the parallel aggregation: a private
// table plus a queue of routed jobs. Jobs of one partition run strictly one
// at a time in routing order — the enqueue path submits a drain task to the
// shared scheduler only when none is active — so each group accumulates on
// a single logical thread in global row order.
type aggPart struct {
	table  *aggTable
	mu     sync.Mutex
	queue  []*aggJob
	active bool
}

// runParallel drains the child on the caller goroutine, routing each row to
// a partition by key hash (so each group lives in exactly one partition and
// accumulates in global row order) with partition jobs running as tasks on
// the shared scheduler, then emits all groups sorted by their global
// first-seen row — exactly the serial emission order.
func (h *HashAggregate) runParallel() error {
	sched := h.Sched
	workers := sched.Workers()
	cs := h.Child.Schema()
	var keySchema expr.Schema
	for _, i := range h.keyIdx {
		keySchema = append(keySchema, cs[i])
	}
	sched.Retain()
	defer sched.Release()

	aparts := make([]*aggPart, workers)
	tables := make([]*aggTable, workers)
	for w := 0; w < workers; w++ {
		tables[w] = newAggTable(h.Aggs, h.keyIdx, keySchema)
		aparts[w] = &aggPart{table: tables[w]}
	}

	// inflight jobs are bounded so routing applies backpressure on the
	// (blockable) caller goroutine; drain tasks never block.
	var pmu sync.Mutex
	pcond := sync.NewCond(&pmu)
	inflight := 0
	var recycle []*aggJob

	drain := func(p *aggPart) {
		for {
			p.mu.Lock()
			if len(p.queue) == 0 {
				p.active = false
				p.mu.Unlock()
				return
			}
			job := p.queue[0]
			p.queue[0] = nil
			p.queue = p.queue[1:]
			p.mu.Unlock()
			p.table.accumulate(job.b, job.hashes, job.rowIdx)
			p.table.charge(h.ctx.Mem)
			h.ctx.Mem.Shrink(job.bytes)
			job.reset()
			pmu.Lock()
			inflight--
			if len(recycle) < 4*workers {
				recycle = append(recycle, job)
			}
			// At most one goroutine ever waits on pcond (the router, in
			// enqueue or settle — never both), so Signal suffices.
			pcond.Signal()
			pmu.Unlock()
		}
	}
	enqueue := func(w int, job *aggJob) {
		pmu.Lock()
		for inflight >= 4*workers {
			pcond.Wait()
		}
		inflight++
		pmu.Unlock()
		p := aparts[w]
		p.mu.Lock()
		p.queue = append(p.queue, job)
		start := !p.active
		p.active = true
		p.mu.Unlock()
		if start {
			sched.Submit(-1, func(int) { drain(p) })
		}
	}
	// settle waits until every routed job has been folded in; partition
	// tables are safe to read afterwards.
	settle := func() {
		pmu.Lock()
		for inflight > 0 {
			pcond.Wait()
		}
		pmu.Unlock()
	}

	// Route: hash each input batch once, gather each partition's rows with
	// a selection vector (one type dispatch per column, not per row), and
	// hand off jobs once they reach aggJobRows. The partition uses high
	// hash bits (the group index uses the low bits).
	kinds := cs.Kinds()
	newJob := func() *aggJob {
		pmu.Lock()
		defer pmu.Unlock()
		if n := len(recycle); n > 0 {
			j := recycle[n-1]
			recycle = recycle[:n-1]
			return j
		}
		return &aggJob{b: vector.NewBatch(kinds)}
	}
	var hashes []uint64
	parts := make([]*aggJob, workers)
	sels := make([][]int32, workers)
	var rowBase int64
	send := func(w int) {
		job := parts[w]
		parts[w] = nil
		job.bytes = job.b.Bytes()
		h.ctx.Mem.Grow(job.bytes)
		enqueue(w, job)
	}
	for {
		b, err := h.Child.Next()
		if err != nil {
			settle()
			for _, t := range tables {
				t.release(h.ctx.Mem)
			}
			return err
		}
		if b == nil {
			break
		}
		if b.Len() == 0 {
			continue
		}
		hashes = vector.HashKeys(b, h.keyIdx, hashes)
		for w := range sels {
			sels[w] = sels[w][:0]
		}
		for r, hv := range hashes {
			w := int((hv >> 32) % uint64(workers))
			sels[w] = append(sels[w], int32(r))
		}
		for w, sel := range sels {
			if len(sel) == 0 {
				continue
			}
			if parts[w] == nil {
				parts[w] = newJob()
			}
			job := parts[w]
			job.b.AppendSelected(b, sel)
			for _, r := range sel {
				job.hashes = append(job.hashes, hashes[r])
				job.rowIdx = append(job.rowIdx, rowBase+int64(r))
			}
			if job.b.Len() >= aggJobRows {
				send(w)
			}
		}
		rowBase += int64(b.Len())
	}
	for w := range parts {
		if parts[w] != nil && parts[w].b.Len() > 0 {
			send(w)
		}
	}
	settle()

	// Merge: emit every partition's groups in global first-seen order.
	var order []groupRef
	for w, t := range tables {
		for g := 0; g < t.nGroups; g++ {
			order = append(order, groupRef{table: w, group: g, firstRow: t.firstRows[g]})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].firstRow < order[j].firstRow })
	h.emitGroups(tables, order)
	for _, t := range tables {
		t.release(h.ctx.Mem)
	}
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (*vector.Batch, error) {
	for {
		if len(h.pending) > 0 {
			b := h.pending[0]
			h.pending[0] = nil
			h.pending = h.pending[1:]
			return b, nil
		}
		if h.done {
			return nil, nil
		}
		if h.workers() > 1 {
			h.done = true
			if err := h.runParallel(); err != nil {
				return nil, err
			}
			continue
		}
		b, err := h.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			h.done = true
			h.flush()
			continue
		}
		if b.Len() == 0 {
			continue
		}
		if h.FlushOnGroup && b.Grouped {
			if h.haveGID && b.GroupID != h.curGID {
				h.flush()
			}
			h.haveGID = true
			h.curGID = b.GroupID
		}
		h.agg.accumulate(b, nil, nil)
		h.agg.charge(h.ctx.Mem)
	}
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	if h.agg != nil {
		h.ctx.Mem.Shrink(h.agg.memBytes)
		h.agg.memBytes = 0
	}
	return h.Child.Close()
}

// StreamAggregate aggregates an input already sorted on its grouping
// columns with O(1) state — the "streaming aggregate applied by the PK
// scheme" that wins Q18 in the paper.
type StreamAggregate struct {
	Child   Operator
	GroupBy []string
	Aggs    []AggSpec

	schema  expr.Schema
	keyIdx  []int
	enc     *keyEncoder
	curKey  []byte
	haveKey bool
	keyRow  *Buffer
	states  []aggState
	argVecs []*vector.Vector
	out     *vector.Batch
	done    bool
}

// Schema implements Operator.
func (s *StreamAggregate) Schema() expr.Schema { return s.schema }

// Open implements Operator.
func (s *StreamAggregate) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	cs := s.Child.Schema()
	var err error
	s.keyIdx, err = keyIndexes(cs, s.GroupBy)
	if err != nil {
		return errOp("stream aggregate keys", err)
	}
	var keySchema expr.Schema
	for _, i := range s.keyIdx {
		keySchema = append(keySchema, cs[i])
	}
	s.schema = append(expr.Schema{}, keySchema...)
	for _, a := range s.Aggs {
		if a.Arg != nil {
			if err := expr.Bind(a.Arg, cs); err != nil {
				return errOp(fmt.Sprintf("stream aggregate %s", a.Name), err)
			}
		}
		s.schema = append(s.schema, expr.ColMeta{Name: a.Name, Kind: a.resultKind()})
	}
	s.enc = newKeyEncoder(s.keyIdx)
	s.keyRow = NewBuffer(keySchema)
	s.states = make([]aggState, len(s.Aggs))
	s.argVecs = make([]*vector.Vector, len(s.Aggs))
	for i, a := range s.Aggs {
		if a.Arg != nil {
			s.argVecs[i] = expr.NewScratch(a.Arg.Kind())
		}
	}
	s.out = vector.NewBatch(s.schema.Kinds())
	return nil
}

// emitGroup appends the finished group to the output batch.
func (s *StreamAggregate) emitGroup() {
	nk := len(s.keyIdx)
	s.keyRow.WriteRow(s.out, 0, 0)
	for i, a := range s.Aggs {
		col := s.out.Cols[nk+i]
		st := s.states[i]
		switch a.Func {
		case AggCount:
			col.AppendInt64(st.count)
		case AggCountDistinct:
			col.AppendInt64(int64(st.distinct.Len()))
		case AggAvg:
			if st.count == 0 {
				col.AppendFloat64(0)
			} else {
				col.AppendFloat64(st.f64 / float64(st.count))
			}
		case AggSum:
			if col.Kind == vector.Int64 {
				col.AppendInt64(st.i64)
			} else {
				col.AppendFloat64(st.f64)
			}
		case AggMin, AggMax:
			switch col.Kind {
			case vector.Int64:
				col.AppendInt64(st.i64)
			case vector.Float64:
				col.AppendFloat64(st.f64)
			case vector.String:
				col.AppendString(st.str)
			}
		}
	}
	s.states = make([]aggState, len(s.Aggs))
	s.keyRow.Reset()
}

// Next implements Operator.
func (s *StreamAggregate) Next() (*vector.Batch, error) {
	s.out.Reset()
	for {
		if s.done {
			if s.out.Len() > 0 {
				return s.out, nil
			}
			return nil, nil
		}
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.done = true
			if s.haveKey {
				s.emitGroup()
			}
			continue
		}
		for i, a := range s.Aggs {
			if a.Arg != nil {
				s.argVecs[i].Reset()
				a.Arg.Eval(b, s.argVecs[i])
			}
		}
		keyBatch := vector.Batch{Cols: make([]*vector.Vector, len(s.keyIdx))}
		for c, ki := range s.keyIdx {
			keyBatch.Cols[c] = b.Cols[ki]
		}
		for r := 0; r < b.Len(); r++ {
			key := s.enc.encode(b, r)
			if !s.haveKey || string(key) != string(s.curKey) {
				if s.haveKey {
					s.emitGroup()
				}
				s.curKey = append(s.curKey[:0], key...)
				s.haveKey = true
				s.keyRow.AppendRow(&keyBatch, r)
			}
			for i, a := range s.Aggs {
				st := &s.states[i]
				switch a.Func {
				case AggCount:
					st.count++
				case AggCountDistinct:
					if st.distinct == nil {
						st.distinct = newDistinctSet(s.argVecs[i].Kind)
					}
					st.distinct.Add(s.argVecs[i], r)
				case AggSum, AggAvg:
					switch s.argVecs[i].Kind {
					case vector.Int64:
						st.i64 += s.argVecs[i].I64[r]
						st.f64 += float64(s.argVecs[i].I64[r])
					case vector.Float64:
						st.f64 += s.argVecs[i].F64[r]
					}
					st.count++
				case AggMin, AggMax:
					updateMinMax(st, s.argVecs[i], r, a.Func == AggMin)
				}
			}
		}
		if s.out.Len() >= vector.BatchSize {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *StreamAggregate) Close() error { return s.Child.Close() }
