package engine

import (
	"fmt"
	"sort"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// SortSpec is one ordering criterion.
type SortSpec struct {
	Col  string
	Desc bool
}

// Sort fully materializes its input and emits it ordered by the specs.
type Sort struct {
	Child Operator
	By    []SortSpec

	ctx     *Context
	buf     *Buffer
	byIdx   []int
	perm    []int32
	pos     int
	out     *vector.Batch
	charged int64
	sorted  bool
}

// Schema implements Operator.
func (s *Sort) Schema() expr.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	s.ctx = ctx
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	cs := s.Child.Schema()
	for _, b := range s.By {
		i := cs.IndexOf(b.Col)
		if i < 0 {
			return fmt.Errorf("engine: sort column %q not found", b.Col)
		}
		s.byIdx = append(s.byIdx, i)
	}
	s.buf = NewBuffer(cs)
	s.out = vector.NewBatch(cs.Kinds())
	return nil
}

// materialize drains the child and sorts.
func (s *Sort) materialize() error {
	for {
		b, err := s.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		s.buf.AppendBatch(b)
	}
	s.charged = s.buf.Bytes()
	s.ctx.Mem.Grow(s.charged)
	s.perm = make([]int32, s.buf.Len())
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	sort.SliceStable(s.perm, func(a, b int) bool {
		return s.less(s.perm[a], s.perm[b])
	})
	s.sorted = true
	return nil
}

func (s *Sort) less(a, b int32) bool {
	for k, ci := range s.byIdx {
		c := s.buf.Col(ci)
		cmp := c.Compare(int(a), c, int(b))
		if cmp == 0 {
			continue
		}
		if s.By[k].Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) {
	if !s.sorted {
		if err := s.materialize(); err != nil {
			return nil, err
		}
	}
	if s.pos >= len(s.perm) {
		return nil, nil
	}
	s.out.Reset()
	for s.pos < len(s.perm) && s.out.Len() < vector.BatchSize {
		row := int(s.perm[s.pos])
		for c := range s.out.Cols {
			s.out.Cols[c].AppendFrom(s.buf.Col(c), row)
		}
		s.pos++
	}
	return s.out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.ctx.Mem.Shrink(s.charged)
	s.charged = 0
	return s.Child.Close()
}

// TopN emits the first N rows of the sorted order while holding at most 2N
// rows, the standard bounded-memory top-k strategy.
type TopN struct {
	Child Operator
	By    []SortSpec
	N     int

	sorter *Sort
	inner  Operator
}

// Schema implements Operator.
func (t *TopN) Schema() expr.Schema { return t.Child.Schema() }

// Open implements Operator.
func (t *TopN) Open(ctx *Context) error {
	// A bounded reservoir would complicate the code for no observable
	// effect at reproduction scale: TPC-H LIMIT queries sort aggregate
	// results that are already small. Implemented as Sort+Limit with the
	// sort buffer charged normally.
	t.sorter = &Sort{Child: t.Child, By: t.By}
	t.inner = &Limit{Child: t.sorter, N: t.N}
	return t.inner.Open(ctx)
}

// Next implements Operator.
func (t *TopN) Next() (*vector.Batch, error) { return t.inner.Next() }

// Close implements Operator.
func (t *TopN) Close() error { return t.inner.Close() }
