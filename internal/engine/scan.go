package engine

import (
	"fmt"

	"bdcc/internal/core"
	"bdcc/internal/expr"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// TableScan reads selected columns of a stored table over a set of row
// ranges (nil means the full table), applying an optional tuple-level
// filter. The planner is responsible for shrinking Ranges via count-table
// (BDCC) and MinMax (zonemap) pruning before the scan runs; the scan always
// re-applies the full predicate, so pruning only ever has to be
// conservative.
type TableScan struct {
	Table  *storage.Table
	Cols   []string
	Ranges storage.RowRanges
	Filter expr.Expr
	// Rename, when non-nil, renames the output columns (same length as
	// Cols); the filter is still expressed over the original names. Used for
	// self-joined table aliases.
	Rename []string

	schema  expr.Schema
	colIdx  []int
	reader  *storage.Reader
	out     *vector.Batch
	raw     *vector.Batch
	predVec *vector.Vector
}

// Schema implements Operator.
func (s *TableScan) Schema() expr.Schema { return s.schema }

// resolveScanSchema resolves column names against the stored table.
func resolveScanSchema(t *storage.Table, cols []string) (expr.Schema, []int, error) {
	schema := make(expr.Schema, len(cols))
	idx := make([]int, len(cols))
	for i, name := range cols {
		ci := t.ColumnIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("engine: table %q has no column %q", t.Name, name)
		}
		idx[i] = ci
		schema[i] = expr.ColMeta{Name: name, Kind: t.Cols[ci].Kind}
	}
	return schema, idx, nil
}

// Open implements Operator.
func (s *TableScan) Open(ctx *Context) error {
	schema, idx, err := resolveScanSchema(s.Table, s.Cols)
	if err != nil {
		return err
	}
	s.schema, s.colIdx = schema, idx
	if s.Filter != nil {
		if err := expr.Bind(s.Filter, schema); err != nil {
			return errOp("scan filter", err)
		}
		s.predVec = expr.NewScratch(vector.Int64)
		s.out = vector.NewBatch(schema.Kinds())
	}
	if s.Rename != nil {
		if len(s.Rename) != len(s.schema) {
			return fmt.Errorf("engine: scan of %q: %d renames for %d columns", s.Table.Name, len(s.Rename), len(s.schema))
		}
		renamed := append(expr.Schema{}, s.schema...)
		for i, n := range s.Rename {
			renamed[i].Name = n
		}
		s.schema = renamed
	}
	s.reader = storage.NewReader(s.Table, idx, s.Ranges, ctx.Acct)
	s.raw = vector.NewBatch(schema.Kinds())
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*vector.Batch, error) {
	for {
		if !s.reader.Next(s.raw) {
			return nil, nil
		}
		if s.Filter == nil {
			return s.raw, nil
		}
		s.out.Reset()
		filterInto(s.Filter, s.predVec, s.raw, s.out)
		if s.out.Len() > 0 {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// filterInto evaluates pred on in and appends passing rows to out.
func filterInto(pred expr.Expr, scratch *vector.Vector, in *vector.Batch, out *vector.Batch) {
	scratch.Reset()
	pred.Eval(in, scratch)
	for i, v := range scratch.I64 {
		if v != 0 {
			out.AppendRow(in, i)
		}
	}
	out.GroupID = in.GroupID
	out.Grouped = in.Grouped
}

// GroupedScan is the BDCC scatter scan: it reads a BDCC table group by group
// following a scatter plan, tagging every emitted batch with its group
// identifier ("this scan adds an additional group identifier to the stream,
// that is used during query optimization"). Batches never span groups and
// group identifiers are non-decreasing, so downstream sandwich operators can
// merge-align two grouped streams on their identifiers; groups that come out
// empty after filtering are simply absent from the stream.
type GroupedScan struct {
	BDCC   *core.BDCCTable
	Cols   []string
	Groups []core.ScatterGroup
	Filter expr.Expr
	// Rename optionally renames output columns (see TableScan.Rename).
	Rename []string

	schema  expr.Schema
	colIdx  []int
	ctx     *Context
	gi      int
	reader  *storage.Reader
	raw     *vector.Batch
	out     *vector.Batch
	predVec *vector.Vector
}

// Schema implements Operator.
func (s *GroupedScan) Schema() expr.Schema { return s.schema }

// Open implements Operator. Device I/O is charged once for the union of all
// group extents: the scatter scan computes its offsets from T_COUNT up
// front, issues page reads at most once per query (buffer-pool semantics),
// and run boundaries follow the coalesced page runs of the union.
func (s *GroupedScan) Open(ctx *Context) error {
	schema, idx, err := resolveScanSchema(s.BDCC.Data, s.Cols)
	if err != nil {
		return err
	}
	s.schema, s.colIdx = schema, idx
	s.ctx = ctx
	var union storage.RowRanges
	for _, g := range s.Groups {
		union = append(union, g.Ranges...)
	}
	s.BDCC.Data.ChargeIO(ctx.Acct, idx, union.Normalize())
	if s.Filter != nil {
		if err := expr.Bind(s.Filter, schema); err != nil {
			return errOp("grouped scan filter", err)
		}
		s.predVec = expr.NewScratch(vector.Int64)
	}
	if s.Rename != nil {
		if len(s.Rename) != len(s.schema) {
			return fmt.Errorf("engine: grouped scan of %q: %d renames for %d columns", s.BDCC.Name, len(s.Rename), len(s.schema))
		}
		renamed := append(expr.Schema{}, s.schema...)
		for i, n := range s.Rename {
			renamed[i].Name = n
		}
		s.schema = renamed
	}
	s.raw = vector.NewBatch(schema.Kinds())
	s.out = vector.NewBatch(schema.Kinds())
	s.gi = -1
	return nil
}

// Next implements Operator.
func (s *GroupedScan) Next() (*vector.Batch, error) {
	for {
		if s.reader == nil {
			s.gi++
			if s.gi >= len(s.Groups) {
				return nil, nil
			}
			// I/O was charged for the union at Open; per-group readers do
			// not double-charge.
			s.reader = storage.NewReader(s.BDCC.Data, s.colIdx, s.Groups[s.gi].Ranges, nil)
		}
		g := s.Groups[s.gi]
		if !s.reader.Next(s.raw) {
			s.reader = nil
			continue
		}
		s.raw.GroupID = g.GroupID
		s.raw.Grouped = true
		if s.Filter == nil {
			return s.raw, nil
		}
		s.out.Reset()
		filterInto(s.Filter, s.predVec, s.raw, s.out)
		if s.out.Len() > 0 {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *GroupedScan) Close() error { return nil }
