package engine

import (
	"fmt"
	"sync"

	"bdcc/internal/core"
	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// TableScan reads selected columns of a stored table over a set of row
// ranges (nil means the full table), applying an optional tuple-level
// filter. The planner is responsible for shrinking Ranges via count-table
// (BDCC) and MinMax (zonemap) pruning before the scan runs; the scan always
// re-applies the full predicate, so pruning only ever has to be
// conservative.
type TableScan struct {
	Table  *storage.Table
	Cols   []string
	Ranges storage.RowRanges
	Filter expr.Expr
	// Push holds predicate intervals the planner pushes into the reader:
	// on compressed columns they evaluate against the encoded form (per RLE
	// run, on dictionary codes) before rows materialize. Pruning is
	// conservative and the scan still re-applies Filter, so the output is
	// unchanged.
	Push []storage.PushPred
	// Rename, when non-nil, renames the output columns (same length as
	// Cols); the filter is still expressed over the original names. Used for
	// self-joined table aliases.
	Rename []string
	// Sched is the planner-injected handle of the query's shared worker
	// pool; with a non-nil handle and a filter to evaluate, the scan splits
	// its ranges into morsels and submits them as tasks. The morsel merge is
	// order-preserving, so the produced stream is byte-identical to the
	// serial scan's. nil means serial execution.
	Sched *Sched

	schema  expr.Schema
	colIdx  []int
	ctx     *Context
	reader  *storage.Reader
	out     *vector.Batch
	raw     *vector.Batch
	predVec *vector.Vector

	morsels []scanMorsel
	io      *scanIO
	ex      *exchange
}

// scanMorsel is one parallel unit of a morsel scan: a batch-aligned slice
// of row ranges, carrying the group tag of grouped scans.
type scanMorsel struct {
	ranges  storage.RowRanges
	gid     uint64
	grouped bool
}

// scanIO posts the modeled reads of a morsel scan asynchronously: each
// overlap unit (the whole range set of a plain scan, one scatter group of a
// grouped scan) is submitted to the accountant one unit ahead of the morsel
// tasks that consume it, and its overlap window is closed when the unit's
// last morsel completes — the grouped scan "posts the next group's read
// while workers crunch the current group". A nil *scanIO (no accountant)
// disables the hooks.
type scanIO struct {
	mu      sync.Mutex
	acct    *iosim.Accountant
	units   []scanIOUnit
	byJob   []int // morsel index -> unit index
	posted  int   // units submitted so far
	tickets []iosim.Ticket
}

// scanIOUnit is one asynchronous read batch and its outstanding morsels.
type scanIOUnit struct {
	runs, pages, bytes int64
	left               int // unfinished morsels of this unit
}

// newScanIO sizes the per-unit read stats from the morsel list. unitOf maps
// a morsel to its overlap unit index; units must be visited in
// non-decreasing order by the morsel sequence.
func newScanIO(acct *iosim.Accountant, tab *storage.Table, colIdx []int, morsels []scanMorsel, unitOf []int, unitRanges []storage.RowRanges) *scanIO {
	if acct == nil {
		return nil
	}
	io := &scanIO{acct: acct, byJob: unitOf}
	io.units = make([]scanIOUnit, len(unitRanges))
	io.tickets = make([]iosim.Ticket, len(unitRanges))
	for i, ranges := range unitRanges {
		runs, pages, bytes := tab.ReadStats(colIdx, ranges)
		io.units[i] = scanIOUnit{runs: runs, pages: pages, bytes: bytes}
	}
	for _, u := range unitOf {
		io.units[u].left++
	}
	return io
}

// release is the exchange onRelease hook: before morsel job runs, make sure
// its unit and the next one (the lookahead) have been submitted.
func (io *scanIO) release(job int) {
	io.mu.Lock()
	want := io.byJob[job] + 1
	for io.posted <= want && io.posted < len(io.units) {
		u := io.units[io.posted]
		io.tickets[io.posted] = io.acct.Submit(u.runs, u.pages, u.bytes)
		io.posted++
	}
	io.mu.Unlock()
}

// finish is the exchange onFinish hook: when a unit's last morsel completes,
// its overlap window closes.
func (io *scanIO) finish(job int) {
	io.mu.Lock()
	u := io.byJob[job]
	io.units[u].left--
	if io.units[u].left == 0 && u < io.posted {
		io.acct.Wait(io.tickets[u])
	}
	io.mu.Unlock()
}

// close waits any still-open windows (early scan shutdown); Wait is
// idempotent, so units already finished are unaffected.
func (io *scanIO) close() {
	if io == nil {
		return
	}
	io.mu.Lock()
	for i := 0; i < io.posted; i++ {
		io.acct.Wait(io.tickets[i])
	}
	io.mu.Unlock()
}

// startMorselScan fans readers over the morsel list via the shared
// scheduler: each pool worker owns a raw batch and predicate scratch,
// emitted batches are fresh (consumer-owned), tagged per morsel, and merged
// in morsel order. io, when non-nil, drives the asynchronous read model.
func startMorselScan(ctx *Context, sched *Sched, tab *storage.Table, colIdx []int, kinds []vector.Kind, filter expr.Expr, push []storage.PushPred, morsels []scanMorsel, io *scanIO) *exchange {
	workers := sched.Workers()
	raws := make([]*vector.Batch, workers)
	preds := make([]*vector.Vector, workers)
	for w := range raws {
		raws[w] = vector.NewBatch(kinds)
		preds[w] = expr.NewScratch(vector.Int64)
	}
	ex := newExchange(ctx.Mem, sched, 2*workers)
	if io != nil {
		ex.onRelease = io.release
		ex.onFinish = io.finish
	}
	outs := make([]*vector.Batch, workers) // reused until non-empty, then owned by the consumer
	ex.runMorsels(len(morsels), func(job, w int, emit func(*vector.Batch)) error {
		m := morsels[job]
		r := storage.NewReaderPush(tab, colIdx, m.ranges, nil, push)
		for r.Next(raws[w]) {
			if outs[w] == nil {
				outs[w] = vector.NewBatch(kinds)
			}
			out := outs[w]
			filterInto(filter, preds[w], raws[w], out)
			if out.Len() > 0 {
				out.GroupID = m.gid
				out.Grouped = m.grouped
				emit(out)
				outs[w] = nil
			}
		}
		return nil
	})
	return ex
}

// Schema implements Operator.
func (s *TableScan) Schema() expr.Schema { return s.schema }

// resolveScanSchema resolves column names against the stored table.
func resolveScanSchema(t *storage.Table, cols []string) (expr.Schema, []int, error) {
	schema := make(expr.Schema, len(cols))
	idx := make([]int, len(cols))
	for i, name := range cols {
		ci := t.ColumnIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("engine: table %q has no column %q", t.Name, name)
		}
		idx[i] = ci
		schema[i] = expr.ColMeta{Name: name, Kind: t.Cols[ci].Kind}
	}
	return schema, idx, nil
}

// Open implements Operator.
func (s *TableScan) Open(ctx *Context) error {
	schema, idx, err := resolveScanSchema(s.Table, s.Cols)
	if err != nil {
		return err
	}
	s.schema, s.colIdx = schema, idx
	if s.Filter != nil {
		if err := expr.Bind(s.Filter, schema); err != nil {
			return errOp("scan filter", err)
		}
		s.predVec = expr.NewScratch(vector.Int64)
		s.out = vector.NewBatch(schema.Kinds())
	}
	if s.Rename != nil {
		if len(s.Rename) != len(s.schema) {
			return fmt.Errorf("engine: scan of %q: %d renames for %d columns", s.Table.Name, len(s.Rename), len(s.schema))
		}
		renamed := append(expr.Schema{}, s.schema...)
		for i, n := range s.Rename {
			renamed[i].Name = n
		}
		s.schema = renamed
	}
	s.ctx = ctx
	if s.Sched != nil && s.Filter != nil {
		ranges := s.Ranges
		if ranges == nil {
			ranges = storage.FullRange(s.Table.Rows())
		}
		if morsels := ranges.Morsels(morselRows, vector.BatchSize); len(morsels) > 1 {
			for _, m := range morsels {
				s.morsels = append(s.morsels, scanMorsel{ranges: m})
			}
			// The whole range set is one overlap unit: its read is posted
			// asynchronously when the scan starts, and the per-morsel readers
			// run uncharged. Run coalescing matches the serial reader's.
			unitOf := make([]int, len(s.morsels))
			s.io = newScanIO(ctx.Acct, s.Table, idx, s.morsels, unitOf, []storage.RowRanges{ranges})
			return nil
		}
	}
	s.reader = storage.NewReaderPush(s.Table, idx, s.Ranges, ctx.Acct, s.Push)
	s.raw = vector.NewBatch(schema.Kinds())
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*vector.Batch, error) {
	if s.morsels != nil {
		if s.ex == nil {
			s.ex = startMorselScan(s.ctx, s.Sched, s.Table, s.colIdx, s.schema.Kinds(), s.Filter, s.Push, s.morsels, s.io)
		}
		return s.ex.nextBatch()
	}
	for {
		if !s.reader.Next(s.raw) {
			return nil, nil
		}
		if s.Filter == nil {
			return s.raw, nil
		}
		s.out.Reset()
		filterInto(s.Filter, s.predVec, s.raw, s.out)
		if s.out.Len() > 0 {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *TableScan) Close() error {
	if s.ex != nil {
		s.ex.close()
		s.ex = nil
	}
	s.io.close()
	return nil
}

// filterInto evaluates pred on in and appends passing rows to out.
func filterInto(pred expr.Expr, scratch *vector.Vector, in *vector.Batch, out *vector.Batch) {
	scratch.Reset()
	pred.Eval(in, scratch)
	for i, v := range scratch.I64 {
		if v != 0 {
			out.AppendRow(in, i)
		}
	}
	out.GroupID = in.GroupID
	out.Grouped = in.Grouped
}

// PartScanUnit is one run of a partitioned scatter scan: the contiguous
// slice of one group's row ranges owned by one worker. Units are listed in
// (group, run) order, the order the exchange merges them back in, so the
// partitioned stream is byte-identical to the single-box scan's.
type PartScanUnit struct {
	GID    uint64
	Slot   int
	Ranges storage.RowRanges
}

// PartScanPlan is the planner's lowering of a scatter scan onto a
// partitioned backend set: the scan fragment (prepared query-side against
// the coordinator's own table, which is what the failover re-scan runs),
// the placement-pinned units, and the backends index-aligned with the
// units' Slot fields.
type PartScanPlan struct {
	Frag     *Fragment
	Units    []PartScanUnit
	Backends []Backend
}

// GroupedScan is the BDCC scatter scan: it reads a BDCC table group by group
// following a scatter plan, tagging every emitted batch with its group
// identifier ("this scan adds an additional group identifier to the stream,
// that is used during query optimization"). Batches never span groups and
// group identifiers are non-decreasing, so downstream sandwich operators can
// merge-align two grouped streams on their identifiers; groups that come out
// empty after filtering are simply absent from the stream.
type GroupedScan struct {
	BDCC   *core.BDCCTable
	Cols   []string
	Groups []core.ScatterGroup
	Filter expr.Expr
	// Push pushes predicate intervals into the readers (see TableScan.Push).
	Push []storage.PushPred
	// Rename optionally renames output columns (see TableScan.Rename).
	Rename []string
	// Sched is the planner-injected worker-pool handle (see
	// TableScan.Sched). Morsels never cross group boundaries and merge in
	// (group, morsel) order, so the grouped stream keeps group-pure batches
	// with non-decreasing identifiers — downstream sandwich operators are
	// unaffected. Each group's modeled read is posted asynchronously one
	// group ahead of its morsel tasks, overlapping the scattered reads with
	// compute (iosim Submit/Wait).
	Sched *Sched
	// Part, when non-nil, moves the scan to the shared-nothing path: every
	// unit streams from a worker's local partition through the plan's
	// backends, the coordinator only merges the returned group-tagged
	// batches, and no device I/O is charged query-side (the workers report
	// their own reads in the units' done frames). Filter pushdown and the
	// morsel path do not apply here — the fragment re-applies the full
	// filter at the execution site.
	Part *PartScanPlan

	schema  expr.Schema
	colIdx  []int
	ctx     *Context
	gi      int
	reader  *storage.Reader
	raw     *vector.Batch
	out     *vector.Batch
	predVec *vector.Vector

	morsels []scanMorsel
	io      *scanIO
	ex      *exchange
}

// Schema implements Operator.
func (s *GroupedScan) Schema() expr.Schema { return s.schema }

// Open implements Operator. On the serial path, device I/O is charged once
// for the union of all group extents: the scatter scan computes its offsets
// from T_COUNT up front, issues page reads at most once per query
// (buffer-pool semantics), and run boundaries follow the coalesced page runs
// of the union. On the parallel path the charge moves to per-group
// asynchronous submissions (one read batch per scatter group, posted a group
// ahead of the compute), so runs no longer coalesce across group boundaries
// — the scattered per-group requests the paper's storage argument models.
func (s *GroupedScan) Open(ctx *Context) error {
	schema, idx, err := resolveScanSchema(s.BDCC.Data, s.Cols)
	if err != nil {
		return err
	}
	s.schema, s.colIdx = schema, idx
	s.ctx = ctx
	if s.Filter != nil {
		if err := expr.Bind(s.Filter, schema); err != nil {
			return errOp("grouped scan filter", err)
		}
		s.predVec = expr.NewScratch(vector.Int64)
	}
	if s.Rename != nil {
		if len(s.Rename) != len(s.schema) {
			return fmt.Errorf("engine: grouped scan of %q: %d renames for %d columns", s.BDCC.Name, len(s.Rename), len(s.schema))
		}
		renamed := append(expr.Schema{}, s.schema...)
		for i, n := range s.Rename {
			renamed[i].Name = n
		}
		s.schema = renamed
	}
	s.raw = vector.NewBatch(schema.Kinds())
	s.out = vector.NewBatch(schema.Kinds())
	s.gi = -1
	if s.Part != nil {
		// Shared-nothing: the units' pages are read on the workers, charged
		// there and reported back per unit, so the coordinator charges
		// nothing here.
		return nil
	}
	if s.Sched != nil && s.Filter != nil {
		var unitOf []int
		var unitRanges []storage.RowRanges
		for _, g := range s.Groups {
			ms := g.Ranges.Morsels(morselRows, vector.BatchSize)
			if len(ms) == 0 {
				continue
			}
			for _, m := range ms {
				s.morsels = append(s.morsels, scanMorsel{ranges: m, gid: g.GroupID, grouped: true})
				unitOf = append(unitOf, len(unitRanges))
			}
			unitRanges = append(unitRanges, g.Ranges)
		}
		if len(s.morsels) > 1 {
			s.io = newScanIO(ctx.Acct, s.BDCC.Data, idx, s.morsels, unitOf, unitRanges)
			return nil
		}
		s.morsels = nil
	}
	var union storage.RowRanges
	for _, g := range s.Groups {
		union = append(union, g.Ranges...)
	}
	s.BDCC.Data.ChargeIO(ctx.Acct, idx, union.Normalize())
	return nil
}

// startPartScan starts the shared-nothing pipeline: a feeder streams the
// plan's units to their pinned backends through a merge-only exchange sized
// by the set's total worker parallelism, and nextBatch returns the merged
// stream in unit order — (group, run) order, hence byte-identical to the
// single-box scan.
func (s *GroupedScan) startPartScan() *exchange {
	p := s.Part
	look := 0
	for _, b := range p.Backends {
		look += b.Workers()
	}
	ex := newExchange(s.ctx.Mem, nil, look+1)
	ex.seal(len(p.Units))
	ex.wg.Add(1)
	go func() {
		defer ex.wg.Done()
		for i := range p.Units {
			job, ok := ex.claim()
			if !ok {
				return
			}
			u := &p.Units[i]
			ex.beginJob()
			p.Backends[u.Slot].RunGroup(
				&GroupUnit{GID: u.GID, ScanRanges: u.Ranges}, p.Frag,
				func(b *vector.Batch) { ex.post(job, b) },
				func(err error) { ex.finish(job, err) })
		}
	}()
	return ex
}

// Next implements Operator.
func (s *GroupedScan) Next() (*vector.Batch, error) {
	if s.Part != nil {
		if s.ex == nil {
			s.ex = s.startPartScan()
		}
		return s.ex.nextBatch()
	}
	if s.morsels != nil {
		if s.ex == nil {
			s.ex = startMorselScan(s.ctx, s.Sched, s.BDCC.Data, s.colIdx, s.schema.Kinds(), s.Filter, s.Push, s.morsels, s.io)
		}
		return s.ex.nextBatch()
	}
	for {
		if s.reader == nil {
			s.gi++
			if s.gi >= len(s.Groups) {
				return nil, nil
			}
			// I/O was charged for the union at Open; per-group readers do
			// not double-charge.
			s.reader = storage.NewReaderPush(s.BDCC.Data, s.colIdx, s.Groups[s.gi].Ranges, nil, s.Push)
		}
		g := s.Groups[s.gi]
		if !s.reader.Next(s.raw) {
			s.reader = nil
			continue
		}
		s.raw.GroupID = g.GroupID
		s.raw.Grouped = true
		if s.Filter == nil {
			return s.raw, nil
		}
		s.out.Reset()
		filterInto(s.Filter, s.predVec, s.raw, s.out)
		if s.out.Len() > 0 {
			return s.out, nil
		}
	}
}

// Close implements Operator.
func (s *GroupedScan) Close() error {
	if s.ex != nil {
		s.ex.close()
		s.ex = nil
	}
	s.io.close()
	return nil
}
