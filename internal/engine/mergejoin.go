package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// MergeJoin is an inner join of two streams sorted ascending on a single
// int64 key — the join the paper's primary-key baseline gets for
// LINEITEM⋈ORDERS and PARTSUPP⋈PART ("both tables share the major primary
// index key"). Only the current run of duplicate right keys is buffered, so
// its memory footprint is negligible next to a hash join's build side.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey string

	schema   expr.Schema
	ctx      *Context
	leftIdx  int
	rightIdx int

	lb   *vector.Batch
	lpos int

	rb   *vector.Batch
	rpos int

	run      *Buffer
	runKey   int64
	runValid bool
	runPos   int   // next run row to cross with the current left row
	charged  int64 // run bytes currently charged to the memory tracker

	out *vector.Batch
}

// Schema implements Operator.
func (m *MergeJoin) Schema() expr.Schema { return m.schema }

// Open implements Operator.
func (m *MergeJoin) Open(ctx *Context) error {
	m.ctx = ctx
	if err := m.Left.Open(ctx); err != nil {
		return err
	}
	if err := m.Right.Open(ctx); err != nil {
		return err
	}
	ls, rs := m.Left.Schema(), m.Right.Schema()
	m.schema = append(append(expr.Schema{}, ls...), rs...)
	m.leftIdx = ls.IndexOf(m.LeftKey)
	m.rightIdx = rs.IndexOf(m.RightKey)
	if m.leftIdx < 0 || m.rightIdx < 0 {
		return fmt.Errorf("engine: merge join keys %q/%q not found", m.LeftKey, m.RightKey)
	}
	if ls[m.leftIdx].Kind != vector.Int64 || rs[m.rightIdx].Kind != vector.Int64 {
		return fmt.Errorf("engine: merge join requires int64 keys")
	}
	m.run = NewBuffer(rs)
	m.out = vector.NewBatch(m.schema.Kinds())
	return nil
}

// fetchLeft ensures a current left row; returns false at end of stream.
func (m *MergeJoin) fetchLeft() (bool, error) {
	for m.lb == nil || m.lpos >= m.lb.Len() {
		b, err := m.Left.Next()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		m.lb, m.lpos = b, 0
	}
	return true, nil
}

// fetchRight ensures a current right row; returns false at end of stream.
func (m *MergeJoin) fetchRight() (bool, error) {
	for m.rb == nil || m.rpos >= m.rb.Len() {
		b, err := m.Right.Next()
		if err != nil {
			return false, err
		}
		if b == nil {
			return false, nil
		}
		m.rb, m.rpos = b, 0
	}
	return true, nil
}

// loadRun positions the right cursor at key ≥ k and buffers the run of
// right rows with key exactly k (possibly empty).
func (m *MergeJoin) loadRun(k int64) error {
	m.ctx.Mem.Shrink(m.charged)
	m.charged = 0
	m.run.Reset()
	m.runKey, m.runValid = k, true
	defer func() {
		m.charged = m.run.Bytes()
		m.ctx.Mem.Grow(m.charged)
	}()
	for {
		ok, err := m.fetchRight()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rk := m.rb.Cols[m.rightIdx].I64[m.rpos]
		if rk < k {
			m.rpos++
			continue
		}
		if rk > k {
			return nil
		}
		m.run.AppendRow(m.rb, m.rpos)
		m.rpos++
	}
}

// Next implements Operator.
func (m *MergeJoin) Next() (*vector.Batch, error) {
	m.out.Reset()
	for {
		ok, err := m.fetchLeft()
		if err != nil {
			return nil, err
		}
		if !ok {
			if m.out.Len() > 0 {
				return m.out, nil
			}
			return nil, nil
		}
		k := m.lb.Cols[m.leftIdx].I64[m.lpos]
		if !m.runValid || m.runKey != k {
			if m.runValid && k < m.runKey {
				return nil, fmt.Errorf("engine: merge join: left input not sorted (%d after %d)", k, m.runKey)
			}
			if err := m.loadRun(k); err != nil {
				return nil, err
			}
			m.runPos = 0
		}
		for m.runPos < m.run.Len() {
			nl := len(m.lb.Cols)
			for c := 0; c < nl; c++ {
				m.out.Cols[c].AppendFrom(m.lb.Cols[c], m.lpos)
			}
			m.run.WriteRow(m.out, m.runPos, nl)
			m.runPos++
			if m.out.Len() >= vector.BatchSize {
				return m.out, nil
			}
		}
		m.lpos++
		m.runPos = 0
		if m.out.Len() >= vector.BatchSize {
			return m.out, nil
		}
	}
}

// Close implements Operator.
func (m *MergeJoin) Close() error {
	m.ctx.Mem.Shrink(m.charged)
	m.charged = 0
	err1 := m.Left.Close()
	err2 := m.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
