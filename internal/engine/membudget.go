// Process-global memory governance: a MemBudget is the single budget a
// daemon's concurrently running queries reserve their operator memory
// against, and the hierarchical side of MemTracker (AttachBudget) bridges
// the per-query meter to it.
//
// The split of responsibilities keeps the paper's Figure 3 metric exact
// while making the process bound hard:
//
//   - MemTracker.Grow/Shrink/Peak account *exact* bytes, bit-for-bit the
//     same arithmetic whether or not a budget is attached — the per-query
//     peak series is untouched by governance.
//   - Reservations against the budget are made in coarse quanta (default
//     1 MiB) so the hot Grow path hits the process-global mutex once per
//     quantum, not once per batch.
//   - The budget never lends more than its limit: a reservation that does
//     not fit waits in FIFO order for releases, up to the budget's bounded
//     wait, and then fails. Grow cannot return an error (and runs on
//     scheduler pool goroutines that must not panic), so a failed
//     reservation latches an error on the tracker instead; engine.Run
//     checks the latch between batches and aborts the query, whose
//     operators then Close and Shrink normally — accounting stays
//     symmetric on both meters.
//
// The governed quantity is accounted bytes, checked at quantum granularity:
// between an allocation and its Grow call a query can briefly hold real
// memory beyond its reservation, so the budget bounds accounted state, not
// the Go heap.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrMemBudget is the sentinel wrapped by every budget-rejection error, so
// admission layers can tell "query refused under memory pressure" (retryable
// later, reported as a rejection) from query evaluation errors.
var ErrMemBudget = errors.New("engine: process memory budget exhausted")

// DefaultMemQuantum is the reservation granularity trackers use against
// their parent budget when none is configured.
const DefaultMemQuantum = int64(1 << 20)

// MemBudget is a process-global memory budget shared by concurrent queries.
// Per-query MemTrackers attached via AttachBudget reserve quanta from it as
// their accounted bytes grow; when the budget is hot, reservations wait
// (FIFO, bounded by maxWait) for other queries' releases and fail with
// ErrMemBudget when the wait expires. The zero limit is not special-cased:
// a budget always enforces its limit, and a nil *MemBudget disables
// governance entirely.
type MemBudget struct {
	limit   int64
	maxWait time.Duration

	mu       sync.Mutex
	cur      int64
	peak     int64
	waiters  []*budgetWaiter
	queued   int64
	rejected int64
}

type budgetWaiter struct {
	n       int64
	granted chan struct{}
}

// NewMemBudget returns a budget of limit bytes. Reservations that do not
// fit wait up to maxWait for releases before failing; maxWait <= 0 means
// reject immediately, never queue.
func NewMemBudget(limit int64, maxWait time.Duration) *MemBudget {
	return &MemBudget{limit: limit, maxWait: maxWait}
}

// Reserve takes n bytes from the budget, waiting (FIFO behind earlier
// waiters, up to the budget's bounded wait) when it is hot. It returns an
// error wrapping ErrMemBudget — and reserves nothing — when the wait
// expires or queueing is disabled. n > limit can never succeed and fails
// without queueing.
func (b *MemBudget) Reserve(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	b.mu.Lock()
	if n > b.limit {
		b.rejected++
		b.mu.Unlock()
		return fmt.Errorf("reserve %d bytes exceeds budget %d: %w", n, b.limit, ErrMemBudget)
	}
	// Grant immediately only when no earlier waiter is queued: reservations
	// are strictly FIFO so a large waiter cannot be starved by small ones.
	if len(b.waiters) == 0 && b.cur+n <= b.limit {
		b.cur += n
		if b.cur > b.peak {
			b.peak = b.cur
		}
		b.mu.Unlock()
		return nil
	}
	if b.maxWait <= 0 {
		b.rejected++
		cur := b.cur
		b.mu.Unlock()
		return fmt.Errorf("reserve %d bytes (reserved %d of %d, queueing disabled): %w",
			n, cur, b.limit, ErrMemBudget)
	}
	w := &budgetWaiter{n: n, granted: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.queued++
	b.mu.Unlock()

	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return nil
	case <-timer.C:
	}

	b.mu.Lock()
	select {
	case <-w.granted:
		// A release granted us between the timeout firing and the lock.
		b.mu.Unlock()
		return nil
	default:
	}
	for i, x := range b.waiters {
		if x == w {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			break
		}
	}
	b.rejected++
	// Removing a too-big head may unblock smaller waiters behind it.
	b.grantLocked()
	cur := b.cur
	b.mu.Unlock()
	return fmt.Errorf("reserve %d bytes timed out after %s (reserved %d of %d): %w",
		n, b.maxWait, cur, b.limit, ErrMemBudget)
}

// Release returns n previously reserved bytes and hands them to queued
// waiters in FIFO order.
func (b *MemBudget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.cur -= n
	b.grantLocked()
	b.mu.Unlock()
}

// grantLocked grants queued waiters from the front while they fit.
func (b *MemBudget) grantLocked() {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if b.cur+w.n > b.limit {
			return
		}
		b.cur += w.n
		if b.cur > b.peak {
			b.peak = b.cur
		}
		b.waiters = b.waiters[1:]
		close(w.granted)
	}
}

// Limit returns the budget's byte limit.
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Reserved returns the currently reserved bytes across all queries.
func (b *MemBudget) Reserved() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur
}

// PeakReserved returns the high-water mark of summed reservations — by
// construction never above Limit.
func (b *MemBudget) PeakReserved() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Queued returns how many reservations have waited on the budget.
func (b *MemBudget) Queued() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// Rejected returns how many reservations the budget has refused.
func (b *MemBudget) Rejected() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// AttachBudget ties the tracker to a process-global budget: from now on the
// tracker keeps a reservation of at least its accounted bytes (rounded up
// to quantum, <= 0 selects DefaultMemQuantum) against the parent, growing
// it on Grow and trimming it on Shrink. The tracker's own cur/peak
// arithmetic is unchanged — Figure 3 semantics are identical with and
// without a parent. Attach before first use; re-attaching a used tracker is
// not supported.
func (m *MemTracker) AttachBudget(b *MemBudget, quantum int64) {
	if m == nil || b == nil {
		return
	}
	if quantum <= 0 {
		quantum = DefaultMemQuantum
	}
	m.mu.Lock()
	m.parent = b
	m.quantum = quantum
	m.mu.Unlock()
}

// DetachBudget releases the tracker's remaining parent reservation (queries
// shrink back to zero on clean shutdown, but an aborted query's owner calls
// this to guarantee the budget gets every quantum back) and detaches the
// parent. The error latch survives detaching.
func (m *MemTracker) DetachBudget() {
	if m == nil {
		return
	}
	m.mu.Lock()
	parent, give := m.parent, m.reserved
	m.parent = nil
	m.reserved = 0
	m.mu.Unlock()
	parent.Release(give)
}

// Err returns the budget-rejection error latched by a failed reservation,
// nil while the tracker is within budget. Run polls this between batches to
// abort over-budget queries.
func (m *MemTracker) Err() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// ensureReserved grows the parent reservation to cover the tracker's
// accounted bytes. resMu serializes attempts so reserved only ever counts
// granted bytes (Shrink can release concurrently without double-counting)
// and so at most one goroutine of the query waits on the hot budget while
// the others proceed on the already-held mutex-free path.
func (m *MemTracker) ensureReserved() {
	m.resMu.Lock()
	defer m.resMu.Unlock()
	m.mu.Lock()
	if m.failed != nil || m.parent == nil {
		m.mu.Unlock()
		return
	}
	need := m.cur - m.reserved
	quantum, parent := m.quantum, m.parent
	m.mu.Unlock()
	if need <= 0 {
		return
	}
	grab := (need + quantum - 1) / quantum * quantum
	if err := parent.Reserve(grab); err != nil {
		m.mu.Lock()
		if m.failed == nil {
			m.failed = err
		}
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.reserved += grab
	m.mu.Unlock()
}
