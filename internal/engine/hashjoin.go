package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// JoinType selects the join semantics of HashJoin and SandwichHashJoin.
type JoinType uint8

const (
	// InnerJoin emits every matching left/right combination.
	InnerJoin JoinType = iota
	// LeftOuterJoin emits all left rows; unmatched rows carry zero values
	// in the right columns and 0 in the appended __matched column.
	LeftOuterJoin
	// SemiJoin emits left rows with at least one match (left columns only).
	SemiJoin
	// AntiJoin emits left rows with no match (left columns only).
	AntiJoin
)

// MatchedColName is the indicator column appended by left outer joins; the
// engine has no NULLs, so COUNT over an outer join tests this column instead
// (the planner rewrites COUNT(right.col) accordingly).
const MatchedColName = "__matched"

// HashJoin joins its probe (Left) and build (Right) children on key
// equality. The entire build side is materialized into a hash table — the
// memory behaviour the paper's Figure 3 measures and that the sandwich
// variant avoids. An optional Residual predicate over the combined row
// filters matches (used for decorrelated EXISTS subqueries with extra
// conditions, e.g. TPC-H Q21).
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []string
	Type                JoinType
	Residual            expr.Expr

	schema   expr.Schema
	ctx      *Context
	built    bool
	buf      *Buffer
	table    *joinTable
	mapBytes int64

	leftKeyIdx  []int
	rightKeyIdx []int
	out         *vector.Batch

	// probe iteration state
	cur         *vector.Batch
	curRow      int
	probeHashes []uint64
	looked      bool
	matches     []int32 // reused scratch, valid while looked
	matchPos    int
	probeEq     func(int32) bool
	buildEq     func(int32) bool
	buildRow    int32

	// residual scratch
	combined *vector.Batch
	resVec   *vector.Vector
}

// Schema implements Operator.
func (j *HashJoin) Schema() expr.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open(ctx *Context) error {
	j.ctx = ctx
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	ls, rs := j.Left.Schema(), j.Right.Schema()
	switch j.Type {
	case InnerJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
	case LeftOuterJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
		j.schema = append(j.schema, expr.ColMeta{Name: MatchedColName, Kind: vector.Int64})
	case SemiJoin, AntiJoin:
		j.schema = append(expr.Schema{}, ls...)
	}
	var err error
	j.leftKeyIdx, err = keyIndexes(ls, j.LeftKeys)
	if err != nil {
		return errOp("hash join probe keys", err)
	}
	if len(j.LeftKeys) != len(j.RightKeys) {
		return fmt.Errorf("engine: hash join: %d probe keys vs %d build keys", len(j.LeftKeys), len(j.RightKeys))
	}
	if j.Residual != nil {
		combined := append(append(expr.Schema{}, ls...), rs...)
		if err := expr.Bind(j.Residual, combined); err != nil {
			return errOp("hash join residual", err)
		}
		j.combined = vector.NewBatch(combined.Kinds())
		j.resVec = expr.NewScratch(vector.Int64)
	}
	j.rightKeyIdx, err = keyIndexes(rs, j.RightKeys)
	if err != nil {
		return errOp("hash join build keys", err)
	}
	j.probeEq = func(head int32) bool {
		return keysEqualBatchBuf(j.cur, j.leftKeyIdx, j.curRow, j.buf, j.rightKeyIdx, int(head))
	}
	j.buildEq = func(head int32) bool {
		return keysEqualBufBuf(j.buf, j.rightKeyIdx, int(j.buildRow), int(head))
	}
	j.out = vector.NewBatch(j.schema.Kinds())
	return nil
}

func keyIndexes(s expr.Schema, names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		k := s.IndexOf(n)
		if k < 0 {
			return nil, fmt.Errorf("unknown key column %q in schema %v", n, s.Names())
		}
		idx[i] = k
	}
	return idx, nil
}

// build materializes the right child into the hash table, hashing each
// batch's key columns vector-at-a-time. The charged footprint is exact: the
// buffered rows plus the table's flat slot and chain arrays.
func (j *HashJoin) build() error {
	j.buf = NewBuffer(j.Right.Schema())
	j.table = &joinTable{}
	var hashes []uint64
	var prevBytes int64
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		base := int32(j.buf.Len())
		j.buf.AppendBatch(b)
		hashes = vector.HashKeys(b, j.rightKeyIdx, hashes)
		for i := 0; i < b.Len(); i++ {
			j.buildRow = base + int32(i)
			j.table.Insert(hashes[i], j.buildRow, j.buildEq)
		}
		j.mapBytes = j.table.Bytes()
		if grow := j.buf.Bytes() + j.mapBytes - prevBytes; grow > 0 {
			j.ctx.Mem.Grow(grow)
			prevBytes += grow
		}
	}
	j.built = true
	return nil
}

// residualOK evaluates the residual for a (left row, build row) pair.
func (j *HashJoin) residualOK(left *vector.Batch, li int, bi int32) bool {
	if j.Residual == nil {
		return true
	}
	j.combined.Reset()
	nl := len(left.Cols)
	for c := 0; c < nl; c++ {
		j.combined.Cols[c].AppendFrom(left.Cols[c], li)
	}
	j.buf.WriteRow(j.combined, int(bi), nl)
	j.resVec.Reset()
	j.Residual.Eval(j.combined, j.resVec)
	return j.resVec.I64[0] != 0
}

// Next implements Operator.
func (j *HashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	j.out.Reset()
	if j.cur != nil {
		j.out.Grouped = j.cur.Grouped
		j.out.GroupID = j.cur.GroupID
	}
	for {
		if j.cur == nil {
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if j.out.Len() > 0 {
					return j.out, nil
				}
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			// Group boundary: flush so output batches stay group-pure.
			if j.out.Len() > 0 && (b.Grouped != j.out.Grouped || b.GroupID != j.out.GroupID) {
				j.cur, j.curRow, j.matchPos = b, 0, 0
				j.looked = false
				j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
				return j.out, nil
			}
			j.cur, j.curRow, j.matchPos = b, 0, 0
			j.looked = false
			j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
			j.out.Grouped = b.Grouped
			j.out.GroupID = b.GroupID
		}
		for j.curRow < j.cur.Len() {
			if !j.looked {
				head := j.table.Lookup(j.probeHashes[j.curRow], j.probeEq)
				// Semi/anti (and the outer-join miss test) only need
				// existence: walk the chain directly, short-circuiting on
				// the first row that passes the residual.
				switch j.Type {
				case SemiJoin:
					if j.chainAnyMatch(head) {
						j.out.AppendRow(j.cur, j.curRow)
					}
					j.advanceRow()
					continue
				case AntiJoin:
					if !j.chainAnyMatch(head) {
						j.out.AppendRow(j.cur, j.curRow)
					}
					j.advanceRow()
					continue
				case LeftOuterJoin:
					if !j.chainAnyMatch(head) {
						j.emitOuter()
						j.advanceRow()
						continue
					}
				}
				j.matches = j.table.Matches(head, j.matches[:0])
				j.looked = true
				j.matchPos = 0
			}
			// Inner (and matched outer): emit remaining matches.
			for j.matchPos < len(j.matches) {
				bi := j.matches[j.matchPos]
				j.matchPos++
				if !j.residualOK(j.cur, j.curRow, bi) {
					continue
				}
				nl := len(j.cur.Cols)
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(j.cur.Cols[c], j.curRow)
				}
				j.buf.WriteRow(j.out, int(bi), nl)
				if j.Type == LeftOuterJoin {
					j.out.Cols[len(j.out.Cols)-1].AppendInt64(1)
				}
				if j.out.Len() >= vector.BatchSize {
					return j.out, nil
				}
			}
			j.advanceRow()
			if j.out.Len() >= vector.BatchSize {
				return j.out, nil
			}
		}
		j.cur = nil
		if j.out.Len() >= vector.BatchSize {
			return j.out, nil
		}
	}
}

// chainAnyMatch reports whether any build row in head's chain passes the
// residual for the current probe row.
func (j *HashJoin) chainAnyMatch(head int32) bool {
	for bi := head; bi >= 0; bi = j.table.ChainNext(bi) {
		if j.residualOK(j.cur, j.curRow, bi) {
			return true
		}
	}
	return false
}

// emitOuter emits the current left row null-extended (zero values, matched=0).
func (j *HashJoin) emitOuter() {
	nl := len(j.cur.Cols)
	for c := 0; c < nl; c++ {
		j.out.Cols[c].AppendFrom(j.cur.Cols[c], j.curRow)
	}
	rs := j.Right.Schema()
	for c := range rs {
		appendZero(j.out.Cols[nl+c])
	}
	j.out.Cols[len(j.out.Cols)-1].AppendInt64(0)
}

func appendZero(v *vector.Vector) {
	switch v.Kind {
	case vector.Int64:
		v.AppendInt64(0)
	case vector.Float64:
		v.AppendFloat64(0)
	case vector.String:
		v.AppendString("")
	}
}

// advanceRow moves to the next probe row.
func (j *HashJoin) advanceRow() {
	j.curRow++
	j.looked = false
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	if j.buf != nil {
		j.ctx.Mem.Shrink(j.buf.Bytes() + j.mapBytes)
		j.buf = nil
		j.table = nil
	}
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
