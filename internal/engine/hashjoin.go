package engine

import (
	"fmt"
	"sync"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// JoinType selects the join semantics of HashJoin and SandwichHashJoin.
type JoinType uint8

const (
	// InnerJoin emits every matching left/right combination.
	InnerJoin JoinType = iota
	// LeftOuterJoin emits all left rows; unmatched rows carry zero values
	// in the right columns and 0 in the appended __matched column.
	LeftOuterJoin
	// SemiJoin emits left rows with at least one match (left columns only).
	SemiJoin
	// AntiJoin emits left rows with no match (left columns only).
	AntiJoin
)

// MatchedColName is the indicator column appended by left outer joins; the
// engine has no NULLs, so COUNT over an outer join tests this column instead
// (the planner rewrites COUNT(right.col) accordingly).
const MatchedColName = "__matched"

// HashJoin joins its probe (Left) and build (Right) children on key
// equality. The entire build side is materialized into a hash table — the
// memory behaviour the paper's Figure 3 measures and that the sandwich
// variant avoids. An optional Residual predicate over the combined row
// filters matches (used for decorrelated EXISTS subqueries with extra
// conditions, e.g. TPC-H Q21).
//
// With a scheduler handle injected, the build side is inserted
// partition-parallel (each build task owns a slice of the hash space) and
// probe batches fan out as tasks on the query's shared worker pool, where
// each pool worker holds its own hash, match and output scratch; the
// buffered build rows and slot/chain arrays are read-only during probe, and
// output merges in probe-batch order, so results are byte-identical to the
// serial execution.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []string
	Type                JoinType
	Residual            expr.Expr
	// Sched is the planner-injected handle of the query's shared worker
	// pool; nil means serial build and probe.
	Sched *Sched

	schema   expr.Schema
	ctx      *Context
	built    bool
	buf      *Buffer
	table    *partJoinTable
	memBytes int64 // bytes charged to ctx.Mem for buf + table (+ staged hashes)

	leftKeyIdx  []int
	rightKeyIdx []int
	out         *vector.Batch

	// probe iteration state (serial path)
	cur         *vector.Batch
	curRow      int
	probeHashes []uint64
	looked      bool
	matches     []int32 // reused scratch, valid while looked
	matchPos    int
	probeEq     func(int32) bool
	buildEq     func(int32) bool
	buildRow    int32

	// residual scratch (serial path)
	combined *vector.Batch
	resVec   *vector.Vector

	ex *exchange // parallel probe, nil on the serial path
}

// Schema implements Operator.
func (j *HashJoin) Schema() expr.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open(ctx *Context) error {
	j.ctx = ctx
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	ls, rs := j.Left.Schema(), j.Right.Schema()
	switch j.Type {
	case InnerJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
	case LeftOuterJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
		j.schema = append(j.schema, expr.ColMeta{Name: MatchedColName, Kind: vector.Int64})
	case SemiJoin, AntiJoin:
		j.schema = append(expr.Schema{}, ls...)
	}
	var err error
	j.leftKeyIdx, err = keyIndexes(ls, j.LeftKeys)
	if err != nil {
		return errOp("hash join probe keys", err)
	}
	if len(j.LeftKeys) != len(j.RightKeys) {
		return fmt.Errorf("engine: hash join: %d probe keys vs %d build keys", len(j.LeftKeys), len(j.RightKeys))
	}
	if j.Residual != nil {
		combined := append(append(expr.Schema{}, ls...), rs...)
		if err := expr.Bind(j.Residual, combined); err != nil {
			return errOp("hash join residual", err)
		}
		j.combined = vector.NewBatch(combined.Kinds())
		j.resVec = expr.NewScratch(vector.Int64)
	}
	j.rightKeyIdx, err = keyIndexes(rs, j.RightKeys)
	if err != nil {
		return errOp("hash join build keys", err)
	}
	j.probeEq = func(head int32) bool {
		return keysEqualBatchBuf(j.cur, j.leftKeyIdx, j.curRow, j.buf, j.rightKeyIdx, int(head))
	}
	j.buildEq = func(head int32) bool {
		return keysEqualBufBuf(j.buf, j.rightKeyIdx, int(j.buildRow), int(head))
	}
	j.out = vector.NewBatch(j.schema.Kinds())
	return nil
}

func keyIndexes(s expr.Schema, names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		k := s.IndexOf(n)
		if k < 0 {
			return nil, fmt.Errorf("unknown key column %q in schema %v", n, s.Names())
		}
		idx[i] = k
	}
	return idx, nil
}

// workers resolves the effective worker count of this join.
func (j *HashJoin) workers() int {
	if j.Sched == nil {
		return 1
	}
	return j.Sched.Workers()
}

// charge reconciles the accounted bytes with the current footprint of the
// buffered build rows, the hash table, and extra (staged build hashes).
// Grow/Shrink stay symmetric: whatever was charged is released again, so a
// closed join leaves the tracker exactly where it found it.
func (j *HashJoin) charge(extra int64) {
	foot := extra
	if j.buf != nil {
		foot += j.buf.Bytes()
	}
	if j.table != nil {
		foot += j.table.Bytes()
	}
	switch d := foot - j.memBytes; {
	case d > 0:
		j.ctx.Mem.Grow(d)
	case d < 0:
		j.ctx.Mem.Shrink(-d)
	}
	j.memBytes = foot
}

// build materializes the right child into the hash table, hashing each
// batch's key columns vector-at-a-time. The charged footprint is exact: the
// buffered rows plus the table's flat slot and chain arrays. With more than
// one worker the drained rows are staged with their hashes and the
// partition-parallel insert runs afterwards; each partition is owned by
// exactly one worker, so insertion needs no locks.
func (j *HashJoin) build() error {
	workers := j.workers()
	j.buf = NewBuffer(j.Right.Schema())
	j.table = newPartJoinTable(workers)
	var stage []uint64
	var hashes []uint64
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		base := int32(j.buf.Len())
		j.buf.AppendBatch(b)
		hashes = vector.HashKeys(b, j.rightKeyIdx, hashes)
		if workers == 1 {
			for i := 0; i < b.Len(); i++ {
				j.buildRow = base + int32(i)
				j.table.Insert(hashes[i], j.buildRow, j.buildEq)
			}
			j.charge(0)
			continue
		}
		stage = append(stage, hashes...)
		j.charge(8 * int64(cap(stage)))
	}
	if workers > 1 {
		j.table.GrowChains(len(stage))
		// One build task per partition stripe, on the shared scheduler.
		// Stripe w owns partitions p ≡ w (mod workers): one pass over the
		// staged hashes, inserting only its own rows — disjoint writes, no
		// locks. Tasks never block, so waiting here (off the pool, on the
		// consumer goroutine) cannot starve them.
		j.Sched.Retain()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			j.Sched.Submit(-1, func(int) {
				defer wg.Done()
				var row int32
				eq := func(head int32) bool {
					return keysEqualBufBuf(j.buf, j.rightKeyIdx, int(row), int(head))
				}
				for r, h := range stage {
					if p := j.table.PartOf(h); p%workers == w {
						row = int32(r)
						j.table.InsertPresized(h, row, eq)
					}
				}
			})
		}
		wg.Wait()
		j.Sched.Release()
		j.charge(0) // staged hashes released
	}
	j.built = true
	return nil
}

// residualOK evaluates the residual for a (left row, build row) pair.
func (j *HashJoin) residualOK(left *vector.Batch, li int, bi int32) bool {
	if j.Residual == nil {
		return true
	}
	return j.residualOKScratch(left, li, bi, j.combined, j.resVec)
}

// residualOKScratch is residualOK over caller-owned scratch, shared by the
// serial path and the per-worker probe states.
func (j *HashJoin) residualOKScratch(left *vector.Batch, li int, bi int32, combined *vector.Batch, resVec *vector.Vector) bool {
	combined.Reset()
	nl := len(left.Cols)
	for c := 0; c < nl; c++ {
		combined.Cols[c].AppendFrom(left.Cols[c], li)
	}
	j.buf.WriteRow(combined, int(bi), nl)
	resVec.Reset()
	j.Residual.Eval(combined, resVec)
	return resVec.I64[0] != 0
}

// Next implements Operator.
func (j *HashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	if j.workers() > 1 {
		if j.ex == nil {
			j.startParallelProbe()
		}
		return j.ex.nextBatch()
	}
	j.out.Reset()
	if j.cur != nil {
		j.out.Grouped = j.cur.Grouped
		j.out.GroupID = j.cur.GroupID
	}
	for {
		if j.cur == nil {
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if j.out.Len() > 0 {
					return j.out, nil
				}
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			// Group boundary: flush so output batches stay group-pure.
			if j.out.Len() > 0 && (b.Grouped != j.out.Grouped || b.GroupID != j.out.GroupID) {
				j.cur, j.curRow, j.matchPos = b, 0, 0
				j.looked = false
				j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
				return j.out, nil
			}
			j.cur, j.curRow, j.matchPos = b, 0, 0
			j.looked = false
			j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
			j.out.Grouped = b.Grouped
			j.out.GroupID = b.GroupID
		}
		for j.curRow < j.cur.Len() {
			if !j.looked {
				head := j.table.Lookup(j.probeHashes[j.curRow], j.probeEq)
				// Semi/anti (and the outer-join miss test) only need
				// existence: walk the chain directly, short-circuiting on
				// the first row that passes the residual.
				switch j.Type {
				case SemiJoin:
					if j.chainAnyMatch(head) {
						j.out.AppendRow(j.cur, j.curRow)
					}
					j.advanceRow()
					continue
				case AntiJoin:
					if !j.chainAnyMatch(head) {
						j.out.AppendRow(j.cur, j.curRow)
					}
					j.advanceRow()
					continue
				case LeftOuterJoin:
					if !j.chainAnyMatch(head) {
						j.emitOuter()
						j.advanceRow()
						continue
					}
				}
				j.matches = j.table.Matches(head, j.matches[:0])
				j.looked = true
				j.matchPos = 0
			}
			// Inner (and matched outer): emit remaining matches.
			for j.matchPos < len(j.matches) {
				bi := j.matches[j.matchPos]
				j.matchPos++
				if !j.residualOK(j.cur, j.curRow, bi) {
					continue
				}
				nl := len(j.cur.Cols)
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(j.cur.Cols[c], j.curRow)
				}
				j.buf.WriteRow(j.out, int(bi), nl)
				if j.Type == LeftOuterJoin {
					j.out.Cols[len(j.out.Cols)-1].AppendInt64(1)
				}
				if j.out.Len() >= vector.BatchSize {
					return j.out, nil
				}
			}
			j.advanceRow()
			if j.out.Len() >= vector.BatchSize {
				return j.out, nil
			}
		}
		j.cur = nil
		if j.out.Len() >= vector.BatchSize {
			return j.out, nil
		}
	}
}

// probeWorker is the per-worker probe state of the parallel path: hash and
// match scratch, an equality closure over the worker's current row, and
// residual scratch. The shared build table and buffer are read-only here.
type probeWorker struct {
	j        *HashJoin
	hashes   []uint64
	matches  []int32
	cur      *vector.Batch
	curRow   int
	eq       func(int32) bool
	combined *vector.Batch
	resVec   *vector.Vector
}

func (j *HashJoin) newProbeWorker() *probeWorker {
	w := &probeWorker{j: j}
	w.eq = func(head int32) bool {
		return keysEqualBatchBuf(w.cur, j.leftKeyIdx, w.curRow, j.buf, j.rightKeyIdx, int(head))
	}
	if j.Residual != nil {
		combined := append(append(expr.Schema{}, j.Left.Schema()...), j.Right.Schema()...)
		w.combined = vector.NewBatch(combined.Kinds())
		w.resVec = expr.NewScratch(vector.Int64)
	}
	return w
}

func (w *probeWorker) residualOK(bi int32) bool {
	if w.j.Residual == nil {
		return true
	}
	return w.j.residualOKScratch(w.cur, w.curRow, bi, w.combined, w.resVec)
}

func (w *probeWorker) chainAnyMatch(head int32) bool {
	for bi := head; bi >= 0; bi = w.j.table.ChainNext(bi) {
		if w.residualOK(bi) {
			return true
		}
	}
	return false
}

// probeBatch probes one input batch completely, emitting output batches of
// at most BatchSize rows. Output batches inherit the input batch's group
// tags, so grouped streams stay group-pure.
func (w *probeWorker) probeBatch(in *vector.Batch, emit func(*vector.Batch)) {
	j := w.j
	w.cur = in
	w.hashes = vector.HashKeys(in, j.leftKeyIdx, w.hashes)
	kinds := j.schema.Kinds()
	newOut := func() *vector.Batch {
		out := vector.NewBatch(kinds)
		out.GroupID = in.GroupID
		out.Grouped = in.Grouped
		return out
	}
	out := newOut()
	nl := len(in.Cols)
	for r := 0; r < in.Len(); r++ {
		w.curRow = r
		head := j.table.Lookup(w.hashes[r], w.eq)
		switch j.Type {
		case SemiJoin:
			if w.chainAnyMatch(head) {
				out.AppendRow(in, r)
			}
		case AntiJoin:
			if !w.chainAnyMatch(head) {
				out.AppendRow(in, r)
			}
		case LeftOuterJoin, InnerJoin:
			if j.Type == LeftOuterJoin && !w.chainAnyMatch(head) {
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(in.Cols[c], r)
				}
				for i := 0; i < len(j.schema)-nl-1; i++ {
					appendZero(out.Cols[nl+i])
				}
				out.Cols[len(out.Cols)-1].AppendInt64(0)
				break
			}
			w.matches = j.table.Matches(head, w.matches[:0])
			for _, bi := range w.matches {
				if !w.residualOK(bi) {
					continue
				}
				for c := 0; c < nl; c++ {
					out.Cols[c].AppendFrom(in.Cols[c], r)
				}
				j.buf.WriteRow(out, int(bi), nl)
				if j.Type == LeftOuterJoin {
					out.Cols[len(out.Cols)-1].AppendInt64(1)
				}
				if out.Len() >= vector.BatchSize {
					emit(out)
					out = newOut()
				}
			}
		}
		if out.Len() >= vector.BatchSize {
			emit(out)
			out = newOut()
		}
	}
	if out.Len() > 0 {
		emit(out)
	}
}

// startParallelProbe fans probe batches out as tasks on the shared
// scheduler through the order-preserving exchange.
func (j *HashJoin) startParallelProbe() {
	workers := j.workers()
	states := make([]*probeWorker, workers)
	for w := range states {
		states[w] = j.newProbeWorker()
	}
	j.ex = newExchange(j.ctx.Mem, j.Sched, 2*workers)
	j.ex.runStream(j.Left.Next, func(in *vector.Batch, w int, emit func(*vector.Batch)) error {
		states[w].probeBatch(in, emit)
		return nil
	})
}

// chainAnyMatch reports whether any build row in head's chain passes the
// residual for the current probe row.
func (j *HashJoin) chainAnyMatch(head int32) bool {
	for bi := head; bi >= 0; bi = j.table.ChainNext(bi) {
		if j.residualOK(j.cur, j.curRow, bi) {
			return true
		}
	}
	return false
}

// emitOuter emits the current left row null-extended (zero values, matched=0).
func (j *HashJoin) emitOuter() {
	nl := len(j.cur.Cols)
	for c := 0; c < nl; c++ {
		j.out.Cols[c].AppendFrom(j.cur.Cols[c], j.curRow)
	}
	rs := j.Right.Schema()
	for c := range rs {
		appendZero(j.out.Cols[nl+c])
	}
	j.out.Cols[len(j.out.Cols)-1].AppendInt64(0)
}

func appendZero(v *vector.Vector) {
	switch v.Kind {
	case vector.Int64:
		v.AppendInt64(0)
	case vector.Float64:
		v.AppendFloat64(0)
	case vector.String:
		v.AppendString("")
	}
}

// advanceRow moves to the next probe row.
func (j *HashJoin) advanceRow() {
	j.curRow++
	j.looked = false
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	if j.ex != nil {
		j.ex.close()
		j.ex = nil
	}
	j.ctx.Mem.Shrink(j.memBytes)
	j.memBytes = 0
	j.buf = nil
	j.table = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
