package engine

import (
	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// Values replays a materialized result as an operator. The BDCC planner
// pre-executes small dimension-side subtrees to turn their selections into
// bin restrictions (the paper's query-rewriter step that detects e.g. a
// consecutive D_NATION bin range from a region selection); the materialized
// rows are then fed back into the plan through this operator so the subtree
// never runs twice.
type Values struct {
	Rows *Result

	pos int
	out *vector.Batch
}

// Schema implements Operator.
func (v *Values) Schema() expr.Schema { return v.Rows.Schema }

// Open implements Operator.
func (v *Values) Open(ctx *Context) error {
	v.out = vector.NewBatch(v.Rows.Schema.Kinds())
	return nil
}

// Next implements Operator.
func (v *Values) Next() (*vector.Batch, error) {
	n := v.Rows.Rows()
	if v.pos >= n {
		return nil, nil
	}
	hi := v.pos + vector.BatchSize
	if hi > n {
		hi = n
	}
	v.out.Reset()
	for c, col := range v.Rows.Cols {
		dst := v.out.Cols[c]
		switch col.Kind {
		case vector.Int64:
			dst.I64 = append(dst.I64, col.I64[v.pos:hi]...)
		case vector.Float64:
			dst.F64 = append(dst.F64, col.F64[v.pos:hi]...)
		case vector.String:
			dst.Str = append(dst.Str, col.Str[v.pos:hi]...)
		}
	}
	v.pos = hi
	return v.out, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }
