package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bdcc/internal/core"
	"bdcc/internal/expr"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// coClusteredPair builds two tables clustered on a shared dimension "g"
// (domain [0,64)) with join keys such that equal keys imply equal g.
func coClusteredPair(t *testing.T, nL, nR int) (*core.BDCCTable, *core.BDCCTable, *core.Dimension) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	// Right: one row per key; g derived from key.
	rKey := make([]int64, nR)
	rG := make([]int64, nR)
	rPay := make([]int64, nR)
	for i := range rKey {
		rKey[i] = int64(i)
		rG[i] = int64(i) % 64
		rPay[i] = rng.Int63n(1000)
	}
	// Left: many rows referencing right keys; same g derivation.
	lKey := make([]int64, nL)
	lG := make([]int64, nL)
	lID := make([]int64, nL)
	for i := range lKey {
		k := rng.Int63n(int64(nR))
		lKey[i] = k
		lG[i] = k % 64
		lID[i] = int64(i)
	}
	var obs []core.WeightedKey
	for g := int64(0); g < 64; g++ {
		obs = append(obs, core.WeightedKey{Val: core.IntKey(g), Weight: 1})
	}
	dim, err := core.CreateDimension("d_g", "r", []string{"g"}, obs, 6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cols []*storage.Column, gs []int64) *core.BDCCTable {
		tab := storage.MustNewTable(name, 4096, cols...)
		bins := make([]uint64, len(gs))
		for i, g := range gs {
			bins[i] = dim.BinOf(core.IntKey(g))
		}
		bt, err := core.BuildBDCCTable(name, tab, []core.UseBinding{{Dim: dim, BinNos: bins}},
			core.BuildOptions{DisableRelocation: true})
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}
	left := mk("l", []*storage.Column{
		storage.NewInt64Column("lkey", lKey),
		storage.NewInt64Column("lid", lID),
	}, lG)
	right := mk("r", []*storage.Column{
		storage.NewInt64Column("rkey", rKey),
		storage.NewInt64Column("rpay", rPay),
	}, rG)
	return left, right, dim
}

func groupedScan(t *testing.T, bt *core.BDCCTable, cols []string) *GroupedScan {
	t.Helper()
	bits := core.Ones(bt.Uses[0].Mask)
	groups, err := bt.ScatterPlan([]int{0}, []int{bits}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &GroupedScan{BDCC: bt, Cols: cols, Groups: groups}
}

// TestSandwichJoinMatchesHashJoin checks all join types: the sandwiched
// execution over co-clustered group streams must return exactly the hash
// join's rows, with strictly lower peak memory.
func TestSandwichJoinMatchesHashJoin(t *testing.T) {
	left, right, _ := coClusteredPair(t, 20000, 512)
	for name, typ := range map[string]JoinType{
		"inner": InnerJoin, "semi": SemiJoin, "anti": AntiJoin, "leftouter": LeftOuterJoin,
	} {
		typ := typ
		t.Run(name, func(t *testing.T) {
			lb := core.Ones(left.Uses[0].Mask)
			rb := core.Ones(right.Uses[0].Mask)
			g := lb
			if rb < g {
				g = rb
			}
			ctxS := testCtx()
			sj := &SandwichHashJoin{
				Left:     groupedScan(t, left, []string{"lkey", "lid"}),
				Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
				LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"}, Type: typ,
				ProbeShift: uint(lb - g), BuildShift: uint(rb - g),
			}
			resS, err := Run(ctxS, sj)
			if err != nil {
				t.Fatal(err)
			}
			ctxH := testCtx()
			hj := &HashJoin{
				Left:     groupedScan(t, left, []string{"lkey", "lid"}),
				Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
				LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"}, Type: typ,
			}
			resH, err := Run(ctxH, hj)
			if err != nil {
				t.Fatal(err)
			}
			rows := func(r *Result) []string {
				out := make([]string, r.Rows())
				for i := range out {
					out[i] = fmt.Sprint(r.Row(i))
				}
				sort.Strings(out)
				return out
			}
			a, b := rows(resS), rows(resH)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("sandwich %s: %d rows vs hash %d rows", name, len(a), len(b))
			}
			if ctxS.Mem.Peak() >= ctxH.Mem.Peak() {
				t.Errorf("sandwich %s peak %d should undercut hash join peak %d",
					name, ctxS.Mem.Peak(), ctxH.Mem.Peak())
			}
		})
	}
}

// TestSandwichJoinResidual checks residual predicates inside the per-group
// build/probe.
func TestSandwichJoinResidual(t *testing.T) {
	left, right, _ := coClusteredPair(t, 5000, 256)
	lb := core.Ones(left.Uses[0].Mask)
	rb := core.Ones(right.Uses[0].Mask)
	g := lb
	if rb < g {
		g = rb
	}
	mkRes := func() expr.Expr {
		return expr.NewCmp(expr.GT, expr.C("rpay"), expr.Int(500))
	}
	sj := &SandwichHashJoin{
		Left:     groupedScan(t, left, []string{"lkey", "lid"}),
		Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
		Type: SemiJoin, Residual: mkRes(),
		ProbeShift: uint(lb - g), BuildShift: uint(rb - g),
	}
	resS, err := Run(testCtx(), sj)
	if err != nil {
		t.Fatal(err)
	}
	hj := &HashJoin{
		Left:     groupedScan(t, left, []string{"lkey", "lid"}),
		Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
		Type: SemiJoin, Residual: mkRes(),
	}
	resH, err := Run(testCtx(), hj)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Rows() != resH.Rows() {
		t.Fatalf("residual semi: sandwich %d rows, hash %d", resS.Rows(), resH.Rows())
	}
}

// TestFlushOnGroupMatchesHashAggregate: the sandwich aggregation (flush per
// group) must equal plain hash aggregation when the grouping key determines
// the stream group, with lower peak memory.
func TestFlushOnGroupMatchesHashAggregate(t *testing.T) {
	left, _, _ := coClusteredPair(t, 30000, 512)
	mkAggs := func() []AggSpec {
		return []AggSpec{
			{Name: "c", Func: AggCount},
			{Name: "s", Func: AggSum, Arg: expr.C("lid")},
		}
	}
	// lkey determines g (g = lkey % 64), so flushing per group is sound.
	ctxF := testCtx()
	fa := &HashAggregate{Child: groupedScan(t, left, []string{"lkey", "lid"}),
		GroupBy: []string{"lkey"}, Aggs: mkAggs(), FlushOnGroup: true}
	resF, err := Run(ctxF, fa)
	if err != nil {
		t.Fatal(err)
	}
	ctxH := testCtx()
	ha := &HashAggregate{Child: groupedScan(t, left, []string{"lkey", "lid"}),
		GroupBy: []string{"lkey"}, Aggs: mkAggs()}
	resH, err := Run(ctxH, ha)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(r *Result) []string {
		out := make([]string, r.Rows())
		for i := range out {
			out[i] = fmt.Sprint(r.Row(i))
		}
		sort.Strings(out)
		return out
	}
	a, b := rows(resF), rows(resH)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("flush-on-group disagrees: %d vs %d groups", len(a), len(b))
	}
	if ctxF.Mem.Peak() >= ctxH.Mem.Peak() {
		t.Errorf("flushed agg peak %d should undercut hash agg peak %d", ctxF.Mem.Peak(), ctxH.Mem.Peak())
	}
}

// TestGroupedScanStreamContract checks the scatter scan's contract: batches
// are group-pure with non-decreasing identifiers covering all rows.
func TestGroupedScanStreamContract(t *testing.T) {
	left, _, _ := coClusteredPair(t, 8000, 512)
	scan := groupedScan(t, left, []string{"lkey"})
	if err := scan.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var rows int
	var prev uint64
	first := true
	for {
		b, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if !b.Grouped {
			t.Fatal("untagged batch from grouped scan")
		}
		if !first && b.GroupID < prev {
			t.Fatalf("group ids decreased: %d after %d", b.GroupID, prev)
		}
		prev, first = b.GroupID, false
		rows += b.Len()
	}
	if rows != left.Data.Rows() {
		t.Fatalf("grouped scan produced %d of %d rows", rows, left.Data.Rows())
	}
}

// TestSandwichJoinFlushesLargeGroups locks in the batch-size invariant: a
// build group larger than one batch joined against duplicate probe keys
// produces a match fanout far beyond BatchSize per probe batch, and the
// sandwich join must flush mid-loop instead of growing its output without
// bound — every emitted batch stays at most BatchSize rows and group-pure.
func TestSandwichJoinFlushesLargeGroups(t *testing.T) {
	// One co-clustering group (gid 0): build side has 3*BatchSize rows under
	// a single key, probe has 5 rows of that key => 5 * 3 * BatchSize
	// result rows, all from one group.
	nBuild := 3 * vector.BatchSize
	rKey := make([]int64, nBuild)
	rPay := make([]int64, nBuild)
	rG := make([]int64, nBuild)
	for i := range rKey {
		rKey[i] = 7
		rPay[i] = int64(i)
	}
	lKey := []int64{7, 7, 7, 7, 7}
	lID := []int64{0, 1, 2, 3, 4}
	lG := []int64{0, 0, 0, 0, 0}
	var obs []core.WeightedKey
	for g := int64(0); g < 4; g++ {
		obs = append(obs, core.WeightedKey{Val: core.IntKey(g), Weight: 1})
	}
	dim, err := core.CreateDimension("d_g", "r", []string{"g"}, obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cols []*storage.Column, gs []int64) *core.BDCCTable {
		tab := storage.MustNewTable(name, 4096, cols...)
		bins := make([]uint64, len(gs))
		for i, g := range gs {
			bins[i] = dim.BinOf(core.IntKey(g))
		}
		bt, err := core.BuildBDCCTable(name, tab, []core.UseBinding{{Dim: dim, BinNos: bins}},
			core.BuildOptions{DisableRelocation: true})
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}
	left := mk("lbig", []*storage.Column{
		storage.NewInt64Column("lkey", lKey),
		storage.NewInt64Column("lid", lID),
	}, lG)
	right := mk("rbig", []*storage.Column{
		storage.NewInt64Column("rkey", rKey),
		storage.NewInt64Column("rpay", rPay),
	}, rG)
	sj := &SandwichHashJoin{
		Left:     groupedScan(t, left, []string{"lkey", "lid"}),
		Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"}, Type: InnerJoin,
	}
	if err := sj.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	defer sj.Close()
	rows := 0
	for {
		b, err := sj.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if b.Len() > vector.BatchSize {
			t.Fatalf("sandwich join emitted a %d-row batch (max %d): mid-loop flush missing", b.Len(), vector.BatchSize)
		}
		if !b.Grouped {
			t.Fatal("sandwich join emitted an untagged batch")
		}
		rows += b.Len()
	}
	if want := len(lKey) * nBuild; rows != want {
		t.Fatalf("sandwich join produced %d rows, want %d", rows, want)
	}
}

// TestParallelGroupedScanMatchesSerial checks the morsel-parallel grouped
// scan: identical rows in identical order, group-pure batches with
// non-decreasing identifiers.
func TestParallelGroupedScanMatchesSerial(t *testing.T) {
	left, _, _ := coClusteredPair(t, 40000, 512)
	filter := expr.NewCmp(expr.LT, expr.C("lid"), expr.Int(30000))
	run := func(workers int) ([]string, []uint64) {
		scan := groupedScan(t, left, []string{"lkey", "lid"})
		scan.Filter = filter
		ctx := testCtx()
		ctx.Workers = workers
		scan.Sched = ctx.Scheduler()
		if err := scan.Open(ctx); err != nil {
			t.Fatal(err)
		}
		defer scan.Close()
		var rows []string
		var gids []uint64
		prev := uint64(0)
		first := true
		for {
			b, err := scan.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			if !b.Grouped {
				t.Fatal("parallel grouped scan emitted an untagged batch")
			}
			if !first && b.GroupID < prev {
				t.Fatalf("group ids decreased: %d after %d", b.GroupID, prev)
			}
			prev, first = b.GroupID, false
			gids = append(gids, b.GroupID)
			for i := 0; i < b.Len(); i++ {
				rows = append(rows, fmt.Sprintf("%d|%d", b.Cols[0].I64[i], b.Cols[1].I64[i]))
			}
		}
		if cur := ctx.Mem.Current(); cur != 0 {
			t.Fatalf("workers=%d: %d bytes still accounted", workers, cur)
		}
		return rows, gids
	}
	serialRows, _ := run(1)
	if len(serialRows) == 0 {
		t.Fatal("filter selects nothing — vacuous test")
	}
	for _, workers := range []int{2, 4} {
		parRows, _ := run(workers)
		if len(parRows) != len(serialRows) {
			t.Fatalf("workers=%d: %d rows, serial has %d", workers, len(parRows), len(serialRows))
		}
		for i := range parRows {
			if parRows[i] != serialRows[i] {
				t.Fatalf("workers=%d: row %d = %s, serial has %s", workers, i, parRows[i], serialRows[i])
			}
		}
	}
}
