package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestMemTrackerRacingGrowShrink drives many goroutines through balanced
// Grow/Shrink pairs and checks the tracker nets out to zero — the meter's
// basic books-balance invariant under concurrency (run under -race in CI).
func TestMemTrackerRacingGrowShrink(t *testing.T) {
	m := &MemTracker{}
	const goroutines, rounds = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := int64(g%7 + 1)
			for i := 0; i < rounds; i++ {
				m.Grow(n)
				m.Shrink(n)
			}
		}(g)
	}
	wg.Wait()
	if got := m.Current(); got != 0 {
		t.Fatalf("current after balanced grow/shrink = %d, want 0", got)
	}
	if m.Peak() <= 0 {
		t.Fatalf("peak = %d, want > 0", m.Peak())
	}
}

// TestMemTrackerPeakMonotonic samples Peak concurrently with growth and
// checks it never decreases and always covers the final Current.
func TestMemTrackerPeakMonotonic(t *testing.T) {
	m := &MemTracker{}
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var last int64
		for {
			select {
			case <-done:
				return
			default:
			}
			p := m.Peak()
			if p < last {
				t.Errorf("peak went backwards: %d after %d", p, last)
				return
			}
			last = p
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m.Grow(3)
				if i%2 == 1 {
					m.Shrink(2)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	sampler.Wait()
	if m.Peak() < m.Current() {
		t.Fatalf("peak %d < current %d", m.Peak(), m.Current())
	}
}

// TestMemTrackerBudgetSymmetry checks the parent-budget reserve/release
// symmetry: racing balanced Grow/Shrink on several trackers attached to one
// budget must return every reserved quantum, and per-tracker Peak must be
// exactly what an ungoverned tracker reports for the same call sequence.
func TestMemTrackerBudgetSymmetry(t *testing.T) {
	budget := NewMemBudget(1<<30, time.Second)
	const trackers, rounds = 4, 1500
	var wg sync.WaitGroup
	peaks := make([]int64, trackers)
	for g := 0; g < trackers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := &MemTracker{}
			m.AttachBudget(budget, 4096)
			var inner sync.WaitGroup
			for w := 0; w < 3; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for i := 0; i < rounds; i++ {
						m.Grow(1000)
						m.Shrink(1000)
					}
				}()
			}
			inner.Wait()
			if cur := m.Current(); cur != 0 {
				t.Errorf("tracker %d current = %d, want 0", g, cur)
			}
			if err := m.Err(); err != nil {
				t.Errorf("tracker %d latched %v under a roomy budget", g, err)
			}
			peaks[g] = m.Peak()
			m.DetachBudget()
		}(g)
	}
	wg.Wait()
	if got := budget.Reserved(); got != 0 {
		t.Fatalf("budget reserved after all queries shrank to zero = %d, want 0", got)
	}
	if budget.PeakReserved() <= 0 || budget.PeakReserved() > budget.Limit() {
		t.Fatalf("budget peak %d outside (0, %d]", budget.PeakReserved(), budget.Limit())
	}
	for g, p := range peaks {
		if p < 1000 || p > 3000 {
			t.Fatalf("tracker %d peak %d outside the ungoverned range [1000, 3000]", g, p)
		}
	}
}

// TestMemBudgetNeverOvercommits hammers a small budget from many trackers
// and asserts the budget's core guarantee: summed reservations never exceed
// the limit (PeakReserved <= Limit), with the pressure visible as queued
// and/or rejected reservations.
func TestMemBudgetNeverOvercommits(t *testing.T) {
	budget := NewMemBudget(64<<10, 2*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &MemTracker{}
			m.AttachBudget(budget, 8<<10)
			for i := 0; i < 200; i++ {
				m.Grow(20 << 10)
				time.Sleep(50 * time.Microsecond)
				m.Shrink(20 << 10)
			}
			m.DetachBudget()
		}()
	}
	wg.Wait()
	if budget.PeakReserved() > budget.Limit() {
		t.Fatalf("peak reserved %d exceeds limit %d", budget.PeakReserved(), budget.Limit())
	}
	if got := budget.Reserved(); got != 0 {
		t.Fatalf("reserved after detach = %d, want 0", got)
	}
	if budget.Queued() == 0 && budget.Rejected() == 0 {
		t.Fatalf("8 trackers × 20KiB against a 64KiB budget produced no queueing and no rejections")
	}
}

// TestMemBudgetRejectLatch checks that an impossible reservation latches
// ErrMemBudget on the tracker without disturbing its exact accounting, and
// that the latch survives further Grow/Shrink traffic.
func TestMemBudgetRejectLatch(t *testing.T) {
	budget := NewMemBudget(4<<10, 0)
	m := &MemTracker{}
	m.AttachBudget(budget, 1<<10)
	m.Grow(64 << 10)
	if err := m.Err(); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("Err() = %v, want ErrMemBudget", err)
	}
	if got := m.Current(); got != 64<<10 {
		t.Fatalf("current = %d, want %d (accounting must stay exact past rejection)", got, 64<<10)
	}
	m.Grow(1 << 10)
	m.Shrink(65 << 10)
	if got := m.Current(); got != 0 {
		t.Fatalf("current after unwind = %d, want 0", got)
	}
	if err := m.Err(); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("latch cleared by unwind: %v", err)
	}
	m.DetachBudget()
	if got := budget.Reserved(); got != 0 {
		t.Fatalf("budget reserved = %d, want 0", got)
	}
	if budget.Rejected() == 0 {
		t.Fatal("rejected counter = 0, want > 0")
	}
}

// TestMemBudgetFIFOWait checks bounded-wait queueing: a reservation that
// does not fit waits for a release and then succeeds, in arrival order.
func TestMemBudgetFIFOWait(t *testing.T) {
	budget := NewMemBudget(10, 5*time.Second)
	if err := budget.Reserve(8); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	got := make(chan int, 2)
	start := make(chan struct{})
	go func() {
		<-start
		if err := budget.Reserve(6); err != nil {
			t.Errorf("queued reserve(6): %v", err)
		}
		got <- 6
	}()
	close(start)
	for budget.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		if err := budget.Reserve(5); err != nil {
			t.Errorf("queued reserve(5): %v", err)
		}
		got <- 5
	}()
	time.Sleep(5 * time.Millisecond)
	// cur is 8 with 6 then 5 queued: releasing 8 grants only the head (6;
	// 6+5 would overshoot), so completion order pins FIFO.
	budget.Release(8)
	if first := <-got; first != 6 {
		t.Fatalf("grant order: got %d first, want 6 (FIFO)", first)
	}
	budget.Release(6)
	if second := <-got; second != 5 {
		t.Fatalf("grant order: got %d second, want 5", second)
	}
	budget.Release(5)
	if budget.Reserved() != 0 {
		t.Fatalf("reserved = %d, want 0", budget.Reserved())
	}
}
