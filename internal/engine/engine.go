// Package engine implements the vectorized query executor the reproduction
// runs its workloads on: batch-at-a-time operators (scans, filters, hash /
// merge joins, aggregation, sorting) in the style of the paper's host
// system, plus the sandwich operators of the paper's reference [3] ("Query
// Processing of Pre-Partitioned Data Using Sandwich Operators") that exploit
// BDCC's co-clustered group streams to shrink hash tables to one group at a
// time.
//
// Every operator charges its device reads to the execution context's I/O
// accountant and its materialized state (hash tables, sort buffers) to the
// memory tracker; the paper's Figure 2 (cold time) and Figure 3 (peak query
// memory) series are produced from exactly these two meters.
//
// # Morsel-driven parallelism
//
// Parallel execution runs on one scheduler per query: the Context owns a
// single pool of exactly Workers goroutines (Sched, created lazily by
// Context.Scheduler when the Workers knob exceeds one) with per-worker
// deques and task stealing. The planner injects the scheduler handle into
// the operators it permits to parallelize; operators submit tasks — scan
// morsels, join partition-builds and probe jobs, aggregation partitions,
// sandwich per-group joins — instead of spawning goroutines, so a
// scan→join→agg pipeline keeps total busy goroutines at Workers plus a
// small constant of coordinators (stream feeders) rather than one pool per
// operator. The threading contract is strict:
//
//   - Scheduler tasks never block on exchange or operator state. The
//     order-preserving exchange applies backpressure by releasing jobs only
//     while its consumption window and buffer cap allow; coordinator
//     goroutines (feeders) may block, pool workers may not. This is what
//     makes sharing one pool across pipeline stages deadlock-free.
//   - Build state is frozen before fan-out: a hash join's buffered rows and
//     slot/chain arrays are written only during build and are read-only
//     while probe tasks run. Aggregation partitions and sandwich group
//     tasks own their hash state exclusively and never share mutable state;
//     partition jobs of one aggregation partition run strictly one at a
//     time, in routing order.
//   - Each pool worker owns its per-worker scratch (probe hashes, match
//     lists, output batches, expression scratch), indexed by the worker id
//     the scheduler passes to every task. Bound expressions are safe to
//     share — Eval allocates per-call scratch and nodes are immutable after
//     Bind.
//   - Every parallel operator merges task output order-preservingly through
//     the exchange (morsel order for scans, input-batch order for joins,
//     group order for sandwich pipelines, global first-seen group order for
//     aggregations), so workers=1 and workers=N produce byte-identical
//     results.
//   - Task-held batches and per-task state are charged to the shared
//     MemTracker (which is mutex-protected) with exact Grow/Shrink pairs;
//     closing an exchange joins every in-flight task and feeder before
//     releasing buffered bytes, so an abandoned consumer (early Limit,
//     downstream error) leaves neither goroutines nor accounted memory
//     behind.
//
// Grouped scans additionally overlap their modeled I/O with compute: with a
// multi-worker scheduler they post each scatter group's read asynchronously
// (iosim Submit/Wait) one group ahead of the morsel tasks, so the cold-time
// model charges max(io, cpu) per overlap window instead of io + cpu.
//
// # Backends and sharding
//
// The scheduler handle is also the scale-out seam. Sched implements the
// Executor interface (the task-execution contract extracted from the local
// pool), and the Backend interface (backend.go) generalizes it across a
// transport: BDCC groups are self-contained work units, so a sandwich join
// with an injected backend set ships its plan Fragment once at setup and
// each aligned group — a GroupUnit of cloned batches, serialized to
// vector.Batch bytes by the transport — to the backend the router places it
// on, instead of running it on the local pool. The contract extends as
// follows:
//
//   - A Fragment (fragment.go) is the complete per-operator configuration:
//     for the group join, input schemas, join keys, join type, and
//     residual; for the partitioned scatter scan, the table name, output
//     schema, and filter. Fragment.Run touches only its unit, per-call
//     state, and the fragment's frozen bound state (read-only after
//     Prepare), so it runs identically on a local pool task, an in-process
//     simulated remote, or a bdccworker daemon that received the fragment
//     over the wire. Hash-table memory is metered on the box that builds it
//     (the fragment's Mem hook): the query's tracker locally, the worker's
//     tracker remotely; scan device reads likewise charge the box that
//     performs them (the fragment's Acct locally, per-unit ScanStats
//     reported in done frames remotely).
//   - Units come in two shapes (backend.go): join units carry a group's
//     cloned batches to whichever backend the router picks; scan units
//     carry only row ranges, pinned to the worker holding the table
//     partition the planner shipped there (Context.Partition). Backends
//     invoke emit sequentially per unit and done exactly once; emitted
//     batches must not share memory with the shipped unit. The exchange
//     registers every shipped unit (beginJob) and close joins all done
//     callbacks, so an abandoned consumer leaves no in-flight units,
//     goroutines, or accounted bytes behind — on either side of the
//     transport.
//   - The exchange merges backend results in group order exactly as it
//     merges local task output, so results are byte-identical across shard
//     counts, routing policies, transports, and data placement (the Shards
//     knob's 0/1 single-box setting preserves the paper's measurement setup
//     outright), and a unit rerouted after a worker failure — to a
//     survivor for joins, to the coordinator's full table copy for scans —
//     reproduces the same bytes the failed backend would have.
package engine

import (
	"fmt"
	"sync"
	"time"

	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/vector"
)

// Context carries per-query execution state shared by all operators.
type Context struct {
	// Acct records device I/O; nil disables I/O accounting.
	Acct *iosim.Accountant
	// Mem tracks operator memory; nil disables memory accounting.
	Mem *MemTracker
	// Workers is the morsel-parallelism knob: the per-query scheduler runs
	// this many pool goroutines, shared by every parallel operator of the
	// plan. Values below 2 (including the zero value) mean serial execution,
	// preserving the paper's single-threaded measurement setup;
	// DefaultWorkers() uses all cores.
	Workers int
	// Shards is the scale-out knob: how many backends the query's BDCC
	// group streams are sharded across. Values below 2 (including the zero
	// value) mean single-box execution — no backends, no transport, the
	// paper's measurement setup unchanged. With Shards ≥ 2 the planner
	// installs one backend set (Backends, Net) per query — simulated remotes
	// by default, real TCP workers when Remotes is set — and routes each
	// aligned sandwich group to a backend; results stay byte-identical
	// across shard counts.
	Shards int
	// Remotes lists bdccworker daemon addresses (host:port). When non-empty
	// the planner dials one TCP backend per address instead of building
	// simulated remotes, and Shards is ignored in favor of len(Remotes).
	Remotes []string
	// Balance selects the group-placement policy of the backend set:
	// "hash" (the default, also the zero value) places groups by group-id
	// hash; "size" places each group on the backend with the least
	// cumulative routed bytes. Results are byte-identical across policies.
	Balance string
	// AuthToken is the shared secret presented in the wire protocol's hello
	// frame when dialing remote backends; empty means no token. It must
	// match the workers' configured token or the dial is dropped.
	AuthToken string
	// SharedBackends marks Backends as owned by a longer-lived host (the
	// bdccd daemon's process-lifetime worker sessions, multiplexed across
	// queries) rather than by this query: CloseBackends becomes a no-op and
	// the host tears the set down at process shutdown.
	SharedBackends bool
	// Backends is the per-query backend set the planner installed when
	// Shards exceeds one (one entry per shard); nil means single-box. The
	// query owner closes it via CloseBackends once execution finishes.
	Backends []Backend
	// Route is the backend set's group-placement function (group id and
	// unit bytes → backend index), installed together with Backends so
	// every operator of the query — and every placement policy — agrees on
	// where a group lives.
	Route func(gid uint64, bytes int64) int
	// Net records the cross-backend transport activity of a sharded query
	// (one accountant shared by the backend set); nil when single-box. For
	// simulated remotes the recorded time models a 10 GbE link; for real
	// TCP backends the message and byte counts are real while the time
	// remains the model's (the wall clock already contains the real cost).
	Net *iosim.Accountant
	// Loads reports the routed load per backend of the query's set (units
	// and bytes placed on each shard); nil when single-box. Installed by
	// the planner together with Backends.
	Loads func() []BackendLoad
	// ProbeBase and ProbeMax tune the health prober's reconnect backoff for
	// dialed TCP backends (first delay and cap of the jittered exponential
	// sequence); zero values select the shard layer's defaults.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// Health reports the per-backend failover health of the query's set
	// (retries, downs, re-admissions); nil when single-box. Installed by
	// the planner together with Backends.
	Health func() []BackendHealth
	// FallbackUnits reports how many units ran on the coordinator's local
	// fallback because no remote backend survived them; nil when single-box.
	FallbackUnits func() int64
	// Partition is the shared-nothing knob: with it set (and a backend set
	// installed), the planner partitions each BDCC base table across the
	// workers, ships every worker its partition once, and lowers scatter
	// scans to placement-pinned scan units that stream from worker-local
	// storage — the coordinator charges no device I/O for them and only
	// merges the returned group batches. Ignored when single-box.
	Partition bool
	// WorkerIO reports the per-worker scan device reads of a partitioned
	// query (index-aligned with the backend set), fed by the read stats the
	// workers return in scan units' done frames; nil when not partitioned.
	// Installed by the planner together with Backends.
	WorkerIO func() []iosim.Stats

	sched *Sched
}

// WorkerIOStats returns the per-worker scan device reads of a partitioned
// query; nil when single-box or not partitioned. Like ShardLoads, it must
// be read before CloseBackends.
func (c *Context) WorkerIOStats() []iosim.Stats {
	if c == nil || c.WorkerIO == nil {
		return nil
	}
	return c.WorkerIO()
}

// ShardLoads returns the per-backend routed load of the query's backend
// set; nil when single-box.
func (c *Context) ShardLoads() []BackendLoad {
	if c == nil || c.Loads == nil {
		return nil
	}
	return c.Loads()
}

// NetStats returns the modeled network activity of the query's backend set;
// zero when single-box.
func (c *Context) NetStats() iosim.Stats {
	if c == nil || c.Net == nil {
		return iosim.Stats{}
	}
	return c.Net.Stats()
}

// HealthStats returns the per-backend failover health of the query's
// backend set; nil when single-box. Like ShardLoads, it must be read before
// CloseBackends.
func (c *Context) HealthStats() []BackendHealth {
	if c == nil || c.Health == nil {
		return nil
	}
	return c.Health()
}

// LocalFallbackUnits returns how many units ran on the coordinator's local
// fallback because no remote backend survived them; zero when single-box.
func (c *Context) LocalFallbackUnits() int64 {
	if c == nil || c.FallbackUnits == nil {
		return 0
	}
	return c.FallbackUnits()
}

// CloseBackends shuts down the query's backend set, joining every backend's
// goroutines, and returns the first close error. It is idempotent and a
// no-op for single-box contexts and for contexts borrowing a shared set
// (SharedBackends) — those sessions outlive the query and are closed by
// their host. Callers close after the operator tree is closed — the
// exchanges have joined all in-flight units by then.
func (c *Context) CloseBackends() error {
	if c.SharedBackends {
		return nil
	}
	var first error
	for _, b := range c.Backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.Backends = nil
	c.Route = nil
	c.Loads = nil
	c.Health = nil
	c.FallbackUnits = nil
	c.WorkerIO = nil
	return first
}

// Scheduler returns the context's shared worker pool, creating it on first
// use, or nil when the Workers knob keeps execution serial. The planner
// injects this one handle into every operator it permits to parallelize —
// the scheduler abstraction is also the seam where future remote backends
// plug in.
func (c *Context) Scheduler() *Sched {
	if c == nil || c.Workers < 2 {
		return nil
	}
	if c.sched == nil {
		c.sched = NewSched(c.Workers)
	}
	return c.sched
}

// SetScheduler installs a pre-created scheduler pool on the context in
// place of the lazily created per-query pool, aligning the Workers knob
// with the pool's size so operators fan out consistently. The caller owns
// the pool's lifecycle: it must hold its own Retain for as long as the pool
// is shared (operators' paired Retain/Release then never drop it to zero)
// and Release it when done. This is how the daemon runs many queries on a
// bounded number of process-lifetime pools.
func (c *Context) SetScheduler(s *Sched) {
	c.sched = s
	if s != nil {
		c.Workers = s.Workers()
	}
}

// NewContext returns a context with fresh meters for the given device.
func NewContext(dev iosim.Device) *Context {
	return &Context{Acct: iosim.NewAccountant(dev), Mem: &MemTracker{}}
}

// Options bundles the execution knobs every front end (tpchbench, the tpch
// test harness, bdccd) applies to a query context, so the knob wiring
// lives in exactly one place.
type Options struct {
	// Workers is Context.Workers (morsel parallelism; <2 = serial).
	Workers int
	// Shards is Context.Shards (simulated backend count; <2 = single-box).
	Shards int
	// Remotes is Context.Remotes (bdccworker addresses; overrides Shards).
	Remotes []string
	// Balance is Context.Balance (group placement: "hash" | "size").
	Balance string
	// ProbeBase/ProbeMax tune the health prober's reconnect backoff.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// AuthToken is the shared secret for the workers' hello frames.
	AuthToken string
	// Partition is Context.Partition (worker-local base tables and shipped
	// scatter scans; needs Shards ≥ 2 or Remotes).
	Partition bool
}

// Apply copies the option set's knobs onto a context.
func (o Options) Apply(c *Context) {
	c.Workers = o.Workers
	c.Shards = o.Shards
	c.Remotes = o.Remotes
	c.Balance = o.Balance
	c.ProbeBase = o.ProbeBase
	c.ProbeMax = o.ProbeMax
	c.AuthToken = o.AuthToken
	c.Partition = o.Partition
}

// NewContext returns a context with fresh meters for the given device and
// the option set's knobs applied.
func (o Options) NewContext(dev iosim.Device) *Context {
	c := NewContext(dev)
	o.Apply(c)
	return c
}

// MemTracker accounts the bytes of materialized operator state (hash
// tables, buffered groups, sort runs). Peak is the query's high-water mark —
// the metric of the paper's Figure 3.
//
// A tracker is optionally hierarchical: AttachBudget ties it to a
// process-global MemBudget shared by concurrent queries (see membudget.go).
// The cur/peak arithmetic below is identical with and without a parent;
// governance only adds quantum-granular reservations on the side.
type MemTracker struct {
	mu   sync.Mutex
	cur  int64
	peak int64

	// Hierarchical state (membudget.go); all zero for a standalone tracker.
	parent   *MemBudget
	quantum  int64
	reserved int64
	failed   error
	resMu    sync.Mutex
}

// Grow records the allocation of n bytes.
func (m *MemTracker) Grow(n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cur += n
	if m.cur > m.peak {
		m.peak = m.cur
	}
	covered := m.parent == nil || m.cur <= m.reserved || m.failed != nil
	m.mu.Unlock()
	if !covered {
		m.ensureReserved()
	}
}

// Shrink records the release of n bytes.
func (m *MemTracker) Shrink(n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cur -= n
	var give int64
	var parent *MemBudget
	if m.parent != nil {
		keep := int64(0)
		if m.cur > 0 {
			keep = (m.cur + m.quantum - 1) / m.quantum * m.quantum
		}
		if m.reserved > keep {
			give = m.reserved - keep
			m.reserved = keep
			parent = m.parent
		}
	}
	m.mu.Unlock()
	parent.Release(give)
}

// Peak returns the high-water mark in bytes.
func (m *MemTracker) Peak() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Current returns the currently accounted bytes.
func (m *MemTracker) Current() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Operator is a pull-based vectorized operator. Next returns nil at end of
// stream; the returned batch is owned by the operator and valid until the
// following Next or Close call.
type Operator interface {
	// Schema describes the produced columns.
	Schema() expr.Schema
	// Open prepares execution; it must be called exactly once before Next.
	Open(ctx *Context) error
	// Next produces the next batch, or nil at end of stream.
	Next() (*vector.Batch, error)
	// Close releases resources; it must be called exactly once.
	Close() error
}

// Result is a fully materialized query result.
type Result struct {
	Schema expr.Schema
	Cols   []*vector.Vector
}

// Rows returns the number of result rows.
func (r *Result) Rows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Row renders row i as display strings (stable across schemes, used by the
// cross-scheme equivalence tests).
func (r *Result) Row(i int) []string {
	out := make([]string, len(r.Cols))
	for c, col := range r.Cols {
		out[c] = col.GetString(i)
	}
	return out
}

// Run executes an operator tree to completion and materializes the result.
func Run(ctx *Context, op Operator) (*Result, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	res := &Result{Schema: op.Schema()}
	for _, c := range op.Schema() {
		res.Cols = append(res.Cols, vector.NewVector(c.Kind, vector.BatchSize))
	}
	for {
		// A tracker governed by a process budget latches rejection instead
		// of erroring inside Grow (which has no error path and runs on pool
		// goroutines); surface it here so an over-budget query aborts
		// between batches and its operators unwind normally.
		if err := ctx.Mem.Err(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		for c, col := range res.Cols {
			src := b.Cols[c]
			switch col.Kind {
			case vector.Int64:
				col.I64 = append(col.I64, src.I64...)
			case vector.Float64:
				col.F64 = append(col.F64, src.F64...)
			case vector.String:
				col.Str = append(col.Str, src.Str...)
			}
		}
	}
}

func errOp(op string, err error) error { return fmt.Errorf("engine: %s: %w", op, err) }
