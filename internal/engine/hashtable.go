package engine

import "bdcc/internal/vector"

// This file is the engine's shared vectorized hashing subsystem. Key
// columns are hashed batch-at-a-time into reusable []uint64 scratch
// (vector.HashKeys) and looked up in flat open-addressing tables instead of
// Go string maps: no per-row key encoding, no per-row allocation, and an
// exact byte footprint (a few flat slices) for the memory tracker behind
// the paper's Figure 3. Collisions are verified against the materialized
// build rows through a caller-supplied equality predicate.

// oaTable is a linear-probing open-addressing index from 64-bit key hashes
// to int32 payloads. Slots with payload -1 are empty; equal stored hashes
// are verified with the caller's equality predicate before a slot counts as
// a match. The table grows by doubling at ~70% load.
type oaTable struct {
	hashes []uint64
	vals   []int32
	mask   uint64
	used   int
}

// oaMinSlots is the initial slot count (power of two).
const oaMinSlots = 64

// Len returns the number of occupied slots (distinct keys).
func (t *oaTable) Len() int { return t.used }

// Bytes returns the exact footprint of the slot arrays.
func (t *oaTable) Bytes() int64 { return int64(len(t.hashes))*8 + int64(len(t.vals))*4 }

// Reset empties the table, keeping its slot capacity.
func (t *oaTable) Reset() {
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.used = 0
}

// grow doubles (or initializes) the slot arrays and re-places the occupied
// slots. Equal keys share one slot, so re-placement needs no key equality:
// stored hashes alone resolve to distinct keys.
func (t *oaTable) grow() {
	n := 2 * len(t.vals)
	if n == 0 {
		n = oaMinSlots
	}
	oldHashes, oldVals := t.hashes, t.vals
	t.hashes = make([]uint64, n)
	t.vals = make([]int32, n)
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.mask = uint64(n - 1)
	for i, v := range oldVals {
		if v < 0 {
			continue
		}
		h := oldHashes[i]
		j := h & t.mask
		for t.vals[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.hashes[j], t.vals[j] = h, v
	}
}

// Reserve makes room for one more distinct key. It must be called before a
// FindSlot whose result may be inserted into: growth rehashes and
// invalidates previously returned slots.
func (t *oaTable) Reserve() {
	if (t.used+1)*10 > len(t.vals)*7 {
		t.grow()
	}
}

// FindSlot probes for hash h. eq verifies a hash-equal slot's payload
// against the sought key. It returns the slot holding an equal key
// (found=true), or the empty slot where the key belongs (found=false).
func (t *oaTable) FindSlot(h uint64, eq func(int32) bool) (slot int, found bool) {
	j := h & t.mask
	for {
		v := t.vals[j]
		if v < 0 {
			return int(j), false
		}
		if t.hashes[j] == h && eq(v) {
			return int(j), true
		}
		j = (j + 1) & t.mask
	}
}

// Insert claims the empty slot returned by FindSlot for (h, v).
func (t *oaTable) Insert(slot int, h uint64, v int32) {
	t.hashes[slot] = h
	t.vals[slot] = v
	t.used++
}

// Payload returns the payload stored in slot.
func (t *oaTable) Payload(slot int) int32 { return t.vals[slot] }

// SetPayload overwrites the payload of an occupied slot.
func (t *oaTable) SetPayload(slot int, v int32) { t.vals[slot] = v }

// partJoinTable indexes the build side of a hash join: key hashes map to
// chains of build row numbers (duplicates linked through a flat next
// array), with the hash space split by the top hash bits into a
// power-of-two number of partitions, each an independent open-addressing
// table over one shared chain array. Partitioning makes the build phase
// parallel (each partition is owned by exactly one worker, and chain slots
// next[r] are written only by the owner of row r's partition) while probes
// stay lock-free single lookups. Serial users (SandwichHashJoin's per-group
// builds) run it with a single partition.
type partJoinTable struct {
	parts []oaTable
	next  []int32
	shift uint // partition index of hash h is h >> shift
}

// newPartJoinTable returns an empty table with the smallest power-of-two
// partition count ≥ workers.
func newPartJoinTable(workers int) *partJoinTable {
	p := 1
	bits := uint(0)
	for p < workers {
		p <<= 1
		bits++
	}
	return &partJoinTable{parts: make([]oaTable, p), shift: 64 - bits}
}

// Reset empties the table, keeping slot capacity (sandwich joins rebuild it
// once per co-clustering group).
func (t *partJoinTable) Reset() {
	for i := range t.parts {
		t.parts[i].Reset()
	}
	t.next = t.next[:0]
}

// PartOf returns the partition index of hash h.
func (t *partJoinTable) PartOf(h uint64) int { return int(h >> t.shift) }

// Bytes returns the exact footprint of all slot arrays plus the chain array.
func (t *partJoinTable) Bytes() int64 {
	n := int64(cap(t.next)) * 4
	for i := range t.parts {
		n += t.parts[i].Bytes()
	}
	return n
}

// Len returns the number of indexed build rows.
func (t *partJoinTable) Len() int { return len(t.next) }

// Insert indexes build row r (which must be len(next): rows arrive in
// order) under hash h — the serial, incremental build path.
func (t *partJoinTable) Insert(h uint64, r int32, eq func(int32) bool) {
	t.next = append(t.next, -1)
	t.insertChained(h, r, eq)
}

// GrowChains presizes the chain array for n build rows so that parallel
// partition owners can insert without appends (disjoint writes only).
func (t *partJoinTable) GrowChains(n int) { t.next = make([]int32, n) }

// InsertPresized indexes build row r into its partition after GrowChains;
// only the owner of r's partition may call it for r.
func (t *partJoinTable) InsertPresized(h uint64, r int32, eq func(int32) bool) {
	t.next[r] = -1
	t.insertChained(h, r, eq)
}

func (t *partJoinTable) insertChained(h uint64, r int32, eq func(int32) bool) {
	oa := &t.parts[h>>t.shift]
	oa.Reserve()
	slot, found := oa.FindSlot(h, eq)
	if found {
		t.next[r] = oa.Payload(slot)
		oa.SetPayload(slot, r)
	} else {
		oa.Insert(slot, h, r)
	}
}

// Lookup returns the chain head row for hash h, or -1. eq compares the
// probe key against a candidate head row's key. Lookups are read-only and
// safe to run concurrently once the build is complete.
func (t *partJoinTable) Lookup(h uint64, eq func(int32) bool) int32 {
	oa := &t.parts[h>>t.shift]
	if oa.used == 0 {
		return -1
	}
	slot, found := oa.FindSlot(h, eq)
	if !found {
		return -1
	}
	return oa.Payload(slot)
}

// ChainNext returns the chain successor of build row r (-1 ends the chain).
func (t *partJoinTable) ChainNext(r int32) int32 { return t.next[r] }

// Matches appends the chain of head to dst (callers pass scratch[:0]) in
// build insertion order and returns it.
func (t *partJoinTable) Matches(head int32, dst []int32) []int32 {
	for r := head; r >= 0; r = t.next[r] {
		dst = append(dst, r)
	}
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// distinctSet is an open-addressing set of scalar values backing
// COUNT(DISTINCT ...) states, replacing per-value map[string]struct{} and
// its fmt.Sprintf keys.
type distinctSet struct {
	oa       oaTable
	vals     *vector.Vector
	valBytes int64
	bytes    int64
	eq       func(int32) bool
	pv       *vector.Vector
	pr       int
}

// newDistinctSet returns an empty set for values of kind k.
func newDistinctSet(k vector.Kind) *distinctSet {
	d := &distinctSet{vals: vector.NewVector(k, 0)}
	d.eq = func(i int32) bool { return d.vals.KeyEqual(int(i), d.pv, d.pr) }
	return d
}

// Len returns the number of distinct values.
func (d *distinctSet) Len() int {
	if d == nil {
		return 0
	}
	return d.vals.Len()
}

// Add inserts value r of v if absent and returns the set's footprint growth
// in bytes (0 when the value was already present).
func (d *distinctSet) Add(v *vector.Vector, r int) int64 {
	d.pv, d.pr = v, r
	h := v.HashValue(r)
	d.oa.Reserve()
	slot, found := d.oa.FindSlot(h, d.eq)
	if found {
		return 0
	}
	d.oa.Insert(slot, h, int32(d.vals.Len()))
	d.vals.AppendFrom(v, r)
	before := d.bytes
	if d.vals.Kind == vector.String {
		d.valBytes += 16 + int64(len(v.Str[r]))
	} else {
		d.valBytes += 8
	}
	d.bytes = d.oa.Bytes() + d.valBytes
	return d.bytes - before
}

// keysEqualBatchBuf reports whether the key columns bCols of batch row i
// equal the key columns fCols of buffer row j.
func keysEqualBatchBuf(b *vector.Batch, bCols []int, i int, f *Buffer, fCols []int, j int) bool {
	for c := range bCols {
		if !b.Cols[bCols[c]].KeyEqual(i, f.Col(fCols[c]), j) {
			return false
		}
	}
	return true
}

// keysEqualBufBuf reports whether buffer rows i and j agree on the key
// columns cols.
func keysEqualBufBuf(f *Buffer, cols []int, i, j int) bool {
	for _, c := range cols {
		if !f.Col(c).KeyEqual(i, f.Col(c), j) {
			return false
		}
	}
	return true
}

// identityCols returns [0, 1, ..., n-1], the column selection of a buffer
// that stores exactly the key columns.
func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
