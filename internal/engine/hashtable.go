package engine

import "bdcc/internal/vector"

// This file is the engine's shared vectorized hashing subsystem. Key
// columns are hashed batch-at-a-time into reusable []uint64 scratch
// (vector.HashKeys) and looked up in flat open-addressing tables instead of
// Go string maps: no per-row key encoding, no per-row allocation, and an
// exact byte footprint (a few flat slices) for the memory tracker behind
// the paper's Figure 3. Collisions are verified against the materialized
// build rows through a caller-supplied equality predicate.

// oaTable is a linear-probing open-addressing index from 64-bit key hashes
// to int32 payloads. Slots with payload -1 are empty; equal stored hashes
// are verified with the caller's equality predicate before a slot counts as
// a match. The table grows by doubling at ~70% load.
type oaTable struct {
	hashes []uint64
	vals   []int32
	mask   uint64
	used   int
}

// oaMinSlots is the initial slot count (power of two).
const oaMinSlots = 64

// Len returns the number of occupied slots (distinct keys).
func (t *oaTable) Len() int { return t.used }

// Bytes returns the exact footprint of the slot arrays.
func (t *oaTable) Bytes() int64 { return int64(len(t.hashes))*8 + int64(len(t.vals))*4 }

// Reset empties the table, keeping its slot capacity.
func (t *oaTable) Reset() {
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.used = 0
}

// grow doubles (or initializes) the slot arrays and re-places the occupied
// slots. Equal keys share one slot, so re-placement needs no key equality:
// stored hashes alone resolve to distinct keys.
func (t *oaTable) grow() {
	n := 2 * len(t.vals)
	if n == 0 {
		n = oaMinSlots
	}
	oldHashes, oldVals := t.hashes, t.vals
	t.hashes = make([]uint64, n)
	t.vals = make([]int32, n)
	for i := range t.vals {
		t.vals[i] = -1
	}
	t.mask = uint64(n - 1)
	for i, v := range oldVals {
		if v < 0 {
			continue
		}
		h := oldHashes[i]
		j := h & t.mask
		for t.vals[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.hashes[j], t.vals[j] = h, v
	}
}

// Reserve makes room for one more distinct key. It must be called before a
// FindSlot whose result may be inserted into: growth rehashes and
// invalidates previously returned slots.
func (t *oaTable) Reserve() {
	if (t.used+1)*10 > len(t.vals)*7 {
		t.grow()
	}
}

// FindSlot probes for hash h. eq verifies a hash-equal slot's payload
// against the sought key. It returns the slot holding an equal key
// (found=true), or the empty slot where the key belongs (found=false).
func (t *oaTable) FindSlot(h uint64, eq func(int32) bool) (slot int, found bool) {
	j := h & t.mask
	for {
		v := t.vals[j]
		if v < 0 {
			return int(j), false
		}
		if t.hashes[j] == h && eq(v) {
			return int(j), true
		}
		j = (j + 1) & t.mask
	}
}

// Insert claims the empty slot returned by FindSlot for (h, v).
func (t *oaTable) Insert(slot int, h uint64, v int32) {
	t.hashes[slot] = h
	t.vals[slot] = v
	t.used++
}

// Payload returns the payload stored in slot.
func (t *oaTable) Payload(slot int) int32 { return t.vals[slot] }

// SetPayload overwrites the payload of an occupied slot.
func (t *oaTable) SetPayload(slot int, v int32) { t.vals[slot] = v }

// joinTable indexes the build side of a hash join: key hashes map to chains
// of build row numbers (rows inserted in order 0,1,2,...), duplicates
// linked through a flat next array.
type joinTable struct {
	oa   oaTable
	next []int32
}

// Bytes returns the exact footprint of the table's slot and chain arrays.
func (t *joinTable) Bytes() int64 { return t.oa.Bytes() + int64(cap(t.next))*4 }

// Len returns the number of indexed build rows.
func (t *joinTable) Len() int { return len(t.next) }

// Reset empties the table, keeping capacity (sandwich joins rebuild it once
// per co-clustering group).
func (t *joinTable) Reset() {
	t.oa.Reset()
	t.next = t.next[:0]
}

// Insert indexes build row r (which must be len(next), i.e. rows arrive in
// order) under hash h. eq compares r's key against a chain head's.
func (t *joinTable) Insert(h uint64, r int32, eq func(int32) bool) {
	t.oa.Reserve()
	slot, found := t.oa.FindSlot(h, eq)
	if found {
		t.next = append(t.next, t.oa.Payload(slot))
		t.oa.SetPayload(slot, r)
	} else {
		t.next = append(t.next, -1)
		t.oa.Insert(slot, h, r)
	}
}

// Lookup returns the chain head row for hash h, or -1. eq compares the
// probe key against a candidate head row's key.
func (t *joinTable) Lookup(h uint64, eq func(int32) bool) int32 {
	if t.oa.used == 0 {
		return -1
	}
	slot, found := t.oa.FindSlot(h, eq)
	if !found {
		return -1
	}
	return t.oa.Payload(slot)
}

// ChainNext returns the chain successor of build row r (-1 ends the
// chain). Semi/anti probes walk chains directly instead of materializing
// them, short-circuiting on the first qualifying row.
func (t *joinTable) ChainNext(r int32) int32 { return t.next[r] }

// Matches appends the chain of head to dst (callers pass scratch[:0]) in
// build insertion order and returns it.
func (t *joinTable) Matches(head int32, dst []int32) []int32 {
	for r := head; r >= 0; r = t.next[r] {
		dst = append(dst, r)
	}
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// distinctSet is an open-addressing set of scalar values backing
// COUNT(DISTINCT ...) states, replacing per-value map[string]struct{} and
// its fmt.Sprintf keys.
type distinctSet struct {
	oa       oaTable
	vals     *vector.Vector
	valBytes int64
	bytes    int64
	eq       func(int32) bool
	pv       *vector.Vector
	pr       int
}

// newDistinctSet returns an empty set for values of kind k.
func newDistinctSet(k vector.Kind) *distinctSet {
	d := &distinctSet{vals: vector.NewVector(k, 0)}
	d.eq = func(i int32) bool { return d.vals.KeyEqual(int(i), d.pv, d.pr) }
	return d
}

// Len returns the number of distinct values.
func (d *distinctSet) Len() int {
	if d == nil {
		return 0
	}
	return d.vals.Len()
}

// Add inserts value r of v if absent and returns the set's footprint growth
// in bytes (0 when the value was already present).
func (d *distinctSet) Add(v *vector.Vector, r int) int64 {
	d.pv, d.pr = v, r
	h := v.HashValue(r)
	d.oa.Reserve()
	slot, found := d.oa.FindSlot(h, d.eq)
	if found {
		return 0
	}
	d.oa.Insert(slot, h, int32(d.vals.Len()))
	d.vals.AppendFrom(v, r)
	before := d.bytes
	if d.vals.Kind == vector.String {
		d.valBytes += 16 + int64(len(v.Str[r]))
	} else {
		d.valBytes += 8
	}
	d.bytes = d.oa.Bytes() + d.valBytes
	return d.bytes - before
}

// keysEqualBatchBuf reports whether the key columns bCols of batch row i
// equal the key columns fCols of buffer row j.
func keysEqualBatchBuf(b *vector.Batch, bCols []int, i int, f *Buffer, fCols []int, j int) bool {
	for c := range bCols {
		if !b.Cols[bCols[c]].KeyEqual(i, f.Col(fCols[c]), j) {
			return false
		}
	}
	return true
}

// keysEqualBufBuf reports whether buffer rows i and j agree on the key
// columns cols.
func keysEqualBufBuf(f *Buffer, cols []int, i, j int) bool {
	for _, c := range cols {
		if !f.Col(c).KeyEqual(i, f.Col(c), j) {
			return false
		}
	}
	return true
}

// identityCols returns [0, 1, ..., n-1], the column selection of a buffer
// that stores exactly the key columns.
func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
