package engine

import (
	"fmt"
	"math"
	"testing"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// mkResult builds a materialized result from parallel column slices.
func mkResult(names []string, cols ...*vector.Vector) *Result {
	schema := make(expr.Schema, len(cols))
	for i, c := range cols {
		schema[i] = expr.ColMeta{Name: names[i], Kind: c.Kind}
	}
	return &Result{Schema: schema, Cols: cols}
}

func i64Vec(xs ...int64) *vector.Vector {
	v := vector.NewVector(vector.Int64, len(xs))
	v.I64 = append(v.I64, xs...)
	return v
}

func f64Vec(xs ...float64) *vector.Vector {
	v := vector.NewVector(vector.Float64, len(xs))
	v.F64 = append(v.F64, xs...)
	return v
}

func strVec(xs ...string) *vector.Vector {
	v := vector.NewVector(vector.String, len(xs))
	v.Str = append(v.Str, xs...)
	return v
}

// trickyStringKeys is a set of pairwise-distinct two-column string keys
// whose parts embed length-prefix lookalike bytes, empty strings, and
// boundary shuffles that a sloppy concatenating encoder would conflate.
var trickyStringKeys = [][2]string{
	{"", ""},
	{"", "\x00"},
	{"\x00", ""},
	{"\x01\x00\x00\x00", ""},
	{"", "\x01\x00\x00\x00"},
	{"a\x02\x00\x00\x00b", "c"},
	{"a", "\x02\x00\x00\x00bc"},
	{"ab", "c"},
	{"a", "bc"},
	{"abc", ""},
	{"", "abc"},
}

// TestKeyIdentityStrings verifies that hash aggregation and hash join agree
// on multi-column string key identity for adversarial keys: each distinct
// key tuple is one group, and a self-join matches exactly within tuples.
func TestKeyIdentityStrings(t *testing.T) {
	// Duplicate tuple i exactly i+1 times.
	var k1, k2 []string
	for i, kv := range trickyStringKeys {
		for n := 0; n <= i; n++ {
			k1 = append(k1, kv[0])
			k2 = append(k2, kv[1])
		}
	}
	data := mkResult([]string{"k1", "k2"}, strVec(k1...), strVec(k2...))

	agg := &HashAggregate{
		Child:   &Values{Rows: data},
		GroupBy: []string{"k1", "k2"},
		Aggs:    []AggSpec{{Name: "c", Func: AggCount}},
	}
	res, err := Run(testCtx(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != len(trickyStringKeys) {
		t.Fatalf("agg found %d groups, want %d distinct key tuples", res.Rows(), len(trickyStringKeys))
	}
	counts := map[string]int64{}
	for i := 0; i < res.Rows(); i++ {
		counts[res.Cols[0].Str[i]+"\xff"+res.Cols[1].Str[i]] = res.Cols[2].I64[i]
	}
	for i, kv := range trickyStringKeys {
		if got := counts[kv[0]+"\xff"+kv[1]]; got != int64(i+1) {
			t.Errorf("key %q|%q: count %d, want %d", kv[0], kv[1], got, i+1)
		}
	}

	// Self-join must match exactly within tuples: sum of multiplicity^2 rows.
	join := &HashJoin{
		Left:     &Values{Rows: data},
		Right:    &Values{Rows: data},
		LeftKeys: []string{"k1", "k2"}, RightKeys: []string{"k1", "k2"},
		Type: InnerJoin,
	}
	jres, err := Run(testCtx(), join)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range trickyStringKeys {
		want += (i + 1) * (i + 1)
	}
	if jres.Rows() != want {
		t.Fatalf("self-join produced %d rows, want %d", jres.Rows(), want)
	}
}

// TestKeyIdentityIntsAndFloats verifies negative ints hash/compare
// correctly and that -0.0 and +0.0 are one grouping key for both the
// aggregation and join paths.
func TestKeyIdentityIntsAndFloats(t *testing.T) {
	ints := []int64{-1, 1, math.MinInt64, math.MaxInt64, 0, -1, math.MinInt64}
	data := mkResult([]string{"k"}, i64Vec(ints...))
	agg := &HashAggregate{
		Child:   &Values{Rows: data},
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Name: "c", Func: AggCount}},
	}
	res, err := Run(testCtx(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 5 {
		t.Fatalf("int agg found %d groups, want 5", res.Rows())
	}

	negZero := math.Copysign(0, -1)
	floats := mkResult([]string{"f"}, f64Vec(negZero, 0.0, 1.5, negZero))
	fagg := &HashAggregate{
		Child:   &Values{Rows: floats},
		GroupBy: []string{"f"},
		Aggs:    []AggSpec{{Name: "c", Func: AggCount}},
	}
	fres, err := Run(testCtx(), fagg)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Rows() != 2 {
		t.Fatalf("float agg found %d groups, want 2 (-0.0 must equal +0.0)", fres.Rows())
	}
	for i := 0; i < fres.Rows(); i++ {
		if fres.Cols[0].F64[i] == 0 && fres.Cols[1].I64[i] != 3 {
			t.Errorf("zero group count = %d, want 3", fres.Cols[1].I64[i])
		}
	}

	// Join probe +0.0 against build -0.0: must match.
	join := &HashJoin{
		Left:     &Values{Rows: mkResult([]string{"f"}, f64Vec(0.0))},
		Right:    &Values{Rows: mkResult([]string{"f"}, f64Vec(negZero))},
		LeftKeys: []string{"f"}, RightKeys: []string{"f"},
		Type: InnerJoin,
	}
	jres, err := Run(testCtx(), join)
	if err != nil {
		t.Fatal(err)
	}
	if jres.Rows() != 1 {
		t.Fatalf("+0.0 probe against -0.0 build matched %d rows, want 1", jres.Rows())
	}
}

// TestJoinAggGroupingAgree cross-checks the two hash consumers: the number
// of distinct join keys seen by a semi-join self-match must equal the hash
// aggregation's group count over mixed-type multi-column keys.
func TestJoinAggGroupingAgree(t *testing.T) {
	n := 500
	ks := make([]int64, n)
	kf := make([]float64, n)
	kstr := make([]string, n)
	for i := range ks {
		ks[i] = int64(i % 37)
		kf[i] = float64(i%11) - 5
		if i%22 == 0 {
			kf[i] = math.Copysign(0, -1) // collides with +0.0 keys below
		}
		kstr[i] = fmt.Sprintf("s%d", i%7)
	}
	mk := func() *Result {
		return mkResult([]string{"a", "b", "c"}, i64Vec(ks...), f64Vec(kf...), strVec(kstr...))
	}
	agg := &HashAggregate{
		Child:   &Values{Rows: mk()},
		GroupBy: []string{"a", "b", "c"},
		Aggs:    []AggSpec{{Name: "c", Func: AggCount}},
	}
	ares, err := Run(testCtx(), agg)
	if err != nil {
		t.Fatal(err)
	}
	semi := &HashJoin{
		Left:     &Values{Rows: mk()},
		Right:    &Values{Rows: mk()},
		LeftKeys: []string{"a", "b", "c"}, RightKeys: []string{"a", "b", "c"},
		Type: SemiJoin,
	}
	sres, err := Run(testCtx(), semi)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Rows() != n {
		t.Fatalf("self semi-join kept %d of %d rows", sres.Rows(), n)
	}
	// Anti-join against the distinct groups must eliminate everything.
	anti := &HashJoin{
		Left:     &Values{Rows: mk()},
		Right:    &Values{Rows: mkResult([]string{"a", "b", "c"}, ares.Cols[0], ares.Cols[1], ares.Cols[2])},
		LeftKeys: []string{"a", "b", "c"}, RightKeys: []string{"a", "b", "c"},
		Type: AntiJoin,
	}
	antres, err := Run(testCtx(), anti)
	if err != nil {
		t.Fatal(err)
	}
	if antres.Rows() != 0 {
		t.Fatalf("anti-join against own distinct keys kept %d rows, want 0", antres.Rows())
	}
}

// TestOATableGrowth drives the open-addressing core through several
// doublings and checks every key stays reachable.
func TestOATableGrowth(t *testing.T) {
	var table oaTable
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	hash := func(k int64) uint64 { return vector.Mix64(uint64(k)) }
	for i, k := range keys {
		k := k
		table.Reserve()
		slot, found := table.FindSlot(hash(k), func(v int32) bool { return keys[v] == k })
		if found {
			t.Fatalf("key %d found before insert", k)
		}
		table.Insert(slot, hash(k), int32(i))
	}
	if table.Len() != len(keys) {
		t.Fatalf("table holds %d keys, want %d", table.Len(), len(keys))
	}
	for i, k := range keys {
		k := k
		slot, found := table.FindSlot(hash(k), func(v int32) bool { return keys[v] == k })
		if !found || table.Payload(slot) != int32(i) {
			t.Fatalf("key %d: found=%v payload=%d, want %d", k, found, table.Payload(slot), i)
		}
	}
	if table.Bytes() <= 0 {
		t.Fatal("table reports non-positive footprint")
	}
}

// TestJoinTableCollisionChains forces every key onto one hash value so
// distinct keys must be separated by the equality predicate alone, and
// duplicate keys must chain in insertion order (single-partition build).
func TestJoinTableCollisionChains(t *testing.T) {
	jt := newPartJoinTable(1)
	const h = uint64(0xDEADBEEF)
	// Row r holds key r/3: three duplicate rows per key, 100 distinct keys.
	key := func(r int32) int32 { return r / 3 }
	for r := int32(0); r < 300; r++ {
		r := r
		jt.Insert(h, r, func(head int32) bool { return key(head) == key(r) })
	}
	var scratch []int32
	for k := int32(0); k < 100; k++ {
		k := k
		head := jt.Lookup(h, func(head int32) bool { return key(head) == k })
		if head < 0 {
			t.Fatalf("key %d not found", k)
		}
		scratch = jt.Matches(head, scratch[:0])
		if len(scratch) != 3 {
			t.Fatalf("key %d: %d matches, want 3", k, len(scratch))
		}
		for i, r := range scratch {
			if r != k*3+int32(i) {
				t.Fatalf("key %d: match %d = row %d, want %d (insertion order)", k, i, r, k*3+int32(i))
			}
		}
	}
	if jt.Lookup(h, func(int32) bool { return false }) != -1 {
		t.Fatal("lookup of absent key did not return -1")
	}
}

// TestDistinctSet checks the COUNT(DISTINCT) set: duplicates are ignored,
// -0.0 and +0.0 are one value, and the footprint only grows on inserts.
func TestDistinctSet(t *testing.T) {
	d := newDistinctSet(vector.Float64)
	vals := f64Vec(1, 2, 1, math.Copysign(0, -1), 0, 2, 3)
	var grew int64
	for r := 0; r < vals.Len(); r++ {
		grew += d.Add(vals, r)
	}
	if d.Len() != 4 {
		t.Fatalf("distinct float count %d, want 4 (1, 2, 0, 3)", d.Len())
	}
	if grew <= 0 {
		t.Fatal("distinct set reported no footprint growth")
	}

	s := newDistinctSet(vector.String)
	svals := strVec("", "a", "", "b", "a", "\x00")
	for r := 0; r < svals.Len(); r++ {
		s.Add(svals, r)
	}
	if s.Len() != 4 {
		t.Fatalf("distinct string count %d, want 4", s.Len())
	}

	// Growth through many distinct values.
	big := newDistinctSet(vector.Int64)
	xs := vector.NewVector(vector.Int64, 0)
	for i := int64(0); i < 5000; i++ {
		xs.AppendInt64(i % 1000)
	}
	for r := 0; r < xs.Len(); r++ {
		big.Add(xs, r)
	}
	if big.Len() != 1000 {
		t.Fatalf("distinct int count %d, want 1000", big.Len())
	}
}

// TestCountDistinctOperator exercises AggCountDistinct end-to-end through
// the aggregation operator on string and float arguments.
func TestCountDistinctOperator(t *testing.T) {
	g := []int64{1, 1, 1, 2, 2, 2, 2}
	s := []string{"x", "y", "x", "p", "q", "p", "r"}
	f := []float64{0, math.Copysign(0, -1), 1, 2, 2, 3, 4}
	data := mkResult([]string{"g", "s", "f"}, i64Vec(g...), strVec(s...), f64Vec(f...))
	agg := &HashAggregate{
		Child:   &Values{Rows: data},
		GroupBy: []string{"g"},
		Aggs: []AggSpec{
			{Name: "ds", Func: AggCountDistinct, Arg: expr.C("s")},
			{Name: "df", Func: AggCountDistinct, Arg: expr.C("f")},
		},
	}
	res, err := Run(testCtx(), agg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][2]int64{1: {2, 2}, 2: {3, 3}} // g=1: {x,y}, {0,1}; g=2: {p,q,r}, {2,3,4}
	for i := 0; i < res.Rows(); i++ {
		w := want[res.Cols[0].I64[i]]
		if res.Cols[1].I64[i] != w[0] || res.Cols[2].I64[i] != w[1] {
			t.Errorf("group %d: distinct (%d, %d), want (%d, %d)",
				res.Cols[0].I64[i], res.Cols[1].I64[i], res.Cols[2].I64[i], w[0], w[1])
		}
	}
}
