package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"bdcc/internal/expr"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// parCtx returns a context with the workers knob set.
func parCtx(workers int) *Context {
	c := testCtx()
	c.Workers = workers
	return c
}

// renderRows materializes a result as ordered row strings (no sorting: the
// parallel paths must reproduce the serial row order exactly).
func renderRows(r *Result) []string {
	out := make([]string, r.Rows())
	for i := range out {
		out[i] = fmt.Sprint(r.Row(i))
	}
	return out
}

// requireIdentical fails unless got reproduces want row-for-row.
func requireIdentical(t *testing.T, got, want *Result, label string) {
	t.Helper()
	g, w := renderRows(got), renderRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, serial has %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, serial has %s", label, i, g[i], w[i])
		}
	}
}

// parTestTables builds a probe/build table pair with skewed join keys,
// string payloads, and enough rows to span many batches and morsels.
func parTestTables() (*storage.Table, *storage.Table) {
	rng := rand.New(rand.NewSource(42))
	const nL, nR = 60000, 4000
	lKey := make([]int64, nL)
	lPay := make([]float64, nL)
	lStr := make([]string, nL)
	for i := range lKey {
		// Skew: a few keys match many build rows, many keys miss entirely.
		switch i % 5 {
		case 0:
			lKey[i] = rng.Int63n(16)
		default:
			lKey[i] = rng.Int63n(2 * nR)
		}
		lPay[i] = float64(i) * 0.25
		lStr[i] = fmt.Sprintf("l%d", i%97)
	}
	rKey := make([]int64, nR)
	rPay := make([]int64, nR)
	for i := range rKey {
		rKey[i] = int64(i % (nR / 2)) // every key twice
		rPay[i] = int64(i) * 3
	}
	left := storage.MustNewTable("pl", 4096,
		storage.NewInt64Column("lkey", lKey),
		storage.NewFloat64Column("lpay", lPay),
		storage.NewStringColumn("lstr", lStr))
	right := storage.MustNewTable("pr", 4096,
		storage.NewInt64Column("rkey", rKey),
		storage.NewInt64Column("rpay", rPay))
	return left, right
}

// TestParallelTableScanMatchesSerial checks the morsel-parallel filtered
// scan reproduces the serial scan byte-identically (same rows, same order)
// and leaves the memory tracker balanced.
func TestParallelTableScanMatchesSerial(t *testing.T) {
	left, _ := parTestTables()
	mkScan := func(ctx *Context) *TableScan {
		return &TableScan{
			Table:  left,
			Cols:   []string{"lkey", "lpay", "lstr"},
			Filter: expr.NewCmp(expr.LT, expr.C("lkey"), expr.Int(3000)),
			Sched:  ctx.Scheduler(),
		}
	}
	serialCtx := parCtx(1)
	serial, err := Run(serialCtx, mkScan(serialCtx))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Rows() == 0 {
		t.Fatal("filter selects nothing — vacuous test")
	}
	for _, workers := range []int{2, 4, 7} {
		ctx := parCtx(workers)
		par, err := Run(ctx, mkScan(ctx))
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, par, serial, fmt.Sprintf("workers=%d", workers))
		if cur := ctx.Mem.Current(); cur != 0 {
			t.Fatalf("workers=%d: %d bytes still accounted after Close", workers, cur)
		}
	}
}

// TestParallelTableScanEarlyClose checks a parallel scan shut down before
// exhaustion (a Limit upstream) terminates its workers and releases all
// accounted bytes.
func TestParallelTableScanEarlyClose(t *testing.T) {
	left, _ := parTestTables()
	ctx := parCtx(4)
	scan := &TableScan{
		Table:  left,
		Cols:   []string{"lkey", "lstr"},
		Filter: expr.NewCmp(expr.GE, expr.C("lkey"), expr.Int(0)),
		Sched:  ctx.Scheduler(),
	}
	lim := &Limit{Child: scan, N: 10}
	res, err := Run(ctx, lim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 10 {
		t.Fatalf("limit returned %d rows, want 10", res.Rows())
	}
	if cur := ctx.Mem.Current(); cur != 0 {
		t.Fatalf("%d bytes still accounted after early close", cur)
	}
}

// TestParallelHashJoinMatchesSerial checks every join type, with and
// without a residual, across worker counts: the parallel build + probe must
// reproduce the serial rows in order with a balanced memory tracker.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	left, right := parTestTables()
	mkJoin := func(typ JoinType, residual bool, ctx *Context) *HashJoin {
		j := &HashJoin{
			Left:     &TableScan{Table: left, Cols: []string{"lkey", "lpay", "lstr"}},
			Right:    &TableScan{Table: right, Cols: []string{"rkey", "rpay"}},
			LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
			Type: typ, Sched: ctx.Scheduler(),
		}
		if residual {
			j.Residual = expr.NewCmp(expr.GT,
				expr.NewArith(expr.Add, expr.C("lpay"), expr.C("rpay")), expr.Float(50))
			if typ == SemiJoin || typ == AntiJoin {
				j.Residual = expr.NewCmp(expr.GT, expr.C("rpay"), expr.Int(100))
			}
		}
		return j
	}
	for _, typ := range []JoinType{InnerJoin, LeftOuterJoin, SemiJoin, AntiJoin} {
		for _, residual := range []bool{false, true} {
			name := fmt.Sprintf("type=%d/residual=%v", typ, residual)
			t.Run(name, func(t *testing.T) {
				serialCtx := parCtx(1)
				serial, err := Run(serialCtx, mkJoin(typ, residual, serialCtx))
				if err != nil {
					t.Fatal(err)
				}
				if serial.Rows() == 0 && typ != AntiJoin {
					t.Fatal("serial join returned no rows — vacuous test")
				}
				for _, workers := range []int{3, 4} {
					ctx := parCtx(workers)
					par, err := Run(ctx, mkJoin(typ, residual, ctx))
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, par, serial, fmt.Sprintf("%s workers=%d", name, workers))
					if cur := ctx.Mem.Current(); cur != 0 {
						t.Fatalf("workers=%d: %d bytes still accounted after Close", workers, cur)
					}
				}
			})
		}
	}
}

// TestParallelHashAggregateMatchesSerial checks the partition-parallel
// aggregation against the serial run across every aggregate function,
// including bit-exact float sums and the first-seen emission order.
func TestParallelHashAggregateMatchesSerial(t *testing.T) {
	left, _ := parTestTables()
	mkAgg := func(ctx *Context) *HashAggregate {
		return &HashAggregate{
			Child:   &TableScan{Table: left, Cols: []string{"lkey", "lpay", "lstr"}},
			GroupBy: []string{"lkey"},
			Aggs: []AggSpec{
				{Name: "c", Func: AggCount},
				{Name: "s", Func: AggSum, Arg: expr.C("lpay")},
				{Name: "a", Func: AggAvg, Arg: expr.C("lpay")},
				{Name: "mn", Func: AggMin, Arg: expr.C("lstr")},
				{Name: "mx", Func: AggMax, Arg: expr.C("lpay")},
				{Name: "d", Func: AggCountDistinct, Arg: expr.C("lstr")},
			},
			Sched: ctx.Scheduler(),
		}
	}
	serialCtx := parCtx(1)
	serial, err := Run(serialCtx, mkAgg(serialCtx))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 5} {
		ctx := parCtx(workers)
		par, err := Run(ctx, mkAgg(ctx))
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, par, serial, fmt.Sprintf("workers=%d", workers))
		if cur := ctx.Mem.Current(); cur != 0 {
			t.Fatalf("workers=%d: %d bytes still accounted after Close", workers, cur)
		}
	}
	// Bit-exact float check on top of the string rendering.
	ctx := parCtx(4)
	par, err := Run(ctx, mkAgg(ctx))
	if err != nil {
		t.Fatal(err)
	}
	si, pi := serial.Schema.IndexOf("s"), par.Schema.IndexOf("s")
	for r := 0; r < serial.Rows(); r++ {
		if serial.Cols[si].F64[r] != par.Cols[pi].F64[r] {
			t.Fatalf("row %d: parallel float sum %v != serial %v (must be bit-identical)",
				r, par.Cols[pi].F64[r], serial.Cols[si].F64[r])
		}
	}
}

// TestParallelGlobalAggregate checks the degenerate zero-key aggregation
// (one global group) under the parallel path.
func TestParallelGlobalAggregate(t *testing.T) {
	left, _ := parTestTables()
	mkAgg := func(ctx *Context) *HashAggregate {
		return &HashAggregate{
			Child:   &TableScan{Table: left, Cols: []string{"lkey", "lpay"}},
			GroupBy: nil,
			Aggs: []AggSpec{
				{Name: "c", Func: AggCount},
				{Name: "s", Func: AggSum, Arg: expr.C("lpay")},
			},
			Sched: ctx.Scheduler(),
		}
	}
	serialCtx := parCtx(1)
	serial, err := Run(serialCtx, mkAgg(serialCtx))
	if err != nil {
		t.Fatal(err)
	}
	parCtx4 := parCtx(4)
	par, err := Run(parCtx4, mkAgg(parCtx4))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, par, serial, "global agg")
}

// TestHashJoinMemAccountingBalanced locks in the Grow/Shrink symmetry of
// the hash join: after Run and Close the tracker must be exactly balanced,
// with a positive peak recorded for the build.
func TestHashJoinMemAccountingBalanced(t *testing.T) {
	left, right := parTestTables()
	for _, workers := range []int{1, 4} {
		ctx := parCtx(workers)
		j := &HashJoin{
			Left:     &TableScan{Table: left, Cols: []string{"lkey", "lpay"}},
			Right:    &TableScan{Table: right, Cols: []string{"rkey", "rpay"}},
			LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
			Type: InnerJoin, Sched: ctx.Scheduler(),
		}
		if _, err := Run(ctx, j); err != nil {
			t.Fatal(err)
		}
		if cur := ctx.Mem.Current(); cur != 0 {
			t.Fatalf("workers=%d: join leaked %d accounted bytes", workers, cur)
		}
		if ctx.Mem.Peak() <= 0 {
			t.Fatalf("workers=%d: no build memory recorded", workers)
		}
	}
}

// TestPartJoinTable exercises the partitioned join table directly: chains
// stay in insertion order per key under both the incremental and the
// presized (parallel) insert paths, across partition counts.
func TestPartJoinTable(t *testing.T) {
	const n = 3000
	key := func(r int32) int64 { return int64(r) % 500 }
	hash := func(r int32) uint64 { return vector.Mix64(uint64(key(r))) }
	for _, workers := range []int{1, 2, 4, 8} {
		for _, presized := range []bool{false, true} {
			pt := newPartJoinTable(workers)
			if presized {
				pt.GrowChains(n)
				for r := int32(0); r < n; r++ {
					r := r
					pt.InsertPresized(hash(r), r, func(head int32) bool { return key(head) == key(r) })
				}
			} else {
				for r := int32(0); r < n; r++ {
					r := r
					pt.Insert(hash(r), r, func(head int32) bool { return key(head) == key(r) })
				}
			}
			if pt.Len() != n {
				t.Fatalf("workers=%d presized=%v: table indexes %d rows, want %d", workers, presized, pt.Len(), n)
			}
			var scratch []int32
			for k := int64(0); k < 500; k++ {
				k := k
				head := pt.Lookup(vector.Mix64(uint64(k)), func(head int32) bool { return key(head) == k })
				if head < 0 {
					t.Fatalf("workers=%d presized=%v: key %d not found", workers, presized, k)
				}
				scratch = pt.Matches(head, scratch[:0])
				if len(scratch) != n/500 {
					t.Fatalf("key %d: %d matches, want %d", k, len(scratch), n/500)
				}
				for i := 1; i < len(scratch); i++ {
					if scratch[i] <= scratch[i-1] {
						t.Fatalf("key %d: matches not in insertion order: %v", k, scratch)
					}
				}
			}
			if pt.Bytes() <= 0 {
				t.Fatal("partitioned table reports non-positive footprint")
			}
		}
	}
}
