package engine

import (
	"fmt"
	"sync"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// SandwichHashJoin is the sandwich operator of the paper's reference [3]
// applied to a hash join: both inputs arrive as group streams aligned on a
// shared co-clustering dimension (ascending group identifiers, group-pure
// batches), so the join degenerates into a sequence of per-group hash joins.
// Only one group of the build side is materialized at a time — the paper's
// "faster execution times and significantly reduced memory while processing
// the same amount of data".
//
// The group identifier must be implied by the join key (both sides reach
// the shared dimension through the equated foreign key), which is exactly
// the condition the BDCC planner establishes before placing this operator;
// rows can then never match across different groups.
//
// With a scheduler handle injected, the join pipelines across group
// boundaries: a feeder goroutine aligns the two group streams serially (the
// group cursor is inherently sequential) and hands each aligned group —
// cloned probe and build batches — to a task on the query's shared worker
// pool that builds the group's private hash table and probes it, with the
// exchange window bounding the cross-group lookahead. Per-group output
// replicates the serial flush boundaries exactly and groups merge in stream
// order, so results stay byte-identical; peak memory is bounded by the
// lookahead window's groups instead of a single group.
type SandwichHashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []string
	Type                JoinType
	Residual            expr.Expr
	// ProbeShift and BuildShift align streams whose group identifiers carry
	// extra minor bits: two rows are in the same sandwich group when
	// probeGID>>ProbeShift == buildGID>>BuildShift. A pipeline clustered at
	// finer granularity than the shared dimension's common bits simply
	// shifts the surplus away.
	ProbeShift uint
	BuildShift uint
	// Sched is the planner-injected handle of the query's shared worker
	// pool; nil means the serial one-group-at-a-time execution (unless a
	// backend set is injected below).
	Sched *Sched
	// Backends and Route shard the aligned group stream across a backend
	// set: each group unit is shipped to Backends[Route(gid, bytes)] instead
	// of the local pool (the router sees the unit's batch bytes so it can
	// balance by size instead of group hash). The exchange merges returned
	// batches in group order, so results stay byte-identical across shard
	// counts and routing policies. A non-empty backend set activates the
	// group pipeline even when Sched is nil (local serial execution, remote
	// group joins). Both are planner-injected.
	Backends []Backend
	Route    func(gid uint64, bytes int64) int

	schema expr.Schema
	ctx    *Context
	frag   *Fragment

	buf      *Buffer
	table    *partJoinTable
	memBytes int64

	leftKeyIdx  []int
	rightKeyIdx []int

	// per-batch hash scratch and collision-verification closures
	probeHashes []uint64
	buildHashes []uint64
	matches     []int32
	matchPos    int
	looked      bool
	emitted     bool
	probeBatch  *vector.Batch
	probeRow    int
	buildRow    int32
	probeEq     func(int32) bool
	buildEq     func(int32) bool

	// right lookahead
	rb     *vector.Batch // buffered copy of the lookahead batch
	rbOK   bool
	rEOF   bool
	curGID uint64 // group currently materialized in buf
	haveG  bool

	out      *vector.Batch
	combined *vector.Batch
	resVec   *vector.Vector

	maxMu    sync.Mutex
	maxGroup int64

	ex *exchange // parallel group pipeline, nil on the serial path
}

// Schema implements Operator.
func (j *SandwichHashJoin) Schema() expr.Schema { return j.schema }

// Open implements Operator.
func (j *SandwichHashJoin) Open(ctx *Context) error {
	j.ctx = ctx
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	ls, rs := j.Left.Schema(), j.Right.Schema()
	// The fragment is the join's frozen group-join configuration — the plan
	// piece a backend set ships to remote workers at query setup. The serial
	// path shares its bound state (schema, key indexes, residual) so both
	// forms execute one configuration.
	j.frag = &Fragment{
		Probe: ls, Build: rs,
		ProbeKeys: j.LeftKeys, BuildKeys: j.RightKeys,
		Type: j.Type, Residual: j.Residual,
		NoteGroup: j.noteGroupRows,
	}
	if ctx != nil {
		j.frag.Mem = ctx.Mem
	}
	if err := j.frag.Prepare(); err != nil {
		return err
	}
	j.schema = j.frag.OutSchema()
	j.leftKeyIdx = j.frag.probeIdx
	j.rightKeyIdx = j.frag.buildIdx
	if j.Residual != nil {
		combined := append(append(expr.Schema{}, ls...), rs...)
		j.combined = vector.NewBatch(combined.Kinds())
		j.resVec = expr.NewScratch(vector.Int64)
	}
	j.probeEq = func(head int32) bool {
		return keysEqualBatchBuf(j.probeBatch, j.leftKeyIdx, j.probeRow, j.buf, j.rightKeyIdx, int(head))
	}
	j.buildEq = func(head int32) bool {
		return keysEqualBufBuf(j.buf, j.rightKeyIdx, int(j.buildRow), int(head))
	}
	j.buf = NewBuffer(rs)
	j.table = newPartJoinTable(1)
	j.rb = vector.NewBatch(rs.Kinds())
	j.out = vector.NewBatch(j.schema.Kinds())
	return nil
}

// fetchRight loads the next right batch into the lookahead copy.
func (j *SandwichHashJoin) fetchRight() error {
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			j.rEOF = true
			j.rbOK = false
			return nil
		}
		if b.Len() == 0 {
			continue
		}
		if !b.Grouped {
			return fmt.Errorf("engine: sandwich join build input is not a group stream")
		}
		j.rb.Reset()
		j.rb.AppendBatch(b)
		j.rb.GroupID = b.GroupID
		j.rb.Grouped = true
		j.rbOK = true
		return nil
	}
}

// buildGroup materializes the right group gid (if present) into the hash
// table, discarding right groups with smaller identifiers.
func (j *SandwichHashJoin) buildGroup(gid uint64) error {
	j.ctx.Mem.Shrink(j.memBytes)
	j.memBytes = 0
	j.buf.Reset()
	j.table.Reset()
	j.haveG = true
	j.curGID = gid
	for {
		if !j.rbOK {
			if j.rEOF {
				break
			}
			if err := j.fetchRight(); err != nil {
				return err
			}
			continue
		}
		if j.rb.GroupID>>j.BuildShift < gid {
			j.rbOK = false
			continue
		}
		if j.rb.GroupID>>j.BuildShift > gid {
			break
		}
		base := int32(j.buf.Len())
		j.buf.AppendBatch(j.rb)
		j.buildHashes = vector.HashKeys(j.rb, j.rightKeyIdx, j.buildHashes)
		for i := 0; i < j.rb.Len(); i++ {
			j.buildRow = base + int32(i)
			j.table.Insert(j.buildHashes[i], j.buildRow, j.buildEq)
		}
		j.rbOK = false
	}
	j.memBytes = j.buf.Bytes() + j.table.Bytes()
	j.ctx.Mem.Grow(j.memBytes)
	j.noteGroupRows(int64(j.buf.Len()))
	return nil
}

// noteGroupRows records the size of a materialized build group for
// MaxGroupRows; parallel group tasks report concurrently.
func (j *SandwichHashJoin) noteGroupRows(n int64) {
	j.maxMu.Lock()
	if n > j.maxGroup {
		j.maxGroup = n
	}
	j.maxMu.Unlock()
}

// residualOK mirrors HashJoin.residualOK for the buffered group.
func (j *SandwichHashJoin) residualOK(left *vector.Batch, li int, bi int32) bool {
	if j.Residual == nil {
		return true
	}
	j.combined.Reset()
	nl := len(left.Cols)
	for c := 0; c < nl; c++ {
		j.combined.Cols[c].AppendFrom(left.Cols[c], li)
	}
	j.buf.WriteRow(j.combined, int(bi), nl)
	j.resVec.Reset()
	j.Residual.Eval(j.combined, j.resVec)
	return j.resVec.I64[0] != 0
}

// startParallelGroups starts the cross-group pipeline: a feeder goroutine
// aligns the two group streams exactly like the serial cursor (discarding
// build groups without probe rows, erroring on non-grouped or descending
// input) and hands each aligned group — a self-contained GroupUnit of
// cloned batches — either to a group-join task on the local pool or, when a
// backend set is injected, to the backend its group hash routes to. The
// exchange window is the bounded lookahead in both forms.
func (j *SandwichHashJoin) startParallelGroups() {
	// Lookahead is deliberately tighter than the scan/probe window: each
	// in-flight group holds cloned probe and build batches plus a private
	// hash table, so the window directly scales peak memory. Sharded, the
	// window covers the backend set's total parallelism.
	look := 0
	if len(j.Backends) > 0 {
		for _, b := range j.Backends {
			look += b.Workers()
		}
	} else {
		look = j.Sched.Workers()
	}
	var exec Executor // typed-nil guard: a nil *Sched must stay a nil Executor
	if j.Sched != nil {
		exec = j.Sched
	}
	j.ex = newExchange(j.ctx.Mem, exec, look+1)
	e := j.ex
	e.wg.Add(1)
	go func() { // feeder: the only puller of both children
		defer e.wg.Done()
		var pendingLeft *vector.Batch // cloned lookahead of the next group
		leftEOF := false
		haveG := false
		var curGID uint64
		for {
			job, ok := e.claim()
			if !ok {
				return
			}
			if pendingLeft == nil && leftEOF {
				e.seal(job)
				return
			}
			g := &GroupUnit{}
			// Gather the probe group: batches whose shifted gid matches the
			// first non-empty batch seen.
			var gid uint64
			if pendingLeft != nil {
				gid = pendingLeft.GroupID >> j.ProbeShift
				g.Probe = append(g.Probe, pendingLeft)
				pendingLeft = nil
			} else {
				for {
					b, err := j.Left.Next()
					if err != nil {
						e.setErr(err)
						return
					}
					if b == nil {
						e.seal(job)
						return
					}
					if b.Len() == 0 {
						continue
					}
					if !b.Grouped {
						e.setErr(fmt.Errorf("engine: sandwich join probe input is not a group stream"))
						return
					}
					gid = b.GroupID >> j.ProbeShift
					if haveG && gid < curGID {
						e.setErr(fmt.Errorf("engine: sandwich join probe groups not ascending (%d after %d)", gid, curGID))
						return
					}
					g.Probe = append(g.Probe, b.Clone())
					break
				}
			}
			haveG = true
			curGID = gid
			g.GID = gid
			for {
				b, err := j.Left.Next()
				if err != nil {
					e.setErr(err)
					return
				}
				if b == nil {
					leftEOF = true
					break
				}
				if b.Len() == 0 {
					continue
				}
				if !b.Grouped {
					e.setErr(fmt.Errorf("engine: sandwich join probe input is not a group stream"))
					return
				}
				if next := b.GroupID >> j.ProbeShift; next != gid {
					if next < gid {
						e.setErr(fmt.Errorf("engine: sandwich join probe groups not ascending (%d after %d)", next, gid))
						return
					}
					pendingLeft = b.Clone()
					break
				}
				g.Probe = append(g.Probe, b.Clone())
			}
			// Align the build cursor: discard groups below gid, clone the
			// matching group's batches (possibly none).
			for {
				if !j.rbOK {
					if j.rEOF {
						break
					}
					if err := j.fetchRight(); err != nil {
						e.setErr(err)
						return
					}
					continue
				}
				if j.rb.GroupID>>j.BuildShift < gid {
					j.rbOK = false
					continue
				}
				if j.rb.GroupID>>j.BuildShift > gid {
					break
				}
				g.Build = append(g.Build, j.rb.Clone())
				j.rbOK = false
			}
			grpBytes := g.Bytes()
			j.ctx.Mem.Grow(grpBytes)
			grp := g
			if len(j.Backends) > 0 {
				// The remote's decoded fragment has no NoteGroup hook, so
				// the MaxGroupRows diagnostic is recorded here from the
				// shipped unit — its build batches are exactly the rows the
				// remote will materialize.
				var buildRows int64
				for _, b := range grp.Build {
					buildRows += int64(b.Len())
				}
				j.noteGroupRows(buildRows)
				// Sharded form: ship the unit to the backend the router
				// places it on (by group hash, or by cumulative size under
				// the balance-by-size policy); the backend posts result
				// batches back and the exchange merges them under this
				// job's index, so delivery order — and therefore the
				// result — is independent of which backend ran the group.
				bk := j.Backends[j.Route(gid, grpBytes)]
				e.beginJob()
				bk.RunGroup(grp, j.frag,
					func(b *vector.Batch) { e.post(job, b) },
					func(err error) {
						j.ctx.Mem.Shrink(grpBytes)
						e.finish(job, err)
					})
				continue
			}
			e.submitJob(job, func(_ int, emit func(*vector.Batch)) error {
				var err error
				if !e.isClosed() {
					err = j.frag.Run(grp, emit)
				}
				j.ctx.Mem.Shrink(grpBytes)
				return err
			})
		}
	}()
}

// Next implements Operator. Output batches never exceed BatchSize rows: a
// probe row whose match list would overflow the batch flushes mid-row and
// resumes from the recorded match position on the following call — without
// this, one large build group with many matches per probe row would grow the
// output without bound, breaking the batch-size invariant downstream
// operators size their scratch by. Flushed batches stay group-pure (they
// always derive from a single probe batch).
func (j *SandwichHashJoin) Next() (*vector.Batch, error) {
	if j.Sched != nil || len(j.Backends) > 0 {
		if j.ex == nil {
			j.startParallelGroups()
		}
		return j.ex.nextBatch()
	}
	return j.nextSerial()
}

func (j *SandwichHashJoin) nextSerial() (*vector.Batch, error) {
	j.out.Reset()
	if j.probeBatch != nil {
		// Resuming mid-batch after a flush: restore the group tag.
		j.out.Grouped = true
		j.out.GroupID = j.probeBatch.GroupID
	}
	for {
		if j.probeBatch == nil {
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			if !b.Grouped {
				return nil, fmt.Errorf("engine: sandwich join probe input is not a group stream")
			}
			gid := b.GroupID >> j.ProbeShift
			if !j.haveG || j.curGID != gid {
				if j.haveG && gid < j.curGID {
					return nil, fmt.Errorf("engine: sandwich join probe groups not ascending (%d after %d)", gid, j.curGID)
				}
				if err := j.buildGroup(gid); err != nil {
					return nil, err
				}
			}
			j.probeBatch = b
			j.probeRow = 0
			j.looked = false
			j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
			j.out.Reset()
			j.out.Grouped = true
			j.out.GroupID = b.GroupID
		}
		b := j.probeBatch
		nl := len(b.Cols)
		for j.probeRow < b.Len() {
			r := j.probeRow
			if !j.looked {
				head := j.table.Lookup(j.probeHashes[r], j.probeEq)
				if j.Type == SemiJoin || j.Type == AntiJoin {
					// Existence only: walk the chain without materializing it.
					hit := false
					for bi := head; bi >= 0; bi = j.table.ChainNext(bi) {
						if j.residualOK(b, r, bi) {
							hit = true
							break
						}
					}
					if hit == (j.Type == SemiJoin) {
						j.out.AppendRow(b, r)
					}
					j.probeRow++
					if j.out.Len() >= vector.BatchSize {
						return j.out, nil
					}
					continue
				}
				j.matches = j.table.Matches(head, j.matches[:0])
				j.matchPos = 0
				j.emitted = false
				j.looked = true
			}
			for j.matchPos < len(j.matches) {
				bi := j.matches[j.matchPos]
				j.matchPos++
				if !j.residualOK(b, r, bi) {
					continue
				}
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				j.buf.WriteRow(j.out, int(bi), nl)
				if j.Type == LeftOuterJoin {
					j.out.Cols[len(j.out.Cols)-1].AppendInt64(1)
				}
				j.emitted = true
				if j.out.Len() >= vector.BatchSize {
					return j.out, nil
				}
			}
			if !j.emitted && j.Type == LeftOuterJoin {
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				for c := range j.Right.Schema() {
					appendZero(j.out.Cols[nl+c])
				}
				j.out.Cols[len(j.out.Cols)-1].AppendInt64(0)
			}
			j.probeRow++
			j.looked = false
			if j.out.Len() >= vector.BatchSize {
				return j.out, nil
			}
		}
		j.probeBatch = nil
		if j.out.Len() > 0 {
			return j.out, nil
		}
	}
}

// MaxGroupRows reports the largest build group materialized, for
// diagnostics and tests of the sandwich memory effect. Sharded runs record
// it from the shipped units' build batches (the rows the remote
// materializes), so the value is comparable across transports.
func (j *SandwichHashJoin) MaxGroupRows() int64 { return j.maxGroup }

// Close implements Operator.
func (j *SandwichHashJoin) Close() error {
	if j.ex != nil {
		j.ex.close()
		j.ex = nil
	}
	j.ctx.Mem.Shrink(j.memBytes)
	j.memBytes = 0
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
