package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// SandwichHashJoin is the sandwich operator of the paper's reference [3]
// applied to a hash join: both inputs arrive as group streams aligned on a
// shared co-clustering dimension (ascending group identifiers, group-pure
// batches), so the join degenerates into a sequence of per-group hash joins.
// Only one group of the build side is materialized at a time — the paper's
// "faster execution times and significantly reduced memory while processing
// the same amount of data".
//
// The group identifier must be implied by the join key (both sides reach
// the shared dimension through the equated foreign key), which is exactly
// the condition the BDCC planner establishes before placing this operator;
// rows can then never match across different groups.
type SandwichHashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []string
	Type                JoinType
	Residual            expr.Expr
	// ProbeShift and BuildShift align streams whose group identifiers carry
	// extra minor bits: two rows are in the same sandwich group when
	// probeGID>>ProbeShift == buildGID>>BuildShift. A pipeline clustered at
	// finer granularity than the shared dimension's common bits simply
	// shifts the surplus away.
	ProbeShift uint
	BuildShift uint

	schema expr.Schema
	ctx    *Context

	buf      *Buffer
	table    *partJoinTable
	memBytes int64

	leftKeyIdx  []int
	rightKeyIdx []int

	// per-batch hash scratch and collision-verification closures
	probeHashes []uint64
	buildHashes []uint64
	matches     []int32
	matchPos    int
	looked      bool
	emitted     bool
	probeBatch  *vector.Batch
	probeRow    int
	buildRow    int32
	probeEq     func(int32) bool
	buildEq     func(int32) bool

	// right lookahead
	rb     *vector.Batch // buffered copy of the lookahead batch
	rbOK   bool
	rEOF   bool
	curGID uint64 // group currently materialized in buf
	haveG  bool

	out      *vector.Batch
	combined *vector.Batch
	resVec   *vector.Vector
	maxGroup int64
}

// Schema implements Operator.
func (j *SandwichHashJoin) Schema() expr.Schema { return j.schema }

// Open implements Operator.
func (j *SandwichHashJoin) Open(ctx *Context) error {
	j.ctx = ctx
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	ls, rs := j.Left.Schema(), j.Right.Schema()
	switch j.Type {
	case InnerJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
	case LeftOuterJoin:
		j.schema = append(append(expr.Schema{}, ls...), rs...)
		j.schema = append(j.schema, expr.ColMeta{Name: MatchedColName, Kind: vector.Int64})
	case SemiJoin, AntiJoin:
		j.schema = append(expr.Schema{}, ls...)
	}
	var err error
	j.leftKeyIdx, err = keyIndexes(ls, j.LeftKeys)
	if err != nil {
		return errOp("sandwich join probe keys", err)
	}
	if j.Residual != nil {
		combined := append(append(expr.Schema{}, ls...), rs...)
		if err := expr.Bind(j.Residual, combined); err != nil {
			return errOp("sandwich join residual", err)
		}
		j.combined = vector.NewBatch(combined.Kinds())
		j.resVec = expr.NewScratch(vector.Int64)
	}
	j.rightKeyIdx, err = keyIndexes(rs, j.RightKeys)
	if err != nil {
		return errOp("sandwich join build keys", err)
	}
	j.probeEq = func(head int32) bool {
		return keysEqualBatchBuf(j.probeBatch, j.leftKeyIdx, j.probeRow, j.buf, j.rightKeyIdx, int(head))
	}
	j.buildEq = func(head int32) bool {
		return keysEqualBufBuf(j.buf, j.rightKeyIdx, int(j.buildRow), int(head))
	}
	j.buf = NewBuffer(rs)
	j.table = newPartJoinTable(1)
	j.rb = vector.NewBatch(rs.Kinds())
	j.out = vector.NewBatch(j.schema.Kinds())
	return nil
}

// fetchRight loads the next right batch into the lookahead copy.
func (j *SandwichHashJoin) fetchRight() error {
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			j.rEOF = true
			j.rbOK = false
			return nil
		}
		if b.Len() == 0 {
			continue
		}
		if !b.Grouped {
			return fmt.Errorf("engine: sandwich join build input is not a group stream")
		}
		j.rb.Reset()
		j.rb.AppendBatch(b)
		j.rb.GroupID = b.GroupID
		j.rb.Grouped = true
		j.rbOK = true
		return nil
	}
}

// buildGroup materializes the right group gid (if present) into the hash
// table, discarding right groups with smaller identifiers.
func (j *SandwichHashJoin) buildGroup(gid uint64) error {
	j.ctx.Mem.Shrink(j.memBytes)
	j.memBytes = 0
	j.buf.Reset()
	j.table.Reset()
	j.haveG = true
	j.curGID = gid
	for {
		if !j.rbOK {
			if j.rEOF {
				break
			}
			if err := j.fetchRight(); err != nil {
				return err
			}
			continue
		}
		if j.rb.GroupID>>j.BuildShift < gid {
			j.rbOK = false
			continue
		}
		if j.rb.GroupID>>j.BuildShift > gid {
			break
		}
		base := int32(j.buf.Len())
		j.buf.AppendBatch(j.rb)
		j.buildHashes = vector.HashKeys(j.rb, j.rightKeyIdx, j.buildHashes)
		for i := 0; i < j.rb.Len(); i++ {
			j.buildRow = base + int32(i)
			j.table.Insert(j.buildHashes[i], j.buildRow, j.buildEq)
		}
		j.rbOK = false
	}
	j.memBytes = j.buf.Bytes() + j.table.Bytes()
	j.ctx.Mem.Grow(j.memBytes)
	if n := int64(j.buf.Len()); n > j.maxGroup {
		j.maxGroup = n
	}
	return nil
}

// residualOK mirrors HashJoin.residualOK for the buffered group.
func (j *SandwichHashJoin) residualOK(left *vector.Batch, li int, bi int32) bool {
	if j.Residual == nil {
		return true
	}
	j.combined.Reset()
	nl := len(left.Cols)
	for c := 0; c < nl; c++ {
		j.combined.Cols[c].AppendFrom(left.Cols[c], li)
	}
	j.buf.WriteRow(j.combined, int(bi), nl)
	j.resVec.Reset()
	j.Residual.Eval(j.combined, j.resVec)
	return j.resVec.I64[0] != 0
}

// Next implements Operator. Output batches never exceed BatchSize rows: a
// probe row whose match list would overflow the batch flushes mid-row and
// resumes from the recorded match position on the following call — without
// this, one large build group with many matches per probe row would grow the
// output without bound, breaking the batch-size invariant downstream
// operators size their scratch by. Flushed batches stay group-pure (they
// always derive from a single probe batch).
func (j *SandwichHashJoin) Next() (*vector.Batch, error) {
	j.out.Reset()
	if j.probeBatch != nil {
		// Resuming mid-batch after a flush: restore the group tag.
		j.out.Grouped = true
		j.out.GroupID = j.probeBatch.GroupID
	}
	for {
		if j.probeBatch == nil {
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			if !b.Grouped {
				return nil, fmt.Errorf("engine: sandwich join probe input is not a group stream")
			}
			gid := b.GroupID >> j.ProbeShift
			if !j.haveG || j.curGID != gid {
				if j.haveG && gid < j.curGID {
					return nil, fmt.Errorf("engine: sandwich join probe groups not ascending (%d after %d)", gid, j.curGID)
				}
				if err := j.buildGroup(gid); err != nil {
					return nil, err
				}
			}
			j.probeBatch = b
			j.probeRow = 0
			j.looked = false
			j.probeHashes = vector.HashKeys(b, j.leftKeyIdx, j.probeHashes)
			j.out.Reset()
			j.out.Grouped = true
			j.out.GroupID = b.GroupID
		}
		b := j.probeBatch
		nl := len(b.Cols)
		for j.probeRow < b.Len() {
			r := j.probeRow
			if !j.looked {
				head := j.table.Lookup(j.probeHashes[r], j.probeEq)
				if j.Type == SemiJoin || j.Type == AntiJoin {
					// Existence only: walk the chain without materializing it.
					hit := false
					for bi := head; bi >= 0; bi = j.table.ChainNext(bi) {
						if j.residualOK(b, r, bi) {
							hit = true
							break
						}
					}
					if hit == (j.Type == SemiJoin) {
						j.out.AppendRow(b, r)
					}
					j.probeRow++
					if j.out.Len() >= vector.BatchSize {
						return j.out, nil
					}
					continue
				}
				j.matches = j.table.Matches(head, j.matches[:0])
				j.matchPos = 0
				j.emitted = false
				j.looked = true
			}
			for j.matchPos < len(j.matches) {
				bi := j.matches[j.matchPos]
				j.matchPos++
				if !j.residualOK(b, r, bi) {
					continue
				}
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				j.buf.WriteRow(j.out, int(bi), nl)
				if j.Type == LeftOuterJoin {
					j.out.Cols[len(j.out.Cols)-1].AppendInt64(1)
				}
				j.emitted = true
				if j.out.Len() >= vector.BatchSize {
					return j.out, nil
				}
			}
			if !j.emitted && j.Type == LeftOuterJoin {
				for c := 0; c < nl; c++ {
					j.out.Cols[c].AppendFrom(b.Cols[c], r)
				}
				for c := range j.Right.Schema() {
					appendZero(j.out.Cols[nl+c])
				}
				j.out.Cols[len(j.out.Cols)-1].AppendInt64(0)
			}
			j.probeRow++
			j.looked = false
			if j.out.Len() >= vector.BatchSize {
				return j.out, nil
			}
		}
		j.probeBatch = nil
		if j.out.Len() > 0 {
			return j.out, nil
		}
	}
}

// MaxGroupRows reports the largest build group materialized, for
// diagnostics and tests of the sandwich memory effect.
func (j *SandwichHashJoin) MaxGroupRows() int64 { return j.maxGroup }

// Close implements Operator.
func (j *SandwichHashJoin) Close() error {
	j.ctx.Mem.Shrink(j.memBytes)
	j.memBytes = 0
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
