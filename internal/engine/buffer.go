package engine

import (
	"encoding/binary"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// Buffer is a columnar row accumulator used by blocking operators (hash
// join builds, sorts, buffered merge-join groups). It reports its byte
// footprint so operators can charge the memory tracker.
type Buffer struct {
	schema expr.Schema
	cols   []*vector.Vector
	bytes  int64
}

// NewBuffer returns an empty buffer for the schema.
func NewBuffer(schema expr.Schema) *Buffer {
	b := &Buffer{schema: schema}
	for _, c := range schema {
		b.cols = append(b.cols, vector.NewVector(c.Kind, 0))
	}
	return b
}

// Schema returns the buffer's schema.
func (b *Buffer) Schema() expr.Schema { return b.schema }

// Len returns the number of buffered rows.
func (b *Buffer) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// Bytes returns the estimated footprint of the buffered rows.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Col returns column c.
func (b *Buffer) Col(c int) *vector.Vector { return b.cols[c] }

// AppendBatch buffers all rows of a batch (schemas must match).
func (b *Buffer) AppendBatch(batch *vector.Batch) {
	for c, col := range b.cols {
		src := batch.Cols[c]
		switch col.Kind {
		case vector.Int64:
			col.I64 = append(col.I64, src.I64...)
			b.bytes += 8 * int64(len(src.I64))
		case vector.Float64:
			col.F64 = append(col.F64, src.F64...)
			b.bytes += 8 * int64(len(src.F64))
		case vector.String:
			col.Str = append(col.Str, src.Str...)
			for _, s := range src.Str {
				b.bytes += 16 + int64(len(s))
			}
		}
	}
}

// AppendRow buffers row i of a batch.
func (b *Buffer) AppendRow(batch *vector.Batch, i int) {
	for c, col := range b.cols {
		col.AppendFrom(batch.Cols[c], i)
		switch col.Kind {
		case vector.String:
			b.bytes += 16 + int64(len(batch.Cols[c].Str[i]))
		default:
			b.bytes += 8
		}
	}
}

// WriteRow appends row i's columns to an output batch.
func (b *Buffer) WriteRow(out *vector.Batch, i int, firstCol int) {
	for c, col := range b.cols {
		out.Cols[firstCol+c].AppendFrom(col, i)
	}
}

// Reset truncates the buffer, keeping capacity.
func (b *Buffer) Reset() {
	for _, c := range b.cols {
		c.Reset()
	}
	b.bytes = 0
}

// Batches re-emits the buffered rows as batches of up to BatchSize rows,
// invoking fn for each. The batch passed to fn is reused.
func (b *Buffer) Batches(fn func(*vector.Batch) error) error {
	n := b.Len()
	out := vector.NewBatch(b.schema.Kinds())
	for lo := 0; lo < n; lo += vector.BatchSize {
		hi := lo + vector.BatchSize
		if hi > n {
			hi = n
		}
		out.Reset()
		for c, col := range b.cols {
			dst := out.Cols[c]
			switch col.Kind {
			case vector.Int64:
				dst.I64 = append(dst.I64, col.I64[lo:hi]...)
			case vector.Float64:
				dst.F64 = append(dst.F64, col.F64[lo:hi]...)
			case vector.String:
				dst.Str = append(dst.Str, col.Str[lo:hi]...)
			}
		}
		if err := fn(out); err != nil {
			return err
		}
	}
	return nil
}

// keyEncoder encodes the values of selected columns of a batch row into a
// compact byte key for hash maps. Encodings are order-preserving only for
// equality (hash) use.
type keyEncoder struct {
	cols    []int
	scratch []byte
}

func newKeyEncoder(cols []int) *keyEncoder {
	return &keyEncoder{cols: cols, scratch: make([]byte, 0, 64)}
}

// encode returns the key of row i; the returned slice is valid until the
// next call.
func (k *keyEncoder) encode(b *vector.Batch, i int) []byte {
	k.scratch = k.scratch[:0]
	for _, c := range k.cols {
		col := b.Cols[c]
		switch col.Kind {
		case vector.Int64:
			k.scratch = binary.LittleEndian.AppendUint64(k.scratch, uint64(col.I64[i]))
		case vector.Float64:
			// Normalized bits so -0.0 and +0.0 encode as the same key.
			k.scratch = binary.LittleEndian.AppendUint64(k.scratch, vector.FloatKeyBits(col.F64[i]))
		case vector.String:
			k.scratch = binary.LittleEndian.AppendUint32(k.scratch, uint32(len(col.Str[i])))
			k.scratch = append(k.scratch, col.Str[i]...)
		}
	}
	return k.scratch
}
