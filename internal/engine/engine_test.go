package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bdcc/internal/expr"
	"bdcc/internal/iosim"
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// source is a test operator replaying pre-built batches.
type source struct {
	schema  expr.Schema
	batches []*vector.Batch
	pos     int
}

func (s *source) Schema() expr.Schema     { return s.schema }
func (s *source) Open(ctx *Context) error { return nil }
func (s *source) Close() error            { return nil }
func (s *source) Next() (*vector.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

// makeBatch builds an int64-only batch from column slices.
func makeBatch(schema expr.Schema, cols ...[]int64) *vector.Batch {
	b := vector.NewBatch(schema.Kinds())
	for i, vals := range cols {
		b.Cols[i].I64 = append(b.Cols[i].I64, vals...)
	}
	return b
}

func intSchema(names ...string) expr.Schema {
	s := make(expr.Schema, len(names))
	for i, n := range names {
		s[i] = expr.ColMeta{Name: n, Kind: vector.Int64}
	}
	return s
}

func testCtx() *Context { return NewContext(iosim.PaperSSD()) }

// runAll runs op and returns all rows rendered as strings, optionally
// sorted for order-insensitive comparison.
func runAll(t *testing.T, op Operator, sortRows bool) []string {
	t.Helper()
	res, err := Run(testCtx(), op)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make([]string, res.Rows())
	for i := range out {
		out[i] = fmt.Sprint(res.Row(i))
	}
	if sortRows {
		sort.Strings(out)
	}
	return out
}

func TestTableScanFilterAndRanges(t *testing.T) {
	n := 10000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := storage.MustNewTable("t", 4096, storage.NewInt64Column("v", vals))
	scan := &TableScan{Table: tab, Cols: []string{"v"},
		Filter: expr.NewCmp(expr.LT, expr.C("v"), expr.Int(100))}
	rows := runAll(t, scan, false)
	if len(rows) != 100 {
		t.Fatalf("filtered scan returned %d rows, want 100", len(rows))
	}
	// Range-restricted scan.
	scan2 := &TableScan{Table: tab, Cols: []string{"v"},
		Ranges: storage.RowRanges{{Start: 10, End: 20}, {Start: 50, End: 55}}}
	rows = runAll(t, scan2, false)
	if len(rows) != 15 {
		t.Fatalf("ranged scan returned %d rows, want 15", len(rows))
	}
	if rows[0] != "[10]" || rows[14] != "[54]" {
		t.Fatalf("ranged scan rows = %v", rows)
	}
}

func TestTableScanChargesIO(t *testing.T) {
	n := 100000
	vals := make([]int64, n)
	tab := storage.MustNewTable("t", 32<<10, storage.NewInt64Column("v", vals))
	ctx := testCtx()
	op := &TableScan{Table: tab, Cols: []string{"v"}}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		b, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
	}
	st := ctx.Acct.Stats()
	wantPages := int64((n*8 + 32<<10 - 1) / (32 << 10))
	if st.Pages != wantPages {
		t.Fatalf("charged %d pages, want %d", st.Pages, wantPages)
	}
	if st.Runs != 1 {
		t.Fatalf("full scan charged %d runs, want 1", st.Runs)
	}
}

func randPairs(rng *rand.Rand, n int, keyDomain int64) [][2]int64 {
	out := make([][2]int64, n)
	for i := range out {
		out[i] = [2]int64{int64(i), rng.Int63n(keyDomain)}
	}
	return out
}

func pairsSource(schema expr.Schema, rows [][2]int64) *source {
	a := make([]int64, len(rows))
	b := make([]int64, len(rows))
	for i, r := range rows {
		a[i], b[i] = r[0], r[1]
	}
	return &source{schema: schema, batches: []*vector.Batch{makeBatch(schema, a, b)}}
}

func TestHashJoinInnerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := randPairs(rng, 500, 50)
	r := randPairs(rng, 300, 50)
	// swap cols so r's key is col 0
	rr := make([][2]int64, len(r))
	for i := range r {
		rr[i] = [2]int64{r[i][1], r[i][0]}
	}
	j := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), rr),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type: InnerJoin,
	}
	got := runAll(t, j, true)
	var ref []string
	for _, lrow := range l {
		for _, rrow := range rr {
			if lrow[1] == rrow[0] {
				ref = append(ref, fmt.Sprint([]string{fmt.Sprint(lrow[0]), fmt.Sprint(lrow[1]), fmt.Sprint(rrow[0]), fmt.Sprint(rrow[1])}))
			}
		}
	}
	sort.Strings(ref)
	if len(got) != len(ref) {
		t.Fatalf("join rows = %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %s != %s", i, got[i], ref[i])
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	l := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	r := [][2]int64{{2, 9}, {4, 9}, {4, 8}}
	semi := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), r),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type: SemiJoin,
	}
	got := runAll(t, semi, true)
	if fmt.Sprint(got) != "[[1 2] [3 4]]" {
		t.Fatalf("semi = %v", got)
	}
	anti := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), r),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type: AntiJoin,
	}
	got = runAll(t, anti, true)
	if fmt.Sprint(got) != "[[0 1] [2 3]]" {
		t.Fatalf("anti = %v", got)
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	l := [][2]int64{{0, 1}, {1, 2}}
	r := [][2]int64{{2, 7}}
	j := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), r),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type: LeftOuterJoin,
	}
	got := runAll(t, j, true)
	want := "[[0 1 0 0 0] [1 2 2 7 1]]"
	if fmt.Sprint(got) != want {
		t.Fatalf("left outer = %v, want %v", got, want)
	}
}

func TestHashJoinResidual(t *testing.T) {
	// Semi join with residual rid <> lid (Q21 pattern).
	l := [][2]int64{{9, 1}, {8, 2}}
	r := [][2]int64{{1, 9}, {2, 5}}
	j := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), r),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type:     SemiJoin,
		Residual: expr.NewCmp(expr.NE, expr.C("rid"), expr.C("lid")),
	}
	got := runAll(t, j, true)
	if fmt.Sprint(got) != "[[8 2]]" {
		t.Fatalf("residual semi = %v", got)
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := randPairs(rng, 800, 60)
	r := randPairs(rng, 400, 60)
	sort.Slice(l, func(i, j int) bool { return l[i][1] < l[j][1] })
	sort.Slice(r, func(i, j int) bool { return r[i][1] < r[j][1] })
	rr := make([][2]int64, len(r))
	for i := range r {
		rr[i] = [2]int64{r[i][1], r[i][0]}
	}
	mj := &MergeJoin{
		Left:    pairsSource(intSchema("lid", "lk"), l),
		Right:   pairsSource(intSchema("rk", "rid"), rr),
		LeftKey: "lk", RightKey: "rk",
	}
	hj := &HashJoin{
		Left:     pairsSource(intSchema("lid", "lk"), l),
		Right:    pairsSource(intSchema("rk", "rid"), rr),
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"},
		Type: InnerJoin,
	}
	got := runAll(t, mj, true)
	want := runAll(t, hj, true)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge join disagrees with hash join: %d vs %d rows", len(got), len(want))
	}
}

func TestHashAggregate(t *testing.T) {
	schema := intSchema("g", "v")
	src := &source{schema: schema, batches: []*vector.Batch{
		makeBatch(schema, []int64{1, 2, 1, 3, 2}, []int64{10, 20, 30, 40, 50}),
	}}
	agg := &HashAggregate{Child: src, GroupBy: []string{"g"}, Aggs: []AggSpec{
		{Name: "sum_v", Func: AggSum, Arg: expr.C("v")},
		{Name: "cnt", Func: AggCount},
		{Name: "min_v", Func: AggMin, Arg: expr.C("v")},
		{Name: "max_v", Func: AggMax, Arg: expr.C("v")},
		{Name: "avg_v", Func: AggAvg, Arg: expr.C("v")},
	}}
	got := runAll(t, agg, true)
	want := []string{
		"[1 40 2 10 30 20.00]",
		"[2 70 2 20 50 35.00]",
		"[3 40 1 40 40 40.00]",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("agg = %v, want %v", got, want)
	}
}

func TestHashAggregateCountDistinct(t *testing.T) {
	schema := intSchema("g", "v")
	src := &source{schema: schema, batches: []*vector.Batch{
		makeBatch(schema, []int64{1, 1, 1, 2}, []int64{5, 5, 7, 5}),
	}}
	agg := &HashAggregate{Child: src, GroupBy: []string{"g"}, Aggs: []AggSpec{
		{Name: "d", Func: AggCountDistinct, Arg: expr.C("v")},
	}}
	got := runAll(t, agg, true)
	if fmt.Sprint(got) != "[[1 2] [2 1]]" {
		t.Fatalf("count distinct = %v", got)
	}
}

func TestStreamAggregateMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	g := make([]int64, n)
	v := make([]int64, n)
	for i := range g {
		g[i] = rng.Int63n(100)
		v[i] = rng.Int63n(1000)
	}
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] }) // v stays random
	schema := intSchema("g", "v")
	mk := func() *source {
		return &source{schema: schema, batches: []*vector.Batch{makeBatch(schema, g, v)}}
	}
	aggs := []AggSpec{
		{Name: "s", Func: AggSum, Arg: expr.C("v")},
		{Name: "c", Func: AggCount},
	}
	sa := &StreamAggregate{Child: mk(), GroupBy: []string{"g"}, Aggs: aggs}
	ha := &HashAggregate{Child: mk(), GroupBy: []string{"g"}, Aggs: []AggSpec{
		{Name: "s", Func: AggSum, Arg: expr.C("v")},
		{Name: "c", Func: AggCount},
	}}
	got := runAll(t, sa, true)
	want := runAll(t, ha, true)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stream agg disagrees with hash agg")
	}
}

func TestSortAndTopN(t *testing.T) {
	schema := intSchema("a", "b")
	src := func() *source {
		return &source{schema: schema, batches: []*vector.Batch{
			makeBatch(schema, []int64{3, 1, 2, 1}, []int64{0, 5, 9, 2}),
		}}
	}
	s := &Sort{Child: src(), By: []SortSpec{{Col: "a"}, {Col: "b", Desc: true}}}
	got := runAll(t, s, false)
	want := "[[1 5] [1 2] [2 9] [3 0]]"
	if fmt.Sprint(got) != want {
		t.Fatalf("sort = %v, want %v", got, want)
	}
	topn := &TopN{Child: src(), By: []SortSpec{{Col: "b", Desc: true}}, N: 2}
	got = runAll(t, topn, false)
	if fmt.Sprint(got) != "[[2 9] [1 5]]" {
		t.Fatalf("topn = %v", got)
	}
}

func TestProjectAndFilter(t *testing.T) {
	schema := intSchema("x")
	src := &source{schema: schema, batches: []*vector.Batch{
		makeBatch(schema, []int64{1, 2, 3, 4, 5}),
	}}
	p := NewProject(
		&Filter{Child: src, Pred: expr.NewCmp(expr.GT, expr.C("x"), expr.Int(2))},
		ProjCol{Name: "y", Expr: expr.NewArith(expr.Mul, expr.C("x"), expr.Int(10))},
	)
	got := runAll(t, p, false)
	if fmt.Sprint(got) != "[[30] [40] [50]]" {
		t.Fatalf("project = %v", got)
	}
}

func TestLimit(t *testing.T) {
	schema := intSchema("x")
	src := &source{schema: schema, batches: []*vector.Batch{
		makeBatch(schema, []int64{1, 2, 3}),
		makeBatch(schema, []int64{4, 5, 6}),
	}}
	got := runAll(t, &Limit{Child: src, N: 4}, false)
	if fmt.Sprint(got) != "[[1] [2] [3] [4]]" {
		t.Fatalf("limit = %v", got)
	}
}

func TestMemTrackerPeak(t *testing.T) {
	m := &MemTracker{}
	m.Grow(100)
	m.Grow(50)
	m.Shrink(120)
	m.Grow(10)
	if m.Peak() != 150 {
		t.Fatalf("peak = %d, want 150", m.Peak())
	}
	if m.Current() != 40 {
		t.Fatalf("current = %d, want 40", m.Current())
	}
}
