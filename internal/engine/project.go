package engine

import (
	"fmt"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// Filter drops rows of its child stream that fail the predicate, preserving
// group tags.
type Filter struct {
	Child Operator
	Pred  expr.Expr

	out     *vector.Batch
	scratch *vector.Vector
}

// Schema implements Operator.
func (f *Filter) Schema() expr.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Context) error {
	if err := f.Child.Open(ctx); err != nil {
		return err
	}
	if err := expr.Bind(f.Pred, f.Child.Schema()); err != nil {
		return errOp("filter", err)
	}
	f.out = vector.NewBatch(f.Child.Schema().Kinds())
	f.scratch = expr.NewScratch(vector.Int64)
	return nil
}

// Next implements Operator.
func (f *Filter) Next() (*vector.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		f.out.Reset()
		filterInto(f.Pred, f.scratch, b, f.out)
		if f.out.Len() > 0 {
			return f.out, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// ProjCol is one output column of a projection.
type ProjCol struct {
	Name string
	Expr expr.Expr
}

// Project computes scalar expressions over its child stream.
type Project struct {
	Child Operator
	Cols  []ProjCol

	schema expr.Schema
	out    *vector.Batch
}

// NewProject is a convenience constructor.
func NewProject(child Operator, cols ...ProjCol) *Project {
	return &Project{Child: child, Cols: cols}
}

// Schema implements Operator.
func (p *Project) Schema() expr.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open(ctx *Context) error {
	if err := p.Child.Open(ctx); err != nil {
		return err
	}
	in := p.Child.Schema()
	p.schema = nil
	for _, c := range p.Cols {
		if err := expr.Bind(c.Expr, in); err != nil {
			return errOp(fmt.Sprintf("project %s", c.Name), err)
		}
		p.schema = append(p.schema, expr.ColMeta{Name: c.Name, Kind: c.Expr.Kind()})
	}
	p.out = vector.NewBatch(p.schema.Kinds())
	return nil
}

// Next implements Operator.
func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	p.out.Reset()
	for i, c := range p.Cols {
		c.Expr.Eval(b, p.out.Cols[i])
	}
	p.out.GroupID = b.GroupID
	p.out.Grouped = b.Grouped
	return p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	Child Operator
	N     int

	seen int
	out  *vector.Batch
}

// Schema implements Operator.
func (l *Limit) Schema() expr.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error {
	if err := l.Child.Open(ctx); err != nil {
		return err
	}
	l.out = vector.NewBatch(l.Child.Schema().Kinds())
	return nil
}

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+b.Len() <= l.N {
		l.seen += b.Len()
		return b, nil
	}
	l.out.Reset()
	for i := 0; l.seen < l.N; i++ {
		l.out.AppendRow(b, i)
		l.seen++
	}
	return l.out, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }
