package engine

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bdcc/internal/expr"
	"bdcc/internal/vector"
)

// pipelineQuery builds a scan→join→agg pipeline with every stage submitting
// to the context's shared scheduler — the shape the per-query pool exists
// for.
func pipelineQuery(ctx *Context) Operator {
	left, right := parTestTables()
	scan := &TableScan{
		Table:  left,
		Cols:   []string{"lkey", "lpay", "lstr"},
		Filter: expr.NewCmp(expr.GE, expr.C("lkey"), expr.Int(0)),
		Sched:  ctx.Scheduler(),
	}
	join := &HashJoin{
		Left:     scan,
		Right:    &TableScan{Table: right, Cols: []string{"rkey", "rpay"}},
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
		Type:  InnerJoin,
		Sched: ctx.Scheduler(),
	}
	return &HashAggregate{
		Child:   join,
		GroupBy: []string{"lkey"},
		Aggs: []AggSpec{
			{Name: "c", Func: AggCount},
			{Name: "s", Func: AggSum, Arg: expr.C("rpay")},
		},
		Sched: ctx.Scheduler(),
	}
}

// TestPipelineGoroutineBudget asserts the tentpole invariant: a
// scan→join→agg pipeline runs on one shared pool, so total goroutines stay
// within Workers plus a small constant of coordinators (join feeder,
// sampler) — no per-stage oversubscription (the old design peaked near
// 3×Workers).
func TestPipelineGoroutineBudget(t *testing.T) {
	const workers = 8
	const slack = 5 // join feeder + sampler + runtime jitter
	base := runtime.NumGoroutine()
	ctx := parCtx(workers)

	stop := make(chan struct{})
	peak := make(chan int, 1)
	go func() { // sampler
		maxG := 0
		for {
			select {
			case <-stop:
				peak <- maxG
				return
			default:
				if g := runtime.NumGoroutine(); g > maxG {
					maxG = g
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	serialCtx := parCtx(1)
	serial, err := Run(serialCtx, pipelineQuery(serialCtx))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, pipelineQuery(ctx))
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	maxG := <-peak
	requireIdentical(t, res, serial, "pipeline")
	if got := maxG - base; got > workers+slack {
		t.Fatalf("pipeline peaked at %d extra goroutines, want ≤ workers(%d)+%d — per-stage pools are back",
			got, workers, slack)
	}
	waitGoroutines(t, base+2)
}

// waitGoroutines polls until the process goroutine count drops to at most
// want (pool workers exit asynchronously after the last release).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines still alive, want ≤ %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// errAfter passes its child's batches through and fails with a fixed error
// after n batches — a consumer erroring mid-stream above a parallel
// producer.
type errAfter struct {
	child Operator
	n     int
	err   error
}

func (e *errAfter) Schema() expr.Schema     { return e.child.Schema() }
func (e *errAfter) Open(ctx *Context) error { return e.child.Open(ctx) }
func (e *errAfter) Close() error            { return e.child.Close() }
func (e *errAfter) Next() (*vector.Batch, error) {
	if e.n <= 0 {
		return nil, e.err
	}
	e.n--
	return e.child.Next()
}

// TestErrorMidStreamJoinsProducers locks in the goroutine-leak fix: when
// the consumer of an exchange errors mid-stream, Close must drain and join
// every producer (pool tasks, feeders, pool workers) and leave the memory
// tracker balanced.
func TestErrorMidStreamJoinsProducers(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom")
	for _, shape := range []string{"scan", "join", "agg"} {
		shape := shape
		t.Run(shape, func(t *testing.T) {
			left, right := parTestTables()
			ctx := parCtx(4)
			scan := &TableScan{
				Table:  left,
				Cols:   []string{"lkey", "lpay", "lstr"},
				Filter: expr.NewCmp(expr.GE, expr.C("lkey"), expr.Int(0)),
				Sched:  ctx.Scheduler(),
			}
			var op Operator
			switch shape {
			case "scan":
				op = &errAfter{child: scan, n: 2, err: boom}
			case "join":
				op = &errAfter{child: &HashJoin{
					Left:     scan,
					Right:    &TableScan{Table: right, Cols: []string{"rkey", "rpay"}},
					LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
					Type:  InnerJoin,
					Sched: ctx.Scheduler(),
				}, n: 2, err: boom}
			case "agg":
				// The error surfaces inside the aggregation's routing drain.
				op = &HashAggregate{
					Child:   &errAfter{child: scan, n: 2, err: boom},
					GroupBy: []string{"lkey"},
					Aggs:    []AggSpec{{Name: "c", Func: AggCount}},
					Sched:   ctx.Scheduler(),
				}
			}
			if _, err := Run(ctx, op); !errors.Is(err, boom) {
				t.Fatalf("Run returned %v, want the mid-stream error", err)
			}
			if cur := ctx.Mem.Current(); cur != 0 {
				t.Fatalf("%d bytes still accounted after mid-stream error", cur)
			}
			waitGoroutines(t, base+2)
		})
	}
}

// TestSchedulerStats checks the tpchbench -v counters: tasks flow through
// the pool, and the snapshot is monotonic across a query.
func TestSchedulerStats(t *testing.T) {
	ctx := parCtx(4)
	if _, err := Run(ctx, pipelineQuery(ctx)); err != nil {
		t.Fatal(err)
	}
	st := ctx.Scheduler().Stats()
	if st.Tasks == 0 {
		t.Fatal("no tasks recorded for a fully parallel pipeline")
	}
	if st.Steals < 0 || st.Idle < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
}

// TestSchedulerWorkerReuse checks the pool respawns cleanly after going
// idle: two queries on one context reuse the same scheduler.
func TestSchedulerWorkerReuse(t *testing.T) {
	ctx := parCtx(3)
	s := ctx.Scheduler()
	for i := 0; i < 2; i++ {
		if _, err := Run(ctx, pipelineQuery(ctx)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctx.Scheduler(); got != s {
		t.Fatal("context rebuilt its scheduler between queries")
	}
	if st := s.Stats(); st.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
}

// TestSandwichJoinParallelMatchesSerial checks the cross-group pipeline of
// the sandwich join against its serial execution for every join type, with
// and without residuals and shifts: identical rows in identical order with
// identical group tags, and a balanced tracker.
func TestSandwichJoinParallelMatchesSerial(t *testing.T) {
	left, right, _ := coClusteredPair(t, 30000, 700)
	for _, typ := range []JoinType{InnerJoin, LeftOuterJoin, SemiJoin, AntiJoin} {
		typ := typ
		for _, residual := range []bool{false, true} {
			residual := residual
			t.Run(fmt.Sprintf("type=%d/residual=%v", typ, residual), func(t *testing.T) {
				mk := func(ctx *Context) *SandwichHashJoin {
					sj := &SandwichHashJoin{
						Left:     groupedScan(t, left, []string{"lkey", "lid"}),
						Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
						LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
						Type:  typ,
						Sched: ctx.Scheduler(),
					}
					if residual {
						sj.Residual = expr.NewCmp(expr.GT, expr.C("rpay"), expr.Int(40))
						if typ == SemiJoin || typ == AntiJoin {
							sj.Residual = expr.NewCmp(expr.GT, expr.C("rpay"), expr.Int(10))
						}
					}
					return sj
				}
				serialCtx := parCtx(1)
				serial, err := Run(serialCtx, mk(serialCtx))
				if err != nil {
					t.Fatal(err)
				}
				if serial.Rows() == 0 && typ != AntiJoin {
					t.Fatal("serial sandwich join returned no rows — vacuous test")
				}
				for _, workers := range []int{2, 4} {
					ctx := parCtx(workers)
					par, err := Run(ctx, mk(ctx))
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, par, serial, fmt.Sprintf("workers=%d", workers))
					if cur := ctx.Mem.Current(); cur != 0 {
						t.Fatalf("workers=%d: %d bytes still accounted after Close", workers, cur)
					}
				}
			})
		}
	}
}

// TestSandwichJoinParallelEarlyClose checks the group pipeline shuts down
// cleanly when the consumer stops early.
func TestSandwichJoinParallelEarlyClose(t *testing.T) {
	base := runtime.NumGoroutine()
	left, right, _ := coClusteredPair(t, 30000, 700)
	ctx := parCtx(4)
	sj := &SandwichHashJoin{
		Left:     groupedScan(t, left, []string{"lkey", "lid"}),
		Right:    groupedScan(t, right, []string{"rkey", "rpay"}),
		LeftKeys: []string{"lkey"}, RightKeys: []string{"rkey"},
		Type:  InnerJoin,
		Sched: ctx.Scheduler(),
	}
	res, err := Run(ctx, &Limit{Child: sj, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 5 {
		t.Fatalf("limit returned %d rows, want 5", res.Rows())
	}
	if cur := ctx.Mem.Current(); cur != 0 {
		t.Fatalf("%d bytes still accounted after early close", cur)
	}
	waitGoroutines(t, base+2)
}
