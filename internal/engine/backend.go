package engine

import (
	"bdcc/internal/storage"
	"bdcc/internal/vector"
)

// This file is the engine's side of the scale-out seam: BDCC dimension
// groups are self-contained work units (a group's build and probe batches
// never match rows of another group, and a scatter group's row ranges never
// interleave with another group's), so group streams can be sharded across
// executors with no cross-shard coordination. Two unit shapes cross the
// seam: sandwich-join units carry a group's batches to whichever backend the
// router picks, and scan units carry only row ranges to the worker that
// owns the matching table partition (see internal/shard's Partitioning).
// The Backend interface is what a non-local executor implements;
// internal/shard provides the implementations (a local pass-through, an
// in-process simulated remote, and a real TCP backend talking to a
// bdccworker daemon) and the routers that assign groups to backends. The
// engine itself never decides placement — operators hand aligned groups to
// whichever backend the planner-injected route names, keeping placement in
// the scheduler/backend layer (the morsel paper's locality argument).

// GroupUnit is one group work unit, in one of two shapes. A join unit (the
// original form) carries the aligned, cloned probe and build batch sets of
// a single sandwich group; batches inside it keep their raw group tags, and
// a unit never shares memory with the producing operator's reuse cycle (the
// feeder clones before building a unit). A scan unit instead sets
// ScanRanges — the coordinator row ranges of one partitioned scatter-scan
// run — and carries no batches at all: the data already lives on the
// executing worker, which is the point of the partitioned scan path.
type GroupUnit struct {
	// GID is the aligned (shifted) group identifier the unit was routed by.
	GID uint64
	// Probe and Build are the group's probe-side and build-side batches, in
	// stream order. Build may be empty (a probe group with no build rows).
	Probe []*vector.Batch
	Build []*vector.Batch
	// ScanRanges, when non-nil, marks a scan unit: the row ranges (in
	// coordinator row space) of one run of a partitioned scatter scan. The
	// executing site maps them into its local row space via the fragment's
	// ScanSource.
	ScanRanges storage.RowRanges
}

// Bytes returns the footprint of the unit's batch data (the measure charged
// while a unit is in flight, and the size the balance-by-size router places
// groups by).
func (u *GroupUnit) Bytes() int64 {
	var n int64
	for _, b := range u.Probe {
		n += b.Bytes()
	}
	for _, b := range u.Build {
		n += b.Bytes()
	}
	return n
}

// Backend executes group work units on behalf of one query. It is the seam
// where remote executors plug in: the engine ships a plan Fragment once and
// self-contained units per group, and merges the returned batches
// order-preservingly, so results are byte-identical no matter where a group
// ran. For partitioned scans the lifecycle gains one earlier step: the
// planner ships each table partition (manifest + data segments) to its
// owning worker before any fragment or unit references it, and scan units
// then cross the wire as bare row ranges.
//
// RunGroup returns without waiting for the unit to execute. frag is the
// operator's plan fragment — the same pointer for every unit of one
// operator, which is what lets a remote backend ship its serialized form
// once at setup and refer to it by id afterwards. The backend invokes emit
// sequentially (per unit) for each result batch and then done(err) exactly
// once; both may be called from backend-owned goroutines. Batches passed to
// emit must not share memory with u — a remote backend's results cross its
// transport, and even the local backend hands over consumer-owned batches.
// Concurrent RunGroup calls are allowed; units are independent.
//
// Join units may run on any backend; scan units are placement-pinned — only
// the worker holding the unit's partition (or a site holding the full
// table, such as the coordinator's fallback) can execute them, so the
// failover layer re-scans a down worker's units locally instead of
// re-routing them to a peer.
//
// Close shuts the backend down and joins its goroutines. Callers must not
// Close while units are in flight (the exchange joins every unit's done
// callback first). See internal/shard's package comment for the full
// lifecycle contract (dial → partitions → setup → units → done/close) a
// third-party backend implements against.
type Backend interface {
	// Workers reports the backend's executor parallelism; the in-flight
	// lookahead window of a sharded group pipeline is sized by the backend
	// set's total.
	Workers() int
	RunGroup(u *GroupUnit, frag *Fragment, emit func(*vector.Batch), done func(error))
	Close() error
}

// BackendLoad is the routed load of one backend of a query's set: how many
// group units the router placed on it and their total batch bytes. The shard
// router records one entry per backend (Context.Loads); the balance-by-size
// policy places each group on the backend with the least cumulative bytes.
type BackendLoad struct {
	Units int64
	Bytes int64
}

// BackendHealth is the failover-health snapshot of one backend of a query's
// set, recorded by the shard failover layer (Context.Health): how many unit
// attempts failed on it, how often it was marked down, how often the health
// prober re-admitted it mid-query, and how many units its re-admitted
// incarnations served. State is the prober's view of the slot: "up",
// "probing" (down, reconnects under way), or "down" (not reconnectable).
type BackendHealth struct {
	State        string
	Retries      int64
	Downs        int64
	Readmits     int64
	ReadmitUnits int64
}
