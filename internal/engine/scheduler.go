package engine

import (
	"sync"
	"time"
)

// Sched is the per-query (per-Context) worker pool of the morsel paper's
// design: one pool of exactly Workers goroutines shared by every parallel
// operator of a plan, with per-worker FIFO deques and task stealing. The
// planner injects one handle per query into the operators it permits to
// parallelize; a nil handle means serial execution.
//
// Tasks must never block on exchange or operator state — the pool is shared
// across pipeline stages, so a blocked worker could starve the very stage
// that would unblock it. The order-preserving exchange therefore releases
// tasks only while its consumption window and buffer cap allow, instead of
// letting running tasks block (see parallel.go). Coordinator goroutines
// (stream feeders) may block; they never occupy a pool worker.
//
// Worker goroutines are spawned on demand and exit once the pool is idle and
// unreferenced (no operator holds a retain), so a finished query leaves no
// goroutines behind and total busy goroutines stay bounded by Workers plus a
// small constant of coordinators.
type Sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	deques  [][]Task // per-worker FIFO queues; idle workers steal from others
	live    []bool   // per-worker: goroutine currently running
	rr      int      // round-robin cursor for external submissions
	refs    int      // open operator handles; workers exit at 0
	stats   SchedStats
}

// Task is one unit of scheduled work; worker is the executing pool worker's
// index in [0, Workers()), valid as an index into per-worker scratch.
type Task func(worker int)

// Executor is the task-execution seam between parallel operators and
// whatever runs their tasks. The local per-query pool (Sched) is the
// reference implementation; the shard backends wrap their own pools behind
// the same interface, which is what lets placement decisions (local deque,
// other worker, other box) live behind one handle instead of in each
// operator.
//
// Implementations must uphold the pool contract of the package comment:
// submitted tasks run exactly once, tasks must never block on exchange or
// operator state, and Retain/Release bound the executor's goroutine
// lifetime (an unreferenced idle executor leaves no goroutines behind).
type Executor interface {
	// Workers reports the executor's parallelism; per-worker operator
	// scratch is sized by it, and every worker index passed to a Task is in
	// [0, Workers()).
	Workers() int
	// Submit enqueues t for execution. from names the submitting pool
	// worker (continuation tasks land on the submitter's own deque);
	// negative means an external submission.
	Submit(from int, t Task)
	// Retain registers an operator that will submit tasks; the executor
	// stays alive until every retain is released.
	Retain()
	// Release drops one operator handle; at zero, idle workers drain and
	// exit.
	Release()
}

var _ Executor = (*Sched)(nil)

// SchedStats is a snapshot of scheduler activity, reported by tpchbench -v.
type SchedStats struct {
	// Tasks is the number of tasks submitted.
	Tasks int64
	// Steals counts tasks executed by a worker other than the one whose
	// deque they were submitted to.
	Steals int64
	// Idle is the cumulative time workers spent parked waiting for work.
	Idle time.Duration
}

// NewSched returns a pool of exactly `workers` goroutines (spawned lazily,
// exiting when idle and unreferenced). The per-query pool is created through
// Context.Scheduler; NewSched exists for executors that need a pool of their
// own, such as a shard backend's remote-side scheduler.
func NewSched(workers int) *Sched {
	s := &Sched{
		workers: workers,
		deques:  make([][]Task, workers),
		live:    make([]bool, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the pool size; per-worker operator scratch is sized by it.
func (s *Sched) Workers() int { return s.workers }

// Retain registers an operator that will submit tasks; workers stay alive
// (parked when idle) until every retain is released.
func (s *Sched) Retain() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

// Release drops one operator handle; at zero, idle workers drain and exit.
func (s *Sched) Release() {
	s.mu.Lock()
	s.refs--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Submit enqueues t for execution. from names the submitting pool worker, so
// continuation tasks land on the submitter's own deque; negative means an
// external submission (consumer or feeder), spread round-robin.
func (s *Sched) Submit(from int, t Task) {
	s.mu.Lock()
	w := from
	if w < 0 || w >= s.workers {
		w = s.rr % s.workers
		s.rr++
	}
	s.deques[w] = append(s.deques[w], t)
	s.stats.Tasks++
	for i := 0; i < s.workers; i++ {
		if !s.live[i] {
			s.live[i] = true
			go s.run(i)
		}
	}
	// One task needs one worker: any parked worker can take any deque's
	// task (stealing), so a single wakeup suffices and the rest stay
	// parked instead of thundering on a 1-task submission.
	s.cond.Signal()
	s.mu.Unlock()
}

// Stats returns a snapshot of scheduler activity.
func (s *Sched) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// run is the worker goroutine body: execute own-deque tasks in submission
// order, steal from other deques when empty, park when the pool has no work,
// and exit once the pool is unreferenced.
func (s *Sched) run(w int) {
	s.mu.Lock()
	for {
		if t, stolen := s.take(w); t != nil {
			if stolen {
				s.stats.Steals++
			}
			s.mu.Unlock()
			t(w)
			s.mu.Lock()
			continue
		}
		if s.refs <= 0 {
			s.live[w] = false
			s.mu.Unlock()
			return
		}
		start := time.Now()
		s.cond.Wait()
		s.stats.Idle += time.Since(start)
	}
}

// take pops the oldest task of w's own deque, or steals the oldest task of
// another worker's deque. Oldest-first order matters: the order-preserving
// exchange consumes jobs in submission order, so running old tasks first
// advances the consumption window fastest. Called with s.mu held.
func (s *Sched) take(w int) (t Task, stolen bool) {
	for i := 0; i < s.workers; i++ {
		v := (w + i) % s.workers
		if q := s.deques[v]; len(q) > 0 {
			t := q[0]
			q[0] = nil
			s.deques[v] = q[1:]
			if len(s.deques[v]) == 0 {
				s.deques[v] = nil // release the drained backing array
			}
			return t, v != w
		}
	}
	return nil, false
}
