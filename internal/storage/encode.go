package storage

import (
	"math"
	"math/bits"
	"sort"

	"bdcc/internal/vector"
)

// This file is the lightweight columnar compression layer: per-column-chunk
// encodings chosen by modeled cost. BDCC's z-order co-clustering makes
// column values locally homogeneous inside each cell, which is exactly the
// condition under which run-length, dictionary and frame-of-reference
// encodings pay off — the compression style of the paper's VectorWise host
// system. Chunks are page-aligned at the column's raw width (one chunk of
// int64 values spans exactly one uncompressed 32 KB page), each chunk keeps
// the cheapest of the candidate encodings, and the encoded byte total feeds
// the modeled column width, so page charges, Algorithm 1's densest-column
// granularity choice, and the grid's mb_read all see post-compression bytes.
// Encodings are exact: a decoded chunk reproduces the raw values bit for
// bit (floats run-length-encode on their IEEE-754 bit patterns), which is
// what lets the equivalence oracle demand byte-identical query results with
// compression on and off. See docs/STORAGE.md for the format and cost model.

// Encoding identifies the compression scheme of one chunk.
type Encoding uint8

const (
	// EncRaw is the uncompressed fallback: values at their raw width.
	EncRaw Encoding = iota
	// EncRLE is run-length encoding: (value, run length) pairs.
	EncRLE
	// EncDict is dictionary encoding: bit-packed codes into a sorted
	// per-column dictionary (shared across the column's chunks).
	EncDict
	// EncFOR is frame-of-reference encoding for int64: a chunk-local base
	// plus bit-packed unsigned deltas.
	EncFOR

	numEncodings
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncRLE:
		return "rle"
	case EncDict:
		return "dict"
	case EncFOR:
		return "for"
	}
	return "enc?"
}

// maxDictEntries bounds the per-column dictionary: columns with more
// distinct values than this never dictionary-encode (their codes would be
// nearly as wide as the values).
const maxDictEntries = 1 << 16

// Chunk is one encoded page-aligned span of a column. Only the fields of
// its encoding are populated; Min/Max of the chunk's values are computed
// during encoding (from runs or codes, not by an extra row loop) and feed
// the zonemap directly.
type Chunk struct {
	Enc   Encoding
	Start int   // first row of the span
	Rows  int   // rows in the span
	Bytes int64 // modeled encoded size

	// EncRLE: run values (RunF holds IEEE-754 bits for exactness) and run
	// lengths, parallel slices.
	RunI []int64
	RunF []uint64
	RunS []string
	RunN []int32

	// EncFOR: base + bit-packed deltas; EncDict reuses Packed for the
	// bit-packed dictionary codes at the column's DictBits width.
	Base   int64
	BitW   uint8
	Packed []byte

	// Per-chunk value bounds (same comparison semantics as the zonemap
	// row loops; for floats, NaNs neither raise nor lower the bounds).
	MinI, MaxI int64
	MinF, MaxF float64
	MinS, MaxS string
}

// ColumnEncoding is the encoded form of one column: uniform chunk
// granularity, the chunk list, and the column-wide sorted dictionary its
// dict chunks share. The modeled totals drive the column's encoded width.
type ColumnEncoding struct {
	ChunkRows int
	Chunks    []Chunk

	// Dict is the column's sorted dictionary (string columns only; nil when
	// no chunk dictionary-encodes). Sorted order makes code order equal
	// value order, so range predicates evaluate on codes directly.
	Dict      []string
	DictBits  uint8
	DictBytes int64

	// RawBytes is the modeled uncompressed size (rows at raw width);
	// EncodedBytes is the chunk total plus the dictionary (charged once).
	RawBytes     int64
	EncodedBytes int64
	// Counts tallies chunks per encoding, indexed by Encoding.
	Counts [numEncodings]int64
}

// ChunkBuf is reusable decode scratch: one chunk's values, materialized.
type ChunkBuf struct {
	I64 []int64
	F64 []float64
	Str []string
}

// encodeColumn builds the encoded form of c at the given chunk granularity
// (rows per uncompressed page, so chunks are page-aligned at raw width).
func encodeColumn(c *Column, chunkRows int) *ColumnEncoding {
	n := c.Len()
	e := &ColumnEncoding{ChunkRows: chunkRows}
	var dictCode map[string]uint32
	if c.Kind == vector.String && n > 0 {
		dictCode = e.buildDict(c.Str)
	}
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		var ch Chunk
		switch c.Kind {
		case vector.Int64:
			ch = encodeI64Chunk(c.I64[start:end])
		case vector.Float64:
			ch = encodeF64Chunk(c.F64[start:end])
		case vector.String:
			ch = e.encodeStrChunk(c.Str[start:end], dictCode)
		}
		ch.Start, ch.Rows = start, end-start
		e.Chunks = append(e.Chunks, ch)
		e.EncodedBytes += ch.Bytes
		e.Counts[ch.Enc]++
	}
	switch c.Kind {
	case vector.Int64, vector.Float64:
		e.RawBytes = 8 * int64(n)
	case vector.String:
		for _, s := range c.Str {
			e.RawBytes += int64(len(s))
		}
	}
	if e.Counts[EncDict] > 0 {
		e.EncodedBytes += e.DictBytes
	} else {
		e.Dict, e.DictBits, e.DictBytes = nil, 0, 0
	}
	return e
}

// buildDict collects the column's sorted dictionary when it is viable: few
// enough distinct values, and dictionary plus packed codes modeled smaller
// than the raw column. It returns the value→code map the chunk encoder
// packs with, or nil when the column should not dictionary-encode.
func (e *ColumnEncoding) buildDict(vals []string) map[string]uint32 {
	distinct := make(map[string]uint32, 1024)
	var rawBytes int64
	for _, s := range vals {
		rawBytes += int64(len(s))
		if len(distinct) <= maxDictEntries {
			distinct[s] = 0
		}
	}
	if len(distinct) > maxDictEntries {
		return nil
	}
	dict := make([]string, 0, len(distinct))
	for s := range distinct {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	bitw := uint8(bits.Len(uint(len(dict) - 1)))
	var dictBytes int64
	for _, s := range dict {
		dictBytes += int64(4 + len(s))
	}
	if dictBytes+int64(vector.BitPackLen(len(vals), bitw)) >= rawBytes {
		return nil
	}
	e.Dict, e.DictBits, e.DictBytes = dict, bitw, dictBytes
	for code, s := range dict {
		distinct[s] = uint32(code)
	}
	return distinct
}

func encodeI64Chunk(v []int64) Chunk {
	rows := len(v)
	runs := 1
	mn, mx := v[0], v[0]
	for i := 1; i < rows; i++ {
		if v[i] != v[i-1] {
			runs++
		}
		if v[i] < mn {
			mn = v[i]
		}
		if v[i] > mx {
			mx = v[i]
		}
	}
	bitw := uint8(bits.Len64(uint64(mx) - uint64(mn)))
	ch := Chunk{Enc: EncRaw, Bytes: 8 * int64(rows), MinI: mn, MaxI: mx}
	if rleB := 12 * int64(runs); rleB < ch.Bytes {
		ch.Enc, ch.Bytes = EncRLE, rleB
	}
	if forB := 9 + int64(vector.BitPackLen(rows, bitw)); forB < ch.Bytes {
		ch.Enc, ch.Bytes = EncFOR, forB
	}
	switch ch.Enc {
	case EncRLE:
		ch.RunI = make([]int64, 0, runs)
		ch.RunN = make([]int32, 0, runs)
		appendRunsI64(&ch, v)
	case EncFOR:
		ch.Base, ch.BitW = mn, bitw
		ch.Packed = make([]byte, vector.BitPackLen(rows, bitw))
		for i, x := range v {
			vector.BitPackPut(ch.Packed, i, bitw, uint64(x)-uint64(mn))
		}
	}
	return ch
}

func appendRunsI64(ch *Chunk, v []int64) {
	cur, n := v[0], int32(1)
	for _, x := range v[1:] {
		if x == cur {
			n++
			continue
		}
		ch.RunI = append(ch.RunI, cur)
		ch.RunN = append(ch.RunN, n)
		cur, n = x, 1
	}
	ch.RunI = append(ch.RunI, cur)
	ch.RunN = append(ch.RunN, n)
}

func encodeF64Chunk(v []float64) Chunk {
	rows := len(v)
	runs := 1
	mn, mx := v[0], v[0]
	prev := math.Float64bits(v[0])
	for i := 1; i < rows; i++ {
		b := math.Float64bits(v[i])
		if b != prev {
			runs++
			prev = b
		}
		if v[i] < mn {
			mn = v[i]
		}
		if v[i] > mx {
			mx = v[i]
		}
	}
	ch := Chunk{Enc: EncRaw, Bytes: 8 * int64(rows), MinF: mn, MaxF: mx}
	if rleB := 12 * int64(runs); rleB < ch.Bytes {
		ch.Enc, ch.Bytes = EncRLE, rleB
		ch.RunF = make([]uint64, 0, runs)
		ch.RunN = make([]int32, 0, runs)
		cur, n := math.Float64bits(v[0]), int32(1)
		for _, x := range v[1:] {
			if b := math.Float64bits(x); b == cur {
				n++
			} else {
				ch.RunF = append(ch.RunF, cur)
				ch.RunN = append(ch.RunN, n)
				cur, n = b, 1
			}
		}
		ch.RunF = append(ch.RunF, cur)
		ch.RunN = append(ch.RunN, n)
	}
	return ch
}

// encodeStrChunk costs the candidates in one run walk (run values cover
// every distinct value of the chunk, so the chunk's Min/Max fall out of the
// walk without a dedicated row loop).
func (e *ColumnEncoding) encodeStrChunk(v []string, dictCode map[string]uint32) Chunk {
	rows := len(v)
	runs := 1
	var rawB, rleB int64
	mn, mx := v[0], v[0]
	rleB = int64(8 + len(v[0]))
	rawB = int64(len(v[0]))
	for i := 1; i < rows; i++ {
		rawB += int64(len(v[i]))
		if v[i] != v[i-1] {
			runs++
			rleB += int64(8 + len(v[i]))
			if v[i] < mn {
				mn = v[i]
			}
			if v[i] > mx {
				mx = v[i]
			}
		}
	}
	ch := Chunk{Enc: EncRaw, Bytes: rawB, MinS: mn, MaxS: mx}
	if dictCode != nil {
		if dictB := int64(vector.BitPackLen(rows, e.DictBits)); dictB < ch.Bytes {
			ch.Enc, ch.Bytes = EncDict, dictB
		}
	}
	if rleB < ch.Bytes {
		ch.Enc, ch.Bytes = EncRLE, rleB
	}
	switch ch.Enc {
	case EncRLE:
		ch.RunS = make([]string, 0, runs)
		ch.RunN = make([]int32, 0, runs)
		cur, n := v[0], int32(1)
		for _, x := range v[1:] {
			if x == cur {
				n++
			} else {
				ch.RunS = append(ch.RunS, cur)
				ch.RunN = append(ch.RunN, n)
				cur, n = x, 1
			}
		}
		ch.RunS = append(ch.RunS, cur)
		ch.RunN = append(ch.RunN, n)
	case EncDict:
		ch.BitW = e.DictBits
		ch.Packed = make([]byte, vector.BitPackLen(rows, e.DictBits))
		for i, s := range v {
			vector.BitPackPut(ch.Packed, i, e.DictBits, uint64(dictCode[s]))
		}
	}
	return ch
}

// chunkIndex returns the chunk covering row r.
func (e *ColumnEncoding) chunkIndex(r int) int { return r / e.ChunkRows }

// DecodeChunk materializes chunk ci of the column into buf, resetting it
// first. Raw chunks copy from the retained raw arrays; the other encodings
// reconstruct the exact original values.
func (c *Column) DecodeChunk(ci int, buf *ChunkBuf) {
	ch := &c.Enc.Chunks[ci]
	switch c.Kind {
	case vector.Int64:
		buf.I64 = buf.I64[:0]
		switch ch.Enc {
		case EncRaw:
			buf.I64 = append(buf.I64, c.I64[ch.Start:ch.Start+ch.Rows]...)
		case EncRLE:
			for r, val := range ch.RunI {
				for k := int32(0); k < ch.RunN[r]; k++ {
					buf.I64 = append(buf.I64, val)
				}
			}
		case EncFOR:
			for i := 0; i < ch.Rows; i++ {
				buf.I64 = append(buf.I64, int64(uint64(ch.Base)+vector.BitPackGet(ch.Packed, i, ch.BitW)))
			}
		}
	case vector.Float64:
		buf.F64 = buf.F64[:0]
		switch ch.Enc {
		case EncRaw:
			buf.F64 = append(buf.F64, c.F64[ch.Start:ch.Start+ch.Rows]...)
		case EncRLE:
			for r, b := range ch.RunF {
				val := math.Float64frombits(b)
				for k := int32(0); k < ch.RunN[r]; k++ {
					buf.F64 = append(buf.F64, val)
				}
			}
		}
	case vector.String:
		buf.Str = buf.Str[:0]
		switch ch.Enc {
		case EncRaw:
			buf.Str = append(buf.Str, c.Str[ch.Start:ch.Start+ch.Rows]...)
		case EncRLE:
			for r, val := range ch.RunS {
				for k := int32(0); k < ch.RunN[r]; k++ {
					buf.Str = append(buf.Str, val)
				}
			}
		case EncDict:
			for i := 0; i < ch.Rows; i++ {
				buf.Str = append(buf.Str, c.Enc.Dict[vector.BitPackGet(ch.Packed, i, ch.BitW)])
			}
		}
	}
}

// appendSpan appends [lo,hi) to dst, merging with an adjacent predecessor.
func appendSpan(dst []RowRange, lo, hi int) []RowRange {
	if n := len(dst); n > 0 && dst[n-1].End == lo {
		dst[n-1].End = hi
		return dst
	}
	return append(dst, RowRange{lo, hi})
}

// pruneSpan appends to dst the sub-spans of rows [lo,hi) that can possibly
// satisfy iv, consulting the column's encoded chunks without materializing
// values: RLE runs wholly outside the interval are dropped (the selection
// indexes into runs, not rows), and dictionary chunks drop rows whose codes
// fall outside the interval's code range in the sorted dictionary. Chunks
// without a cheap path (raw, frame-of-reference) survive whole. The result
// is conservative — no row satisfying iv is ever dropped — so scans that
// re-apply the full predicate stay exact.
func (c *Column) pruneSpan(iv Interval, lo, hi int, dst []RowRange) []RowRange {
	if c.Enc == nil || c.Kind == vector.Float64 {
		return appendSpan(dst, lo, hi)
	}
	for lo < hi {
		ci := c.Enc.chunkIndex(lo)
		ch := &c.Enc.Chunks[ci]
		segEnd := min(hi, ch.Start+ch.Rows)
		switch {
		case ch.Enc == EncRLE:
			dst = ch.pruneRuns(c.Kind, iv, lo, segEnd, dst)
		case ch.Enc == EncDict:
			dst = ch.pruneCodes(c.Enc.Dict, iv, lo, segEnd, dst)
		default:
			dst = appendSpan(dst, lo, segEnd)
		}
		lo = segEnd
	}
	return dst
}

// passI64 reports whether an int64 value can satisfy the interval.
func (iv Interval) passI64(x int64) bool {
	return (!iv.Lo.Set || x >= iv.Lo.I) && (!iv.Hi.Set || x <= iv.Hi.I)
}

// passStr reports whether a string value can satisfy the interval.
func (iv Interval) passStr(s string) bool {
	return (!iv.Lo.Set || s >= iv.Lo.S) && (!iv.Hi.Set || s <= iv.Hi.S)
}

// pruneRuns keeps the sub-spans of [lo,hi) whose RLE run value passes iv.
func (ch *Chunk) pruneRuns(kind vector.Kind, iv Interval, lo, hi int, dst []RowRange) []RowRange {
	pos := ch.Start
	for r, n := range ch.RunN {
		runEnd := pos + int(n)
		if runEnd > lo && pos < hi {
			ok := false
			switch kind {
			case vector.Int64:
				ok = iv.passI64(ch.RunI[r])
			case vector.String:
				ok = iv.passStr(ch.RunS[r])
			}
			if ok {
				dst = appendSpan(dst, max(pos, lo), min(runEnd, hi))
			}
		}
		pos = runEnd
		if pos >= hi {
			break
		}
	}
	return dst
}

// pruneCodes keeps the rows of [lo,hi) whose dictionary code lies inside
// the interval's code range — an equality or range check on codes, before
// any string gather. An interval with no matching dictionary entry drops
// the whole span.
func (ch *Chunk) pruneCodes(dict []string, iv Interval, lo, hi int, dst []RowRange) []RowRange {
	loCode, hiCode := uint64(0), uint64(len(dict)-1)
	if iv.Lo.Set {
		loCode = uint64(sort.SearchStrings(dict, iv.Lo.S))
	}
	if iv.Hi.Set {
		i := sort.SearchStrings(dict, iv.Hi.S)
		if i < len(dict) && dict[i] == iv.Hi.S {
			hiCode = uint64(i)
		} else if i == 0 {
			return dst // every dictionary entry is above the interval
		} else {
			hiCode = uint64(i - 1)
		}
	}
	if loCode > hiCode {
		return dst
	}
	spanLo := -1
	for i := lo; i < hi; i++ {
		code := vector.BitPackGet(ch.Packed, i-ch.Start, ch.BitW)
		if code >= loCode && code <= hiCode {
			if spanLo < 0 {
				spanLo = i
			}
		} else if spanLo >= 0 {
			dst = appendSpan(dst, spanLo, i)
			spanLo = -1
		}
	}
	if spanLo >= 0 {
		dst = appendSpan(dst, spanLo, hi)
	}
	return dst
}
