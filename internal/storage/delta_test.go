package storage

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"bdcc/internal/vector"
)

// deltaFixture builds a small mixed-kind table of n rows.
func deltaFixture(t testing.TB, name string, n int, seed int64) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	id := &Column{Name: "id", Kind: vector.Int64}
	price := &Column{Name: "price", Kind: vector.Float64}
	note := &Column{Name: "note", Kind: vector.String}
	for i := 0; i < n; i++ {
		id.I64 = append(id.I64, rng.Int63n(1<<40)-(1<<39))
		price.F64 = append(price.F64, math.Floor(rng.Float64()*1e6)/100)
		note.Str = append(note.Str, strings.Repeat("x", rng.Intn(12))+fmt.Sprint(rng.Intn(1000)))
	}
	tab, err := NewTable(name, 4<<10, id, price, note)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return tab
}

func sameRows(t *testing.T, got, want *Table) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%d rows, want %d", got.Rows(), want.Rows())
	}
	for i, wc := range want.Cols {
		gc := got.Cols[i]
		if gc.Name != wc.Name || gc.Kind != wc.Kind {
			t.Fatalf("column %d is %s %s, want %s %s", i, gc.Kind, gc.Name, wc.Kind, wc.Name)
		}
		for r := 0; r < want.Rows(); r++ {
			switch wc.Kind {
			case vector.Int64:
				if gc.I64[r] != wc.I64[r] {
					t.Fatalf("%s[%d] = %d, want %d", wc.Name, r, gc.I64[r], wc.I64[r])
				}
			case vector.Float64:
				if math.Float64bits(gc.F64[r]) != math.Float64bits(wc.F64[r]) {
					t.Fatalf("%s[%d] = %v, want %v", wc.Name, r, gc.F64[r], wc.F64[r])
				}
			case vector.String:
				if gc.Str[r] != wc.Str[r] {
					t.Fatalf("%s[%d] = %q, want %q", wc.Name, r, gc.Str[r], wc.Str[r])
				}
			}
		}
	}
}

func TestDeltaSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 513} {
		src := deltaFixture(t, "rt", n, int64(n))
		seg, err := EncodeDeltaSegment(src)
		if err != nil {
			t.Fatalf("encode %d rows: %v", n, err)
		}
		d := NewDelta(src)
		got, err := DecodeDeltaSegment(seg, d.cols, d.kinds, src.PageSize, src.Name)
		if err != nil {
			t.Fatalf("decode %d rows: %v", n, err)
		}
		sameRows(t, got, src)
	}
}

// TestDeltaSegmentCorruption flips every byte position in a small segment and
// truncates it at every length: the decoder must reject each damaged input
// with an error and never panic or return rows.
func TestDeltaSegmentCorruption(t *testing.T) {
	src := deltaFixture(t, "corrupt", 9, 42)
	seg, err := EncodeDeltaSegment(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	d := NewDelta(src)
	decode := func(b []byte) (*Table, error) {
		return DecodeDeltaSegment(b, d.cols, d.kinds, src.PageSize, src.Name)
	}
	for i := range seg {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), seg...)
			mut[i] ^= bit
			if tab, err := decode(mut); err == nil {
				// An undetected flip would have to collide CRC-32; at this
				// segment size that would be a codec bug, not bad luck.
				t.Fatalf("byte %d ^ %#x decoded %d rows without error", i, bit, tab.Rows())
			}
		}
	}
	for n := 0; n < len(seg); n++ {
		if tab, err := decode(seg[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded %d rows without error", n, tab.Rows())
		}
	}
}

// FuzzDecodeDeltaSegment mirrors the wire-codec corruption fuzz for the delta
// format: arbitrary bytes must either decode cleanly or error, never panic.
func FuzzDecodeDeltaSegment(f *testing.F) {
	src := deltaFixture(f, "fuzz", 5, 7)
	seg, _ := EncodeDeltaSegment(src)
	f.Add(seg)
	f.Add(seg[:len(seg)-3])
	f.Add([]byte("BDL1"))
	f.Add([]byte{})
	d := NewDelta(src)
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := DecodeDeltaSegment(data, d.cols, d.kinds, src.PageSize, src.Name)
		if err == nil && tab == nil {
			t.Fatal("nil table without error")
		}
	})
}

func TestDeltaStore(t *testing.T) {
	base := deltaFixture(t, "d", 4, 1)
	d := NewDelta(base)
	b1 := deltaFixture(t, "d", 3, 2)
	b2 := deltaFixture(t, "d", 5, 3)
	if n, err := d.Append(b1); err != nil || n != 3 {
		t.Fatalf("append 1: n=%d err=%v", n, err)
	}
	if n, err := d.Append(b2); err != nil || n != 8 {
		t.Fatalf("append 2: n=%d err=%v", n, err)
	}
	if d.Rows() != 8 || d.AppendedRows() != 8 {
		t.Fatalf("rows=%d appended=%d, want 8/8", d.Rows(), d.AppendedRows())
	}

	// Prefix at each segment boundary sees exactly the batches appended so far.
	p0, err := d.Prefix(0)
	if err != nil || p0.Rows() != 0 {
		t.Fatalf("prefix 0: rows=%v err=%v", p0, err)
	}
	p3, err := d.Prefix(3)
	if err != nil {
		t.Fatalf("prefix 3: %v", err)
	}
	sameRows(t, p3, b1)
	p8, err := d.Prefix(8)
	if err != nil {
		t.Fatalf("prefix 8: %v", err)
	}
	want, err := Concat(b1, b1.Rows(), b2)
	if err != nil {
		t.Fatalf("concat: %v", err)
	}
	sameRows(t, p8, want)

	// Mid-segment prefixes and overruns are rejected.
	if _, err := d.Prefix(4); err == nil {
		t.Fatal("mid-segment prefix succeeded")
	}
	if _, err := d.Prefix(9); err == nil {
		t.Fatal("oversized prefix succeeded")
	}

	// Truncation drops merged batches and keeps the tail readable.
	if err := d.TruncatePrefix(4); err == nil {
		t.Fatal("mid-segment truncate succeeded")
	}
	if err := d.TruncatePrefix(3); err != nil {
		t.Fatalf("truncate 3: %v", err)
	}
	if d.Rows() != 5 || d.AppendedRows() != 8 {
		t.Fatalf("after truncate: rows=%d appended=%d, want 5/8", d.Rows(), d.AppendedRows())
	}
	tail, err := d.Prefix(5)
	if err != nil {
		t.Fatalf("prefix after truncate: %v", err)
	}
	sameRows(t, tail, b2)

	// Schema mismatches and empty batches are rejected.
	bad := MustNewTable("d", 4<<10, &Column{Name: "id", Kind: vector.Int64, I64: []int64{1}})
	if _, err := d.Append(bad); err == nil {
		t.Fatal("schema-mismatched append succeeded")
	}
	empty := MustNewTable("d", 4<<10,
		&Column{Name: "id", Kind: vector.Int64},
		&Column{Name: "price", Kind: vector.Float64},
		&Column{Name: "note", Kind: vector.String})
	if _, err := d.Append(empty); err == nil {
		t.Fatal("empty append succeeded")
	}
}

func TestConcatMatchesCompressedBase(t *testing.T) {
	base := deltaFixture(t, "c", 200, 11)
	raw := deltaFixture(t, "c", 200, 11)
	base.Compress()
	tail := deltaFixture(t, "c", 30, 12)
	got, err := Concat(base, base.Rows(), tail)
	if err != nil {
		t.Fatalf("concat: %v", err)
	}
	if got.Compressed() {
		t.Fatal("concat result is compressed")
	}
	want, err := Concat(raw, raw.Rows(), tail)
	if err != nil {
		t.Fatalf("concat raw: %v", err)
	}
	sameRows(t, got, want)
}
