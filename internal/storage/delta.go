package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"bdcc/internal/vector"
)

// This file implements the ingest side of storage: a row-oriented delta
// store per table. Appended rows are encoded into self-validating segments
// (the delta's "on-disk" format, see EncodeDeltaSegment) and decoded back
// into columnar form when a snapshot view over base + delta is built. The
// delta is deliberately row-oriented and unencoded: fresh rows arrive one
// transaction at a time and are rewritten into clustered, compressed form by
// the background merge, so paying columnar encoding on the append path would
// buy nothing (the classic delta-store / read-optimized-store split).

// deltaSegMagic marks a delta segment; the trailing byte versions the format.
var deltaSegMagic = [4]byte{'B', 'D', 'L', '1'}

// Delta is the append store of one table: a bounded sequence of encoded row
// segments sharing the base table's schema. Appends are serialized by an
// internal mutex; readers never touch the Delta directly — they read the
// immutable snapshot tables built from Prefix at append/merge time.
type Delta struct {
	name     string
	cols     []string
	kinds    []vector.Kind
	pageSize int64

	mu       sync.Mutex
	segs     []deltaSeg
	rows     int
	appended int64
}

// deltaSeg is one encoded append batch.
type deltaSeg struct {
	data []byte
	rows int
}

// NewDelta returns an empty delta store adopting the base table's schema and
// page geometry.
func NewDelta(base *Table) *Delta {
	d := &Delta{name: base.Name, pageSize: base.PageSize}
	for _, c := range base.Cols {
		d.cols = append(d.cols, c.Name)
		d.kinds = append(d.kinds, c.Kind)
	}
	return d
}

// Rows returns the number of un-merged rows currently in the store.
func (d *Delta) Rows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rows
}

// AppendedRows returns the lifetime row count appended to this store,
// including rows already merged away.
func (d *Delta) AppendedRows() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appended
}

// Append encodes the given rows as one segment and adds it to the store. The
// rows table must match the delta's schema by name, kind and column order.
// It returns the visible row count after the append.
func (d *Delta) Append(rows *Table) (int, error) {
	if rows.Rows() == 0 {
		return 0, fmt.Errorf("storage: delta %q: empty append", d.name)
	}
	if err := d.checkSchema(rows); err != nil {
		return 0, err
	}
	seg, err := EncodeDeltaSegment(rows)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.segs = append(d.segs, deltaSeg{data: seg, rows: rows.Rows()})
	d.rows += rows.Rows()
	d.appended += int64(rows.Rows())
	return d.rows, nil
}

func (d *Delta) checkSchema(t *Table) error {
	if len(t.Cols) != len(d.cols) {
		return fmt.Errorf("storage: delta %q: %d columns appended, schema has %d", d.name, len(t.Cols), len(d.cols))
	}
	for i, c := range t.Cols {
		if c.Name != d.cols[i] || c.Kind != d.kinds[i] {
			return fmt.Errorf("storage: delta %q: column %d is %s %s, schema has %s %s",
				d.name, i, c.Kind, c.Name, d.kinds[i], d.cols[i])
		}
	}
	return nil
}

// Prefix decodes the first k rows into an uncompressed columnar table in
// arrival order. k must fall on a segment boundary — appends are atomic, so
// every snapshot's visible count does.
func (d *Delta) Prefix(k int) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if k > d.rows {
		return nil, fmt.Errorf("storage: delta %q: prefix %d exceeds %d rows", d.name, k, d.rows)
	}
	cols := make([]*Column, len(d.cols))
	for i := range cols {
		cols[i] = &Column{Name: d.cols[i], Kind: d.kinds[i]}
	}
	got := 0
	for _, seg := range d.segs {
		if got == k {
			break
		}
		if got+seg.rows > k {
			return nil, fmt.Errorf("storage: delta %q: prefix %d splits a %d-row segment at %d", d.name, k, seg.rows, got)
		}
		part, err := DecodeDeltaSegment(seg.data, d.cols, d.kinds, d.pageSize, d.name)
		if err != nil {
			return nil, err
		}
		for i, c := range cols {
			c.appendRows(part.Cols[i], 0, part.Rows())
		}
		got += seg.rows
	}
	return NewTable(d.name, d.pageSize, cols...)
}

// TruncatePrefix drops the first k rows (a completed merge's input). k must
// fall on a segment boundary.
func (d *Delta) TruncatePrefix(k int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	got := 0
	i := 0
	for ; i < len(d.segs) && got < k; i++ {
		got += d.segs[i].rows
	}
	if got != k {
		return fmt.Errorf("storage: delta %q: truncate %d not on a segment boundary", d.name, k)
	}
	d.segs = append([]deltaSeg(nil), d.segs[i:]...)
	d.rows -= k
	return nil
}

// EncodeDeltaSegment serializes a row batch into the delta segment format:
//
//	magic "BDL1" | uvarint rows | uvarint cols | per column: kind byte |
//	row-major values (int64: 8 B LE; float64: 8 B LE IEEE bits;
//	string: uvarint length + bytes) | CRC-32 (IEEE) of everything after the
//	magic, little-endian.
//
// The checksum makes torn or corrupted segments detectable at decode time
// instead of silently surfacing wrong rows in a snapshot.
func EncodeDeltaSegment(t *Table) ([]byte, error) {
	out := append([]byte(nil), deltaSegMagic[:]...)
	out = binary.AppendUvarint(out, uint64(t.Rows()))
	out = binary.AppendUvarint(out, uint64(len(t.Cols)))
	for _, c := range t.Cols {
		out = append(out, byte(c.Kind))
	}
	var b8 [8]byte
	for r := 0; r < t.Rows(); r++ {
		for _, c := range t.Cols {
			switch c.Kind {
			case vector.Int64:
				binary.LittleEndian.PutUint64(b8[:], uint64(c.I64[r]))
				out = append(out, b8[:]...)
			case vector.Float64:
				binary.LittleEndian.PutUint64(b8[:], math.Float64bits(c.F64[r]))
				out = append(out, b8[:]...)
			case vector.String:
				out = binary.AppendUvarint(out, uint64(len(c.Str[r])))
				out = append(out, c.Str[r]...)
			default:
				return nil, fmt.Errorf("storage: delta segment: unsupported kind %s", c.Kind)
			}
		}
	}
	crc := crc32.ChecksumIEEE(out[len(deltaSegMagic):])
	binary.LittleEndian.PutUint32(b8[:4], crc)
	return append(out, b8[:4]...), nil
}

// DecodeDeltaSegment parses a segment back into an uncompressed table with
// the given column names. The segment's column kinds must match the expected
// schema and the checksum must verify; any structural damage — truncation,
// bit flips, oversized counts — returns an error, never a panic or a
// half-decoded table.
func DecodeDeltaSegment(data []byte, cols []string, kinds []vector.Kind, pageSize int64, name string) (*Table, error) {
	bad := func(format string, args ...any) (*Table, error) {
		return nil, fmt.Errorf("storage: delta segment of %q: %s", name, fmt.Sprintf(format, args...))
	}
	if len(data) < len(deltaSegMagic)+4 {
		return bad("%d bytes is shorter than magic and checksum", len(data))
	}
	if [4]byte(data[:4]) != deltaSegMagic {
		return bad("bad magic %q", data[:4])
	}
	body := data[len(deltaSegMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return bad("checksum %08x, segment says %08x", got, want)
	}
	rows, n := binary.Uvarint(body)
	if n <= 0 {
		return bad("unreadable row count")
	}
	body = body[n:]
	ncols, n := binary.Uvarint(body)
	if n <= 0 {
		return bad("unreadable column count")
	}
	body = body[n:]
	if ncols != uint64(len(kinds)) {
		return bad("%d columns, schema has %d", ncols, len(kinds))
	}
	// Eight bytes per numeric value bounds rows by the remaining payload, so
	// a corrupted count cannot drive allocation.
	if uint64(len(body)) < ncols || rows > uint64(len(body)) {
		return bad("%d rows cannot fit in %d payload bytes", rows, len(body))
	}
	for i, k := range kinds {
		if vector.Kind(body[i]) != k {
			return bad("column %d has kind %d, schema has %s", i, body[i], k)
		}
	}
	body = body[ncols:]
	out := make([]*Column, len(kinds))
	for i := range out {
		out[i] = &Column{Name: cols[i], Kind: kinds[i]}
		switch kinds[i] {
		case vector.Int64:
			out[i].I64 = make([]int64, 0, rows)
		case vector.Float64:
			out[i].F64 = make([]float64, 0, rows)
		case vector.String:
			out[i].Str = make([]string, 0, rows)
		}
	}
	for r := uint64(0); r < rows; r++ {
		for i, k := range kinds {
			switch k {
			case vector.Int64:
				if len(body) < 8 {
					return bad("row %d column %d truncated", r, i)
				}
				out[i].I64 = append(out[i].I64, int64(binary.LittleEndian.Uint64(body)))
				body = body[8:]
			case vector.Float64:
				if len(body) < 8 {
					return bad("row %d column %d truncated", r, i)
				}
				out[i].F64 = append(out[i].F64, math.Float64frombits(binary.LittleEndian.Uint64(body)))
				body = body[8:]
			case vector.String:
				ln, n := binary.Uvarint(body)
				if n <= 0 || ln > uint64(len(body[n:])) {
					return bad("row %d column %d string length %d overruns segment", r, i, ln)
				}
				out[i].Str = append(out[i].Str, string(body[n:n+int(ln)]))
				body = body[n+int(ln):]
			}
		}
	}
	if len(body) != 0 {
		return bad("%d trailing bytes after %d rows", len(body), rows)
	}
	return NewTable(name, pageSize, out...)
}

// Concat returns a new uncompressed table holding the first aRows rows of a
// followed by every row of b; schemas must match by name, kind and order.
// Snapshot views layer freshly ingested rows behind the base this way —
// consolidation re-encodes explicitly when the merge commits, so the un-merged
// tail is always served (and its I/O charged) at raw width.
func Concat(a *Table, aRows int, b *Table) (*Table, error) {
	if aRows < 0 || aRows > a.Rows() {
		return nil, fmt.Errorf("storage: concat keeps %d of table %q's %d rows", aRows, a.Name, a.Rows())
	}
	if len(a.Cols) != len(b.Cols) {
		return nil, fmt.Errorf("storage: concat of %q and %q: %d vs %d columns", a.Name, b.Name, len(a.Cols), len(b.Cols))
	}
	cols := make([]*Column, len(a.Cols))
	for i, c := range a.Cols {
		o := b.Cols[i]
		if c.Name != o.Name || c.Kind != o.Kind {
			return nil, fmt.Errorf("storage: concat of %q: column %d is %s %s vs %s %s",
				a.Name, i, c.Kind, c.Name, o.Kind, o.Name)
		}
		nc := &Column{Name: c.Name, Kind: c.Kind}
		nc.appendRows(c, 0, aRows)
		nc.appendRows(o, 0, b.Rows())
		cols[i] = nc
	}
	return NewTable(a.Name, a.PageSize, cols...)
}
